package repro_test

import (
	"repro/internal/encoding"
	"repro/internal/sim"
	"repro/internal/studies"
	"repro/internal/workload"
)

// simRun forwards to the simulator; kept as a helper so the benchmarks
// read at the level of the experiment they reproduce.
func simRun(cfg sim.Config, tr *workload.Trace) (sim.Result, error) {
	return sim.Run(cfg, tr)
}

// newEncoder builds the study's input encoder.
func newEncoder(st *studies.Study) *encoding.Encoder {
	return encoding.NewEncoder(st.Space)
}
