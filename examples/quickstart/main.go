// Quickstart: build a predictive model of the memory-system design
// space for one application with ~400 simulations (1.7% of the 23,040-
// point space), then use it to predict IPC everywhere.
//
// This is the paper's core loop (§3.3) end to end:
//
//  1. define the design space            (studies.MemorySystem)
//  2. simulate random batches of points  (experiments.SimOracle)
//  3. train a 10-fold CV ANN ensemble    (core.Explorer)
//  4. read the error estimate the model computes about itself
//  5. predict unsimulated points and check against the simulator
//
// Run: go run ./examples/quickstart [-app mcf] [-samples 400]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/studies"
)

func main() {
	app := flag.String("app", "crafty", "application to model")
	samples := flag.Int("samples", 400, "simulation budget")
	traceLen := flag.Int("insts", 50000, "instructions per simulation")
	check := flag.Int("check", 300, "held-out points to verify against")
	flag.Parse()

	study := studies.MemorySystem()
	fmt.Printf("design space: %s, %d points, %d parameters\n",
		study.Space.Name, study.Space.Size(), study.Space.NumParams())

	oracle := experiments.NewSimOracle(study, *app, *traceLen, experiments.IPCOnly)

	cfg := core.DefaultExploreConfig()
	cfg.MaxSamples = *samples
	cfg.TargetMeanErr = 0 // run the full budget; we stop by sample count
	cfg.Seed = 42

	ex, err := core.NewExplorer(study.Space, oracle, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntraining on batches of %d simulations of %s:\n", cfg.BatchSize, *app)
	start := time.Now()
	ens, err := ex.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range ex.Steps() {
		fmt.Printf("  %4d sims (%4.2f%% of space): estimated error %5.2f%% ± %5.2f%%  (train %v)\n",
			s.Samples, 100*s.Fraction, s.Est.MeanErr, s.Est.SDErr, s.TrainTime.Round(time.Millisecond))
	}
	fmt.Printf("total: %d simulations, %v\n", oracle.SimulationsRun(), time.Since(start).Round(time.Millisecond))

	// Verify on points the model has never seen.
	rng := stats.NewRNG(7)
	var evalIdx []int
	sampled := map[int]bool{}
	for _, i := range ex.Samples() {
		sampled[i] = true
	}
	for len(evalIdx) < *check {
		i := rng.Intn(study.Space.Size())
		if !sampled[i] {
			sampled[i] = true
			evalIdx = append(evalIdx, i)
		}
	}
	truth, err := oracle.IPCs(evalIdx)
	if err != nil {
		log.Fatal(err)
	}
	enc := ex.Encoder()
	var errs []float64
	x := make([]float64, enc.Width())
	for i, idx := range evalIdx {
		enc.EncodeIndex(idx, x)
		pred := ens.Predict(x)
		errs = append(errs, 100*abs(pred-truth[i])/truth[i])
	}
	mean, sd := stats.MeanStd(errs)
	fmt.Printf("\ntrue error on %d unseen points: %.2f%% ± %.2f%% (p90 %.2f%%)\n",
		len(evalIdx), mean, sd, stats.Percentile(errs, 90))
	fmt.Printf("model self-estimate:            %.2f%% ± %.2f%%\n",
		ens.Estimate().MeanErr, ens.Estimate().SDErr)

	// Show a few example predictions.
	fmt.Println("\nsample predictions (unseen configurations):")
	for i := 0; i < 5 && i < len(evalIdx); i++ {
		fmt.Printf("  point %5d: predicted IPC %.4f, simulated IPC %.4f (%.2f%% error)\n",
			evalIdx[i], ens.PredictAll(enc.EncodeIndex(evalIdx[i], nil))[0], truth[i], errs[i])
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
