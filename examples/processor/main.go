// Processor: run the paper's incremental procedure (§3.3 steps 1–8) on
// the processor design space (Table 4.2) with an error target, exactly
// as the architect-facing workflow is described: keep simulating
// batches of 50 until the model says it is accurate enough, then trust
// the model.
//
// Also demonstrates the multi-task extension (Chapter 7): the same
// ensemble jointly predicts IPC, L2 miss rate and branch mispredict
// rate from shared hidden layers.
//
// Run: go run ./examples/processor [-app mgrid] [-target 2.0]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/studies"
)

func main() {
	app := flag.String("app", "mgrid", "application to study")
	target := flag.Float64("target", 2.0, "stop when estimated mean error falls below this %")
	budget := flag.Int("budget", 800, "maximum simulations")
	traceLen := flag.Int("insts", 30000, "instructions per simulation")
	flag.Parse()

	study := studies.Processor()
	oracle := experiments.NewSimOracle(study, *app, *traceLen, experiments.MultiTask)

	cfg := core.DefaultExploreConfig()
	cfg.MaxSamples = *budget
	cfg.TargetMeanErr = *target
	cfg.Seed = 99

	ex, err := core.NewExplorer(study.Space, oracle, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exploring %s for %s: batches of %d until estimated error < %.1f%%\n\n",
		study.Space.Name, *app, cfg.BatchSize, *target)
	ens, err := ex.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range ex.Steps() {
		fmt.Printf("  %4d sims (%4.2f%%): est %.2f%% ± %.2f%%  (train %v)\n",
			s.Samples, 100*s.Fraction, s.Est.MeanErr, s.Est.SDErr,
			s.TrainTime.Round(time.Millisecond))
	}
	final := ex.Steps()[len(ex.Steps())-1]
	if *target > 0 && final.Est.MeanErr <= *target {
		fmt.Printf("\nreached %.2f%% estimated error with %d simulations (%.2f%% of the space)\n",
			final.Est.MeanErr, final.Samples, 100*final.Fraction)
	} else {
		fmt.Printf("\nbudget exhausted at %.2f%% estimated error\n", final.Est.MeanErr)
	}

	// Multi-task predictions: one forward pass yields all three metrics.
	fmt.Println("\nmulti-task predictions vs simulation on three unseen points:")
	enc := ex.Encoder()
	for _, idx := range []int{137, 9999, 20000} {
		pred := ens.PredictAll(enc.EncodeIndex(idx, nil))
		r, err := oracle.Result(idx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  point %5d: IPC %.3f/%.3f   L2miss %.3f/%.3f   brMis %.4f/%.4f  (pred/sim)\n",
			idx, pred[0], r.IPC, pred[1], r.L2MissRate, pred[2], r.BrMispredRate)
	}
	fmt.Printf("\ntotal simulations: %d of %d points (%.2f%%)\n",
		oracle.SimulationsRun(), study.Space.Size(),
		100*float64(oracle.SimulationsRun())/float64(study.Space.Size()))
}
