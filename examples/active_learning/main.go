// Active_learning: the Chapter 7 extension — instead of random
// sampling, let the model choose which design points to simulate next
// (the ones its ensemble members disagree about most), and compare the
// resulting learning curves at identical simulation budgets.
//
// Run: go run ./examples/active_learning [-app mcf]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/studies"
)

func main() {
	app := flag.String("app", "mcf", "application to study")
	traceLen := flag.Int("insts", 24000, "instructions per simulation")
	end := flag.Int("end", 400, "final training budget")
	flag.Parse()

	study := studies.Processor()
	cfg := experiments.CurveConfig{
		TraceLen:   *traceLen,
		Start:      100,
		Step:       100,
		End:        *end,
		EvalPoints: 400,
		Model:      core.DefaultModelConfig(),
		Seed:       17,
	}

	fmt.Printf("random vs variance-driven sampling on %s / %s:\n\n", study.Name, *app)
	points, err := experiments.ActiveLearning(study, *app, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s %14s %14s %10s\n", "samples", "random err%", "active err%", "gain")
	for _, p := range points {
		gain := (p.RandomErr - p.ActiveErr) / p.RandomErr * 100
		fmt.Printf("%10d %13.2f%% %13.2f%% %+9.1f%%\n", p.Samples, p.RandomErr, p.ActiveErr, gain)
	}
	fmt.Println("\npositive gain = the model's own uncertainty picked more informative points")
}
