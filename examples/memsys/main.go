// Memsys: explore the memory-system design space (Table 4.1) the way
// the paper's architect would: build a model from a small simulation
// budget, read its self-reported accuracy, then use the model — not the
// simulator — to answer design questions over all 23,040 points:
//
//   - Which memory hierarchy maximizes IPC for this application?
//   - How much does the optimum depend on the write policy?
//   - What does the predicted IPC surface look like along the L2 axis?
//
// The point of the paper is precisely that these sweeps cost network
// evaluations (microseconds), not simulations (CPU-days).
//
// Run: go run ./examples/memsys [-app twolf] [-samples 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/studies"
)

func main() {
	app := flag.String("app", "twolf", "application to study")
	samples := flag.Int("samples", 500, "simulation budget")
	traceLen := flag.Int("insts", 30000, "instructions per simulation")
	flag.Parse()

	study := studies.MemorySystem()
	sp := study.Space
	oracle := experiments.NewSimOracle(study, *app, *traceLen, experiments.IPCOnly)

	cfg := core.DefaultExploreConfig()
	cfg.MaxSamples = *samples
	cfg.TargetMeanErr = 0
	cfg.Seed = 1

	ex, err := core.NewExplorer(sp, oracle, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ens, err := ex.Run()
	if err != nil {
		log.Fatal(err)
	}
	est := ens.Estimate()
	fmt.Printf("model of %s over %d-point memory space from %d simulations\n",
		*app, sp.Size(), oracle.SimulationsRun())
	fmt.Printf("self-reported accuracy: %.2f%% ± %.2f%% error\n\n", est.MeanErr, est.SDErr)

	// Sweep the ENTIRE space through the model (23,040 predictions).
	enc := ex.Encoder()
	type scored struct {
		idx int
		ipc float64
	}
	preds := make([]scored, sp.Size())
	x := make([]float64, enc.Width())
	for i := 0; i < sp.Size(); i++ {
		enc.EncodeIndex(i, x)
		preds[i] = scored{i, ens.Predict(x)}
	}
	sort.Slice(preds, func(a, b int) bool { return preds[a].ipc > preds[b].ipc })

	fmt.Println("top five predicted configurations:")
	for _, s := range preds[:5] {
		fmt.Printf("  IPC %.3f  %s\n", s.ipc, sp.Describe(s.idx))
	}

	// Verify the predicted best against the simulator.
	best := preds[0]
	truth, err := oracle.IPCs([]int{best.idx})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted best: IPC %.4f — simulator says %.4f (%.2f%% off)\n",
		best.ipc, truth[0], 100*abs(best.ipc-truth[0])/truth[0])

	// Predicted IPC along the L2-size axis with everything else at the
	// predicted optimum: the kind of sensitivity slice Figure 5.1's
	// models make free.
	fmt.Println("\npredicted L2-size sensitivity at the optimum point:")
	choices := sp.Choices(best.idx)
	for l2 := 0; l2 < 4; l2++ {
		choices[4] = l2 // L2 size axis
		enc.Encode(choices, x)
		fmt.Printf("  L2 %4.0fKB → predicted IPC %.3f\n", sp.Value(choices, 4), ens.Predict(x))
	}

	// Write-policy split: compare the best WT and best WB points.
	fmt.Println("\nbest configuration per write policy (predicted):")
	bestPer := map[string]scored{}
	for _, s := range preds {
		pol := sp.LevelName(sp.Choices(s.idx), 3)
		if _, ok := bestPer[pol]; !ok {
			bestPer[pol] = s
		}
		if len(bestPer) == 2 {
			break
		}
	}
	policies := make([]string, 0, len(bestPer))
	for pol := range bestPer {
		policies = append(policies, pol)
	}
	sort.Strings(policies)
	for _, pol := range policies {
		fmt.Printf("  %s: predicted IPC %.3f\n", pol, bestPer[pol].ipc)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
