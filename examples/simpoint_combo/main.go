// Simpoint_combo: combine ANN modeling with SimPoint (§5.3). The model
// trains on cheap, noisy SimPoint estimates instead of full
// simulations; accuracy is then measured against full simulation. This
// is the experiment behind Figures 5.4–5.7, shown here end to end for
// one application, including the instruction-reduction arithmetic.
//
// Run: go run ./examples/simpoint_combo [-app mcf]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/simpoint"
	"repro/internal/stats"
	"repro/internal/studies"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "mcf", "application to study")
	samples := flag.Int("samples", 400, "design points evaluated with SimPoint")
	traceLen := flag.Int("insts", 30000, "instructions per full simulation")
	check := flag.Int("check", 150, "full simulations used to measure true error")
	flag.Parse()

	study := studies.Processor()
	tr := workload.Get(*app, *traceLen)

	// SimPoint offline phase: phases → representative intervals.
	plan, err := simpoint.BuildPlan(tr, simpoint.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SimPoint analysis of %s (%d instructions):\n", *app, tr.Len())
	fmt.Printf("  %d intervals of %d instructions, %d clusters\n",
		plan.NumIntervals, plan.IntervalLen, plan.K)
	fmt.Printf("  chosen points: %d → %d detailed instructions per estimate (%.1fx fewer)\n\n",
		len(plan.Points), plan.InstructionsPerEstimate(),
		float64(tr.Len())/float64(plan.InstructionsPerEstimate()))

	// Train the ensemble on SimPoint estimates only.
	spOracle, err := experiments.NewSimPointOracle(study, *app, *traceLen, simpoint.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultExploreConfig()
	cfg.MaxSamples = *samples
	cfg.TargetMeanErr = 0
	cfg.Seed = 5
	ex, err := core.NewExplorer(study.Space, spOracle, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ens, err := ex.Run()
	if err != nil {
		log.Fatal(err)
	}
	est := ens.Estimate()
	fmt.Printf("model trained on %d SimPoint estimates\n", spOracle.SimulationsRun())
	fmt.Printf("cross-validation estimate (vs SimPoint targets): %.2f%% ± %.2f%%\n",
		est.MeanErr, est.SDErr)

	// True error requires full simulations of held-out points.
	fullOracle := experiments.NewSimOracle(study, *app, *traceLen, experiments.IPCOnly)
	rng := stats.NewRNG(8)
	sampled := map[int]bool{}
	for _, i := range ex.Samples() {
		sampled[i] = true
	}
	var evalIdx []int
	for len(evalIdx) < *check {
		i := rng.Intn(study.Space.Size())
		if !sampled[i] {
			sampled[i] = true
			evalIdx = append(evalIdx, i)
		}
	}
	truth, err := fullOracle.IPCs(evalIdx)
	if err != nil {
		log.Fatal(err)
	}
	enc := ex.Encoder()
	var errs []float64
	for i, idx := range evalIdx {
		pred := ens.Predict(enc.EncodeIndex(idx, nil))
		errs = append(errs, 100*abs(pred-truth[i])/truth[i])
	}
	mean, sd := stats.MeanStd(errs)
	fmt.Printf("true error vs full simulation:                   %.2f%% ± %.2f%%\n", mean, sd)
	fmt.Println("(the gap is SimPoint's own noise — the CV estimate cannot see it, §5.3)")

	// Figure 5.6-style arithmetic for this run.
	space := float64(study.Space.Size())
	annFactor := space / float64(*samples)
	spFactor := float64(tr.Len()) / float64(plan.InstructionsPerEstimate())
	fmt.Printf("\nreduction in simulated instructions vs exhaustive full simulation:\n")
	fmt.Printf("  ANN alone:       %6.0fx  (%d points instead of %d)\n", annFactor, *samples, study.Space.Size())
	fmt.Printf("  SimPoint alone:  %6.1fx  (per-simulation interval sampling)\n", spFactor)
	fmt.Printf("  combined:        %6.0fx\n", annFactor*spFactor)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
