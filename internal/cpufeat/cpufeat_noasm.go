//go:build !amd64

package cpufeat

func hasAVX2() bool { return false }
