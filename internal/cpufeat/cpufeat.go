// Package cpufeat detects the few CPU features the optional
// vectorized kernels in this repo are gated on. Feature bits only ever
// select between implementations that are bit-identical by
// construction (see internal/mathx and internal/ann), so detection can
// never change results — only speed.
package cpufeat

// AVX2 reports whether the CPU supports AVX2 and the OS saves the YMM
// register state (OSXSAVE + XCR0 bits 1 and 2). False on every
// non-amd64 architecture.
var AVX2 = hasAVX2()
