package cpufeat

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (only valid when CPUID reports OSXSAVE).
func xgetbv() (eax, edx uint32)

func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return false
	}
	// XCR0 bits 1 (SSE state) and 2 (AVX state): the OS context-switches
	// the YMM registers.
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
