// Package cliutil holds small helpers shared by the cmd front ends.
package cliutil

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bundle"
	"repro/internal/space"
)

// FlagWasSet reports whether the named flag was passed explicitly on
// the command line (flag.Parse must have run). Commands use it to tell
// a deliberate choice apart from a default — e.g. whether -app was
// chosen by the user or should be adopted from a loaded bundle's
// provenance.
func FlagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// ResolveBundle is the shared -load sequence of the bundle-aware cmds:
// read the bundle, verify it is still interpretable under the
// compiled-in study space, adopt the bundle's recorded application
// unless the user explicitly chose one via appFlag (in which case a
// cross-workload evaluation is assumed, with a warning to stderr), and
// apply the worker bound. It returns the bundle and the application the
// caller should simulate against.
func ResolveBundle(cmd, path string, sp *space.Space, appFlag, app string, workers int) (*bundle.Bundle, string, error) {
	b, err := bundle.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	if err := b.CompatibleWith(sp); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	if b.Meta.App != "" && b.Meta.App != app {
		if FlagWasSet(appFlag) {
			fmt.Fprintf(os.Stderr, "%s: warning: bundle was trained on %q, evaluating against %q\n",
				cmd, b.Meta.App, app)
		} else {
			app = b.Meta.App
		}
	}
	b.Ensemble.SetWorkers(workers)
	return b, app, nil
}
