package sim

import "testing"

func testDerived(t *testing.T, mutate func(*Config)) *derived {
	t.Helper()
	cfg := testConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := cfg.derive()
	if err != nil {
		t.Fatal(err)
	}
	return &d
}

func TestBusAcquireSerializes(t *testing.T) {
	d := testDerived(t, nil)
	m := newMemSys(d)
	// Two transfers requested at the same cycle must queue.
	end1 := m.acquireL2Bus(100, 4)
	end2 := m.acquireL2Bus(100, 4)
	if end1 != 104 {
		t.Fatalf("first transfer ends at %d", end1)
	}
	if end2 != 108 {
		t.Fatalf("second transfer should queue behind the first: ends at %d", end2)
	}
	// A later request after the bus drains starts immediately.
	if end3 := m.acquireL2Bus(1000, 4); end3 != 1004 {
		t.Fatalf("idle bus delayed a transfer to %d", end3)
	}
	if m.l2BusBusy != 12 {
		t.Fatalf("busy accounting %d, want 12", m.l2BusBusy)
	}
}

func TestLoadLatencyTiers(t *testing.T) {
	d := testDerived(t, nil)
	m := newMemSys(d)
	addr := uint64(0x2000_0000)

	// Cold load: L1 miss → L2 miss → DRAM.
	coldDone := m.load(addr, 0)
	if coldDone < d.l1dLat+d.l2Lat+d.dramLat {
		t.Fatalf("cold load returned in %d cycles, below the physical floor %d",
			coldDone, d.l1dLat+d.l2Lat+d.dramLat)
	}

	// Now resident in L1: pure L1 latency.
	warmDone := m.load(addr, 1000)
	if warmDone != 1000+d.l1dLat {
		t.Fatalf("L1 hit took %d cycles, want %d", warmDone-1000, d.l1dLat)
	}

	// Evict from L1 only (fill conflicting lines); next load = L2 hit.
	setStride := uint64(d.cfg.L1DSizeKB) * 1024 / uint64(d.cfg.L1DAssoc)
	for w := 1; w <= d.cfg.L1DAssoc; w++ {
		m.load(addr+uint64(w)*setStride, 2000)
	}
	l2Done := m.load(addr, 3000)
	l2Cost := l2Done - 3000
	if l2Cost <= d.l1dLat || l2Cost >= d.dramLat {
		t.Fatalf("L2 hit cost %d not between L1 (%d) and DRAM (%d)", l2Cost, d.l1dLat, d.dramLat)
	}
}

func TestWriteBackDirtyVictimTraffic(t *testing.T) {
	d := testDerived(t, nil)
	m := newMemSys(d)
	addr := uint64(0x3000_0000)
	m.store(addr, 0) // write-allocate, dirty in L1
	busyBefore := m.l2BusBusy
	// Evict the dirty line by filling its set.
	setStride := uint64(d.cfg.L1DSizeKB) * 1024 / uint64(d.cfg.L1DAssoc)
	for w := 1; w <= d.cfg.L1DAssoc; w++ {
		m.load(addr+uint64(w)*setStride, 1000)
	}
	if m.l2BusBusy <= busyBefore {
		t.Fatal("dirty victim writeback produced no L2 bus traffic")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	d := testDerived(t, func(c *Config) { c.L1DWrite = WriteThrough })
	m := newMemSys(d)
	addr := uint64(0x4000_0000)
	m.store(addr, 0)
	if m.l1d.probe(addr) {
		t.Fatal("write-through store allocated into L1")
	}
	// Every store crosses the L2 bus.
	if m.l2BusBusy == 0 {
		t.Fatal("write-through store produced no bus traffic")
	}
}

func TestIfetchPath(t *testing.T) {
	d := testDerived(t, nil)
	m := newMemSys(d)
	pc := uint64(0x0040_0000)
	cold := m.ifetch(pc, 0)
	if cold <= d.l1iLat {
		t.Fatalf("cold ifetch returned in %d cycles", cold)
	}
	warm := m.ifetch(pc, 1000)
	if warm != 1000+d.l1iLat {
		t.Fatalf("warm ifetch took %d cycles, want %d", warm-1000, d.l1iLat)
	}
}

func TestDerivedBusTransferCosts(t *testing.T) {
	// 32B L1 blocks over an 8B L2 bus: 4 cycles per block.
	d := testDerived(t, func(c *Config) { c.L2BusBytes = 8 })
	if d.l2BusD != 4 {
		t.Fatalf("32B block / 8B bus = %d cycles, want 4", d.l2BusD)
	}
	// 64B L2 blocks over the 64-bit FSB at 800MHz and a 4GHz core:
	// 8 beats × 1.25ns × 4GHz = 40 core cycles.
	if d.fsbBlock != 40 {
		t.Fatalf("FSB block transfer %d cycles, want 40", d.fsbBlock)
	}
	// DRAM: 100ns at 4GHz = 400 cycles.
	if d.dramLat != 400 {
		t.Fatalf("DRAM latency %d cycles, want 400", d.dramLat)
	}
}

func TestFSBFrequencyScalesTransferCost(t *testing.T) {
	slow := testDerived(t, func(c *Config) { c.FSBMHz = 533 })
	fast := testDerived(t, func(c *Config) { c.FSBMHz = 1400 })
	if slow.fsbBlock <= fast.fsbBlock {
		t.Fatalf("533MHz FSB (%d cycles) not slower than 1.4GHz (%d)", slow.fsbBlock, fast.fsbBlock)
	}
}
