package sim

// tournament is an Alpha 21264-style hybrid branch predictor: a local
// predictor (per-branch history indexing a table of 3-bit counters), a
// global predictor (2-bit counters indexed by global history), and a
// chooser (2-bit counters, also global-history indexed) that selects
// between them per prediction. The "entries" configuration parameter of
// the processor study (1K/2K/4K, Table 4.2) scales the local tables
// directly and the global/chooser tables by 4×, preserving the 21264's
// 1K-local/4K-global proportions.
type tournament struct {
	localHist []uint16 // per-PC local history registers
	localPred []uint8  // 3-bit counters indexed by local history
	global    []uint8  // 2-bit counters indexed by global history
	chooser   []uint8  // 2-bit counters: high = trust global

	localHistBits uint
	ghist         uint64
	gmask         uint64
	lmask         uint64

	predictions uint64
	mispredicts uint64
}

func newTournament(entries int) tournament {
	g := entries * 4
	t := tournament{
		localHist: make([]uint16, entries),
		localPred: make([]uint8, entries),
		global:    make([]uint8, g),
		chooser:   make([]uint8, g),
		lmask:     uint64(entries - 1),
		gmask:     uint64(g - 1),
	}
	t.localHistBits = log2(entries)
	for i := range t.localPred {
		t.localPred[i] = 3 // weakly not-taken in 3-bit space
	}
	for i := range t.global {
		t.global[i] = 1 // weakly not-taken
		t.chooser[i] = 1
	}
	return t
}

// predict returns the predicted direction for the branch at pc.
func (t *tournament) predict(pc uint64) bool {
	li := (pc >> 2) & t.lmask
	lp := t.localPred[uint64(t.localHist[li])&t.lmask] >= 4
	gi := t.ghist & t.gmask
	gp := t.global[gi] >= 2
	if t.chooser[gi] >= 2 {
		return gp
	}
	return lp
}

// update trains all three structures with the resolved outcome and
// records whether the prediction made for this branch was correct.
func (t *tournament) update(pc uint64, taken bool) {
	t.predictions++
	li := (pc >> 2) & t.lmask
	lhi := uint64(t.localHist[li]) & t.lmask
	gi := t.ghist & t.gmask

	lp := t.localPred[lhi] >= 4
	gp := t.global[gi] >= 2
	pred := lp
	if t.chooser[gi] >= 2 {
		pred = gp
	}
	if pred != taken {
		t.mispredicts++
	}

	// Chooser trains toward whichever component was right (and only
	// when they disagree, as in the 21264).
	if gp != lp {
		if gp == taken {
			t.chooser[gi] = sat2Inc(t.chooser[gi])
		} else {
			t.chooser[gi] = sat2Dec(t.chooser[gi])
		}
	}
	if taken {
		t.localPred[lhi] = sat3Inc(t.localPred[lhi])
		t.global[gi] = sat2Inc(t.global[gi])
	} else {
		t.localPred[lhi] = sat3Dec(t.localPred[lhi])
		t.global[gi] = sat2Dec(t.global[gi])
	}
	t.localHist[li] = (t.localHist[li] << 1) | b2u16(taken)
	t.ghist = (t.ghist << 1) | b2u64(taken)
}

// mispredictRate returns the fraction of predictions that were wrong.
func (t *tournament) mispredictRate() float64 {
	if t.predictions == 0 {
		return 0
	}
	return float64(t.mispredicts) / float64(t.predictions)
}

// btb is a set-associative branch target buffer with LRU replacement.
type btb struct {
	sets    int
	assoc   int
	setMask uint64
	valid   []bool
	tags    []uint64
	targets []uint64
	stamp   []uint64
	clock   uint64
}

func newBTB(sets, assoc int) btb {
	n := sets * assoc
	return btb{
		sets:    sets,
		assoc:   assoc,
		setMask: uint64(sets - 1),
		valid:   make([]bool, n),
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		stamp:   make([]uint64, n),
	}
}

// lookup returns the stored target for pc, if any.
func (b *btb) lookup(pc uint64) (target uint64, hit bool) {
	idx := pc >> 2
	set := int(idx&b.setMask) * b.assoc
	for w := 0; w < b.assoc; w++ {
		i := set + w
		if b.valid[i] && b.tags[i] == idx {
			b.clock++
			b.stamp[i] = b.clock
			return b.targets[i], true
		}
	}
	return 0, false
}

// update installs or refreshes the target for a taken branch at pc.
func (b *btb) update(pc, target uint64) {
	idx := pc >> 2
	set := int(idx&b.setMask) * b.assoc
	b.clock++
	lruWay, lruStamp := 0, ^uint64(0)
	for w := 0; w < b.assoc; w++ {
		i := set + w
		if b.valid[i] && b.tags[i] == idx {
			b.targets[i] = target
			b.stamp[i] = b.clock
			return
		}
		if !b.valid[i] {
			if lruStamp != 0 {
				lruWay, lruStamp = w, 0
			}
			continue
		}
		if b.stamp[i] < lruStamp {
			lruWay, lruStamp = w, b.stamp[i]
		}
	}
	i := set + lruWay
	b.valid[i] = true
	b.tags[i] = idx
	b.targets[i] = target
	b.stamp[i] = b.clock
}

func sat2Inc(v uint8) uint8 {
	if v < 3 {
		return v + 1
	}
	return v
}

func sat2Dec(v uint8) uint8 {
	if v > 0 {
		return v - 1
	}
	return v
}

func sat3Inc(v uint8) uint8 {
	if v < 7 {
		return v + 1
	}
	return v
}

func sat3Dec(v uint8) uint8 {
	if v > 0 {
		return v - 1
	}
	return v
}

func b2u16(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// resetStats clears the prediction counters without disturbing the
// learned state; used after the functional warmup pass.
func (t *tournament) resetStats() {
	t.predictions = 0
	t.mispredicts = 0
}
