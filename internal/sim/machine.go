package sim

import (
	"fmt"

	"repro/internal/workload"
)

// Result holds the metrics of one simulation. IPC is the paper's target
// metric; the remaining rates support the multi-task-learning extension
// (Chapter 7), which predicts several correlated statistics jointly.
type Result struct {
	App    string
	Insts  uint64
	Cycles uint64
	IPC    float64

	L1IMissRate    float64 // misses / accesses
	L1DMissRate    float64
	L2MissRate     float64
	BrMispredRate  float64 // direction or target wrong / branches
	L2BusUtil      float64 // busy cycles / total cycles
	FSBUtil        float64
	AvgROBOccupied float64
}

// Execution latencies in cycles per operation class. Multi-cycle units
// are pipelined except the FP divider, which is reserved until it
// drains (as in the 21264).
const (
	latIntALU = 1
	latIntMul = 7
	latFPALU  = 4
	latFPMul  = 4
	latFPDiv  = 16
	latBranch = 1
	latAGU    = 1 // address generation before the cache access
	latFwd    = 2 // store-to-load forwarding
)

const notDone = ^uint64(0)

// robEntry is one in-flight instruction.
type robEntry struct {
	idx int32 // trace index
}

// pendingStore tracks a dispatched, not-yet-committed store for
// store-to-load forwarding.
type pendingStore struct {
	idx  int32
	addr uint64
}

type machine struct {
	d     *derived
	trace *workload.Trace
	mem   memSys
	bp    tournament
	btb   btb

	doneAt []uint64 // per trace index: cycle the result is available

	rob     []robEntry
	robHead int
	robLen  int

	waitQ []int32 // trace indices dispatched but not yet issued, program order

	intFree, fpFree     int
	lsqLoadFree         int
	lsqStoreFree        int
	brFree              int
	stores              []pendingStore // FIFO of in-flight stores
	fpDivFreeAt         uint64
	fetchIdx            int
	fetchStallUntil     uint64
	fetchBlockedOnBr    bool  // a mispredicted branch owns the front end
	pendingRedirect     int32 // trace index of that branch
	lastICLine          uint64
	icPrimed            bool
	branches            uint64
	brMispredicts       uint64
	robOccupancySamples uint64
	robOccupancySum     uint64
	cycle               uint64

	events     []uint64 // min-heap of future wakeup cycles
	progressed bool     // any state change in the current cycle
}

// pushEvent records a future cycle at which machine state can change,
// enabling exact fast-forward over idle stretches (e.g. a DRAM-bound
// ROB stall).
func (m *machine) pushEvent(t uint64) {
	if t <= m.cycle {
		return
	}
	m.events = append(m.events, t)
	i := len(m.events) - 1
	for i > 0 {
		p := (i - 1) / 2
		if m.events[p] <= m.events[i] {
			break
		}
		m.events[p], m.events[i] = m.events[i], m.events[p]
		i = p
	}
}

// nextEvent returns the earliest recorded wakeup strictly after the
// current cycle, discarding stale entries.
func (m *machine) nextEvent() (uint64, bool) {
	for len(m.events) > 0 {
		top := m.events[0]
		if top > m.cycle {
			return top, true
		}
		last := len(m.events) - 1
		m.events[0] = m.events[last]
		m.events = m.events[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(m.events) && m.events[l] < m.events[small] {
				small = l
			}
			if r < len(m.events) && m.events[r] < m.events[small] {
				small = r
			}
			if small == i {
				break
			}
			m.events[i], m.events[small] = m.events[small], m.events[i]
			i = small
		}
	}
	return 0, false
}

// Run simulates tr on the architecture described by cfg and returns the
// resulting metrics. It is deterministic: identical inputs always yield
// the identical Result. The error is non-nil only for invalid
// configurations or a watchdog-detected scheduling bug.
func Run(cfg Config, tr *workload.Trace) (Result, error) {
	return RunWindow(cfg, tr, 0, tr.Len())
}

// RunWindow simulates only the window [lo, hi) of tr in detail, with
// the machine's caches and predictors functionally warmed first by the
// full trace (steady-state priming, as Run does) and then by the
// prefix [0, lo) — so the detailed window starts from the same
// microarchitectural state it would have reached inside a full run.
// This is SimPoint-style functional warming: only hi-lo instructions
// are simulated cycle by cycle.
func RunWindow(cfg Config, tr *workload.Trace, lo, hi int) (Result, error) {
	d, err := cfg.derive()
	if err != nil {
		return Result{}, err
	}
	if tr.Len() == 0 {
		return Result{}, fmt.Errorf("sim: empty trace for app %q", tr.App)
	}
	if lo < 0 || hi > tr.Len() || lo >= hi {
		return Result{}, fmt.Errorf("sim: invalid window [%d,%d) of %d", lo, hi, tr.Len())
	}
	window := tr.Slice(lo, hi)
	m := newMachine(&d, cfg, window)
	if !cfg.ColdStart {
		m.warmRange(tr, 0, tr.Len())
		m.warmRange(tr, 0, lo)
		m.mem.l1i.resetStats()
		m.mem.l1d.resetStats()
		m.mem.l2.resetStats()
		m.bp.resetStats()
	}
	if err := m.run(); err != nil {
		return Result{}, err
	}
	return m.result(), nil
}

func newMachine(d *derived, cfg Config, tr *workload.Trace) *machine {
	m := &machine{
		d:            d,
		trace:        tr,
		mem:          newMemSys(d),
		bp:           newTournament(cfg.BPredEntries),
		btb:          newBTB(cfg.BTBSets, cfg.BTBAssoc),
		doneAt:       make([]uint64, tr.Len()),
		rob:          make([]robEntry, cfg.ROBSize),
		waitQ:        make([]int32, 0, d.iqCap),
		intFree:      cfg.IntRegs,
		fpFree:       cfg.FPRegs,
		lsqLoadFree:  cfg.LSQLoads,
		lsqStoreFree: cfg.LSQStores,
		brFree:       cfg.MaxBranches,
		stores:       make([]pendingStore, 0, cfg.LSQStores),
	}
	for i := range m.doneAt {
		m.doneAt[i] = notDone
	}
	return m
}

func (m *machine) run() error {
	n := m.trace.Len()
	// Watchdog: even a fully serialized DRAM-bound machine finishes in
	// well under ~2500 cycles per instruction.
	limit := uint64(n)*2500 + 1_000_000
	for m.fetchIdx < n || m.robLen > 0 {
		m.progressed = false
		m.commit()
		m.issue()
		m.fetch()
		m.robOccupancySum += uint64(m.robLen)
		m.robOccupancySamples++
		if !m.progressed {
			// Nothing changed this cycle, so nothing can change until
			// the next recorded event; jump straight to it.
			if next, ok := m.nextEvent(); ok && next > m.cycle+1 {
				skipped := next - m.cycle - 1
				m.robOccupancySum += skipped * uint64(m.robLen)
				m.robOccupancySamples += skipped
				m.cycle = next - 1
			}
		}
		m.cycle++
		if m.cycle > limit {
			return fmt.Errorf("sim: watchdog expired at cycle %d (fetched %d/%d, rob %d) — scheduling bug",
				m.cycle, m.fetchIdx, n, m.robLen)
		}
	}
	return nil
}

// warmRange performs one functional pass over [lo, hi) of tr, priming cache tags
// at both levels, the branch predictor and the BTB, then clears the
// statistics those structures accumulated. The timed simulation that
// follows therefore measures steady-state behaviour, which is what a
// design-space study compares across configurations; without this,
// short traces would be dominated by compulsory misses that no studied
// parameter can affect. The L2 warm stream is L1-filtered, mirroring
// the traffic it would see live.
//
// A consequence of warming with a trace whose realized data footprint
// is a few hundred kilobytes (the physical limit of a short trace) is
// that L2 capacities well above that footprint behave as "infinite":
// capacity misses vanish and only the CACTI latency penalty of the
// larger array remains. Smaller L2 settings — which include the entire
// L2 axis of the processor study — retain genuine capacity behaviour.
// See DESIGN.md, substitutions.
func (m *machine) warmRange(tr *workload.Trace, lo, hi int) {
	var lastLine uint64
	primed := false
	for i := lo; i < hi; i++ {
		in := &tr.Insts[i]
		line := in.PC >> m.d.l1iBlockShift
		if !primed || line != lastLine {
			if hit, _, _ := m.mem.l1i.access(in.PC, false); !hit {
				m.mem.l2.access(in.PC, false)
			}
			lastLine = line
			primed = true
		}
		switch in.Class {
		case workload.Load:
			if hit, _, _ := m.mem.l1d.access(in.Addr, false); !hit {
				m.mem.l2.access(in.Addr, false)
			}
		case workload.Store:
			if m.d.cfg.L1DWrite == WriteBack {
				if hit, _, _ := m.mem.l1d.access(in.Addr, true); !hit {
					m.mem.l2.access(in.Addr, false)
				}
			} else {
				if m.mem.l1d.probe(in.Addr) {
					m.mem.l1d.access(in.Addr, false)
				}
				if m.mem.l2.probe(in.Addr) {
					m.mem.l2.touchWrite(in.Addr)
				}
			}
		case workload.Branch:
			m.bp.update(in.PC, in.Taken)
			if in.Taken {
				m.btb.update(in.PC, in.Target)
			}
		}
	}
}

// commit retires up to Width completed instructions from the ROB head,
// in program order, performing the memory side of stores and releasing
// their resources.
func (m *machine) commit() {
	cfg := &m.d.cfg
	for retired := 0; retired < cfg.Width && m.robLen > 0; retired++ {
		e := &m.rob[m.robHead]
		idx := e.idx
		if m.doneAt[idx] == notDone || m.doneAt[idx] > m.cycle {
			return
		}
		m.progressed = true
		in := &m.trace.Insts[idx]
		switch in.Class {
		case workload.Store:
			m.mem.store(in.Addr, m.cycle)
			m.lsqStoreFree++
			// Program-order commit means the oldest pending store is
			// exactly this one.
			m.stores = m.stores[1:]
			if len(m.stores) == 0 {
				// Reset the backing array so the FIFO slice does not
				// creep through memory over a long run.
				m.stores = m.stores[:0:cap(m.stores)]
			}
		case workload.Load:
			m.lsqLoadFree++
			m.intFree++
		case workload.Branch:
			m.brFree++
		default:
			if in.Class.IsFP() {
				m.fpFree++
			} else {
				m.intFree++
			}
		}
		m.robHead++
		if m.robHead == len(m.rob) {
			m.robHead = 0
		}
		m.robLen--
	}
}

// issue selects up to Width ready instructions from the issue window
// (oldest first), binds functional units, and schedules completion
// times. Loads consult the store queue for forwarding and otherwise
// access the memory hierarchy.
func (m *machine) issue() {
	cfg := &m.d.cfg
	issued := 0
	aluUsed, fpUsed, loadUsed, storeUsed := 0, 0, 0, 0
	w := m.waitQ[:0] // compact the survivors in place, preserving order
	for qi, idx := range m.waitQ {
		if issued >= cfg.Width {
			w = append(w, m.waitQ[qi:]...)
			break
		}
		in := &m.trace.Insts[idx]
		if !m.operandsReady(idx, in) || !m.fuAvailable(in.Class, &aluUsed, &fpUsed, &loadUsed, &storeUsed) {
			w = append(w, idx)
			continue
		}
		m.schedule(idx, in)
		m.progressed = true
		issued++
	}
	m.waitQ = w
}

// operandsReady reports whether both register sources of instruction
// idx have produced their values by the current cycle. Producers that
// precede the start of the trace window (which happens when simulating
// a SimPoint interval sliced from a longer trace) are treated as
// already available — their values were computed before the interval.
func (m *machine) operandsReady(idx int32, in *workload.Inst) bool {
	if in.Src1 > 0 && idx-in.Src1 >= 0 {
		p := m.doneAt[idx-in.Src1]
		if p == notDone || p > m.cycle {
			return false
		}
	}
	if in.Src2 > 0 && idx-in.Src2 >= 0 {
		p := m.doneAt[idx-in.Src2]
		if p == notDone || p > m.cycle {
			return false
		}
	}
	return true
}

// fuAvailable reserves a functional-unit slot for the class if one is
// free this cycle.
func (m *machine) fuAvailable(c workload.OpClass, alu, fp, ld, st *int) bool {
	cfg := &m.d.cfg
	switch c {
	case workload.IntALU, workload.IntMul, workload.Branch:
		if *alu >= cfg.IntALUs {
			return false
		}
		*alu++
	case workload.FPALU, workload.FPMul:
		if *fp >= cfg.FPUs {
			return false
		}
		*fp++
	case workload.FPDiv:
		if *fp >= cfg.FPUs || m.cycle < m.fpDivFreeAt {
			return false
		}
		*fp++
	case workload.Load:
		if *ld >= cfg.LoadPorts {
			return false
		}
		*ld++
	case workload.Store:
		if *st >= cfg.StorePorts {
			return false
		}
		*st++
	}
	return true
}

// schedule computes the completion cycle for instruction idx.
func (m *machine) schedule(idx int32, in *workload.Inst) {
	switch in.Class {
	case workload.IntALU:
		m.doneAt[idx] = m.cycle + latIntALU
	case workload.IntMul:
		m.doneAt[idx] = m.cycle + latIntMul
	case workload.FPALU:
		m.doneAt[idx] = m.cycle + latFPALU
	case workload.FPMul:
		m.doneAt[idx] = m.cycle + latFPMul
	case workload.FPDiv:
		m.doneAt[idx] = m.cycle + latFPDiv
		m.fpDivFreeAt = m.cycle + latFPDiv // unpipelined divider
	case workload.Branch:
		m.doneAt[idx] = m.cycle + latBranch
		if m.fetchBlockedOnBr && m.pendingRedirect == idx {
			// The mispredicted branch resolves; the front end restarts
			// after the redirect (pipeline refill) penalty.
			m.fetchBlockedOnBr = false
			m.fetchStallUntil = m.doneAt[idx] + m.d.redirect
			m.pushEvent(m.fetchStallUntil)
		}
	case workload.Store:
		m.doneAt[idx] = m.cycle + latAGU
	case workload.Load:
		if fwd := m.forward(idx, in.Addr); fwd {
			m.doneAt[idx] = m.cycle + latFwd
		} else {
			m.doneAt[idx] = m.mem.load(in.Addr, m.cycle+latAGU)
		}
	}
	m.pushEvent(m.doneAt[idx])
}

// forward reports whether an older in-flight store to the same address
// can forward its value to the load at idx.
func (m *machine) forward(idx int32, addr uint64) bool {
	for i := len(m.stores) - 1; i >= 0; i-- {
		s := m.stores[i]
		if s.idx >= idx {
			continue
		}
		if s.addr == addr {
			return true
		}
	}
	return false
}

// fetch brings up to Width instructions per cycle into the ROB, subject
// to the I-cache, the branch predictor, taken-branch fetch breaks, and
// every back-end resource (ROB, issue window, registers, LSQ, branch
// slots).
func (m *machine) fetch() {
	if m.fetchBlockedOnBr || m.cycle < m.fetchStallUntil {
		return
	}
	cfg := &m.d.cfg
	n := m.trace.Len()
	for fetched := 0; fetched < cfg.Width && m.fetchIdx < n; fetched++ {
		in := &m.trace.Insts[m.fetchIdx]

		// Structural resources.
		if m.robLen == len(m.rob) || len(m.waitQ) == cap(m.waitQ) {
			return
		}
		switch in.Class {
		case workload.Load:
			if m.lsqLoadFree == 0 || m.intFree == 0 {
				return
			}
		case workload.Store:
			if m.lsqStoreFree == 0 {
				return
			}
		case workload.Branch:
			if m.brFree == 0 {
				return
			}
		default:
			if in.Class.IsFP() {
				if m.fpFree == 0 {
					return
				}
			} else if m.intFree == 0 {
				return
			}
		}

		// Instruction cache: a new line triggers a lookup; a miss
		// stalls the front end until the fill returns.
		line := in.PC >> m.d.l1iBlockShift
		if !m.icPrimed || line != m.lastICLine {
			ready := m.mem.ifetch(in.PC, m.cycle)
			m.lastICLine = line
			m.icPrimed = true
			if ready > m.cycle+m.d.l1iLat {
				m.fetchStallUntil = ready
				m.pushEvent(ready)
				m.progressed = true
				return
			}
		}

		// Consume the resources and dispatch.
		switch in.Class {
		case workload.Load:
			m.lsqLoadFree--
			m.intFree--
		case workload.Store:
			m.lsqStoreFree--
			m.stores = append(m.stores, pendingStore{idx: int32(m.fetchIdx), addr: in.Addr})
		case workload.Branch:
			m.brFree--
		default:
			if in.Class.IsFP() {
				m.fpFree--
			} else {
				m.intFree--
			}
		}
		tail := m.robHead + m.robLen
		if tail >= len(m.rob) {
			tail -= len(m.rob)
		}
		m.rob[tail] = robEntry{idx: int32(m.fetchIdx)}
		m.robLen++
		m.waitQ = append(m.waitQ, int32(m.fetchIdx))
		m.fetchIdx++
		m.progressed = true

		if in.Class == workload.Branch {
			m.branches++
			predTaken := m.bp.predict(in.PC)
			target, btbHit := m.btb.lookup(in.PC)
			correct := predTaken == in.Taken
			if in.Taken && (!btbHit || target != in.Target) {
				correct = false
			}
			m.bp.update(in.PC, in.Taken)
			if in.Taken {
				m.btb.update(in.PC, in.Target)
			}
			if !correct {
				m.brMispredicts++
				m.fetchBlockedOnBr = true
				m.pendingRedirect = int32(m.fetchIdx - 1)
				return
			}
			if in.Taken {
				// Correctly predicted taken branch still ends the
				// fetch group.
				return
			}
		}
	}
}

func (m *machine) result() Result {
	r := Result{
		App:         m.trace.App,
		Insts:       uint64(m.trace.Len()),
		Cycles:      m.cycle,
		L1IMissRate: m.mem.l1i.missRate(),
		L1DMissRate: m.mem.l1d.missRate(),
		L2MissRate:  m.mem.l2.missRate(),
	}
	if m.cycle > 0 {
		r.IPC = float64(r.Insts) / float64(m.cycle)
		r.L2BusUtil = float64(m.mem.l2BusBusy) / float64(m.cycle)
		r.FSBUtil = float64(m.mem.fsbBusy) / float64(m.cycle)
	}
	if m.branches > 0 {
		r.BrMispredRate = float64(m.brMispredicts) / float64(m.branches)
	}
	if m.robOccupancySamples > 0 {
		r.AvgROBOccupied = float64(m.robOccupancySum) / float64(m.robOccupancySamples)
	}
	return r
}
