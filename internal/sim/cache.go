package sim

// cache is a set-associative cache with true-LRU replacement. It tracks
// tags and dirty bits only (the simulator is trace-driven; data values
// never matter), using flat arrays and a monotonically increasing use
// stamp for LRU so lookups stay allocation-free on the hot path.
type cache struct {
	sets       int
	assoc      int
	blockShift uint
	setMask    uint64

	valid []bool
	dirty []bool
	tags  []uint64
	stamp []uint64

	clock uint64 // LRU use counter

	accesses uint64
	misses   uint64
}

// newCache builds a cache from a size in kilobytes, a block size in
// bytes, and an associativity. Geometry is validated by Config, so this
// constructor assumes consistent arguments.
func newCache(sizeKB, block, assoc int) cache {
	sets := sizeKB * 1024 / (block * assoc)
	n := sets * assoc
	return cache{
		sets:       sets,
		assoc:      assoc,
		blockShift: log2(block),
		setMask:    uint64(sets - 1),
		valid:      make([]bool, n),
		dirty:      make([]bool, n),
		tags:       make([]uint64, n),
		stamp:      make([]uint64, n),
	}
}

// probe reports whether addr currently hits, without updating any
// replacement state. Used by tests and by write-through stores that do
// not allocate.
func (c *cache) probe(addr uint64) bool {
	line := addr >> c.blockShift
	set := int(line&c.setMask) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[set+w] && c.tags[set+w] == line {
			return true
		}
	}
	return false
}

// access looks up addr, updates LRU state, allocates on a miss, and
// reports whether the access hit along with the victim line (valid only
// when a dirty block was evicted). write marks the block dirty on hit
// (and on the filled block, for write-allocate callers).
func (c *cache) access(addr uint64, write bool) (hit bool, victimDirty bool, victimAddr uint64) {
	c.accesses++
	line := addr >> c.blockShift
	set := int(line&c.setMask) * c.assoc
	c.clock++
	lruWay, lruStamp := 0, ^uint64(0)
	for w := 0; w < c.assoc; w++ {
		i := set + w
		if c.valid[i] && c.tags[i] == line {
			c.stamp[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return true, false, 0
		}
		if !c.valid[i] {
			// Prefer invalid ways; stamp 0 loses every comparison below.
			if lruStamp != 0 {
				lruWay, lruStamp = w, 0
			}
			continue
		}
		if c.stamp[i] < lruStamp {
			lruWay, lruStamp = w, c.stamp[i]
		}
	}
	c.misses++
	i := set + lruWay
	if c.valid[i] && c.dirty[i] {
		victimDirty = true
		victimAddr = c.tags[i] << c.blockShift
	}
	c.valid[i] = true
	c.tags[i] = line
	c.stamp[i] = c.clock
	c.dirty[i] = write
	return false, victimDirty, victimAddr
}

// touchWrite marks an existing line dirty if present (used when a store
// commits under write-back after its block was filled by a miss).
func (c *cache) touchWrite(addr uint64) bool {
	line := addr >> c.blockShift
	set := int(line&c.setMask) * c.assoc
	for w := 0; w < c.assoc; w++ {
		i := set + w
		if c.valid[i] && c.tags[i] == line {
			c.dirty[i] = true
			c.clock++
			c.stamp[i] = c.clock
			return true
		}
	}
	return false
}

// missRate returns misses/accesses, or 0 when the cache was never used.
func (c *cache) missRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// resetStats clears the access/miss counters without disturbing cache
// contents; used after the functional warmup pass.
func (c *cache) resetStats() {
	c.accesses = 0
	c.misses = 0
}
