package sim

import "testing"

func TestTournamentLearnsBias(t *testing.T) {
	bp := newTournament(1024)
	pc := uint64(0x400100)
	// Always-taken branch: after warmup the predictor must predict taken.
	for i := 0; i < 64; i++ {
		bp.update(pc, true)
	}
	if !bp.predict(pc) {
		t.Fatal("always-taken branch predicted not-taken after training")
	}
}

func TestTournamentLearnsPattern(t *testing.T) {
	bp := newTournament(1024)
	pc := uint64(0x400200)
	pattern := []bool{true, true, false} // period-3 loop-like pattern
	// Train for several periods.
	for i := 0; i < 600; i++ {
		bp.update(pc, pattern[i%3])
	}
	// Now check predictions track the pattern.
	correct := 0
	for i := 0; i < 60; i++ {
		want := pattern[i%3]
		if bp.predict(pc) == want {
			correct++
		}
		bp.update(pc, want)
	}
	if correct < 55 {
		t.Fatalf("period-3 pattern predicted correctly only %d/60", correct)
	}
}

func TestTournamentMispredictAccounting(t *testing.T) {
	bp := newTournament(1024)
	pc := uint64(0x400300)
	for i := 0; i < 100; i++ {
		bp.update(pc, true)
	}
	if bp.predictions != 100 {
		t.Fatalf("predictions = %d", bp.predictions)
	}
	if bp.mispredicts == 0 || bp.mispredicts > 20 {
		t.Fatalf("mispredicts = %d, want a few cold-start ones", bp.mispredicts)
	}
	rate := bp.mispredictRate()
	if rate <= 0 || rate > 0.2 {
		t.Fatalf("mispredict rate %v", rate)
	}
	bp.resetStats()
	if bp.mispredictRate() != 0 {
		t.Fatal("resetStats did not clear predictor counters")
	}
}

func TestTournamentTracksTwoOpposedBranches(t *testing.T) {
	// Two interleaved branches with opposite fixed outcomes form a
	// perfectly regular stream; after warmup the tournament (via its
	// global or local side) should predict both nearly always.
	bp := newTournament(1024)
	a, b := uint64(0x400000), uint64(0x400004)
	correct, total := 0, 0
	for i := 0; i < 400; i++ {
		if i >= 200 {
			total += 2
			if bp.predict(a) {
				correct++
			}
			bp.update(a, true)
			if !bp.predict(b) {
				correct++
			}
			bp.update(b, false)
			continue
		}
		bp.update(a, true)
		bp.update(b, false)
	}
	if correct < total*9/10 {
		t.Fatalf("steady-state accuracy %d/%d on a trivial stream", correct, total)
	}
}

func TestBTBStoresAndEvicts(t *testing.T) {
	b := newBTB(4, 2) // 4 sets, 2 ways
	pc, target := uint64(0x400000), uint64(0x500000)
	if _, hit := b.lookup(pc); hit {
		t.Fatal("cold BTB hit")
	}
	b.update(pc, target)
	got, hit := b.lookup(pc)
	if !hit || got != target {
		t.Fatalf("lookup = %#x,%v", got, hit)
	}
	// Update with a new target overwrites in place.
	b.update(pc, target+8)
	if got, _ := b.lookup(pc); got != target+8 {
		t.Fatal("target not updated")
	}
	// Three conflicting entries in a 2-way set evict the LRU.
	setStride := uint64(4 * 4) // sets * 4 bytes
	b.update(pc+setStride, 1)
	b.lookup(pc) // refresh pc
	b.update(pc+2*setStride, 2)
	if _, hit := b.lookup(pc); !hit {
		t.Fatal("recently used BTB entry evicted")
	}
	if _, hit := b.lookup(pc + setStride); hit {
		t.Fatal("LRU BTB entry not evicted")
	}
}

func TestSaturatingCounters(t *testing.T) {
	if sat2Inc(3) != 3 || sat2Dec(0) != 0 {
		t.Fatal("2-bit counters do not saturate")
	}
	if sat3Inc(7) != 7 || sat3Dec(0) != 0 {
		t.Fatal("3-bit counters do not saturate")
	}
	if sat2Inc(1) != 2 || sat2Dec(2) != 1 {
		t.Fatal("2-bit counters do not count")
	}
	if sat3Inc(3) != 4 || sat3Dec(4) != 3 {
		t.Fatal("3-bit counters do not count")
	}
}
