package sim

import (
	"testing"

	"repro/internal/workload"
)

// testConfig returns a valid mid-range machine for simulator tests.
func testConfig() Config {
	return Config{
		FreqGHz: 4, Width: 4, MaxBranches: 16,
		IntALUs: 4, FPUs: 2, LoadPorts: 2, StorePorts: 2,
		ROBSize: 128, IntRegs: 96, FPRegs: 96, LSQLoads: 48, LSQStores: 48,
		BPredEntries: 2048, BTBSets: 2048, BTBAssoc: 2,
		L1ISizeKB: 32, L1IBlock: 32, L1IAssoc: 2,
		L1DSizeKB: 32, L1DBlock: 32, L1DAssoc: 2, L1DWrite: WriteBack,
		L2SizeKB: 1024, L2Block: 64, L2Assoc: 8,
		L2BusBytes: 32, FSBMHz: 800, SDRAMLatNS: 100,
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := workload.Get("gzip", 8000)
	a, err := Run(testConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical runs differ:\n%+v\n%+v", a, b)
	}
}

func TestIPCBounds(t *testing.T) {
	for _, app := range workload.Apps() {
		tr := workload.Get(app, 8000)
		r, err := Run(testConfig(), tr)
		if err != nil {
			t.Fatal(err)
		}
		if r.IPC <= 0 {
			t.Errorf("%s: non-positive IPC %v", app, r.IPC)
		}
		if r.IPC > float64(testConfig().Width) {
			t.Errorf("%s: IPC %v exceeds width", app, r.IPC)
		}
		if r.Insts != 8000 {
			t.Errorf("%s: committed %d instructions", app, r.Insts)
		}
	}
}

func TestRatesAreRates(t *testing.T) {
	r, err := Run(testConfig(), workload.Get("mcf", 8000))
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"L1I": r.L1IMissRate, "L1D": r.L1DMissRate, "L2": r.L2MissRate,
		"brMis": r.BrMispredRate,
	} {
		if v < 0 || v > 1 {
			t.Errorf("%s rate %v outside [0,1]", name, v)
		}
	}
	if r.AvgROBOccupied < 0 || r.AvgROBOccupied > float64(testConfig().ROBSize) {
		t.Errorf("ROB occupancy %v outside [0,%d]", r.AvgROBOccupied, testConfig().ROBSize)
	}
}

func TestWiderMachineNotSlower(t *testing.T) {
	tr := workload.Get("gzip", 12000)
	narrow := testConfig()
	narrow.Width = 2
	wide := testConfig()
	wide.Width = 8
	wide.IntALUs, wide.FPUs = 8, 4
	rn, err := Run(narrow, tr)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(wide, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rw.IPC < rn.IPC*0.98 {
		t.Fatalf("8-wide IPC %v below 2-wide IPC %v", rw.IPC, rn.IPC)
	}
}

func TestBiggerL2NotSlower(t *testing.T) {
	tr := workload.Get("mcf", 12000)
	small := testConfig()
	small.L2SizeKB = 256
	small.L2Assoc = 4
	big := testConfig()
	big.L2SizeKB = 2048
	rs, err := Run(small, tr)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(big, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rb.IPC < rs.IPC {
		t.Fatalf("2MB L2 IPC %v below 256KB IPC %v for mcf", rb.IPC, rs.IPC)
	}
	if rb.L2MissRate > rs.L2MissRate {
		t.Fatalf("2MB L2 misses more than 256KB: %v vs %v", rb.L2MissRate, rs.L2MissRate)
	}
}

func TestColdStartSlower(t *testing.T) {
	tr := workload.Get("crafty", 8000)
	warm := testConfig()
	cold := testConfig()
	cold.ColdStart = true
	rw, err := Run(warm, tr)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(cold, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rc.IPC >= rw.IPC {
		t.Fatalf("cold start (%v) not slower than warm (%v)", rc.IPC, rw.IPC)
	}
	if rc.L1DMissRate <= rw.L1DMissRate {
		t.Fatalf("cold start should raise L1D miss rate: %v vs %v", rc.L1DMissRate, rw.L1DMissRate)
	}
}

func TestWriteThroughGeneratesBusTraffic(t *testing.T) {
	tr := workload.Get("gzip", 12000)
	wb := testConfig()
	wt := testConfig()
	wt.L1DWrite = WriteThrough
	rwb, err := Run(wb, tr)
	if err != nil {
		t.Fatal(err)
	}
	rwt, err := Run(wt, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rwt.L2BusUtil <= rwb.L2BusUtil {
		t.Fatalf("write-through L2 bus utilization %v not above write-back %v",
			rwt.L2BusUtil, rwb.L2BusUtil)
	}
}

func TestFasterFSBNotSlower(t *testing.T) {
	tr := workload.Get("equake", 12000)
	slow := testConfig()
	slow.FSBMHz = 533
	slow.L2SizeKB = 256
	slow.L2Assoc = 4
	fast := slow
	fast.FSBMHz = 1400
	rs, err := Run(slow, tr)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(fast, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rf.IPC < rs.IPC {
		t.Fatalf("1.4GHz FSB IPC %v below 533MHz IPC %v", rf.IPC, rs.IPC)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := testConfig()
	cfg.ROBSize = 0
	if _, err := Run(cfg, workload.Get("gzip", 1000)); err == nil {
		t.Fatal("zero ROB accepted")
	}
	cfg = testConfig()
	cfg.L1DBlock = 48 // not a power of two
	if _, err := Run(cfg, workload.Get("gzip", 1000)); err == nil {
		t.Fatal("non-power-of-two block accepted")
	}
	cfg = testConfig()
	cfg.L2Block = 32
	cfg.L1DBlock = 64
	if _, err := Run(cfg, workload.Get("gzip", 1000)); err == nil {
		t.Fatal("L2 block smaller than L1 block accepted")
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	if _, err := Run(testConfig(), &workload.Trace{App: "empty"}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestRunWindowMatchesFullWhenWholeTrace(t *testing.T) {
	tr := workload.Get("mesa", 6000)
	full, err := Run(testConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	win, err := RunWindow(testConfig(), tr, 0, tr.Len())
	if err != nil {
		t.Fatal(err)
	}
	if full != win {
		t.Fatal("RunWindow over the full range differs from Run")
	}
}

func TestRunWindowSubrange(t *testing.T) {
	tr := workload.Get("mesa", 8000)
	r, err := RunWindow(testConfig(), tr, 2000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts != 2000 {
		t.Fatalf("window committed %d instructions, want 2000", r.Insts)
	}
	if r.IPC <= 0 || r.IPC > 4 {
		t.Fatalf("window IPC %v implausible", r.IPC)
	}
}

func TestRunWindowRejectsBadRanges(t *testing.T) {
	tr := workload.Get("mesa", 4000)
	for _, c := range [][2]int{{-1, 100}, {100, 100}, {3000, 2000}, {0, 4001}} {
		if _, err := RunWindow(testConfig(), tr, c[0], c[1]); err == nil {
			t.Errorf("window [%d,%d) accepted", c[0], c[1])
		}
	}
}

func TestLowerFrequencyRaisesIPC(t *testing.T) {
	// At 2 GHz the memory system is relatively faster, so IPC rises even
	// though wall-clock performance falls — the classic frequency
	// tradeoff the processor study explores.
	tr := workload.Get("mcf", 12000)
	at4 := testConfig()
	at2 := testConfig()
	at2.FreqGHz = 2
	r4, err := Run(at4, tr)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(at2, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r2.IPC <= r4.IPC {
		t.Fatalf("2GHz IPC %v not above 4GHz IPC %v for memory-bound mcf", r2.IPC, r4.IPC)
	}
}

func TestTinyTraceCompletes(t *testing.T) {
	tr := workload.Get("gzip", 16)
	r, err := Run(testConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts != 16 {
		t.Fatalf("committed %d of 16", r.Insts)
	}
}

func TestLatenciesAccessor(t *testing.T) {
	l1i, l1d, l2, dram, redirect, err := testConfig().Latencies()
	if err != nil {
		t.Fatal(err)
	}
	if l1i < 1 || l1d < 1 || l2 <= l1d || dram <= l2 {
		t.Fatalf("latency ordering broken: %d %d %d %d", l1i, l1d, l2, dram)
	}
	if redirect != 20 {
		t.Fatalf("4GHz redirect penalty %d, want 20 (paper)", redirect)
	}
	cfg2 := testConfig()
	cfg2.FreqGHz = 2
	_, _, _, _, redirect2, _ := cfg2.Latencies()
	if redirect2 != 11 {
		t.Fatalf("2GHz redirect penalty %d, want 11 (paper)", redirect2)
	}
}

func TestWritePolicyString(t *testing.T) {
	if WriteBack.String() != "WB" || WriteThrough.String() != "WT" {
		t.Fatal("write-policy names wrong")
	}
}
