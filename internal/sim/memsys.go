package sim

// memSys is the full memory hierarchy: split L1 caches, a unified L2, an
// L2 bus clocked at core frequency, the 64-bit front-side bus, and
// SDRAM. The two buses are contended resources: each keeps a
// next-free-cycle cursor, and every transfer (fills, writebacks, and
// write-through traffic) occupies them back-to-back, so bandwidth
// pressure shows up as queueing delay exactly where the studied
// parameters (L2 bus width, FSB frequency, block sizes, write policy)
// act.
type memSys struct {
	d *derived

	l1i, l1d, l2 cache

	l2BusFree uint64 // next core cycle the L2 bus is free
	fsbFree   uint64 // next core cycle the FSB is free

	l2BusBusy uint64 // total busy cycles, for utilization stats
	fsbBusy   uint64
}

func newMemSys(d *derived) memSys {
	c := d.cfg
	return memSys{
		d:   d,
		l1i: newCache(c.L1ISizeKB, c.L1IBlock, c.L1IAssoc),
		l1d: newCache(c.L1DSizeKB, c.L1DBlock, c.L1DAssoc),
		l2:  newCache(c.L2SizeKB, c.L2Block, c.L2Assoc),
	}
}

// acquireL2Bus reserves the L2 bus for dur cycles starting no earlier
// than t, returning the cycle at which the transfer completes.
func (m *memSys) acquireL2Bus(t, dur uint64) uint64 {
	start := m.l2BusFree
	if start < t {
		start = t
	}
	m.l2BusFree = start + dur
	m.l2BusBusy += dur
	return start + dur
}

// acquireFSB reserves the front-side bus for dur cycles starting no
// earlier than t, returning the completion cycle.
func (m *memSys) acquireFSB(t, dur uint64) uint64 {
	start := m.fsbFree
	if start < t {
		start = t
	}
	m.fsbFree = start + dur
	m.fsbBusy += dur
	return start + dur
}

// l2Fill services an L1 miss from the L2 (or memory beyond it) beginning
// at cycle t, and returns the cycle at which the critical word is back
// at the requesting L1. busD is the L2-bus occupancy of the L1 block
// being filled. The L2's own victim writeback, if dirty, occupies the
// FSB but is off the critical path.
func (m *memSys) l2Fill(addr, t, busD uint64) uint64 {
	tagsDone := t + m.d.l2Lat
	hit, victimDirty, _ := m.l2.access(addr, false)
	dataAt := tagsDone
	if !hit {
		if victimDirty {
			// Dirty L2 victim goes to memory; occupies the FSB only.
			m.acquireFSB(tagsDone, m.d.fsbBlock)
		}
		dataAt = m.acquireFSB(tagsDone, m.d.fsbBlock) + m.d.dramLat
	}
	return m.acquireL2Bus(dataAt, busD)
}

// load performs a data load beginning at cycle t and returns the cycle
// at which the value is available to dependents.
func (m *memSys) load(addr, t uint64) uint64 {
	hit, victimDirty, victimAddr := m.l1d.access(addr, false)
	l1Done := t + m.d.l1dLat
	if hit {
		return l1Done
	}
	if victimDirty {
		// Write the dirty victim back to the L2: bus occupancy plus an
		// L2 write (marking it dirty there), off the critical path.
		m.acquireL2Bus(l1Done, m.d.l2BusD)
		m.l2.touchWrite(victimAddr)
	}
	return m.l2Fill(addr, l1Done, m.d.l2BusD)
}

// store performs the memory-side work of a committed store at cycle t.
// Under write-back it write-allocates into the L1; under write-through
// it writes the L1 on a hit only and always pushes the word to the L2
// (and to memory if the L2 misses — no-allocate at both levels).
func (m *memSys) store(addr, t uint64) {
	switch m.d.cfg.L1DWrite {
	case WriteBack:
		hit, victimDirty, victimAddr := m.l1d.access(addr, true)
		if hit {
			return
		}
		l1Done := t + m.d.l1dLat
		if victimDirty {
			m.acquireL2Bus(l1Done, m.d.l2BusD)
			m.l2.touchWrite(victimAddr)
		}
		// Fetch the rest of the block (write-allocate).
		m.l2Fill(addr, l1Done, m.d.l2BusD)
	case WriteThrough:
		// Update the L1 copy if present; never allocate, never dirty.
		if m.l1d.probe(addr) {
			m.l1d.access(addr, false) // refresh LRU
		} else {
			m.l1d.accesses++ // a store lookup that missed
			m.l1d.misses++
		}
		// The write always crosses the L2 bus.
		wDone := m.acquireL2Bus(t+m.d.l1dLat, m.d.l2BusW)
		if m.l2.probe(addr) {
			m.l2.touchWrite(addr)
		} else {
			// No-allocate: the word continues to memory over the FSB.
			m.acquireFSB(wDone+m.d.l2Lat, m.d.fsbWord)
		}
	}
}

// ifetch performs an instruction fetch of the line containing pc
// beginning at cycle t, returning the cycle the line is available to the
// fetch engine.
func (m *memSys) ifetch(pc, t uint64) uint64 {
	hit, _, _ := m.l1i.access(pc, false)
	l1Done := t + m.d.l1iLat
	if hit {
		return l1Done
	}
	return m.l2Fill(pc, l1Done, m.d.l2BusI)
}
