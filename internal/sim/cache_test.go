package sim

import "testing"

func TestCacheHitAfterFill(t *testing.T) {
	c := newCache(4, 64, 2) // 4KB, 64B blocks, 2-way: 32 sets
	addr := uint64(0x1000)
	if hit, _, _ := c.access(addr, false); hit {
		t.Fatal("cold cache hit")
	}
	if hit, _, _ := c.access(addr, false); !hit {
		t.Fatal("second access missed")
	}
	// Same block, different offset, still hits.
	if hit, _, _ := c.access(addr+63, false); !hit {
		t.Fatal("same-block access missed")
	}
	// Next block misses.
	if hit, _, _ := c.access(addr+64, false); hit {
		t.Fatal("adjacent block hit without fill")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(1, 64, 2) // 8 sets, 2 ways
	// Three blocks mapping to the same set (set stride = 8 blocks).
	a := uint64(0 * 64 * 8)
	b := uint64(1 * 64 * 8)
	d := uint64(2 * 64 * 8)
	c.access(a, false)
	c.access(b, false)
	c.access(a, false) // a is now MRU
	c.access(d, false) // evicts b (LRU)
	if hit, _, _ := c.access(a, false); !hit {
		t.Fatal("MRU way was evicted")
	}
	if hit, _, _ := c.access(b, false); hit {
		t.Fatal("LRU way survived eviction")
	}
}

func TestCacheDirtyVictim(t *testing.T) {
	c := newCache(1, 64, 1) // direct-mapped, 16 sets
	a := uint64(0)
	conflict := uint64(64 * 16) // same set as a
	c.access(a, true)           // fill dirty
	hit, victimDirty, victimAddr := c.access(conflict, false)
	if hit {
		t.Fatal("conflicting access hit")
	}
	if !victimDirty {
		t.Fatal("dirty victim not reported")
	}
	if victimAddr != a {
		t.Fatalf("victim address %#x, want %#x", victimAddr, a)
	}
	// The evicted-then-refilled line is clean now.
	_, victimDirty, _ = c.access(a, false)
	if victimDirty {
		t.Fatal("clean victim reported dirty")
	}
}

func TestCacheProbeDoesNotAllocate(t *testing.T) {
	c := newCache(1, 64, 1)
	if c.probe(0x40) {
		t.Fatal("probe hit a cold cache")
	}
	if hit, _, _ := c.access(0x40, false); hit {
		t.Fatal("probe must not have allocated")
	}
	if !c.probe(0x40) {
		t.Fatal("probe missed after fill")
	}
}

func TestCacheTouchWrite(t *testing.T) {
	c := newCache(1, 64, 1)
	if c.touchWrite(0x80) {
		t.Fatal("touchWrite dirtied a missing line")
	}
	c.access(0x80, false)
	if !c.touchWrite(0x80) {
		t.Fatal("touchWrite missed a present line")
	}
	// The line must now write back dirty when evicted.
	_, victimDirty, _ := c.access(0x80+64*16, false)
	if !victimDirty {
		t.Fatal("touched line not dirty at eviction")
	}
}

func TestCacheMissRateAccounting(t *testing.T) {
	c := newCache(4, 64, 2)
	for i := uint64(0); i < 10; i++ {
		c.access(i*64, false)
	}
	for i := uint64(0); i < 10; i++ {
		c.access(i*64, false)
	}
	if got := c.missRate(); got != 0.5 {
		t.Fatalf("miss rate %v, want 0.5 (10 cold misses / 20 accesses)", got)
	}
	c.resetStats()
	if c.missRate() != 0 {
		t.Fatal("resetStats did not clear counters")
	}
	if hit, _, _ := c.access(0, false); !hit {
		t.Fatal("resetStats cleared cache contents")
	}
}

func TestCacheFullCapacityResidency(t *testing.T) {
	// Fill exactly the capacity; everything must still be resident.
	c := newCache(2, 64, 4) // 2KB: 32 lines
	for i := uint64(0); i < 32; i++ {
		c.access(i*64, false)
	}
	for i := uint64(0); i < 32; i++ {
		if hit, _, _ := c.access(i*64, false); !hit {
			t.Fatalf("line %d evicted within capacity", i)
		}
	}
}
