// Package sim implements the cycle-level out-of-order processor and
// memory-hierarchy simulator that serves as this repository's substrate
// for the paper's SESC-based infrastructure. It models, cycle by cycle:
//
//   - a fetch engine limited by fetch width, taken branches, I-cache
//     misses, and branch mispredictions (21264-style tournament
//     predictor plus a set-associative BTB);
//   - an out-of-order core with a reorder buffer, issue window, integer
//     and floating-point physical register files, a load/store queue
//     with store-to-load forwarding, and per-class functional units;
//   - a two-level cache hierarchy (split L1I/L1D, unified L2) with
//     configurable size, block size, associativity and L1 write policy,
//     LRU replacement, and dirty writebacks;
//   - an L2 bus clocked at core frequency and a 64-bit front-side bus,
//     both modeled as contended resources with occupancy, in front of a
//     fixed-latency SDRAM.
//
// Latency and contention are modeled at every level, as the paper
// requires of its simulator; the machine is completely deterministic
// for a given (Config, Trace) pair.
package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cacti"
)

// WritePolicy selects the L1 data cache write policy.
type WritePolicy uint8

// Write policies studied in the memory-system design space (Table 4.1).
const (
	WriteBack    WritePolicy = iota // allocate on write miss, write dirty victims back
	WriteThrough                    // no-allocate, every store propagates to L2
)

// String returns the table abbreviation used in the paper ("WB"/"WT").
func (w WritePolicy) String() string {
	if w == WriteThrough {
		return "WT"
	}
	return "WB"
}

// Config is the complete architectural configuration of one simulation,
// covering every variable and fixed parameter of Tables 4.1 and 4.2.
type Config struct {
	// Core.
	FreqGHz     float64 // core clock (2 or 4 in the processor study)
	Width       int     // fetch = issue = commit width
	MaxBranches int     // maximum in-flight branches
	IntALUs     int     // integer ALUs ("functional units" N)
	FPUs        int     // floating-point units (N/2 in the studies)
	LoadPorts   int     // load units
	StorePorts  int     // store units
	ROBSize     int     // reorder-buffer entries
	IntRegs     int     // integer physical registers
	FPRegs      int     // floating-point physical registers
	LSQLoads    int     // load-queue entries
	LSQStores   int     // store-queue entries

	// Branch prediction.
	BPredEntries int // tournament predictor scale (1K/2K/4K local entries)
	BTBSets      int // BTB sets
	BTBAssoc     int // BTB ways

	// L1 instruction cache.
	L1ISizeKB, L1IBlock, L1IAssoc int

	// L1 data cache.
	L1DSizeKB, L1DBlock, L1DAssoc int
	L1DWrite                      WritePolicy

	// Unified L2.
	L2SizeKB, L2Block, L2Assoc int

	// Interconnect and memory.
	L2BusBytes  int     // L2 bus width in bytes, clocked at core frequency
	FSBMHz      float64 // front-side bus clock; the bus is 64 bits wide
	SDRAMLatNS  float64 // SDRAM access latency
	IssueWindow int     // issue-queue capacity; 0 selects the default (64)

	// ColdStart disables the functional warmup pass that primes the
	// caches, branch predictor and BTB before the timed simulation.
	// The default (false) measures steady-state behaviour, which is
	// what design-space studies compare; cold-start numbers are only
	// interesting for warmup-effect experiments.
	ColdStart bool
}

// Validate checks that every parameter is populated and structurally
// consistent (power-of-two geometries, block sizes that fit, and so on).
func (c Config) Validate() error {
	var errs []error
	pos := func(name string, v float64) {
		if v <= 0 {
			errs = append(errs, fmt.Errorf("sim: %s must be positive, got %v", name, v))
		}
	}
	pos("FreqGHz", c.FreqGHz)
	pos("Width", float64(c.Width))
	pos("MaxBranches", float64(c.MaxBranches))
	pos("IntALUs", float64(c.IntALUs))
	pos("FPUs", float64(c.FPUs))
	pos("LoadPorts", float64(c.LoadPorts))
	pos("StorePorts", float64(c.StorePorts))
	pos("ROBSize", float64(c.ROBSize))
	pos("IntRegs", float64(c.IntRegs))
	pos("FPRegs", float64(c.FPRegs))
	pos("LSQLoads", float64(c.LSQLoads))
	pos("LSQStores", float64(c.LSQStores))
	pos("BPredEntries", float64(c.BPredEntries))
	pos("BTBSets", float64(c.BTBSets))
	pos("BTBAssoc", float64(c.BTBAssoc))
	pos("L2BusBytes", float64(c.L2BusBytes))
	pos("FSBMHz", c.FSBMHz)
	pos("SDRAMLatNS", c.SDRAMLatNS)
	for _, cc := range []struct {
		name              string
		size, block, ways int
	}{
		{"L1I", c.L1ISizeKB, c.L1IBlock, c.L1IAssoc},
		{"L1D", c.L1DSizeKB, c.L1DBlock, c.L1DAssoc},
		{"L2", c.L2SizeKB, c.L2Block, c.L2Assoc},
	} {
		if cc.size <= 0 || cc.block <= 0 || cc.ways <= 0 {
			errs = append(errs, fmt.Errorf("sim: %s cache has non-positive geometry", cc.name))
			continue
		}
		bytes := cc.size * 1024
		if bytes%(cc.block*cc.ways) != 0 {
			errs = append(errs, fmt.Errorf("sim: %s cache %dKB/%dB/%d-way does not divide into whole sets",
				cc.name, cc.size, cc.block, cc.ways))
		}
		if !isPow2(cc.block) || !isPow2(bytes/(cc.block*cc.ways)) {
			errs = append(errs, fmt.Errorf("sim: %s cache geometry must be power-of-two", cc.name))
		}
	}
	if c.L2Block < c.L1DBlock || c.L2Block < c.L1IBlock {
		errs = append(errs, errors.New("sim: L2 block must be at least as large as L1 blocks"))
	}
	return errors.Join(errs...)
}

// derived holds the pre-computed cycle-domain latencies and transfer
// costs implied by a Config. Everything downstream of Config works in
// core cycles.
type derived struct {
	cfg Config

	l1iLat, l1dLat, l2Lat uint64 // access latencies in core cycles
	dramLat               uint64 // SDRAM latency in core cycles
	redirect              uint64 // front-end refill after a branch redirect

	l1iBlockShift, l1dBlockShift, l2BlockShift uint

	l2BusD   uint64 // core cycles the L2 bus is busy moving one L1D block
	l2BusI   uint64 // ... one L1I block
	l2BusW   uint64 // ... one store-through write (8 bytes)
	fsbBlock uint64 // core cycles the FSB is busy moving one L2 block
	fsbWord  uint64 // core cycles the FSB is busy moving one 8-byte write

	iqCap int
}

// minRedirectPenalty returns the minimum branch-misprediction penalty
// the paper assigns to each studied clock: 11 cycles at 2 GHz and 20 at
// 4 GHz; other frequencies interpolate linearly on pipeline depth.
func minRedirectPenalty(freqGHz float64) uint64 {
	p := math.Round(11 + (freqGHz-2)*(20-11)/2)
	if p < 2 {
		p = 2
	}
	return uint64(p)
}

// derive computes all cycle-domain constants. Cache latencies come from
// the CACTI-style model at the configured clock, as in the paper.
func (c Config) derive() (derived, error) {
	if err := c.Validate(); err != nil {
		return derived{}, err
	}
	freqHz := c.FreqGHz * 1e9
	d := derived{cfg: c}
	d.l1iLat = uint64(cacti.Cycles(cacti.Params{SizeBytes: c.L1ISizeKB * 1024, BlockBytes: c.L1IBlock, Assoc: c.L1IAssoc}, freqHz))
	d.l1dLat = uint64(cacti.Cycles(cacti.Params{SizeBytes: c.L1DSizeKB * 1024, BlockBytes: c.L1DBlock, Assoc: c.L1DAssoc}, freqHz))
	d.l2Lat = uint64(cacti.Cycles(cacti.Params{SizeBytes: c.L2SizeKB * 1024, BlockBytes: c.L2Block, Assoc: c.L2Assoc}, freqHz))
	d.dramLat = uint64(math.Ceil(c.SDRAMLatNS * c.FreqGHz))
	d.redirect = minRedirectPenalty(c.FreqGHz)

	d.l1iBlockShift = log2(c.L1IBlock)
	d.l1dBlockShift = log2(c.L1DBlock)
	d.l2BlockShift = log2(c.L2Block)

	d.l2BusD = ceilDiv(uint64(c.L1DBlock), uint64(c.L2BusBytes))
	d.l2BusI = ceilDiv(uint64(c.L1IBlock), uint64(c.L2BusBytes))
	d.l2BusW = ceilDiv(8, uint64(c.L2BusBytes))

	// FSB: 64 bits wide at FSBMHz. Time on the bus in nanoseconds,
	// converted to core cycles (rounded up — the bus cannot release
	// mid-core-cycle).
	fsbNSPerBeat := 1e3 / c.FSBMHz // ns per 8-byte beat
	blockBeats := float64(c.L2Block) / 8
	d.fsbBlock = uint64(math.Ceil(blockBeats * fsbNSPerBeat * c.FreqGHz))
	d.fsbWord = uint64(math.Ceil(fsbNSPerBeat * c.FreqGHz))

	d.iqCap = c.IssueWindow
	if d.iqCap == 0 {
		d.iqCap = 64
	}
	return d, nil
}

// Latencies reports the derived cache/memory latencies in core cycles;
// exposed so tools can print the timing a configuration implies.
func (c Config) Latencies() (l1i, l1d, l2, dram, redirect uint64, err error) {
	d, err := c.derive()
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	return d.l1iLat, d.l1dLat, d.l2Lat, d.dramLat, d.redirect, nil
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

func log2(v int) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

func ceilDiv(a, b uint64) uint64 {
	if b == 0 {
		panic("sim: division by zero bus width")
	}
	return (a + b - 1) / b
}
