package pb

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestDesignShapes(t *testing.T) {
	for _, runs := range Sizes() {
		d, err := New(runs)
		if err != nil {
			t.Fatal(err)
		}
		if d.Runs != runs || len(d.Rows) != runs || d.Columns != runs-1 {
			t.Fatalf("%d-run design malformed: %d rows × %d cols", runs, len(d.Rows), d.Columns)
		}
		for r, row := range d.Rows {
			if len(row) != d.Columns {
				t.Fatalf("%d-run design row %d has %d entries", runs, r, len(row))
			}
			for _, v := range row {
				if v != 1 && v != -1 {
					t.Fatalf("%d-run design contains %d", runs, v)
				}
			}
		}
	}
}

func TestColumnsBalanced(t *testing.T) {
	// Each column of a PB design has equal +1s and -1s.
	for _, runs := range Sizes() {
		d, _ := New(runs)
		for c := 0; c < d.Columns; c++ {
			sum := 0
			for _, row := range d.Rows {
				sum += row[c]
			}
			if sum != 0 {
				t.Fatalf("%d-run design column %d unbalanced (sum %d)", runs, c, sum)
			}
		}
	}
}

func TestColumnsOrthogonal(t *testing.T) {
	// Distinct columns of a PB design are orthogonal: dot product 0.
	for _, runs := range Sizes() {
		d, _ := New(runs)
		for a := 0; a < d.Columns; a++ {
			for b := a + 1; b < d.Columns; b++ {
				dot := 0
				for _, row := range d.Rows {
					dot += row[a] * row[b]
				}
				if dot != 0 {
					t.Fatalf("%d-run design columns %d,%d not orthogonal (dot %d)", runs, a, b, dot)
				}
			}
		}
	}
}

func TestFoldoverComplement(t *testing.T) {
	d, _ := New(12)
	f := d.Foldover()
	if f.Runs != 24 || len(f.Rows) != 24 || !f.Folded {
		t.Fatal("foldover shape wrong")
	}
	for r := 0; r < 12; r++ {
		for c := 0; c < f.Columns; c++ {
			if f.Rows[r][c] != -f.Rows[r+12][c] {
				t.Fatalf("row %d not complemented at column %d", r, c)
			}
		}
	}
}

func TestUnknownSizeRejected(t *testing.T) {
	if _, err := New(10); err == nil {
		t.Fatal("10-run design accepted")
	}
}

func TestForParams(t *testing.T) {
	d, err := ForParams(9)
	if err != nil {
		t.Fatal(err)
	}
	if d.Columns < 9 || !d.Folded {
		t.Fatalf("ForParams(9) gave %d columns, folded=%v", d.Columns, d.Folded)
	}
	if _, err := ForParams(30); err == nil {
		t.Fatal("30 parameters accepted beyond the largest design")
	}
}

func TestEffectsRecoverPlantedModel(t *testing.T) {
	// Response = 5·x2 − 2·x5 + noise: the ranking must put parameter 2
	// first and 5 second, with correct signs.
	d, err := ForParams(9)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(8)
	responses := make([]float64, len(d.Rows))
	for r, row := range d.Rows {
		responses[r] = 5*float64(row[2]) - 2*float64(row[5]) + rng.Range(-0.3, 0.3)
	}
	effects, err := d.Effects(responses, []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"})
	if err != nil {
		t.Fatal(err)
	}
	ranked := Ranked(effects)
	if ranked[0].Param != 2 {
		t.Fatalf("top effect is parameter %d, want 2", ranked[0].Param)
	}
	if ranked[1].Param != 5 {
		t.Fatalf("second effect is parameter %d, want 5", ranked[1].Param)
	}
	if ranked[0].Effect <= 0 {
		t.Fatal("positive main effect recovered with wrong sign")
	}
	if ranked[1].Effect >= 0 {
		t.Fatal("negative main effect recovered with wrong sign")
	}
	if ranked[0].Name != "p2" {
		t.Fatalf("name not propagated: %q", ranked[0].Name)
	}
	// Effect magnitudes should reflect the planted 5:2 ratio.
	ratio := math.Abs(ranked[0].Effect) / math.Abs(ranked[1].Effect)
	if ratio < 1.8 || ratio > 3.2 {
		t.Fatalf("effect ratio %.2f, want ≈2.5", ratio)
	}
}

func TestFoldoverCancelsInteractions(t *testing.T) {
	// With foldover, a pure two-factor interaction term contributes
	// nothing to main effects.
	d, _ := New(12)
	f := d.Foldover()
	responses := make([]float64, len(f.Rows))
	for r, row := range f.Rows {
		responses[r] = float64(row[0] * row[1]) // pure interaction
	}
	effects, err := f.Effects(responses, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range effects {
		if math.Abs(e.Effect) > 1e-9 {
			t.Fatalf("interaction leaked into main effect of parameter %d: %v", e.Param, e.Effect)
		}
	}
}

func TestEffectsLengthValidation(t *testing.T) {
	d, _ := New(12)
	if _, err := d.Effects([]float64{1, 2, 3}, nil); err == nil {
		t.Fatal("wrong response count accepted")
	}
}
