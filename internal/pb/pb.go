// Package pb implements Plackett–Burman fractional factorial designs
// with foldover, the parameter-screening methodology of Yi, Lilja and
// Hawkins that the paper uses to validate its choice of variable
// parameters (§2, §4): each design parameter is toggled between a low
// and a high level according to the rows of a PB design matrix, the
// response (e.g. IPC) is measured for each row, and the magnitude of
// each parameter's summed signed effect ranks its importance. With
// foldover (the complement rows appended), main effects are freed of
// two-factor-interaction aliasing.
package pb

import (
	"fmt"
	"sort"
)

// generators holds the first rows of standard Plackett–Burman designs
// (+ = high, - = low); the remaining rows are cyclic right-shifts, plus
// a final all-minus row.
var generators = map[int]string{
	8:  "+++-+--",
	12: "++-+++---+-",
	16: "++++-+-++--+---",
	20: "++--++++-+-+----++-",
	24: "+++++-+-++--++--+-+----",
}

// Sizes returns the available design sizes in ascending order.
func Sizes() []int {
	out := make([]int, 0, len(generators))
	for n := range generators {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Design is a Plackett–Burman design matrix: Rows[r][c] is +1 or -1,
// the level of parameter c in run r.
type Design struct {
	Runs    int
	Columns int
	Rows    [][]int
	Folded  bool
}

// New constructs the standard PB design with the given number of runs
// (8, 12, 16, 20 or 24), supporting up to runs-1 parameters.
func New(runs int) (*Design, error) {
	gen, ok := generators[runs]
	if !ok {
		return nil, fmt.Errorf("pb: no %d-run design (have %v)", runs, Sizes())
	}
	cols := runs - 1
	first := make([]int, cols)
	for i, ch := range gen {
		if ch == '+' {
			first[i] = 1
		} else {
			first[i] = -1
		}
	}
	d := &Design{Runs: runs, Columns: cols}
	row := first
	for r := 0; r < runs-1; r++ {
		d.Rows = append(d.Rows, append([]int(nil), row...))
		// Cyclic right shift for the next row.
		next := make([]int, cols)
		next[0] = row[cols-1]
		copy(next[1:], row[:cols-1])
		row = next
	}
	minus := make([]int, cols)
	for i := range minus {
		minus[i] = -1
	}
	d.Rows = append(d.Rows, minus)
	return d, nil
}

// ForParams returns the smallest standard design (with foldover) that
// can screen n parameters.
func ForParams(n int) (*Design, error) {
	for _, runs := range Sizes() {
		if runs-1 >= n {
			d, err := New(runs)
			if err != nil {
				return nil, err
			}
			return d.Foldover(), nil
		}
	}
	return nil, fmt.Errorf("pb: %d parameters exceed the largest design (%d columns)", n, 23)
}

// Foldover returns a new design with the complement of every row
// appended, doubling the runs and de-aliasing main effects from
// two-factor interactions — the variant Yi et al. recommend and the
// paper uses.
func (d *Design) Foldover() *Design {
	f := &Design{Runs: 2 * d.Runs, Columns: d.Columns, Folded: true}
	f.Rows = append(f.Rows, d.Rows...)
	for _, row := range d.Rows {
		comp := make([]int, len(row))
		for i, v := range row {
			comp[i] = -v
		}
		f.Rows = append(f.Rows, comp)
	}
	return f
}

// Effect is one parameter's screened importance.
type Effect struct {
	Param   int     // column index
	Name    string  // parameter name, when provided
	Effect  float64 // summed signed response (sign = direction)
	AbsRank int     // 1 = most important
}

// Effects computes each parameter's effect from per-run responses:
// effect_c = Σ_r Rows[r][c] · response[r]. Responses must align with
// Rows. Names may be nil.
func (d *Design) Effects(responses []float64, names []string) ([]Effect, error) {
	if len(responses) != len(d.Rows) {
		return nil, fmt.Errorf("pb: %d responses for %d runs", len(responses), len(d.Rows))
	}
	effects := make([]Effect, d.Columns)
	for c := 0; c < d.Columns; c++ {
		var sum float64
		for r, row := range d.Rows {
			sum += float64(row[c]) * responses[r]
		}
		effects[c] = Effect{Param: c, Effect: sum}
		if names != nil && c < len(names) {
			effects[c].Name = names[c]
		}
	}
	// Rank by |effect| descending.
	order := make([]int, d.Columns)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return abs(effects[order[a]].Effect) > abs(effects[order[b]].Effect)
	})
	for rank, c := range order {
		effects[c].AbsRank = rank + 1
	}
	return effects, nil
}

// Ranked returns the effects sorted most-important first.
func Ranked(effects []Effect) []Effect {
	out := append([]Effect(nil), effects...)
	sort.Slice(out, func(a, b int) bool { return out[a].AbsRank < out[b].AbsRank })
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
