// Package encoding maps design points onto neural-network inputs
// following §3.3 and Figure 3.4 of the paper: cardinal and continuous
// parameters become single inputs minimax-normalized to [0,1] over
// their design-space range, nominal parameters are one-hot encoded (one
// input per level, exactly one set to 1), and boolean parameters become
// single 0/1 inputs. Targets use the same minimax treatment via Scaler.
package encoding

import (
	"fmt"
	"math"

	"repro/internal/space"
)

// Encoder converts choice vectors of one design space into input
// vectors.
type Encoder struct {
	sp    *space.Space
	width int
	lo    []float64 // per numeric param: range min
	hi    []float64 // per numeric param: range max
	off   []int     // per param: first input index
}

// NewEncoder builds an encoder for sp. Ranges for minimax normalization
// come from the space definition itself (the study's min/max values),
// which is what the paper normalizes by.
func NewEncoder(sp *space.Space) *Encoder {
	e := &Encoder{
		sp:  sp,
		lo:  make([]float64, sp.NumParams()),
		hi:  make([]float64, sp.NumParams()),
		off: make([]int, sp.NumParams()),
	}
	w := 0
	for i := 0; i < sp.NumParams(); i++ {
		e.off[i] = w
		p := &sp.Params[i]
		switch p.Kind {
		case space.Nominal:
			w += p.Card()
		default:
			lo, hi := sp.ValueRange(i)
			e.lo[i], e.hi[i] = lo, hi
			w++
		}
	}
	e.width = w
	return e
}

// Width returns the number of network inputs the encoding produces.
func (e *Encoder) Width() int { return e.width }

// Spec is the serializable description of an Encoder: the input width
// and the per-parameter normalization ranges and input offsets. An
// Encoder is fully determined by its Space, so a Spec is redundant by
// construction — which is exactly what makes it a cross-check: a model
// bundle stores the Spec its networks were trained against, and a
// loader rebuilds the encoder from the stored space and verifies the
// two agree before serving a single prediction.
type Spec struct {
	Width int       `json:"width"`
	Lo    []float64 `json:"lo"`  // per param: normalization range min (0 for nominal)
	Hi    []float64 `json:"hi"`  // per param: normalization range max (0 for nominal)
	Off   []int     `json:"off"` // per param: first input index
}

// Spec captures the encoder's parameters for serialization.
func (e *Encoder) Spec() Spec {
	return Spec{
		Width: e.width,
		Lo:    append([]float64(nil), e.lo...),
		Hi:    append([]float64(nil), e.hi...),
		Off:   append([]int(nil), e.off...),
	}
}

// Matches reports whether s describes exactly this encoder; a non-nil
// error names the first disagreement.
func (e *Encoder) Matches(s Spec) error {
	if s.Width != e.width {
		return fmt.Errorf("encoding: spec width %d, encoder produces %d inputs", s.Width, e.width)
	}
	n := e.sp.NumParams()
	if len(s.Lo) != n || len(s.Hi) != n || len(s.Off) != n {
		return fmt.Errorf("encoding: spec describes %d/%d/%d params, space has %d",
			len(s.Lo), len(s.Hi), len(s.Off), n)
	}
	for i := 0; i < n; i++ {
		if s.Lo[i] != e.lo[i] || s.Hi[i] != e.hi[i] {
			return fmt.Errorf("encoding: param %q normalization range [%g,%g] in spec, encoder has [%g,%g]",
				e.sp.Params[i].Name, s.Lo[i], s.Hi[i], e.lo[i], e.hi[i])
		}
		if s.Off[i] != e.off[i] {
			return fmt.Errorf("encoding: param %q at input offset %d in spec, encoder has %d",
				e.sp.Params[i].Name, s.Off[i], e.off[i])
		}
	}
	return nil
}

// Encode writes the encoded representation of the choice vector into
// dst, which must have length Width(), and returns dst. Passing nil
// allocates.
func (e *Encoder) Encode(choices []int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, e.width)
	}
	if len(dst) != e.width {
		panic("encoding: destination has wrong width")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < e.sp.NumParams(); i++ {
		p := &e.sp.Params[i]
		switch p.Kind {
		case space.Nominal:
			dst[e.off[i]+choices[i]] = 1
		case space.Boolean:
			dst[e.off[i]] = e.sp.Value(choices, i)
		default:
			v := e.sp.Value(choices, i)
			if e.hi[i] > e.lo[i] {
				dst[e.off[i]] = (v - e.lo[i]) / (e.hi[i] - e.lo[i])
			} else {
				dst[e.off[i]] = 0.5 // single-valued axis carries no information
			}
		}
	}
	return dst
}

// EncodeIndex encodes the design point with the given flat index.
func (e *Encoder) EncodeIndex(index int, dst []float64) []float64 {
	return e.Encode(e.sp.Choices(index), dst)
}

// EncodeRange encodes the design points with flat indices [start,
// start+rows) into dst as a flat row-major matrix of rows×Width()
// values, and returns dst (allocated when nil). It rides the space's
// chunked enumeration, so encoding a sweep chunk costs no per-point
// choice-vector allocations. Each row is bit-identical to EncodeIndex
// on the same index.
func (e *Encoder) EncodeRange(start, rows int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, rows*e.width)
	}
	if len(dst) != rows*e.width {
		panic(fmt.Sprintf("encoding: destination has %d slots for %d rows × %d inputs", len(dst), rows, e.width))
	}
	r := 0
	for _, choices := range e.sp.ChunkAt(start, rows) {
		e.Encode(choices, dst[r*e.width:(r+1)*e.width])
		r++
	}
	return dst
}

// Scaler minimax-normalizes a target metric to [0,1] and back (§3.3:
// "target values ... are encoded in the same way as inputs" and
// predictions are scaled back to the actual range before error
// calculations).
type Scaler struct {
	Lo, Hi float64
}

// FitScaler builds a scaler from observed target values, padding the
// range by pad (fraction, e.g. 0.05) on each side so that unseen design
// points slightly outside the training range remain representable.
func FitScaler(values []float64, pad float64) Scaler {
	if len(values) == 0 {
		return Scaler{0, 1}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	if span <= 0 {
		span = math.Abs(hi)
		if span == 0 {
			span = 1
		}
	}
	return Scaler{Lo: lo - pad*span, Hi: hi + pad*span}
}

// Scale maps an actual value to normalized space.
func (s Scaler) Scale(v float64) float64 {
	if s.Hi == s.Lo {
		return 0.5
	}
	return (v - s.Lo) / (s.Hi - s.Lo)
}

// Unscale maps a normalized prediction back to the actual range.
func (s Scaler) Unscale(v float64) float64 {
	return s.Lo + v*(s.Hi-s.Lo)
}
