package encoding

import (
	"testing"

	"repro/internal/space"
)

// FuzzEncodeRange checks the chunked encoder against the per-index
// path bit for bit: every row of EncodeRange(start, rows) must equal
// EncodeIndex on the same flat index, across all four parameter kinds
// (minimax-scaled, one-hot, boolean) and arbitrary windows.
func FuzzEncodeRange(f *testing.F) {
	sp := space.New("fuzz-enc", []space.Param{
		{Name: "size", Kind: space.Cardinal, Values: []float64{8, 16, 32, 64}},
		{Name: "freq", Kind: space.Continuous, Values: []float64{1.0, 1.5, 2.2}},
		{Name: "policy", Kind: space.Nominal, Levels: []string{"lru", "fifo", "rand"}},
		{Name: "prefetch", Kind: space.Boolean, Values: []float64{0, 1}},
		{Name: "flat", Kind: space.Cardinal, Values: []float64{5}}, // single-valued axis: encodes 0.5
	})
	enc := NewEncoder(sp)
	f.Add(uint64(0), uint64(7))
	f.Add(uint64(17), uint64(19))
	f.Add(uint64(71), uint64(1))
	f.Fuzz(func(t *testing.T, start, rows uint64) {
		size := sp.Size()
		lo := int(start % uint64(size))
		n := int(rows % uint64(size-lo+1))
		width := enc.Width()
		got := enc.EncodeRange(lo, n, nil)
		if len(got) != n*width {
			t.Fatalf("EncodeRange(%d,%d) wrote %d values, want %d", lo, n, len(got), n*width)
		}
		for r := 0; r < n; r++ {
			want := enc.EncodeIndex(lo+r, nil)
			for c, v := range want {
				if got[r*width+c] != v {
					t.Fatalf("row %d (index %d) input %d: EncodeRange %v, EncodeIndex %v",
						r, lo+r, c, got[r*width+c], v)
				}
			}
		}
	})
}
