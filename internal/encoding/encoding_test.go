package encoding

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/space"
)

func demoSpace() *space.Space {
	return space.New("enc-demo", []space.Param{
		{Name: "Size", Kind: space.Cardinal, Values: []float64{8, 16, 64}},
		{Name: "Policy", Kind: space.Nominal, Levels: []string{"WT", "WB", "WC"}},
		{Name: "On", Kind: space.Boolean, Values: []float64{0, 1}},
	})
}

func TestWidth(t *testing.T) {
	e := NewEncoder(demoSpace())
	// 1 (cardinal) + 3 (one-hot) + 1 (boolean) = 5.
	if e.Width() != 5 {
		t.Fatalf("width = %d, want 5", e.Width())
	}
}

func TestCardinalMinimax(t *testing.T) {
	sp := demoSpace()
	e := NewEncoder(sp)
	for choice, want := range map[int]float64{0: 0, 1: (16.0 - 8) / (64 - 8), 2: 1} {
		x := e.Encode([]int{choice, 0, 0}, nil)
		if math.Abs(x[0]-want) > 1e-12 {
			t.Errorf("choice %d encoded to %v, want %v", choice, x[0], want)
		}
	}
}

func TestOneHot(t *testing.T) {
	sp := demoSpace()
	e := NewEncoder(sp)
	for lvl := 0; lvl < 3; lvl++ {
		x := e.Encode([]int{0, lvl, 0}, nil)
		ones := 0
		for i := 1; i <= 3; i++ {
			if x[i] == 1 {
				ones++
				if i-1 != lvl {
					t.Fatalf("one-hot bit %d set for level %d", i-1, lvl)
				}
			} else if x[i] != 0 {
				t.Fatalf("one-hot input not 0/1: %v", x[i])
			}
		}
		if ones != 1 {
			t.Fatalf("level %d set %d one-hot bits", lvl, ones)
		}
	}
}

func TestBoolean(t *testing.T) {
	e := NewEncoder(demoSpace())
	if e.Encode([]int{0, 0, 1}, nil)[4] != 1 {
		t.Fatal("boolean on not encoded as 1")
	}
	if e.Encode([]int{0, 0, 0}, nil)[4] != 0 {
		t.Fatal("boolean off not encoded as 0")
	}
}

func TestEncodeReusesDst(t *testing.T) {
	e := NewEncoder(demoSpace())
	dst := make([]float64, e.Width())
	out := e.Encode([]int{1, 1, 1}, dst)
	if &out[0] != &dst[0] {
		t.Fatal("Encode allocated despite provided dst")
	}
	// Previous contents must be fully overwritten.
	e.Encode([]int{0, 0, 0}, dst)
	if dst[2] != 0 || dst[4] != 0 {
		t.Fatal("Encode left stale values in dst")
	}
}

func TestEncodePanicsOnWrongWidth(t *testing.T) {
	e := NewEncoder(demoSpace())
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width dst did not panic")
		}
	}()
	e.Encode([]int{0, 0, 0}, make([]float64, 2))
}

func TestEncodeIndexConsistent(t *testing.T) {
	sp := demoSpace()
	e := NewEncoder(sp)
	for i := 0; i < sp.Size(); i++ {
		a := e.EncodeIndex(i, nil)
		b := e.Encode(sp.Choices(i), nil)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("EncodeIndex(%d) differs from Encode(Choices)", i)
			}
		}
	}
}

func TestAllInputsInUnitRange(t *testing.T) {
	sp := demoSpace()
	e := NewEncoder(sp)
	for i := 0; i < sp.Size(); i++ {
		for j, v := range e.EncodeIndex(i, nil) {
			if v < 0 || v > 1 {
				t.Fatalf("point %d input %d = %v outside [0,1]", i, j, v)
			}
		}
	}
}

func TestScalerRoundTrip(t *testing.T) {
	check := func(loRaw, spanRaw, vRaw float64) bool {
		// Keep magnitudes in a physically meaningful range; the scaler
		// is for metrics like IPC, not astronomical floats.
		lo := math.Mod(loRaw, 1e6)
		span := math.Mod(math.Abs(spanRaw), 1e6) + 0.1
		if math.IsNaN(lo) || math.IsNaN(span) {
			return true
		}
		s := Scaler{Lo: lo, Hi: lo + span}
		v := lo + math.Mod(math.Abs(vRaw), span)
		if math.IsNaN(v) {
			return true
		}
		return math.Abs(s.Unscale(s.Scale(v))-v) < 1e-9*(1+math.Abs(v))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitScalerPadding(t *testing.T) {
	s := FitScaler([]float64{1, 2, 3}, 0.1)
	if s.Lo >= 1 || s.Hi <= 3 {
		t.Fatalf("padding not applied: [%v,%v]", s.Lo, s.Hi)
	}
	if math.Abs(s.Lo-0.8) > 1e-12 || math.Abs(s.Hi-3.2) > 1e-12 {
		t.Fatalf("pad 0.1 on span 2: [%v,%v], want [0.8,3.2]", s.Lo, s.Hi)
	}
}

func TestFitScalerDegenerate(t *testing.T) {
	s := FitScaler([]float64{5, 5, 5}, 0.05)
	if s.Scale(5) < 0 || s.Scale(5) > 1 {
		t.Fatalf("degenerate scaler maps 5 to %v", s.Scale(5))
	}
	s = FitScaler(nil, 0.05)
	if s.Scale(0.5) != 0.5 {
		t.Fatalf("empty-fit scaler not identity-ish: %v", s.Scale(0.5))
	}
}

func TestScalerDegenerateRange(t *testing.T) {
	s := Scaler{Lo: 2, Hi: 2}
	if s.Scale(2) != 0.5 {
		t.Fatalf("zero-span scale = %v, want 0.5", s.Scale(2))
	}
}

func TestSpecRoundTripAndMatch(t *testing.T) {
	sp := demoSpace()
	e := NewEncoder(sp)
	spec := e.Spec()
	if spec.Width != e.Width() {
		t.Fatalf("spec width %d, want %d", spec.Width, e.Width())
	}
	if err := e.Matches(spec); err != nil {
		t.Fatalf("encoder rejects its own spec: %v", err)
	}
	// A spec from a different space must be rejected on every axis of
	// disagreement: width, ranges, offsets, parameter count.
	other := NewEncoder(space.New("other", []space.Param{
		{Name: "Size", Kind: space.Cardinal, Values: []float64{8, 16, 128}},
		{Name: "Policy", Kind: space.Nominal, Levels: []string{"WT", "WB", "WC"}},
		{Name: "On", Kind: space.Boolean, Values: []float64{0, 1}},
	})).Spec()
	if err := e.Matches(other); err == nil {
		t.Fatal("encoder accepted a spec with a different normalization range")
	}
	short := spec
	short.Lo = short.Lo[:1]
	if err := e.Matches(short); err == nil {
		t.Fatal("encoder accepted a truncated spec")
	}
	wrongWidth := spec
	wrongWidth.Width++
	if err := e.Matches(wrongWidth); err == nil {
		t.Fatal("encoder accepted a wrong-width spec")
	}
	wrongOff := e.Spec()
	wrongOff.Off[1]++
	if err := e.Matches(wrongOff); err == nil {
		t.Fatal("encoder accepted a shifted input offset")
	}
}

// TestEncodeRangeMatchesEncodeIndex pins the chunked sweep encoding to
// the per-index path, bit for bit, over every alignment.
func TestEncodeRangeMatchesEncodeIndex(t *testing.T) {
	sp := demoSpace()
	e := NewEncoder(sp)
	for _, chunk := range []int{1, 3, 5, sp.Size()} {
		for start := 0; start < sp.Size(); start += chunk {
			rows := chunk
			if start+rows > sp.Size() {
				rows = sp.Size() - start
			}
			got := e.EncodeRange(start, rows, nil)
			for r := 0; r < rows; r++ {
				want := e.EncodeIndex(start+r, nil)
				for j := range want {
					if got[r*e.Width()+j] != want[j] {
						t.Fatalf("chunk %d@%d row %d input %d: %v != %v",
							chunk, start, r, j, got[r*e.Width()+j], want[j])
					}
				}
			}
		}
	}
}

// TestEncodeRangeBadDestination rejects mis-sized buffers.
func TestEncodeRangeBadDestination(t *testing.T) {
	e := NewEncoder(demoSpace())
	defer func() {
		if recover() == nil {
			t.Fatal("short destination accepted")
		}
	}()
	e.EncodeRange(0, 2, make([]float64, 1))
}
