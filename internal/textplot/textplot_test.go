package textplot

import (
	"strings"
	"testing"
)

func TestPlotContainsMarkersAndLegend(t *testing.T) {
	out := Plot("demo", 40, 8,
		Series{Name: "alpha", Marker: 'A', X: []float64{0, 1, 2}, Y: []float64{1, 2, 3}},
		Series{Name: "beta", Marker: 'B', X: []float64{0, 1, 2}, Y: []float64{3, 2, 1}},
	)
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatal("markers missing")
	}
	if !strings.Contains(out, "A=alpha") || !strings.Contains(out, "B=beta") {
		t.Fatal("legend missing")
	}
}

func TestPlotEmptySeries(t *testing.T) {
	out := Plot("empty", 40, 8)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot rendered %q", out)
	}
}

func TestPlotSinglePoint(t *testing.T) {
	out := Plot("one", 30, 6, Series{Name: "s", Marker: '*', X: []float64{5}, Y: []float64{5}})
	if !strings.Contains(out, "*") {
		t.Fatal("single point not rendered")
	}
}

func TestPlotAllZeroYs(t *testing.T) {
	out := Plot("zeros", 30, 6, Series{Name: "s", Marker: 'z', X: []float64{0, 1}, Y: []float64{0, 0}})
	if !strings.Contains(out, "z") {
		t.Fatal("zero-valued series not rendered")
	}
}

func TestPlotClampsTinyDimensions(t *testing.T) {
	out := Plot("tiny", 1, 1, Series{Name: "s", Marker: 'x', X: []float64{0, 1}, Y: []float64{1, 2}})
	if len(out) == 0 {
		t.Fatal("tiny plot empty")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("clamped plot has %d lines", len(lines))
	}
}

func TestPlotRowCount(t *testing.T) {
	out := Plot("rows", 40, 10, Series{Name: "s", Marker: '.', X: []float64{0, 1}, Y: []float64{1, 2}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 10 grid rows + axis + x labels + legend = 14
	if len(lines) != 14 {
		t.Fatalf("plot has %d lines, want 14", len(lines))
	}
}
