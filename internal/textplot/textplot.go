// Package textplot renders simple ASCII line charts so the cmd/repro
// harness can show the paper's figures (learning curves, estimate-vs-
// true comparisons, training-time scaling) directly in a terminal,
// alongside the numeric series.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Plot renders the series onto a width×height character grid with axis
// annotations. X and Y ranges are derived from the data; the y axis
// starts at zero (the paper's error plots all do).
func Plot(title string, width, height int, series ...Series) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	var xmin, xmax, ymax float64
	xmin = math.Inf(1)
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				xmin, xmax = s.X[i], s.X[i]
				first = false
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if first { // no data
		return title + " (no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == 0 {
		ymax = 1
	}
	ymax *= 1.05

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i := range s.X {
			c := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			r := height - 1 - int(s.Y[i]/ymax*float64(height-1))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = s.Marker
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		yVal := ymax * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%7.2f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "        %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "        %-*.3g%*.3g\n", width/2+1, xmin, width/2+1, xmax)
	var legend []string
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	fmt.Fprintf(&b, "        [%s]\n", strings.Join(legend, "  "))
	return b.String()
}
