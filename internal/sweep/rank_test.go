package sweep

import (
	"reflect"
	"testing"

	"repro/internal/stats"
)

func frontierOf(minimize []bool, pts []Point) []Point {
	f := newFrontier(minimize)
	for _, p := range pts {
		if err := f.Offer(p.Index, p.Values); err != nil {
			panic(err)
		}
	}
	return append([]Point(nil), f.Sorted()...)
}

func indices(pts []Point) []int {
	out := make([]int, len(pts))
	for i, p := range pts {
		out[i] = p.Index
	}
	return out
}

// TestFrontierDominance covers the basic two-axis cases: dominated
// points drop, incomparable points coexist, and a newcomer evicts
// everything it dominates.
func TestFrontierDominance(t *testing.T) {
	maxBoth := []bool{false, false}
	got := frontierOf(maxBoth, []Point{
		{Index: 0, Values: []float64{1, 1}},
		{Index: 1, Values: []float64{2, 0.5}},   // incomparable with 0
		{Index: 2, Values: []float64{0.5, 0.5}}, // dominated by both
		{Index: 3, Values: []float64{3, 2}},     // dominates everything so far
	})
	if want := []int{3}; !reflect.DeepEqual(indices(got), want) {
		t.Fatalf("frontier = %v, want %v", indices(got), want)
	}

	got = frontierOf(maxBoth, []Point{
		{Index: 0, Values: []float64{1, 3}},
		{Index: 1, Values: []float64{2, 2}},
		{Index: 2, Values: []float64{3, 1}},
	})
	if want := []int{0, 1, 2}; !reflect.DeepEqual(indices(got), want) {
		t.Fatalf("incomparable chain = %v, want %v", indices(got), want)
	}
}

// TestFrontierDirections honors per-metric minimize flags: perf up,
// energy down.
func TestFrontierDirections(t *testing.T) {
	dir := []bool{false, true}
	got := frontierOf(dir, []Point{
		{Index: 0, Values: []float64{1.0, 5}},
		{Index: 1, Values: []float64{1.5, 7}}, // faster but hungrier: stays
		{Index: 2, Values: []float64{0.9, 6}}, // slower and hungrier than 0: dominated
		{Index: 3, Values: []float64{1.0, 4}}, // same perf as 0, cheaper: evicts 0
	})
	if want := []int{1, 3}; !reflect.DeepEqual(indices(got), want) {
		t.Fatalf("frontier = %v, want %v", indices(got), want)
	}
}

// TestFrontierDuplicateCollapse: exactly equal metric vectors collapse
// onto the lowest index, regardless of arrival order.
func TestFrontierDuplicateCollapse(t *testing.T) {
	dir := []bool{false, false}
	pts := []Point{
		{Index: 5, Values: []float64{2, 2}},
		{Index: 1, Values: []float64{2, 2}},
		{Index: 9, Values: []float64{2, 2}},
		{Index: 3, Values: []float64{1, 3}},
	}
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}} {
		shuffled := make([]Point, len(pts))
		for i, j := range order {
			shuffled[i] = pts[j]
		}
		got := frontierOf(dir, shuffled)
		if want := []int{1, 3}; !reflect.DeepEqual(indices(got), want) {
			t.Fatalf("order %v: frontier = %v, want %v", order, indices(got), want)
		}
	}
}

// TestFrontierEqualOnOneAxis: equality on one axis is not dominance
// unless the other axis strictly wins.
func TestFrontierEqualOnOneAxis(t *testing.T) {
	dir := []bool{false, false}
	got := frontierOf(dir, []Point{
		{Index: 0, Values: []float64{2, 1}},
		{Index: 1, Values: []float64{2, 3}}, // equal on axis 0, strictly better on 1: evicts 0
	})
	if want := []int{1}; !reflect.DeepEqual(indices(got), want) {
		t.Fatalf("frontier = %v, want %v", indices(got), want)
	}
}

// TestFrontierSingleMetric: with one axis the frontier degenerates to
// the single best point, duplicates collapsed.
func TestFrontierSingleMetric(t *testing.T) {
	got := frontierOf([]bool{true}, []Point{
		{Index: 4, Values: []float64{3}},
		{Index: 7, Values: []float64{1}},
		{Index: 2, Values: []float64{1}},
		{Index: 9, Values: []float64{2}},
	})
	if want := []int{2}; !reflect.DeepEqual(indices(got), want) {
		t.Fatalf("single-metric frontier = %v, want %v", indices(got), want)
	}
}

// TestFrontierMergeEqualsSequential: merging per-shard frontiers must
// equal one sequential pass — the property chunked reduction rests on.
func TestFrontierMergeEqualsSequential(t *testing.T) {
	dir := []bool{false, true, false}
	rng := stats.NewRNG(7)
	var pts []Point
	for i := 0; i < 400; i++ {
		pts = append(pts, Point{Index: i, Values: []float64{
			float64(rng.Intn(8)), float64(rng.Intn(8)), float64(rng.Intn(8)),
		}})
	}
	want := frontierOf(dir, pts)
	for _, shard := range []int{1, 3, 64, 400} {
		merged := newFrontier(dir)
		for lo := 0; lo < len(pts); lo += shard {
			local := newFrontier(dir)
			for _, p := range pts[lo:min(lo+shard, len(pts))] {
				if err := local.Offer(p.Index, p.Values); err != nil {
					t.Fatal(err)
				}
			}
			if err := merged.Merge(local); err != nil {
				t.Fatal(err)
			}
		}
		if got := merged.Sorted(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d: merged frontier %v != sequential %v", shard, indices(got), indices(want))
		}
	}
}

// TestTopKOrderingAndTies: best-first output with ties broken toward
// the lower index, under both directions.
func TestTopKOrderingAndTies(t *testing.T) {
	tk := newTopK(0, false, 3)
	for _, p := range []Point{
		{Index: 10, Values: []float64{1}}, {Index: 3, Values: []float64{5}}, {Index: 8, Values: []float64{5}},
		{Index: 1, Values: []float64{2}}, {Index: 4, Values: []float64{4}},
	} {
		tk.offer(p.Index, p.Values)
	}
	if want := []int{3, 8, 4}; !reflect.DeepEqual(indices(tk.ranked()), want) {
		t.Fatalf("maximize top-3 = %v, want %v", indices(tk.ranked()), want)
	}

	tk = newTopK(0, true, 2)
	for _, p := range []Point{
		{Index: 5, Values: []float64{2}}, {Index: 2, Values: []float64{2}}, {Index: 7, Values: []float64{1}},
	} {
		tk.offer(p.Index, p.Values)
	}
	if want := []int{7, 2}; !reflect.DeepEqual(indices(tk.ranked()), want) {
		t.Fatalf("minimize top-2 = %v, want %v", indices(tk.ranked()), want)
	}
}

// TestTopKMergeEqualsSequential mirrors the frontier merge property
// for the leaderboards.
func TestTopKMergeEqualsSequential(t *testing.T) {
	rng := stats.NewRNG(11)
	var pts []Point
	for i := 0; i < 300; i++ {
		pts = append(pts, Point{Index: i, Values: []float64{float64(rng.Intn(12))}})
	}
	seq := newTopK(0, false, 10)
	for _, p := range pts {
		seq.offer(p.Index, p.Values)
	}
	want := append([]Point(nil), seq.ranked()...)
	for _, shard := range []int{1, 7, 128} {
		merged := newTopK(0, false, 10)
		for lo := 0; lo < len(pts); lo += shard {
			local := newTopK(0, false, 10)
			for _, p := range pts[lo:min(lo+shard, len(pts))] {
				local.offer(p.Index, p.Values)
			}
			merged.merge(local)
		}
		if got := merged.ranked(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d: merged top-k %v != sequential %v", shard, indices(got), indices(want))
		}
	}
}

// TestTopKSmallerPool: k larger than the candidate pool returns the
// whole pool, ranked.
func TestTopKSmallerPool(t *testing.T) {
	tk := newTopK(0, false, 10)
	tk.offer(1, []float64{1})
	tk.offer(2, []float64{3})
	if want := []int{2, 1}; !reflect.DeepEqual(indices(tk.ranked()), want) {
		t.Fatalf("ranked = %v, want %v", indices(tk.ranked()), want)
	}
}
