package sweep

import (
	"fmt"

	"repro/internal/ann"
	"repro/internal/pareto"
)

// Partial is the serializable reduction of one contiguous shard of a
// sweep: per-metric top-k leaderboards (ranked best-first) plus the
// shard-local Pareto frontier (ascending flat index), every point
// addressed by its flat index in the *full* space. It is the unit of
// distribution — a serve node computes one per /v1/sweep/shard
// request, and a coordinator merges them back together.
//
// Partials form an associative algebra under Merge: for any split
// points a ≤ b ≤ c, merging the partials over [a,b) and [b,c) yields
// byte-for-byte the partial over [a,c), because both reductions are
// pure functions of the covered point *set* — top-k keeps the best k
// of the union under the total order (value, then lower index) and the
// frontier keeps the non-dominated subset with exact-duplicate vectors
// collapsed onto their lowest index. JSON round-trips preserve the
// algebra bit for bit: encoding/json renders float64 with the shortest
// representation that parses back to the same bits.
type Partial struct {
	// Space names the design space; Start/End is the half-open
	// flat-index range this partial covers.
	Space string `json:"space"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	// K is the resolved per-metric leaderboard size (0 = frontier
	// only); partials must agree on it to merge.
	K int `json:"k"`
	// Kernel names the kernel tier the shard ran under ("" = exact,
	// matching partials from nodes that predate kernel tiers). The fast
	// tiers are only bit-identical within a mode, so Merge refuses to
	// combine partials computed under different kernels.
	Kernel string `json:"kernel,omitempty"`
	// Metrics names the value columns of every Point, in order, with
	// their ranking directions.
	Metrics []MetricInfo `json:"metrics"`
	// TopK holds one best-first leaderboard per metric (omitted when
	// K == 0). A shard shorter than K keeps fewer points.
	TopK [][]Point `json:"topk,omitempty"`
	// Frontier is the shard-local Pareto-optimal set, in ascending
	// index order.
	Frontier []Point `json:"frontier"`
}

// kernelLabel renders a kernel mode as the wire label: the exact
// default stays the empty string so documents and partials from
// pre-kernel-tier nodes compare (and merge) as exact.
func kernelLabel(m ann.KernelMode) string {
	if m == ann.KernelExact {
		return ""
	}
	return m.String()
}

// kernelOrExact names a wire label for error messages.
func kernelOrExact(label string) string {
	if label == "" {
		return "exact"
	}
	return label
}

// minimizeDirs extracts the per-column ranking directions.
func (p *Partial) minimizeDirs() []bool {
	dirs := make([]bool, len(p.Metrics))
	for i, m := range p.Metrics {
		dirs[i] = m.Minimize
	}
	return dirs
}

// metricsEqual reports whether two partials rank by the same columns.
func metricsEqual(a, b []MetricInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds o — the partial covering the range immediately after
// p's — into p, leaving p covering [p.Start, o.End) in canonical form.
// Merging every shard of a space in range order reproduces the
// single-process sweep bit for bit.
func (p *Partial) Merge(o *Partial) error {
	switch {
	case o == nil:
		return fmt.Errorf("sweep: cannot merge a nil partial")
	case o.Space != p.Space:
		return fmt.Errorf("sweep: cannot merge partials over spaces %q and %q", p.Space, o.Space)
	case o.Start != p.End:
		return fmt.Errorf("sweep: partial ranges [%d,%d) and [%d,%d) are not adjacent",
			p.Start, p.End, o.Start, o.End)
	case o.K != p.K:
		return fmt.Errorf("sweep: partials disagree on leaderboard size (%d vs %d)", p.K, o.K)
	case o.Kernel != p.Kernel:
		return fmt.Errorf("sweep: partials ran different kernel tiers (%q vs %q); results are only bit-identical within one mode",
			kernelOrExact(p.Kernel), kernelOrExact(o.Kernel))
	case !metricsEqual(p.Metrics, o.Metrics):
		return fmt.Errorf("sweep: partials rank by different metrics (%v vs %v)", p.Metrics, o.Metrics)
	}
	minimize := p.minimizeDirs()
	if p.K > 0 {
		if len(p.TopK) != len(p.Metrics) || len(o.TopK) != len(o.Metrics) {
			return fmt.Errorf("sweep: partial carries %d/%d leaderboards for %d metrics",
				len(p.TopK), len(o.TopK), len(p.Metrics))
		}
		for m := range p.Metrics {
			t := newTopK(m, minimize[m], p.K)
			for _, pt := range p.TopK[m] {
				t.offer(pt.Index, pt.Values)
			}
			for _, pt := range o.TopK[m] {
				t.offer(pt.Index, pt.Values)
			}
			p.TopK[m] = t.ranked()
		}
	}
	// p.Frontier is already canonical — mutually non-dominated with
	// duplicates collapsed — so seed the reducer with it directly and
	// offer only o's points: O(|o|·F) instead of rebuilding at O(F²)
	// per merge as the accumulated frontier grows.
	f := pareto.Resume(minimize, p.Frontier)
	for _, pt := range o.Frontier {
		if err := f.Offer(pt.Index, pt.Values); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	p.Frontier = f.Sorted()
	p.End = o.End
	return nil
}

// Result renders the partial as a result document. For a partial
// covering the whole space this is exactly what Run returns; the
// timing fields — the only non-deterministic ones — are left zero for
// the caller to stamp.
func (p *Partial) Result() *Result {
	res := &Result{
		Space:    p.Space,
		Points:   p.End - p.Start,
		Metrics:  append([]MetricInfo(nil), p.Metrics...),
		Kernel:   p.Kernel,
		Frontier: p.Frontier,
	}
	if p.K > 0 {
		res.TopK = p.TopK
	}
	return res
}
