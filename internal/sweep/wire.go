package sweep

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary wire format for Partial — the compact encoding distributed
// sweeps ship between serve nodes and coordinators. JSON stays the
// compatibility format (and round-trips float64 bit for bit), but on
// wide frontiers the textual floats dominate coordination cost; the
// binary form writes each value as its 8 raw IEEE-754 bits instead.
//
// Layout (all integers little-endian, strings and lists
// length-prefixed with uint32 counts):
//
//	magic "RPP1" (4 bytes: repro partial, version 1)
//	space   string
//	start, end, k  int64
//	kernel  string
//	metrics uint32 count × { name string, minimize uint8 }
//	topk    uint8 present × { count × pointList }
//	frontier pointList
//
// where pointList is uint32 count × { index int64, values: one uint64
// of float bits per metric }. Every field is fixed-width or
// length-prefixed, so decoding is a single validated pass; the decoder
// rejects truncated input, counts that exceed the remaining payload,
// and trailing bytes. Bit-identity is trivial: float bits pass through
// untouched, so Marshal∘Unmarshal is the identity on the merge algebra
// exactly like the JSON path.
//
// The WireWriter/WireReader primitives are exported so the serve layer
// can frame shard requests and responses in the same vocabulary.

// partialMagic tags (and versions) the binary Partial encoding.
const partialMagic = "RPP1"

// WireWriter appends the primitive wire types to a growing buffer.
type WireWriter struct{ buf []byte }

// Grow pre-sizes the buffer for about n more bytes.
func (w *WireWriter) Grow(n int) {
	if cap(w.buf)-len(w.buf) < n {
		next := make([]byte, len(w.buf), len(w.buf)+n)
		copy(next, w.buf)
		w.buf = next
	}
}

// Bytes returns the encoded buffer.
func (w *WireWriter) Bytes() []byte { return w.buf }

// Raw appends bytes verbatim (magic tags).
func (w *WireWriter) Raw(b []byte) { w.buf = append(w.buf, b...) }

func (w *WireWriter) U8(v uint8)   { w.buf = append(w.buf, v) }
func (w *WireWriter) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *WireWriter) I64(v int64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v)) }
func (w *WireWriter) F64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// Bool writes a bool as one byte.
func (w *WireWriter) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Str writes a uint32 length prefix followed by the raw bytes.
func (w *WireWriter) Str(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// WireReader consumes the primitive wire types with bounds checking;
// the first failure sticks and every later read returns zero values.
type WireReader struct {
	buf []byte
	off int
	err error
}

// NewWireReader wraps data for a decoding pass.
func NewWireReader(data []byte) *WireReader { return &WireReader{buf: data} }

// Fail records a structural error (first one wins).
func (r *WireReader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Err returns the sticky decode error, if any.
func (r *WireReader) Err() error { return r.err }

// Finish returns the sticky error, or an error if undecoded bytes
// remain — every complete document must consume its input exactly.
func (r *WireReader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("sweep: wire document has %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// Take consumes the next n raw bytes.
func (r *WireReader) Take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.Fail("sweep: wire document truncated at offset %d (need %d bytes, have %d)", r.off, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *WireReader) U8() uint8 {
	b := r.Take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *WireReader) U32() uint32 {
	b := r.Take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *WireReader) I64() int64 {
	b := r.Take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *WireReader) F64() float64 {
	b := r.Take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Bool reads a one-byte bool.
func (r *WireReader) Bool() bool { return r.U8() != 0 }

func (r *WireReader) Str() string {
	n := r.U32()
	return string(r.Take(int(n)))
}

// Count reads a uint32 element count and sanity-checks it against the
// bytes actually remaining (each element needs at least elemSize
// bytes), so corrupt input cannot provoke huge allocations.
func (r *WireReader) Count(elemSize int) int {
	n := int(r.U32())
	if r.err == nil && n*elemSize > len(r.buf)-r.off {
		r.Fail("sweep: wire count %d exceeds remaining %d bytes", n, len(r.buf)-r.off)
		return 0
	}
	return n
}

// Rest consumes and returns all remaining bytes.
func (r *WireReader) Rest() []byte { return r.Take(len(r.buf) - r.off) }

func writePoints(w *WireWriter, pts []Point, metrics int) {
	w.U32(uint32(len(pts)))
	for _, p := range pts {
		w.I64(int64(p.Index))
		for m := 0; m < metrics; m++ {
			w.F64(p.Values[m])
		}
	}
}

func readPoints(r *WireReader, metrics int) []Point {
	n := r.Count(8 + 8*metrics)
	if r.err != nil || n == 0 {
		return nil
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i].Index = int(r.I64())
		v := make([]float64, metrics)
		for m := range v {
			v[m] = r.F64()
		}
		pts[i].Values = v
	}
	return pts
}

// MarshalBinary encodes the partial in the compact wire format.
func (p *Partial) MarshalBinary() ([]byte, error) {
	w := &WireWriter{}
	w.Grow(256 + len(p.Frontier)*(8+8*len(p.Metrics)))
	w.Raw([]byte(partialMagic))
	w.Str(p.Space)
	w.I64(int64(p.Start))
	w.I64(int64(p.End))
	w.I64(int64(p.K))
	w.Str(p.Kernel)
	w.U32(uint32(len(p.Metrics)))
	for _, m := range p.Metrics {
		w.Str(m.Name)
		w.Bool(m.Minimize)
	}
	if p.TopK != nil {
		if len(p.TopK) != len(p.Metrics) {
			return nil, fmt.Errorf("sweep: partial carries %d leaderboards for %d metrics", len(p.TopK), len(p.Metrics))
		}
		w.U8(1)
		for _, lead := range p.TopK {
			writePoints(w, lead, len(p.Metrics))
		}
	} else {
		w.U8(0)
	}
	writePoints(w, p.Frontier, len(p.Metrics))
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a partial produced by MarshalBinary,
// validating structure as it goes; on error the receiver is left
// unspecified.
func (p *Partial) UnmarshalBinary(data []byte) error {
	r := NewWireReader(data)
	if magic := r.Take(len(partialMagic)); magic == nil || string(magic) != partialMagic {
		return fmt.Errorf("sweep: not a binary partial (bad magic/version)")
	}
	p.Space = r.Str()
	p.Start = int(r.I64())
	p.End = int(r.I64())
	p.K = int(r.I64())
	p.Kernel = r.Str()
	nm := r.Count(5) // per metric: ≥4-byte name prefix + 1 direction byte
	p.Metrics = nil
	for i := 0; i < nm && r.Err() == nil; i++ {
		p.Metrics = append(p.Metrics, MetricInfo{Name: r.Str(), Minimize: r.Bool()})
	}
	p.TopK = nil
	if r.U8() != 0 {
		p.TopK = make([][]Point, 0, nm)
		for i := 0; i < nm && r.Err() == nil; i++ {
			lead := readPoints(r, nm)
			if lead == nil {
				lead = []Point{} // keep "present but empty" distinct from absent
			}
			p.TopK = append(p.TopK, lead)
		}
	}
	p.Frontier = readPoints(r, nm)
	return r.Finish()
}
