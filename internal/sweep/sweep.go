// Package sweep evaluates entire design spaces through trained
// ensembles — the paper's payoff move. Simulation affords a few
// hundred points; the predictive models make the other 99 % cheap, so
// the natural query shifts from "score these points" to "rank the
// whole space": best-k configurations per metric, and the Pareto
// frontier over several predicted metrics at once (performance vs.
// energy across model bundles, or performance vs. prediction variance
// as a confidence axis).
//
// The engine is streaming and sharded: the space is enumerated in
// fixed-size chunks (never materializing the cross product), each
// chunk is encoded and scored through the batched core kernels by a
// worker pool, and per-chunk partial reductions — a bounded top-k heap
// per metric plus a local Pareto front — merge in chunk order. Chunk
// boundaries depend only on ChunkSize and every reduction is a total
// order (ties break on the lower flat index; exactly equal metric
// vectors collapse onto the lowest index), so the output is
// bit-identical for any worker count, and parity-tested against the
// naive materialize-everything Reference.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/pareto"
	"repro/internal/space"
)

// DefaultChunkSize is the enumeration granularity when Config leaves
// it zero: big enough to keep the batched kernels in their blocked
// regime, small enough that per-worker buffers stay cache-friendly.
const DefaultChunkSize = 4096

// DefaultTopK is the per-metric leaderboard size when Config leaves it
// zero.
const DefaultTopK = 10

// DefaultMaxFrontier bounds the Pareto frontier when Config leaves it
// zero. Real frontiers are tiny next to their spaces; one that grows
// past this is almost always a degenerate metric set (the same axis
// maximized and minimized, say), which would otherwise reduce at
// O(frontier) per point and hoard O(space) memory.
const DefaultMaxFrontier = 1 << 16

// Config parameterizes one sweep.
type Config struct {
	// TopK is the per-metric leaderboard size (0 = DefaultTopK,
	// negative = no leaderboards, frontier only).
	TopK int
	// Start and End restrict the sweep to the half-open flat-index
	// range [Start, End) — one contiguous shard of the space. The zero
	// values select the whole space (End == 0 means Size()). Chunk
	// boundaries stay aligned to absolute ChunkSize multiples of the
	// full space regardless of Start, so a shard's per-chunk reduction
	// sequence is exactly a sub-sequence of the full run's and shard
	// outputs merge back bit-identically (see Partial).
	Start int
	End   int
	// ChunkSize is the number of points one work unit enumerates,
	// encodes and scores (0 = DefaultChunkSize). Results are
	// bit-identical for any setting; throughput is flat across a wide
	// range.
	ChunkSize int
	// Workers bounds the sweep's worker pool (0 = GOMAXPROCS; 1 or
	// negative = fully sequential). Output bits do not depend on it.
	Workers int
	// MaxFrontier fails the sweep if the Pareto frontier outgrows it
	// (0 = DefaultMaxFrontier, negative = unbounded). The check runs in
	// the ordered reducer, so it trips at the same point count for any
	// worker setting.
	MaxFrontier int
	// OnProgress, when non-nil, is called from the reducer — in chunk
	// order, on the Run goroutine — as chunks complete.
	OnProgress func(done, total int)
	// Kernel selects the forward-kernel tier (see ann.KernelMode). The
	// zero value is the bit-identical exact kernel; the fast tiers are
	// bounded-error and bit-identical within a mode, so every shard of
	// a distributed sweep must run the same kernel (Partial records it
	// and Merge enforces agreement).
	Kernel ann.KernelMode
}

// MetricInfo names one result column and its ranking direction.
type MetricInfo struct {
	Name     string `json:"name"`
	Minimize bool   `json:"minimize,omitempty"`
}

// Result is a reduced full-space sweep.
type Result struct {
	// Space is the design space's name; Points is how many design
	// points were scored (the whole space).
	Space  string `json:"space"`
	Points int    `json:"points"`
	// Metrics names the value columns of every Point, in order.
	Metrics []MetricInfo `json:"metrics"`
	// TopK holds one best-first leaderboard per metric (empty when the
	// sweep ran frontier-only).
	TopK [][]Point `json:"topk,omitempty"`
	// Kernel names the non-default kernel tier the sweep ran under
	// (empty = exact; see ann.KernelMode).
	Kernel string `json:"kernel,omitempty"`
	// Frontier is the Pareto-optimal set over all metrics, in
	// ascending index order.
	Frontier []Point `json:"frontier"`
	// Elapsed and PointsPerSec report throughput; they are the only
	// fields that vary between bit-identical runs.
	Elapsed      time.Duration `json:"elapsed"`
	PointsPerSec float64       `json:"pointsPerSec"`
}

// chunkPart is one chunk's reduction, travelling worker → reducer. A
// non-nil err means the chunk hit an unrankable point (NaN/±Inf metric
// value); the reducer surfaces errors strictly in chunk-id order, so
// the error a sweep reports is a function of the space, not of worker
// scheduling.
type chunkPart struct {
	id    int
	rows  int
	tops  []*topK
	front *pareto.Frontier
	err   error
}

// resolveRange validates the configured [Start, End) window against
// the space size and resolves the zero-value defaults (End == 0 means
// size). Errors name the offending Config field.
func (c Config) resolveRange(size int) (start, end int, err error) {
	start, end = c.Start, c.End
	if end == 0 {
		end = size
	}
	switch {
	case start < 0:
		return 0, 0, fmt.Errorf("sweep: Config.Start %d is negative", c.Start)
	case c.End < 0:
		return 0, 0, fmt.Errorf("sweep: Config.End %d is negative", c.End)
	case end > size:
		return 0, 0, fmt.Errorf("sweep: Config.End %d exceeds the space's %d points", c.End, size)
	case end < start:
		if c.End == 0 {
			// The caller never set End; the actual defect is Start.
			return 0, 0, fmt.Errorf("sweep: Config.Start %d exceeds the space's %d points", start, size)
		}
		return 0, 0, fmt.Errorf("sweep: Config.End %d is before Config.Start %d", end, start)
	case end == start:
		return 0, 0, fmt.Errorf("sweep: Config range [%d,%d) is empty", start, end)
	}
	return start, end, nil
}

// Run sweeps every point of sp — or the [Config.Start, Config.End)
// shard of it — through the metric set and reduces the stream into
// per-metric top-k leaderboards and the Pareto frontier. The encoder
// is derived from sp, so the metric set's ensembles must have been
// trained on sp's encoding (bundle loading guarantees this for
// bundle-backed metrics). Cancelling ctx abandons the sweep and
// returns the context's error.
func Run(ctx context.Context, sp *space.Space, set *core.MetricSet, cfg Config) (*Result, error) {
	start := time.Now() //repolint:allow determinism -- throughput telemetry; Elapsed/PointsPerSec are documented as the only wall-varying Result fields
	p, err := RunPartial(ctx, sp, set, cfg)
	if err != nil {
		return nil, err
	}
	res := p.Result()
	res.Elapsed = time.Since(start) //repolint:allow determinism -- throughput telemetry; parity tests compare everything but these fields
	res.PointsPerSec = float64(res.Points) / res.Elapsed.Seconds()
	return res, nil
}

// RunPartial is the sharded engine entry point: it sweeps the
// [Config.Start, Config.End) range and returns the serializable
// partial reduction instead of a finished result document. Partials
// over adjacent ranges merge associatively (see Partial.Merge), and
// because chunk boundaries are absolute ChunkSize multiples, a
// shard's reduction is a byte-exact sub-reduction of the full run —
// merging every shard in range order reproduces Run bit for bit.
func RunPartial(ctx context.Context, sp *space.Space, set *core.MetricSet, cfg Config) (*Partial, error) {
	if sp == nil || set == nil {
		return nil, fmt.Errorf("sweep: need both a space and a metric set")
	}
	enc := encoding.NewEncoder(sp)
	if enc.Width() != set.Inputs() {
		return nil, fmt.Errorf("sweep: space %q encodes to %d inputs, metric models expect %d",
			sp.Name, enc.Width(), set.Inputs())
	}
	chunk := cfg.ChunkSize
	if chunk == 0 {
		chunk = DefaultChunkSize
	}
	if chunk < 1 {
		return nil, fmt.Errorf("sweep: Config.ChunkSize %d is not positive", cfg.ChunkSize)
	}
	first, last, err := cfg.resolveRange(sp.Size())
	if err != nil {
		return nil, err
	}
	topk := cfg.TopK
	if topk == 0 {
		topk = DefaultTopK
	}
	switch {
	case topk < 0:
		topk = 0 // frontier only
	case topk > sp.Size():
		topk = sp.Size()
	}
	maxFrontier := cfg.MaxFrontier
	if maxFrontier == 0 {
		maxFrontier = DefaultMaxFrontier
	}

	// Chunk ids are absolute: chunk c always covers [c·chunk,
	// (c+1)·chunk) ∩ [first, last), whatever the range, so every shard
	// reduces the same per-chunk pieces the full run would.
	total := last - first
	firstChunk := first / chunk
	nchunks := (last-1)/chunk - firstChunk + 1
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > nchunks {
		workers = nchunks
	}

	metrics := set.Metrics()
	minimize := set.Minimize()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan chunkPart, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			width := enc.Width()
			xs := make([]float64, chunk*width)
			cols := make([][]float64, len(metrics))
			view := make([][]float64, len(metrics))
			for m := range cols {
				cols[m] = make([]float64, chunk)
			}
			vbuf := make([]float64, len(metrics))
			for {
				c := firstChunk + int(next.Add(1)) - 1
				if c >= firstChunk+nchunks || ctx.Err() != nil {
					return
				}
				lo := max(first, c*chunk)
				hi := min(last, (c+1)*chunk)
				rows := hi - lo
				enc.EncodeRange(lo, rows, xs[:rows*width])
				for m := range cols {
					view[m] = cols[m][:rows]
				}
				set.EvalKernel(xs[:rows*width], rows, view, cfg.Kernel)
				p := chunkPart{id: c - firstChunk, rows: rows, front: newFrontier(minimize)}
				for m := range metrics {
					p.tops = append(p.tops, newTopK(m, minimize[m], topk))
				}
				for r := 0; r < rows; r++ {
					for m := range vbuf {
						vbuf[m] = cols[m][r]
					}
					// The frontier's offer validates finiteness before
					// ranking; an unrankable point abandons the chunk
					// and travels to the reducer as its error.
					if err := p.front.Offer(lo+r, vbuf); err != nil {
						p.err = err
						break
					}
					for _, t := range p.tops {
						t.offer(lo+r, vbuf)
					}
				}
				select {
				case results <- p:
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	// Ordered reduction: chunk pieces may arrive in any order, but
	// merge strictly by chunk id, so progress is monotone and the merge
	// sequence is one fixed function of the space — not of scheduling.
	front := newFrontier(minimize)
	var tops []*topK
	for m := range metrics {
		tops = append(tops, newTopK(m, minimize[m], topk))
	}
	pending := make(map[int]chunkPart, workers)
	reduced, scored := 0, 0
	for reduced < nchunks {
		var p chunkPart
		select {
		case p = <-results:
		case <-ctx.Done():
			cancel()
			wg.Wait()
			return nil, ctx.Err()
		}
		pending[p.id] = p
		for {
			q, ok := pending[reduced]
			if !ok {
				break
			}
			delete(pending, reduced)
			if q.err != nil {
				cancel()
				wg.Wait()
				return nil, fmt.Errorf("sweep: %w", q.err)
			}
			for m, t := range tops {
				t.merge(q.tops[m])
			}
			if err := front.Merge(q.front); err != nil {
				cancel()
				wg.Wait()
				return nil, fmt.Errorf("sweep: %w", err)
			}
			if maxFrontier > 0 && front.Len() > maxFrontier {
				cancel()
				wg.Wait()
				return nil, fmt.Errorf("sweep: Pareto frontier exceeds %d points after %d of %d swept — the metric set is likely degenerate (one axis both maximized and minimized); raise Config.MaxFrontier (negative = unbounded) if the frontier is genuinely this large",
					maxFrontier, scored+q.rows, total)
			}
			scored += q.rows
			reduced++
			if cfg.OnProgress != nil {
				cfg.OnProgress(scored, total)
			}
		}
	}
	wg.Wait()

	out := &Partial{
		Space:    sp.Name,
		Start:    first,
		End:      last,
		K:        topk,
		Kernel:   kernelLabel(cfg.Kernel),
		Frontier: front.Sorted(),
	}
	for _, m := range metrics {
		out.Metrics = append(out.Metrics, MetricInfo{Name: m.Name, Minimize: m.Minimize})
	}
	if topk > 0 {
		for _, t := range tops {
			out.TopK = append(out.TopK, t.ranked())
		}
	}
	return out, nil
}

// Reference computes the same reduction by materializing and scoring
// every design point at once, ranking with full sorts and an O(n²)
// dominance scan — a direct transcription of the definitions, with
// none of the engine's streaming machinery. It exists as the parity
// oracle for tests and ad-hoc verification; memory is O(size·metrics),
// so keep it to small spaces.
func Reference(sp *space.Space, set *core.MetricSet, topk int) (*Result, error) {
	if sp == nil || set == nil {
		return nil, fmt.Errorf("sweep: need both a space and a metric set")
	}
	enc := encoding.NewEncoder(sp)
	if enc.Width() != set.Inputs() {
		return nil, fmt.Errorf("sweep: space %q encodes to %d inputs, metric models expect %d",
			sp.Name, enc.Width(), set.Inputs())
	}
	if topk == 0 {
		topk = DefaultTopK
	}
	size := sp.Size()
	if topk > size {
		topk = size
	}
	metrics := set.Metrics()
	minimize := set.Minimize()

	xs := enc.EncodeRange(0, size, nil)
	cols := make([][]float64, len(metrics))
	for m := range cols {
		cols[m] = make([]float64, size)
	}
	set.Eval(xs, size, cols)
	pts := make([]Point, size)
	for i := range pts {
		v := make([]float64, len(metrics))
		for m := range cols {
			v[m] = cols[m][i]
		}
		pts[i] = Point{Index: i, Values: v}
	}

	res := &Result{Space: sp.Name, Points: size}
	for _, m := range metrics {
		res.Metrics = append(res.Metrics, MetricInfo{Name: m.Name, Minimize: m.Minimize})
	}
	if topk > 0 {
		for m := range metrics {
			order := make([]int, size)
			for i := range order {
				order[i] = i
			}
			sortByMetric(order, pts, m, minimize[m])
			lead := make([]Point, topk)
			for i := range lead {
				lead[i] = pts[order[i]]
			}
			res.TopK = append(res.TopK, lead)
		}
	}
	// A point is on the frontier iff nothing dominates it and it is the
	// lowest-indexed member of its exact-value class.
	for i := range pts {
		keep := true
		for j := range pts {
			if j == i {
				continue
			}
			if dominates(minimize, pts[j].Values, pts[i].Values) ||
				(equalValues(pts[j].Values, pts[i].Values) && pts[j].Index < pts[i].Index) {
				keep = false
				break
			}
		}
		if keep {
			res.Frontier = append(res.Frontier, pts[i])
		}
	}
	return res, nil
}

// sortByMetric orders point positions best-first on one metric.
func sortByMetric(order []int, pts []Point, m int, minimize bool) {
	sort.Slice(order, func(i, j int) bool {
		a, b := pts[order[i]], pts[order[j]]
		return better(minimize, a.Values[m], b.Values[m], a.Index, b.Index)
	})
}
