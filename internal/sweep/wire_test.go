package sweep

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/ann"
)

// TestPartialBinaryRoundTrip pins the codec's identity property over
// real engine output: Marshal∘Unmarshal reproduces the partial byte
// for byte (compared through the canonical JSON rendering, which
// round-trips float64 exactly), across leaderboard shapes, shard
// ranges, and kernel tiers.
func TestPartialBinaryRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		lo, hi int
	}{
		{"full", Config{TopK: 5, ChunkSize: 64, Workers: 2}, 0, 0},
		{"frontier-only", Config{TopK: -1, ChunkSize: 32}, 0, 0},
		{"shard", Config{TopK: 3, ChunkSize: 16}, 40, 104},
		{"fast32", Config{TopK: 5, ChunkSize: 64, Kernel: ann.KernelFast32}, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := runPartialRange(t, tc.cfg, tc.lo, tc.hi)
			data, err := p.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var got Partial
			if err := got.UnmarshalBinary(data); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if want, have := partialJSON(t, p), partialJSON(t, &got); !bytes.Equal(want, have) {
				t.Fatalf("binary round-trip changed the partial:\nwant %s\ngot  %s", want, have)
			}
		})
	}
}

// TestPartialBinaryMergeParity asserts the codec preserves the merge
// algebra: shards that each cross the wire binary-encoded merge into
// the same bytes as the unencoded whole-range run.
func TestPartialBinaryMergeParity(t *testing.T) {
	cfg := Config{TopK: 4, ChunkSize: 32}
	whole := runPartialRange(t, cfg, 0, 0)
	mid := (whole.End - whole.Start) / 2

	ship := func(p *Partial) *Partial {
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var out Partial
		if err := out.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		return &out
	}
	left := ship(runPartialRange(t, cfg, 0, mid))
	right := ship(runPartialRange(t, cfg, mid, 0))
	if err := left.Merge(right); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if want, have := partialJSON(t, whole), partialJSON(t, left); !bytes.Equal(want, have) {
		t.Fatalf("binary-shipped merge diverged:\nwant %s\ngot  %s", want, have)
	}
}

// TestPartialBinaryRejectsCorrupt walks the decoder's failure modes:
// bad magic, truncation at every byte boundary, and trailing garbage
// must all error (never panic, never succeed).
func TestPartialBinaryRejectsCorrupt(t *testing.T) {
	p := runPartialRange(t, Config{TopK: 2, ChunkSize: 32}, 0, 0)
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Partial
	if err := out.UnmarshalBinary(nil); err == nil {
		t.Error("empty input decoded")
	}
	bad := append([]byte("XXXX"), data[4:]...)
	if err := out.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic decoded")
	}
	for n := 0; n < len(data); n++ {
		if err := out.UnmarshalBinary(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded", n, len(data))
		}
	}
	if err := out.UnmarshalBinary(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing byte decoded")
	}
}

// FuzzPartialBinary hardens the decoder against arbitrary bytes: it
// must never panic or over-allocate, and anything it accepts must
// re-encode and re-decode to the same document (the codec is stable on
// its own image).
func FuzzPartialBinary(f *testing.F) {
	set, sp := testSet(f)
	for _, cfg := range []Config{{TopK: 3, ChunkSize: 32}, {TopK: -1, ChunkSize: 64}} {
		p, err := RunPartial(context.Background(), sp, set, cfg)
		if err != nil {
			f.Fatal(err)
		}
		seed, err := p.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Add([]byte(partialMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Partial
		if err := p.UnmarshalBinary(data); err != nil {
			return
		}
		enc, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		var q Partial
		if err := q.UnmarshalBinary(enc); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
