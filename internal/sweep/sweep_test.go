package sweep

import (
	"context"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/ann"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/space"
	"repro/internal/stats"
)

func testSpace() *space.Space {
	return space.New("sweep-synth", []space.Param{
		{Name: "a", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8}},
		{Name: "b", Kind: space.Cardinal, Values: []float64{1, 2, 3, 4, 5}},
		{Name: "c", Kind: space.Continuous, Values: []float64{0.5, 1.0, 1.5}},
		{Name: "mode", Kind: space.Nominal, Levels: []string{"x", "y"}},
	})
}

func perfTarget(sp *space.Space, idx int) float64 {
	c := sp.Choices(idx)
	v := 0.4 + 0.3*math.Log2(sp.Value(c, 0)) + 0.1*sp.Value(c, 1)*sp.Value(c, 2)
	if sp.LevelName(c, 3) == "y" {
		v *= 1.25
	}
	return v
}

func energyTarget(sp *space.Space, idx int) float64 {
	c := sp.Choices(idx)
	return 0.2 + 0.05*sp.Value(c, 0) + 0.1*sp.Value(c, 1)*sp.Value(c, 2)
}

// trainBundle fits a quick ensemble to target over the test space and
// wraps it as a bundle, the artifact sweeps actually consume.
func trainBundle(t testing.TB, seed uint64, target func(*space.Space, int) float64) *bundle.Bundle {
	t.Helper()
	sp := testSpace()
	cfg := core.DefaultModelConfig()
	cfg.Train.MaxEpochs = 120
	cfg.Train.Patience = 20
	cfg.Seed = seed
	rng := stats.NewRNG(seed)
	train := sp.Sample(rng, 60)
	enc := encoding.NewEncoder(sp)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{target(sp, idx)}
	}
	ens, err := core.TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New(sp, ens, bundle.Meta{Study: "synth", Metric: "perf"})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

var (
	modelsOnce sync.Once
	perfB      *bundle.Bundle
	energyB    *bundle.Bundle
)

// testBundles trains the shared perf/energy models once per process.
func testBundles(t testing.TB) (*bundle.Bundle, *bundle.Bundle) {
	modelsOnce.Do(func() {
		perfB = trainBundle(t, 41, perfTarget)
		energyB = trainBundle(t, 42, energyTarget)
	})
	return perfB, energyB
}

// testSet is the three-axis metric set most tests sweep with: perf
// (maximize), energy (minimize), perf confidence (minimize variance).
func testSet(t testing.TB) (*core.MetricSet, *space.Space) {
	perf, energy := testBundles(t)
	set, sp, err := Resolve([]MetricSpec{
		{Name: "perf", Model: "perf"},
		{Name: "energy", Model: "energy", Minimize: true},
		{Name: "conf", Model: "perf", Variance: true, Minimize: true},
	}, map[string]*bundle.Bundle{"perf": perf, "energy": energy})
	if err != nil {
		t.Fatal(err)
	}
	return set, sp
}

// sameReduction compares the deterministic parts of two results
// (everything but wall-clock throughput), bit for bit.
func sameReduction(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Space != b.Space || a.Points != b.Points {
		t.Fatalf("%s: space/points %s/%d vs %s/%d", label, a.Space, a.Points, b.Space, b.Points)
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatalf("%s: metrics %v vs %v", label, a.Metrics, b.Metrics)
	}
	if !reflect.DeepEqual(a.TopK, b.TopK) {
		t.Fatalf("%s: top-k diverged:\n%v\nvs\n%v", label, a.TopK, b.TopK)
	}
	if !reflect.DeepEqual(a.Frontier, b.Frontier) {
		t.Fatalf("%s: frontier diverged:\n%v\nvs\n%v", label, a.Frontier, b.Frontier)
	}
}

// TestRunMatchesReference is the engine's ground-truth parity: the
// streaming, chunked, pooled sweep must reproduce the naive
// materialize-everything reference exactly on a small space.
func TestRunMatchesReference(t *testing.T) {
	set, sp := testSet(t)
	want, err := Reference(sp, set, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 13, 50, sp.Size(), 4096} {
		got, err := Run(context.Background(), sp, set, Config{TopK: 7, ChunkSize: chunk, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		sameReduction(t, "chunked vs reference", want, got)
	}
}

// TestRunBitIdenticalAcrossWorkers is the sharding guarantee: output
// bits do not depend on the worker count.
func TestRunBitIdenticalAcrossWorkers(t *testing.T) {
	set, sp := testSet(t)
	var base *Result
	for _, workers := range []int{1, 4, 16} {
		got, err := Run(context.Background(), sp, set, Config{TopK: 5, ChunkSize: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		sameReduction(t, "workers", base, got)
	}
}

// TestRunKernelBitIdentity extends the sharding guarantee to the fast
// kernel tiers: within a mode, the sweep reduction is byte-identical
// for every worker count and chunk size (the distributed-sweep
// invariant the ISSUE's kernel work must preserve). Modes are free to
// differ from each other — each one is its own deterministic function
// of the inputs.
func TestRunKernelBitIdentity(t *testing.T) {
	set, sp := testSet(t)
	for _, mode := range []ann.KernelMode{ann.KernelFast, ann.KernelFast32} {
		var base *Result
		for _, workers := range []int{1, 4, 16} {
			for _, chunk := range []int{9, 64, 512} {
				got, err := Run(context.Background(), sp, set, Config{
					TopK: 5, ChunkSize: chunk, Workers: workers, Kernel: mode,
				})
				if err != nil {
					t.Fatal(err)
				}
				if base == nil {
					base = got
					continue
				}
				sameReduction(t, mode.String(), base, got)
			}
		}
		if base.Kernel != mode.String() {
			t.Fatalf("result kernel label %q, want %q", base.Kernel, mode)
		}
	}
}

// TestRunSingleMetric covers the degenerate single-axis sweep: the
// frontier collapses to the single best point (duplicates included),
// matching the reference.
func TestRunSingleMetric(t *testing.T) {
	perf, _ := testBundles(t)
	set, sp, err := Resolve([]MetricSpec{{Model: "perf"}}, map[string]*bundle.Bundle{"perf": perf})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), sp, set, Config{TopK: 3, ChunkSize: 17})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(sp, set, 3)
	if err != nil {
		t.Fatal(err)
	}
	sameReduction(t, "single metric", want, got)
	if len(got.Frontier) != 1 {
		t.Fatalf("single-metric frontier has %d points, want 1", len(got.Frontier))
	}
	if got.Frontier[0].Index != got.TopK[0][0].Index {
		t.Fatalf("frontier %d != top-1 %d", got.Frontier[0].Index, got.TopK[0][0].Index)
	}
}

// TestRunProgressAndThroughput checks the streaming bookkeeping:
// progress arrives in order and covers the space exactly once.
func TestRunProgressAndThroughput(t *testing.T) {
	set, sp := testSet(t)
	var done []int
	res, err := Run(context.Background(), sp, set, Config{ChunkSize: 25, Workers: 4, OnProgress: func(d, total int) {
		if total != sp.Size() {
			t.Errorf("progress total %d, want %d", total, sp.Size())
		}
		done = append(done, d)
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(done); i++ {
		if done[i] <= done[i-1] {
			t.Fatalf("progress not monotone: %v", done)
		}
	}
	if len(done) == 0 || done[len(done)-1] != sp.Size() {
		t.Fatalf("progress ended at %v, want %d", done, sp.Size())
	}
	if res.Points != sp.Size() || res.PointsPerSec <= 0 {
		t.Fatalf("points %d, throughput %v", res.Points, res.PointsPerSec)
	}
}

// TestRunCancel abandons the sweep on context cancellation.
func TestRunCancel(t *testing.T) {
	set, sp := testSet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, sp, set, Config{ChunkSize: 1}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunFrontierCap: a degenerate metric set (one axis maximized and
// minimized) would otherwise put every distinct point on the frontier;
// the cap fails the sweep deterministically, and a negative cap opts
// back into the unbounded reduction.
func TestRunFrontierCap(t *testing.T) {
	perf, _ := testBundles(t)
	set, sp, err := Resolve([]MetricSpec{
		{Name: "up", Model: "perf"},
		{Name: "down", Model: "perf", Minimize: true},
	}, map[string]*bundle.Bundle{"perf": perf})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		_, err = Run(context.Background(), sp, set, Config{ChunkSize: 10, Workers: workers, MaxFrontier: 16})
		if err == nil || !strings.Contains(err.Error(), "frontier exceeds 16") {
			t.Fatalf("workers=%d: degenerate sweep err = %v, want frontier cap", workers, err)
		}
	}
	res, err := Run(context.Background(), sp, set, Config{ChunkSize: 10, MaxFrontier: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) <= 16 {
		t.Fatalf("unbounded degenerate frontier has %d points, expected > 16", len(res.Frontier))
	}
}

// TestRunRejectsNonFiniteDeterministically: a model that predicts NaN
// (an exec-oracle backend gone bad, say) must fail the sweep with an
// error naming the offending flat index — and because the reducer
// surfaces errors strictly in chunk-id order, the same error for any
// worker count instead of whichever chunk lost the race.
func TestRunRejectsNonFiniteDeterministically(t *testing.T) {
	nan := trainBundle(t, 43, func(*space.Space, int) float64 { return math.NaN() })
	set, sp, err := Resolve([]MetricSpec{
		{Name: "bad", Model: "bad"},
	}, map[string]*bundle.Bundle{"bad": nan})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, workers := range []int{1, 4} {
		_, err := Run(context.Background(), sp, set, Config{ChunkSize: 10, Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: sweep over a NaN-predicting model succeeded", workers)
		}
		if !strings.Contains(err.Error(), "non-finite") || !strings.Contains(err.Error(), "point") {
			t.Fatalf("workers=%d: err %q does not name a non-finite point", workers, err)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("non-finite rejection depends on worker count:\n%s\nvs\n%s", msgs[0], msgs[1])
	}
}

// TestPartialMergeRejectsNonFinite: the binary shard wire format can
// physically carry NaN (unlike JSON), so a partial from a corrupted
// node must be rejected at merge instead of poisoning the frontier.
func TestPartialMergeRejectsNonFinite(t *testing.T) {
	metrics := []MetricInfo{{Name: "perf"}}
	p := &Partial{Space: "s", Start: 0, End: 4, K: 0, Metrics: metrics,
		Frontier: []Point{{Index: 2, Values: []float64{1.5}}}}
	o := &Partial{Space: "s", Start: 4, End: 8, K: 0, Metrics: metrics,
		Frontier: []Point{{Index: 6, Values: []float64{math.NaN()}}}}
	err := p.Merge(o)
	if err == nil {
		t.Fatal("merge of a NaN-carrying partial succeeded")
	}
	if !strings.Contains(err.Error(), "point 6") {
		t.Fatalf("merge rejection %q does not name point 6", err)
	}
}

// TestRunValidation rejects malformed configurations.
func TestRunValidation(t *testing.T) {
	set, sp := testSet(t)
	if _, err := Run(context.Background(), nil, set, Config{}); err == nil {
		t.Fatal("nil space accepted")
	}
	if _, err := Run(context.Background(), sp, nil, Config{}); err == nil {
		t.Fatal("nil metric set accepted")
	}
	if _, err := Run(context.Background(), sp, set, Config{ChunkSize: -1}); err == nil {
		t.Fatal("negative chunk accepted")
	}
	other := space.New("other", []space.Param{
		{Name: "x", Kind: space.Cardinal, Values: []float64{1, 2}},
	})
	if _, err := Run(context.Background(), other, set, Config{}); err == nil || !strings.Contains(err.Error(), "inputs") {
		t.Fatalf("width mismatch err = %v", err)
	}
}

// TestResolveValidation covers the bundle-facing error paths.
func TestResolveValidation(t *testing.T) {
	perf, energy := testBundles(t)
	both := map[string]*bundle.Bundle{"perf": perf, "energy": energy}
	if _, _, err := Resolve(nil, both); err == nil {
		t.Fatal("no metrics accepted")
	}
	if _, _, err := Resolve([]MetricSpec{{Model: "perf"}}, nil); err == nil {
		t.Fatal("no bundles accepted")
	}
	if _, _, err := Resolve([]MetricSpec{{}}, both); err == nil || !strings.Contains(err.Error(), "names no model") {
		t.Fatalf("ambiguous model err = %v", err)
	}
	if _, _, err := Resolve([]MetricSpec{{Model: "nope"}}, both); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("unknown model err = %v", err)
	}
	if _, _, err := Resolve([]MetricSpec{{Model: "perf", Output: 3}}, both); err == nil || !strings.Contains(err.Error(), "output") {
		t.Fatalf("bad output err = %v", err)
	}
	// A bundle over a drifted space must not join the set.
	drifted := trainBundle(t, 77, perfTarget)
	driftedSpace := testSpace()
	driftedSpace.Params[0].Values = []float64{1, 2, 4, 16}
	db, err := bundle.New(space.New("sweep-synth", driftedSpace.Params), drifted.Ensemble, bundle.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []MetricSpec{{Model: "perf"}, {Model: "drift"}}
	if _, _, err := Resolve(specs, map[string]*bundle.Bundle{"perf": perf, "drift": db}); err == nil || !strings.Contains(err.Error(), "drift") {
		t.Fatalf("drifted space err = %v", err)
	}
	// Empty model resolves against a sole bundle.
	set, _, err := Resolve([]MetricSpec{{Variance: true, Minimize: true}}, map[string]*bundle.Bundle{"perf": perf})
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Names()[0]; got != "perf.var" {
		t.Fatalf("derived name = %q, want perf.var", got)
	}
}

// TestParseSpecs covers the CLI metric grammar.
func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("ipc=perf, conf=perf:var ,energy:min,mt:out2:max")
	if err != nil {
		t.Fatal(err)
	}
	want := []MetricSpec{
		{Name: "ipc", Model: "perf"},
		{Name: "conf", Model: "perf", Variance: true, Minimize: true},
		{Model: "energy", Minimize: true},
		{Model: "mt", Output: 2},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Fatalf("specs = %+v, want %+v", specs, want)
	}
	for _, bad := range []string{"", "a,,b", "=perf", "perf:bogus", "perf:out-1", "perf:min:max"} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) accepted", bad)
		}
	}
}

// TestDefaultSpecs: one model sweeps perf-vs-confidence; several sweep
// one primary axis each.
func TestDefaultSpecs(t *testing.T) {
	got := DefaultSpecs([]string{"m"})
	if len(got) != 2 || got[0].Variance || !got[1].Variance || !got[1].Minimize {
		t.Fatalf("single-model defaults = %+v", got)
	}
	got = DefaultSpecs([]string{"a", "b"})
	if len(got) != 2 || got[0].Model != "a" || got[1].Model != "b" || got[0].Variance || got[1].Variance {
		t.Fatalf("multi-model defaults = %+v", got)
	}
}
