package sweep

import (
	"container/heap"
	"sort"

	"repro/internal/pareto"
)

// Point is one scored design point — internal/pareto's Point, aliased
// so the sweep wire format and result documents are unchanged by the
// algebra's extraction.
type Point = pareto.Point

// better, dominates and equalValues delegate to the shared dominance
// algebra in internal/pareto; the local names keep the sweep reducers
// reading as before the extraction.
func better(minimize bool, a, b float64, ai, bi int) bool {
	return pareto.Better(minimize, a, b, ai, bi)
}

func dominates(minimize []bool, a, b []float64) bool {
	return pareto.Dominates(minimize, a, b)
}

func equalValues(a, b []float64) bool {
	return pareto.EqualValues(a, b)
}

// newFrontier builds the streaming Pareto reducer (see pareto.Frontier
// for the membership rules and the bit-identity argument).
func newFrontier(minimize []bool) *pareto.Frontier {
	return pareto.NewFrontier(minimize)
}

// topK is the bounded per-metric leaderboard: a k-element heap whose
// root is the weakest kept point, so a full-space stream reduces in
// O(size·log k) with O(k) memory. offer copies values only when the
// candidate is actually kept.
type topK struct {
	metric   int // column this leaderboard ranks by
	minimize bool
	k        int
	pts      []Point
}

func newTopK(metric int, minimize bool, k int) *topK {
	if k < 0 {
		k = 0 // frontier-only sweep: every offer is a no-op
	}
	return &topK{metric: metric, minimize: minimize, k: k, pts: make([]Point, 0, k)}
}

// heap.Interface: the root is the point every candidate must beat.
func (t *topK) Len() int { return len(t.pts) }
func (t *topK) Less(i, j int) bool {
	return better(t.minimize, t.pts[j].Values[t.metric], t.pts[i].Values[t.metric], t.pts[j].Index, t.pts[i].Index)
}
func (t *topK) Swap(i, j int) { t.pts[i], t.pts[j] = t.pts[j], t.pts[i] }
func (t *topK) Push(x any)    { t.pts = append(t.pts, x.(Point)) }
func (t *topK) Pop() any {
	old := t.pts
	x := old[len(old)-1]
	t.pts = old[:len(old)-1]
	return x
}

// offer considers one candidate; values may be a reused buffer — it is
// copied only if the candidate enters the leaderboard.
func (t *topK) offer(index int, values []float64) {
	if t.k <= 0 {
		return
	}
	if len(t.pts) == t.k {
		root := &t.pts[0]
		if !better(t.minimize, values[t.metric], root.Values[t.metric], index, root.Index) {
			return
		}
		root.Index = index
		copy(root.Values, values)
		heap.Fix(t, 0)
		return
	}
	heap.Push(t, Point{Index: index, Values: append([]float64(nil), values...)})
}

// merge folds another leaderboard's kept points in.
func (t *topK) merge(o *topK) {
	for _, p := range o.pts {
		t.offer(p.Index, p.Values)
	}
}

// ranked returns the kept points best-first. The leaderboard is spent
// afterwards.
func (t *topK) ranked() []Point {
	sort.Slice(t.pts, func(i, j int) bool {
		return better(t.minimize, t.pts[i].Values[t.metric], t.pts[j].Values[t.metric], t.pts[i].Index, t.pts[j].Index)
	})
	return t.pts
}
