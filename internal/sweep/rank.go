package sweep

import (
	"container/heap"
	"sort"
)

// Point is one scored design point: its flat index in the design space
// and its value on every metric, in metric-column order.
type Point struct {
	Index  int       `json:"point"`
	Values []float64 `json:"values"`
}

// better reports whether value a beats value b on one metric, with the
// deterministic tie-break on flat index that makes every sweep
// reduction a total order: equal values rank the lower index first.
func better(minimize bool, a, b float64, ai, bi int) bool {
	if a != b {
		if minimize {
			return a < b
		}
		return a > b
	}
	return ai < bi
}

// topK is the bounded per-metric leaderboard: a k-element heap whose
// root is the weakest kept point, so a full-space stream reduces in
// O(size·log k) with O(k) memory. offer copies values only when the
// candidate is actually kept.
type topK struct {
	metric   int // column this leaderboard ranks by
	minimize bool
	k        int
	pts      []Point
}

func newTopK(metric int, minimize bool, k int) *topK {
	if k < 0 {
		k = 0 // frontier-only sweep: every offer is a no-op
	}
	return &topK{metric: metric, minimize: minimize, k: k, pts: make([]Point, 0, k)}
}

// heap.Interface: the root is the point every candidate must beat.
func (t *topK) Len() int { return len(t.pts) }
func (t *topK) Less(i, j int) bool {
	return better(t.minimize, t.pts[j].Values[t.metric], t.pts[i].Values[t.metric], t.pts[j].Index, t.pts[i].Index)
}
func (t *topK) Swap(i, j int) { t.pts[i], t.pts[j] = t.pts[j], t.pts[i] }
func (t *topK) Push(x any)    { t.pts = append(t.pts, x.(Point)) }
func (t *topK) Pop() any {
	old := t.pts
	x := old[len(old)-1]
	t.pts = old[:len(old)-1]
	return x
}

// offer considers one candidate; values may be a reused buffer — it is
// copied only if the candidate enters the leaderboard.
func (t *topK) offer(index int, values []float64) {
	if t.k <= 0 {
		return
	}
	if len(t.pts) == t.k {
		root := &t.pts[0]
		if !better(t.minimize, values[t.metric], root.Values[t.metric], index, root.Index) {
			return
		}
		root.Index = index
		copy(root.Values, values)
		heap.Fix(t, 0)
		return
	}
	heap.Push(t, Point{Index: index, Values: append([]float64(nil), values...)})
}

// merge folds another leaderboard's kept points in.
func (t *topK) merge(o *topK) {
	for _, p := range o.pts {
		t.offer(p.Index, p.Values)
	}
}

// ranked returns the kept points best-first. The leaderboard is spent
// afterwards.
func (t *topK) ranked() []Point {
	sort.Slice(t.pts, func(i, j int) bool {
		return better(t.minimize, t.pts[i].Values[t.metric], t.pts[j].Values[t.metric], t.pts[i].Index, t.pts[j].Index)
	})
	return t.pts
}

// frontier is the streaming Pareto reducer over every metric at once.
// A point survives iff no other point weakly dominates it (at least as
// good on every metric, strictly better on one); points with exactly
// equal metric vectors collapse onto the lowest index. Both rules are
// properties of the point *set*, not of arrival order, so the frontier
// is identical for any chunking, worker count, or merge order — the
// heart of the sweep's bit-identity guarantee.
type frontier struct {
	minimize []bool
	pts      []Point
}

func newFrontier(minimize []bool) *frontier {
	return &frontier{minimize: minimize}
}

// dominates reports whether metric vector a weakly dominates b.
func dominates(minimize []bool, a, b []float64) bool {
	strict := false
	for m := range a {
		switch {
		case a[m] == b[m]:
		case better(minimize[m], a[m], b[m], 0, 0):
			strict = true
		default:
			return false
		}
	}
	return strict
}

func equalValues(a, b []float64) bool {
	for m := range a {
		if a[m] != b[m] {
			return false
		}
	}
	return true
}

// offer considers one candidate; values may be a reused buffer — it is
// copied only if the candidate joins the frontier.
//
// Rejections move the dominating point to the front of the scan order:
// a point that dominates once tends to dominate a long run of
// neighboring candidates, so the streaming common case exits after one
// comparison instead of O(frontier). The membership rules are
// properties of the point set, so internal order is free to permute —
// sorted() canonicalizes before anything observable.
func (f *frontier) offer(index int, values []float64) {
	for i := range f.pts {
		q := &f.pts[i]
		if equalValues(q.Values, values) {
			if index < q.Index {
				q.Index = index // duplicate collapse: lowest index represents the class
			}
			return
		}
		if dominates(f.minimize, q.Values, values) {
			if i > 0 {
				f.pts[0], f.pts[i] = f.pts[i], f.pts[0]
			}
			return
		}
	}
	// The candidate survives: evict everything it now dominates.
	kept := f.pts[:0]
	for _, q := range f.pts {
		if !dominates(f.minimize, values, q.Values) {
			kept = append(kept, q)
		}
	}
	f.pts = append(kept, Point{Index: index, Values: append([]float64(nil), values...)})
}

// merge folds another frontier in.
func (f *frontier) merge(o *frontier) {
	for _, p := range o.pts {
		f.offer(p.Index, p.Values)
	}
}

// sorted returns the frontier in ascending index order — the canonical
// rendering every parity test compares bit for bit.
func (f *frontier) sorted() []Point {
	sort.Slice(f.pts, func(i, j int) bool { return f.pts[i].Index < f.pts[j].Index })
	return f.pts
}
