package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/space"
)

// MetricSpec is the wire- and flag-friendly description of one ranking
// metric, resolved against named model bundles by Resolve. The zero
// spec means "the sole model's primary prediction, maximized".
type MetricSpec struct {
	// Name labels the result column; empty derives it from the rest
	// ("model", "model[2]", "model.var").
	Name string `json:"name,omitempty"`
	// Model names the bundle backing this metric; empty is allowed
	// only when exactly one bundle is in play.
	Model string `json:"model,omitempty"`
	// Output selects the ensemble output column (multi-task bundles).
	Output int `json:"output,omitempty"`
	// Variance ranks by member disagreement on Output instead of its
	// mean — the confidence axis.
	Variance bool `json:"variance,omitempty"`
	// Minimize flips the ranking direction (e.g. energy, variance).
	Minimize bool `json:"minimize,omitempty"`
}

// label is the display name a nameless spec gets.
func (s MetricSpec) label() string {
	n := s.Model
	if n == "" {
		n = "model"
	}
	if s.Output != 0 {
		n = fmt.Sprintf("%s[%d]", n, s.Output)
	}
	if s.Variance {
		n += ".var"
	}
	return n
}

// ParseSpecs parses the CLI metric grammar: comma-separated entries of
//
//	[name=]model[:outN][:var][:min|:max]
//
// e.g. "perf,energy:min" ranks two bundles' primary predictions,
// "ipc=perf,conf=perf:var" adds the ensemble-disagreement confidence
// axis, and "mt:out2:min" reads output column 2 of a multi-task
// bundle. Variance metrics default to :min (confident points rank
// first); everything else defaults to :max.
func ParseSpecs(arg string) ([]MetricSpec, error) {
	var specs []MetricSpec
	for _, entry := range strings.Split(arg, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("sweep: empty metric entry in %q", arg)
		}
		var spec MetricSpec
		if name, rest, ok := strings.Cut(entry, "="); ok {
			spec.Name = strings.TrimSpace(name)
			if spec.Name == "" {
				return nil, fmt.Errorf("sweep: metric %q has an empty name", entry)
			}
			entry = rest
		}
		parts := strings.Split(entry, ":")
		spec.Model = strings.TrimSpace(parts[0])
		dir := ""
		for _, flag := range parts[1:] {
			switch {
			case flag == "var":
				spec.Variance = true
			case flag == "min" || flag == "max":
				if dir != "" {
					return nil, fmt.Errorf("sweep: metric %q sets both :%s and :%s", entry, dir, flag)
				}
				dir = flag
			case strings.HasPrefix(flag, "out"):
				n, err := strconv.Atoi(flag[len("out"):])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("sweep: metric %q: bad output column %q", entry, flag)
				}
				spec.Output = n
			default:
				return nil, fmt.Errorf("sweep: metric %q: unknown flag %q (want outN, var, min or max)", entry, flag)
			}
		}
		spec.Minimize = dir == "min" || (dir == "" && spec.Variance)
		specs = append(specs, spec)
	}
	return specs, nil
}

// DefaultSpecs builds the metric list a sweep runs when the caller
// names none: with one model, its primary prediction (maximized) plus
// its prediction variance (minimized) — the performance-vs-confidence
// frontier; with several, one primary prediction per model.
func DefaultSpecs(models []string) []MetricSpec {
	if len(models) == 1 {
		return []MetricSpec{
			{Model: models[0]},
			{Model: models[0], Variance: true, Minimize: true},
		}
	}
	specs := make([]MetricSpec, len(models))
	for i, m := range models {
		specs[i] = MetricSpec{Model: m}
	}
	return specs
}

// Resolve turns metric specs into a core.MetricSet against named
// bundles, verifying that every bundle models one and the same design
// space (parameter definitions included — two models over drifted
// spaces must not be ranked jointly). It returns the set and the
// shared space the sweep enumerates.
func Resolve(specs []MetricSpec, bundles map[string]*bundle.Bundle) (*core.MetricSet, *space.Space, error) {
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("sweep: no metrics to rank by")
	}
	if len(bundles) == 0 {
		return nil, nil, fmt.Errorf("sweep: no model bundles to rank with")
	}
	var sole string
	if len(bundles) == 1 {
		for name := range bundles {
			sole = name
		}
	}
	var sp *space.Space
	metrics := make([]core.Metric, len(specs))
	for i, spec := range specs {
		name := spec.Model
		if name == "" {
			if sole == "" {
				known := make([]string, 0, len(bundles))
				for n := range bundles {
					known = append(known, n)
				}
				sort.Strings(known)
				return nil, nil, fmt.Errorf("sweep: metric %d names no model; loaded: %s", i, strings.Join(known, ", "))
			}
			name = sole
		}
		b, ok := bundles[name]
		if !ok {
			return nil, nil, fmt.Errorf("sweep: metric %q reads unknown model %q", spec.label(), name)
		}
		if sp == nil {
			sp = b.Space
		} else if err := b.CompatibleWith(sp); err != nil {
			return nil, nil, fmt.Errorf("sweep: model %q: %w", name, err)
		}
		m := core.Metric{
			Name:     spec.Name,
			Ens:      b.Ensemble,
			Output:   spec.Output,
			Minimize: spec.Minimize,
		}
		if spec.Variance {
			m.Kind = core.MetricVariance
		}
		if m.Name == "" {
			s := spec
			s.Model = name
			m.Name = s.label()
		}
		metrics[i] = m
	}
	set, err := core.NewMetricSet(metrics)
	if err != nil {
		return nil, nil, err
	}
	return set, sp, nil
}
