package sweep

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/ann"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/space"
	"repro/internal/stats"
)

// benchSpace is a mid-sized space (7680 points) — big enough that the
// sweep spends its time in the encode/predict/reduce loop, small
// enough for -benchtime 1x smoke runs.
func benchSpace() *space.Space {
	return space.New("sweep-bench", []space.Param{
		{Name: "a", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8, 16, 32, 64, 128}},
		{Name: "b", Kind: space.Cardinal, Values: []float64{1, 2, 3, 4, 5, 6}},
		{Name: "c", Kind: space.Continuous, Values: []float64{0.5, 1.0, 1.5, 2.0, 2.5}},
		{Name: "d", Kind: space.Cardinal, Values: []float64{16, 32, 64, 128}},
		{Name: "e", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8}},
		{Name: "mode", Kind: space.Nominal, Levels: []string{"x", "y"}},
	})
}

func benchBundle(b *testing.B) *bundle.Bundle {
	b.Helper()
	sp := benchSpace()
	cfg := core.DefaultModelConfig()
	cfg.Train.MaxEpochs = 60
	cfg.Train.Patience = 15
	cfg.Seed = 3
	// The engine owns the parallelism under benchmark; a fixed
	// single-worker ensemble keeps the workers=N scaling attributable
	// to the sweep pool alone.
	cfg.Workers = 1
	rng := stats.NewRNG(3)
	train := sp.Sample(rng, 60)
	enc := encoding.NewEncoder(sp)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		c := sp.Choices(idx)
		y[i] = []float64{0.4 + 0.2*sp.Value(c, 0)/128 + 0.1*sp.Value(c, 1)*sp.Value(c, 2)}
	}
	ens, err := core.TrainEnsemble(x, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	bd, err := bundle.New(sp, ens, bundle.Meta{Study: "bench", Metric: "perf"})
	if err != nil {
		b.Fatal(err)
	}
	return bd
}

// BenchmarkSweep measures chunked full-space sweep throughput (the
// default perf + confidence metric pair) at several worker counts;
// BENCH_sweep.json records the points/s baselines the CI
// bench-regression gate (cmd/benchdiff) compares against.
func BenchmarkSweep(b *testing.B) {
	bd := benchBundle(b)
	set, sp, err := Resolve(DefaultSpecs([]string{"m"}), map[string]*bundle.Bundle{"m": bd})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), sp, set, Config{Workers: workers, ChunkSize: 512}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sp.Size())*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkSweepKernel measures the same single-worker sweep across
// the kernel tiers; BENCH_kernel.json gates both the absolute
// throughputs and the fast32:exact ratio (the tentpole speedup).
func BenchmarkSweepKernel(b *testing.B) {
	bd := benchBundle(b)
	set, sp, err := Resolve(DefaultSpecs([]string{"m"}), map[string]*bundle.Bundle{"m": bd})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []ann.KernelMode{ann.KernelExact, ann.KernelFast, ann.KernelFast32} {
		b.Run(fmt.Sprintf("kernel=%s", mode), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), sp, set, Config{Workers: 1, ChunkSize: 512, Kernel: mode}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sp.Size())*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkSweepReference pins the streaming engine's overhead against
// the materialize-everything baseline it replaced.
func BenchmarkSweepReference(b *testing.B) {
	bd := benchBundle(b)
	set, sp, err := Resolve(DefaultSpecs([]string{"m"}), map[string]*bundle.Bundle{"m": bd})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Reference(sp, set, DefaultTopK); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sp.Size())*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}
