package sweep

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

// fuzzPoints decodes raw fuzz bytes into a small point set over 1–3
// metrics. Values are quantized to a handful of levels so ties, exact
// duplicates and dominance chains all occur routinely instead of
// almost never. Bytes ≥ 250 decode to non-finite values (NaN, ±Inf) so
// the fuzzer also exercises the frontier's unrankable-point rejection;
// bytes below that decode exactly as they did before the rejection
// existed, keeping the checked-in corpus meaningful.
func fuzzPoints(data []byte) (minimize []bool, pts []Point) {
	if len(data) < 2 {
		return nil, nil
	}
	nm := int(data[0])%3 + 1
	minimize = make([]bool, nm)
	for m := range minimize {
		minimize[m] = data[1]&(1<<m) != 0
	}
	data = data[2:]
	for i := 0; i+nm <= len(data) && len(pts) < 64; i += nm {
		v := make([]float64, nm)
		for m := 0; m < nm; m++ {
			switch b := data[i+m]; {
			case b >= 254:
				v[m] = math.NaN()
			case b >= 252:
				v[m] = math.Inf(1)
			case b >= 250:
				v[m] = math.Inf(-1)
			default:
				v[m] = float64(b % 5)
			}
		}
		pts = append(pts, Point{Index: len(pts), Values: v})
	}
	return minimize, pts
}

// finiteValues reports whether every metric value is rankable.
func finiteValues(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// refFrontier is the O(n²) transcription of the frontier definition: a
// point survives iff nothing weakly dominates it and it is the
// lowest-indexed member of its exact-value class.
func refFrontier(minimize []bool, pts []Point) []Point {
	var out []Point
	for i := range pts {
		keep := true
		for j := range pts {
			if j == i {
				continue
			}
			if dominates(minimize, pts[j].Values, pts[i].Values) ||
				(equalValues(pts[j].Values, pts[i].Values) && pts[j].Index < pts[i].Index) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, pts[i])
		}
	}
	return out
}

// FuzzParetoDominance fuzzes the streaming frontier reducer against
// the dominance definition: dominance must be irreflexive and
// antisymmetric, and the reducer must match the O(n²) reference for
// any offer order — the set-function property the whole distributed
// merge rests on. Points with non-finite values must be rejected at
// Offer with an error naming the point, leaving the frontier exactly
// as if they were never offered.
func FuzzParetoDominance(f *testing.F) {
	f.Add([]byte{1, 0, 3, 1, 4, 1, 5, 0, 2, 2})
	f.Add([]byte{2, 1, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4})
	f.Add([]byte{0, 3, 4, 4, 4, 4, 0, 1, 2, 3})
	// NaN (254+), +Inf (252) and -Inf (250) values mixed into an
	// otherwise ordinary stream: the reducer must reject exactly the
	// non-finite points and reduce the rest as if they were absent.
	f.Add([]byte{1, 0, 3, 1, 255, 2, 4, 1, 252, 0, 250, 3, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		minimize, pts := fuzzPoints(data)
		if len(pts) == 0 {
			return
		}
		// Split out the unrankable points: they must error at Offer;
		// the finite remainder must reduce exactly as if offered alone.
		var finite, bad []Point
		for _, p := range pts {
			if finiteValues(p.Values) {
				finite = append(finite, p)
			} else {
				bad = append(bad, p)
			}
		}
		for _, p := range bad {
			fr := newFrontier(minimize)
			err := fr.Offer(p.Index, p.Values)
			if err == nil {
				t.Fatalf("offer of non-finite point %d (%v) succeeded", p.Index, p.Values)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("point %d", p.Index)) {
				t.Fatalf("rejection %q does not name point %d", err, p.Index)
			}
			if fr.Len() != 0 {
				t.Fatalf("rejected offer left %d points on the frontier", fr.Len())
			}
		}
		pts = finite
		if len(pts) == 0 {
			return
		}
		for i := range pts {
			if dominates(minimize, pts[i].Values, pts[i].Values) {
				t.Fatalf("point %d dominates itself", i)
			}
			for j := range pts {
				if dominates(minimize, pts[i].Values, pts[j].Values) &&
					dominates(minimize, pts[j].Values, pts[i].Values) {
					t.Fatalf("points %d and %d dominate each other", i, j)
				}
			}
		}
		want := refFrontier(minimize, pts)
		offer := func(order []int) []Point {
			fr := newFrontier(minimize)
			for _, i := range order {
				if err := fr.Offer(pts[i].Index, pts[i].Values); err != nil {
					t.Fatal(err)
				}
			}
			return fr.Sorted()
		}
		forward := make([]int, len(pts))
		reverse := make([]int, len(pts))
		rotated := make([]int, len(pts))
		for i := range pts {
			forward[i] = i
			reverse[i] = len(pts) - 1 - i
			rotated[i] = (i + len(pts)/2) % len(pts)
		}
		for _, order := range [][]int{forward, reverse, rotated} {
			if got := offer(order); !reflect.DeepEqual(got, want) {
				t.Fatalf("order %v: frontier %v, reference %v (minimize %v, points %v)",
					order, got, want, minimize, pts)
			}
		}
	})
}
