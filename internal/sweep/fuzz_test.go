package sweep

import (
	"reflect"
	"testing"
)

// fuzzPoints decodes raw fuzz bytes into a small point set over 1–3
// metrics. Values are quantized to a handful of levels so ties, exact
// duplicates and dominance chains all occur routinely instead of
// almost never.
func fuzzPoints(data []byte) (minimize []bool, pts []Point) {
	if len(data) < 2 {
		return nil, nil
	}
	nm := int(data[0])%3 + 1
	minimize = make([]bool, nm)
	for m := range minimize {
		minimize[m] = data[1]&(1<<m) != 0
	}
	data = data[2:]
	for i := 0; i+nm <= len(data) && len(pts) < 64; i += nm {
		v := make([]float64, nm)
		for m := 0; m < nm; m++ {
			v[m] = float64(data[i+m] % 5)
		}
		pts = append(pts, Point{Index: len(pts), Values: v})
	}
	return minimize, pts
}

// refFrontier is the O(n²) transcription of the frontier definition: a
// point survives iff nothing weakly dominates it and it is the
// lowest-indexed member of its exact-value class.
func refFrontier(minimize []bool, pts []Point) []Point {
	var out []Point
	for i := range pts {
		keep := true
		for j := range pts {
			if j == i {
				continue
			}
			if dominates(minimize, pts[j].Values, pts[i].Values) ||
				(equalValues(pts[j].Values, pts[i].Values) && pts[j].Index < pts[i].Index) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, pts[i])
		}
	}
	return out
}

// FuzzParetoDominance fuzzes the streaming frontier reducer against
// the dominance definition: dominance must be irreflexive and
// antisymmetric, and the reducer must match the O(n²) reference for
// any offer order — the set-function property the whole distributed
// merge rests on.
func FuzzParetoDominance(f *testing.F) {
	f.Add([]byte{1, 0, 3, 1, 4, 1, 5, 0, 2, 2})
	f.Add([]byte{2, 1, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4})
	f.Add([]byte{0, 3, 4, 4, 4, 4, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		minimize, pts := fuzzPoints(data)
		if len(pts) == 0 {
			return
		}
		for i := range pts {
			if dominates(minimize, pts[i].Values, pts[i].Values) {
				t.Fatalf("point %d dominates itself", i)
			}
			for j := range pts {
				if dominates(minimize, pts[i].Values, pts[j].Values) &&
					dominates(minimize, pts[j].Values, pts[i].Values) {
					t.Fatalf("points %d and %d dominate each other", i, j)
				}
			}
		}
		want := refFrontier(minimize, pts)
		offer := func(order []int) []Point {
			fr := newFrontier(minimize)
			for _, i := range order {
				fr.offer(pts[i].Index, pts[i].Values)
			}
			return fr.sorted()
		}
		forward := make([]int, len(pts))
		reverse := make([]int, len(pts))
		rotated := make([]int, len(pts))
		for i := range pts {
			forward[i] = i
			reverse[i] = len(pts) - 1 - i
			rotated[i] = (i + len(pts)/2) % len(pts)
		}
		for _, order := range [][]int{forward, reverse, rotated} {
			if got := offer(order); !reflect.DeepEqual(got, want) {
				t.Fatalf("order %v: frontier %v, reference %v (minimize %v, points %v)",
					order, got, want, minimize, pts)
			}
		}
	})
}
