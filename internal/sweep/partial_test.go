package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"repro/internal/stats"
)

// partialJSON canonicalizes a partial for byte-exact comparison.
func partialJSON(t *testing.T, p *Partial) []byte {
	t.Helper()
	buf, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// runPartialRange is shorthand for one shard run.
func runPartialRange(t *testing.T, cfg Config, start, end int) *Partial {
	t.Helper()
	set, sp := testSet(t)
	cfg.Start, cfg.End = start, end
	p, err := RunPartial(context.Background(), sp, set, cfg)
	if err != nil {
		t.Fatalf("RunPartial [%d,%d): %v", start, end, err)
	}
	return p
}

// TestPartialMergeAssociative is the shard algebra's contract,
// property-style: for random split points a < b < c, random k and
// chunk sizes, merge(P(a,b), P(b,c)) equals P(a,c) byte for byte —
// including splits that do NOT fall on chunk boundaries, because both
// reductions are pure functions of the covered point set.
func TestPartialMergeAssociative(t *testing.T) {
	_, sp := testSet(t)
	size := sp.Size()
	rng := stats.NewRNG(2026)
	topks := []int{-1, 1, 3, 10, size + 5}
	chunks := []int{1, 7, 32, 4096}
	for trial := 0; trial < 40; trial++ {
		a := rng.Intn(size - 2)
		b := a + 1 + rng.Intn(size-a-2)
		c := b + 1 + rng.Intn(size-b-1) + 1
		if c > size {
			c = size
		}
		cfg := Config{TopK: topks[rng.Intn(len(topks))], ChunkSize: chunks[rng.Intn(len(chunks))], Workers: 1 + rng.Intn(4)}
		left := runPartialRange(t, cfg, a, b)
		right := runPartialRange(t, cfg, b, c)
		whole := runPartialRange(t, cfg, a, c)
		if err := left.Merge(right); err != nil {
			t.Fatalf("trial %d: merge: %v", trial, err)
		}
		got, want := partialJSON(t, left), partialJSON(t, whole)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (a=%d b=%d c=%d cfg=%+v): merge(P(a,b),P(b,c)) != P(a,c)\ngot  %s\nwant %s",
				trial, a, b, c, cfg, got, want)
		}
	}
}

// TestPartialMergeSurvivesJSON: a partial that crossed the wire merges
// to the same bits as one that never left the process — float64 values
// round-trip through encoding/json exactly.
func TestPartialMergeSurvivesJSON(t *testing.T) {
	_, sp := testSet(t)
	size := sp.Size()
	cfg := Config{TopK: 6, ChunkSize: 16}
	direct := runPartialRange(t, cfg, 0, size)
	mid := size / 3
	left := runPartialRange(t, cfg, 0, mid)
	right := runPartialRange(t, cfg, mid, size)
	var wireLeft, wireRight Partial
	if err := json.Unmarshal(partialJSON(t, left), &wireLeft); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(partialJSON(t, right), &wireRight); err != nil {
		t.Fatal(err)
	}
	if err := wireLeft.Merge(&wireRight); err != nil {
		t.Fatal(err)
	}
	if got, want := partialJSON(t, &wireLeft), partialJSON(t, direct); !bytes.Equal(got, want) {
		t.Fatalf("wire merge diverged\ngot  %s\nwant %s", got, want)
	}
}

// TestShardedMergeReproducesRun splits the space into random shard
// counts, merges in range order, and compares the rendered Result to
// the single-process Run (minus the timing fields).
func TestShardedMergeReproducesRun(t *testing.T) {
	set, sp := testSet(t)
	size := sp.Size()
	cfg := Config{TopK: 5, ChunkSize: 8, Workers: 2}
	want, err := Run(context.Background(), sp, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	for _, nshards := range []int{1, 2, 3, 7, size} {
		cuts := append([]int{0, size}, rng.SampleWithoutReplacement(size-1, nshards-1)...)
		for i := range cuts[2:] {
			cuts[2+i]++ // sample is over [0,size-1); interior cuts live in [1,size)
		}
		sort.Ints(cuts)
		var acc *Partial
		for i := 0; i+1 < len(cuts); i++ {
			p := runPartialRange(t, cfg, cuts[i], cuts[i+1])
			if acc == nil {
				acc = p
				continue
			}
			if err := acc.Merge(p); err != nil {
				t.Fatalf("nshards=%d: %v", nshards, err)
			}
		}
		sameReduction(t, "sharded vs Run", want, acc.Result())
	}
}

// TestPartialMergeValidation rejects non-mergeable partials with
// errors naming the disagreement.
func TestPartialMergeValidation(t *testing.T) {
	cfg := Config{TopK: 4, ChunkSize: 16}
	a := runPartialRange(t, cfg, 0, 20)
	b := runPartialRange(t, cfg, 20, 40)
	gap := runPartialRange(t, cfg, 30, 40)
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil partial merged")
	}
	if err := a.Merge(gap); err == nil || !strings.Contains(err.Error(), "not adjacent") {
		t.Fatalf("gap merge err = %v", err)
	}
	drifted := runPartialRange(t, cfg, 20, 40)
	drifted.Space = "other"
	if err := a.Merge(drifted); err == nil || !strings.Contains(err.Error(), "spaces") {
		t.Fatalf("space mismatch err = %v", err)
	}
	otherK := runPartialRange(t, Config{TopK: 9, ChunkSize: 16}, 20, 40)
	if err := a.Merge(otherK); err == nil || !strings.Contains(err.Error(), "leaderboard size") {
		t.Fatalf("k mismatch err = %v", err)
	}
	renamed := runPartialRange(t, cfg, 20, 40)
	renamed.Metrics[0].Name = "impostor"
	if err := a.Merge(renamed); err == nil || !strings.Contains(err.Error(), "different metrics") {
		t.Fatalf("metric mismatch err = %v", err)
	}
	// The happy path still works after all those rejections left a
	// untouched.
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Start != 0 || a.End != 40 {
		t.Fatalf("merged range [%d,%d), want [0,40)", a.Start, a.End)
	}
}

// TestConfigRangeValidation: malformed ranges fail with errors naming
// the bad field instead of silently clamping.
func TestConfigRangeValidation(t *testing.T) {
	set, sp := testSet(t)
	size := sp.Size()
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Start: -1}, "Config.Start -1 is negative"},
		{Config{Start: size + 5}, "exceeds the space's"},
		{Config{End: -3}, "Config.End -3 is negative"},
		{Config{End: size + 1}, "exceeds the space's"},
		{Config{Start: 10, End: 5}, "Config.End 5 is before Config.Start 10"},
		{Config{Start: 7, End: 7}, "range [7,7) is empty"},
	}
	for _, tc := range cases {
		_, err := RunPartial(context.Background(), sp, set, tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("cfg %+v: err = %v, want %q", tc.cfg, err, tc.want)
		}
		if _, err := Run(context.Background(), sp, set, tc.cfg); err == nil {
			t.Errorf("Run accepted cfg %+v", tc.cfg)
		}
	}
	// End == 0 selects the whole space; an explicit suffix range works.
	p, err := RunPartial(context.Background(), sp, set, Config{Start: size - 5, ChunkSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if p.Start != size-5 || p.End != size {
		t.Fatalf("suffix range [%d,%d), want [%d,%d)", p.Start, p.End, size-5, size)
	}
}
