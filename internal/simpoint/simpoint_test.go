package simpoint

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func TestBuildPlanBasics(t *testing.T) {
	tr := workload.Get("mesa", 20000)
	plan, err := BuildPlan(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plan.K < 1 || plan.K > 10 {
		t.Fatalf("k = %d outside [1,10]", plan.K)
	}
	if len(plan.Points) == 0 || len(plan.Points) > plan.K {
		t.Fatalf("%d points for k=%d", len(plan.Points), plan.K)
	}
	var total float64
	for _, p := range plan.Points {
		if p.Interval < 0 || p.Interval >= plan.NumIntervals {
			t.Fatalf("interval %d out of range", p.Interval)
		}
		if p.Weight <= 0 || p.Weight > 1 {
			t.Fatalf("weight %v out of range", p.Weight)
		}
		total += p.Weight
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("weights sum to %v", total)
	}
}

func TestPlanDeterministic(t *testing.T) {
	tr := workload.Get("equake", 20000)
	a, err := BuildPlan(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.K != b.K || len(a.Points) != len(b.Points) {
		t.Fatal("plans differ across identical runs")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("plan points differ across identical runs")
		}
	}
}

func TestSpeedupAndInstructionAccounting(t *testing.T) {
	tr := workload.Get("gzip", 20000)
	plan, err := BuildPlan(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plan.SpeedupFactor() <= 1 {
		t.Fatalf("speedup %v not above 1", plan.SpeedupFactor())
	}
	if got := plan.InstructionsPerEstimate(); got != len(plan.Points)*plan.IntervalLen {
		t.Fatalf("instruction accounting %d", got)
	}
	if plan.InstructionsPerEstimate() >= tr.Len() {
		t.Fatal("plan simulates at least as much as the full trace")
	}
}

func TestTinyTraceDegeneratePlan(t *testing.T) {
	tr := workload.Get("gzip", 300)
	plan, err := BuildPlan(tr, Config{IntervalLen: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) != 1 || plan.Points[0].Weight != 1 {
		t.Fatalf("tiny trace should yield one full-weight point, got %+v", plan.Points)
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	if _, err := BuildPlan(&workload.Trace{App: "x"}, DefaultConfig()); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestKMeansClustersSeparatedData(t *testing.T) {
	// Two well-separated blobs must be recovered exactly.
	rng := stats.NewRNG(5)
	var vecs [][]float64
	for i := 0; i < 40; i++ {
		base := 0.0
		if i >= 20 {
			base = 10
		}
		vecs = append(vecs, []float64{base + rng.Float64()*0.1, base - rng.Float64()*0.1})
	}
	assign, centers := kmeans(vecs, 2, 7)
	if len(centers) != 2 {
		t.Fatal("wrong center count")
	}
	for i := 1; i < 20; i++ {
		if assign[i] != assign[0] {
			t.Fatal("first blob split across clusters")
		}
	}
	for i := 21; i < 40; i++ {
		if assign[i] != assign[20] {
			t.Fatal("second blob split across clusters")
		}
	}
	if assign[0] == assign[20] {
		t.Fatal("blobs merged")
	}
}

func TestBICPrefersTrueK(t *testing.T) {
	// Three tight, separated blobs: BIC at k=3 should beat k=1.
	rng := stats.NewRNG(6)
	var vecs [][]float64
	for c := 0; c < 3; c++ {
		for i := 0; i < 15; i++ {
			vecs = append(vecs, []float64{float64(c*8) + rng.Float64()*0.2, rng.Float64() * 0.2})
		}
	}
	a1, c1 := kmeans(vecs, 1, 1)
	a3, c3 := kmeans(vecs, 3, 1)
	if bic(vecs, a3, c3) <= bic(vecs, a1, c1) {
		t.Fatal("BIC does not prefer the true clustering")
	}
}

func TestEstimateIPCWithinTolerance(t *testing.T) {
	// The SimPoint estimate must land within a modest band of the full
	// simulation — this is the noise level §5.3 feeds the ANN.
	tr := workload.Get("mesa", 20000)
	plan, err := BuildPlan(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testSimConfig()
	est, err := plan.EstimateIPC(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	full, err := fullIPC(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(est-full) / full * 100
	if relErr > 25 {
		t.Fatalf("SimPoint estimate off by %.1f%% (est %.3f vs full %.3f)", relErr, est, full)
	}
}

func TestProjectionDimensionality(t *testing.T) {
	tr := workload.Get("twolf", 8000)
	vecs := projectedBBVs(tr, 8, 1000, 15, 3)
	if len(vecs) != 8 {
		t.Fatalf("%d vectors", len(vecs))
	}
	for _, v := range vecs {
		if len(v) != 15 {
			t.Fatalf("projected dimension %d", len(v))
		}
	}
	// Vectors from different phases should not all be identical.
	same := true
	for i := 1; i < len(vecs); i++ {
		if sqDist(vecs[i], vecs[0]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("all interval BBVs identical — no phase signal")
	}
}
