// Package simpoint reimplements SimPoint (Sherwood et al. [23]), the
// partial-simulation technique the paper combines with ANN modeling in
// §5.3: program execution is split into fixed-length intervals, each
// interval is summarized by its basic-block vector (BBV), the BBVs are
// random-projected to a low dimension and clustered with k-means (model
// order chosen by BIC), and one representative interval per cluster —
// the one nearest the centroid — is simulated in detail. The
// application's overall IPC is then estimated from the representative
// IPCs combined with the cluster weights.
//
// The paper scales SimPoint's default 100M-instruction intervals down
// to 10M for MinneSPEC; this reproduction scales further to fit its
// synthetic traces (see Config.IntervalLen). Everything else follows
// the published algorithm.
package simpoint

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config controls the offline SimPoint analysis.
type Config struct {
	// IntervalLen is the number of instructions per interval. Zero
	// selects trace length / 40 (minimum 500), mirroring the paper's
	// practice of scaling interval length to workload length; shorter
	// intervals raise SimPoint's own error sharply because pipeline and
	// cache boundary effects stop amortizing.
	IntervalLen int
	// MaxK bounds the number of clusters searched (SimPoint's default
	// is 30; smaller traces need fewer phases).
	MaxK int
	// ProjectDim is the random-projection dimensionality (15 in
	// SimPoint).
	ProjectDim int
	// BICThreshold picks the smallest k whose normalized BIC score
	// reaches this fraction of the best (SimPoint's 0.9).
	BICThreshold float64
	// Seed drives projection and clustering.
	Seed uint64
}

// DefaultConfig returns the SimPoint settings used by the paper's
// combination experiments, adapted to synthetic trace lengths.
func DefaultConfig() Config {
	return Config{
		MaxK:         10,
		ProjectDim:   15,
		BICThreshold: 0.9,
	}
}

// Point is one chosen simulation point.
type Point struct {
	Interval int     // interval index
	Weight   float64 // fraction of execution its cluster represents
}

// Plan is the result of SimPoint's offline phase for one application
// trace: which intervals to simulate and how to weight them.
type Plan struct {
	IntervalLen  int
	NumIntervals int
	K            int
	Points       []Point
}

// SpeedupFactor returns the reduction in detailed-simulation
// instructions the plan achieves: full-trace length over the summed
// length of the chosen intervals. This is the "8-62×" axis of the
// paper's Figure 5.7.
func (p *Plan) SpeedupFactor() float64 {
	if len(p.Points) == 0 {
		return 1
	}
	return float64(p.NumIntervals) / float64(len(p.Points))
}

// InstructionsPerEstimate returns the detailed instructions simulated
// per design-point evaluation under this plan.
func (p *Plan) InstructionsPerEstimate() int {
	return len(p.Points) * p.IntervalLen
}

// BuildPlan runs the offline analysis: BBV profiling, projection,
// clustering with BIC model selection, and representative choice.
func BuildPlan(tr *workload.Trace, cfg Config) (*Plan, error) {
	if tr.Len() == 0 {
		return nil, fmt.Errorf("simpoint: empty trace")
	}
	il := cfg.IntervalLen
	if il == 0 {
		il = tr.Len() / 40
		if il < 500 {
			il = 500
		}
	}
	if il > tr.Len() {
		il = tr.Len()
	}
	n := tr.Len() / il
	if n < 2 {
		return &Plan{IntervalLen: il, NumIntervals: 1, K: 1, Points: []Point{{Interval: 0, Weight: 1}}}, nil
	}
	maxK := cfg.MaxK
	if maxK <= 0 {
		maxK = 10
	}
	if maxK > n {
		maxK = n
	}
	dim := cfg.ProjectDim
	if dim <= 0 {
		dim = 15
	}
	thresh := cfg.BICThreshold
	if thresh <= 0 || thresh > 1 {
		thresh = 0.9
	}

	vecs := projectedBBVs(tr, n, il, dim, cfg.Seed)

	// Search k = 1..maxK, score with BIC, keep every clustering.
	type candidate struct {
		k       int
		bic     float64
		assign  []int
		centers [][]float64
	}
	cands := make([]candidate, 0, maxK)
	for k := 1; k <= maxK; k++ {
		assign, centers := kmeans(vecs, k, cfg.Seed+uint64(k))
		cands = append(cands, candidate{k: k, bic: bic(vecs, assign, centers), assign: assign, centers: centers})
	}
	lo, hi := cands[0].bic, cands[0].bic
	for _, c := range cands[1:] {
		lo = math.Min(lo, c.bic)
		hi = math.Max(hi, c.bic)
	}
	chosen := cands[len(cands)-1]
	for _, c := range cands {
		score := 1.0
		if hi > lo {
			score = (c.bic - lo) / (hi - lo)
		}
		if score >= thresh {
			chosen = c
			break
		}
	}

	// Representatives: the interval nearest each cluster centroid.
	plan := &Plan{IntervalLen: il, NumIntervals: n, K: chosen.k}
	counts := make([]int, chosen.k)
	for _, a := range chosen.assign {
		counts[a]++
	}
	for c := 0; c < chosen.k; c++ {
		if counts[c] == 0 {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for i, a := range chosen.assign {
			if a != c {
				continue
			}
			d := sqDist(vecs[i], chosen.centers[c])
			if d < bestD {
				best, bestD = i, d
			}
		}
		plan.Points = append(plan.Points, Point{
			Interval: best,
			Weight:   float64(counts[c]) / float64(n),
		})
	}
	sort.Slice(plan.Points, func(i, j int) bool { return plan.Points[i].Interval < plan.Points[j].Interval })
	return plan, nil
}

// EstimateIPC simulates only the plan's representative intervals under
// cfg and combines them into a whole-run IPC estimate: weighted CPI
// averaging, which is how SimPoint composes per-interval statistics.
func (p *Plan) EstimateIPC(cfg sim.Config, tr *workload.Trace) (float64, error) {
	var cpi float64
	for _, pt := range p.Points {
		lo := pt.Interval * p.IntervalLen
		hi := lo + p.IntervalLen
		if hi > tr.Len() {
			hi = tr.Len()
		}
		r, err := sim.RunWindow(cfg, tr, lo, hi)
		if err != nil {
			return 0, err
		}
		if r.IPC <= 0 {
			return 0, fmt.Errorf("simpoint: interval %d produced non-positive IPC", pt.Interval)
		}
		cpi += pt.Weight / r.IPC
	}
	if cpi <= 0 {
		return 0, fmt.Errorf("simpoint: no intervals contributed")
	}
	return 1 / cpi, nil
}

// projectedBBVs builds the per-interval basic-block vectors and random-
// projects them to dim dimensions (Basic Block Distribution Analysis).
func projectedBBVs(tr *workload.Trace, n, il, dim int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed ^ 0x51A4B0)
	// Random projection matrix, blocks × dim, entries uniform [-1, 1].
	proj := make([][]float64, tr.NumBlocks)
	for b := range proj {
		row := make([]float64, dim)
		for d := range row {
			row[d] = rng.Range(-1, 1)
		}
		proj[b] = row
	}
	vecs := make([][]float64, n)
	bbv := make([]float64, tr.NumBlocks)
	for i := 0; i < n; i++ {
		for b := range bbv {
			bbv[b] = 0
		}
		lo, hi := i*il, (i+1)*il
		for j := lo; j < hi; j++ {
			bbv[tr.Insts[j].Block]++
		}
		// Normalize to a distribution so interval length cancels.
		v := make([]float64, dim)
		for b, c := range bbv {
			if c == 0 {
				continue
			}
			w := c / float64(il)
			row := proj[b]
			for d := range v {
				v[d] += w * row[d]
			}
		}
		vecs[i] = v
	}
	return vecs
}

// kmeans runs Lloyd's algorithm with k-means++ seeding; deterministic
// for a given seed.
func kmeans(vecs [][]float64, k int, seed uint64) (assign []int, centers [][]float64) {
	n, dim := len(vecs), len(vecs[0])
	rng := stats.NewRNG(seed ^ 0x6B3A)
	centers = make([][]float64, k)

	// k-means++ seeding.
	first := rng.Intn(n)
	centers[0] = append([]float64(nil), vecs[first]...)
	d2 := make([]float64, n)
	for c := 1; c < k; c++ {
		var total float64
		for i, v := range vecs {
			best := math.Inf(1)
			for _, ctr := range centers[:c] {
				if d := sqDist(v, ctr); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			x := rng.Float64() * total
			for i, d := range d2 {
				if x < d {
					pick = i
					break
				}
				x -= d
			}
		}
		centers[c] = append([]float64(nil), vecs[pick]...)
	}

	assign = make([]int, n)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := sqDist(v, ctr); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, dim)
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for d := range v {
				next[c][d] += v[d]
			}
		}
		for c := range next {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(next[c], vecs[rng.Intn(n)])
				continue
			}
			for d := range next[c] {
				next[c][d] /= float64(counts[c])
			}
		}
		centers = next
	}
	return assign, centers
}

// bic scores a clustering with the Bayesian Information Criterion using
// the spherical-Gaussian likelihood of Pelleg & Moore (the formulation
// SimPoint uses for model selection).
func bic(vecs [][]float64, assign []int, centers [][]float64) float64 {
	n := len(vecs)
	k := len(centers)
	d := float64(len(vecs[0]))
	var rss float64
	counts := make([]int, k)
	for i, v := range vecs {
		counts[assign[i]]++
		rss += sqDist(v, centers[assign[i]])
	}
	if n <= k {
		return math.Inf(-1)
	}
	sigma2 := rss / (float64(n-k) * d)
	if sigma2 < 1e-12 {
		sigma2 = 1e-12
	}
	var loglik float64
	for c := 0; c < k; c++ {
		r := float64(counts[c])
		if r == 0 {
			continue
		}
		loglik += r*math.Log(r/float64(n)) -
			r*d/2*math.Log(2*math.Pi*sigma2) -
			(r-1)*d/2
	}
	params := float64(k) * (d + 1)
	return loglik - params/2*math.Log(float64(n))
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
