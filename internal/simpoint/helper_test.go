package simpoint

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// testSimConfig returns the memory-study baseline machine for tests.
func testSimConfig() sim.Config {
	return sim.Config{
		FreqGHz: 4, Width: 4, MaxBranches: 16,
		IntALUs: 4, FPUs: 2, LoadPorts: 2, StorePorts: 2,
		ROBSize: 128, IntRegs: 96, FPRegs: 96, LSQLoads: 48, LSQStores: 48,
		BPredEntries: 2048, BTBSets: 2048, BTBAssoc: 2,
		L1ISizeKB: 32, L1IBlock: 32, L1IAssoc: 2,
		L1DSizeKB: 32, L1DBlock: 32, L1DAssoc: 2, L1DWrite: sim.WriteBack,
		L2SizeKB: 1024, L2Block: 64, L2Assoc: 8,
		L2BusBytes: 32, FSBMHz: 800, SDRAMLatNS: 100,
	}
}

// fullIPC runs the complete trace in detail.
func fullIPC(cfg sim.Config, tr *workload.Trace) (float64, error) {
	r, err := sim.Run(cfg, tr)
	if err != nil {
		return 0, err
	}
	return r.IPC, nil
}
