package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/stats"
	"repro/internal/studies"
)

// CrossAppResult compares, for one application, a single cross-
// application model (application identity as a one-hot input, trained
// on all applications' samples pooled) against a per-application model
// trained on the same per-application budget — the Chapter 7
// "cross-application predictive modeling" extension.
type CrossAppResult struct {
	App      string
	SoloErr  float64 // per-app model, perApp training samples
	CrossErr float64 // shared model, perApp samples per app (8× data, 1 model)
}

// CrossApp runs the cross-application experiment on one study.
func CrossApp(study *studies.Study, apps []string, perApp, evalN, traceLen int, model core.ModelConfig, seed uint64) ([]CrossAppResult, error) {
	if model.Folds == 0 {
		model = core.DefaultModelConfig()
	}
	enc := encoding.NewEncoder(study.Space)
	width := enc.Width() + len(apps) // one-hot application identity

	rng := stats.NewRNG(seed ^ 0xCA99)
	type appData struct {
		trainIdx, evalIdx []int
		trainIPC, evalIPC []float64
	}
	data := make([]appData, len(apps))
	for a, app := range apps {
		oracle := NewSimOracle(study, app, traceLen, IPCOnly)
		all := study.Space.Sample(rng.Split(), perApp+evalN)
		d := appData{trainIdx: all[:perApp], evalIdx: all[perApp:]}
		var err error
		if d.trainIPC, err = oracle.IPCs(d.trainIdx); err != nil {
			return nil, err
		}
		if d.evalIPC, err = oracle.IPCs(d.evalIdx); err != nil {
			return nil, err
		}
		data[a] = d
	}

	encode := func(appID, idx int) []float64 {
		x := make([]float64, width)
		enc.EncodeIndex(idx, x[:enc.Width()])
		x[enc.Width()+appID] = 1
		return x
	}

	// One pooled model over all applications.
	var px [][]float64
	var py [][]float64
	for a := range apps {
		for i, idx := range data[a].trainIdx {
			px = append(px, encode(a, idx))
			py = append(py, []float64{data[a].trainIPC[i]})
		}
	}
	pooledCfg := model
	pooledCfg.Seed = seed
	pooled, err := core.TrainEnsemble(px, py, pooledCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: cross-app pooled model: %w", err)
	}

	results := make([]CrossAppResult, len(apps))
	for a, app := range apps {
		// Per-application model on the same per-app budget.
		sx := make([][]float64, perApp)
		sy := make([][]float64, perApp)
		for i, idx := range data[a].trainIdx {
			sx[i] = enc.EncodeIndex(idx, nil)
			sy[i] = []float64{data[a].trainIPC[i]}
		}
		soloCfg := model
		soloCfg.Seed = seed + uint64(a) + 1
		solo, err := core.TrainEnsemble(sx, sy, soloCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: cross-app solo model (%s): %w", app, err)
		}

		// Score the whole evaluation set through both models with one
		// batched prediction each (the pooled model's inputs carry the
		// app one-hot, so its matrix is built by hand).
		nEval := len(data[a].evalIdx)
		crossX := make([]float64, nEval*width)
		for i, idx := range data[a].evalIdx {
			row := crossX[i*width : (i+1)*width]
			enc.EncodeIndex(idx, row[:enc.Width()])
			row[enc.Width()+a] = 1
		}
		soloPred := solo.PredictIndices(enc, data[a].evalIdx)
		crossPred := pooled.PredictBatch(crossX, nEval, nil)
		var soloErrs, crossErrs []float64
		for i := range data[a].evalIdx {
			truth := data[a].evalIPC[i]
			if truth == 0 {
				continue
			}
			soloErrs = append(soloErrs, abs(soloPred[i]-truth)/truth*100)
			crossErrs = append(crossErrs, abs(crossPred[i]-truth)/truth*100)
		}
		results[a] = CrossAppResult{
			App:      app,
			SoloErr:  stats.Mean(soloErrs),
			CrossErr: stats.Mean(crossErrs),
		}
	}
	return results, nil
}
