package experiments

import (
	"fmt"

	"repro/internal/pb"
	"repro/internal/studies"
)

// PBScreen validates a study's choice of variable parameters the way
// §4 does: a Plackett–Burman design with foldover over the study's
// axes, each axis toggling between its lowest and highest setting, with
// IPC as the response. The returned effects rank the parameters by
// importance for the given application.
func PBScreen(study *studies.Study, app string, traceLen int) ([]pb.Effect, error) {
	sp := study.Space
	n := sp.NumParams()
	design, err := pb.ForParams(n)
	if err != nil {
		return nil, err
	}
	oracle := NewSimOracle(study, app, traceLen, IPCOnly)

	// Translate each design row into a design point: -1 picks the
	// axis's first setting, +1 its last.
	indices := make([]int, len(design.Rows))
	for r, row := range design.Rows {
		choices := make([]int, n)
		for c := 0; c < n; c++ {
			if row[c] > 0 {
				choices[c] = sp.Params[c].Card() - 1
			}
		}
		indices[r] = sp.Index(choices)
	}
	responses, err := oracle.IPCs(indices)
	if err != nil {
		return nil, fmt.Errorf("experiments: PB screen: %w", err)
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = sp.Params[i].Name
	}
	return design.Effects(responses, names)
}
