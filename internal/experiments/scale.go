package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Scale bundles the budget knobs of a full reproduction run. The paper
// itself ran 300K full simulations on a cluster; these presets trade
// evaluation-set size, sweep granularity and trace length against
// wall-clock time while preserving every series' shape.
type Scale struct {
	Name       string
	TraceLen   int // instructions per simulation
	CurveStart int // first training-set size
	CurveStep  int // training-set increment (paper: 50)
	CurveEnd   int // largest training-set size (paper: 2000)
	EvalPoints int // held-out evaluation sample (0 = entire remaining space)
	TimeSizes  []int
}

// Quick is the smoke-test preset: every experiment completes in
// minutes and every series keeps its shape.
func Quick() Scale {
	return Scale{
		Name:       "quick",
		TraceLen:   30000,
		CurveStart: 100,
		CurveStep:  100,
		CurveEnd:   500,
		EvalPoints: 500,
		TimeSizes:  []int{100, 200, 400, 600},
	}
}

// Standard is the default preset: paper-style 50-simulation batches up
// to ~4% of the space, trace length 50K.
func Standard() Scale {
	return Scale{
		Name:       "standard",
		TraceLen:   50000,
		CurveStart: 50,
		CurveStep:  50,
		CurveEnd:   900,
		EvalPoints: 1200,
		TimeSizes:  []int{200, 400, 800, 1200, 1600, 2000},
	}
}

// Full is the paper-faithful preset: batches of 50 to 2000 simulations
// (≈9% of each space) with true error measured over the entire
// remaining design space, as the paper does. Budget accordingly.
func Full() Scale {
	return Scale{
		Name:       "full",
		TraceLen:   50000,
		CurveStart: 50,
		CurveStep:  50,
		CurveEnd:   2000,
		EvalPoints: 0,
		TimeSizes:  []int{200, 400, 800, 1200, 1600, 2000},
	}
}

// ByName resolves a preset name.
func ByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick(), nil
	case "standard":
		return Standard(), nil
	case "full":
		return Full(), nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (quick|standard|full)", name)
}

// CurveConfig materializes the preset into a learning-curve config.
func (s Scale) CurveConfig(seed uint64) CurveConfig {
	return CurveConfig{
		TraceLen:   s.TraceLen,
		Start:      s.CurveStart,
		Step:       s.CurveStep,
		End:        s.CurveEnd,
		EvalPoints: s.EvalPoints,
		Model:      core.DefaultModelConfig(),
		Seed:       seed,
	}
}

// SizesUpTo returns the preset's sweep sizes capped at fraction f of a
// space of the given size (used by Table 5.1-style targeted runs).
func (s Scale) SizesUpTo(spaceSize int, f float64) []int {
	var out []int
	limit := int(math.Round(f * float64(spaceSize)))
	for v := s.CurveStart; v <= limit; v += s.CurveStep {
		out = append(out, v)
	}
	if len(out) == 0 || out[len(out)-1] != limit {
		out = append(out, limit)
	}
	return out
}

// DefaultModel returns the ensemble configuration the experiments use;
// a convenience re-export for command-line tools.
func DefaultModel() core.ModelConfig { return core.DefaultModelConfig() }
