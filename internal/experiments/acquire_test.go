package experiments

import (
	"testing"

	"repro/internal/studies"
)

// acquireTestConfig is the smoke-scale acquisition comparison the CI
// gate runs: the memory-system study at tiny budgets.
func acquireTestConfig() CurveConfig {
	cfg := tinyCurveConfig()
	// One random seed round, then fine-grained acquisition rounds.
	cfg.Start, cfg.Step, cfg.End = 30, 15, 120
	return cfg
}

// TestAcquisitionLearningGate is the issue's acceptance gate: on the
// memory-system study, hypervolume-improvement acquisition must reach
// the variance-only baseline's final hypervolume using at most 80% of
// its simulation budget. Both arms share seeds and the deterministic
// simulator, so the comparison is a pure function of this
// configuration — the same on every machine.
func TestAcquisitionLearningGate(t *testing.T) {
	st := studies.MemorySystem()
	cfg := acquireTestConfig()
	curves, err := AcquisitionLearning(st, "mcf", cfg, []string{"hvi:max=out0:min=out1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 || curves[0].Name != "variance" || curves[1].Name != "hvi:max=out0:min=out1" {
		t.Fatalf("unexpected arms %v", []string{curves[0].Name, curves[1].Name})
	}
	variance, hvi := curves[0], curves[1]
	for _, c := range curves {
		if len(c.Points) != 7 {
			t.Fatalf("arm %s recorded %d budgets, want 7", c.Name, len(c.Points))
		}
		for i, p := range c.Points {
			if want := cfg.Start + cfg.Step*i; p.Samples != want {
				t.Fatalf("arm %s point %d at %d samples, want %d", c.Name, i, p.Samples, want)
			}
			if p.Hypervolume < 0 {
				t.Fatalf("arm %s negative hypervolume %v", c.Name, p.Hypervolume)
			}
			if i > 0 && p.Hypervolume < c.Points[i-1].Hypervolume {
				t.Fatalf("arm %s hypervolume shrank from %v to %v — the simulated set only grows",
					c.Name, c.Points[i-1].Hypervolume, p.Hypervolume)
			}
		}
	}
	// The arms share their first (random) round bit-identically.
	if variance.Points[0].Hypervolume != hvi.Points[0].Hypervolume {
		t.Fatalf("first-round hypervolume differs (%v vs %v) despite identical random batches",
			variance.Points[0].Hypervolume, hvi.Points[0].Hypervolume)
	}
	final := variance.Points[len(variance.Points)-1].Hypervolume
	budget := BudgetToReach(hvi.Points, final)
	if budget < 0 {
		t.Fatalf("hvi never reached the variance-only final hypervolume %v within %d simulations", final, cfg.End)
	}
	if float64(budget) > 0.8*float64(cfg.End) {
		t.Fatalf("hvi needed %d of %d simulations (> 80%%) to match the variance-only final hypervolume %v",
			budget, cfg.End, final)
	}
	t.Logf("hvi matched the variance-only final hypervolume %.4f at %d/%d simulations", final, budget, cfg.End)
}

func TestAcquisitionLearningValidation(t *testing.T) {
	st := studies.MemorySystem()
	cfg := acquireTestConfig()
	if _, err := AcquisitionLearning(st, "mcf", cfg, nil); err == nil {
		t.Fatal("no specs accepted")
	}
	if _, err := AcquisitionLearning(st, "mcf", cfg, []string{"entropy"}); err == nil {
		t.Fatal("bad spec accepted")
	}
	bad := cfg
	bad.Step = 0
	if _, err := AcquisitionLearning(st, "mcf", bad, []string{"variance"}); err == nil {
		t.Fatal("invalid sweep accepted")
	}
}

func TestBudgetToReach(t *testing.T) {
	pts := []AcquirePoint{{Samples: 30, Hypervolume: 0.2}, {Samples: 60, Hypervolume: 0.5}, {Samples: 90, Hypervolume: 0.5}}
	if got := BudgetToReach(pts, 0.5); got != 60 {
		t.Fatalf("BudgetToReach = %d, want 60", got)
	}
	if got := BudgetToReach(pts, 0.19); got != 30 {
		t.Fatalf("BudgetToReach = %d, want 30", got)
	}
	if got := BudgetToReach(pts, 0.6); got != -1 {
		t.Fatalf("BudgetToReach = %d, want -1", got)
	}
	if got := BudgetToReach(nil, 0); got != -1 {
		t.Fatalf("BudgetToReach(nil) = %d, want -1", got)
	}
}
