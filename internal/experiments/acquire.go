package experiments

import (
	"context"
	"fmt"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/space"
	"repro/internal/studies"
)

// AcquirePoint is one budget step of the acquisition comparison: the
// true hypervolume of the designs one arm has actually simulated so
// far — simulator-measured IPC (maximized) against the design's
// hardware budget (minimized), normalized over the union of every
// arm's designs so the numbers are comparable across arms within a
// run.
type AcquirePoint struct {
	Samples     int
	Hypervolume float64
}

// AcquireCurve is hypervolume-vs-budget for one selection policy:
// "variance" for the Chapter 7 active-learning baseline, or the
// canonical acquisition spec for a Pareto-aware arm.
type AcquireCurve struct {
	Name   string
	Points []AcquirePoint
}

// AcquisitionLearning compares Pareto-aware acquisition against the
// variance-only baseline on one (study, app) pair, on the classic
// performance-vs-area trade-off: out0 is simulated IPC (maximized) and
// out1 is the design's normalized hardware budget (minimized; see
// DesignCost). Every arm explores under the same seed and per-round
// budgets; they differ only in how each round's batch is selected.
// After every round an arm's quality is the hypervolume its simulated
// designs cover in that plane — measured with simulator truth and the
// design's actual cost, not model predictions, so a curve is a pure
// function of (study, app, cfg, specs) and identical on any machine.
//
// cfg follows learning-curve conventions: Start/Step/End are the
// cumulative budgets recorded, Seed is shared across arms, and
// Checkpoint (when set) makes each arm durable under a per-arm suffix.
// EvalPoints and Noisy are not used — truth comes from the training
// simulations themselves.
func AcquisitionLearning(study *studies.Study, app string, cfg CurveConfig, specs []string) ([]AcquireCurve, error) {
	if cfg.Start <= 0 || cfg.Step <= 0 || cfg.End < cfg.Start {
		return nil, fmt.Errorf("experiments: invalid sweep %d..%d step %d", cfg.Start, cfg.End, cfg.Step)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("experiments: no acquisition specs to compare")
	}
	if cfg.Model.Folds == 0 {
		cfg.Model = core.DefaultModelConfig()
	}
	if cfg.TraceLen == 0 {
		cfg.TraceLen = 50000
	}

	type arm struct {
		name string
		acq  *core.AcquireConfig
	}
	arms := []arm{{name: "variance"}} // baseline: ByVariance, no acquisition
	for _, spec := range specs {
		acq, err := core.ParseAcquireSpec(spec)
		if err != nil {
			return nil, err
		}
		arms = append(arms, arm{name: acq.Spec(), acq: acq})
	}

	ctx := context.Background()
	curves := make([]AcquireCurve, len(arms))
	// raw[i] holds arm i's simulated (IPC, hardware budget) rows in
	// evaluation order; cuts[i] the cumulative sample count after each
	// recorded budget.
	raw := make([][][2]float64, len(arms))
	cuts := make([][]int, len(arms))
	for i, a := range arms {
		exCfg := core.ExploreConfig{
			Model:      cfg.Model,
			BatchSize:  cfg.Start,
			MaxSamples: cfg.End,
			Strategy:   core.SelectVariance,
			Seed:       cfg.Seed,
			Acquire:    a.acq,
			// Every arm scores the same generously-sized candidate draw;
			// Pareto-aware arms live or die by whether frontier-extending
			// candidates appear in the pool at all.
			CandidatePool: candidatePool(study, cfg),
		}
		pipe := pipelineFor(study, app, cfg, fmt.Sprintf("acquire-arm%d", i))
		oracle := &costOracle{sim: NewSimOracle(study, app, cfg.TraceLen, IPCOnly), sp: study.Space}
		drv, err := curveDriver(study, oracle, exCfg, pipe)
		if err != nil {
			return nil, err
		}
		for size := cfg.Start; size <= cfg.End; size += cfg.Step {
			if have := len(drv.Samples()); size > have {
				if err := drv.Step(ctx, size-have); err != nil {
					return nil, err
				}
			}
			cuts[i] = append(cuts[i], len(drv.Samples()))
		}
		for _, row := range drv.Checkpoint().Targets {
			raw[i] = append(raw[i], [2]float64{row[0], row[1]})
		}
		curves[i] = AcquireCurve{Name: a.name}
	}

	// Normalize both axes over the union of every arm's designs, so
	// hypervolumes share one [0,1]² minimize-space box and the 1.1
	// reference point acquisition itself uses.
	lo, hi := [2]float64{}, [2]float64{}
	first := true
	for _, rows := range raw {
		for _, r := range rows {
			for a := 0; a < 2; a++ {
				if first || r[a] < lo[a] {
					lo[a] = r[a]
				}
				if first || r[a] > hi[a] {
					hi[a] = r[a]
				}
			}
			first = false
		}
	}
	norm := func(r [2]float64) []float64 {
		z := make([]float64, 2)
		if span := hi[0] - lo[0]; span > 0 {
			z[0] = (hi[0] - r[0]) / span // IPC: maximize → minimize distance from best
		}
		if span := hi[1] - lo[1]; span > 0 {
			z[1] = (r[1] - lo[1]) / span // hardware budget: minimize as-is
		}
		return z
	}
	ref := []float64{1.1, 1.1}
	for i := range arms {
		pts := make([][]float64, 0, len(raw[i]))
		prev := 0
		for _, cut := range cuts[i] {
			for _, r := range raw[i][prev:cut] {
				pts = append(pts, norm(r))
			}
			prev = cut
			curves[i].Points = append(curves[i].Points, AcquirePoint{
				Samples:     cut,
				Hypervolume: core.Hypervolume(pts, ref),
			})
		}
	}
	return curves, nil
}

// candidatePool sizes the per-round scoring draw: a fixed fraction of
// the design space, bounded so tiny smoke configs and the full studies
// both score a meaningful slice without sweeping everything.
func candidatePool(study *studies.Study, cfg CurveConfig) int {
	pool := study.Space.Size() / 16
	if pool > 2000 {
		pool = 2000
	}
	if floor := 20 * cfg.Step; pool < floor {
		pool = floor
	}
	return pool
}

// pipelineFor builds the per-arm pipeline for an acquisition study,
// suffixing the shared checkpoint path so arms stay durable without
// "resuming" each other.
func pipelineFor(study *studies.Study, app string, cfg CurveConfig, arm string) explore.Pipeline {
	pipe := explore.Pipeline{
		Workers: cfg.Workers,
		Meta: bundle.Meta{
			Study:    study.Name,
			App:      app,
			Metric:   "IPC,HWBudget",
			TraceLen: cfg.TraceLen,
			Note:     "oracle=full",
		},
	}
	if cfg.Checkpoint != "" {
		pipe.CheckpointPath = cfg.Checkpoint + "." + arm
	}
	return pipe
}

// DesignCost is the normalized hardware budget of one design point:
// the mean position of every sizing knob (cardinal and continuous
// parameters) within its value list — 0 for the minimal configuration,
// 1 for the maximal one. Nominal parameters (policies, on/off
// features) carry no monotone notion of "bigger hardware" and are
// excluded. A pure function of the configuration, so the cost axis
// needs no simulation and no machine-dependent measurement.
func DesignCost(sp *space.Space, idx int) float64 {
	c := sp.Choices(idx)
	sum, n := 0.0, 0
	for i := range sp.Params {
		p := &sp.Params[i]
		if p.Kind == space.Nominal || p.Card() < 2 {
			continue
		}
		sum += float64(c[i]) / float64(p.Card()-1)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// costOracle reports [IPC, hardware budget] per design point: the
// simulator's IPC joined with DesignCost. The performance-vs-area
// frontier has a genuine trade-off on every study — the IPC-optimal
// configuration is never the cheapest — unlike pairs of simulator
// statistics, which the biggest caches tend to optimize together.
type costOracle struct {
	sim *SimOracle
	sp  *space.Space
}

func (o *costOracle) Evaluate(indices []int) ([][]float64, error) {
	rows, err := o.sim.Evaluate(indices)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(indices))
	for i, idx := range indices {
		out[i] = []float64{rows[i][0], DesignCost(o.sp, idx)}
	}
	return out, nil
}

// BudgetToReach returns the smallest recorded budget at which a curve's
// hypervolume meets or exceeds target, or -1 if it never does.
func BudgetToReach(points []AcquirePoint, target float64) int {
	for _, p := range points {
		if p.Hypervolume >= target {
			return p.Samples
		}
	}
	return -1
}
