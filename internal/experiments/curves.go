package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/simpoint"
	"repro/internal/stats"
	"repro/internal/studies"
)

// CurvePoint is one point of a learning curve: the model trained on
// Samples simulations, with its true error (measured against held-out
// simulations) and the cross-validation estimate produced without any
// extra simulation. These are the series of Figures 5.1–5.5 and the
// cells of Table 5.1.
type CurvePoint struct {
	Samples   int
	Fraction  float64 // Samples / |design space|
	TrueMean  float64 // measured mean percentage error on held-out points
	TrueSD    float64 // measured SD of percentage error
	EstMean   float64 // cross-validation estimate of the mean
	EstSD     float64 // cross-validation estimate of the SD
	TrainTime time.Duration
}

// CurveConfig controls a learning-curve run.
type CurveConfig struct {
	// TraceLen is the dynamic instruction count of the application
	// trace.
	TraceLen int
	// Start, Step, End define the training-set sizes swept: Start,
	// Start+Step, …, up to End inclusive. The paper uses 50..2000 in
	// steps of 50.
	Start, Step, End int
	// EvalPoints is the size of the held-out evaluation sample used to
	// measure true error. The paper evaluates on the entire remaining
	// space; a large random sample estimates the same quantity
	// unbiasedly (see DESIGN.md). Zero selects the full remaining
	// space, the paper-faithful (and very expensive) setting.
	EvalPoints int
	// Model configures the ensemble; zero value selects
	// core.DefaultModelConfig.
	Model core.ModelConfig
	// Noisy selects the SimPoint-estimated oracle for training data
	// (§5.3); true error is still measured against full simulation.
	Noisy bool
	// Strategy selects batch sampling (random in the paper; variance
	// for the active-learning extension).
	Strategy core.Selection
	Seed     uint64
}

// DefaultCurveConfig returns a paper-shaped sweep scaled to the given
// budget: Start/Step of 50 simulations like the paper, ending at end.
func DefaultCurveConfig(end int) CurveConfig {
	return CurveConfig{
		TraceLen:   50000,
		Start:      50,
		Step:       50,
		End:        end,
		EvalPoints: 1200,
		Model:      core.DefaultModelConfig(),
	}
}

// Curve runs one learning-curve experiment for (study, app): it samples
// an evaluation set, then grows the training set batch by batch,
// training an ensemble at every size and recording true and estimated
// error.
func Curve(study *studies.Study, app string, cfg CurveConfig) ([]CurvePoint, error) {
	if cfg.Start <= 0 || cfg.Step <= 0 || cfg.End < cfg.Start {
		return nil, fmt.Errorf("experiments: invalid sweep %d..%d step %d", cfg.Start, cfg.End, cfg.Step)
	}
	var sizes []int
	for s := cfg.Start; s <= cfg.End; s += cfg.Step {
		sizes = append(sizes, s)
	}
	return CurveAtSizes(study, app, cfg, sizes)
}

// CurveAtSizes runs the learning-curve experiment at an explicit list
// of cumulative training-set sizes (ascending). Table 5.1 uses this to
// hit the paper's ~1%, ~2% and ~4% sample fractions exactly.
func CurveAtSizes(study *studies.Study, app string, cfg CurveConfig, sizes []int) ([]CurvePoint, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("experiments: no training sizes requested")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			return nil, fmt.Errorf("experiments: training sizes must ascend")
		}
	}
	if cfg.Model.Folds == 0 {
		cfg.Model = core.DefaultModelConfig()
	}
	if cfg.TraceLen == 0 {
		cfg.TraceLen = 50000
	}
	maxSize := sizes[len(sizes)-1]

	fullOracle := NewSimOracle(study, app, cfg.TraceLen, IPCOnly)
	var trainOracle core.Oracle = fullOracle
	if cfg.Noisy {
		spo, err := NewSimPointOracle(study, app, cfg.TraceLen, simpoint.DefaultConfig())
		if err != nil {
			return nil, err
		}
		trainOracle = spo
	}

	// Held-out evaluation set: sampled first, excluded from training.
	rng := stats.NewRNG(cfg.Seed ^ 0xEA17)
	evalN := cfg.EvalPoints
	if evalN <= 0 || evalN > study.Space.Size()-maxSize {
		evalN = study.Space.Size() - maxSize
	}
	evalIdx := study.Space.Sample(rng, evalN)
	evalTruth, err := fullOracle.IPCs(evalIdx)
	if err != nil {
		return nil, err
	}

	exCfg := core.ExploreConfig{
		Model:      cfg.Model,
		BatchSize:  sizes[0],
		MaxSamples: maxSize,
		Strategy:   cfg.Strategy,
		Seed:       cfg.Seed,
		Exclude:    evalIdx,
	}
	ex, err := core.NewExplorer(study.Space, trainOracle, exCfg)
	if err != nil {
		return nil, err
	}

	var points []CurvePoint
	for _, size := range sizes {
		if err := ex.Grow(size - len(ex.Samples())); err != nil {
			return nil, err
		}
		if err := ex.TrainRound(); err != nil {
			return nil, err
		}
		steps := ex.Steps()
		last := steps[len(steps)-1]

		mean, sd := evaluateEnsemble(ex, evalIdx, evalTruth)
		points = append(points, CurvePoint{
			Samples:   size,
			Fraction:  float64(size) / float64(study.Space.Size()),
			TrueMean:  mean,
			TrueSD:    sd,
			EstMean:   last.Est.MeanErr,
			EstSD:     last.Est.SDErr,
			TrainTime: last.TrainTime,
		})
	}
	return points, nil
}

// evaluateEnsemble measures the explorer's current ensemble against a
// held-out truth set, returning mean and SD of percentage error. The
// whole evaluation set is scored in one batched prediction — under the
// full-space scale preset this is tens of thousands of points per
// round, the sweep the batched path exists for.
func evaluateEnsemble(ex *core.Explorer, evalIdx []int, evalTruth []float64) (mean, sd float64) {
	preds := ex.Ensemble().PredictIndices(ex.Encoder(), evalIdx)
	errs := make([]float64, 0, len(evalIdx))
	for i, truth := range evalTruth {
		if truth != 0 {
			errs = append(errs, abs(preds[i]-truth)/abs(truth)*100)
		}
	}
	return stats.MeanStd(errs)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
