package experiments

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/explore"
	"repro/internal/simpoint"
	"repro/internal/stats"
	"repro/internal/studies"
)

// CurvePoint is one point of a learning curve: the model trained on
// Samples simulations, with its true error (measured against held-out
// simulations) and the cross-validation estimate produced without any
// extra simulation. These are the series of Figures 5.1–5.5 and the
// cells of Table 5.1.
type CurvePoint struct {
	Samples   int
	Fraction  float64 // Samples / |design space|
	TrueMean  float64 // measured mean percentage error on held-out points
	TrueSD    float64 // measured SD of percentage error
	EstMean   float64 // cross-validation estimate of the mean
	EstSD     float64 // cross-validation estimate of the SD
	TrainTime time.Duration
}

// CurveConfig controls a learning-curve run.
type CurveConfig struct {
	// TraceLen is the dynamic instruction count of the application
	// trace.
	TraceLen int
	// Start, Step, End define the training-set sizes swept: Start,
	// Start+Step, …, up to End inclusive. The paper uses 50..2000 in
	// steps of 50.
	Start, Step, End int
	// EvalPoints is the size of the held-out evaluation sample used to
	// measure true error. The paper evaluates on the entire remaining
	// space; a large random sample estimates the same quantity
	// unbiasedly (see DESIGN.md). Zero selects the full remaining
	// space, the paper-faithful (and very expensive) setting.
	EvalPoints int
	// Model configures the ensemble; zero value selects
	// core.DefaultModelConfig.
	Model core.ModelConfig
	// Noisy selects the SimPoint-estimated oracle for training data
	// (§5.3); true error is still measured against full simulation.
	Noisy bool
	// Strategy selects batch sampling (random in the paper; variance
	// for the active-learning extension).
	Strategy core.Selection
	// Workers bounds the per-point oracle fan-out of each batch
	// (0 = all cores); results are identical for any setting.
	Workers int
	// Checkpoint, when non-empty, makes the study durable: a resumable
	// snapshot is written there after every round, and a rerun pointing
	// at an existing file picks up where the killed run stopped —
	// paying only ensemble retraining, never repeated simulation, for
	// the rounds already covered.
	Checkpoint string
	Seed       uint64
}

// DefaultCurveConfig returns a paper-shaped sweep scaled to the given
// budget: Start/Step of 50 simulations like the paper, ending at end.
func DefaultCurveConfig(end int) CurveConfig {
	return CurveConfig{
		TraceLen:   50000,
		Start:      50,
		Step:       50,
		End:        end,
		EvalPoints: 1200,
		Model:      core.DefaultModelConfig(),
	}
}

// Curve runs one learning-curve experiment for (study, app): it samples
// an evaluation set, then grows the training set batch by batch,
// training an ensemble at every size and recording true and estimated
// error.
func Curve(study *studies.Study, app string, cfg CurveConfig) ([]CurvePoint, error) {
	if cfg.Start <= 0 || cfg.Step <= 0 || cfg.End < cfg.Start {
		return nil, fmt.Errorf("experiments: invalid sweep %d..%d step %d", cfg.Start, cfg.End, cfg.Step)
	}
	var sizes []int
	for s := cfg.Start; s <= cfg.End; s += cfg.Step {
		sizes = append(sizes, s)
	}
	return CurveAtSizes(study, app, cfg, sizes)
}

// CurveAtSizes runs the learning-curve experiment at an explicit list
// of cumulative training-set sizes (ascending). Table 5.1 uses this to
// hit the paper's ~1%, ~2% and ~4% sample fractions exactly.
func CurveAtSizes(study *studies.Study, app string, cfg CurveConfig, sizes []int) ([]CurvePoint, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("experiments: no training sizes requested")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			return nil, fmt.Errorf("experiments: training sizes must ascend")
		}
	}
	if cfg.Model.Folds == 0 {
		cfg.Model = core.DefaultModelConfig()
	}
	if cfg.TraceLen == 0 {
		cfg.TraceLen = 50000
	}
	maxSize := sizes[len(sizes)-1]

	fullOracle := NewSimOracle(study, app, cfg.TraceLen, IPCOnly)
	var trainOracle core.Oracle = fullOracle
	if cfg.Noisy {
		spo, err := NewSimPointOracle(study, app, cfg.TraceLen, simpoint.DefaultConfig())
		if err != nil {
			return nil, err
		}
		trainOracle = spo
	}

	// Held-out evaluation set: sampled first, excluded from training.
	// The draw is deterministic in cfg.Seed, so a resumed study
	// reconstructs the identical set (its truths come from the
	// simulation cache or are re-simulated; training simulations — the
	// budgeted cost — are never repeated).
	rng := stats.NewRNG(cfg.Seed ^ 0xEA17)
	evalN := cfg.EvalPoints
	if evalN <= 0 || evalN > study.Space.Size()-maxSize {
		evalN = study.Space.Size() - maxSize
	}
	evalIdx := study.Space.Sample(rng, evalN)
	evalTruth, err := fullOracle.IPCs(evalIdx)
	if err != nil {
		return nil, err
	}

	exCfg := core.ExploreConfig{
		Model:      cfg.Model,
		BatchSize:  sizes[0],
		MaxSamples: maxSize,
		Strategy:   cfg.Strategy,
		Seed:       cfg.Seed,
		Exclude:    evalIdx,
	}
	pipe := explore.Pipeline{
		Workers:        cfg.Workers,
		CheckpointPath: cfg.Checkpoint,
		Meta: bundle.Meta{
			Study:    study.Name,
			App:      app,
			Metric:   "IPC",
			TraceLen: cfg.TraceLen,
			// Recorded so a resume can refuse a drifted oracle choice:
			// mixing SimPoint-estimated and fully-simulated targets in
			// one pool would corrupt the curve silently.
			Note: oracleNote(cfg.Noisy),
		},
	}
	drv, err := curveDriver(study, trainOracle, exCfg, pipe)
	if err != nil {
		return nil, err
	}

	ctx := context.Background()
	var points []CurvePoint
	for _, size := range sizes {
		var est core.Estimate
		var ens *core.Ensemble
		var trainTime time.Duration
		if have := len(drv.Samples()); size <= have {
			// A resumed study already simulated this prefix; retraining
			// it is deterministic (same data, same per-size seed), so
			// the rebuilt ensemble is the original, bit for bit.
			ens, trainTime, err = prefixEnsemble(drv, size)
			if err != nil {
				return nil, err
			}
			est = ens.Estimate()
		} else {
			if err := drv.Step(ctx, size-have); err != nil {
				return nil, err
			}
			ens = drv.Ensemble()
			est = ens.Estimate()
			// Quarantined points can leave the pool short of the
			// requested size; the point below is labeled with the
			// actual pool, and TrainTime only claimed when this round
			// really trained.
			if steps := drv.Steps(); len(steps) > 0 && steps[len(steps)-1].Samples == len(drv.Samples()) {
				trainTime = steps[len(steps)-1].TrainTime
			}
			size = len(drv.Samples())
		}

		mean, sd := evaluateEnsemble(ens, drv.Encoder(), evalIdx, evalTruth)
		points = append(points, CurvePoint{
			Samples:   size,
			Fraction:  float64(size) / float64(study.Space.Size()),
			TrueMean:  mean,
			TrueSD:    sd,
			EstMean:   est.MeanErr,
			EstSD:     est.SDErr,
			TrainTime: trainTime,
		})
	}
	return points, nil
}

// oracleNote names the training-oracle choice for checkpoint
// provenance.
func oracleNote(noisy bool) string {
	if noisy {
		return "oracle=simpoint"
	}
	return "oracle=full"
}

// curveDriver builds the exploration driver for a study, resuming from
// the configured checkpoint when one exists on disk. A checkpoint left
// behind by a *different* study configuration is refused rather than
// silently adopted: the resumed training pool was excluded against that
// run's evaluation set, so a drifted seed/app/study would leak training
// points into "held-out" truth (or reinterpret indices wholesale).
func curveDriver(study *studies.Study, oracle core.Oracle, exCfg core.ExploreConfig, pipe explore.Pipeline) (*explore.Driver, error) {
	if pipe.CheckpointPath != "" {
		if _, err := os.Stat(pipe.CheckpointPath); err == nil {
			cp, err := bundle.ReadCheckpointFile(pipe.CheckpointPath)
			if err != nil {
				return nil, fmt.Errorf("experiments: resume: %w", err)
			}
			if err := cp.CompatibleWith(study.Space); err != nil {
				return nil, fmt.Errorf("experiments: resume %s: %w", pipe.CheckpointPath, err)
			}
			if cp.Meta.App != pipe.Meta.App {
				return nil, fmt.Errorf("experiments: resume %s: checkpoint is a %s/%s study, not %s/%s",
					pipe.CheckpointPath, cp.Meta.Study, cp.Meta.App, study.Name, pipe.Meta.App)
			}
			if cp.Meta.TraceLen != pipe.Meta.TraceLen || cp.Meta.Note != pipe.Meta.Note {
				return nil, fmt.Errorf("experiments: resume %s: checkpoint simulated %q at %d instructions, this run wants %q at %d — mixed oracles would corrupt the curve; delete the checkpoint or restore the original settings",
					pipe.CheckpointPath, cp.Meta.Note, cp.Meta.TraceLen, pipe.Meta.Note, pipe.Meta.TraceLen)
			}
			if cp.Config.Seed != exCfg.Seed || cp.Config.Strategy != exCfg.Strategy ||
				!reflect.DeepEqual(cp.Config.Exclude, exCfg.Exclude) {
				return nil, fmt.Errorf("experiments: resume %s: checkpoint was written under a different study configuration (seed/strategy/evaluation set); delete it or restore the original settings",
					pipe.CheckpointPath)
			}
			drv, err := explore.Resume(cp, oracle, pipe)
			if err != nil {
				return nil, fmt.Errorf("experiments: resume %s: %w", pipe.CheckpointPath, err)
			}
			return drv, nil
		}
	}
	return explore.New(study.Space, oracle, explore.Config{ExploreConfig: exCfg, Pipeline: pipe})
}

// prefixEnsemble rebuilds the ensemble a run trained at an earlier
// size, from the driver's recorded history: training is deterministic
// given the data prefix and the per-size seed, so no simulation — and
// no stored copy of every intermediate model — is needed.
func prefixEnsemble(drv *explore.Driver, size int) (*core.Ensemble, time.Duration, error) {
	cp := drv.Checkpoint()
	if size > len(cp.Indices) {
		return nil, 0, fmt.Errorf("experiments: prefix %d beyond the %d simulated points", size, len(cp.Indices))
	}
	inputs := make([][]float64, size)
	for i := 0; i < size; i++ {
		inputs[i] = drv.Encoder().EncodeIndex(cp.Indices[i], nil)
	}
	start := time.Now()
	ens, err := core.TrainEnsemble(inputs, cp.Targets[:size], cp.Config.RoundModel(size))
	return ens, time.Since(start), err
}

// evaluateEnsemble measures an ensemble against a held-out truth set,
// returning mean and SD of percentage error. The whole evaluation set
// is scored in one batched prediction — under the full-space scale
// preset this is tens of thousands of points per round, the sweep the
// batched path exists for.
func evaluateEnsemble(ens *core.Ensemble, enc *encoding.Encoder, evalIdx []int, evalTruth []float64) (mean, sd float64) {
	preds := ens.PredictIndices(enc, evalIdx)
	errs := make([]float64, 0, len(evalIdx))
	for i, truth := range evalTruth {
		if truth != 0 {
			errs = append(errs, abs(preds[i]-truth)/abs(truth)*100)
		}
	}
	return stats.MeanStd(errs)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
