package experiments

import (
	"math"

	"repro/internal/studies"
)

// Table51Cell is one cell group of Table 5.1: true and estimated mean
// and SD of percentage error at one sample fraction.
type Table51Cell struct {
	Fraction int // target sample size in design points
	CurvePoint
}

// Table51Row is one application's row of Table 5.1.
type Table51Row struct {
	App   string
	Cells []CurvePoint
}

// Table51Fractions are the paper's three reporting points, as fractions
// of the full design space (the paper's column headings are the exact
// resulting percentages, e.g. 1.08%/2.17%/4.12% for the memory study).
var Table51Fractions = []float64{0.01, 0.02, 0.04}

// Table51 reproduces one study's half of Table 5.1: for every
// application, the true and cross-validation-estimated mean/SD of
// percentage error with training sets of ≈1%, 2% and 4% of the design
// space.
func Table51(study *studies.Study, apps []string, cfg CurveConfig) ([]Table51Row, error) {
	sizes := make([]int, len(Table51Fractions))
	for i, f := range Table51Fractions {
		sizes[i] = int(math.Round(f * float64(study.Space.Size())))
	}
	rows := make([]Table51Row, 0, len(apps))
	for _, app := range apps {
		points, err := CurveAtSizes(study, app, cfg, sizes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table51Row{App: app, Cells: points})
	}
	return rows, nil
}
