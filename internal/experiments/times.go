package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/stats"
	"repro/internal/studies"
)

// TimePoint is one point of Figure 5.8: wall-clock time to train the
// 10-fold ensemble at one training-set size.
type TimePoint struct {
	Samples  int
	Fraction float64
	Train    time.Duration
}

// TrainingTimes reproduces Figure 5.8 for one study: ensemble training
// time as a function of training-set size. Training time depends only
// on the dataset size and network shape, so targets come from the
// simulator for the given app but any single app suffices (the paper
// likewise plots one line per study).
//
// The paper's absolute times (30 s – 4 min on a 2005 cluster) will not
// match a modern machine; the linear shape in training-set size — the
// figure's point, O(H(I+O)·P·D) — is what reproduces.
func TrainingTimes(study *studies.Study, app string, cfg CurveConfig, sizes []int) ([]TimePoint, error) {
	if cfg.Model.Folds == 0 {
		cfg.Model = core.DefaultModelConfig()
	}
	oracle := NewSimOracle(study, app, cfg.TraceLen, IPCOnly)
	rng := stats.NewRNG(cfg.Seed ^ 0x71E5)
	maxN := sizes[len(sizes)-1]
	idx := study.Space.Sample(rng, maxN)
	ipcs, err := oracle.IPCs(idx)
	if err != nil {
		return nil, err
	}
	enc := encoding.NewEncoder(study.Space)
	x := make([][]float64, maxN)
	y := make([][]float64, maxN)
	for i := 0; i < maxN; i++ {
		x[i] = enc.EncodeIndex(idx[i], nil)
		y[i] = []float64{ipcs[i]}
	}

	var out []TimePoint
	for _, n := range sizes {
		start := time.Now()
		if _, err := core.TrainEnsemble(x[:n], y[:n], cfg.Model); err != nil {
			return nil, err
		}
		out = append(out, TimePoint{
			Samples:  n,
			Fraction: float64(n) / float64(study.Space.Size()),
			Train:    time.Since(start),
		})
	}
	return out, nil
}
