package experiments

import (
	"repro/internal/core"
	"repro/internal/studies"
)

// ActivePoint compares random and variance-driven (active) sampling at
// one training budget — the Chapter 7 active-learning extension.
type ActivePoint struct {
	Samples   int
	RandomErr float64 // true mean % error with random batches
	ActiveErr float64 // true mean % error with highest-variance batches
}

// ActiveLearning runs the active-learning ablation on one (study, app)
// pair: two explorers share one evaluation set and per-round budgets;
// one samples randomly (the paper's procedure), the other queries the
// points its current ensemble is least certain about.
func ActiveLearning(study *studies.Study, app string, cfg CurveConfig) ([]ActivePoint, error) {
	// The two arms are independent durable studies; a shared checkpoint
	// file would have the second arm "resume" the first one's run.
	randomCfg := cfg
	activeCfg := cfg
	activeCfg.Strategy = core.SelectVariance
	if cfg.Checkpoint != "" {
		randomCfg.Checkpoint = cfg.Checkpoint + ".random"
		activeCfg.Checkpoint = cfg.Checkpoint + ".active"
	}
	random, err := Curve(study, app, randomCfg)
	if err != nil {
		return nil, err
	}
	active, err := Curve(study, app, activeCfg)
	if err != nil {
		return nil, err
	}
	n := len(random)
	if len(active) < n {
		n = len(active)
	}
	out := make([]ActivePoint, n)
	for i := 0; i < n; i++ {
		out[i] = ActivePoint{
			Samples:   random[i].Samples,
			RandomErr: random[i].TrueMean,
			ActiveErr: active[i].TrueMean,
		}
	}
	return out, nil
}
