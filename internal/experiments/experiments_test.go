package experiments

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/pb"
	"repro/internal/studies"
)

// tinyCurveConfig keeps experiment smoke tests fast: short traces,
// small sweeps, small evaluation sets, light training.
func tinyCurveConfig() CurveConfig {
	model := core.DefaultModelConfig()
	model.Train.MaxEpochs = 120
	model.Train.Patience = 25
	return CurveConfig{
		TraceLen:   8000,
		Start:      60,
		Step:       60,
		End:        120,
		EvalPoints: 80,
		Model:      model,
		Seed:       7,
	}
}

func TestSimOracleCachesResults(t *testing.T) {
	st := studies.Processor()
	o := NewSimOracle(st, "gzip", 6000, IPCOnly)
	idx := []int{11, 22, 33}
	a, err := o.IPCs(idx)
	if err != nil {
		t.Fatal(err)
	}
	ran := o.SimulationsRun()
	if ran == 0 {
		t.Fatal("oracle reports zero simulations")
	}
	b, err := o.IPCs(idx)
	if err != nil {
		t.Fatal(err)
	}
	if o.SimulationsRun() != ran {
		t.Fatal("repeat evaluation re-simulated cached points")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cached results differ")
		}
	}
}

func TestSimOracleMultiTaskTargets(t *testing.T) {
	st := studies.Processor()
	o := NewSimOracle(st, "mcf", 6000, MultiTask)
	out, err := o.Evaluate([]int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0]) != 3 {
		t.Fatalf("multi-task oracle returned %v", out)
	}
	if out[0][0] <= 0 {
		t.Fatal("IPC target non-positive")
	}
}

func TestCurveShapes(t *testing.T) {
	st := studies.Processor()
	points, err := Curve(st, "gzip", tinyCurveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("curve has %d points, want 2", len(points))
	}
	for _, p := range points {
		if p.TrueMean <= 0 || p.EstMean <= 0 {
			t.Fatalf("degenerate curve point %+v", p)
		}
		if p.Fraction <= 0 || p.Fraction > 1 {
			t.Fatalf("bad fraction %v", p.Fraction)
		}
		if p.TrainTime <= 0 {
			t.Fatal("missing training time")
		}
	}
	if points[1].Samples != 120 {
		t.Fatalf("final size %d", points[1].Samples)
	}
}

func TestCurveAtSizesValidation(t *testing.T) {
	st := studies.Processor()
	if _, err := CurveAtSizes(st, "gzip", tinyCurveConfig(), nil); err == nil {
		t.Fatal("empty size list accepted")
	}
	if _, err := CurveAtSizes(st, "gzip", tinyCurveConfig(), []int{100, 50}); err == nil {
		t.Fatal("descending sizes accepted")
	}
}

func TestCurveInvalidSweepRejected(t *testing.T) {
	cfg := tinyCurveConfig()
	cfg.Step = 0
	if _, err := Curve(studies.Processor(), "gzip", cfg); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestPBScreenRanksParameters(t *testing.T) {
	st := studies.MemorySystem()
	effects, err := PBScreen(st, "mcf", 8000)
	if err != nil {
		t.Fatal(err)
	}
	named := 0
	for _, e := range effects {
		if e.Name != "" {
			named++
		}
	}
	if named != st.Space.NumParams() {
		t.Fatalf("%d named effects for %d parameters", named, st.Space.NumParams())
	}
	// For memory-bound mcf, the L2 size must rank among the top axes.
	ranked := pb.Ranked(effects)
	top3 := []string{}
	for _, e := range ranked[:4] {
		top3 = append(top3, e.Name)
	}
	found := false
	for _, n := range top3 {
		if n == "L2 Size (KB)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("L2 size not among mcf's top-ranked parameters: %v", top3)
	}
}

func TestTrainingTimesMonotoneSamples(t *testing.T) {
	st := studies.Processor()
	cfg := tinyCurveConfig()
	points, err := TrainingTimes(st, "gzip", cfg, []int{60, 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d time points", len(points))
	}
	for _, p := range points {
		if p.Train <= 0 {
			t.Fatal("non-positive training time")
		}
	}
}

func TestScalePresets(t *testing.T) {
	for _, name := range []string{"quick", "standard", "full"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name || s.TraceLen <= 0 || s.CurveStep <= 0 {
			t.Fatalf("preset %s malformed: %+v", name, s)
		}
		cc := s.CurveConfig(1)
		if cc.Start != s.CurveStart || cc.End != s.CurveEnd {
			t.Fatalf("preset %s curve config mismatch", name)
		}
	}
	if _, err := ByName("warp"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if Full().EvalPoints != 0 {
		t.Fatal("full preset must evaluate the whole space")
	}
}

func TestSizesUpTo(t *testing.T) {
	s := Quick()
	sizes := s.SizesUpTo(20736, 0.01)
	if len(sizes) == 0 {
		t.Fatal("no sizes")
	}
	last := sizes[len(sizes)-1]
	if last != 207 {
		t.Fatalf("last size %d, want 207 (1%% of 20736)", last)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatal("sizes not ascending")
		}
	}
}

func TestSimPointOracleProducesEstimates(t *testing.T) {
	st := studies.Processor()
	o, err := NewSimPointOracle(st, "mesa", 8000, simpointTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := o.Evaluate([]int{42, 43})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if len(v) != 1 || v[0] <= 0 {
			t.Fatalf("bad estimate %v", v)
		}
	}
	if o.SimulationsRun() != 2 {
		t.Fatalf("oracle ran %d estimates", o.SimulationsRun())
	}
	// Second evaluation is served from cache.
	if _, err := o.Evaluate([]int{42}); err != nil {
		t.Fatal(err)
	}
	if o.SimulationsRun() != 2 {
		t.Fatal("cache miss on repeat estimate")
	}
}

func TestActiveLearningComparableBudgets(t *testing.T) {
	st := studies.Processor()
	points, err := ActiveLearning(st, "gzip", tinyCurveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no comparison points")
	}
	for _, p := range points {
		if p.RandomErr <= 0 || p.ActiveErr <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestCrossAppSmoke(t *testing.T) {
	st := studies.Processor()
	model := core.DefaultModelConfig()
	model.Train.MaxEpochs = 80
	model.Train.Patience = 20
	apps := []string{"gzip", "mesa"}
	res, err := CrossApp(st, apps, 60, 40, 8000, model, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.SoloErr <= 0 || r.CrossErr <= 0 {
			t.Fatalf("degenerate result %+v", r)
		}
	}
}

func TestTable51SingleApp(t *testing.T) {
	st := studies.Processor()
	cfg := tinyCurveConfig()
	rows, err := Table51(st, []string{"gzip"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].App != "gzip" {
		t.Fatalf("rows = %+v", rows)
	}
	if len(rows[0].Cells) != len(Table51Fractions) {
		t.Fatalf("%d cells for %d fractions", len(rows[0].Cells), len(Table51Fractions))
	}
	for i, c := range rows[0].Cells {
		want := int(Table51Fractions[i] * float64(st.Space.Size()))
		if c.Samples < want-1 || c.Samples > want+1 {
			t.Fatalf("cell %d trained on %d samples, want ≈%d", i, c.Samples, want)
		}
		if c.TrueMean <= 0 || c.EstMean <= 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
	}
}

func TestReductionsCompose(t *testing.T) {
	st := studies.Processor()
	cfg := tinyCurveConfig()
	rows, err := Reductions(st, []string{"gzip"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no reduction rows")
	}
	for _, r := range rows {
		if r.ANNFactor <= 1 || r.SimPointFactor <= 1 {
			t.Fatalf("non-multiplying factors %+v", r)
		}
		product := r.ANNFactor * r.SimPointFactor
		if product != r.CombinedFactor {
			t.Fatalf("combined %.2f != ANN %.2f × SimPoint %.2f", r.CombinedFactor, r.ANNFactor, r.SimPointFactor)
		}
	}
}

func TestNoisyCurveEstimateBelowTrue(t *testing.T) {
	// §5.3's signature: training on SimPoint estimates, the CV estimate
	// cannot see the SimPoint noise and lands below true error.
	st := studies.Processor()
	cfg := tinyCurveConfig()
	cfg.Noisy = true
	points, err := Curve(st, "mesa", cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	if last.EstMean >= last.TrueMean {
		t.Fatalf("estimate %.2f%% not below true %.2f%% under SimPoint noise",
			last.EstMean, last.TrueMean)
	}
}

// TestCurveCheckpointResume kills a durable study half-way (by running
// only its first size) and reruns the full sweep against the same
// checkpoint: the resumed curve must equal the uninterrupted one point
// for point — covered rounds are rebuilt from the checkpoint without
// new training simulations.
func TestCurveCheckpointResume(t *testing.T) {
	st := studies.Processor()
	cfg := tinyCurveConfig()
	sizes := []int{60, 120}

	want, err := CurveAtSizes(st, "gzip", cfg, sizes)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Checkpoint = filepath.Join(t.TempDir(), "curve.checkpoint")
	// "Killed" first run: only the first size completes.
	if _, err := CurveAtSizes(st, "gzip", cfg, sizes[:1]); err != nil {
		t.Fatal(err)
	}
	got, err := CurveAtSizes(st, "gzip", cfg, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed curve has %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Samples != want[i].Samples ||
			got[i].TrueMean != want[i].TrueMean || got[i].TrueSD != want[i].TrueSD ||
			got[i].EstMean != want[i].EstMean || got[i].EstSD != want[i].EstSD {
			t.Fatalf("resumed curve point %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
