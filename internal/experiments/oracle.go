// Package experiments implements the paper's evaluation (Chapter 5):
// simulation-backed oracles, learning curves (Fig. 5.1), error-estimate
// fidelity (Figs. 5.2/5.3), the accuracy summary (Table 5.1), the
// ANN+SimPoint combination (Figs. 5.4–5.7), training-time measurements
// (Fig. 5.8), and the cross-application and active-learning extensions
// of Chapter 7. Each experiment returns plain row/series data; the
// cmd/repro tool renders them in the paper's format.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/simpoint"
	"repro/internal/studies"
	"repro/internal/workload"
)

// Metrics selects which simulator statistics an oracle reports as
// network targets.
type Metrics uint8

// Target sets.
const (
	// IPCOnly reports IPC, the paper's primary studies.
	IPCOnly Metrics = iota
	// MultiTask reports IPC plus L2 miss rate and branch mispredict
	// rate, for the Chapter 7 multi-task-learning extension.
	MultiTask
)

// resultCache memoizes full simulation results process-wide; the
// simulator is deterministic, so caching changes wall-clock time only.
// Keys combine study, app, trace length and design-point index.
var resultCache sync.Map // string -> sim.Result

func cacheKey(study, app string, traceLen, index int) string {
	return fmt.Sprintf("%s/%s/%d/%d", study, app, traceLen, index)
}

// SimOracle evaluates design points by running the cycle-level
// simulator on a fixed application trace. It parallelizes batches
// across GOMAXPROCS workers and counts the simulations it actually
// performs (cache misses), which the reduction-factor experiments use.
type SimOracle struct {
	Study    *studies.Study
	App      string
	TraceLen int
	Metrics  Metrics

	mu   sync.Mutex
	sims int // simulations actually executed (not served from cache)
}

// NewSimOracle builds an oracle for one (study, application) pair.
func NewSimOracle(study *studies.Study, app string, traceLen int, metrics Metrics) *SimOracle {
	return &SimOracle{Study: study, App: app, TraceLen: traceLen, Metrics: metrics}
}

// SimulationsRun returns how many detailed simulations this oracle has
// executed (cache hits excluded).
func (o *SimOracle) SimulationsRun() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sims
}

// Result returns the full simulation result for one design point,
// through the cache.
func (o *SimOracle) Result(index int) (sim.Result, error) {
	key := cacheKey(o.Study.Name, o.App, o.TraceLen, index)
	if v, ok := resultCache.Load(key); ok {
		return v.(sim.Result), nil
	}
	cfg := o.Study.Config(index)
	tr := workload.Get(o.App, o.TraceLen)
	r, err := sim.Run(cfg, tr)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %s/%s point %d: %w", o.Study.Name, o.App, index, err)
	}
	resultCache.Store(key, r)
	o.mu.Lock()
	o.sims++
	o.mu.Unlock()
	return r, nil
}

// targets converts a simulation result into the configured target
// vector.
func (o *SimOracle) targets(r sim.Result) []float64 {
	if o.Metrics == MultiTask {
		return []float64{r.IPC, r.L2MissRate, r.BrMispredRate}
	}
	return []float64{r.IPC}
}

// Evaluate implements core.Oracle, fanning the batch across workers.
func (o *SimOracle) Evaluate(indices []int) ([][]float64, error) {
	results, err := o.Results(indices)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(indices))
	for i, r := range results {
		out[i] = o.targets(r)
	}
	return out, nil
}

// Results returns full simulation results for a batch, in order,
// simulating cache misses in parallel.
func (o *SimOracle) Results(indices []int) ([]sim.Result, error) {
	out := make([]sim.Result, len(indices))
	errs := make([]error, len(indices))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers())
	for i, idx := range indices {
		wg.Add(1)
		go func(i, idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = o.Result(idx)
		}(i, idx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// IPCs is a convenience wrapper returning just the primary metric for a
// batch.
func (o *SimOracle) IPCs(indices []int) ([]float64, error) {
	rs, err := o.Results(indices)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.IPC
	}
	return out, nil
}

// SimPointOracle evaluates design points with SimPoint-estimated IPC:
// it simulates only the representative intervals SimPoint chose for the
// application and combines them with the cluster weights (§5.3). Its
// estimates are noisy relative to full simulation — which is exactly
// the property the ANN+SimPoint experiments study. The noisy estimates
// are cached like full results, under a distinct key space.
type SimPointOracle struct {
	Study *studies.Study
	App   string

	TraceLen int
	Plan     *simpoint.Plan

	mu   sync.Mutex
	sims int
}

// NewSimPointOracle runs SimPoint's offline phase (BBV profiling,
// projection, clustering, representative selection) for the application
// and returns an oracle that estimates IPC from the chosen intervals.
func NewSimPointOracle(study *studies.Study, app string, traceLen int, spCfg simpoint.Config) (*SimPointOracle, error) {
	tr := workload.Get(app, traceLen)
	plan, err := simpoint.BuildPlan(tr, spCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: simpoint plan for %s: %w", app, err)
	}
	return &SimPointOracle{Study: study, App: app, TraceLen: traceLen, Plan: plan}, nil
}

// SimulationsRun returns how many design points this oracle has
// evaluated (each costing only the representative intervals).
func (o *SimPointOracle) SimulationsRun() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sims
}

// Estimate returns the SimPoint IPC estimate for one design point.
func (o *SimPointOracle) Estimate(index int) (float64, error) {
	key := cacheKey("simpoint-"+o.Study.Name, o.App, o.TraceLen, index)
	if v, ok := resultCache.Load(key); ok {
		return v.(sim.Result).IPC, nil
	}
	cfg := o.Study.Config(index)
	tr := workload.Get(o.App, o.TraceLen)
	ipc, err := o.Plan.EstimateIPC(cfg, tr)
	if err != nil {
		return 0, fmt.Errorf("experiments: simpoint estimate %s/%s point %d: %w", o.Study.Name, o.App, index, err)
	}
	resultCache.Store(key, sim.Result{IPC: ipc})
	o.mu.Lock()
	o.sims++
	o.mu.Unlock()
	return ipc, nil
}

// Evaluate implements core.Oracle.
func (o *SimPointOracle) Evaluate(indices []int) ([][]float64, error) {
	out := make([][]float64, len(indices))
	errs := make([]error, len(indices))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers())
	for i, idx := range indices {
		wg.Add(1)
		go func(i, idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ipc, err := o.Estimate(idx)
			out[i], errs[i] = []float64{ipc}, err
		}(i, idx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func workers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}
