package experiments

import (
	"fmt"

	"repro/internal/simpoint"
	"repro/internal/studies"
	"repro/internal/workload"
)

// ReductionRow is one bar group of Figures 5.6/5.7: at one achieved
// mean-error level, the factor by which each technique reduces the
// total number of instructions that must be simulated in detail to
// explore the design space, relative to exhaustively simulating every
// point in full.
type ReductionRow struct {
	App      string
	ErrorPct float64 // achieved mean percentage error across the space

	ANNFactor      float64 // full-simulation training: |space| / samples-needed
	SimPointFactor float64 // per-simulation instruction reduction from SimPoint
	CombinedFactor float64 // ANN trained on SimPoint estimates: product of both effects
}

// Reductions reproduces Figures 5.6 and 5.7 for one study: for each
// application it runs the plain-ANN and ANN+SimPoint learning curves,
// then reports, at each of the combined curve's Table-5.1 reporting
// sizes, the achieved error and the instruction-reduction factors.
//
// The paper's factors count simulated instructions: exploring the full
// space costs |space|·traceLen; the ANN needs only n·traceLen (its
// factor is |space|/n); SimPoint cuts each simulation to the chosen
// representative intervals (factor traceLen/plan); the combination
// multiplies.
func Reductions(study *studies.Study, apps []string, cfg CurveConfig) ([]ReductionRow, error) {
	var rows []ReductionRow
	spaceSize := float64(study.Space.Size())
	for _, app := range apps {
		noisy := cfg
		noisy.Noisy = true
		noisyCurve, err := Curve(study, app, noisy)
		if err != nil {
			return nil, fmt.Errorf("experiments: reductions (%s, noisy): %w", app, err)
		}
		plan, err := simpoint.BuildPlan(workload.Get(app, cfg.TraceLen), simpoint.DefaultConfig())
		if err != nil {
			return nil, err
		}
		sp := float64(cfg.TraceLen) / float64(plan.InstructionsPerEstimate())

		// Report at the sizes closest to the paper's 1%, 2%, 4% points,
		// using the error the combined technique actually achieved
		// there (the paper's x axes are likewise per-app achieved
		// errors, e.g. "3.1/2.1/1.0" for crafty).
		for _, f := range Table51Fractions {
			target := int(f * spaceSize)
			pt, ok := closestPoint(noisyCurve, target)
			if !ok {
				continue
			}
			rows = append(rows, ReductionRow{
				App:            app,
				ErrorPct:       pt.TrueMean,
				ANNFactor:      spaceSize / float64(pt.Samples),
				SimPointFactor: sp,
				CombinedFactor: spaceSize / float64(pt.Samples) * sp,
			})
		}
	}
	return rows, nil
}

// closestPoint returns the curve point whose sample count is nearest
// the target.
func closestPoint(curve []CurvePoint, target int) (CurvePoint, bool) {
	if len(curve) == 0 {
		return CurvePoint{}, false
	}
	best := curve[0]
	for _, p := range curve[1:] {
		if absInt(p.Samples-target) < absInt(best.Samples-target) {
			best = p
		}
	}
	return best, true
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
