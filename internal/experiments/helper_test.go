package experiments

import "repro/internal/simpoint"

// simpointTestConfig keeps SimPoint smoke tests fast.
func simpointTestConfig() simpoint.Config {
	cfg := simpoint.DefaultConfig()
	cfg.MaxK = 5
	return cfg
}
