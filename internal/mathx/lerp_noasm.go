//go:build !amd64

package mathx

// sliceLerp32 has no vectorized implementation on this architecture;
// slice32 runs the scalar at32 loop, which computes the same bits.
func sliceLerp32(t *table, xs []float32) int { return 0 }
