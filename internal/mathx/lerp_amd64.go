package mathx

import "repro/internal/cpufeat"

// lerpGatherAVX2 applies the table lerp to xs[0:n] in place, 8 lanes at
// a time; n must be a multiple of 8. Every step is the same
// single-rounded float32 operation sequence as at32 — VMULPS/VADDPS for
// the index, VMAXPS/VMINPS with the NaN-clamping operand order for the
// range clamp, VCVTTPS2DQ truncation for the cell, VPGATHERDD loads,
// and VSUBPS/VMULPS/VADDPS for the lerp — so its results are
// bit-identical to the scalar fallback (asserted by the slice/scalar
// parity tests).
//
//go:noescape
func lerpGatherAVX2(xs *float32, n int, tab *float32, invH, bias, maxU float32)

// sliceLerp32 vectorizes the leading multiple-of-8 span of xs on CPUs
// with AVX2 and reports how many elements it handled.
func sliceLerp32(t *table, xs []float32) int {
	if !cpufeat.AVX2 || len(xs) < 8 {
		return 0
	}
	m := len(xs) &^ 7
	lerpGatherAVX2(&xs[0], m, &t.v32[0], t.invH32, t.bias32, t.maxU32)
	return m
}
