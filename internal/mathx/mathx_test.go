package mathx

import (
	"math"
	"testing"
)

// The grids below sweep each function's full documented domain at a
// step fine enough to catch any cell of the interpolation tables (the
// sigmoid/tanh steps are incommensurate with the table pitch, so
// successive probes land at varying in-cell offsets).

func TestExpErrorBound(t *testing.T) {
	const bound = 2e-8
	worst := 0.0
	for x := -708.0; x <= 709.0; x += 0.000977 {
		got := Exp(x)
		want := math.Exp(x)
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
		if rel > bound {
			t.Fatalf("Exp(%g) = %g, want %g (rel err %.3g > %g)", x, got, want, rel, bound)
		}
	}
	t.Logf("Exp worst relative error on grid: %.3g", worst)
}

func TestExpSpecials(t *testing.T) {
	if got := Exp(math.NaN()); got != 0 {
		t.Errorf("Exp(NaN) = %g, want 0 (documented lower saturation)", got)
	}
	if got := Exp(math.Inf(-1)); got != 0 {
		t.Errorf("Exp(-Inf) = %g, want 0", got)
	}
	if got := Exp(math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("Exp(+Inf) = %g, want +Inf", got)
	}
	if got := Exp(-1000); got != 0 {
		t.Errorf("Exp(-1000) = %g, want 0", got)
	}
	if got := Exp(1000); !math.IsInf(got, 1) {
		t.Errorf("Exp(1000) = %g, want +Inf", got)
	}
	if got := Exp(0); got != 1 {
		t.Errorf("Exp(0) = %g, want exactly 1", got)
	}
}

func TestExp32ErrorBound(t *testing.T) {
	const bound = 1e-5
	for x := -87.0; x <= 88.0; x += 0.000511 {
		got := float64(Exp32(float32(x)))
		want := math.Exp(float64(float32(x)))
		if rel := math.Abs(got-want) / want; rel > bound {
			t.Fatalf("Exp32(%g) rel err %.3g > %g", x, rel, bound)
		}
	}
	if got := Exp32(float32(math.NaN())); got != 0 {
		t.Errorf("Exp32(NaN) = %g, want 0", got)
	}
	if got := Exp32(-100); got != 0 {
		t.Errorf("Exp32(-100) = %g, want 0", got)
	}
	if got := Exp32(100); !math.IsInf(float64(got), 1) {
		t.Errorf("Exp32(100) = %g, want +Inf", got)
	}
}

func TestSigmoidErrorBound(t *testing.T) {
	const bound = 1e-6
	worst := 0.0
	for x := -50.0; x <= 50.0; x += 0.000767 {
		got := Sigmoid(x)
		want := 1 / (1 + math.Exp(-x))
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
		if d := math.Abs(got - want); d > bound {
			t.Fatalf("Sigmoid(%g) = %g, want %g (abs err %.3g > %g)", x, got, want, d, bound)
		}
	}
	t.Logf("Sigmoid worst absolute error on grid: %.3g", worst)
}

func TestTanhErrorBound(t *testing.T) {
	const bound = 1e-6
	worst := 0.0
	for x := -50.0; x <= 50.0; x += 0.000767 {
		got := Tanh(x)
		want := math.Tanh(x)
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
		if d := math.Abs(got - want); d > bound {
			t.Fatalf("Tanh(%g) = %g, want %g (abs err %.3g > %g)", x, got, want, d, bound)
		}
	}
	t.Logf("Tanh worst absolute error on grid: %.3g", worst)
}

func TestSigmoid32Tanh32ErrorBound(t *testing.T) {
	const bound = 2e-6
	for x := -50.0; x <= 50.0; x += 0.000767 {
		x32 := float32(x)
		if d := math.Abs(float64(Sigmoid32(x32)) - 1/(1+math.Exp(-float64(x32)))); d > bound {
			t.Fatalf("Sigmoid32(%g) abs err %.3g > %g", x, d, bound)
		}
		if d := math.Abs(float64(Tanh32(x32)) - math.Tanh(float64(x32))); d > bound {
			t.Fatalf("Tanh32(%g) abs err %.3g > %g", x, d, bound)
		}
	}
}

func TestSaturationAndSpecials(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		x    float64
		want float64
	}{
		{"Sigmoid(+Inf)", Sigmoid, math.Inf(1), 1},
		{"Sigmoid(-Inf)", Sigmoid, math.Inf(-1), Sigmoid(-16)},
		{"Sigmoid(NaN)", Sigmoid, math.NaN(), Sigmoid(-16)},
		{"Tanh(+Inf)", Tanh, math.Inf(1), 1},
		{"Tanh(-Inf)", Tanh, math.Inf(-1), -1},
		{"Tanh(NaN)", Tanh, math.NaN(), -1},
	}
	for _, c := range cases {
		if got := c.f(c.x); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("%s = %g, want %g", c.name, got, c.want)
		}
	}
	// Denormal inputs sit squarely in the central table cell.
	tiny := math.SmallestNonzeroFloat64
	if got := Sigmoid(tiny); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("Sigmoid(denormal) = %g, want ~0.5", got)
	}
	if got := Tanh(tiny); math.Abs(got) > 1e-6 {
		t.Errorf("Tanh(denormal) = %g, want ~0", got)
	}
}

// TestSliceScalarParity asserts the batch kernels are bit-identical to
// their scalar counterparts — the fast sweep path relies on this for
// chunk-size independence.
func TestSliceScalarParity(t *testing.T) {
	xs := make([]float64, 0, 4001)
	for x := -20.0; x <= 20.0; x += 0.01 {
		xs = append(xs, x)
	}
	xs = append(xs, math.NaN(), math.Inf(1), math.Inf(-1), 0, -0.0)

	check := func(name string, slice func([]float64), scalar func(float64) float64) {
		got := append([]float64(nil), xs...)
		slice(got)
		for i, x := range xs {
			if w := scalar(x); math.Float64bits(got[i]) != math.Float64bits(w) {
				t.Fatalf("%s slice/scalar mismatch at x=%g: %g vs %g", name, x, got[i], w)
			}
		}
	}
	check("Exp", ExpSlice, Exp)
	check("Sigmoid", SigmoidSlice, Sigmoid)
	check("Tanh", TanhSlice, Tanh)

	xs32 := make([]float32, len(xs))
	for i, x := range xs {
		xs32[i] = float32(x)
	}
	check32 := func(name string, slice func([]float32), scalar func(float32) float32) {
		got := append([]float32(nil), xs32...)
		slice(got)
		for i, x := range xs32 {
			if w := scalar(x); math.Float32bits(got[i]) != math.Float32bits(w) {
				t.Fatalf("%s slice/scalar mismatch at x=%g: %g vs %g", name, x, got[i], w)
			}
		}
	}
	check32("Exp32", ExpSlice32, Exp32)
	check32("Sigmoid32", SigmoidSlice32, Sigmoid32)
	check32("Tanh32", TanhSlice32, Tanh32)
}

// TestSlice32VectorEdgeParity feeds non-finite and boundary inputs
// through the *vectorized* span of the float32 slice kernels (the
// general parity test keeps its specials in the scalar tail): the
// slice is sized a multiple of 8 and every lane position cycles through
// the edge set, so the SIMD clamp/truncate path must reproduce the
// scalar at32 bits for all of them.
func TestSlice32VectorEdgeParity(t *testing.T) {
	edges := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		0, float32(math.Copysign(0, -1)), 1.4e-45, -1.4e-45,
		math.MaxFloat32, -math.MaxFloat32,
		-16, 16, -8, 8, -15.9999, 15.9999, 0.5,
	}
	xs := make([]float32, 8*len(edges))
	for i := range xs {
		// offset by lane so each edge value visits every SIMD lane
		xs[i] = edges[(i+i/8)%len(edges)]
	}
	check := func(name string, slice func([]float32), scalar func(float32) float32) {
		got := append([]float32(nil), xs...)
		slice(got)
		for i, x := range xs {
			if w := scalar(x); math.Float32bits(got[i]) != math.Float32bits(w) {
				t.Fatalf("%s vector/scalar mismatch at lane %d x=%g: %g vs %g", name, i, x, got[i], w)
			}
		}
	}
	check("Sigmoid32", SigmoidSlice32, Sigmoid32)
	check("Tanh32", TanhSlice32, Tanh32)
}

func benchInput() []float64 {
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = float64(i%200)/10 - 10
	}
	return xs
}

func BenchmarkSigmoidSlice(b *testing.B) {
	src, buf := benchInput(), make([]float64, 4096)
	b.SetBytes(int64(len(src) * 8))
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		SigmoidSlice(buf)
	}
}

func BenchmarkExpSlice(b *testing.B) {
	src, buf := benchInput(), make([]float64, 4096)
	b.SetBytes(int64(len(src) * 8))
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		ExpSlice(buf)
	}
}

func BenchmarkSigmoidSlice32(b *testing.B) {
	src64 := benchInput()
	src, buf := make([]float32, len(src64)), make([]float32, len(src64))
	for i, x := range src64 {
		src[i] = float32(x)
	}
	b.SetBytes(int64(len(src) * 4))
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		SigmoidSlice32(buf)
	}
}
