#include "textflag.h"

// func lerpGatherAVX2(xs *float32, n int, tab *float32, invH, bias, maxU float32)
//
// Vectorized mirror of (*table).at32: u = x*invH + bias (each step
// single-rounded), clamp to [0, maxU] with NaN -> 0, i = trunc(u),
// f = u - float32(i), then tab[i] + f*(tab[i+1]-tab[i]) with one
// rounding per operation. Operand order on VMAXPS/VMINPS matters: the
// second source is returned on unordered compares, so placing the
// constant there maps NaN to the lower edge exactly like the scalar
// clamp.
TEXT ·lerpGatherAVX2(SB), NOSPLIT, $0-36
	MOVQ xs+0(FP), DI
	MOVQ n+8(FP), CX
	MOVQ tab+16(FP), SI
	VBROADCASTSS invH+24(FP), Y1
	VBROADCASTSS bias+28(FP), Y2
	VBROADCASTSS maxU+32(FP), Y3
	VXORPS Y4, Y4, Y4           // zeros
	MOVL $1, AX
	MOVQ AX, X5
	VPBROADCASTD X5, Y5         // dword ones

loop:
	CMPQ CX, $8
	JLT done
	VMOVUPS (DI), Y6
	VMULPS Y1, Y6, Y6           // u = x*invH        (rounded)
	VADDPS Y2, Y6, Y6           // u += bias          (rounded)
	VMAXPS Y4, Y6, Y6           // max(u, 0); NaN -> src2 = 0
	VMINPS Y3, Y6, Y6           // min(u, maxU)
	VCVTTPS2DQ Y6, Y7           // i = trunc(u), 0 <= i <= n-1
	VCVTDQ2PS Y7, Y8            // float32(i), exact
	VSUBPS Y8, Y6, Y9           // f = u - float32(i)
	VPCMPEQD Y10, Y10, Y10      // gather mask (consumed by the gather)
	VPGATHERDD Y10, (SI)(Y7*4), Y11   // lo = tab[i]
	VPADDD Y5, Y7, Y12          // i+1
	VPCMPEQD Y10, Y10, Y10
	VPGATHERDD Y10, (SI)(Y12*4), Y13  // hi = tab[i+1]
	VSUBPS Y11, Y13, Y14        // d = hi - lo        (rounded)
	VMULPS Y9, Y14, Y14         // f*d                (rounded)
	VADDPS Y11, Y14, Y14        // lo + f*d           (rounded)
	VMOVUPS Y14, (DI)
	ADDQ $32, DI
	SUBQ $8, CX
	JMP loop

done:
	VZEROUPPER
	RET
