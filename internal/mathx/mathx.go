// Package mathx provides bounded-error approximations of the
// transcendental functions on the sweep hot path (exp, the logistic
// sigmoid, tanh), in float64 and float32, as scalars and as in-place
// batch kernels. They back the opt-in fast/fast32 kernel modes in
// internal/ann; the exact mode never touches this package.
//
// # Error contract
//
// Each function documents a maximum error versus the true mathematical
// function, asserted by exhaustive-grid tests in this package:
//
//	Exp     relative error ≤ 2e-8   on [-708, 709]
//	Exp32   relative error ≤ 1e-5   on [-87, 88]
//	Sigmoid absolute error ≤ 1e-6   everywhere
//	Sigmoid32 absolute error ≤ 2e-6 everywhere
//	Tanh    absolute error ≤ 1e-6   everywhere
//	Tanh32  absolute error ≤ 2e-6   everywhere
//
// Outside the stated Exp domains the functions saturate (0 below,
// +Inf above) instead of drifting; Sigmoid and Tanh saturate to their
// asymptotes, so the absolute bound holds on the whole real line.
//
// # Determinism
//
// Every function here is a pure function of its bits-in: the only
// operations used are IEEE-754 primitives with a single rounding
// (+, -, *, table loads, float conversions) and math.FMA, which Go
// defines as correctly rounded on every platform. The interpolation
// tables are built at init time from the same primitives. Results are
// therefore bit-identical across runs, goroutines, and architectures.
// Non-finite inputs are clamped deterministically: NaN maps to the
// function's lower saturation value rather than propagating, so batch
// kernels never hit the (platform-dependent) float→int conversion of
// NaN.
package mathx

import "math"

// Cody-Waite split of ln 2: ln2Hi+ln2Lo ≈ ln 2 with ln2Hi exactly
// representable in the high bits, so x - k*ln2Hi is exact for the k
// range used here and the reduction error is confined to ln2Lo.
const (
	log2E = 1.44269504088896338700e+00
	ln2Hi = 6.93147180369123816490e-01
	ln2Lo = 1.90821492927058770002e-10

	// expLo/expHi bound the domain on which the relative-error
	// contract holds; outside, Exp saturates to 0 / +Inf.
	expLo = -708.0
	expHi = 709.0
)

// expPoly evaluates exp(r) for |r| ≤ ln2/2 by a degree-7 Taylor
// polynomial (max relative error ≈ 5e-9 at the interval edge, below
// the documented 2e-8 contract with margin for the reduction).
func expPoly(r float64) float64 {
	p := math.FMA(r, 1.0/5040, 1.0/720)
	p = math.FMA(r, p, 1.0/120)
	p = math.FMA(r, p, 1.0/24)
	p = math.FMA(r, p, 1.0/6)
	p = math.FMA(r, p, 0.5)
	p = math.FMA(r, p, 1)
	return math.FMA(r, p, 1)
}

// Exp approximates e**x with relative error ≤ 2e-8 on [-708, 709].
// Below -708 it returns 0 (true exp is < 3.3e-308 there, the edge of
// the normal float64 range); above 709 it returns +Inf; NaN maps to
// the lower saturation, 0.
func Exp(x float64) float64 {
	if !(x >= expLo) { // catches NaN and underflow in one branch
		return 0
	}
	if x > expHi {
		return math.Inf(1)
	}
	// x = k·ln2 + r with |r| ≤ ln2/2; exp(x) = 2^k · exp(r).
	kf := math.Floor(math.FMA(x, log2E, 0.5))
	r := math.FMA(-kf, ln2Hi, x)
	r = math.FMA(-kf, ln2Lo, r)
	// 2^k by exponent-field construction; k ∈ [-1022, 1023] on the
	// clamped domain so the result is a normal float64.
	pow2k := math.Float64frombits(uint64(int64(kf)+1023) << 52)
	return expPoly(r) * pow2k
}

// ExpSlice replaces each xs[i] with Exp(xs[i]).
func ExpSlice(xs []float64) {
	for i, x := range xs {
		xs[i] = Exp(x)
	}
}

// Exp32 approximates e**x in float32 with relative error ≤ 1e-5 on
// [-87, 88] (the useful float32 exp domain); it saturates to 0 below
// and +Inf above, with NaN mapping to 0. The reduction and polynomial
// run in float64 (one conversion each way) so the bound is dominated
// by the final float32 rounding.
func Exp32(x float32) float32 {
	if !(x >= -87) {
		return 0
	}
	if x > 88 {
		return float32(math.Inf(1))
	}
	return float32(Exp(float64(x)))
}

// ExpSlice32 replaces each xs[i] with Exp32(xs[i]).
func ExpSlice32(xs []float32) {
	for i, x := range xs {
		xs[i] = Exp32(x)
	}
}

// table is a uniform-grid linear interpolator on [min, min+n*h]. at()
// clamps out-of-range and NaN inputs to the table edges, whose entries
// hold the function's saturation values.
type table struct {
	invH float64 // 1/h
	bias float64 // -min/h, so u = x*invH + bias is the real-valued index
	maxU float64 // largest representable index strictly below n
	// float32 mirrors for at32: maxU32 is the largest float32 strictly
	// below n, so int(u) ≤ n-1 without a second bounds branch (which
	// also keeps at32 within the compiler's inlining budget).
	invH32 float32
	bias32 float32
	maxU32 float32
	v      []float64
	v32    []float32
}

func buildTable(min, max float64, n int, f func(float64) float64) *table {
	h := (max - min) / float64(n)
	t := &table{
		invH:   1 / h,
		bias:   -min / h,
		maxU:   math.Nextafter(float64(n), 0),
		invH32: float32(1 / h),
		bias32: float32(-min / h),
		maxU32: math.Nextafter32(float32(n), 0),
		v:      make([]float64, n+1),
		v32:    make([]float32, n+1),
	}
	for i := 0; i <= n; i++ {
		t.v[i] = f(min + float64(i)*h)
		t.v32[i] = float32(t.v[i])
	}
	return t
}

func (t *table) at(x float64) float64 {
	u := math.FMA(x, t.invH, t.bias)
	if !(u >= 0) { // NaN and below-range clamp to the lower edge
		u = 0
	} else if u > t.maxU {
		u = t.maxU
	}
	i := int(u)
	f := u - float64(i)
	lo := t.v[i]
	return math.FMA(f, t.v[i+1]-lo, lo)
}

// at32 mirrors at in float32. The index math uses explicitly rounded
// float32 steps (no contraction), so the chosen cell — and therefore
// the result bits — are identical on every architecture. The vector
// kernel behind the Slice32 functions reproduces exactly this op
// sequence (each step single-rounded), so scalar and batch results
// match bit for bit.
func (t *table) at32(x float32) float32 {
	u := float32(x*t.invH32) + t.bias32
	if !(u >= 0) { // NaN and below-range clamp to the lower edge
		u = 0
	} else if u > t.maxU32 {
		u = t.maxU32
	}
	i := int(u)
	f := u - float32(i)
	lo := t.v32[i]
	return lo + float32(f*(t.v32[i+1]-lo))
}

// Interpolation error of a uniform linear table is h²/8·max|f″|; the
// grids below keep that, plus the saturation tail beyond the table
// range, under the documented absolute bounds.
var (
	// σ on [-16,16], 4096 cells: h=1/128 → interp ≤ 7.4e-7 (max|σ″| =
	// 1/(6√3)), tail σ(-16) ≈ 1.1e-7.
	sigmoidTab = buildTable(-16, 16, 4096, func(x float64) float64 {
		return 1 / (1 + Exp(-x))
	})
	// tanh on [-8,8], 8192 cells: h=1/512 → interp ≤ 3.7e-7 (max|tanh″|
	// ≈ 0.77), tail 1-tanh(8) ≈ 2.3e-7.
	tanhTab = buildTable(-8, 8, 8192, func(x float64) float64 {
		e := Exp(2 * x)
		return (e - 1) / (e + 1)
	})
)

// Sigmoid approximates the logistic function 1/(1+e**-x) with absolute
// error ≤ 1e-6 on the whole real line; NaN maps to the lower
// saturation, ~0.
func Sigmoid(x float64) float64 { return sigmoidTab.at(x) }

// SigmoidSlice replaces each xs[i] with Sigmoid(xs[i]).
func SigmoidSlice(xs []float64) {
	t := sigmoidTab
	for i, x := range xs {
		xs[i] = t.at(x)
	}
}

// Sigmoid32 approximates the logistic function in float32 with
// absolute error ≤ 2e-6; NaN maps to the lower saturation, ~0.
func Sigmoid32(x float32) float32 { return sigmoidTab.at32(x) }

// SigmoidSlice32 replaces each xs[i] with Sigmoid32(xs[i]).
func SigmoidSlice32(xs []float32) { sigmoidTab.slice32(xs) }

// slice32 applies at32 in place, routing the bulk of the slice through
// the vectorized lerp kernel where one exists (sliceLerp32 returns how
// many leading elements it handled — 0 on platforms without one).
func (t *table) slice32(xs []float32) {
	for i := sliceLerp32(t, xs); i < len(xs); i++ {
		xs[i] = t.at32(xs[i])
	}
}

// Tanh approximates the hyperbolic tangent with absolute error ≤ 1e-6
// on the whole real line; NaN maps to the lower saturation, ~-1.
func Tanh(x float64) float64 { return tanhTab.at(x) }

// TanhSlice replaces each xs[i] with Tanh(xs[i]).
func TanhSlice(xs []float64) {
	t := tanhTab
	for i, x := range xs {
		xs[i] = t.at(x)
	}
}

// Tanh32 approximates the hyperbolic tangent in float32 with absolute
// error ≤ 2e-6; NaN maps to the lower saturation, ~-1.
func Tanh32(x float32) float32 { return tanhTab.at32(x) }

// TanhSlice32 replaces each xs[i] with Tanh32(xs[i]).
func TanhSlice32(xs []float32) { tanhTab.slice32(xs) }
