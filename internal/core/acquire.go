package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pareto"
)

// AcquireStrategy names an acquisition function — the rule that scores
// unsimulated candidates against the current ensemble and decides what
// to simulate next. Strategies serialize by name so checkpoints stay
// self-describing.
type AcquireStrategy string

// The acquisition strategies.
const (
	// AcquireHVI scores candidates by predicted hypervolume
	// improvement: how much the predicted Pareto frontier over the
	// configured objectives would grow if the candidate joined the
	// already-simulated set.
	AcquireHVI AcquireStrategy = "hvi"
	// AcquireFrontier is frontier-uncertainty sampling: prefer
	// candidates whose ensemble disagreement straddles the predicted
	// frontier — plausibly frontier-improving under one member, clearly
	// dominated under another — where one simulation buys the most
	// frontier information.
	AcquireFrontier AcquireStrategy = "frontier"
	// AcquireVariance is the Chapter 7 disagreement rule behind the
	// Acquirer interface: score by ensemble variance on the primary
	// objective's output. Without constraints it selects bit-identically
	// to BatchSelector.ByVariance.
	AcquireVariance AcquireStrategy = "variance"
)

// Objective is one axis of the predicted frontier acquisition targets:
// an ensemble output column, scored either by its predicted mean or by
// the members' disagreement on it (Variance), ranked in the given
// direction.
type Objective struct {
	Output   int  `json:"output"`
	Variance bool `json:"variance,omitempty"`
	Minimize bool `json:"minimize,omitempty"`
}

// Constraint restricts acquisition to candidates whose predicted mean
// on an output column satisfies a bound — the declarative form of
// "min energy s.t. IPC ≥ x". Op is ">=" or "<=".
type Constraint struct {
	Output int     `json:"output"`
	Op     string  `json:"op"`
	Value  float64 `json:"value"`
}

// satisfied reports whether a predicted mean meets the constraint.
func (c Constraint) satisfied(v float64) bool {
	if c.Op == "<=" {
		return v <= c.Value
	}
	return v >= c.Value
}

// String renders the constraint in the spec grammar.
func (c Constraint) String() string {
	return fmt.Sprintf("out%d%s%v", c.Output, c.Op, c.Value)
}

// AcquireConfig selects and parameterizes an acquisition strategy. The
// zero Objectives slice means the default pair — the primary output
// maximized against the members' disagreement on it minimized, the
// same performance-vs-confidence frontier sweep.DefaultSpecs ranks by.
type AcquireConfig struct {
	Strategy    AcquireStrategy `json:"strategy"`
	Objectives  []Objective     `json:"objectives,omitempty"`
	Constraints []Constraint    `json:"constraints,omitempty"`
}

// resolvedObjectives returns the configured objectives, or the default
// pair when none were given.
func (c *AcquireConfig) resolvedObjectives() []Objective {
	if len(c.Objectives) > 0 {
		return c.Objectives
	}
	return []Objective{
		{Output: 0},
		{Output: 0, Variance: true, Minimize: true},
	}
}

// ResolvedObjectives returns the objectives acquisition actually runs
// with: the configured list, or the default pair when none were given.
// A nil receiver yields the default pair — the frontier of a run with
// no acquisition config is the same performance-vs-confidence pair
// sweep.DefaultSpecs ranks by.
func (c *AcquireConfig) ResolvedObjectives() []Objective {
	if c == nil {
		c = &AcquireConfig{}
	}
	return c.resolvedObjectives()
}

// MaxOutput returns the highest output column the configuration
// references across objectives and constraints (0 for nil or for a
// config on the default pair). Oracle builders use it to decide how
// many target columns the simulator must report.
func (c *AcquireConfig) MaxOutput() int {
	if c == nil {
		return 0
	}
	max := 0
	for _, o := range c.resolvedObjectives() {
		if o.Output > max {
			max = o.Output
		}
	}
	for _, ct := range c.Constraints {
		if ct.Output > max {
			max = ct.Output
		}
	}
	return max
}

// Validate reports structural problems with the acquisition
// configuration. Output columns are checked against the trained
// ensemble at selection time — the target width is not known before
// the first round.
func (c *AcquireConfig) Validate() error {
	switch c.Strategy {
	case AcquireHVI, AcquireFrontier, AcquireVariance:
	default:
		return fmt.Errorf("core: unknown acquisition strategy %q (want hvi, frontier or variance)", c.Strategy)
	}
	for i, o := range c.Objectives {
		if o.Output < 0 {
			return fmt.Errorf("core: acquisition Objectives[%d]: output %d is negative", i, o.Output)
		}
		if o.Variance && !o.Minimize {
			return fmt.Errorf("core: acquisition Objectives[%d] (out%d): a disagreement axis must be minimized", i, o.Output)
		}
	}
	for i, con := range c.Constraints {
		if con.Output < 0 {
			return fmt.Errorf("core: acquisition Constraints[%d]: output %d is negative", i, con.Output)
		}
		if con.Op != ">=" && con.Op != "<=" {
			return fmt.Errorf("core: acquisition Constraints[%d] (out%d): Op %q is not >= or <=", i, con.Output, con.Op)
		}
	}
	return nil
}

// Spec renders the configuration back into the grammar ParseAcquireSpec
// accepts — the canonical CLI/HTTP form.
func (c *AcquireConfig) Spec() string {
	parts := []string{string(c.Strategy)}
	for _, o := range c.Objectives {
		switch {
		case o.Variance:
			parts = append(parts, fmt.Sprintf("var=out%d", o.Output))
		case o.Minimize:
			parts = append(parts, fmt.Sprintf("min=out%d", o.Output))
		default:
			parts = append(parts, fmt.Sprintf("max=out%d", o.Output))
		}
	}
	for _, con := range c.Constraints {
		parts = append(parts, con.String())
	}
	return strings.Join(parts, ":")
}

// parseOutColumn parses the "outN" output-column form.
func parseOutColumn(s string) (int, error) {
	rest, ok := strings.CutPrefix(s, "out")
	if !ok {
		return 0, fmt.Errorf("core: acquisition spec: output %q must be of the form outN", s)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("core: acquisition spec: output %q must be of the form outN", s)
	}
	return n, nil
}

// ParseAcquireSpec parses the acquisition grammar — colon-separated
// like sweep's metric grammar:
//
//	strategy[:clause]...
//
//	strategy   = hvi | frontier | variance
//	clause     = max=outN          maximize output N's predicted mean
//	           | min=outN          minimize output N's predicted mean
//	           | var=outN          minimize members' disagreement on N
//	           | outN>=v | outN<=v constrain output N's predicted mean
//
// With no objective clauses the default pair applies: out0 maximized
// against the disagreement on out0 minimized. Examples:
//
//	hvi
//	hvi:max=out0:min=out1
//	variance:out0>=1.2
//	frontier:min=out1:out0>=1.2
func ParseAcquireSpec(spec string) (*AcquireConfig, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	cfg := &AcquireConfig{Strategy: AcquireStrategy(strings.TrimSpace(parts[0]))}
	for _, raw := range parts[1:] {
		clause := strings.TrimSpace(raw)
		switch {
		case strings.Contains(clause, ">="), strings.Contains(clause, "<="):
			op := ">="
			if strings.Contains(clause, "<=") {
				op = "<="
			}
			lhs, rhs, _ := strings.Cut(clause, op)
			out, err := parseOutColumn(strings.TrimSpace(lhs))
			if err != nil {
				return nil, err
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(rhs), 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("core: acquisition spec: constraint bound %q is not a finite number", rhs)
			}
			cfg.Constraints = append(cfg.Constraints, Constraint{Output: out, Op: op, Value: v})
		case strings.HasPrefix(clause, "max="), strings.HasPrefix(clause, "min="), strings.HasPrefix(clause, "var="):
			kind, rhs, _ := strings.Cut(clause, "=")
			out, err := parseOutColumn(strings.TrimSpace(rhs))
			if err != nil {
				return nil, err
			}
			cfg.Objectives = append(cfg.Objectives, Objective{
				Output:   out,
				Variance: kind == "var",
				Minimize: kind != "max",
			})
		default:
			return nil, fmt.Errorf("core: acquisition spec: clause %q is not max=outN, min=outN, var=outN or a constraint", clause)
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Acquirer is a pluggable batch-acquisition function: given the
// current ensemble and the encoded inputs of every already-simulated
// point, it selects the next batch from sel's drawable pool. All
// implementations hold the repo invariant — selection is bit-identical
// for any ensemble worker count and consumes the selection RNG exactly
// like ByVariance, so checkpoint resume replays it exactly.
type Acquirer interface {
	// Strategy names the acquisition function.
	Strategy() AcquireStrategy
	// Select draws up to n points. trainXs are the encoded inputs of
	// the simulated set (the predicted-frontier reference); pool sizes
	// the scored candidate pool (<=0 means 20×n).
	Select(sel *BatchSelector, ens *Ensemble, trainXs [][]float64, n, pool int) ([]int, error)
}

// NewAcquirer builds the acquirer the configuration names.
func NewAcquirer(cfg *AcquireConfig) (Acquirer, error) {
	if cfg == nil {
		return nil, fmt.Errorf("core: nil acquisition config")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &acquirer{cfg: *cfg}, nil
}

// acquirer implements all three strategies over one shared pipeline:
// draw pool → batched predictions → constraint feasibility → strategy
// score → bounded top-n selection.
type acquirer struct {
	cfg AcquireConfig
}

func (a *acquirer) Strategy() AcquireStrategy { return a.cfg.Strategy }

// poolPredictions holds the per-candidate batched predictions for the
// distinct output columns acquisition touches.
type poolPredictions struct {
	outputs []int       // distinct output columns, in first-use order
	mean    [][]float64 // mean[i][r]: predicted mean of outputs[i] on row r
	sigma   [][]float64 // sigma[i][r]: member disagreement variance
}

// column returns the slot of an output column, adding it on first use.
func (p *poolPredictions) column(output int) int {
	for i, o := range p.outputs {
		if o == output {
			return i
		}
	}
	p.outputs = append(p.outputs, output)
	return len(p.outputs) - 1
}

// predictOutputs runs one batched mean+disagreement prediction per
// distinct output column over rows encoded points.
func predictOutputs(ens *Ensemble, outputs []int, xs []float64, rows int) *poolPredictions {
	p := &poolPredictions{outputs: outputs}
	for range outputs {
		p.mean = append(p.mean, make([]float64, rows))
		p.sigma = append(p.sigma, make([]float64, rows))
	}
	for i, o := range outputs {
		ens.PredictOutputVarianceBatch(o, xs, rows, p.mean[i], p.sigma[i])
	}
	return p
}

// neededOutputs lists the distinct output columns the objectives and
// constraints touch, objectives first in declaration order.
func (a *acquirer) neededOutputs(objs []Objective) []int {
	p := &poolPredictions{}
	for _, o := range objs {
		p.column(o.Output)
	}
	for _, c := range a.cfg.Constraints {
		p.column(c.Output)
	}
	return p.outputs
}

// checkWidth validates every referenced output column against the
// trained ensemble.
func (a *acquirer) checkWidth(objs []Objective, ens *Ensemble) error {
	for _, o := range objs {
		if o.Output >= ens.Outputs() {
			return fmt.Errorf("core: acquisition objective out%d: ensemble has %d outputs", o.Output, ens.Outputs())
		}
	}
	for _, c := range a.cfg.Constraints {
		if c.Output >= ens.Outputs() {
			return fmt.Errorf("core: acquisition constraint out%d: ensemble has %d outputs", c.Output, ens.Outputs())
		}
	}
	return nil
}

// Select implements Acquirer.
func (a *acquirer) Select(sel *BatchSelector, ens *Ensemble, trainXs [][]float64, n, pool int) ([]int, error) {
	if ens == nil {
		return nil, fmt.Errorf("core: acquisition needs a trained ensemble")
	}
	objs := a.cfg.resolvedObjectives()
	if err := a.checkWidth(objs, ens); err != nil {
		return nil, err
	}
	idxs, xs := sel.drawPool(n, pool)
	if len(idxs) == 0 {
		return nil, nil
	}
	pool = len(idxs)
	preds := predictOutputs(ens, a.neededOutputs(objs), xs, pool)

	// Predicted-feasibility: candidates violating constraints rank
	// strictly after feasible ones (by violation count), so constrained
	// acquisition degrades gracefully instead of stalling when the
	// model believes nothing qualifies yet.
	violations := make([]int, pool)
	for _, con := range a.cfg.Constraints {
		col := preds.column(con.Output)
		for r := 0; r < pool; r++ {
			if !con.satisfied(preds.mean[col][r]) {
				violations[r]++
			}
		}
	}

	var scores []float64
	var err error
	switch a.cfg.Strategy {
	case AcquireVariance:
		scores = preds.sigma[preds.column(objs[0].Output)]
	case AcquireHVI, AcquireFrontier:
		scores, err = a.frontierScores(ens, trainXs, objs, preds, violations)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown acquisition strategy %q", a.cfg.Strategy)
	}
	return topScored(idxs, scores, violations, n), nil
}

// objectiveSpace is the normalized minimization space the frontier
// strategies score in: every objective mapped to [0,1] with 0 best,
// bounds fitted over reference ∪ candidate values so the mapping is a
// pure function of the round's predictions.
type objectiveSpace struct {
	objs   []Objective
	lo, hi []float64
}

// fit computes per-objective bounds over the given value columns.
func fitObjectiveSpace(objs []Objective, cols ...[][]float64) *objectiveSpace {
	s := &objectiveSpace{objs: objs, lo: make([]float64, len(objs)), hi: make([]float64, len(objs))}
	for o := range objs {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range cols {
			for _, v := range c[o] {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		s.lo[o], s.hi[o] = lo, hi
	}
	return s
}

// normalize maps one objective value into the minimization space; a
// degenerate (constant) axis maps to 0.
func (s *objectiveSpace) normalize(o int, v float64) float64 {
	span := s.hi[o] - s.lo[o]
	if span <= 0 {
		return 0
	}
	if s.objs[o].Minimize {
		return (v - s.lo[o]) / span
	}
	return (s.hi[o] - v) / span
}

// span returns the raw width of one objective axis.
func (s *objectiveSpace) span(o int) float64 { return s.hi[o] - s.lo[o] }

// objectiveValue extracts one candidate's raw value on one objective.
func objectiveValue(preds *poolPredictions, obj Objective, r int) float64 {
	col := preds.column(obj.Output)
	if obj.Variance {
		return preds.sigma[col][r]
	}
	return preds.mean[col][r]
}

// frontierScores computes the hvi and frontier-uncertainty scores: both
// need the predicted frontier of the already-simulated (and predicted
// feasible) set over the objective axes.
func (a *acquirer) frontierScores(ens *Ensemble, trainXs [][]float64, objs []Objective, preds *poolPredictions, violations []int) ([]float64, error) {
	pool := len(violations)
	// Predict the simulated set on the same output columns.
	var ref *poolPredictions
	trainRows := len(trainXs)
	if trainRows > 0 {
		width := ens.Inputs()
		flat := make([]float64, trainRows*width)
		for i, x := range trainXs {
			copy(flat[i*width:(i+1)*width], x)
		}
		ref = predictOutputs(ens, preds.outputs, flat, trainRows)
	} else {
		ref = &poolPredictions{outputs: preds.outputs}
		for range preds.outputs {
			ref.mean = append(ref.mean, nil)
			ref.sigma = append(ref.sigma, nil)
		}
	}

	// Objective-major value columns for bound fitting.
	candCols := make([][]float64, len(objs))
	refCols := make([][]float64, len(objs))
	for o, obj := range objs {
		candCols[o] = make([]float64, pool)
		for r := 0; r < pool; r++ {
			candCols[o][r] = objectiveValue(preds, obj, r)
		}
		refCols[o] = make([]float64, trainRows)
		for r := 0; r < trainRows; r++ {
			refCols[o][r] = objectiveValue(ref, obj, r)
		}
	}
	space := fitObjectiveSpace(objs, candCols, refCols)

	// The reference frontier: predicted-feasible simulated points,
	// reduced in normalized space. minimize is all-true there.
	minimize := make([]bool, len(objs))
	for o := range minimize {
		minimize[o] = true
	}
	front := pareto.NewFrontier(minimize)
	vec := make([]float64, len(objs))
	for r := 0; r < trainRows; r++ {
		feasible := true
		for _, con := range a.cfg.Constraints {
			if !con.satisfied(ref.mean[ref.column(con.Output)][r]) {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		for o := range objs {
			vec[o] = space.normalize(o, refCols[o][r])
		}
		if err := front.Offer(r, vec); err != nil {
			return nil, fmt.Errorf("core: acquisition reference frontier: %w", err)
		}
	}
	fpts := front.Sorted()
	frontVecs := make([][]float64, len(fpts))
	for i, p := range fpts {
		frontVecs[i] = p.Values
	}

	scores := make([]float64, pool)
	switch a.cfg.Strategy {
	case AcquireHVI:
		// Exclusive hypervolume contribution against the reference
		// point just beyond the normalized unit box, so boundary points
		// still contribute.
		hvRef := make([]float64, len(objs))
		for o := range hvRef {
			hvRef[o] = 1.1
		}
		base := Hypervolume(frontVecs, hvRef)
		with := make([][]float64, len(frontVecs), len(frontVecs)+1)
		copy(with, frontVecs)
		for r := 0; r < pool; r++ {
			cand := make([]float64, len(objs))
			for o := range objs {
				cand[o] = space.normalize(o, candCols[o][r])
			}
			scores[r] = Hypervolume(append(with, cand), hvRef) - base
		}
	case AcquireFrontier:
		// Straddle detection: the candidate's optimistic corner (every
		// objective improved by one member-disagreement σ) escapes the
		// frontier while its pessimistic corner is dominated by it —
		// the ensemble cannot agree which side of the frontier the
		// point falls on, so simulating it is maximally informative.
		// Straddling candidates rank above all others; both groups
		// order by total normalized disagreement.
		const straddleBonus = 1e3
		opt := make([]float64, len(objs))
		pess := make([]float64, len(objs))
		for r := 0; r < pool; r++ {
			sigSum := 0.0
			for o, obj := range objs {
				z := space.normalize(o, candCols[o][r])
				var nsig float64
				if !obj.Variance && space.span(o) > 0 {
					col := preds.column(obj.Output)
					nsig = math.Sqrt(preds.sigma[col][r]) / space.span(o)
				}
				opt[o] = z - nsig
				pess[o] = z + nsig
				sigSum += nsig
			}
			optEscapes := !dominatedBy(frontVecs, minimize, opt)
			pessDominated := dominatedBy(frontVecs, minimize, pess)
			scores[r] = sigSum
			if optEscapes && pessDominated {
				scores[r] += straddleBonus
			}
		}
	}
	return scores, nil
}

// dominatedBy reports whether any frontier vector weakly dominates v.
func dominatedBy(front [][]float64, minimize []bool, v []float64) bool {
	for _, f := range front {
		if pareto.Dominates(minimize, f, v) {
			return true
		}
	}
	return false
}

// acqScored pairs a candidate with its violation count, acquisition
// score and draw position — the deterministic total order acquisition
// selects under: fewer violations first, then higher score, then
// earlier draw.
type acqScored struct {
	idx, pos   int
	violations int
	score      float64
}

// acqWeaker orders candidates for the bounded min-heap: a is weaker
// than b when it violates more constraints, scores lower, or ties were
// drawn later. With zero violations everywhere it is exactly
// topVariance's order.
func acqWeaker(a, b acqScored) bool {
	if a.violations != b.violations {
		return a.violations > b.violations
	}
	if a.score != b.score {
		return a.score < b.score
	}
	return a.pos > b.pos
}

// acqHeap is a min-heap whose root is the weakest kept candidate.
type acqHeap []acqScored

func (h acqHeap) Len() int            { return len(h) }
func (h acqHeap) Less(i, j int) bool  { return acqWeaker(h[i], h[j]) }
func (h acqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *acqHeap) Push(x interface{}) { *h = append(*h, x.(acqScored)) }
func (h *acqHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// topScored returns the n best candidates under the acquisition order,
// strongest first, via the same bounded min-heap shape as topVariance.
func topScored(idxs []int, scores []float64, violations []int, n int) []int {
	if n > len(idxs) {
		n = len(idxs)
	}
	if n <= 0 {
		return nil
	}
	h := make(acqHeap, 0, n)
	for i, idx := range idxs {
		c := acqScored{idx: idx, pos: i, violations: violations[i], score: scores[i]}
		if len(h) < n {
			heap.Push(&h, c)
		} else if acqWeaker(h[0], c) {
			h[0] = c
			heap.Fix(&h, 0)
		}
	}
	sort.Slice(h, func(i, j int) bool { return acqWeaker(h[j], h[i]) })
	out := make([]int, len(h))
	for i, c := range h {
		out[i] = c.idx
	}
	return out
}
