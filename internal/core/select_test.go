package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/stats"
)

// naiveTopVariance is the sorted reference defining topVariance's
// contract: highest variance first, exact ties by earlier draw order.
func naiveTopVariance(idxs []int, vs []float64, n int) []int {
	type cand struct {
		idx, pos int
		v        float64
	}
	cands := make([]cand, len(idxs))
	for i, idx := range idxs {
		cands[i] = cand{idx, i, vs[i]}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].v != cands[j].v {
			return cands[i].v > cands[j].v
		}
		return cands[i].pos < cands[j].pos
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].idx
	}
	return out
}

func TestTopVarianceMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		pool := 1 + rng.Intn(400)
		n := 1 + rng.Intn(pool)
		idxs := make([]int, pool)
		vs := make([]float64, pool)
		for i := range idxs {
			idxs[i] = i
			// Coarse quantization forces plenty of exact ties.
			vs[i] = float64(rng.Intn(8))
		}
		got := topVariance(idxs, vs, n)
		want := naiveTopVariance(idxs, vs, n)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d picks, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (pool=%d n=%d): pick %d is %d, want %d",
					trial, pool, n, i, got[i], want[i])
			}
		}
	}
}

func TestTopVarianceBounds(t *testing.T) {
	if got := topVariance(nil, nil, 5); got != nil {
		t.Fatalf("empty pool returned %v", got)
	}
	got := topVariance([]int{3, 9}, []float64{1, 2}, 5)
	if len(got) != 2 || got[0] != 9 || got[1] != 3 {
		t.Fatalf("n beyond pool returned %v, want [9 3]", got)
	}
}

// selectionSortTopVariance is the literal O(n·pool) partial selection
// sort that selectByVariance used before the heap, kept only so the
// benchmark can quantify the win.
func selectionSortTopVariance(idxs []int, vs []float64, n int) []int {
	type cand struct {
		idx int
		v   float64
	}
	cands := make([]cand, len(idxs))
	for i, idx := range idxs {
		cands[i] = cand{idx, vs[i]}
	}
	if n > len(cands) {
		n = len(cands)
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].v > cands[best].v {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// BenchmarkTopVariance measures the top-n extraction alone at the pool
// sizes where active learning hurts: 50-point batches over 10k–100k
// candidate pools. The heap is O(pool·log n) against the selection
// sort's O(n·pool).
func BenchmarkTopVariance(b *testing.B) {
	for _, pool := range []int{10_000, 100_000} {
		rng := stats.NewRNG(11)
		idxs := make([]int, pool)
		vs := make([]float64, pool)
		for i := range idxs {
			idxs[i] = i
			vs[i] = rng.Float64()
		}
		const n = 50
		b.Run(fmt.Sprintf("heap/pool=%d", pool), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				topVariance(idxs, vs, n)
			}
		})
		b.Run(fmt.Sprintf("selection-sort/pool=%d", pool), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				selectionSortTopVariance(idxs, vs, n)
			}
		})
	}
}
