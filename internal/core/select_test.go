package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/stats"
)

// naiveTopVariance is the sorted reference defining topVariance's
// contract: highest variance first, exact ties by earlier draw order.
func naiveTopVariance(idxs []int, vs []float64, n int) []int {
	type cand struct {
		idx, pos int
		v        float64
	}
	cands := make([]cand, len(idxs))
	for i, idx := range idxs {
		cands[i] = cand{idx, i, vs[i]}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].v != cands[j].v {
			return cands[i].v > cands[j].v
		}
		return cands[i].pos < cands[j].pos
	})
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].idx
	}
	return out
}

func TestTopVarianceMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		pool := 1 + rng.Intn(400)
		n := 1 + rng.Intn(pool)
		idxs := make([]int, pool)
		vs := make([]float64, pool)
		for i := range idxs {
			idxs[i] = i
			// Coarse quantization forces plenty of exact ties.
			vs[i] = float64(rng.Intn(8))
		}
		got := topVariance(idxs, vs, n)
		want := naiveTopVariance(idxs, vs, n)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d picks, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (pool=%d n=%d): pick %d is %d, want %d",
					trial, pool, n, i, got[i], want[i])
			}
		}
	}
}

func TestTopVarianceBounds(t *testing.T) {
	if got := topVariance(nil, nil, 5); got != nil {
		t.Fatalf("empty pool returned %v", got)
	}
	got := topVariance([]int{3, 9}, []float64{1, 2}, 5)
	if len(got) != 2 || got[0] != 9 || got[1] != 3 {
		t.Fatalf("n beyond pool returned %v, want [9 3]", got)
	}
}

// selectionSortTopVariance is the literal O(n·pool) partial selection
// sort that selectByVariance used before the heap, kept only so the
// benchmark can quantify the win.
func selectionSortTopVariance(idxs []int, vs []float64, n int) []int {
	type cand struct {
		idx int
		v   float64
	}
	cands := make([]cand, len(idxs))
	for i, idx := range idxs {
		cands[i] = cand{idx, vs[i]}
	}
	if n > len(cands) {
		n = len(cands)
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].v > cands[best].v {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].idx
	}
	return out
}

// historicRejectionDraw is the literal rejection loop Random and
// ByVariance always used: uniform draws over the whole space,
// re-drawing reserved or repeated points. It defines the RNG
// consumption the non-fallback regime of drawDistinct must reproduce
// draw for draw.
func historicRejectionDraw(s *BatchSelector, rng *stats.RNG, k int) []int {
	if avail := s.Remaining(); k > avail {
		k = avail
	}
	if k <= 0 {
		return nil
	}
	size := s.sp.Size()
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for len(out) < k {
		idx := rng.Intn(size)
		if s.reserved[idx] || seen[idx] {
			continue
		}
		seen[idx] = true
		out = append(out, idx)
	}
	return out
}

// enumerationDraw is the fallback reference: drawable points in
// ascending order, then a k-step partial Fisher–Yates — exactly k Intn
// draws.
func enumerationDraw(s *BatchSelector, rng *stats.RNG, k int) []int {
	cand := make([]int, 0, s.Remaining())
	for idx := 0; idx < s.sp.Size(); idx++ {
		if !s.reserved[idx] {
			cand = append(cand, idx)
		}
	}
	if k > len(cand) {
		k = len(cand)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
		out[i] = cand[i]
	}
	return out
}

// reserveFirst reserves the lowest n indices of the selector's space.
func reserveFirst(s *BatchSelector, n int) {
	for idx := 0; idx < n; idx++ {
		s.Reserve(idx)
	}
}

// TestDrawDistinctParityOutsideFallback proves the coupon-collector fix
// changed nothing outside the fallback regime: for reservation states
// where (Remaining−k+1)·enumFallbackDivisor ≥ Size, drawDistinct
// returns the historic rejection loop's exact sequence and leaves the
// RNG in the exact state the historic loop would have — so existing
// seeds, checkpoints and published runs replay bit-identically.
func TestDrawDistinctParityOutsideFallback(t *testing.T) {
	sp := synthSpace()
	enc := newTestEncoder(sp)
	size := sp.Size()
	for _, k := range []int{1, 4, 25} {
		// Densest reservation state still outside the fallback regime
		// for this k, plus lighter ones.
		maxReserved := size - (size+enumFallbackDivisor-1)/enumFallbackDivisor - k + 1
		for _, reserved := range []int{0, size / 2, maxReserved} {
			if reserved < 0 {
				continue
			}
			avail := size - reserved
			if (avail-k+1)*enumFallbackDivisor < size {
				t.Fatalf("k=%d reserved=%d: test case landed inside the fallback regime", k, reserved)
			}
			s := NewBatchSelector(sp, enc, stats.NewRNG(101))
			reserveFirst(s, reserved)
			ref := NewBatchSelector(sp, enc, stats.NewRNG(101))
			reserveFirst(ref, reserved)
			refRNG := stats.NewRNG(101)
			for round := 0; round < 3; round++ {
				got := s.drawDistinct(k)
				want := historicRejectionDraw(ref, refRNG, k)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("k=%d reserved=%d round %d: %v != historic %v", k, reserved, round, got, want)
				}
				if s.RNG().State() != refRNG.State() {
					t.Fatalf("k=%d reserved=%d round %d: RNG state diverged from historic loop", k, reserved, round)
				}
			}
		}
	}
}

// TestDrawDistinctNearExhaustionFallback pins the fallback regime: with
// the drawable pool nearly exhausted, drawDistinct must terminate in
// exactly k RNG draws (the partial Fisher–Yates of the enumeration
// reference), return distinct unreserved points, and remain a pure
// function of (seed, reservation state).
func TestDrawDistinctNearExhaustionFallback(t *testing.T) {
	sp := synthSpace()
	enc := newTestEncoder(sp)
	size := sp.Size()
	const k = 4
	for _, avail := range []int{k + 1, k, 2} {
		s := NewBatchSelector(sp, enc, stats.NewRNG(55))
		reserveFirst(s, size-avail)
		if (avail-min(k, avail)+1)*enumFallbackDivisor >= size {
			t.Fatalf("avail=%d: not in the fallback regime", avail)
		}
		ref := NewBatchSelector(sp, enc, stats.NewRNG(55))
		reserveFirst(ref, size-avail)
		refRNG := stats.NewRNG(55)
		got := s.drawDistinct(k)
		want := enumerationDraw(ref, refRNG, k)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("avail=%d: %v != enumeration reference %v", avail, got, want)
		}
		if s.RNG().State() != refRNG.State() {
			t.Fatalf("avail=%d: consumed draws beyond the k-step Fisher–Yates", avail)
		}
		seen := make(map[int]bool)
		for _, idx := range got {
			if s.IsReserved(idx) || seen[idx] {
				t.Fatalf("avail=%d: draw %v repeats or hits reserved points", avail, got)
			}
			seen[idx] = true
		}
		if wantLen := min(k, avail); len(got) != wantLen {
			t.Fatalf("avail=%d: drew %d points, want %d", avail, len(got), wantLen)
		}
	}
}

// TestRandomDrainsExhaustedPool is the user-visible symptom the fallback
// fixes: draining the last points of a large space must terminate
// promptly and return every drawable point exactly once.
func TestRandomDrainsExhaustedPool(t *testing.T) {
	sp := synthSpace()
	enc := newTestEncoder(sp)
	s := NewBatchSelector(sp, enc, stats.NewRNG(9))
	var drawn []int
	for s.Remaining() > 0 {
		batch := s.Random(7)
		if len(batch) == 0 {
			t.Fatalf("empty batch with %d points remaining", s.Remaining())
		}
		for _, idx := range batch {
			s.Reserve(idx)
			drawn = append(drawn, idx)
		}
	}
	if len(drawn) != sp.Size() {
		t.Fatalf("drained %d points from a %d-point space", len(drawn), sp.Size())
	}
	sort.Ints(drawn)
	for i, idx := range drawn {
		if idx != i {
			t.Fatalf("point %d missing or repeated in drained sequence", i)
		}
	}
	if got := s.Random(3); got != nil {
		t.Fatalf("exhausted pool returned %v", got)
	}
}

// BenchmarkTopVariance measures the top-n extraction alone at the pool
// sizes where active learning hurts: 50-point batches over 10k–100k
// candidate pools. The heap is O(pool·log n) against the selection
// sort's O(n·pool).
func BenchmarkTopVariance(b *testing.B) {
	for _, pool := range []int{10_000, 100_000} {
		rng := stats.NewRNG(11)
		idxs := make([]int, pool)
		vs := make([]float64, pool)
		for i := range idxs {
			idxs[i] = i
			vs[i] = rng.Float64()
		}
		const n = 50
		b.Run(fmt.Sprintf("heap/pool=%d", pool), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				topVariance(idxs, vs, n)
			}
		})
		b.Run(fmt.Sprintf("selection-sort/pool=%d", pool), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				selectionSortTopVariance(idxs, vs, n)
			}
		})
	}
}
