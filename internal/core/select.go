package core

import (
	"container/heap"
	"sort"

	"repro/internal/encoding"
	"repro/internal/space"
	"repro/internal/stats"
)

// BatchSelector implements the explorer's batch-selection strategies
// over one design space, tracking which points remain drawable. It is
// shared by the sequential core.Explorer and the pipelined
// explore.Driver so that both consume the RNG in exactly the same
// order — the property the driver's deterministic-parity tests rely
// on. It is not safe for concurrent use; the driver serializes
// selection on its orchestration goroutine.
type BatchSelector struct {
	sp       *space.Space
	enc      *encoding.Encoder
	rng      *stats.RNG
	reserved map[int]bool // simulated, excluded, or quarantined points
}

// NewBatchSelector builds a selector drawing from sp with rng. Every
// point starts drawable; callers Reserve the ones that must never be
// returned (held-out evaluation sets, already-simulated points,
// quarantined failures).
func NewBatchSelector(sp *space.Space, enc *encoding.Encoder, rng *stats.RNG) *BatchSelector {
	return &BatchSelector{sp: sp, enc: enc, rng: rng, reserved: make(map[int]bool)}
}

// Reserve permanently removes a design point from the draw pool.
func (s *BatchSelector) Reserve(idx int) { s.reserved[idx] = true }

// IsReserved reports whether idx has been reserved.
func (s *BatchSelector) IsReserved(idx int) bool { return s.reserved[idx] }

// Remaining returns the number of still-drawable design points.
func (s *BatchSelector) Remaining() int { return s.sp.Size() - len(s.reserved) }

// RNG exposes the selector's generator, so checkpointing can capture
// and restore the exact selection stream.
func (s *BatchSelector) RNG() *stats.RNG { return s.rng }

// enumFallbackDivisor decides when drawDistinct abandons rejection
// sampling for the enumeration fallback: once the worst-case accept
// probability of the rejection loop — (Remaining−k+1)/Size for the
// final draw — falls below 1/enumFallbackDivisor, the expected RNG
// draws per accept exceed the divisor and the loop is deep in
// coupon-collector territory (O(size·log size) draws to find the last
// few drawable points). One O(size) enumeration is strictly cheaper
// there, and bounded.
const enumFallbackDivisor = 16

// drawDistinct draws k distinct unreserved indices, consuming the
// selection RNG deterministically. Away from pool exhaustion it is the
// historic rejection loop — uniform draws over the whole space,
// re-drawing reserved or repeated points — and consumes the RNG
// exactly as it always has, which checkpoint resume bit-identity
// depends on. Near exhaustion (see enumFallbackDivisor) it switches to
// enumerating the drawable points in ascending order and taking a
// k-step partial Fisher–Yates shuffle: exactly k Intn draws, same
// uniform-without-replacement distribution, no unbounded tail. The
// regimes consume the RNG differently, so the switch threshold is part
// of the selection contract: a given (seed, reservation state) is
// always in exactly one regime.
func (s *BatchSelector) drawDistinct(k int) []int {
	avail := s.Remaining()
	if k > avail {
		k = avail
	}
	if k <= 0 {
		return nil
	}
	size := s.sp.Size()
	if (avail-k+1)*enumFallbackDivisor < size {
		cand := make([]int, 0, avail)
		for idx := 0; idx < size; idx++ {
			if !s.reserved[idx] {
				cand = append(cand, idx)
			}
		}
		out := make([]int, k)
		for i := 0; i < k; i++ {
			j := i + s.rng.Intn(len(cand)-i)
			cand[i], cand[j] = cand[j], cand[i]
			out[i] = cand[i]
		}
		return out
	}
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for len(out) < k {
		idx := s.rng.Intn(size)
		if s.reserved[idx] || seen[idx] {
			continue
		}
		seen[idx] = true
		out = append(out, idx)
	}
	return out
}

// Random draws up to n distinct unreserved points uniformly — the
// paper's §3.3 sampling. The returned points are NOT reserved; the
// caller reserves them once their simulations are recorded (or
// quarantined), keeping selection side-effect-free until an oracle
// result actually exists.
func (s *BatchSelector) Random(n int) []int {
	return s.drawDistinct(n)
}

// drawPool draws the candidate pool every ensemble-scored selection
// strategy scores over: up to pool distinct unreserved points (pool
// <= 0 selects 20×n, clamped to the drawable count), returned with
// their encoded inputs. The draw consumes the selection RNG exactly
// like Random's, so every strategy sharing this pool replays
// bit-identically from a checkpoint.
func (s *BatchSelector) drawPool(n, pool int) ([]int, []float64) {
	if avail := s.Remaining(); n > avail {
		n = avail
	}
	if n <= 0 {
		return nil, nil
	}
	if pool <= 0 {
		pool = 20 * n
	}
	// Clamp to the points actually drawable: reserved covers simulated,
	// excluded and quarantined indices, none of which are candidates.
	if avail := s.Remaining(); pool > avail {
		pool = avail
	}
	idxs := s.drawDistinct(pool)
	width := s.enc.Width()
	xs := make([]float64, len(idxs)*width)
	for i, idx := range idxs {
		s.enc.EncodeIndex(idx, xs[i*width:(i+1)*width])
	}
	return idxs, xs
}

// ByVariance scores a random pool of unreserved candidates with the
// ensemble and returns the n on which its members disagree most, in
// decreasing disagreement order (ties broken by draw order) — the
// Chapter 7 active-learning batch. pool <= 0 selects 20×n candidates.
// Like Random, the returned points are not reserved.
func (s *BatchSelector) ByVariance(ens *Ensemble, n, pool int) []int {
	idxs, xs := s.drawPool(n, pool)
	if len(idxs) == 0 {
		return nil
	}
	_, vs := ens.PredictVarianceBatch(xs, len(idxs), nil, nil)
	return topVariance(idxs, vs, n)
}

// Acquire selects up to n points with the given acquisition function —
// the frontier-aware generalization of ByVariance. The candidate pool
// is drawn exactly as ByVariance draws it (same RNG stream), trainXs
// are the encoded inputs of the already-simulated points (the
// predicted-frontier reference set), and the returned points are not
// reserved.
func (s *BatchSelector) Acquire(acq Acquirer, ens *Ensemble, trainXs [][]float64, n, pool int) ([]int, error) {
	return acq.Select(s, ens, trainXs, n, pool)
}

// scored pairs a candidate with its ensemble disagreement and its draw
// position, the deterministic tie-breaker.
type scored struct {
	idx, pos int
	v        float64
}

// weaker orders candidates for the bounded min-heap: a is weaker than b
// when it has lower variance, or equal variance drawn later.
func weaker(a, b scored) bool {
	if a.v != b.v {
		return a.v < b.v
	}
	return a.pos > b.pos
}

// varianceHeap is a min-heap whose root is the weakest kept candidate.
type varianceHeap []scored

func (h varianceHeap) Len() int            { return len(h) }
func (h varianceHeap) Less(i, j int) bool  { return weaker(h[i], h[j]) }
func (h varianceHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *varianceHeap) Push(x interface{}) { *h = append(*h, x.(scored)) }
func (h *varianceHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// topVariance returns the n candidates with the highest variance in
// decreasing order (ties by draw position), via a bounded min-heap:
// O(pool·log n) against the O(n·pool) selection-sort it replaced,
// which dominated a round's cost at 10k+ candidate pools.
func topVariance(idxs []int, vs []float64, n int) []int {
	if n > len(idxs) {
		n = len(idxs)
	}
	if n <= 0 {
		return nil
	}
	h := make(varianceHeap, 0, n)
	for i, idx := range idxs {
		c := scored{idx: idx, pos: i, v: vs[i]}
		if len(h) < n {
			heap.Push(&h, c)
		} else if weaker(h[0], c) {
			h[0] = c
			heap.Fix(&h, 0)
		}
	}
	sort.Slice(h, func(i, j int) bool { return weaker(h[j], h[i]) })
	out := make([]int, len(h))
	for i, c := range h {
		out[i] = c.idx
	}
	return out
}
