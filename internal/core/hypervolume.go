package core

import "sort"

// Hypervolume computes the exact hypervolume dominated by pts with
// respect to the reference point ref, in minimization space: the
// measure of the region { x : ∃p ∈ pts, p ≤ x ≤ ref }. Points with any
// coordinate at or beyond ref contribute nothing and are ignored.
//
// The algorithm is the classic dimension-sweep slicing recursion: sort
// by the last coordinate, accumulate the projected points, and sum
// slab thickness × (d−1)-dimensional cross-section. Exact and fully
// deterministic — ties sort lexicographically, so the summation order
// is a pure function of the point multiset. Cost is fine for the small
// frontiers acquisition works with (exponential in dimensions only for
// pathological inputs; the common 2–3 objective case is near-linear in
// frontier size after the sort).
//
// The input slices are not mutated; the recursion works on a private
// copy of the top-level slice (the coordinate rows are shared,
// read-only).
func Hypervolume(pts [][]float64, ref []float64) float64 {
	kept := make([][]float64, 0, len(pts))
	for _, p := range pts {
		inside := true
		for m := range ref {
			if p[m] >= ref[m] {
				inside = false
				break
			}
		}
		if inside {
			kept = append(kept, p)
		}
	}
	return hvSweep(kept, ref)
}

// hvSweep is the slicing recursion over an already-filtered point set;
// it may reorder pts.
func hvSweep(pts [][]float64, ref []float64) float64 {
	d := len(ref)
	if len(pts) == 0 {
		return 0
	}
	if d == 1 {
		best := 0.0
		for _, p := range pts {
			if v := ref[0] - p[0]; v > best {
				best = v
			}
		}
		return best
	}
	// Sort by the sweep coordinate, breaking ties lexicographically on
	// the remaining coordinates so the floating-point summation order
	// below never depends on the caller's ordering.
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a[d-1] != b[d-1] {
			return a[d-1] < b[d-1]
		}
		for m := 0; m < d-1; m++ {
			if a[m] != b[m] {
				return a[m] < b[m]
			}
		}
		return false
	})
	total := 0.0
	accum := make([][]float64, 0, len(pts))
	for i := 0; i < len(pts); {
		z := pts[i][d-1]
		for ; i < len(pts) && pts[i][d-1] == z; i++ {
			accum = append(accum, pts[i][:d-1])
		}
		zNext := ref[d-1]
		if i < len(pts) {
			zNext = pts[i][d-1]
		}
		if zNext > z {
			total += (zNext - z) * hvSweep(accum, ref[:d-1])
		}
	}
	return total
}
