package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/space"
	"repro/internal/stats"
)

// synthSpace is a small analytic design space for model tests: three
// cardinal axes and one nominal axis.
func synthSpace() *space.Space {
	return space.New("synth", []space.Param{
		{Name: "a", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8}},
		{Name: "b", Kind: space.Cardinal, Values: []float64{1, 2, 3, 4, 5}},
		{Name: "c", Kind: space.Continuous, Values: []float64{0.5, 1.0, 1.5}},
		{Name: "mode", Kind: space.Nominal, Levels: []string{"x", "y"}},
	})
}

// synthTarget is a smooth positive function of a design point,
// standing in for simulated IPC.
func synthTarget(sp *space.Space, idx int) float64 {
	c := sp.Choices(idx)
	a := sp.Value(c, 0)
	b := sp.Value(c, 1)
	f := sp.Value(c, 2)
	v := 0.4 + 0.3*math.Log2(a) + 0.1*b*f
	if sp.LevelName(c, 3) == "y" {
		v *= 1.25
	}
	return v
}

// synthOracle evaluates synthTarget, counting calls.
type synthOracle struct {
	sp    *space.Space
	calls int
	fail  bool
}

func (o *synthOracle) Evaluate(indices []int) ([][]float64, error) {
	if o.fail {
		return nil, fmt.Errorf("synthetic oracle failure")
	}
	out := make([][]float64, len(indices))
	for i, idx := range indices {
		o.calls++
		out[i] = []float64{synthTarget(o.sp, idx)}
	}
	return out, nil
}

func fastModel() ModelConfig {
	cfg := DefaultModelConfig()
	cfg.Train.MaxEpochs = 500
	cfg.Train.Patience = 80
	return cfg
}

func TestModelConfigValidate(t *testing.T) {
	good := DefaultModelConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Folds = 2
	if bad.Validate() == nil {
		t.Fatal("2 folds accepted (needs train/ES/test)")
	}
	bad = good
	bad.Hidden = nil
	if bad.Validate() == nil {
		t.Fatal("no hidden layers accepted")
	}
	bad = good
	bad.LearningRate = 0
	if bad.Validate() == nil {
		t.Fatal("zero learning rate accepted")
	}
}

func TestPaperConfigFaithful(t *testing.T) {
	cfg := PaperConfig()
	if cfg.LearningRate != 0.001 || cfg.Momentum != 0.5 || cfg.InitRange != 0.01 {
		t.Fatal("paper hyperparameters wrong")
	}
	if cfg.Folds != 10 || len(cfg.Hidden) != 1 || cfg.Hidden[0] != 16 {
		t.Fatal("paper architecture wrong")
	}
	if cfg.LogTarget || !cfg.Train.WeightedPresentation {
		t.Fatal("paper config must use linear targets with weighted presentation")
	}
}

func TestTrainEnsembleAccuracyOnSmoothFunction(t *testing.T) {
	sp := synthSpace()
	rng := stats.NewRNG(1)
	train := sp.Sample(rng, 80)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	enc := newTestEncoder(sp)
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{synthTarget(sp, idx)}
	}
	ens, err := TrainEnsemble(x, y, fastModel())
	if err != nil {
		t.Fatal(err)
	}
	if ens.Members() != 10 || ens.Outputs() != 1 {
		t.Fatalf("ensemble shape: %d members, %d outputs", ens.Members(), ens.Outputs())
	}
	// True error on the rest of the space.
	var errs []float64
	for idx := 0; idx < sp.Size(); idx++ {
		truth := synthTarget(sp, idx)
		pred := ens.Predict(enc.EncodeIndex(idx, nil))
		errs = append(errs, math.Abs(pred-truth)/truth*100)
	}
	mean := stats.Mean(errs)
	if mean > 8 {
		t.Fatalf("mean error %v%% on a smooth 4-axis function with 2/3 of the space sampled", mean)
	}
	// The cross-validation estimate must be in the same ballpark.
	est := ens.Estimate()
	if est.MeanErr <= 0 || math.Abs(est.MeanErr-mean) > 6 {
		t.Fatalf("estimate %v%% far from true %v%%", est.MeanErr, mean)
	}
	if est.Points != len(train) {
		t.Fatalf("estimate pooled %d points, want %d", est.Points, len(train))
	}
}

func TestTrainEnsembleInputValidation(t *testing.T) {
	cfg := fastModel()
	x := [][]float64{{1}, {2}}
	if _, err := TrainEnsemble(x, [][]float64{{1}}, cfg); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := TrainEnsemble(x, [][]float64{{1}, {2}}, cfg); err == nil {
		t.Fatal("fewer examples than folds accepted")
	}
	xs := make([][]float64, 12)
	ys := make([][]float64, 12)
	for i := range xs {
		xs[i] = []float64{float64(i)}
		ys[i] = []float64{}
	}
	if _, err := TrainEnsemble(xs, ys, cfg); err == nil {
		t.Fatal("empty target vectors accepted")
	}
}

func TestPredictVariance(t *testing.T) {
	sp := synthSpace()
	rng := stats.NewRNG(2)
	train := sp.Sample(rng, 40)
	enc := newTestEncoder(sp)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{synthTarget(sp, idx)}
	}
	ens, err := TrainEnsemble(x, y, fastModel())
	if err != nil {
		t.Fatal(err)
	}
	mean, variance := ens.PredictVariance(x[0])
	if variance < 0 {
		t.Fatalf("negative variance %v", variance)
	}
	if math.Abs(mean-ens.Predict(x[0])) > 1e-9 {
		t.Fatalf("PredictVariance mean %v != Predict %v", mean, ens.Predict(x[0]))
	}
}

func TestMultiTargetEnsemble(t *testing.T) {
	sp := synthSpace()
	rng := stats.NewRNG(3)
	train := sp.Sample(rng, 60)
	enc := newTestEncoder(sp)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		v := synthTarget(sp, idx)
		y[i] = []float64{v, v * 0.5, 1 / v} // correlated auxiliaries
	}
	ens, err := TrainEnsemble(x, y, fastModel())
	if err != nil {
		t.Fatal(err)
	}
	if ens.Outputs() != 3 {
		t.Fatalf("outputs = %d", ens.Outputs())
	}
	out := ens.PredictAll(x[0])
	if len(out) != 3 {
		t.Fatalf("PredictAll returned %d values", len(out))
	}
	// Auxiliary predictions should track their definitions loosely.
	if math.Abs(out[1]-out[0]*0.5) > 0.2*out[0] {
		t.Fatalf("auxiliary target 1 inconsistent: %v vs %v", out[1], out[0]*0.5)
	}
}

func TestLogTargetHandlesWideRange(t *testing.T) {
	// Targets spanning two orders of magnitude: log-target training
	// should yield much lower percentage error on the small ones.
	n := 120
	x := make([][]float64, n)
	y := make([][]float64, n)
	rng := stats.NewRNG(4)
	for i := range x {
		v := rng.Float64()
		x[i] = []float64{v}
		y[i] = []float64{0.01 * math.Pow(100, v)} // 0.01..1.0
	}
	run := func(log bool) float64 {
		cfg := fastModel()
		cfg.LogTarget = log
		cfg.Train.WeightedPresentation = false
		ens, err := TrainEnsemble(x, y, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var errs []float64
		for i := range x {
			p := ens.Predict(x[i])
			errs = append(errs, math.Abs(p-y[i][0])/y[i][0]*100)
		}
		return stats.Mean(errs)
	}
	logErr := run(true)
	linErr := run(false)
	if logErr >= linErr {
		t.Fatalf("log targets (%v%%) not better than linear (%v%%) on 100x-range data", logErr, linErr)
	}
}

func TestFoldAssignmentsDisjointAndRotating(t *testing.T) {
	// Verify the Figure 3.3 fold layout property indirectly: with k
	// folds, every member must be trained without ever seeing its test
	// fold. We test by construction: (m+k-2)%k and (m+k-1)%k are
	// distinct for k >= 2 and cover all folds as m varies.
	k := 10
	usedES := map[int]bool{}
	usedTest := map[int]bool{}
	for m := 0; m < k; m++ {
		es := (m + k - 2) % k
		test := (m + k - 1) % k
		if es == test {
			t.Fatalf("member %d: ES fold equals test fold", m)
		}
		usedES[es] = true
		usedTest[test] = true
	}
	if len(usedES) != k || len(usedTest) != k {
		t.Fatal("ES/test folds do not rotate over all folds")
	}
}

func TestEnsembleDeterministicGivenSeed(t *testing.T) {
	sp := synthSpace()
	rng := stats.NewRNG(5)
	train := sp.Sample(rng, 40)
	enc := newTestEncoder(sp)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{synthTarget(sp, idx)}
	}
	cfg := fastModel()
	cfg.Seed = 99
	a, err := TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Predict(x[0]) != b.Predict(x[0]) {
		t.Fatal("same-seed ensembles predict differently")
	}
	if a.Estimate() != b.Estimate() {
		t.Fatal("same-seed ensembles estimate differently")
	}
}
