package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/space"
	"repro/internal/stats"
)

// quickModel trims training further than fastModel: metric-adapter
// tests only need a functioning ensemble, not an accurate one.
func quickModel(seed uint64) ModelConfig {
	cfg := fastModel()
	cfg.Train.MaxEpochs = 120
	cfg.Train.Patience = 20
	cfg.Seed = seed
	return cfg
}

// synthEnergy is a second smooth metric over the synthetic space,
// standing in for predicted energy: larger configurations cost more.
func synthEnergy(sp *space.Space, idx int) float64 {
	c := sp.Choices(idx)
	return 0.2 + 0.05*sp.Value(c, 0) + 0.1*sp.Value(c, 1)*sp.Value(c, 2)
}

// trainMultiTask builds a two-output ensemble (IPC-like + energy-like)
// over the synthetic space.
func trainMultiTask(t *testing.T, seed uint64) *Ensemble {
	t.Helper()
	sp := synthSpace()
	rng := stats.NewRNG(seed)
	train := sp.Sample(rng, 60)
	enc := newTestEncoder(sp)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{synthTarget(sp, idx), synthEnergy(sp, idx)}
	}
	ens, err := TrainEnsemble(x, y, quickModel(seed^0x51))
	if err != nil {
		t.Fatal(err)
	}
	return ens
}

// TestPredictOutputBatchMatchesPredictAll pins the generalized batch
// kernel to the per-point multi-output path on every column.
func TestPredictOutputBatchMatchesPredictAll(t *testing.T) {
	ens := trainMultiTask(t, 11)
	sp := synthSpace()
	enc := newTestEncoder(sp)
	var probes [][]float64
	for idx := 0; idx < sp.Size(); idx += 5 {
		probes = append(probes, enc.EncodeIndex(idx, nil))
	}
	xs, rows := flatten(probes)
	for o := 0; o < ens.Outputs(); o++ {
		got := ens.PredictOutputBatch(o, xs, rows, nil)
		for i, p := range probes {
			want := ens.PredictAll(p)[o]
			if math.Abs(got[i]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("output %d point %d: batch %v vs per-point %v", o, i, got[i], want)
			}
		}
	}
	// Column 0 must be the identical computation to PredictBatch.
	a := ens.PredictBatch(xs, rows, nil)
	b := ens.PredictOutputBatch(0, xs, rows, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d: PredictOutputBatch(0) %v != PredictBatch %v", i, b[i], a[i])
		}
	}
}

// TestPredictOutputVarianceBatchColumns checks the generalized
// variance kernel: column 0 equals PredictVarianceBatch bit for bit,
// and every column's variance is non-negative and paired with the
// column's own mean.
func TestPredictOutputVarianceBatchColumns(t *testing.T) {
	ens := trainMultiTask(t, 12)
	sp := synthSpace()
	enc := newTestEncoder(sp)
	var probes [][]float64
	for idx := 0; idx < sp.Size(); idx += 7 {
		probes = append(probes, enc.EncodeIndex(idx, nil))
	}
	xs, rows := flatten(probes)
	m0, v0 := ens.PredictVarianceBatch(xs, rows, nil, nil)
	for o := 0; o < ens.Outputs(); o++ {
		mean, variance := ens.PredictOutputVarianceBatch(o, xs, rows, nil, nil)
		wantMean := ens.PredictOutputBatch(o, xs, rows, nil)
		for i := range mean {
			if mean[i] != wantMean[i] {
				t.Fatalf("output %d point %d: variance-path mean %v != batch mean %v", o, i, mean[i], wantMean[i])
			}
			if variance[i] < 0 {
				t.Fatalf("output %d point %d: negative variance %v", o, i, variance[i])
			}
			if o == 0 && (mean[i] != m0[i] || variance[i] != v0[i]) {
				t.Fatalf("point %d: output-0 path diverged from PredictVarianceBatch", i)
			}
		}
	}
}

// TestPredictOutputBatchRejectsBadColumn panics on out-of-range output
// columns rather than silently reading a wrong scaler.
func TestPredictOutputBatchRejectsBadColumn(t *testing.T) {
	ens := trainMultiTask(t, 13)
	for _, bad := range []int{-1, ens.Outputs()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("output %d accepted", bad)
				}
			}()
			ens.PredictOutputBatch(bad, nil, 0, nil)
		}()
	}
}

// TestMetricSetEvalMatchesDirectCalls pins the adapter's columns to
// the underlying batch kernels, bit for bit, across two models and a
// shared-sweep (mean + variance of one output) group.
func TestMetricSetEvalMatchesDirectCalls(t *testing.T) {
	perf := trainMultiTask(t, 21)
	energy := trainMultiTask(t, 22)
	set, err := NewMetricSet([]Metric{
		{Name: "perf", Ens: perf},
		{Name: "conf", Ens: perf, Kind: MetricVariance, Minimize: true},
		{Name: "energy", Ens: energy, Output: 1, Minimize: true},
		{Name: "perf2", Ens: perf}, // duplicate column: shares perf's sweep
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := synthSpace()
	enc := newTestEncoder(sp)
	rows := 50
	xs := enc.EncodeRange(0, rows, nil)
	cols := make([][]float64, set.Len())
	for m := range cols {
		cols[m] = make([]float64, rows)
	}
	set.Eval(xs, rows, cols)

	wantPerf, wantConf := perf.PredictVarianceBatch(xs, rows, nil, nil)
	wantEnergy := energy.PredictOutputBatch(1, xs, rows, nil)
	for r := 0; r < rows; r++ {
		if cols[0][r] != wantPerf[r] || cols[3][r] != wantPerf[r] {
			t.Fatalf("row %d: perf columns %v/%v != %v", r, cols[0][r], cols[3][r], wantPerf[r])
		}
		if cols[1][r] != wantConf[r] {
			t.Fatalf("row %d: conf column %v != %v", r, cols[1][r], wantConf[r])
		}
		if cols[2][r] != wantEnergy[r] {
			t.Fatalf("row %d: energy column %v != %v", r, cols[2][r], wantEnergy[r])
		}
	}

	if got := set.Names(); len(got) != 4 || got[0] != "perf" || got[2] != "energy" {
		t.Fatalf("names = %v", got)
	}
	if dir := set.Minimize(); dir[0] || !dir[1] || !dir[2] || dir[3] {
		t.Fatalf("directions = %v", set.Minimize())
	}
}

// TestMetricSetValidation rejects malformed metric lists with errors
// that name the offender.
func TestMetricSetValidation(t *testing.T) {
	ens := trainMultiTask(t, 31)
	cases := []struct {
		name    string
		metrics []Metric
		want    string
	}{
		{"empty", nil, "at least one"},
		{"no name", []Metric{{Ens: ens}}, "no name"},
		{"dup name", []Metric{{Name: "a", Ens: ens}, {Name: "a", Ens: ens}}, "duplicate"},
		{"nil ensemble", []Metric{{Name: "a"}}, "no ensemble"},
		{"bad output", []Metric{{Name: "a", Ens: ens, Output: 9}}, "output 9"},
		{"bad kind", []Metric{{Name: "a", Ens: ens, Kind: MetricKind(7)}}, "unknown kind"},
	}
	for _, c := range cases {
		if _, err := NewMetricSet(c.metrics); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}
