package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/encoding"
	"repro/internal/space"
)

// newTestEncoder centralizes encoder construction for core tests.
func newTestEncoder(sp *space.Space) *encoding.Encoder {
	return encoding.NewEncoder(sp)
}

func TestExplorerRunsIncrementally(t *testing.T) {
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	cfg := ExploreConfig{
		Model:      fastModel(),
		BatchSize:  20,
		MaxSamples: 60,
		Seed:       1,
	}
	ex, err := NewExplorer(sp, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ens == nil {
		t.Fatal("no ensemble")
	}
	steps := ex.Steps()
	if len(steps) == 0 {
		t.Fatal("no steps recorded")
	}
	if steps[len(steps)-1].Samples != len(ex.Samples()) {
		t.Fatal("step sample count mismatch")
	}
	if oracle.calls != len(ex.Samples()) {
		t.Fatalf("oracle evaluated %d points for %d samples", oracle.calls, len(ex.Samples()))
	}
	// Samples are distinct.
	seen := map[int]bool{}
	for _, idx := range ex.Samples() {
		if seen[idx] {
			t.Fatalf("point %d sampled twice", idx)
		}
		seen[idx] = true
	}
}

func TestExplorerStopsAtErrorTarget(t *testing.T) {
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	cfg := ExploreConfig{
		Model:         fastModel(),
		BatchSize:     25,
		MaxSamples:    100,
		TargetMeanErr: 1e9, // absurdly lenient: stop after the first round
		Seed:          2,
	}
	ex, err := NewExplorer(sp, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(ex.Samples()); got != 25 {
		t.Fatalf("explorer took %d samples despite an immediately met target", got)
	}
}

func TestExplorerRespectsExclusions(t *testing.T) {
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	exclude := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	cfg := ExploreConfig{
		Model:      fastModel(),
		BatchSize:  30,
		MaxSamples: 90,
		Exclude:    exclude,
		Seed:       3,
	}
	ex, err := NewExplorer(sp, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	banned := map[int]bool{}
	for _, e := range exclude {
		banned[e] = true
	}
	for _, s := range ex.Samples() {
		if banned[s] {
			t.Fatalf("excluded point %d was sampled", s)
		}
	}
}

func TestExplorerOracleErrorPropagates(t *testing.T) {
	sp := synthSpace()
	oracle := &synthOracle{sp: sp, fail: true}
	cfg := ExploreConfig{Model: fastModel(), BatchSize: 10, MaxSamples: 20, Seed: 4}
	ex, err := NewExplorer(sp, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err == nil {
		t.Fatal("oracle failure not propagated")
	}
}

func TestExplorerConfigValidation(t *testing.T) {
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	if _, err := NewExplorer(sp, oracle, ExploreConfig{Model: fastModel(), BatchSize: 0, MaxSamples: 10}); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := NewExplorer(sp, oracle, ExploreConfig{Model: fastModel(), BatchSize: 20, MaxSamples: 10}); err == nil {
		t.Fatal("MaxSamples below one batch accepted")
	}
}

func TestVarianceSelectionPrefersUncertainPoints(t *testing.T) {
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	cfg := ExploreConfig{
		Model:      fastModel(),
		BatchSize:  20,
		MaxSamples: 60,
		Strategy:   SelectVariance,
		Seed:       5,
	}
	ex, err := NewExplorer(sp, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First round is random (no model yet); later rounds use variance.
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ex.Samples()) != 60 {
		t.Fatalf("active explorer sampled %d points", len(ex.Samples()))
	}
	// All sampled points distinct even under variance selection.
	seen := map[int]bool{}
	for _, idx := range ex.Samples() {
		if seen[idx] {
			t.Fatalf("active selection repeated point %d", idx)
		}
		seen[idx] = true
	}
}

// TestExplorerVarianceSelectionNearExhaustion drives SelectVariance
// into the regime where the drawable complement (space minus simulated
// minus Exclude-reserved points) is smaller than a batch: the explorer
// must neither hang in the candidate draw loop nor panic in the top-n
// selection, and must never sample an excluded point.
func TestExplorerVarianceSelectionNearExhaustion(t *testing.T) {
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	// Exclude a third of the space; budget the rest plus slack.
	var exclude []int
	for i := 0; i < sp.Size(); i += 3 {
		exclude = append(exclude, i)
	}
	cfg := ExploreConfig{
		Model:      fastModel(),
		BatchSize:  25,
		MaxSamples: sp.Size(), // more than is drawable
		Strategy:   SelectVariance,
		Exclude:    exclude,
		Seed:       8,
	}
	ex, err := NewExplorer(sp, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	drawable := sp.Size() - len(exclude)
	if got := len(ex.Samples()); got != drawable {
		t.Fatalf("sampled %d points, want the full drawable complement %d", got, drawable)
	}
	excluded := map[int]bool{}
	for _, idx := range exclude {
		excluded[idx] = true
	}
	for _, idx := range ex.Samples() {
		if excluded[idx] {
			t.Fatalf("excluded point %d was sampled", idx)
		}
	}
}

func TestExplorerGrowBeyondSpaceIsBounded(t *testing.T) {
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	cfg := ExploreConfig{
		Model:      fastModel(),
		BatchSize:  sp.Size(),
		MaxSamples: sp.Size(),
		Seed:       6,
	}
	ex, err := NewExplorer(sp, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Grow(sp.Size() + 50); err != nil {
		t.Fatal(err)
	}
	if len(ex.Samples()) != sp.Size() {
		t.Fatalf("grew to %d of %d points", len(ex.Samples()), sp.Size())
	}
}

// malformedOracle wraps synthTarget but corrupts its reply in a
// configurable way, for the oracle-contract tests: the explorer must
// reject short batches, empty vectors, non-finite values and width
// drift — and name the offending design point, not just the batch.
type malformedOracle struct {
	sp   *space.Space
	mode string // "short", "empty", "nan", "inf", "width"
}

func (o *malformedOracle) Evaluate(indices []int) ([][]float64, error) {
	out := make([][]float64, len(indices))
	for i, idx := range indices {
		out[i] = []float64{synthTarget(o.sp, idx)}
	}
	if len(indices) == 0 {
		return out, nil
	}
	victim := len(indices) / 2
	switch o.mode {
	case "short":
		out = out[:len(out)-1]
	case "empty":
		out[victim] = nil
	case "nan":
		out[victim] = []float64{math.NaN()}
	case "inf":
		out[victim] = []float64{math.Inf(1)}
	case "width":
		out[victim] = []float64{1.0, 2.0} // widens mid-batch
	}
	return out, nil
}

func TestExplorerRejectsMalformedOracleReplies(t *testing.T) {
	sp := synthSpace()
	for _, mode := range []string{"short", "empty", "nan", "inf", "width"} {
		t.Run(mode, func(t *testing.T) {
			oracle := &malformedOracle{sp: sp, mode: mode}
			cfg := ExploreConfig{Model: fastModel(), BatchSize: 10, MaxSamples: 20, Seed: 9}
			ex, err := NewExplorer(sp, oracle, cfg)
			if err != nil {
				t.Fatal(err)
			}
			err = ex.Grow(10)
			if err == nil {
				t.Fatalf("%s oracle reply accepted", mode)
			}
			if mode != "short" {
				// Per-point defects must name the offending design point.
				batch := probeBatch(sp, cfg)
				victim := batch[len(batch)/2]
				if want := fmt.Sprintf("design point %d", victim); !strings.Contains(err.Error(), want) {
					t.Fatalf("%s error %q does not name %s", mode, err, want)
				}
			}
			if got := len(ex.Samples()); got != 0 {
				t.Fatalf("%d samples recorded from a rejected batch", got)
			}
		})
	}
}

// probeBatch reproduces the first batch an explorer with cfg would
// draw, by replaying the same selection stream.
func probeBatch(sp *space.Space, cfg ExploreConfig) []int {
	sel := NewBatchSelector(sp, newTestEncoder(sp), cfg.SeedRNG())
	return sel.Random(cfg.BatchSize)
}

func TestExplorerAcceptsConsistentMultiTargetWidths(t *testing.T) {
	sp := synthSpace()
	oracle := OracleFunc(func(indices []int) ([][]float64, error) {
		out := make([][]float64, len(indices))
		for i, idx := range indices {
			v := synthTarget(sp, idx)
			out[i] = []float64{v, v * 0.5}
		}
		return out, nil
	})
	ex, err := NewExplorer(sp, oracle, ExploreConfig{Model: fastModel(), BatchSize: 15, MaxSamples: 30, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if got := ex.Ensemble().Outputs(); got != 2 {
		t.Fatalf("multi-target run produced %d outputs, want 2", got)
	}
}
