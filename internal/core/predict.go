package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/ann"
	"repro/internal/encoding"
	"repro/internal/mathx"
	"repro/internal/stats"
)

// predictChunk is the number of design points one worker scores per
// claim. Large enough to amortize scratch setup and keep the batched
// kernels in their blocked regime, small enough to balance load across
// workers on mid-sized pools.
const predictChunk = 512

// predictScratch is one worker's reusable buffers: the ANN scratch and
// the members×chunk member-prediction matrix. Pooled so steady-state
// batched prediction allocates nothing.
type predictScratch struct {
	s     *ann.Scratch
	preds []float64
}

var predictPool = sync.Pool{New: func() any { return &predictScratch{s: ann.NewScratch()} }}

func getPredictScratch(members int) *predictScratch {
	ps := predictPool.Get().(*predictScratch)
	if need := members * predictChunk; cap(ps.preds) < need {
		ps.preds = make([]float64, need)
	}
	ps.preds = ps.preds[:members*predictChunk]
	return ps
}

// Inputs returns the encoded input width the ensemble's members expect.
func (e *Ensemble) Inputs() int { return e.nets[0].Config().Inputs }

// PredictBatch scores many encoded design points in one call: xs is a
// flat row-major matrix of rows points (each Inputs() wide) and the
// primary-target predictions land in out (allocated when nil), which is
// also returned. This is the hot path for candidate-pool scoring and
// full-space sweeps — it runs each member's batched forward kernel over
// the whole chunk and shards chunks across the ensemble's worker bound.
//
// Each output is bit-identical to Predict on the same point: rows are
// independent, and the per-row member accumulation order is unchanged.
func (e *Ensemble) PredictBatch(xs []float64, rows int, out []float64) []float64 {
	return e.PredictOutputBatch(0, xs, rows, out)
}

// PredictOutputBatch is PredictBatch for an arbitrary target metric:
// it scores the batch on ensemble output column output (0 is the
// primary target; multi-task ensembles carry auxiliary metrics in the
// further columns). For output 0 it is the identical computation to
// PredictBatch — same kernels, same accumulation order, same bits.
func (e *Ensemble) PredictOutputBatch(output int, xs []float64, rows int, out []float64) []float64 {
	return e.PredictOutputBatchKernel(output, xs, rows, out, ann.KernelExact)
}

// PredictOutputBatchKernel is PredictOutputBatch with an explicit
// kernel tier (see ann.KernelMode). The mode is a per-call argument so
// one shared ensemble can serve exact and fast queries concurrently;
// ann.KernelExact reproduces PredictOutputBatch bit for bit, while the
// fast tiers trade the documented mathx error bounds for throughput
// and stay bit-identical within a mode across chunking and workers.
func (e *Ensemble) PredictOutputBatchKernel(output int, xs []float64, rows int, out []float64, mode ann.KernelMode) []float64 {
	e.checkOutput(output)
	if rows < 0 || len(xs) != rows*e.Inputs() {
		panic(fmt.Sprintf("core: batch of %d values is not %d rows × %d inputs", len(xs), rows, e.Inputs()))
	}
	if out == nil {
		out = make([]float64, rows)
	}
	if len(out) != rows {
		panic(fmt.Sprintf("core: output buffer has %d slots for %d rows", len(out), rows))
	}
	e.forEachChunk(rows, func(start, end int, s *ann.Scratch, preds []float64) {
		e.predictRange(output, xs, start, end, out[start:end], s, preds, mode)
	})
	return out
}

// checkOutput panics when output does not name a trained target metric.
func (e *Ensemble) checkOutput(output int) {
	if output < 0 || output >= e.outputs {
		panic(fmt.Sprintf("core: output %d out of range [0,%d)", output, e.outputs))
	}
}

// PredictVarianceBatch is the batched PredictVariance: for each of rows
// encoded points it computes the ensemble mean and the variance of the
// member predictions (the active-learning disagreement signal of
// Chapter 7). mean and variance are filled when non-nil and allocated
// otherwise; both are returned.
func (e *Ensemble) PredictVarianceBatch(xs []float64, rows int, mean, variance []float64) ([]float64, []float64) {
	return e.PredictOutputVarianceBatch(0, xs, rows, mean, variance)
}

// PredictOutputVarianceBatch is PredictVarianceBatch for an arbitrary
// target metric: mean and member disagreement on ensemble output
// column output. For output 0 it is the identical computation to
// PredictVarianceBatch, bit for bit.
func (e *Ensemble) PredictOutputVarianceBatch(output int, xs []float64, rows int, mean, variance []float64) ([]float64, []float64) {
	return e.PredictOutputVarianceBatchKernel(output, xs, rows, mean, variance, ann.KernelExact)
}

// PredictOutputVarianceBatchKernel is PredictOutputVarianceBatch with
// an explicit kernel tier; see PredictOutputBatchKernel for the mode
// semantics. The member mean/deviation accumulation is float64 and
// identical across modes — only the forward kernels and the
// denormalization transcendental differ on the fast tiers.
func (e *Ensemble) PredictOutputVarianceBatchKernel(output int, xs []float64, rows int, mean, variance []float64, mode ann.KernelMode) ([]float64, []float64) {
	e.checkOutput(output)
	if rows < 0 || len(xs) != rows*e.Inputs() {
		panic(fmt.Sprintf("core: batch of %d values is not %d rows × %d inputs", len(xs), rows, e.Inputs()))
	}
	if mean == nil {
		mean = make([]float64, rows)
	}
	if variance == nil {
		variance = make([]float64, rows)
	}
	if len(mean) != rows || len(variance) != rows {
		panic(fmt.Sprintf("core: mean/variance buffers have %d/%d slots for %d rows", len(mean), len(variance), rows))
	}
	members := len(e.nets)
	e.forEachChunk(rows, func(start, end int, s *ann.Scratch, preds []float64) {
		cnt := end - start
		// preds[m*cnt+r] is member m's prediction for row start+r.
		if mode == ann.KernelExact {
			for m, n := range e.nets {
				outM := n.ForwardBatchKernel(xs[start*e.Inputs():end*e.Inputs()], cnt, s, ann.KernelExact)
				for r := 0; r < cnt; r++ {
					preds[m*cnt+r] = e.untransform(e.scalers[output].Unscale(outM[r*e.outputs+output]))
				}
			}
		} else {
			for m, n := range e.nets {
				outM := n.ForwardBatchKernel(xs[start*e.Inputs():end*e.Inputs()], cnt, s, mode)
				e.denormalizeFast(output, outM, cnt, preds[m*cnt:(m+1)*cnt])
			}
		}
		// Same accumulation order as the per-point PredictVariance:
		// member-order sum for the mean, then member-order squared
		// deviations.
		for r := 0; r < cnt; r++ {
			var sum float64
			for m := 0; m < members; m++ {
				sum += preds[m*cnt+r]
			}
			mu := sum / float64(members)
			var ss float64
			for m := 0; m < members; m++ {
				d := preds[m*cnt+r] - mu
				ss += d * d
			}
			mean[start+r] = mu
			variance[start+r] = ss / float64(members)
		}
	})
	return mean, variance
}

// denormalizeFast maps one member's model-space output column back to
// the raw target range for the fast kernel tiers: the affine unscale is
// fused (math.FMA, correctly rounded everywhere) and a log-transformed
// target uses the bounded-error mathx exponential in one batch pass
// instead of a library call per element.
func (e *Ensemble) denormalizeFast(output int, outM []float64, cnt int, dst []float64) {
	sc := e.scalers[output]
	span := sc.Hi - sc.Lo
	for r := 0; r < cnt; r++ {
		dst[r] = math.FMA(outM[r*e.outputs+output], span, sc.Lo)
	}
	if e.logT {
		mathx.ExpSlice(dst[:cnt])
	}
}

// PredictIndices encodes the design-point indices through enc and
// scores them with the batched kernels — the common "evaluate the
// model on this list of points" idiom. Encoding and prediction stream
// in fixed-size blocks, so a full-space evaluation set costs one
// block's buffer, not O(points) memory; rows are independent, so the
// blocking leaves every prediction bit-identical.
func (e *Ensemble) PredictIndices(enc *encoding.Encoder, idxs []int) []float64 {
	width := enc.Width()
	out := make([]float64, len(idxs))
	const block = 4096
	xs := make([]float64, min(block, len(idxs))*width)
	for lo := 0; lo < len(idxs); lo += block {
		hi := min(lo+block, len(idxs))
		for i, idx := range idxs[lo:hi] {
			enc.EncodeIndex(idx, xs[i*width:(i+1)*width])
		}
		e.PredictBatch(xs[:(hi-lo)*width], hi-lo, out[lo:hi])
	}
	return out
}

// TrueError measures the ensemble's mean and standard deviation of
// absolute percentage error on the primary target over the given
// design points, against the supplied ground truth (one batched
// prediction, zero simulations). Points whose truth is exactly 0 are
// skipped — percentage error is undefined there — and used reports how
// many points actually entered the statistics.
func (e *Ensemble) TrueError(enc *encoding.Encoder, idxs []int, truth []float64) (mean, sd float64, used int) {
	if len(idxs) != len(truth) {
		panic(fmt.Sprintf("core: %d points but %d truth values", len(idxs), len(truth)))
	}
	preds := e.PredictIndices(enc, idxs)
	var errs []float64
	for i := range idxs {
		if truth[i] == 0 {
			continue
		}
		d := (preds[i] - truth[i]) / truth[i] * 100
		if d < 0 {
			d = -d
		}
		errs = append(errs, d)
	}
	mean, sd = stats.MeanStd(errs)
	return mean, sd, len(errs)
}

// predictRange scores rows [start, end) on one output column into out,
// reusing s; tmp is a ≥cnt scratch column for the fast tiers'
// batched denormalization.
func (e *Ensemble) predictRange(output int, xs []float64, start, end int, out []float64, s *ann.Scratch, tmp []float64, mode ann.KernelMode) {
	cnt := end - start
	for i := range out {
		out[i] = 0
	}
	if mode == ann.KernelExact {
		for _, n := range e.nets {
			outM := n.ForwardBatchKernel(xs[start*e.Inputs():end*e.Inputs()], cnt, s, ann.KernelExact)
			for r := 0; r < cnt; r++ {
				out[r] += e.untransform(e.scalers[output].Unscale(outM[r*e.outputs+output]))
			}
		}
	} else {
		for _, n := range e.nets {
			outM := n.ForwardBatchKernel(xs[start*e.Inputs():end*e.Inputs()], cnt, s, mode)
			e.denormalizeFast(output, outM, cnt, tmp[:cnt])
			for r := 0; r < cnt; r++ {
				out[r] += tmp[r]
			}
		}
	}
	members := float64(len(e.nets))
	for r := range out {
		out[r] /= members
	}
}

// forEachChunk splits [0, rows) into predictChunk-sized ranges and runs
// fn over them, fanning out across the ensemble's worker bound when the
// batch is large enough to pay for the goroutines. Each invocation gets
// a private scratch and a members×chunk scratch buffer, so fn may use
// them freely without locking.
func (e *Ensemble) forEachChunk(rows int, fn func(start, end int, s *ann.Scratch, preds []float64)) {
	if rows == 0 {
		return
	}
	nchunks := (rows + predictChunk - 1) / predictChunk
	workers := e.workers
	if workers < 1 {
		workers = 1
	}
	if workers > nchunks {
		workers = nchunks
	}
	run := func(s *ann.Scratch, preds []float64, c int) {
		start := c * predictChunk
		end := start + predictChunk
		if end > rows {
			end = rows
		}
		fn(start, end, s, preds)
	}
	if workers == 1 {
		ps := getPredictScratch(len(e.nets))
		for c := 0; c < nchunks; c++ {
			run(ps.s, ps.preds, c)
		}
		predictPool.Put(ps)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ps := getPredictScratch(len(e.nets))
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					predictPool.Put(ps)
					return
				}
				run(ps.s, ps.preds, c)
			}
		}()
	}
	wg.Wait()
}
