package core

import (
	"sync"
	"testing"

	"repro/internal/stats"
)

// TestConcurrentPredictSharedEnsemble shares one trained ensemble across
// many goroutines calling the per-point prediction paths. Run under
// `go test -race` this proves the paths never touch network-owned
// scratch; the value checks prove concurrency changes no bits.
func TestConcurrentPredictSharedEnsemble(t *testing.T) {
	cfg := fastModel()
	cfg.Train.MaxEpochs = 80
	cfg.Train.Patience = 20
	ens, probes := trainSynthEnsemble(t, cfg, 7)

	// Sequential golden values.
	wantMean := make([]float64, len(probes))
	wantVar := make([]float64, len(probes))
	wantAll := make([][]float64, len(probes))
	for i, x := range probes {
		wantMean[i], wantVar[i] = ens.PredictVariance(x)
		wantAll[i] = ens.PredictAll(x)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, x := range probes {
				if p := ens.Predict(x); p != wantMean[i] {
					errs <- "Predict diverged under concurrency"
					return
				}
				m, v := ens.PredictVariance(x)
				if m != wantMean[i] || v != wantVar[i] {
					errs <- "PredictVariance diverged under concurrency"
					return
				}
				all := ens.PredictAll(x)
				for o := range all {
					if all[o] != wantAll[i][o] {
						errs <- "PredictAll diverged under concurrency"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestConcurrentBatchAndPointPredict mixes batched and per-point calls
// on one shared ensemble, the serving layer's actual access pattern
// (coalesced batches racing ad-hoc single-point queries).
func TestConcurrentBatchAndPointPredict(t *testing.T) {
	cfg := fastModel()
	cfg.Train.MaxEpochs = 60
	cfg.Train.Patience = 15
	ens, probes := trainSynthEnsemble(t, cfg, 9)
	xs, rows := flatten(probes)
	want := ens.PredictBatch(xs, rows, nil)

	var wg sync.WaitGroup
	errs := make(chan string, 4)
	for g := 0; g < 2; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			got := ens.PredictBatch(xs, rows, nil)
			for i := range got {
				if got[i] != want[i] {
					errs <- "PredictBatch diverged under concurrency"
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i, x := range probes {
				if p := ens.Predict(x); p != want[i] {
					errs <- "Predict disagreed with PredictBatch under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

func TestExplorerRejectsOutOfRangeExclude(t *testing.T) {
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	base := ExploreConfig{Model: fastModel(), BatchSize: 10, MaxSamples: 20}
	for _, bad := range []int{-1, sp.Size(), sp.Size() + 17} {
		cfg := base
		cfg.Exclude = []int{0, bad}
		if _, err := NewExplorer(sp, oracle, cfg); err == nil {
			t.Fatalf("NewExplorer accepted out-of-range Exclude index %d", bad)
		}
	}
	cfg := base
	cfg.Exclude = []int{0, sp.Size() - 1}
	if _, err := NewExplorer(sp, oracle, cfg); err != nil {
		t.Fatalf("NewExplorer rejected valid Exclude indices: %v", err)
	}
}

// TestSensitivityDegenerateAxes trains a linear-target model on
// all-negative targets, so every swept minimum is ≤ 0 and no axis can
// measure a percentage swing: axes must be flagged Degenerate rather
// than reported as zero-influence.
func TestSensitivityDegenerateAxes(t *testing.T) {
	sp := synthSpace()
	rng := stats.NewRNG(13)
	train := sp.Sample(rng, 50)
	enc := newTestEncoder(sp)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{-5 - synthTarget(sp, idx)}
	}
	cfg := fastModel()
	cfg.LogTarget = false // keep targets (and predictions) negative
	cfg.Train.MaxEpochs = 60
	cfg.Train.Patience = 15
	ens, err := TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Sensitivity(ens, sp, 8, 3) {
		if !s.Degenerate || s.ValidBases != 0 {
			t.Fatalf("axis %s: want degenerate with 0 valid bases, got %+v", s.Name, s)
		}
		if s.Bases != 8 {
			t.Fatalf("axis %s: want 8 bases recorded, got %d", s.Name, s.Bases)
		}
		if s.MeanSwing != 0 {
			t.Fatalf("axis %s: degenerate axis must not carry a swing, got %g", s.Name, s.MeanSwing)
		}
	}
}

// TestSensitivityValidBasesOnHealthyModel pins the non-degenerate path:
// positive predictions keep every base valid.
func TestSensitivityValidBasesOnHealthyModel(t *testing.T) {
	cfg := fastModel()
	cfg.Train.MaxEpochs = 60
	cfg.Train.Patience = 15
	ens, _ := trainSynthEnsemble(t, cfg, 21)
	for _, s := range Sensitivity(ens, synthSpace(), 8, 3) {
		if s.Degenerate {
			t.Fatalf("axis %s unexpectedly degenerate", s.Name)
		}
		if s.ValidBases != s.Bases {
			t.Fatalf("axis %s: %d/%d valid bases on an all-positive surface", s.Name, s.ValidBases, s.Bases)
		}
	}
}
