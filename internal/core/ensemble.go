package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/ann"
	"repro/internal/encoding"
	"repro/internal/stats"
)

// Estimate is the cross-validation estimate of model accuracy over the
// full design space: the mean and standard deviation of percentage
// error pooled over every member's held-aside test fold (§3.2). These
// are the quantities Figures 5.2/5.3 compare against the true values.
type Estimate struct {
	MeanErr float64 // estimated mean percentage error
	SDErr   float64 // estimated standard deviation of percentage error
	Points  int     // test-fold points the estimate pools
}

// Ensemble is a k-fold cross-validation ensemble of neural networks
// whose prediction is the average of its members (§3.2).
type Ensemble struct {
	nets    []*ann.Network
	scalers []encoding.Scaler // one per output; [0] is the primary target
	est     Estimate
	outputs int
	logT    bool // targets were log-transformed before scaling
	workers int  // goroutine bound for batched prediction
}

// logMin floors target values before the log transform; metrics here
// are non-negative rates, so this only guards exact zeros.
const logMin = 1e-6

// transform maps a raw target into model space.
func (e *Ensemble) transform(v float64) float64 {
	if e.logT {
		return math.Log(math.Max(v, logMin))
	}
	return v
}

// untransform maps a model-space value back to the raw range.
func (e *Ensemble) untransform(v float64) float64 {
	if e.logT {
		return math.Exp(v)
	}
	return v
}

// unscaler composes minimax unscaling with the inverse target transform
// for one output.
type unscaler struct {
	s   encoding.Scaler
	log bool
}

// Unscale implements ann.Unscaler.
func (u unscaler) Unscale(v float64) float64 {
	x := u.s.Unscale(v)
	if u.log {
		return math.Exp(x)
	}
	return x
}

// TrainEnsemble builds and trains a k-fold ensemble on the dataset
// following Figure 3.3: member m trains on folds {0..k-1} minus its
// early-stopping fold (m+k-2 mod k) and test fold (m+k-1 mod k). The
// dataset's X must already be encoded; raws holds the actual
// (de-normalized) target vectors, one per example, with the primary
// metric first.
//
// Fold membership is deterministic given cfg.Seed, so results are
// reproducible.
func TrainEnsemble(x [][]float64, raws [][]float64, cfg ModelConfig) (*Ensemble, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(x)
	if n != len(raws) {
		return nil, fmt.Errorf("core: %d inputs but %d target vectors", n, len(raws))
	}
	if n < cfg.Folds {
		return nil, fmt.Errorf("core: %d examples cannot fill %d folds", n, cfg.Folds)
	}
	outputs := len(raws[0])
	if outputs == 0 {
		return nil, fmt.Errorf("core: empty target vectors")
	}

	ens0 := &Ensemble{logT: cfg.LogTarget}

	// Fit per-output minimax scalers on the (possibly log-transformed)
	// training targets (§3.3).
	scalers := make([]encoding.Scaler, outputs)
	col := make([]float64, n)
	for o := 0; o < outputs; o++ {
		for i := range raws {
			col[i] = ens0.transform(raws[i][o])
		}
		scalers[o] = encoding.FitScaler(col, cfg.ScalerPad)
	}

	// Normalized target matrix.
	y := make([][]float64, n)
	for i := range raws {
		row := make([]float64, outputs)
		for o := 0; o < outputs; o++ {
			row[o] = scalers[o].Scale(ens0.transform(raws[i][o]))
		}
		y[i] = row
	}

	full := &ann.Dataset{X: x, Y: y, Raw: primaryColumn(raws)}

	// Shuffle examples into folds.
	rng := stats.NewRNG(cfg.Seed ^ 0xF01D5)
	perm := rng.Perm(n)
	folds := make([][]int, cfg.Folds)
	for i, p := range perm {
		f := i % cfg.Folds
		folds[f] = append(folds[f], p)
	}

	ens := &Ensemble{
		nets:    make([]*ann.Network, cfg.Folds),
		scalers: scalers,
		outputs: outputs,
		logT:    cfg.LogTarget,
		workers: resolveWorkers(cfg.Workers),
	}
	primaryUn := unscaler{s: scalers[0], log: cfg.LogTarget}

	// Train members concurrently on a worker pool bounded by
	// cfg.Workers; each member owns its network and a deterministic
	// per-fold seed, so the only shared state is the read-only dataset
	// and results do not depend on scheduling.
	type memberResult struct {
		errs []float64 // per-point test-fold percentage errors
		err  error
	}
	results := make([]memberResult, cfg.Folds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, ens.workers)
	for m := 0; m < cfg.Folds; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			k := cfg.Folds
			esFold := (m + k - 2) % k
			testFold := (m + k - 1) % k
			var trainIdx []int
			for f := 0; f < k; f++ {
				if f != esFold && f != testFold {
					trainIdx = append(trainIdx, folds[f]...)
				}
			}
			train := full.Subset(trainIdx)
			es := full.Subset(folds[esFold])
			test := full.Subset(folds[testFold])

			netCfg := ann.Config{
				Inputs:       len(x[0]),
				Hidden:       cfg.Hidden,
				Outputs:      outputs,
				HiddenAct:    cfg.HiddenAct,
				OutputAct:    cfg.OutputAct,
				LearningRate: cfg.LearningRate,
				Momentum:     cfg.Momentum,
				InitRange:    cfg.InitRange,
				Seed:         cfg.Seed + uint64(m)*0x9E37,
			}
			net := ann.New(netCfg)
			opts := cfg.Train
			opts.Seed = cfg.Seed + uint64(m)*0x51ED + 1
			if _, err := ann.TrainEarlyStopping(net, train, es, primaryUn, opts); err != nil {
				results[m] = memberResult{err: err}
				return
			}
			ens.nets[m] = net
			results[m] = memberResult{errs: ann.PercentErrors(net, test, primaryUn)}
		}(m)
	}
	wg.Wait()

	var pooled []float64
	for m := range results {
		if results[m].err != nil {
			return nil, fmt.Errorf("core: fold %d: %w", m, results[m].err)
		}
		pooled = append(pooled, results[m].errs...)
	}
	mean, sd := stats.MeanStd(pooled)
	ens.est = Estimate{MeanErr: mean, SDErr: sd, Points: len(pooled)}
	return ens, nil
}

// primaryColumn extracts target 0 from each vector.
func primaryColumn(raws [][]float64) []float64 {
	out := make([]float64, len(raws))
	for i := range raws {
		out[i] = raws[i][0]
	}
	return out
}

// resolveWorkers maps a ModelConfig.Workers setting to a concrete
// goroutine bound: positive values are taken as-is, 0 selects
// GOMAXPROCS, and negative values fall back to fully sequential.
func resolveWorkers(w int) int {
	if w > 0 {
		return w
	}
	if w == 0 {
		if p := runtime.GOMAXPROCS(0); p > 1 {
			return p
		}
	}
	return 1
}

// Workers returns the ensemble's goroutine bound for fold training and
// batched prediction.
func (e *Ensemble) Workers() int { return e.workers }

// SetWorkers adjusts the goroutine bound used by batched prediction
// (0 = GOMAXPROCS). Predictions are identical for any setting.
func (e *Ensemble) SetWorkers(w int) { e.workers = resolveWorkers(w) }

// Members returns the number of networks in the ensemble.
func (e *Ensemble) Members() int { return len(e.nets) }

// Outputs returns the number of target metrics the ensemble predicts.
func (e *Ensemble) Outputs() int { return e.outputs }

// Estimate returns the cross-validation accuracy estimate computed at
// training time.
func (e *Ensemble) Estimate() Estimate { return e.est }

// Predict returns the ensemble's primary-target prediction for an
// encoded design point: the average of all members, de-normalized
// (§3.3 step 8). It is safe to call concurrently on a shared ensemble:
// every member runs through the batched kernel with a pooled per-call
// Scratch, never through the network-owned per-example buffers.
func (e *Ensemble) Predict(x []float64) float64 {
	ps := getPredictScratch(len(e.nets))
	defer predictPool.Put(ps)
	var sum float64
	for _, n := range e.nets {
		out := n.ForwardBatch(x, 1, ps.s)
		sum += e.untransform(e.scalers[0].Unscale(out[0]))
	}
	return sum / float64(len(e.nets))
}

// PredictAll returns the ensemble's prediction for every output metric.
// Like Predict, it is safe for concurrent use on a shared ensemble.
func (e *Ensemble) PredictAll(x []float64) []float64 {
	ps := getPredictScratch(len(e.nets))
	defer predictPool.Put(ps)
	acc := make([]float64, e.outputs)
	for _, n := range e.nets {
		out := n.ForwardBatch(x, 1, ps.s)
		for o := range acc {
			acc[o] += e.untransform(e.scalers[o].Unscale(out[o]))
		}
	}
	for o := range acc {
		acc[o] /= float64(len(e.nets))
	}
	return acc
}

// PredictVariance returns the ensemble's primary prediction together
// with the variance of the member predictions (in de-normalized units),
// the disagreement signal active learning queries by (Chapter 7).
// Safe for concurrent use on a shared ensemble.
func (e *Ensemble) PredictVariance(x []float64) (mean, variance float64) {
	ps := getPredictScratch(len(e.nets))
	defer predictPool.Put(ps)
	preds := ps.preds[:len(e.nets)]
	var sum float64
	for i, n := range e.nets {
		preds[i] = e.untransform(e.scalers[0].Unscale(n.ForwardBatch(x, 1, ps.s)[0]))
		sum += preds[i]
	}
	mean = sum / float64(len(preds))
	var ss float64
	for _, p := range preds {
		d := p - mean
		ss += d * d
	}
	return mean, ss / float64(len(preds))
}
