package core

import (
	"sort"

	"repro/internal/encoding"
	"repro/internal/space"
	"repro/internal/stats"
)

// AxisSensitivity summarizes how strongly one design parameter moves
// the predicted metric: over a sample of base points, each axis is
// swept through all of its settings while everything else stays fixed,
// and the spread of predictions is recorded. This is the
// model-powered version of the sensitivity study that motivates the
// whole paper (§2) — a full per-axis sweep costs network evaluations
// instead of simulations.
type AxisSensitivity struct {
	Param     int     // axis index in the space
	Name      string  // axis name
	MeanSwing float64 // mean (max-min)/min predicted metric over base points, in %
	MaxSwing  float64 // worst-case swing observed, in %
	// Bases is the number of base points swept; ValidBases counts the
	// ones whose swept minimum was positive, i.e. where a percentage
	// swing is defined at all. With linear (non-log) targets a model can
	// predict ≤ 0 along a whole sweep, and an axis that loses every
	// base carries no swing information — Degenerate marks that case so
	// it is never mistaken for a measured "no influence".
	Bases      int
	ValidBases int
	Degenerate bool
	Rank       int // 1 = most influential; degenerate axes rank after all measured ones
}

// Sensitivity sweeps every axis of the space through the trained
// ensemble at `bases` random base points and ranks the axes by mean
// predicted swing. It performs Σ cardinalities × bases predictions and
// zero simulations; each axis's full sweep (bases × settings points) is
// scored by one batched prediction call.
func Sensitivity(ens *Ensemble, sp *space.Space, bases int, seed uint64) []AxisSensitivity {
	enc := encoding.NewEncoder(sp)
	rng := stats.NewRNG(seed ^ 0x5E45)
	if bases <= 0 {
		bases = 20
	}
	out := make([]AxisSensitivity, sp.NumParams())
	width := enc.Width()
	var xs, preds []float64
	for p := 0; p < sp.NumParams(); p++ {
		card := sp.Params[p].Card()
		rows := bases * card
		if need := rows * width; cap(xs) < need {
			xs = make([]float64, need)
		}
		xs = xs[:rows*width]
		for b := 0; b < bases; b++ {
			choices := sp.Choices(rng.Intn(sp.Size()))
			for c := 0; c < card; c++ {
				choices[p] = c
				enc.Encode(choices, xs[(b*card+c)*width:(b*card+c+1)*width])
			}
		}
		if cap(preds) < rows {
			preds = make([]float64, rows)
		}
		preds = ens.PredictBatch(xs, rows, preds[:rows])

		var swings []float64
		var worst float64
		for b := 0; b < bases; b++ {
			lo, hi := 0.0, 0.0
			for c := 0; c < card; c++ {
				v := preds[b*card+c]
				if c == 0 || v < lo {
					lo = v
				}
				if c == 0 || v > hi {
					hi = v
				}
			}
			if lo > 0 {
				s := (hi - lo) / lo * 100
				swings = append(swings, s)
				if s > worst {
					worst = s
				}
			}
		}
		out[p] = AxisSensitivity{
			Param:      p,
			Name:       sp.Params[p].Name,
			MaxSwing:   worst,
			Bases:      bases,
			ValidBases: len(swings),
			Degenerate: len(swings) == 0,
		}
		if len(swings) > 0 {
			out[p].MeanSwing = stats.Mean(swings)
		}
	}
	order := make([]int, len(out))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := out[order[a]], out[order[b]]
		// Axes with measured swings rank ahead of degenerate ones, whose
		// MeanSwing of 0 is "unknown", not "uninfluential".
		if sa.Degenerate != sb.Degenerate {
			return !sa.Degenerate
		}
		return sa.MeanSwing > sb.MeanSwing
	})
	for rank, p := range order {
		out[p].Rank = rank + 1
	}
	return out
}

// RankedSensitivities returns the axes sorted most-influential first.
func RankedSensitivities(s []AxisSensitivity) []AxisSensitivity {
	out := append([]AxisSensitivity(nil), s...)
	sort.Slice(out, func(a, b int) bool { return out[a].Rank < out[b].Rank })
	return out
}
