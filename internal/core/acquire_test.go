package core

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

// trainSynthEnsemble trains an ensemble over synthSpace on n sampled
// points: outputs 1 trains on synthTarget alone, outputs 2 adds
// synthEnergy as an auxiliary metric.
func trainAcquireEnsemble(t testing.TB, outputs, n int, workers int) *Ensemble {
	t.Helper()
	sp := synthSpace()
	cfg := fastModel()
	cfg.Train.MaxEpochs = 120
	cfg.Train.Patience = 25
	cfg.Seed = 17
	cfg.Workers = workers
	rng := stats.NewRNG(17)
	train := sp.Sample(rng, n)
	enc := newTestEncoder(sp)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		row := []float64{synthTarget(sp, idx)}
		if outputs == 2 {
			row = append(row, synthEnergy(sp, idx))
		}
		y[i] = row
	}
	ens, err := TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ens
}

// trainInputs encodes a deterministic simulated set, the acquisition
// reference frontier's basis.
func trainInputs(n int) ([][]float64, []int) {
	sp := synthSpace()
	enc := newTestEncoder(sp)
	rng := stats.NewRNG(23)
	idxs := sp.Sample(rng, n)
	xs := make([][]float64, len(idxs))
	for i, idx := range idxs {
		xs[i] = enc.EncodeIndex(idx, nil)
	}
	return xs, idxs
}

// TestHypervolumeKnownValues pins the exact hypervolume on hand-checked
// 2-D and 3-D configurations.
func TestHypervolumeKnownValues(t *testing.T) {
	ref2 := []float64{1, 1}
	cases := []struct {
		name string
		pts  [][]float64
		ref  []float64
		want float64
	}{
		{"empty", nil, ref2, 0},
		{"one point", [][]float64{{0.5, 0.5}}, ref2, 0.25},
		{"dominated adds nothing", [][]float64{{0.5, 0.5}, {0.75, 0.75}}, ref2, 0.25},
		{"two incomparable", [][]float64{{0.25, 0.75}, {0.75, 0.25}}, ref2,
			0.75*0.25 + 0.25*0.75 - 0.25*0.25},
		{"outside ref ignored", [][]float64{{1.5, 0.1}, {0.5, 0.5}}, ref2, 0.25},
		{"3d unit corner", [][]float64{{0, 0, 0}}, []float64{1, 1, 1}, 1},
		{"3d two boxes", [][]float64{{0.5, 0, 0}, {0, 0.5, 0.5}}, []float64{1, 1, 1},
			0.5 + 1*0.5*0.5 - 0.5*0.5*0.5},
	}
	for _, tc := range cases {
		if got := Hypervolume(tc.pts, tc.ref); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: hv = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestHypervolumeOrderInvariant: the sweep is a set function — any
// permutation of the points yields the identical float64.
func TestHypervolumeOrderInvariant(t *testing.T) {
	rng := stats.NewRNG(3)
	var pts [][]float64
	for i := 0; i < 24; i++ {
		pts = append(pts, []float64{
			float64(rng.Intn(10)) / 10, float64(rng.Intn(10)) / 10, float64(rng.Intn(10)) / 10,
		})
	}
	ref := []float64{1.1, 1.1, 1.1}
	want := Hypervolume(pts, ref)
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(pts))
		shuffled := make([][]float64, len(pts))
		for i, j := range perm {
			shuffled[i] = pts[j]
		}
		if got := Hypervolume(shuffled, ref); got != want {
			t.Fatalf("permuted hv %v != %v", got, want)
		}
	}
}

// TestParseAcquireSpec covers the grammar: happy paths round-trip
// through Spec(), malformed clauses error.
func TestParseAcquireSpec(t *testing.T) {
	good := []string{
		"hvi",
		"frontier",
		"variance",
		"hvi:max=out0:min=out1",
		"hvi:max=out0:var=out0",
		"variance:out0>=1.2",
		"frontier:min=out1:out0>=1.2",
		"hvi:max=out0:min=out1:out2<=0.05",
	}
	for _, spec := range good {
		cfg, err := ParseAcquireSpec(spec)
		if err != nil {
			t.Errorf("%q: %v", spec, err)
			continue
		}
		if cfg.Spec() != spec {
			t.Errorf("%q round-tripped to %q", spec, cfg.Spec())
		}
		reparsed, err := ParseAcquireSpec(cfg.Spec())
		if err != nil || !reflect.DeepEqual(reparsed, cfg) {
			t.Errorf("%q: canonical form unstable (%v)", spec, err)
		}
	}
	bad := map[string]string{
		"":                     "unknown acquisition strategy",
		"entropy":              "unknown acquisition strategy",
		"hvi:best=out0":        "not max=outN",
		"hvi:max=0":            "form outN",
		"hvi:max=out-1":        "form outN",
		"variance:out0>=x":     "finite number",
		"variance:out0>=nan":   "finite number",
		"hvi:out0==1":          "not max=outN",
		"frontier:maxvar=out0": "not max=outN",
	}
	for spec, want := range bad {
		_, err := ParseAcquireSpec(spec)
		if err == nil {
			t.Errorf("%q accepted", spec)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%q: err %q, want mention of %q", spec, err, want)
		}
	}
}

// TestAcquireVarianceMatchesByVariance: the variance strategy without
// constraints is the Chapter 7 rule behind the new interface — it must
// select bit-identically to ByVariance from the same RNG state, so
// `-acquire variance` and the legacy active-learning flag produce the
// same runs.
func TestAcquireVarianceMatchesByVariance(t *testing.T) {
	ens := trainAcquireEnsemble(t, 1, 60, 0)
	sp := synthSpace()
	enc := newTestEncoder(sp)
	acq, err := NewAcquirer(&AcquireConfig{Strategy: AcquireVariance})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 9, 42} {
		a := NewBatchSelector(sp, enc, stats.NewRNG(seed))
		b := NewBatchSelector(sp, enc, stats.NewRNG(seed))
		want := a.ByVariance(ens, 8, 40)
		got, err := b.Acquire(acq, ens, nil, 8, 40)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: acquire variance %v != ByVariance %v", seed, got, want)
		}
		if a.RNG().State() != b.RNG().State() {
			t.Fatalf("seed %d: RNG states diverged", seed)
		}
	}
}

// TestAcquireStrategiesDeterministicAcrossEnsembleWorkers: acquisition
// scores flow through the batched prediction kernels, which are
// bit-identical for any worker count — so the selected batch must be
// too, for every strategy.
func TestAcquireStrategiesDeterministicAcrossEnsembleWorkers(t *testing.T) {
	sp := synthSpace()
	enc := newTestEncoder(sp)
	trainXs, _ := trainInputs(40)
	specs := []string{
		"hvi:max=out0:min=out1",
		"frontier:max=out0:min=out1",
		"variance",
		"hvi:max=out0:min=out1:out0>=1.0",
	}
	for _, spec := range specs {
		cfg, err := ParseAcquireSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		acq, err := NewAcquirer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var want []int
		for _, workers := range []int{1, 4, 16} {
			ens := trainAcquireEnsemble(t, 2, 60, workers)
			sel := NewBatchSelector(sp, enc, stats.NewRNG(77))
			got, err := sel.Acquire(acq, ens, trainXs, 6, 48)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: workers changed selection: %v vs %v", spec, got, want)
			}
		}
	}
}

// TestAcquireConstraintsPreferFeasible: with a satisfiable constraint,
// every selected candidate must be predicted feasible — infeasible
// candidates rank strictly after feasible ones.
func TestAcquireConstraintsPreferFeasible(t *testing.T) {
	ens := trainAcquireEnsemble(t, 2, 60, 0)
	sp := synthSpace()
	enc := newTestEncoder(sp)
	trainXs, _ := trainInputs(40)

	// Pick a threshold near the middle of the predicted out0 range so
	// both sides are populated. Means come from the same batched kernel
	// the acquirer scores with.
	predictMean := func(idxs []int) []float64 {
		width := enc.Width()
		xs := make([]float64, len(idxs)*width)
		for i, idx := range idxs {
			enc.EncodeIndex(idx, xs[i*width:(i+1)*width])
		}
		mean, _ := ens.PredictOutputVarianceBatch(0, xs, len(idxs), nil, nil)
		return mean
	}
	all := make([]int, sp.Size())
	for i := range all {
		all[i] = i
	}
	preds := predictMean(all)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range preds {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	threshold := (lo + hi) / 2

	cfg := &AcquireConfig{
		Strategy:    AcquireHVI,
		Objectives:  []Objective{{Output: 1, Minimize: true}},
		Constraints: []Constraint{{Output: 0, Op: ">=", Value: threshold}},
	}
	acq, err := NewAcquirer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel := NewBatchSelector(sp, enc, stats.NewRNG(5))
	got, err := sel.Acquire(acq, ens, trainXs, 5, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("selected %d points, want 5", len(got))
	}
	for i, v := range predictMean(got) {
		if v < threshold {
			t.Fatalf("point %d predicted %v violates out0>=%v", got[i], v, threshold)
		}
	}
}

// TestAcquireUnknownOutputErrors: an objective or constraint naming an
// output the ensemble never trained must fail loudly, not index out of
// range.
func TestAcquireUnknownOutputErrors(t *testing.T) {
	ens := trainAcquireEnsemble(t, 1, 60, 0)
	sp := synthSpace()
	enc := newTestEncoder(sp)
	for _, spec := range []string{"hvi:max=out3", "variance:out2>=1"} {
		cfg, err := ParseAcquireSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		acq, err := NewAcquirer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sel := NewBatchSelector(sp, enc, stats.NewRNG(1))
		if _, err := sel.Acquire(acq, ens, nil, 4, 0); err == nil ||
			!strings.Contains(err.Error(), "outputs") {
			t.Fatalf("%s: err = %v, want output-range rejection", spec, err)
		}
	}
}

// TestAcquireHVIPrefersFrontierImprovers: a candidate whose predicted
// metrics push the frontier out must outrank one the frontier already
// dominates. Built directly on the scorer with a hand-made frontier by
// checking the selected batch's predicted hypervolume contribution.
func TestAcquireHVIPrefersFrontierImprovers(t *testing.T) {
	ens := trainAcquireEnsemble(t, 2, 60, 0)
	sp := synthSpace()
	enc := newTestEncoder(sp)
	trainXs, trainIdx := trainInputs(30)

	cfg, err := ParseAcquireSpec("hvi:max=out0:min=out1")
	if err != nil {
		t.Fatal(err)
	}
	acq, err := NewAcquirer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel := NewBatchSelector(sp, enc, stats.NewRNG(11))
	// Reserve the simulated points, as a real driver would.
	for _, idx := range trainIdx {
		sel.Reserve(idx)
	}
	got, err := sel.Acquire(acq, ens, trainXs, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("selected %d points, want 4", len(got))
	}
	// The same selection replayed from the same seed is bit-identical
	// (the strategy is deterministic end to end).
	sel2 := NewBatchSelector(sp, enc, stats.NewRNG(11))
	for _, idx := range trainIdx {
		sel2.Reserve(idx)
	}
	again, err := sel2.Acquire(acq, ens, trainXs, 4, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatalf("replay diverged: %v vs %v", got, again)
	}
}

// BenchmarkAcquire measures one acquisition round per strategy over a
// realistic candidate pool — the per-round selection overhead a driver
// pays on top of simulation and training.
func BenchmarkAcquire(b *testing.B) {
	sp := synthSpace()
	enc := newTestEncoder(sp)
	ens := trainAcquireEnsemble(b, 2, 60, 0)
	trainXs, _ := trainInputs(40)
	for _, spec := range []string{"variance", "hvi:max=out0:min=out1", "frontier:max=out0:min=out1"} {
		cfg, err := ParseAcquireSpec(spec)
		if err != nil {
			b.Fatal(err)
		}
		acq, err := NewAcquirer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		name, _, _ := strings.Cut(spec, ":")
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// A fresh selector per round: repeated draws from one
				// selector would exhaust the 120-point pool and measure
				// ever-emptier selections.
				sel := NewBatchSelector(sp, enc, stats.NewRNG(7))
				if _, err := sel.Acquire(acq, ens, trainXs, 8, 64); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "selections/s")
		})
	}
}
