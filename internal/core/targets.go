package core

import (
	"fmt"
	"math"
)

// CheckTarget validates one oracle target vector for design point idx.
// width is the target width established by earlier points (0 before the
// first accepted vector). A failure names the offending design point,
// so that a batch-level caller can report — or quarantine — exactly the
// point that misbehaved instead of the whole batch.
func CheckTarget(idx int, target []float64, width int) error {
	if len(target) == 0 {
		return fmt.Errorf("core: oracle returned an empty target vector for design point %d", idx)
	}
	if width > 0 && len(target) != width {
		return fmt.Errorf("core: oracle returned %d metrics for design point %d, want %d (target width must be consistent across points)",
			len(target), idx, width)
	}
	for o, v := range target {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: oracle returned non-finite value %v for metric %d of design point %d", v, o, idx)
		}
	}
	return nil
}

// CheckBatchTargets validates an oracle's reply against the batch it
// was asked for: one target vector per requested point, each non-empty,
// finite, and width-consistent. It returns the (possibly newly
// established) target width.
func CheckBatchTargets(batch []int, targets [][]float64, width int) (int, error) {
	if len(targets) != len(batch) {
		return width, fmt.Errorf("core: oracle returned %d results for %d points", len(targets), len(batch))
	}
	for i, idx := range batch {
		if err := CheckTarget(idx, targets[i], width); err != nil {
			return width, err
		}
		if width == 0 {
			width = len(targets[i])
		}
	}
	return width, nil
}
