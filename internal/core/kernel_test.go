package core

import (
	"math"
	"testing"

	"repro/internal/ann"
	"repro/internal/stats"
)

// kernelTestEnsemble trains a quick ensemble over the synthetic space
// and returns it with every design point encoded, ready for a
// full-grid evaluation.
func kernelTestEnsemble(t *testing.T, logT bool) (*Ensemble, []float64, int) {
	t.Helper()
	sp := synthSpace()
	enc := newTestEncoder(sp)
	cfg := DefaultModelConfig()
	cfg.Train.MaxEpochs = 120
	cfg.Train.Patience = 20
	cfg.LogTarget = logT
	cfg.Seed = 17
	rng := stats.NewRNG(17)
	train := sp.Sample(rng, 60)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{synthTarget(sp, idx)}
	}
	ens, err := TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := sp.Size()
	xs := make([]float64, rows*enc.Width())
	for idx := 0; idx < rows; idx++ {
		enc.EncodeIndex(idx, xs[idx*enc.Width():(idx+1)*enc.Width()])
	}
	return ens, xs, rows
}

// memberExact computes each member's exact prediction for every row —
// the reference the bound propagation measures spread against.
// preds[m*rows+r] is member m's raw-space prediction for row r.
func memberExact(e *Ensemble, xs []float64, rows int) []float64 {
	preds := make([]float64, len(e.nets)*rows)
	s := ann.NewScratch()
	for m, n := range e.nets {
		out := n.ForwardBatchKernel(xs, rows, s, ann.KernelExact)
		for r := 0; r < rows; r++ {
			preds[m*rows+r] = e.untransform(e.scalers[0].Unscale(out[r*e.outputs]))
		}
	}
	return preds
}

// TestEvalKernelFullGridBounds is the acceptance gate for the fast
// kernel tiers at the metric level: over the ENTIRE benchmark-space
// grid, every fast-tier mean and variance column must lie within an
// error bound of the exact column derived purely from the documented
// contracts — ann.FastErrorBounds for the network outputs, the affine
// unscale span, the mathx.Exp relative contract for log-transformed
// targets, and a spread-based perturbation bound for the variance
// column. Nothing here is tuned to observed errors; if a kernel
// regressed past its contract this fails.
func TestEvalKernelFullGridBounds(t *testing.T) {
	for _, tc := range []struct {
		name string
		logT bool
	}{{"linear", false}, {"log", true}} {
		t.Run(tc.name, func(t *testing.T) {
			ens, xs, rows := kernelTestEnsemble(t, tc.logT)
			set, err := NewMetricSet([]Metric{
				{Name: "perf", Ens: ens},
				{Name: "conf", Ens: ens, Kind: MetricVariance, Minimize: true},
			})
			if err != nil {
				t.Fatal(err)
			}

			// Network-output bounds, worst case over the members, then
			// pushed through the affine unscale (span is exact; the FMA
			// fusion in the fast path differs from the exact path only
			// at the float64 rounding level — the 1e-12 slack).
			var netFast, netFast32 float64
			for _, n := range ens.nets {
				f, f32 := n.FastErrorBounds()
				netFast = math.Max(netFast, f)
				netFast32 = math.Max(netFast32, f32)
			}
			sc := ens.scalers[0]
			span := math.Abs(sc.Hi - sc.Lo)
			uFast := netFast*span + 1e-12
			uFast32 := netFast32*span + 1e-12

			preds := memberExact(ens, xs, rows)
			members := len(ens.nets)

			exact := [][]float64{make([]float64, rows), make([]float64, rows)}
			set.Eval(xs, rows, exact)

			for _, mode := range []struct {
				mode ann.KernelMode
				uerr float64 // unscaled model-space bound per member output
			}{{ann.KernelFast, uFast}, {ann.KernelFast32, uFast32}} {
				got := [][]float64{make([]float64, rows), make([]float64, rows)}
				set.EvalKernel(xs, rows, got, mode.mode)
				worstMean, worstVar := 0.0, 0.0 // worst error/bound ratios
				for r := 0; r < rows; r++ {
					// Per-member raw-space bound for this row: linear
					// targets inherit the unscaled bound directly; log
					// targets pass through exp, so the bound scales with
					// the prediction (argument perturbation via expm1,
					// plus the mathx.Exp 2e-8 relative contract).
					bp := mode.uerr
					if tc.logT {
						bp = 0
						for m := 0; m < members; m++ {
							p := preds[m*rows+r]
							bp = math.Max(bp, p*(math.Expm1(mode.uerr)+3e-8)*1.02)
						}
					}
					dMean := math.Abs(got[0][r] - exact[0][r])
					if dMean > bp {
						t.Fatalf("%s row %d mean: |%g - %g| = %.3g exceeds bound %.3g",
							mode.mode, r, got[0][r], exact[0][r], dMean, bp)
					}
					worstMean = math.Max(worstMean, dMean/bp)
					// Variance: each member moves ≤ bp and the mean moves
					// with it, so each deviation d_m (|d_m| ≤ spread S)
					// shifts by ≤ 2·bp and each square by ≤ 4·S·bp+4·bp².
					mu, s := 0.0, 0.0
					for m := 0; m < members; m++ {
						mu += preds[m*rows+r]
					}
					mu /= float64(members)
					for m := 0; m < members; m++ {
						s = math.Max(s, math.Abs(preds[m*rows+r]-mu))
					}
					bv := 4*s*bp + 4*bp*bp + 1e-15
					dVar := math.Abs(got[1][r] - exact[1][r])
					if dVar > bv {
						t.Fatalf("%s row %d variance: |%g - %g| = %.3g exceeds bound %.3g",
							mode.mode, r, got[1][r], exact[1][r], dVar, bv)
					}
					worstVar = math.Max(worstVar, dVar/bv)
				}
				t.Logf("%s: worst mean error %.2f%% of bound, worst variance error %.2f%% of bound",
					mode.mode, 100*worstMean, 100*worstVar)
			}
		})
	}
}
