package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// trainSynthEnsemble builds a small trained ensemble over the synthetic
// space for prediction tests, plus a sample of encoded points.
func trainSynthEnsemble(t *testing.T, cfg ModelConfig, seed uint64) (*Ensemble, [][]float64) {
	t.Helper()
	sp := synthSpace()
	rng := stats.NewRNG(seed)
	train := sp.Sample(rng, 60)
	enc := newTestEncoder(sp)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{synthTarget(sp, idx)}
	}
	ens, err := TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Encoded probes over the rest of the space.
	probes := make([][]float64, 0, 300)
	for idx := 0; idx < sp.Size() && len(probes) < 300; idx += 2 {
		probes = append(probes, enc.EncodeIndex(idx, nil))
	}
	return ens, probes
}

func flatten(points [][]float64) ([]float64, int) {
	if len(points) == 0 {
		return nil, 0
	}
	w := len(points[0])
	out := make([]float64, len(points)*w)
	for i, p := range points {
		copy(out[i*w:(i+1)*w], p)
	}
	return out, len(points)
}

// TestPredictBatchMatchesPredict is the ensemble-level parity property
// from the paper's perspective: scoring a batch must be a pure
// performance change, with every prediction within 1e-12 of the
// per-point path (the implementation is in fact bit-identical).
func TestPredictBatchMatchesPredict(t *testing.T) {
	cfg := fastModel()
	cfg.Seed = 31
	ens, probes := trainSynthEnsemble(t, cfg, 7)
	xs, rows := flatten(probes)
	got := ens.PredictBatch(xs, rows, nil)
	for i, p := range probes {
		want := ens.Predict(p)
		if math.Abs(got[i]-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("point %d: batch %v vs per-point %v", i, got[i], want)
		}
	}
}

// TestPredictVarianceBatchMatchesPerPoint checks the active-learning
// disagreement signal survives batching unchanged.
func TestPredictVarianceBatchMatchesPerPoint(t *testing.T) {
	cfg := fastModel()
	cfg.Seed = 32
	ens, probes := trainSynthEnsemble(t, cfg, 8)
	xs, rows := flatten(probes)
	mean, variance := ens.PredictVarianceBatch(xs, rows, nil, nil)
	for i, p := range probes {
		m, v := ens.PredictVariance(p)
		if math.Abs(mean[i]-m) > 1e-12*(1+math.Abs(m)) {
			t.Fatalf("point %d: batch mean %v vs per-point %v", i, mean[i], m)
		}
		if math.Abs(variance[i]-v) > 1e-12*(1+math.Abs(v)) {
			t.Fatalf("point %d: batch variance %v vs per-point %v", i, variance[i], v)
		}
	}
}

// TestPredictBatchWorkersInvariant: sharding a batch across goroutines
// must not change a single bit of the output (rows are independent).
func TestPredictBatchWorkersInvariant(t *testing.T) {
	cfg := fastModel()
	cfg.Seed = 33
	ens, probes := trainSynthEnsemble(t, cfg, 9)
	xs, rows := flatten(probes)

	ens.SetWorkers(1)
	serial := append([]float64(nil), ens.PredictBatch(xs, rows, nil)...)
	for _, w := range []int{2, 4, 8} {
		ens.SetWorkers(w)
		got := ens.PredictBatch(xs, rows, nil)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: point %d differs: %v vs %v", w, i, got[i], serial[i])
			}
		}
	}
}

// TestParallelFoldTrainingMatchesSequential is the reproducibility half
// of the parallel-training contract: per-fold RNG seeds are derived
// from the configuration alone, so a fully sequential run (Workers=1)
// and a maximally parallel run must produce identical ensembles —
// identical predictions and identical cross-validation estimates.
func TestParallelFoldTrainingMatchesSequential(t *testing.T) {
	sp := synthSpace()
	rng := stats.NewRNG(12)
	train := sp.Sample(rng, 50)
	enc := newTestEncoder(sp)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{synthTarget(sp, idx)}
	}
	cfg := fastModel()
	cfg.Seed = 1234

	cfg.Workers = 1
	seq, err := TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Estimate() != par.Estimate() {
		t.Fatalf("estimates differ: sequential %+v vs parallel %+v", seq.Estimate(), par.Estimate())
	}
	for idx := 0; idx < sp.Size(); idx += 7 {
		p := enc.EncodeIndex(idx, nil)
		if seq.Predict(p) != par.Predict(p) {
			t.Fatalf("point %d: sequential %v vs parallel %v", idx, seq.Predict(p), par.Predict(p))
		}
	}
	if seq.Workers() != 1 || par.Workers() != 8 {
		t.Fatalf("worker bounds not recorded: %d/%d", seq.Workers(), par.Workers())
	}
}

// TestPredictBatchEmptyAndValidation covers the degenerate and error
// paths of the batched API.
func TestPredictBatchEmptyAndValidation(t *testing.T) {
	cfg := fastModel()
	cfg.Seed = 35
	ens, _ := trainSynthEnsemble(t, cfg, 11)
	if out := ens.PredictBatch(nil, 0, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d predictions", len(out))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mis-sized batch did not panic")
		}
	}()
	ens.PredictBatch(make([]float64, 3), 2, nil)
}

// TestTrueErrorSkipsZeroTruth pins the held-out evaluation helper the
// cmds share: batched predictions against ground truth, with zero-truth
// points excluded from the statistics (percentage error is undefined)
// and reported via the used count.
func TestTrueErrorSkipsZeroTruth(t *testing.T) {
	cfg := fastModel()
	cfg.Train.MaxEpochs = 60
	cfg.Train.Patience = 15
	ens, _ := trainSynthEnsemble(t, cfg, 31)
	sp := synthSpace()
	enc := newTestEncoder(sp)
	idxs := []int{0, 5, 10, 15}
	truth := make([]float64, len(idxs))
	for i, idx := range idxs {
		truth[i] = synthTarget(sp, idx)
	}
	truth[2] = 0 // undefined percentage error; must be skipped, not divided by

	mean, sd, used := ens.TrueError(enc, idxs, truth)
	if used != len(idxs)-1 {
		t.Fatalf("used = %d, want %d", used, len(idxs)-1)
	}
	// Reference computation over the non-zero points.
	preds := ens.PredictIndices(enc, idxs)
	var errs []float64
	for i := range idxs {
		if truth[i] == 0 {
			continue
		}
		errs = append(errs, math.Abs(preds[i]-truth[i])/truth[i]*100)
	}
	wantMean, wantSD := stats.MeanStd(errs)
	if mean != wantMean || sd != wantSD {
		t.Fatalf("TrueError = (%v,%v), reference = (%v,%v)", mean, sd, wantMean, wantSD)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("TrueError accepted mismatched idxs/truth lengths")
		}
	}()
	ens.TrueError(enc, idxs, truth[:2])
}
