package core

import (
	"fmt"
	"time"

	"repro/internal/encoding"
	"repro/internal/space"
	"repro/internal/stats"
)

// Selection names a batch-selection strategy for the explorer.
type Selection uint8

// Batch-selection strategies.
const (
	// SelectRandom samples each batch uniformly at random without
	// replacement, the paper's §3.3 procedure.
	SelectRandom Selection = iota
	// SelectVariance implements the active-learning extension of
	// Chapter 7: each batch takes the unsimulated candidates on which
	// the current ensemble's members disagree most.
	SelectVariance
)

// ExploreConfig controls the incremental exploration loop.
type ExploreConfig struct {
	Model     ModelConfig
	BatchSize int // simulations added per round (50 in §5)
	// MaxSamples bounds the total number of simulations.
	MaxSamples int
	// TargetMeanErr stops the loop once the cross-validation estimate
	// of mean percentage error falls below it (0 disables).
	TargetMeanErr float64
	Strategy      Selection
	// CandidatePool is the number of random unsimulated points scored
	// per round under SelectVariance (0 selects 20× batch size).
	CandidatePool int
	// Exclude lists design points the explorer must never sample —
	// typically a held-out evaluation set.
	Exclude []int
	Seed    uint64
}

// DefaultExploreConfig mirrors the paper's experimental procedure:
// batches of 50 random simulations, 10-fold CV ensembles, and a 2%
// mean-error stopping threshold.
func DefaultExploreConfig() ExploreConfig {
	return ExploreConfig{
		Model:         DefaultModelConfig(),
		BatchSize:     50,
		MaxSamples:    2000,
		TargetMeanErr: 2.0,
		Strategy:      SelectRandom,
	}
}

// Step records one round of the incremental procedure.
type Step struct {
	Samples   int           // cumulative simulations after this round
	Fraction  float64       // Samples / |design space|
	Est       Estimate      // cross-validation error estimate
	TrainTime time.Duration // wall-clock ensemble training time
}

// Explorer runs the paper's fully automated modeling procedure
// (§3.3, steps 1–8) over one design space and oracle.
type Explorer struct {
	sp      *space.Space
	enc     *encoding.Encoder
	oracle  Oracle
	cfg     ExploreConfig
	rng     *stats.RNG
	sampled map[int]bool

	indices []int       // simulated design points, in sampling order
	inputs  [][]float64 // encoded inputs, aligned with indices
	targets [][]float64 // oracle target vectors, aligned with indices

	ens   *Ensemble
	steps []Step
}

// NewExplorer constructs an explorer over the design space with the
// given oracle.
func NewExplorer(sp *space.Space, oracle Oracle, cfg ExploreConfig) (*Explorer, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("core: batch size must be positive")
	}
	if cfg.MaxSamples < cfg.BatchSize {
		return nil, fmt.Errorf("core: MaxSamples (%d) below one batch (%d)", cfg.MaxSamples, cfg.BatchSize)
	}
	e := &Explorer{
		sp:      sp,
		enc:     encoding.NewEncoder(sp),
		oracle:  oracle,
		cfg:     cfg,
		rng:     stats.NewRNG(cfg.Seed ^ 0xE1F00D),
		sampled: make(map[int]bool),
	}
	for _, idx := range cfg.Exclude {
		// Out-of-range indices would sit in sampled without ever being
		// drawable, silently shrinking the complement arithmetic that
		// Grow and selectByVariance size batches and pools by.
		if idx < 0 || idx >= sp.Size() {
			return nil, fmt.Errorf("core: Exclude index %d out of range [0,%d)", idx, sp.Size())
		}
		e.sampled[idx] = true // reserved forever, never trained on
	}
	return e, nil
}

// Samples returns the design-point indices simulated so far.
func (e *Explorer) Samples() []int { return append([]int(nil), e.indices...) }

// Steps returns the per-round history.
func (e *Explorer) Steps() []Step { return append([]Step(nil), e.steps...) }

// Ensemble returns the most recently trained ensemble (nil before the
// first round).
func (e *Explorer) Ensemble() *Ensemble { return e.ens }

// Encoder exposes the input encoding, so callers can encode evaluation
// points consistently.
func (e *Explorer) Encoder() *encoding.Encoder { return e.enc }

// Run executes rounds of sample→simulate→train→estimate until the error
// target is met or MaxSamples is reached, returning the final ensemble.
func (e *Explorer) Run() (*Ensemble, error) {
	for len(e.indices) < e.cfg.MaxSamples {
		n := e.cfg.BatchSize
		if rem := e.cfg.MaxSamples - len(e.indices); n > rem {
			n = rem
		}
		before := len(e.indices)
		if err := e.Grow(n); err != nil {
			return nil, err
		}
		if len(e.indices) == before {
			break // space (minus exclusions) exhausted; no progress possible
		}
		if err := e.TrainRound(); err != nil {
			return nil, err
		}
		if e.cfg.TargetMeanErr > 0 && e.ens.Estimate().MeanErr <= e.cfg.TargetMeanErr {
			break
		}
	}
	if e.ens == nil {
		return nil, fmt.Errorf("core: explorer ran no rounds")
	}
	return e.ens, nil
}

// Grow selects n new unsimulated design points (per the configured
// strategy), evaluates them through the oracle, and adds them to the
// training pool.
func (e *Explorer) Grow(n int) error {
	if n <= 0 {
		return nil
	}
	// sampled holds simulated points plus Exclude-reserved ones; only
	// the complement is drawable by either strategy.
	remaining := e.sp.Size() - len(e.sampled)
	if n > remaining {
		n = remaining
	}
	if n <= 0 {
		return nil
	}
	var batch []int
	if e.cfg.Strategy == SelectVariance && e.ens != nil {
		batch = e.selectByVariance(n)
	} else {
		batch = e.selectRandom(n)
	}
	targets, err := e.oracle.Evaluate(batch)
	if err != nil {
		return fmt.Errorf("core: oracle: %w", err)
	}
	if len(targets) != len(batch) {
		return fmt.Errorf("core: oracle returned %d results for %d points", len(targets), len(batch))
	}
	for i, idx := range batch {
		if len(targets[i]) == 0 {
			return fmt.Errorf("core: oracle returned empty target vector for point %d", idx)
		}
		e.sampled[idx] = true
		e.indices = append(e.indices, idx)
		e.inputs = append(e.inputs, e.enc.EncodeIndex(idx, nil))
		e.targets = append(e.targets, targets[i])
	}
	return nil
}

// TrainRound trains a fresh ensemble on everything simulated so far and
// records the round.
func (e *Explorer) TrainRound() error {
	start := time.Now()
	cfg := e.cfg.Model
	// Derive a per-round seed so fold shuffles differ as data grows but
	// remain reproducible.
	cfg.Seed = e.cfg.Seed + uint64(len(e.indices))
	ens, err := TrainEnsemble(e.inputs, e.targets, cfg)
	if err != nil {
		return err
	}
	e.ens = ens
	e.steps = append(e.steps, Step{
		Samples:   len(e.indices),
		Fraction:  float64(len(e.indices)) / float64(e.sp.Size()),
		Est:       ens.Estimate(),
		TrainTime: time.Since(start),
	})
	return nil
}

// selectRandom draws n unsimulated points uniformly.
func (e *Explorer) selectRandom(n int) []int {
	out := make([]int, 0, n)
	for len(out) < n {
		idx := e.rng.Intn(e.sp.Size())
		if e.sampled[idx] {
			continue
		}
		e.sampled[idx] = true // reserve immediately to avoid duplicates in batch
		out = append(out, idx)
	}
	// Un-reserve; Grow records them authoritatively after simulation.
	for _, idx := range out {
		delete(e.sampled, idx)
	}
	return out
}

// selectByVariance scores a random candidate pool with the current
// ensemble and returns the n candidates with the highest member
// disagreement. The whole pool is encoded into one flat matrix and
// scored by a single batched prediction call, so a round costs one
// ensemble sweep instead of thousands of per-point ones.
func (e *Explorer) selectByVariance(n int) []int {
	pool := e.cfg.CandidatePool
	if pool <= 0 {
		pool = 20 * n
	}
	// Clamp to the points actually drawable: sampled includes both
	// simulated indices and Exclude-reserved ones, either of which the
	// draw loop below rejects.
	if avail := e.sp.Size() - len(e.sampled); pool > avail {
		pool = avail
	}
	idxs := make([]int, 0, pool)
	seen := make(map[int]bool, pool)
	width := e.enc.Width()
	xs := make([]float64, pool*width)
	for len(idxs) < pool {
		idx := e.rng.Intn(e.sp.Size())
		if e.sampled[idx] || seen[idx] {
			continue
		}
		seen[idx] = true
		e.enc.EncodeIndex(idx, xs[len(idxs)*width:(len(idxs)+1)*width])
		idxs = append(idxs, idx)
	}
	_, vs := e.ens.PredictVarianceBatch(xs, pool, nil, nil)
	type scored struct {
		idx int
		v   float64
	}
	cands := make([]scored, pool)
	for i, idx := range idxs {
		cands[i] = scored{idx, vs[i]}
	}
	// Grow bounds n by the drawable complement, so pool >= n holds;
	// keep the selection safe regardless.
	if n > len(cands) {
		n = len(cands)
	}
	// Partial selection of the top n by variance.
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].v > cands[best].v {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].idx
	}
	return out
}
