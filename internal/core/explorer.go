package core

import (
	"fmt"
	"time"

	"repro/internal/encoding"
	"repro/internal/space"
	"repro/internal/stats"
)

// Selection names a batch-selection strategy for the explorer.
type Selection uint8

// Batch-selection strategies.
const (
	// SelectRandom samples each batch uniformly at random without
	// replacement, the paper's §3.3 procedure.
	SelectRandom Selection = iota
	// SelectVariance implements the active-learning extension of
	// Chapter 7: each batch takes the unsimulated candidates on which
	// the current ensemble's members disagree most.
	SelectVariance
)

// ExploreConfig controls the incremental exploration loop.
type ExploreConfig struct {
	Model     ModelConfig
	BatchSize int // simulations added per round (50 in §5)
	// MaxSamples bounds the total number of simulations.
	MaxSamples int
	// TargetMeanErr stops the loop once the cross-validation estimate
	// of mean percentage error falls below it (0 disables).
	TargetMeanErr float64
	Strategy      Selection
	// Acquire, when non-nil, selects batches with a Pareto-aware
	// acquisition function (see AcquireConfig) instead of Strategy once
	// an ensemble exists; the first round is always random. It is part
	// of the loop configuration, so checkpoints carry it and a resumed
	// run replays the same acquisition bit-identically.
	Acquire *AcquireConfig
	// CandidatePool is the number of random unsimulated points scored
	// per round under SelectVariance or acquisition (0 selects 20×
	// batch size).
	CandidatePool int
	// Exclude lists design points the explorer must never sample —
	// typically a held-out evaluation set.
	Exclude []int
	Seed    uint64
}

// Validate reports structural problems with the loop configuration
// against the given design space.
func (c ExploreConfig) Validate(sp *space.Space) error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.BatchSize <= 0 {
		return fmt.Errorf("core: batch size must be positive")
	}
	if c.MaxSamples < c.BatchSize {
		return fmt.Errorf("core: MaxSamples (%d) below one batch (%d)", c.MaxSamples, c.BatchSize)
	}
	if c.Acquire != nil {
		if err := c.Acquire.Validate(); err != nil {
			return err
		}
	}
	for _, idx := range c.Exclude {
		// Out-of-range indices would sit reserved without ever being
		// drawable, silently shrinking the complement arithmetic that
		// batch and pool sizes are derived from.
		if idx < 0 || idx >= sp.Size() {
			return fmt.Errorf("core: Exclude index %d out of range [0,%d)", idx, sp.Size())
		}
	}
	return nil
}

// SeedRNG returns the selection RNG the configuration induces; the
// explorer and the pipelined driver both draw from this stream.
func (c ExploreConfig) SeedRNG() *stats.RNG {
	return stats.NewRNG(c.Seed ^ 0xE1F00D)
}

// RoundModel returns the model configuration for an ensemble trained on
// samples points: a per-round seed derived from the loop seed, so fold
// shuffles differ as data grows but remain reproducible.
func (c ExploreConfig) RoundModel(samples int) ModelConfig {
	m := c.Model
	m.Seed = c.Seed + uint64(samples)
	return m
}

// DefaultExploreConfig mirrors the paper's experimental procedure:
// batches of 50 random simulations, 10-fold CV ensembles, and a 2%
// mean-error stopping threshold.
func DefaultExploreConfig() ExploreConfig {
	return ExploreConfig{
		Model:         DefaultModelConfig(),
		BatchSize:     50,
		MaxSamples:    2000,
		TargetMeanErr: 2.0,
		Strategy:      SelectRandom,
	}
}

// Step records one round of the incremental procedure.
type Step struct {
	Samples   int           // cumulative simulations after this round
	Fraction  float64       // Samples / |design space|
	Est       Estimate      // cross-validation error estimate
	TrainTime time.Duration // wall-clock ensemble training time
}

// Explorer runs the paper's fully automated modeling procedure
// (§3.3, steps 1–8) over one design space and oracle, strictly
// sequentially: each round selects a batch, blocks on one oracle call,
// then blocks on ensemble training.
//
// Explorer is kept as the compatibility surface and the deterministic
// reference implementation; the pipelined engine in internal/explore
// overlaps these stages, fans the oracle out over workers and
// checkpoints between rounds, and is tested to reproduce this loop
// bit-identically. New code should prefer explore.Driver.
type Explorer struct {
	sp     *space.Space
	enc    *encoding.Encoder
	oracle Oracle
	cfg    ExploreConfig
	sel    *BatchSelector
	acq    Acquirer // non-nil iff cfg.Acquire is

	indices []int       // simulated design points, in sampling order
	inputs  [][]float64 // encoded inputs, aligned with indices
	targets [][]float64 // oracle target vectors, aligned with indices
	width   int         // established target-vector width (0 before any)

	ens   *Ensemble
	steps []Step
}

// NewExplorer constructs an explorer over the design space with the
// given oracle.
func NewExplorer(sp *space.Space, oracle Oracle, cfg ExploreConfig) (*Explorer, error) {
	if err := cfg.Validate(sp); err != nil {
		return nil, err
	}
	enc := encoding.NewEncoder(sp)
	e := &Explorer{
		sp:     sp,
		enc:    enc,
		oracle: oracle,
		cfg:    cfg,
		sel:    NewBatchSelector(sp, enc, cfg.SeedRNG()),
	}
	if cfg.Acquire != nil {
		acq, err := NewAcquirer(cfg.Acquire)
		if err != nil {
			return nil, err
		}
		e.acq = acq
	}
	for _, idx := range cfg.Exclude {
		e.sel.Reserve(idx) // reserved forever, never trained on
	}
	return e, nil
}

// Samples returns the design-point indices simulated so far.
func (e *Explorer) Samples() []int { return append([]int(nil), e.indices...) }

// Steps returns the per-round history.
func (e *Explorer) Steps() []Step { return append([]Step(nil), e.steps...) }

// Ensemble returns the most recently trained ensemble (nil before the
// first round).
func (e *Explorer) Ensemble() *Ensemble { return e.ens }

// Encoder exposes the input encoding, so callers can encode evaluation
// points consistently.
func (e *Explorer) Encoder() *encoding.Encoder { return e.enc }

// Run executes rounds of sample→simulate→train→estimate until the error
// target is met or MaxSamples is reached, returning the final ensemble.
func (e *Explorer) Run() (*Ensemble, error) {
	for len(e.indices) < e.cfg.MaxSamples {
		n := e.cfg.BatchSize
		if rem := e.cfg.MaxSamples - len(e.indices); n > rem {
			n = rem
		}
		before := len(e.indices)
		if err := e.Grow(n); err != nil {
			return nil, err
		}
		if len(e.indices) == before {
			break // space (minus exclusions) exhausted; no progress possible
		}
		if err := e.TrainRound(); err != nil {
			return nil, err
		}
		if e.cfg.TargetMeanErr > 0 && e.ens.Estimate().MeanErr <= e.cfg.TargetMeanErr {
			break
		}
	}
	if e.ens == nil {
		return nil, fmt.Errorf("core: explorer ran no rounds")
	}
	return e.ens, nil
}

// Grow selects n new unsimulated design points (per the configured
// strategy), evaluates them through the oracle, and adds them to the
// training pool.
func (e *Explorer) Grow(n int) error {
	var batch []int
	switch {
	case e.acq != nil && e.ens != nil:
		var err error
		batch, err = e.sel.Acquire(e.acq, e.ens, e.inputs, n, e.cfg.CandidatePool)
		if err != nil {
			return err
		}
	case e.cfg.Strategy == SelectVariance && e.ens != nil:
		batch = e.sel.ByVariance(e.ens, n, e.cfg.CandidatePool)
	default:
		batch = e.sel.Random(n)
	}
	if len(batch) == 0 {
		return nil
	}
	targets, err := e.oracle.Evaluate(batch)
	if err != nil {
		return fmt.Errorf("core: oracle: %w", err)
	}
	width, err := CheckBatchTargets(batch, targets, e.width)
	if err != nil {
		return err
	}
	e.width = width
	for i, idx := range batch {
		e.sel.Reserve(idx)
		e.indices = append(e.indices, idx)
		e.inputs = append(e.inputs, e.enc.EncodeIndex(idx, nil))
		e.targets = append(e.targets, targets[i])
	}
	return nil
}

// TrainRound trains a fresh ensemble on everything simulated so far and
// records the round.
func (e *Explorer) TrainRound() error {
	start := time.Now() //repolint:allow determinism -- Step.TrainTime is wall-clock training telemetry; it never feeds selection or weights
	ens, err := TrainEnsemble(e.inputs, e.targets, e.cfg.RoundModel(len(e.indices)))
	if err != nil {
		return err
	}
	e.ens = ens
	e.steps = append(e.steps, Step{
		Samples:   len(e.indices),
		Fraction:  float64(len(e.indices)) / float64(e.sp.Size()),
		Est:       ens.Estimate(),
		TrainTime: time.Since(start), //repolint:allow determinism -- wall-clock training telemetry; excluded from bit-identity comparisons
	})
	return nil
}
