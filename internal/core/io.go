package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ann"
	"repro/internal/encoding"
)

// serializedEnsemble is the on-disk form of an Ensemble: its scalers,
// target transform, accuracy estimate, and each member network's JSON.
type serializedEnsemble struct {
	Version   int               `json:"version"`
	Outputs   int               `json:"outputs"`
	LogTarget bool              `json:"logTarget"`
	Scalers   []encoding.Scaler `json:"scalers"`
	Estimate  Estimate          `json:"estimate"`
	Nets      []json.RawMessage `json:"nets"`
}

const ensembleVersion = 1

// Save writes the trained ensemble to w as JSON, so an expensive model
// (hours of simulation behind it) can be reused across processes — the
// library behaviour a design team actually needs from "build the model
// once, query it forever".
func (e *Ensemble) Save(w io.Writer) error {
	s := serializedEnsemble{
		Version:   ensembleVersion,
		Outputs:   e.outputs,
		LogTarget: e.logT,
		Scalers:   e.scalers,
		Estimate:  e.est,
	}
	for _, n := range e.nets {
		var buf bytes.Buffer
		if err := n.Save(&buf); err != nil {
			return fmt.Errorf("core: save ensemble: %w", err)
		}
		s.Nets = append(s.Nets, json.RawMessage(buf.Bytes()))
	}
	if err := json.NewEncoder(w).Encode(&s); err != nil {
		return fmt.Errorf("core: save ensemble: %w", err)
	}
	return nil
}

// LoadEnsemble reads an ensemble previously written by Save.
func LoadEnsemble(r io.Reader) (*Ensemble, error) {
	var s serializedEnsemble
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("core: load ensemble: %w", err)
	}
	if s.Version != ensembleVersion {
		return nil, fmt.Errorf("core: load ensemble: unsupported version %d", s.Version)
	}
	if len(s.Nets) == 0 {
		return nil, fmt.Errorf("core: load ensemble: no member networks")
	}
	if len(s.Scalers) != s.Outputs {
		return nil, fmt.Errorf("core: load ensemble: %d scalers for %d outputs",
			len(s.Scalers), s.Outputs)
	}
	e := &Ensemble{
		outputs: s.Outputs,
		logT:    s.LogTarget,
		scalers: s.Scalers,
		est:     s.Estimate,
		workers: resolveWorkers(0),
	}
	for i, raw := range s.Nets {
		n, err := ann.Load(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("core: load ensemble member %d: %w", i, err)
		}
		if n.Config().Outputs != s.Outputs {
			return nil, fmt.Errorf("core: load ensemble member %d: %d outputs, ensemble has %d",
				i, n.Config().Outputs, s.Outputs)
		}
		e.nets = append(e.nets, n)
	}
	return e, nil
}
