package core

import (
	"fmt"
	"sync"

	"repro/internal/ann"
)

// MetricKind selects what a Metric reads off its ensemble.
type MetricKind uint8

// Metric kinds.
const (
	// MetricMean is the ensemble-mean prediction of one output column —
	// a predicted performance/energy/rate metric.
	MetricMean MetricKind = iota
	// MetricVariance is the member disagreement on one output column —
	// the model's own confidence signal (Chapter 7), usable as a
	// ranking axis: low variance marks predictions the ensemble agrees
	// on, high variance marks the corners of the space worth simulating.
	MetricVariance
)

// Metric is one named ranking axis of a multi-metric sweep, backed by
// an ensemble output. Different metrics may come from different
// ensembles — e.g. a performance model and an energy model trained
// over the same design space — or from different output columns of one
// multi-task ensemble.
type Metric struct {
	Name     string
	Ens      *Ensemble
	Output   int        // ensemble output column (0 = primary target)
	Kind     MetricKind // mean prediction or member variance
	Minimize bool       // ranking direction: true when smaller is better
}

// MetricSet is the multi-model metric adapter: a fixed list of metrics
// whose ensembles all consume one encoding, evaluated column-by-column
// over encoded batches. Evaluation is grouped so that a mean and a
// variance metric reading the same (ensemble, output) pair share one
// forward sweep instead of running the members twice.
type MetricSet struct {
	metrics []Metric
	inputs  int
	groups  []metricGroup
}

// metricGroup is one shared evaluation: every metric reading the same
// (ensemble, output) pair, split by kind.
type metricGroup struct {
	ens      *Ensemble
	output   int
	mean     []int // metric positions wanting the mean column
	variance []int // metric positions wanting the variance column
}

// NewMetricSet validates and plans a metric list: at least one metric,
// unique non-empty names, every output in range of its ensemble, and
// every ensemble agreeing on the encoded input width.
func NewMetricSet(metrics []Metric) (*MetricSet, error) {
	if len(metrics) == 0 {
		return nil, fmt.Errorf("core: metric set needs at least one metric")
	}
	s := &MetricSet{metrics: append([]Metric(nil), metrics...)}
	names := make(map[string]bool, len(metrics))
	for i, m := range s.metrics {
		if m.Name == "" {
			return nil, fmt.Errorf("core: metric %d has no name", i)
		}
		if names[m.Name] {
			return nil, fmt.Errorf("core: duplicate metric name %q", m.Name)
		}
		names[m.Name] = true
		if m.Ens == nil {
			return nil, fmt.Errorf("core: metric %q has no ensemble", m.Name)
		}
		if m.Output < 0 || m.Output >= m.Ens.Outputs() {
			return nil, fmt.Errorf("core: metric %q reads output %d, ensemble predicts %d target(s)",
				m.Name, m.Output, m.Ens.Outputs())
		}
		if m.Kind != MetricMean && m.Kind != MetricVariance {
			return nil, fmt.Errorf("core: metric %q has unknown kind %d", m.Name, m.Kind)
		}
		if i == 0 {
			s.inputs = m.Ens.Inputs()
		} else if m.Ens.Inputs() != s.inputs {
			return nil, fmt.Errorf("core: metric %q expects %d inputs, metric %q expects %d — the models were not trained on one encoding",
				m.Name, m.Ens.Inputs(), s.metrics[0].Name, s.inputs)
		}
		g := s.group(m.Ens, m.Output)
		if m.Kind == MetricVariance {
			g.variance = append(g.variance, i)
		} else {
			g.mean = append(g.mean, i)
		}
	}
	return s, nil
}

// meanScratchPool holds throwaway mean buffers for variance-only
// metric groups.
var meanScratchPool = sync.Pool{New: func() any { return new([]float64) }}

func getMeanScratch(rows int) []float64 {
	buf := meanScratchPool.Get().(*[]float64)
	if cap(*buf) < rows {
		*buf = make([]float64, rows)
	}
	return (*buf)[:rows]
}

// group finds or adds the evaluation group for (ens, output).
func (s *MetricSet) group(ens *Ensemble, output int) *metricGroup {
	for i := range s.groups {
		if s.groups[i].ens == ens && s.groups[i].output == output {
			return &s.groups[i]
		}
	}
	s.groups = append(s.groups, metricGroup{ens: ens, output: output})
	return &s.groups[len(s.groups)-1]
}

// Len returns the number of metrics.
func (s *MetricSet) Len() int { return len(s.metrics) }

// Inputs returns the encoded input width every backing ensemble expects.
func (s *MetricSet) Inputs() int { return s.inputs }

// Metrics returns the metric definitions in evaluation-column order.
func (s *MetricSet) Metrics() []Metric { return append([]Metric(nil), s.metrics...) }

// Names returns the metric names in column order.
func (s *MetricSet) Names() []string {
	out := make([]string, len(s.metrics))
	for i, m := range s.metrics {
		out[i] = m.Name
	}
	return out
}

// Minimize returns the per-column ranking directions.
func (s *MetricSet) Minimize() []bool {
	out := make([]bool, len(s.metrics))
	for i, m := range s.metrics {
		out[i] = m.Minimize
	}
	return out
}

// Eval scores rows encoded points (xs is row-major, rows×Inputs()) and
// fills cols[m][r] with metric m's value for row r. Every column is
// bit-identical to the corresponding single-metric batch call
// (PredictOutputBatch / PredictOutputVarianceBatch), so sweep results
// do not depend on which metrics ride along.
func (s *MetricSet) Eval(xs []float64, rows int, cols [][]float64) {
	s.EvalKernel(xs, rows, cols, ann.KernelExact)
}

// EvalKernel is Eval with an explicit kernel tier (see ann.KernelMode):
// ann.KernelExact is Eval bit for bit, while the fast tiers run the
// bounded-error kernels — still bit-identical within a mode for any
// chunking or worker count, so sweep shards agree across a cluster.
func (s *MetricSet) EvalKernel(xs []float64, rows int, cols [][]float64, mode ann.KernelMode) {
	if len(cols) != len(s.metrics) {
		panic(fmt.Sprintf("core: %d metric columns for %d metrics", len(cols), len(s.metrics)))
	}
	for m := range cols {
		if len(cols[m]) != rows {
			panic(fmt.Sprintf("core: metric column %d has %d slots for %d rows", m, len(cols[m]), rows))
		}
	}
	for _, g := range s.groups {
		switch {
		case len(g.variance) > 0:
			// One fused sweep yields both columns, written straight into
			// the first metric asking for each and mirrored to the rest.
			// A variance-only group still needs a mean buffer; pool it so
			// streaming sweeps do not churn one allocation per chunk.
			mean, pooled := []float64(nil), false
			if len(g.mean) > 0 {
				mean = cols[g.mean[0]]
			} else {
				mean, pooled = getMeanScratch(rows), true
			}
			mean, variance := g.ens.PredictOutputVarianceBatchKernel(g.output, xs, rows, mean, cols[g.variance[0]], mode)
			for _, m := range g.mean[1:] {
				copy(cols[m], mean)
			}
			for _, m := range g.variance[1:] {
				copy(cols[m], variance)
			}
			if pooled {
				meanScratchPool.Put(&mean)
			}
		case len(g.mean) == 1:
			g.ens.PredictOutputBatchKernel(g.output, xs, rows, cols[g.mean[0]], mode)
		default:
			g.ens.PredictOutputBatchKernel(g.output, xs, rows, cols[g.mean[0]], mode)
			for _, m := range g.mean[1:] {
				copy(cols[m], cols[g.mean[0]])
			}
		}
	}
}
