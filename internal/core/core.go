// Package core implements the paper's primary contribution: highly
// accurate, confident predictive models of architectural design spaces
// built from sparse simulation samples (Chapters 2 and 3).
//
// The pieces, mapped to the paper:
//
//   - Ensemble — a k-fold cross-validation ensemble of feed-forward
//     ANNs (Figure 3.3): each member trains on k−2 folds, early-stops on
//     one held-aside fold and is tested on another; predictions average
//     all members; the pooled test-fold percentage errors estimate the
//     model's mean error and its standard deviation over the full
//     design space (§3.2, §5.2).
//   - Explorer — the incremental procedure of §3.3 (steps 1–8): sample a
//     batch of design points, simulate them, train an ensemble, read the
//     cross-validation error estimate, and repeat until the estimate
//     falls below the architect's threshold.
//   - SelectVariance — the active-learning extension sketched in
//     Chapter 7: instead of random batches, pick the candidate points on
//     which the ensemble members disagree most.
//   - Multi-target support — the multi-task-learning extension of
//     Chapter 7: oracles may return several correlated metrics (IPC plus
//     cache miss and branch mispredict rates); one network with several
//     outputs learns them jointly, sharing hidden-layer weights.
//
// core depends only on the space/encoding/ann/stats substrates; the
// cycle-level simulator is attached through the Oracle interface by the
// caller (see internal/experiments for the simulation-backed oracle).
package core

import (
	"fmt"

	"repro/internal/ann"
)

// Oracle evaluates a batch of design-point indices, returning one
// target vector per index (element 0 is the primary metric, IPC in the
// paper's studies; any further elements are auxiliary metrics for
// multi-task training). Implementations are free to evaluate the batch
// concurrently; results must align with the input order.
type Oracle interface {
	Evaluate(indices []int) ([][]float64, error)
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(indices []int) ([][]float64, error)

// Evaluate implements Oracle.
func (f OracleFunc) Evaluate(indices []int) ([][]float64, error) { return f(indices) }

// ModelConfig bundles every hyperparameter of the ensemble model.
type ModelConfig struct {
	Folds     int   // cross-validation folds (10 in all paper experiments)
	Hidden    []int // hidden-layer sizes (paper: one layer of 16)
	HiddenAct ann.Activation
	OutputAct ann.Activation

	LearningRate float64
	Momentum     float64
	InitRange    float64

	Train     ann.TrainOpts
	ScalerPad float64 // padding fraction for target minimax scaling
	// Workers bounds the ensemble's concurrency: at most this many
	// goroutines train cross-validation folds and shard batched
	// predictions (0 = GOMAXPROCS; 1 or any negative value = fully
	// sequential). Results are identical for any setting — fold seeds
	// and batch outputs do not depend on scheduling.
	Workers int
	// LogTarget trains on log-transformed targets, making squared error
	// in network space proportional to relative (percentage) error —
	// this repository's default, which handles the simulator's wide IPC
	// dynamic range. The paper instead trains on linear targets and
	// equalizes percentage error through presentation frequency
	// (PaperConfig restores that behaviour exactly).
	LogTarget bool
	Seed      uint64
}

// DefaultModelConfig returns the configuration the repository's
// experiments use: the paper's architecture (10 folds, 16 sigmoid
// hidden units, momentum 0.5, U[-0.01,0.01] init) with an accelerated
// learning-rate schedule (0.25, decaying 0.25 %/epoch) and log-space
// targets so full learning-curve sweeps fit a laptop-class compute
// budget on this simulator's wider-dynamic-range surfaces. See
// PaperConfig for the literal §3.1 hyperparameters.
func DefaultModelConfig() ModelConfig {
	return ModelConfig{
		Folds:        10,
		Hidden:       []int{16},
		HiddenAct:    ann.Sigmoid,
		OutputAct:    ann.Linear,
		LearningRate: 0.25,
		Momentum:     0.5,
		InitRange:    0.01,
		Train:        ann.DefaultTrainOpts(),
		ScalerPad:    0.05,
		LogTarget:    true,
	}
}

// PaperConfig returns the hyperparameters exactly as §3.1 states them:
// learning rate 0.001 with no decay, momentum 0.5, one hidden layer of
// 16 units, weights initialized uniformly on [-0.01, +0.01], 10-fold
// cross validation. Training takes correspondingly longer.
func PaperConfig() ModelConfig {
	c := DefaultModelConfig()
	c.LearningRate = 0.001
	c.Train = ann.PaperTrainOpts()
	c.LogTarget = false // linear targets with 1/IPC presentation weighting
	return c
}

// Validate reports structural problems.
func (c ModelConfig) Validate() error {
	if c.Folds < 3 {
		return fmt.Errorf("core: need at least 3 folds (train/ES/test), got %d", c.Folds)
	}
	if len(c.Hidden) == 0 {
		return fmt.Errorf("core: need at least one hidden layer")
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("core: learning rate must be positive")
	}
	return nil
}
