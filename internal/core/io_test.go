package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func trainedTestEnsemble(t *testing.T, outputs int) (*Ensemble, [][]float64) {
	t.Helper()
	sp := synthSpace()
	rng := stats.NewRNG(41)
	train := sp.Sample(rng, 50)
	enc := newTestEncoder(sp)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		v := synthTarget(sp, idx)
		row := make([]float64, outputs)
		for o := range row {
			row[o] = v / float64(o+1)
		}
		y[i] = row
	}
	cfg := fastModel()
	cfg.Train.MaxEpochs = 60
	cfg.Train.Patience = 15
	ens, err := TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ens, x
}

func TestEnsembleSaveLoadRoundTrip(t *testing.T) {
	ens, x := trainedTestEnsemble(t, 1)
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEnsemble(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Members() != ens.Members() || loaded.Outputs() != ens.Outputs() {
		t.Fatal("shape not preserved")
	}
	if loaded.Estimate() != ens.Estimate() {
		t.Fatal("estimate not preserved")
	}
	for _, xi := range x[:10] {
		if got, want := loaded.Predict(xi), ens.Predict(xi); got != want {
			t.Fatalf("loaded ensemble predicts %v, original %v", got, want)
		}
	}
}

func TestEnsembleSaveLoadMultiOutput(t *testing.T) {
	ens, x := trainedTestEnsemble(t, 3)
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEnsemble(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := ens.PredictAll(x[0])
	b := loaded.PredictAll(x[0])
	for o := range a {
		if a[o] != b[o] {
			t.Fatalf("output %d differs after round trip", o)
		}
	}
}

func TestLoadEnsembleRejectsGarbage(t *testing.T) {
	if _, err := LoadEnsemble(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadEnsemble(strings.NewReader(`{"version":99,"outputs":1,"nets":[{}]}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := LoadEnsemble(strings.NewReader(`{"version":1,"outputs":1,"scalers":[{"Lo":0,"Hi":1}],"nets":[]}`)); err == nil {
		t.Fatal("empty ensemble accepted")
	}
}

func TestSensitivityRanksInfluentialAxis(t *testing.T) {
	// synthTarget moves most strongly along axis "a" (0.3·log2 over
	// 1..8 = ±0.9) and the nominal "mode" multiplier; axis "c" spans
	// only ±0.1·b·1.0. Sensitivity must rank "a" above "c".
	ens, _ := trainedTestEnsemble(t, 1)
	sp := synthSpace()
	sens := Sensitivity(ens, sp, 16, 3)
	if len(sens) != sp.NumParams() {
		t.Fatalf("%d sensitivities for %d axes", len(sens), sp.NumParams())
	}
	byName := map[string]AxisSensitivity{}
	for _, s := range sens {
		if s.MeanSwing < 0 || s.MaxSwing < s.MeanSwing {
			t.Fatalf("inconsistent swing stats %+v", s)
		}
		byName[s.Name] = s
	}
	if byName["a"].Rank > byName["c"].Rank {
		t.Fatalf("axis a (rank %d) should outrank axis c (rank %d)",
			byName["a"].Rank, byName["c"].Rank)
	}
	ranked := RankedSensitivities(sens)
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Rank != ranked[i-1].Rank+1 {
			t.Fatal("ranking not consecutive")
		}
	}
}
