package workload

import (
	"testing"
	"testing/quick"
)

func TestAppsComplete(t *testing.T) {
	apps := Apps()
	if len(apps) != 8 {
		t.Fatalf("suite has %d apps, want 8", len(apps))
	}
	want := map[string]bool{
		"gzip": true, "mcf": true, "crafty": true, "twolf": true,
		"mgrid": true, "applu": true, "mesa": true, "equake": true,
	}
	for _, a := range apps {
		if !want[a] {
			t.Errorf("unexpected app %q", a)
		}
	}
}

func TestIsFloatingPoint(t *testing.T) {
	for app, fp := range map[string]bool{
		"gzip": false, "mcf": false, "crafty": false, "twolf": false,
		"mgrid": true, "applu": true, "mesa": true, "equake": true,
	} {
		if IsFloatingPoint(app) != fp {
			t.Errorf("IsFloatingPoint(%s) = %v, want %v", app, !fp, fp)
		}
	}
	if IsFloatingPoint("nonexistent") {
		t.Error("unknown app reported as FP")
	}
}

func TestGetDeterministic(t *testing.T) {
	a := Get("gzip", 5000)
	b := Get("gzip", 5000)
	if a != b {
		t.Fatal("cache did not return the identical trace object")
	}
	// Distinct lengths are distinct traces but share a prefix property:
	// both must be reproducible. Force regeneration via the unexported
	// generator to verify bit-equality without the cache.
	c := generate(profiles["gzip"], 5000)
	if len(c.Insts) != len(a.Insts) {
		t.Fatalf("regenerated length %d != %d", len(c.Insts), len(a.Insts))
	}
	for i := range a.Insts {
		if a.Insts[i] != c.Insts[i] {
			t.Fatalf("regenerated trace differs at %d: %+v vs %+v", i, a.Insts[i], c.Insts[i])
		}
	}
}

func TestGetPanicsOnUnknownApp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown app did not panic")
		}
	}()
	Get("specint95", 1000)
}

func TestTraceLength(t *testing.T) {
	for _, n := range []int{100, 1234, 20000} {
		tr := Get("mesa", n)
		if tr.Len() != n {
			t.Fatalf("requested %d instructions, got %d", n, tr.Len())
		}
	}
}

func TestDependenciesPointBackwards(t *testing.T) {
	for _, app := range Apps() {
		tr := Get(app, 8000)
		for i, in := range tr.Insts {
			if in.Src1 < 0 || in.Src2 < 0 {
				t.Fatalf("%s[%d]: negative dependency distance", app, i)
			}
			if int(in.Src1) > i || int(in.Src2) > i {
				t.Fatalf("%s[%d]: dependency reaches before trace start", app, i)
			}
		}
	}
}

func TestMemoryInstructionsHaveAddresses(t *testing.T) {
	tr := Get("mcf", 8000)
	for i, in := range tr.Insts {
		if in.Class.IsMem() && in.Addr == 0 {
			t.Fatalf("mem instruction %d has zero address", i)
		}
		if !in.Class.IsMem() && in.Addr != 0 {
			t.Fatalf("non-mem instruction %d has address %#x", i, in.Addr)
		}
	}
}

func TestBranchesHaveTargets(t *testing.T) {
	tr := Get("crafty", 8000)
	branches := 0
	for i, in := range tr.Insts {
		if in.Class == Branch {
			branches++
			if in.Target == 0 {
				t.Fatalf("branch %d has no target", i)
			}
		} else if in.Taken {
			t.Fatalf("non-branch %d marked taken", i)
		}
	}
	if branches == 0 {
		t.Fatal("trace has no branches")
	}
}

func TestBlockIDsWithinRange(t *testing.T) {
	tr := Get("twolf", 8000)
	for i, in := range tr.Insts {
		if int(in.Block) >= tr.NumBlocks {
			t.Fatalf("instruction %d: block %d out of %d", i, in.Block, tr.NumBlocks)
		}
	}
}

func TestPCsAreWordAlignedAndInText(t *testing.T) {
	tr := Get("applu", 8000)
	for i, in := range tr.Insts {
		if in.PC%4 != 0 {
			t.Fatalf("instruction %d PC %#x not 4-byte aligned", i, in.PC)
		}
		if in.PC < codeBase {
			t.Fatalf("instruction %d PC %#x below text base", i, in.PC)
		}
	}
}

func TestSummarizeMixMatchesProfileIntent(t *testing.T) {
	// The realized dynamic mix should be in the right ballpark of the
	// profile weights: FP apps have FP work, integer apps do not.
	for _, app := range Apps() {
		s := Get(app, 20000).Summarize()
		if s.Total != 20000 {
			t.Fatalf("%s: total %d", app, s.Total)
		}
		if s.Branches == 0 || s.MemPct < 10 || s.MemPct > 55 {
			t.Fatalf("%s: implausible mix: branches=%d mem=%.1f%%", app, s.Branches, s.MemPct)
		}
		if IsFloatingPoint(app) && s.FPPct < 10 {
			t.Errorf("%s: FP app with only %.1f%% FP work", app, s.FPPct)
		}
		if !IsFloatingPoint(app) && s.FPPct > 1 {
			t.Errorf("%s: integer app with %.1f%% FP work", app, s.FPPct)
		}
	}
}

func TestTakenRateReasonable(t *testing.T) {
	for _, app := range Apps() {
		s := Get(app, 20000).Summarize()
		if s.TakenPct < 20 || s.TakenPct > 97 {
			t.Errorf("%s: taken rate %.1f%% outside plausible range", app, s.TakenPct)
		}
	}
}

func TestSlice(t *testing.T) {
	tr := Get("gzip", 4000)
	s := tr.Slice(1000, 2000)
	if s.Len() != 1000 {
		t.Fatalf("slice length %d", s.Len())
	}
	if &s.Insts[0] != &tr.Insts[1000] {
		t.Fatal("slice does not share storage")
	}
	if s.NumBlocks != tr.NumBlocks {
		t.Fatal("slice lost block count")
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	tr := Get("gzip", 1000)
	for _, c := range [][2]int{{-1, 10}, {0, 1001}, {500, 400}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Slice(%d,%d) did not panic", c[0], c[1])
				}
			}()
			tr.Slice(c[0], c[1])
		}()
	}
}

func TestAppsAreDistinct(t *testing.T) {
	// Different applications must induce different traces (the studies
	// model them separately).
	a := Get("gzip", 4000)
	b := Get("mcf", 4000)
	same := 0
	for i := range a.Insts {
		if a.Insts[i] == b.Insts[i] {
			same++
		}
	}
	if same > len(a.Insts)/10 {
		t.Fatalf("gzip and mcf traces identical at %d/%d positions", same, len(a.Insts))
	}
}

func TestPhasesRecur(t *testing.T) {
	// Phase structure: block IDs in the first and second halves overlap
	// (the phase sequence repeats), which is what SimPoint exploits.
	tr := Get("equake", 24000)
	seen1 := map[uint32]bool{}
	seen2 := map[uint32]bool{}
	for i, in := range tr.Insts {
		if i < tr.Len()/2 {
			seen1[in.Block] = true
		} else {
			seen2[in.Block] = true
		}
	}
	common := 0
	for b := range seen2 {
		if seen1[b] {
			common++
		}
	}
	if common < len(seen2)/2 {
		t.Fatalf("second half shares only %d/%d blocks with first half", common, len(seen2))
	}
}

func TestOpClassProperties(t *testing.T) {
	check := func(c uint8) bool {
		oc := OpClass(c % uint8(numOpClasses))
		if oc.IsFP() && (oc == Load || oc == Store || oc == Branch || oc == IntALU || oc == IntMul) {
			return false
		}
		if oc.IsMem() != (oc == Load || oc == Store) {
			return false
		}
		return oc.String() != ""
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	// The geometric helper's empirical mean should track the requested
	// mean within sampling error.
	rng := newTestRNG()
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += float64(geometricInt(rng, 10))
	}
	mean := sum / float64(n)
	if mean < 8.5 || mean > 11.5 {
		t.Fatalf("geometric mean %v, want ≈10", mean)
	}
}
