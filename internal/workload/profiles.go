package workload

// profiles defines the eight synthetic applications standing in for the
// paper's SPEC CINT2000 (gzip, mcf, crafty, twolf) and CFP2000 (mgrid,
// applu, mesa, equake) benchmarks with MinneSPEC reduced inputs.
//
// The profiles are tuned so each application stresses the design spaces
// the way its namesake does in the literature:
//
//   - gzip:   small working set, predictable branches, high baseline IPC;
//     mostly insensitive to large caches.
//   - mcf:    pointer-chasing over multi-megabyte structures, serialized
//     load→load chains; dominated by L2/DRAM behaviour.
//   - crafty: large instruction footprint, short blocks, branchy integer
//     code; sensitive to L1I size and branch-predictor capacity.
//   - twolf:  many small phases, unpredictable branches, conflict-prone
//     mixed working sets; the hardest app to model (matching the paper,
//     where twolf's error falls most slowly).
//   - mgrid:  long strided FP loops over large arrays; high ILP, loop
//     branches, bandwidth-hungry.
//   - applu:  FP stencil with divides; mixes long-latency FP with large
//     strided sweeps.
//   - mesa:   compute-bound FP with a modest working set; least memory
//     sensitive of the FP codes.
//   - equake: irregular FP memory references over large meshes; both
//     FP-latency and memory sensitive.
var profiles = map[string]profile{
	"gzip": {
		name: "gzip", seed: 0x67A1_0001, fp: false,
		codeBlocks: 320, blockMean: 7, phases: 3, phaseRepeat: 3,
		wIntALU: 50, wIntMul: 2, wLoad: 20, wStore: 9,
		depMean: 6, src1Prob: 0.75, src2Prob: 0.30,
		loopFrac: 0.35, loopMean: 12, brPattern: 0.70, brBias: 0.90, brNoise: 0.08, hotFrac: 0.25,
		regions: []region{
			{size: 16 << 10, weight: 0.72, run: 256, reuse: 0.97, loc: 2.2},
			{size: 384 << 10, weight: 0.26, run: 128, reuse: 0.94, loc: 2.0},
			{size: 2 << 20, weight: 0.02, run: 256, reuse: 0.80, loc: 1.5},
		},
	},
	"mcf": {
		name: "mcf", seed: 0x3C0F_0002, fp: false,
		codeBlocks: 480, blockMean: 6, phases: 3, phaseRepeat: 2,
		wIntALU: 40, wIntMul: 1, wLoad: 27, wStore: 10,
		depMean: 4, src1Prob: 0.80, src2Prob: 0.35,
		loopFrac: 0.25, loopMean: 8, brPattern: 0.45, brBias: 0.78, brNoise: 0.12, hotFrac: 0.2,
		regions: []region{
			{size: 32 << 10, weight: 0.34, run: 128, reuse: 0.95, loc: 1.8},
			{size: 640 << 10, weight: 0.48, run: 64, reuse: 0.92, loc: 1.65, chase: true},
			{size: 2 << 20, weight: 0.18, run: 64, reuse: 0.85, loc: 1.5, chase: true},
		},
	},
	"crafty": {
		name: "crafty", seed: 0xC4AF_0003, fp: false,
		codeBlocks: 2400, blockMean: 5, phases: 4, phaseRepeat: 2,
		wIntALU: 52, wIntMul: 4, wLoad: 19, wStore: 8,
		depMean: 5, src1Prob: 0.75, src2Prob: 0.35,
		loopFrac: 0.20, loopMean: 6, brPattern: 0.55, brBias: 0.82, brNoise: 0.10, hotFrac: 0.15,
		regions: []region{
			{size: 24 << 10, weight: 0.56, run: 128, reuse: 0.95, loc: 2.0},
			{size: 512 << 10, weight: 0.40, run: 64, reuse: 0.93, loc: 1.9},
			{size: 2 << 20, weight: 0.04, run: 64, reuse: 0.80, loc: 1.5},
		},
	},
	"twolf": {
		name: "twolf", seed: 0x2F01_0004, fp: false,
		codeBlocks: 900, blockMean: 5, phases: 6, phaseRepeat: 2,
		wIntALU: 46, wIntMul: 3, wLoad: 22, wStore: 9,
		depMean: 5, src1Prob: 0.80, src2Prob: 0.35,
		loopFrac: 0.22, loopMean: 5, brPattern: 0.35, brBias: 0.72, brNoise: 0.15, hotFrac: 0.2,
		regions: []region{
			{size: 24 << 10, weight: 0.36, run: 64, reuse: 0.95, loc: 1.9},
			{size: 768 << 10, weight: 0.54, run: 64, reuse: 0.92, loc: 1.7},
			{size: 3 << 20, weight: 0.10, run: 64, reuse: 0.82, loc: 1.5},
		},
	},
	"mgrid": {
		name: "mgrid", seed: 0x46BD_0005, fp: true,
		codeBlocks: 200, blockMean: 9, phases: 3, phaseRepeat: 3,
		wIntALU: 18, wFPALU: 24, wFPMul: 14, wLoad: 26, wStore: 9,
		depMean: 10, src1Prob: 0.70, src2Prob: 0.40,
		loopFrac: 0.60, loopMean: 25, brPattern: 0.80, brBias: 0.95, brNoise: 0.03, hotFrac: 0.35,
		regions: []region{
			{size: 32 << 10, weight: 0.30, run: 512, reuse: 0.94, loc: 2.0},
			{size: 1 << 20, weight: 0.60, run: 512, reuse: 0.92, loc: 1.8},
			{size: 4 << 20, weight: 0.10, run: 512, reuse: 0.80, loc: 1.5},
		},
	},
	"applu": {
		name: "applu", seed: 0xAB01_0006, fp: true,
		codeBlocks: 260, blockMean: 10, phases: 4, phaseRepeat: 2,
		wIntALU: 16, wFPALU: 22, wFPMul: 14, wFPDiv: 3, wLoad: 25, wStore: 10,
		depMean: 9, src1Prob: 0.72, src2Prob: 0.40,
		loopFrac: 0.55, loopMean: 18, brPattern: 0.78, brBias: 0.94, brNoise: 0.04, hotFrac: 0.35,
		regions: []region{
			{size: 64 << 10, weight: 0.32, run: 512, reuse: 0.93, loc: 2.0},
			{size: 1 << 20, weight: 0.58, run: 256, reuse: 0.92, loc: 1.8},
			{size: 4 << 20, weight: 0.10, run: 512, reuse: 0.80, loc: 1.5},
		},
	},
	"mesa": {
		name: "mesa", seed: 0x3E5A_0007, fp: true,
		codeBlocks: 1200, blockMean: 7, phases: 4, phaseRepeat: 2,
		wIntALU: 26, wFPALU: 22, wFPMul: 16, wFPDiv: 1, wLoad: 18, wStore: 7,
		depMean: 8, src1Prob: 0.72, src2Prob: 0.38,
		loopFrac: 0.30, loopMean: 10, brPattern: 0.65, brBias: 0.88, brNoise: 0.07, hotFrac: 0.2,
		regions: []region{
			{size: 16 << 10, weight: 0.62, run: 128, reuse: 0.96, loc: 2.2},
			{size: 512 << 10, weight: 0.34, run: 256, reuse: 0.93, loc: 1.9},
			{size: 2 << 20, weight: 0.04, run: 64, reuse: 0.80, loc: 1.5},
		},
	},
	"equake": {
		name: "equake", seed: 0xE0AE_0008, fp: true,
		codeBlocks: 420, blockMean: 8, phases: 3, phaseRepeat: 3,
		wIntALU: 20, wFPALU: 20, wFPMul: 12, wFPDiv: 1, wLoad: 26, wStore: 10,
		depMean: 7, src1Prob: 0.75, src2Prob: 0.38,
		loopFrac: 0.40, loopMean: 10, brPattern: 0.70, brBias: 0.85, brNoise: 0.06, hotFrac: 0.25,
		regions: []region{
			{size: 32 << 10, weight: 0.30, run: 128, reuse: 0.95, loc: 1.9},
			{size: 768 << 10, weight: 0.56, run: 64, reuse: 0.92, loc: 1.65},
			{size: 4 << 20, weight: 0.14, run: 128, reuse: 0.82, loc: 1.45},
		},
	},
}
