package workload

import (
	"math"

	"repro/internal/stats"
)

// region describes one data working set of an application.
//
// Addresses are synthesized with a reuse-distance model rather than by
// sweeping the region linearly. Each region keeps a ring of addresses
// covering its whole footprint (pre-filled at line spacing, so the
// footprint is in effect from the first instruction, with no warmup
// sweep). Every access either
//
//   - revisits a ring entry (probability reuse), drawn with a mix of
//     uniform and recency-biased distances, so a cache holding the whole
//     footprint hits on nearly all such accesses while a smaller cache
//     hits roughly in proportion to the fraction it holds — the capacity
//     behaviour the studied design spaces are built around; or
//   - performs a fresh access that walks sequentially in 8-byte steps
//     within a short run of `run` bytes before jumping to a new random
//     spot. Runs give spatial locality, which is what makes block sizes
//     and bus widths matter.
type region struct {
	size   uint64  // footprint in bytes
	weight float64 // probability a static memory instruction binds here
	run    uint64  // bytes walked sequentially per fresh run
	reuse  float64 // fraction of accesses that revisit the footprint
	loc    float64 // locality exponent: higher concentrates reuse on recent lines
	chase  bool    // loads form serialized load→load chains (pointer chasing)
}

// profile is the complete statistical description of one synthetic
// application. Every field is fixed at construction; the generator
// consumes randomness only from a seed derived from the profile, so a
// given (app, length) pair always yields the identical trace.
type profile struct {
	name string
	seed uint64
	fp   bool // belongs to the CFP2000 half of the suite

	codeBlocks  int     // static basic blocks (code footprint = Σ block sizes × 4 B)
	blockMean   float64 // mean instructions per block, incl. terminating branch
	phases      int     // distinct program phases
	phaseRepeat int     // times the phase sequence recurs across the trace

	// Non-branch operation mix (relative weights).
	wIntALU, wIntMul, wFPALU, wFPMul, wFPDiv, wLoad, wStore float64

	depMean   float64 // mean register-dependency distance
	src1Prob  float64 // probability an instruction has a first register source
	src2Prob  float64 // probability of a second source
	loopFrac  float64 // fraction of hot blocks ending in loop branches
	loopMean  float64 // mean loop trip count
	brPattern float64 // fraction of conditional branches with periodic outcomes
	brBias    float64 // taken-probability of unpatterned conditionals
	brNoise   float64 // spread of per-branch biases
	hotFrac   float64 // fraction of each phase's blocks that are hot

	regions []region
}

type blockKind uint8

const (
	condBlock blockKind = iota
	loopBlock
)

// staticInst is one instruction slot of a static basic block.
type staticInst struct {
	class  OpClass
	region int // index into profile.regions, or -1
}

// staticBlock is one basic block of the synthetic program.
type staticBlock struct {
	pc        uint64
	insts     []staticInst // last entry is always the Branch
	kind      blockKind
	bias      float64 // cond: P(taken) when unpatterned
	pattern   uint32  // cond: periodic outcome bits (0 = unpatterned)
	patPeriod uint8
	trip      uint16 // loop: fixed trip count
	takenSucc int    // block executed after a taken branch
	fallSucc  int    // block executed after a not-taken branch
}

const (
	codeBase    = uint64(0x0040_0000) // text segment base
	dataBase    = uint64(0x1000_0000) // first data region base
	regionStep  = uint64(0x4000_0000) // spacing between region bases
	maxDepDist  = 64                  // register deps never reach further back
	maxChase    = 400                 // load-chain deps never reach further back
	ringGranule = 32                  // ring slots ≈ footprint / granule bytes
	maxRing     = 1 << 18             // ring capacity bound (memory safety)
)

// regionState is the per-region dynamic state used during generation.
type regionState struct {
	ring     []uint64 // addresses spanning the footprint, newest at ringPos-1
	ringPos  int
	fresh    uint64 // current fresh-access address
	runLeft  uint64 // bytes remaining in the current sequential run
	lastLoad int    // trace index of this region's last load (-1 if none)
}

// nextAddr synthesizes the next offset for a region access.
//
// Reuse distances are drawn log-uniformly (shaped by the locality
// exponent) over the ring, so the probability of hitting a cache of
// capacity C lines grows smoothly and logarithmically with C — the
// empirical shape of real programs' miss-rate curves, and the property
// that makes the simulated design spaces smooth enough to model, the
// way the paper's SPEC workloads are. A step/uniform distribution here
// would instead put a cliff at exactly the footprint size.
func (st *regionState) nextAddr(r *region, rng *stats.RNG) uint64 {
	if rng.Float64() < r.reuse {
		n := len(st.ring)
		loc := r.loc
		if loc <= 0 {
			loc = 1.5
		}
		u := math.Pow(rng.Float64(), loc)
		k := int(math.Exp(u * math.Log(float64(n))))
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		return st.ring[((st.ringPos-k)%n+n)%n]
	}
	if st.runLeft >= 8 {
		st.runLeft -= 8
		st.fresh = (st.fresh + 8) % r.size
	} else {
		st.fresh = uint64(rng.Intn(int(r.size))) &^ 63
		st.runLeft = r.run
	}
	st.ring[st.ringPos] = st.fresh
	st.ringPos = (st.ringPos + 1) % len(st.ring)
	return st.fresh
}

// generate builds the full dynamic trace for profile p.
func generate(p profile, length int) *Trace {
	rng := stats.NewRNG(p.seed)
	blocks, phaseOf := buildProgram(p, rng)

	t := &Trace{App: p.name, NumBlocks: len(blocks), Insts: make([]Inst, 0, length+64)}

	regions := make([]regionState, len(p.regions))
	for i := range regions {
		r := &p.regions[i]
		n := r.size / 64
		if n < 16 {
			n = 16
		}
		if n > maxRing {
			n = maxRing
		}
		st := regionState{
			ring:     make([]uint64, n),
			lastLoad: -1,
		}
		// Pre-fill the ring at even spacing so the footprint spans the
		// whole region from the first access.
		spacing := r.size / n
		if spacing < 8 {
			spacing = 8
		}
		for k := range st.ring {
			st.ring[k] = (uint64(k) * spacing) % r.size
		}
		regions[i] = st
	}
	loopLeft := make([]int, len(blocks)) // remaining trips per loop block (0 = not active)
	patPos := make([]uint8, len(blocks)) // position within each branch pattern

	segments := p.phases * p.phaseRepeat
	if segments == 0 {
		segments = 1
	}
	segLen := length / segments
	if segLen == 0 {
		segLen = length
	}

	cur := phaseStart(p, 0)
	for len(t.Insts) < length {
		seg := len(t.Insts) / segLen
		phase := 0
		if p.phases > 0 {
			phase = seg % p.phases
		}
		// Force a phase change when the walk crosses a segment boundary.
		if phaseOf[cur] != phase {
			cur = phaseStart(p, phase)
		}
		b := &blocks[cur]

		for i, si := range b.insts {
			idx := len(t.Insts)
			in := Inst{
				PC:    b.pc + uint64(4*i),
				Block: uint32(cur),
				Class: si.class,
			}
			// Register dependencies: present with profile probability,
			// geometric distances clamped to the available history.
			if rng.Float64() < p.src1Prob {
				in.Src1 = int32(clampDep(geometric(rng, p.depMean), idx))
			}
			if rng.Float64() < p.src2Prob {
				in.Src2 = int32(clampDep(geometric(rng, p.depMean), idx))
			}
			if si.class.IsMem() {
				r := &p.regions[si.region]
				st := &regions[si.region]
				base := dataBase + uint64(si.region)*regionStep
				in.Addr = base + st.nextAddr(r, rng)
				if r.chase && si.class == Load {
					// Pointer chasing: this load's address depends on
					// the previous load from the same region.
					if st.lastLoad >= 0 {
						if d := idx - st.lastLoad; d > 0 && d <= maxChase {
							in.Src1 = int32(d)
						}
					}
				}
				if si.class == Load {
					st.lastLoad = idx
				}
			}
			if si.class == Branch {
				next := b.fallSucc
				taken := false
				switch b.kind {
				case loopBlock:
					left := loopLeft[cur]
					if left == 0 {
						left = int(b.trip)
					}
					left--
					if left > 0 {
						loopLeft[cur] = left
						taken, next = true, b.takenSucc
					} else {
						loopLeft[cur] = 0
					}
				case condBlock:
					if b.pattern != 0 {
						taken = (b.pattern>>patPos[cur])&1 == 1
						patPos[cur] = (patPos[cur] + 1) % b.patPeriod
					} else {
						taken = rng.Float64() < b.bias
					}
					if taken {
						next = b.takenSucc
					}
				}
				in.Taken = taken
				in.Target = blocks[next].pc
				cur = next
			}
			t.Insts = append(t.Insts, in)
			if len(t.Insts) >= length {
				break
			}
		}
	}
	t.Insts = t.Insts[:length]
	return t
}

// buildProgram constructs the static basic blocks and a block→phase map.
func buildProgram(p profile, rng *stats.RNG) ([]staticBlock, []int) {
	n := p.codeBlocks
	blocks := make([]staticBlock, n)
	phaseOf := make([]int, n)
	perPhase := n / maxInt(1, p.phases)

	mix := []struct {
		c OpClass
		w float64
	}{
		{IntALU, p.wIntALU}, {IntMul, p.wIntMul}, {FPALU, p.wFPALU},
		{FPMul, p.wFPMul}, {FPDiv, p.wFPDiv}, {Load, p.wLoad}, {Store, p.wStore},
	}
	var totalMix float64
	for _, m := range mix {
		totalMix += m.w
	}
	var totalRegion float64
	for _, r := range p.regions {
		totalRegion += r.weight
	}

	pc := codeBase
	for b := 0; b < n; b++ {
		phase := minInt(b/maxInt(1, perPhase), maxInt(0, p.phases-1))
		phaseOf[b] = phase
		size := 2 + geometricInt(rng, p.blockMean-2)
		if size > 24 {
			size = 24
		}
		sb := staticBlock{pc: pc}
		for i := 0; i < size-1; i++ {
			si := staticInst{region: -1}
			x := rng.Float64() * totalMix
			for _, m := range mix {
				if x < m.w {
					si.class = m.c
					break
				}
				x -= m.w
			}
			if si.class.IsMem() {
				y := rng.Float64() * totalRegion
				si.region = len(p.regions) - 1
				for ri, r := range p.regions {
					if y < r.weight {
						si.region = ri
						break
					}
					y -= r.weight
				}
			}
			sb.insts = append(sb.insts, si)
		}
		sb.insts = append(sb.insts, staticInst{class: Branch, region: -1})

		// Control-flow structure: each phase has a hot kernel (its
		// first hotFrac of blocks), where execution concentrates so
		// predictors and caches see real reuse, and a cold remainder
		// that is streamed through on occasional excursions — this is
		// what gives large-code applications their I-cache pressure
		// without making every branch a one-shot cold miss.
		lo, hi := phaseRange(p, phase, n)
		hot := hotBlocks(p, hi-lo)
		isHot := b < lo+hot
		sb.fallSucc = b + 1
		if sb.fallSucc >= hi {
			sb.fallSucc = lo
		}
		switch {
		case isHot && rng.Float64() < p.loopFrac:
			sb.kind = loopBlock
			trip := 2 + geometricInt(rng, p.loopMean-2)
			if trip > 4096 {
				trip = 4096
			}
			sb.trip = uint16(trip)
			sb.takenSucc = b // loop back to self
		case isHot:
			sb.kind = condBlock
			if rng.Float64() < p.brPattern {
				// Periodic outcome: predictable once the local history
				// warms up, like real loop-carried conditionals.
				period := 2 + rng.Intn(5) // 2..6
				var pat uint32
				for k := 0; k < period; k++ {
					if rng.Float64() < p.brBias {
						pat |= 1 << k
					}
				}
				if pat == 0 {
					pat = 1 // all-zero encodes "unpatterned"; force one taken bit
				}
				sb.pattern = pat
				sb.patPeriod = uint8(period)
			} else {
				bias := p.brBias + (rng.Float64()*2-1)*p.brNoise
				sb.bias = clamp(bias, 0.02, 0.98)
			}
			// Taken edges mostly stay in the hot kernel; occasionally
			// they launch an excursion into the cold code.
			if rng.Float64() < 0.92 {
				sb.takenSucc = lo + rng.Intn(hot)
			} else {
				sb.takenSucc = lo + rng.Intn(hi-lo)
			}
		default:
			// Cold block: almost always falls through (streaming the
			// code sequentially); a rare taken edge returns to the hot
			// kernel.
			sb.kind = condBlock
			sb.bias = 0.08
			sb.takenSucc = lo + rng.Intn(hot)
		}
		blocks[b] = sb
		pc += uint64(4 * size)
	}
	return blocks, phaseOf
}

// hotBlocks returns the number of hot blocks for a phase of the given
// span.
func hotBlocks(p profile, span int) int {
	f := p.hotFrac
	if f <= 0 {
		f = 0.2
	}
	h := int(f * float64(span))
	if h < 8 {
		h = 8
	}
	if h > span {
		h = span
	}
	return h
}

// phaseRange returns the half-open block-ID range [lo, hi) of a phase.
func phaseRange(p profile, phase, n int) (int, int) {
	if p.phases <= 1 {
		return 0, n
	}
	per := n / p.phases
	lo := phase * per
	hi := lo + per
	if phase == p.phases-1 {
		hi = n
	}
	return lo, hi
}

func phaseStart(p profile, phase int) int {
	lo, _ := phaseRange(p, phase, p.codeBlocks)
	return lo
}

// geometric draws 1 + a geometric variate with the given mean.
func geometric(rng *stats.RNG, mean float64) int {
	return 1 + geometricInt(rng, mean)
}

func geometricInt(rng *stats.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	q := 1 / (mean + 1)
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	v := int(math.Log(1-u) / math.Log(1-q))
	if v < 0 {
		v = 0
	}
	return v
}

func clampDep(d, idx int) int {
	if d > maxDepDist {
		d = maxDepDist
	}
	if d > idx {
		d = idx
	}
	if d < 0 {
		d = 0
	}
	return d
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
