// Package workload generates the deterministic synthetic applications that
// stand in for the paper's SPEC CPU2000 / MinneSPEC benchmarks (gzip, mcf,
// crafty, twolf, mgrid, applu, mesa, equake).
//
// Each application is a fixed instruction trace: a pure function of the
// application name and trace length, never of the architecture being
// simulated — exactly as a real benchmark binary with a fixed input would
// be. The trace records, per dynamic instruction, the operation class,
// program counter, register-dependency distances, effective memory
// address, and branch outcome/target. The simulator replays this trace
// through a cycle-level out-of-order machine; the predictors and caches
// react to the trace, so IPC varies with the architectural configuration
// while the program itself does not.
//
// Traces are built from a static "program" of basic blocks organized into
// phases, so they exhibit the properties the paper's machinery depends
// on: instruction working sets (I-cache pressure), data working sets that
// straddle the studied cache capacities (capacity cliffs), loop branches
// and data-dependent branches (predictor pressure), dependency chains
// (ILP limits), and time-varying phase behaviour (which is what gives
// SimPoint something to find).
package workload

import (
	"fmt"
	"sort"
	"sync"
)

// OpClass identifies the functional-unit class of an instruction.
type OpClass uint8

// Operation classes. Latencies and functional-unit bindings are assigned
// by the simulator, not here.
const (
	IntALU OpClass = iota // single-cycle integer op
	IntMul                // multi-cycle integer multiply/divide
	FPALU                 // pipelined FP add/sub/compare
	FPMul                 // pipelined FP multiply
	FPDiv                 // unpipelined FP divide/sqrt
	Load                  // memory read
	Store                 // memory write
	Branch                // conditional branch (terminates a basic block)
	numOpClasses
)

// String returns the mnemonic for the class.
func (c OpClass) String() string {
	switch c {
	case IntALU:
		return "ialu"
	case IntMul:
		return "imul"
	case FPALU:
		return "fadd"
	case FPMul:
		return "fmul"
	case FPDiv:
		return "fdiv"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "br"
	}
	return fmt.Sprintf("op(%d)", uint8(c))
}

// IsFP reports whether the class executes on the floating-point side of
// the machine (consumes FP physical registers).
func (c OpClass) IsFP() bool { return c == FPALU || c == FPMul || c == FPDiv }

// IsMem reports whether the class accesses data memory.
func (c OpClass) IsMem() bool { return c == Load || c == Store }

// Inst is one dynamic instruction in a trace.
type Inst struct {
	PC     uint64  // instruction address (4-byte instructions)
	Addr   uint64  // effective address for Load/Store, else 0
	Target uint64  // branch target PC (next PC if taken), else 0
	Block  uint32  // static basic-block ID (for SimPoint BBVs)
	Src1   int32   // distance (in dynamic instructions) back to the first producer; 0 = none
	Src2   int32   // distance back to the second producer; 0 = none
	Class  OpClass // operation class
	Taken  bool    // branch outcome
}

// Trace is a complete dynamic instruction stream for one application.
type Trace struct {
	App       string // application name
	Insts     []Inst
	NumBlocks int // number of static basic blocks (BBV dimensionality)
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Insts) }

// Slice returns a sub-trace covering instructions [lo, hi); it shares
// the underlying storage. Used by SimPoint interval simulation.
func (t *Trace) Slice(lo, hi int) *Trace {
	if lo < 0 || hi > len(t.Insts) || lo > hi {
		panic("workload: trace slice out of range")
	}
	return &Trace{App: t.App, Insts: t.Insts[lo:hi], NumBlocks: t.NumBlocks}
}

// Stats summarizes the dynamic instruction mix of a trace.
type Stats struct {
	Total    int
	ByClass  [numOpClasses]int
	Branches int
	TakenPct float64
	MemPct   float64
	FPPct    float64
}

// Summarize computes the dynamic mix of the trace.
func (t *Trace) Summarize() Stats {
	var s Stats
	s.Total = len(t.Insts)
	taken := 0
	for i := range t.Insts {
		in := &t.Insts[i]
		s.ByClass[in.Class]++
		if in.Class == Branch {
			s.Branches++
			if in.Taken {
				taken++
			}
		}
	}
	if s.Branches > 0 {
		s.TakenPct = float64(taken) / float64(s.Branches) * 100
	}
	if s.Total > 0 {
		s.MemPct = float64(s.ByClass[Load]+s.ByClass[Store]) / float64(s.Total) * 100
		s.FPPct = float64(s.ByClass[FPALU]+s.ByClass[FPMul]+s.ByClass[FPDiv]) / float64(s.Total) * 100
	}
	return s
}

// traceCache memoizes generated traces; generation is deterministic, so
// caching only saves time, never changes results.
var traceCache sync.Map // key string -> *Trace

// Get returns the trace for the named application at the given dynamic
// length, generating and caching it on first use. It panics if the
// application name is unknown (the set of applications is the fixed
// benchmark suite; a typo is a programming error, not an input error).
func Get(app string, length int) *Trace {
	key := fmt.Sprintf("%s/%d", app, length)
	if v, ok := traceCache.Load(key); ok {
		return v.(*Trace)
	}
	p, ok := profiles[app]
	if !ok {
		panic(fmt.Sprintf("workload: unknown application %q (have %v)", app, Apps()))
	}
	t := generate(p, length)
	actual, _ := traceCache.LoadOrStore(key, t)
	return actual.(*Trace)
}

// Apps returns the benchmark suite names in a stable order.
func Apps() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// IsFloatingPoint reports whether the named application belongs to the
// CFP2000 half of the suite (mgrid, applu, mesa, equake).
func IsFloatingPoint(app string) bool {
	p, ok := profiles[app]
	return ok && p.fp
}
