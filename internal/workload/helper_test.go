package workload

import "repro/internal/stats"

// newTestRNG returns a fixed-seed generator for test helpers.
func newTestRNG() *stats.RNG { return stats.NewRNG(0xBEEF) }
