// Package space models architectural design spaces: typed parameters
// (cardinal, continuous, nominal, boolean — the taxonomy of §3.3),
// constrained cross-products, a bijection between flat indices and
// parameter-choice vectors, and uniform sampling without replacement.
//
// A design point is represented as a choice vector: one small integer
// per parameter selecting among that parameter's settings. The studies
// package maps choice vectors onto simulator configurations; the
// encoding package maps them onto neural-network inputs.
package space

import (
	"fmt"
	"iter"
	"strings"

	"repro/internal/stats"
)

// Kind classifies a design parameter, which determines how the encoding
// package presents it to the networks (§3.3): cardinal and continuous
// parameters become single minimax-scaled inputs, nominal parameters
// are one-hot encoded, and booleans become single 0/1 inputs.
type Kind uint8

// Parameter kinds.
const (
	Cardinal   Kind = iota // quantitative, discrete settings (e.g. cache size)
	Continuous             // quantitative, real-valued settings (e.g. frequency)
	Nominal                // categorical choices with no order (e.g. write policy)
	Boolean                // on/off
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Cardinal:
		return "cardinal"
	case Continuous:
		return "continuous"
	case Nominal:
		return "nominal"
	case Boolean:
		return "boolean"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Param is one axis of a design space.
//
// Independent parameters list their settings in Values (numeric kinds)
// or Levels (nominal). A dependent parameter — one whose legal settings
// are determined by another parameter, like the processor study's
// register-file sizes, which depend on the ROB size — carries a Table
// with one row of settings per setting of the controlling parameter;
// every row must have the same length, so the space remains a clean
// cross-product of choice indices.
type Param struct {
	Name   string
	Kind   Kind
	Values []float64 // settings for Cardinal/Continuous/Boolean
	Levels []string  // settings for Nominal

	DependsOn string      // name of the controlling parameter, or ""
	Table     [][]float64 // [controllerChoice][ownChoice] settings
}

// Card returns the number of selectable settings of the parameter.
func (p *Param) Card() int {
	switch {
	case p.DependsOn != "":
		if len(p.Table) == 0 {
			return 0
		}
		return len(p.Table[0])
	case p.Kind == Nominal:
		return len(p.Levels)
	default:
		return len(p.Values)
	}
}

// Space is a constrained cross-product of parameters.
type Space struct {
	Name   string
	Params []Param

	depIdx []int // per param: index of controlling param, or -1
	radix  []int // per param: cardinality
	size   int
}

// New constructs a Space, validating parameter definitions and resolving
// dependency references. It panics on malformed definitions: spaces are
// static study descriptions, so an error here is a programming mistake.
func New(name string, params []Param) *Space {
	s := &Space{Name: name, Params: params}
	byName := make(map[string]int, len(params))
	for i := range params {
		if _, dup := byName[params[i].Name]; dup {
			panic(fmt.Sprintf("space: duplicate parameter %q", params[i].Name))
		}
		byName[params[i].Name] = i
	}
	s.depIdx = make([]int, len(params))
	s.radix = make([]int, len(params))
	s.size = 1
	for i := range params {
		p := &params[i]
		s.depIdx[i] = -1
		if p.DependsOn != "" {
			j, ok := byName[p.DependsOn]
			if !ok {
				panic(fmt.Sprintf("space: %q depends on unknown parameter %q", p.Name, p.DependsOn))
			}
			if j >= i {
				panic(fmt.Sprintf("space: %q must be declared after its controller %q", p.Name, p.DependsOn))
			}
			if len(p.Table) != params[j].Card() {
				panic(fmt.Sprintf("space: %q table has %d rows, controller %q has %d settings",
					p.Name, len(p.Table), p.DependsOn, params[j].Card()))
			}
			for r := 1; r < len(p.Table); r++ {
				if len(p.Table[r]) != len(p.Table[0]) {
					panic(fmt.Sprintf("space: %q table rows have unequal lengths", p.Name))
				}
			}
			s.depIdx[i] = j
		}
		c := p.Card()
		if c == 0 {
			panic(fmt.Sprintf("space: parameter %q has no settings", p.Name))
		}
		s.radix[i] = c
		s.size *= c
	}
	return s
}

// NewChecked is New with errors instead of panics, for space
// definitions that arrive from outside the program — deserialized model
// bundles rather than compiled-in study descriptions.
func NewChecked(name string, params []Param) (s *Space, err error) {
	defer func() {
		if r := recover(); r != nil {
			s, err = nil, fmt.Errorf("%v", r)
		}
	}()
	return New(name, params), nil
}

// Size returns the total number of design points.
func (s *Space) Size() int { return s.size }

// NumParams returns the number of axes.
func (s *Space) NumParams() int { return len(s.Params) }

// Choices decodes a flat index in [0, Size()) into a choice vector. The
// mapping is the mixed-radix positional system over parameter
// cardinalities, so it is a bijection.
func (s *Space) Choices(index int) []int {
	if index < 0 || index >= s.size {
		panic(fmt.Sprintf("space: index %d out of range [0,%d)", index, s.size))
	}
	out := make([]int, len(s.Params))
	for i := len(s.Params) - 1; i >= 0; i-- {
		out[i] = index % s.radix[i]
		index /= s.radix[i]
	}
	return out
}

// Index encodes a choice vector back into its flat index.
func (s *Space) Index(choices []int) int {
	if len(choices) != len(s.Params) {
		panic("space: wrong choice-vector length")
	}
	idx := 0
	for i, c := range choices {
		if c < 0 || c >= s.radix[i] {
			panic(fmt.Sprintf("space: choice %d out of range for %q", c, s.Params[i].Name))
		}
		idx = idx*s.radix[i] + c
	}
	return idx
}

// Value returns the numeric setting of parameter i under the given
// choice vector, resolving dependent tables. It panics for nominal
// parameters, which have no numeric value (use LevelName).
func (s *Space) Value(choices []int, i int) float64 {
	p := &s.Params[i]
	if p.Kind == Nominal {
		panic(fmt.Sprintf("space: parameter %q is nominal; it has no numeric value", p.Name))
	}
	if s.depIdx[i] >= 0 {
		return p.Table[choices[s.depIdx[i]]][choices[i]]
	}
	return p.Values[choices[i]]
}

// LevelName returns the selected level of a nominal parameter.
func (s *Space) LevelName(choices []int, i int) string {
	p := &s.Params[i]
	if p.Kind != Nominal {
		panic(fmt.Sprintf("space: parameter %q is not nominal", p.Name))
	}
	return p.Levels[choices[i]]
}

// ValueRange returns the minimum and maximum numeric settings parameter
// i can take anywhere in the space (over all controller settings for
// dependent parameters). Used for minimax normalization.
func (s *Space) ValueRange(i int) (lo, hi float64) {
	p := &s.Params[i]
	if p.Kind == Nominal {
		panic(fmt.Sprintf("space: parameter %q is nominal; it has no numeric range", p.Name))
	}
	var vals []float64
	if s.depIdx[i] >= 0 {
		for _, row := range p.Table {
			vals = append(vals, row...)
		}
	} else {
		vals = p.Values
	}
	return stats.Min(vals), stats.Max(vals)
}

// ChunkAt iterates the design points with flat indices [start,
// start+rows), yielding each index with its choice vector. Unlike
// calling Choices per index, the whole chunk shares one choice buffer
// that is advanced in mixed-radix order — no per-point allocation and
// no repeated divisions — which is what lets full-space sweeps
// enumerate billions of points without ever materializing the cross
// product. The yielded slice is reused between iterations; callers
// that retain choices across iterations must copy them.
func (s *Space) ChunkAt(start, rows int) iter.Seq2[int, []int] {
	if start < 0 || rows < 0 || start+rows > s.size {
		panic(fmt.Sprintf("space: chunk [%d,%d) outside [0,%d)", start, start+rows, s.size))
	}
	return func(yield func(int, []int) bool) {
		if rows == 0 {
			return
		}
		choices := s.Choices(start)
		for i := start; ; i++ {
			if !yield(i, choices) {
				return
			}
			if i+1 == start+rows {
				return
			}
			// Advance the mixed-radix counter: increment the last digit
			// and carry leftward, exactly matching Choices(i+1).
			for p := len(choices) - 1; p >= 0; p-- {
				choices[p]++
				if choices[p] < s.radix[p] {
					break
				}
				choices[p] = 0
			}
		}
	}
}

// Sample draws k distinct design-point indices uniformly at random.
func (s *Space) Sample(rng *stats.RNG, k int) []int {
	return rng.SampleWithoutReplacement(s.size, k)
}

// Describe returns a human-readable rendering of one design point.
func (s *Space) Describe(index int) string {
	choices := s.Choices(index)
	var b strings.Builder
	fmt.Fprintf(&b, "point %d:", index)
	for i := range s.Params {
		p := &s.Params[i]
		if p.Kind == Nominal {
			fmt.Fprintf(&b, " %s=%s", p.Name, s.LevelName(choices, i))
		} else {
			fmt.Fprintf(&b, " %s=%g", p.Name, s.Value(choices, i))
		}
	}
	return b.String()
}
