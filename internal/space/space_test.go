package space

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func demoSpace() *Space {
	return New("demo", []Param{
		{Name: "Cache", Kind: Cardinal, Values: []float64{8, 16, 32}},
		{Name: "Policy", Kind: Nominal, Levels: []string{"WT", "WB"}},
		{Name: "Turbo", Kind: Boolean, Values: []float64{0, 1}},
		{Name: "Freq", Kind: Continuous, Values: []float64{2, 3, 4}},
		{Name: "Regs", Kind: Cardinal, DependsOn: "Cache", Table: [][]float64{
			{32, 64}, {64, 96}, {96, 128},
		}},
	})
}

func TestSizeIsProductOfCardinalities(t *testing.T) {
	sp := demoSpace()
	if sp.Size() != 3*2*2*3*2 {
		t.Fatalf("size = %d, want 72", sp.Size())
	}
	if sp.NumParams() != 5 {
		t.Fatalf("params = %d", sp.NumParams())
	}
}

func TestIndexChoicesBijection(t *testing.T) {
	sp := demoSpace()
	seen := make(map[string]bool)
	for i := 0; i < sp.Size(); i++ {
		c := sp.Choices(i)
		if got := sp.Index(c); got != i {
			t.Fatalf("Index(Choices(%d)) = %d", i, got)
		}
		key := ""
		for _, v := range c {
			key += string(rune('a' + v))
		}
		if seen[key] {
			t.Fatalf("choice vector for %d duplicates another index", i)
		}
		seen[key] = true
	}
}

func TestBijectionProperty(t *testing.T) {
	sp := demoSpace()
	check := func(raw uint32) bool {
		i := int(raw) % sp.Size()
		return sp.Index(sp.Choices(i)) == i
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDependentValues(t *testing.T) {
	sp := demoSpace()
	// Cache choice 0 (8KB) → Regs row {32, 64}.
	choices := []int{0, 0, 0, 0, 1}
	if v := sp.Value(choices, 4); v != 64 {
		t.Fatalf("dependent value = %v, want 64", v)
	}
	choices[0] = 2 // 32KB → {96, 128}
	if v := sp.Value(choices, 4); v != 128 {
		t.Fatalf("dependent value = %v, want 128", v)
	}
}

func TestValueRange(t *testing.T) {
	sp := demoSpace()
	lo, hi := sp.ValueRange(0)
	if lo != 8 || hi != 32 {
		t.Fatalf("Cache range [%v,%v]", lo, hi)
	}
	// Dependent parameter range spans the whole table.
	lo, hi = sp.ValueRange(4)
	if lo != 32 || hi != 128 {
		t.Fatalf("Regs range [%v,%v]", lo, hi)
	}
}

func TestLevelName(t *testing.T) {
	sp := demoSpace()
	choices := sp.Choices(0)
	choices[1] = 1
	if sp.LevelName(choices, 1) != "WB" {
		t.Fatal("LevelName mismatch")
	}
}

func TestValuePanicsOnNominal(t *testing.T) {
	sp := demoSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("Value on nominal did not panic")
		}
	}()
	sp.Value(sp.Choices(0), 1)
}

func TestLevelNamePanicsOnNumeric(t *testing.T) {
	sp := demoSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("LevelName on cardinal did not panic")
		}
	}()
	sp.LevelName(sp.Choices(0), 0)
}

func TestChoicesPanicsOutOfRange(t *testing.T) {
	sp := demoSpace()
	for _, idx := range []int{-1, sp.Size()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choices(%d) did not panic", idx)
				}
			}()
			sp.Choices(idx)
		}()
	}
}

func TestSampleDistinctAndInRange(t *testing.T) {
	sp := demoSpace()
	rng := stats.NewRNG(3)
	s := sp.Sample(rng, 30)
	seen := map[int]bool{}
	for _, idx := range s {
		if idx < 0 || idx >= sp.Size() || seen[idx] {
			t.Fatalf("bad sample %d", idx)
		}
		seen[idx] = true
	}
}

func TestDescribe(t *testing.T) {
	sp := demoSpace()
	d := sp.Describe(0)
	for _, want := range []string{"Cache=8", "Policy=WT", "Freq=2", "Regs=32"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe(0) = %q missing %q", d, want)
		}
	}
}

func TestNewValidatesDefinitions(t *testing.T) {
	cases := map[string][]Param{
		"duplicate names": {
			{Name: "A", Kind: Cardinal, Values: []float64{1}},
			{Name: "A", Kind: Cardinal, Values: []float64{2}},
		},
		"unknown controller": {
			{Name: "A", Kind: Cardinal, DependsOn: "Nope", Table: [][]float64{{1}}},
		},
		"controller after dependent": {
			{Name: "A", Kind: Cardinal, DependsOn: "B", Table: [][]float64{{1}, {2}}},
			{Name: "B", Kind: Cardinal, Values: []float64{1, 2}},
		},
		"table row count mismatch": {
			{Name: "B", Kind: Cardinal, Values: []float64{1, 2}},
			{Name: "A", Kind: Cardinal, DependsOn: "B", Table: [][]float64{{1, 2}}},
		},
		"ragged table": {
			{Name: "B", Kind: Cardinal, Values: []float64{1, 2}},
			{Name: "A", Kind: Cardinal, DependsOn: "B", Table: [][]float64{{1, 2}, {3}}},
		},
		"empty parameter": {
			{Name: "A", Kind: Cardinal},
		},
	}
	for name, params := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			New(name, params)
		}()
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Cardinal: "cardinal", Continuous: "continuous",
		Nominal: "nominal", Boolean: "boolean",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
}

// TestChunkAtMatchesChoices pins the chunked enumerator to the
// per-index bijection over every chunk alignment of the demo space.
func TestChunkAtMatchesChoices(t *testing.T) {
	sp := demoSpace()
	for _, chunk := range []int{1, 2, 7, 16, sp.Size()} {
		for start := 0; start < sp.Size(); start += chunk {
			rows := chunk
			if start+rows > sp.Size() {
				rows = sp.Size() - start
			}
			want := start
			for idx, choices := range sp.ChunkAt(start, rows) {
				if idx != want {
					t.Fatalf("chunk %d@%d yielded index %d, want %d", chunk, start, idx, want)
				}
				ref := sp.Choices(idx)
				for p := range ref {
					if choices[p] != ref[p] {
						t.Fatalf("index %d: chunked choices %v, Choices %v", idx, choices, ref)
					}
				}
				want++
			}
			if want != start+rows {
				t.Fatalf("chunk [%d,%d) yielded %d points", start, start+rows, want-start)
			}
		}
	}
}

// TestChunkAtEarlyBreakAndEmpty covers iterator termination: a consumer
// may stop early, and a zero-row chunk yields nothing.
func TestChunkAtEarlyBreakAndEmpty(t *testing.T) {
	sp := demoSpace()
	n := 0
	for range sp.ChunkAt(3, 10) {
		n++
		if n == 4 {
			break
		}
	}
	if n != 4 {
		t.Fatalf("early break saw %d points, want 4", n)
	}
	for idx := range sp.ChunkAt(5, 0) {
		t.Fatalf("empty chunk yielded %d", idx)
	}
}

// TestChunkAtBounds rejects ranges outside the space.
func TestChunkAtBounds(t *testing.T) {
	sp := demoSpace()
	for _, bad := range [][2]int{{-1, 2}, {0, sp.Size() + 1}, {sp.Size(), 1}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChunkAt(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			for range sp.ChunkAt(bad[0], bad[1]) {
			}
		}()
	}
}
