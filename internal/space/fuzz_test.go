package space

import (
	"reflect"
	"testing"
)

// fuzzSpace builds a small mixed space whose radices are driven by the
// fuzzer: four cardinal axes of 1–6 settings each plus a dependent
// axis, so the mixed-radix counter's carry logic is exercised across
// arbitrary digit patterns.
func fuzzSpace(radices uint64) *Space {
	card := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = float64(i + 1)
		}
		return v
	}
	r := make([]int, 4)
	for i := range r {
		r[i] = int(radices>>(8*i))%6 + 1
	}
	table := make([][]float64, r[0])
	for i := range table {
		table[i] = card(3)
		table[i][0] = float64(i + 1) // rows differ, same cardinality
	}
	return New("fuzz", []Param{
		{Name: "a", Kind: Cardinal, Values: card(r[0])},
		{Name: "b", Kind: Cardinal, Values: card(r[1])},
		{Name: "c", Kind: Cardinal, Values: card(r[2])},
		{Name: "d", Kind: Cardinal, Values: card(r[3])},
		{Name: "dep", Kind: Cardinal, DependsOn: "a", Table: table},
	})
}

// FuzzChunkAt checks the chunked enumerator against the per-index
// bijection for arbitrary radix patterns and [start, start+rows)
// windows: every yielded index i must carry exactly Choices(i), in
// order, with no points skipped or repeated, and Index must invert it.
func FuzzChunkAt(f *testing.F) {
	f.Add(uint64(0x01020304), uint64(0), uint64(7))
	f.Add(uint64(0x05050505), uint64(123), uint64(456))
	f.Add(uint64(0xffffffff), uint64(1), uint64(1))
	f.Fuzz(func(t *testing.T, radices, start, rows uint64) {
		sp := fuzzSpace(radices)
		size := sp.Size()
		lo := int(start % uint64(size))
		n := int(rows % uint64(size-lo+1))
		want := lo
		for i, choices := range sp.ChunkAt(lo, n) {
			if i != want {
				t.Fatalf("yielded index %d, want %d", i, want)
			}
			if got := sp.Choices(i); !reflect.DeepEqual(choices, got) {
				t.Fatalf("index %d: chunked choices %v, Choices %v", i, choices, got)
			}
			if back := sp.Index(choices); back != i {
				t.Fatalf("Index(Choices(%d)) = %d", i, back)
			}
			want++
		}
		if want != lo+n {
			t.Fatalf("chunk [%d,%d) yielded %d points, want %d", lo, lo+n, want-lo, n)
		}
	})
}
