package explore

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/bundle"
	"repro/internal/core"
)

// uninterrupted runs a checkpointing driver to completion and returns
// its final state.
func uninterrupted(t *testing.T, cfg core.ExploreConfig, pipe Pipeline) runState {
	t.Helper()
	sp := synthSpace()
	d, err := New(sp, &synthOracle{sp: sp}, Config{ExploreConfig: cfg, Pipeline: pipe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return runState{samples: d.Samples(), steps: stripTimes(d.Steps()), ens: ensembleBytes(t, d.Ensemble())}
}

// TestKillBetweenRoundsResumeBitIdentical kills a run at a round
// boundary (cancel fired from the OnStep observer) and resumes it from
// the checkpoint file: the continued run must reproduce the
// uninterrupted run's sampled set, step history and final ensemble
// weights bit-identically.
func TestKillBetweenRoundsResumeBitIdentical(t *testing.T) {
	cfg := exploreCfg(core.SelectRandom)
	cfg.MaxSamples = 45 // three rounds
	want := uninterrupted(t, cfg, Pipeline{Workers: 2})

	path := filepath.Join(t.TempDir(), "run.checkpoint")
	sp := synthSpace()
	ctx, cancel := context.WithCancel(context.Background())
	pipe := Pipeline{Workers: 2, CheckpointPath: path}
	rounds := 0
	pipe.OnStep = func(core.Step) {
		rounds++
		if rounds == 1 {
			cancel() // "kill" after the first completed round
		}
	}
	d, err := New(sp, &synthOracle{sp: sp}, Config{ExploreConfig: cfg, Pipeline: pipe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run returned %v, want context.Canceled", err)
	}

	resumed, err := ResumeFile(path, &synthOracle{sp: synthSpace()}, Pipeline{Workers: 4, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resumed.Samples()); got != cfg.BatchSize {
		t.Fatalf("checkpoint carried %d samples, want the first round's %d", got, cfg.BatchSize)
	}
	if _, err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := runState{samples: resumed.Samples(), steps: stripTimes(resumed.Steps()), ens: ensembleBytes(t, resumed.Ensemble())}
	requireSameRun(t, "kill/resume at round boundary", got, want)

	// The checkpoint kept rolling forward during the resumed run: a
	// second resume from the final file must land on the same state
	// with nothing left to do.
	final, err := ResumeFile(path, &synthOracle{sp: synthSpace()}, Pipeline{})
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Samples()) != len(want.samples) {
		t.Fatalf("final checkpoint has %d samples, want %d", len(final.Samples()), len(want.samples))
	}
}

// TestKillMidRoundResumeBitIdentical kills the run in the middle of a
// round's oracle fan-out — the worst case: partial results in flight,
// none recorded. Resume must replay the interrupted round from the last
// boundary and still converge to the uninterrupted run bit-identically.
func TestKillMidRoundResumeBitIdentical(t *testing.T) {
	cfg := exploreCfg(core.SelectRandom)
	cfg.MaxSamples = 45
	want := uninterrupted(t, cfg, Pipeline{Workers: 2})

	path := filepath.Join(t.TempDir(), "run.checkpoint")
	sp := synthSpace()
	ctx, cancel := context.WithCancel(context.Background())
	inner := &synthOracle{sp: sp}
	killing := core.OracleFunc(func(indices []int) ([][]float64, error) {
		// 15 evaluations = round 1 done; die partway through the next
		// fan-out (which may be round 2's speculative flight).
		if inner.evaluations() >= 22 {
			cancel()
			return nil, ctx.Err()
		}
		return inner.Evaluate(indices)
	})
	d, err := New(sp, killing, Config{ExploreConfig: cfg, Pipeline: Pipeline{Workers: 2, CheckpointPath: path}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(ctx); err == nil {
		t.Fatal("killed run returned no error")
	}

	resumed, err := ResumeFile(path, &synthOracle{sp: synthSpace()}, Pipeline{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := runState{samples: resumed.Samples(), steps: stripTimes(resumed.Steps()), ens: ensembleBytes(t, resumed.Ensemble())}
	requireSameRun(t, "kill/resume mid-round", got, want)
	if q := resumed.Quarantined(); len(q) != 0 {
		t.Fatalf("mid-round kill leaked quarantine entries into the resumed run: %v", q)
	}
}

// TestCheckpointCarriesQuarantine verifies quarantined points survive
// the checkpoint round trip and stay out of the resumed run's draws.
func TestCheckpointCarriesQuarantine(t *testing.T) {
	sp := synthSpace()
	bad := func(idx int) bool { return idx%5 == 0 }
	oracle := &synthOracle{sp: sp, fail: func(idx, attempt int) error {
		if bad(idx) {
			return fmt.Errorf("permanent failure")
		}
		return nil
	}}
	path := filepath.Join(t.TempDir(), "run.checkpoint")
	cfg := exploreCfg(core.SelectRandom)
	d, err := New(sp, oracle, Config{ExploreConfig: cfg, Pipeline: Pipeline{Retries: -1, CheckpointPath: path}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(d.Quarantined()) == 0 {
		t.Fatal("fixture produced no quarantine")
	}
	cp, err := bundle.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Quarantine) != len(d.Quarantined()) {
		t.Fatalf("checkpoint records %d quarantined points, driver has %d",
			len(cp.Quarantine), len(d.Quarantined()))
	}
	resumed, err := Resume(cp, oracle, Pipeline{Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(resumed.Quarantined()), len(cp.Quarantine); got != want {
		t.Fatalf("resume restored %d quarantined points, want %d", got, want)
	}
	// Meta provenance flows checkpoint → resumed driver → new
	// checkpoints by default.
	if cp.Meta.Samples != len(d.Samples()) {
		t.Fatalf("checkpoint meta counts %d samples, driver has %d", cp.Meta.Samples, len(d.Samples()))
	}
}

// TestResumeOfTargetMetRunFinishesImmediately guards the early-stop
// path: finishRound writes the checkpoint before Run's target check, so
// a run that stopped because the error target was met leaves that final
// round's checkpoint on disk. Resuming it must finish without
// simulating another batch.
func TestResumeOfTargetMetRunFinishesImmediately(t *testing.T) {
	cfg := exploreCfg(core.SelectRandom)
	cfg.TargetMeanErr = 1e9 // met after the first round
	path := filepath.Join(t.TempDir(), "run.checkpoint")
	sp := synthSpace()
	d, err := New(sp, &synthOracle{sp: sp}, Config{ExploreConfig: cfg, Pipeline: Pipeline{CheckpointPath: path}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := runState{samples: d.Samples(), steps: stripTimes(d.Steps()), ens: ensembleBytes(t, d.Ensemble())}

	oracle := &synthOracle{sp: synthSpace()}
	resumed, err := ResumeFile(path, oracle, Pipeline{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := oracle.evaluations(); got != 0 {
		t.Fatalf("resuming a finished run simulated %d extra points", got)
	}
	got := runState{samples: resumed.Samples(), steps: stripTimes(resumed.Steps()), ens: ensembleBytes(t, resumed.Ensemble())}
	requireSameRun(t, "resume of finished run", got, want)
}

// TestStepSkipsTrainingOnFullyQuarantinedBatch guards the durable-curve
// path: a round where every point fails must neither retrain on the
// unchanged pool nor write a step history the checkpoint loader rejects
// as non-growing.
func TestStepSkipsTrainingOnFullyQuarantinedBatch(t *testing.T) {
	sp := synthSpace()
	var failAll bool
	oracle := &synthOracle{sp: sp, fail: func(idx, attempt int) error {
		if failAll {
			return fmt.Errorf("outage")
		}
		return nil
	}}
	path := filepath.Join(t.TempDir(), "run.checkpoint")
	cfg := exploreCfg(core.SelectRandom)
	cfg.MaxSamples = sp.Size()
	d, err := New(sp, oracle, Config{ExploreConfig: cfg, Pipeline: Pipeline{Retries: -1, CheckpointPath: path}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := d.Step(ctx, 15); err != nil {
		t.Fatal(err)
	}
	rounds := len(d.Steps())
	failAll = true
	if err := d.Step(ctx, 15); err != nil {
		t.Fatalf("fully-quarantined step must not fail the study: %v", err)
	}
	if got := len(d.Steps()); got != rounds {
		t.Fatalf("quarantined-only round appended a step (%d -> %d)", rounds, got)
	}
	if got := len(d.Quarantined()); got != 15 {
		t.Fatalf("%d points quarantined, want the whole 15-point batch", got)
	}
	// The last written checkpoint must still load and resume.
	failAll = false
	resumed, err := ResumeFile(path, oracle, Pipeline{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Step(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if got := len(resumed.Samples()); got != 25 {
		t.Fatalf("resumed study holds %d samples, want 25", got)
	}
}
