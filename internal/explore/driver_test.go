package explore

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/space"
)

// synthSpace is a small analytic design space mirroring the core
// package's test space: 120 points over four axes.
func synthSpace() *space.Space {
	return space.New("synth", []space.Param{
		{Name: "a", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8}},
		{Name: "b", Kind: space.Cardinal, Values: []float64{1, 2, 3, 4, 5}},
		{Name: "c", Kind: space.Continuous, Values: []float64{0.5, 1.0, 1.5}},
		{Name: "mode", Kind: space.Nominal, Levels: []string{"x", "y"}},
	})
}

// synthTarget is a smooth positive function of a design point, standing
// in for simulated IPC.
func synthTarget(sp *space.Space, idx int) float64 {
	c := sp.Choices(idx)
	a := sp.Value(c, 0)
	b := sp.Value(c, 1)
	f := sp.Value(c, 2)
	v := 0.4 + 0.3*math.Log2(a) + 0.1*b*f
	if sp.LevelName(c, 3) == "y" {
		v *= 1.25
	}
	return v
}

// synthOracle answers synthTarget, optionally misbehaving per point
// through fail, and counting evaluations (thread-safe: the driver fans
// it out).
type synthOracle struct {
	sp   *space.Space
	fail func(idx, attempt int) error // nil = always succeed

	mu       sync.Mutex
	calls    int
	attempts map[int]int
}

func (o *synthOracle) Evaluate(indices []int) ([][]float64, error) {
	out := make([][]float64, len(indices))
	for i, idx := range indices {
		o.mu.Lock()
		o.calls++
		if o.attempts == nil {
			o.attempts = make(map[int]int)
		}
		o.attempts[idx]++
		attempt := o.attempts[idx]
		o.mu.Unlock()
		if o.fail != nil {
			if err := o.fail(idx, attempt); err != nil {
				return nil, err
			}
		}
		out[i] = []float64{synthTarget(o.sp, idx)}
	}
	return out, nil
}

func (o *synthOracle) evaluations() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.calls
}

func fastModel() core.ModelConfig {
	cfg := core.DefaultModelConfig()
	cfg.Train.MaxEpochs = 120
	cfg.Train.Patience = 25
	return cfg
}

func exploreCfg(strategy core.Selection) core.ExploreConfig {
	return core.ExploreConfig{
		Model:      fastModel(),
		BatchSize:  15,
		MaxSamples: 30,
		Strategy:   strategy,
		Seed:       41,
	}
}

// ensembleBytes serializes an ensemble so runs can be compared
// bit-for-bit.
func ensembleBytes(t *testing.T, ens *core.Ensemble) []byte {
	t.Helper()
	if ens == nil {
		t.Fatal("no ensemble")
	}
	var buf bytes.Buffer
	if err := ens.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runState captures everything two runs must agree on.
type runState struct {
	samples []int
	steps   []core.Step
	ens     []byte
}

func stripTimes(steps []core.Step) []core.Step {
	out := append([]core.Step(nil), steps...)
	for i := range out {
		out[i].TrainTime = 0 // wall clock is the one legitimately varying field
	}
	return out
}

func explorerState(t *testing.T, cfg core.ExploreConfig) runState {
	t.Helper()
	sp := synthSpace()
	ex, err := core.NewExplorer(sp, &synthOracle{sp: sp}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	return runState{samples: ex.Samples(), steps: stripTimes(ex.Steps()), ens: ensembleBytes(t, ex.Ensemble())}
}

func driverState(t *testing.T, cfg core.ExploreConfig, pipe Pipeline) runState {
	t.Helper()
	sp := synthSpace()
	d, err := New(sp, &synthOracle{sp: sp}, Config{ExploreConfig: cfg, Pipeline: pipe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if q := d.Quarantined(); len(q) != 0 {
		t.Fatalf("deterministic oracle produced quarantine: %v", q)
	}
	return runState{samples: d.Samples(), steps: stripTimes(d.Steps()), ens: ensembleBytes(t, d.Ensemble())}
}

func requireSameRun(t *testing.T, label string, got, want runState) {
	t.Helper()
	if len(got.samples) != len(want.samples) {
		t.Fatalf("%s: sampled %d points, want %d", label, len(got.samples), len(want.samples))
	}
	for i := range want.samples {
		if got.samples[i] != want.samples[i] {
			t.Fatalf("%s: sample order diverges at %d: got point %d, want %d",
				label, i, got.samples[i], want.samples[i])
		}
	}
	if len(got.steps) != len(want.steps) {
		t.Fatalf("%s: %d rounds, want %d", label, len(got.steps), len(want.steps))
	}
	for i := range want.steps {
		if got.steps[i] != want.steps[i] {
			t.Fatalf("%s: round %d diverges: got %+v, want %+v", label, i, got.steps[i], want.steps[i])
		}
	}
	if !bytes.Equal(got.ens, want.ens) {
		t.Fatalf("%s: final ensemble weights differ", label)
	}
}

// TestDriverMatchesSequentialExplorer is the tentpole's deterministic-
// parity guarantee: for every pipeline setting — one worker, many
// workers, speculation on or off — the driver reproduces the sequential
// core.Explorer's exact sample order, step history and ensemble
// weights. The pipeline may only change wall-clock time.
func TestDriverMatchesSequentialExplorer(t *testing.T) {
	cfg := exploreCfg(core.SelectRandom)
	want := explorerState(t, cfg)
	pipelines := map[string]Pipeline{
		"workers=1 sequential": {Workers: -1, Sequential: true},
		"workers=1 overlapped": {Workers: -1},
		"workers=4 overlapped": {Workers: 4},
		"workers=16 no-retry":  {Workers: 16, Retries: -1},
	}
	for label, pipe := range pipelines {
		requireSameRun(t, label, driverState(t, cfg, pipe), want)
	}
}

func TestDriverMatchesExplorerUnderVarianceSelection(t *testing.T) {
	cfg := exploreCfg(core.SelectVariance)
	cfg.CandidatePool = 60
	want := explorerState(t, cfg)
	for label, pipe := range map[string]Pipeline{
		"workers=1": {Workers: -1},
		"workers=4": {Workers: 4},
	} {
		requireSameRun(t, label, driverState(t, cfg, pipe), want)
	}
}

func TestDriverStopsAtErrorTarget(t *testing.T) {
	cfg := exploreCfg(core.SelectRandom)
	cfg.TargetMeanErr = 1e9 // stop after the first round
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	d, err := New(sp, oracle, Config{ExploreConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Samples()); got != cfg.BatchSize {
		t.Fatalf("driver recorded %d samples despite an immediately met target", got)
	}
	// Speculation may have simulated (at most) one extra batch; those
	// results are discarded, never recorded.
	if got, max := oracle.evaluations(), 2*cfg.BatchSize; got > max {
		t.Fatalf("oracle ran %d evaluations, speculation should bound it by %d", got, max)
	}
}

func TestDriverQuarantinesFailingPoints(t *testing.T) {
	sp := synthSpace()
	// Points divisible by 7 fail on every attempt.
	bad := func(idx int) bool { return idx%7 == 0 }
	oracle := &synthOracle{sp: sp, fail: func(idx, attempt int) error {
		if bad(idx) {
			return fmt.Errorf("synthetic hard failure")
		}
		return nil
	}}
	cfg := exploreCfg(core.SelectRandom)
	d, err := New(sp, oracle, Config{ExploreConfig: cfg, Pipeline: Pipeline{Workers: 4, Retries: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatalf("per-point failures must not abort the run: %v", err)
	}
	if got := len(d.Samples()); got != cfg.MaxSamples {
		t.Fatalf("run finished with %d samples, want the full budget %d (fresh draws replace quarantined points)",
			got, cfg.MaxSamples)
	}
	for _, idx := range d.Samples() {
		if bad(idx) {
			t.Fatalf("failing point %d entered the training pool", idx)
		}
	}
	q := d.Quarantined()
	if len(q) == 0 {
		t.Fatal("no quarantine recorded despite failing points")
	}
	for _, p := range q {
		if !bad(p.Index) {
			t.Fatalf("healthy point %d quarantined: %s", p.Index, p.Error)
		}
		if p.Attempts != 3 {
			t.Fatalf("point %d quarantined after %d attempts, want 1+2 retries", p.Index, p.Attempts)
		}
		if want := fmt.Sprintf("design point %d", p.Index); !strings.Contains(p.Error, want) {
			t.Fatalf("quarantine error %q does not name %q", p.Error, want)
		}
	}
}

func TestDriverRetriesTransientFailures(t *testing.T) {
	cfg := exploreCfg(core.SelectRandom)
	want := explorerState(t, cfg)
	sp := synthSpace()
	// Every point fails exactly once, then succeeds: one retry must
	// make the run indistinguishable from a healthy oracle's.
	oracle := &synthOracle{sp: sp, fail: func(idx, attempt int) error {
		if attempt == 1 {
			return fmt.Errorf("transient failure")
		}
		return nil
	}}
	d, err := New(sp, oracle, Config{ExploreConfig: cfg, Pipeline: Pipeline{Workers: 4, Retries: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if q := d.Quarantined(); len(q) != 0 {
		t.Fatalf("transient failures quarantined despite retry budget: %v", q)
	}
	got := runState{samples: d.Samples(), steps: stripTimes(d.Steps()), ens: ensembleBytes(t, d.Ensemble())}
	requireSameRun(t, "retried run", got, want)
}

func TestDriverMalformedTargetsQuarantineNotAbort(t *testing.T) {
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	// Oracle wrapper returning NaN for points divisible by 11.
	wrapped := core.OracleFunc(func(indices []int) ([][]float64, error) {
		out, err := oracle.Evaluate(indices)
		if err != nil {
			return nil, err
		}
		for i, idx := range indices {
			if idx%11 == 0 {
				out[i] = []float64{math.NaN()}
			}
		}
		return out, nil
	})
	cfg := exploreCfg(core.SelectRandom)
	d, err := New(sp, wrapped, Config{ExploreConfig: cfg, Pipeline: Pipeline{Retries: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Quarantined() {
		if p.Index%11 != 0 {
			t.Fatalf("healthy point %d quarantined: %s", p.Index, p.Error)
		}
		if want := fmt.Sprintf("design point %d", p.Index); !strings.Contains(p.Error, want) {
			t.Fatalf("quarantine error %q does not name %q", p.Error, want)
		}
	}
	for _, idx := range d.Samples() {
		if idx%11 == 0 {
			t.Fatalf("NaN-producing point %d entered the training pool", idx)
		}
	}
}

func TestDriverCancellation(t *testing.T) {
	sp := synthSpace()
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the oracle, mid-way through the second round.
	oracle := &synthOracle{sp: sp}
	counting := core.OracleFunc(func(indices []int) ([][]float64, error) {
		if oracle.evaluations() >= 20 {
			cancel()
		}
		return oracle.Evaluate(indices)
	})
	cfg := exploreCfg(core.SelectRandom)
	d, err := New(sp, counting, Config{ExploreConfig: cfg, Pipeline: Pipeline{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(ctx); err == nil {
		t.Fatal("cancelled run returned no error")
	}
	// The interrupted round is discarded whole: state sits at a round
	// boundary, and cancellation never masquerades as quarantine.
	if got := len(d.Samples()); got != 0 && got != cfg.BatchSize {
		t.Fatalf("cancelled run holds %d samples, not a round boundary", got)
	}
	if q := d.Quarantined(); len(q) != 0 {
		t.Fatalf("cancellation produced quarantine entries: %v", q)
	}
}

func TestDriverValidatesConfig(t *testing.T) {
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	if _, err := New(sp, oracle, Config{ExploreConfig: core.ExploreConfig{Model: fastModel(), BatchSize: 0, MaxSamples: 10}}); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := New(sp, nil, Config{ExploreConfig: exploreCfg(core.SelectRandom)}); err == nil {
		t.Fatal("nil oracle accepted")
	}
	bad := exploreCfg(core.SelectRandom)
	bad.Exclude = []int{sp.Size()}
	if _, err := New(sp, oracle, Config{ExploreConfig: bad}); err == nil {
		t.Fatal("out-of-range exclusion accepted")
	}
}
