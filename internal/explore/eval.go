package explore

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bundle"
	"repro/internal/core"
)

// DefaultRetries is how many extra attempts a failing design point gets
// before quarantine when Pipeline.Retries is zero.
const DefaultRetries = 1

// pointResult is the outcome of evaluating one design point.
type pointResult struct {
	target   []float64
	attempts int
	err      error // last failure; nil on success
}

// flight is one in-flight batch evaluation: the batch's points fan out
// over a worker pool, and results reassemble in batch order regardless
// of which worker finishes when — the property that keeps parallel runs
// bit-identical to sequential ones.
type flight struct {
	batch   []int
	results []pointResult
	done    chan struct{}
}

// await blocks until every point has an outcome.
func (f *flight) await() []pointResult {
	<-f.done
	return f.results
}

// launchEval starts evaluating batch across a pool of workers and
// returns immediately; the caller awaits the flight when it needs the
// results. Each point is evaluated through its own single-element
// Evaluate call, so any core.Oracle — including the cycle-level
// simulator adapters, whose per-point cost is the reason this package
// exists — runs genuinely in parallel without implementing its own
// batching. attempts is the total tries per point (>= 1).
func launchEval(ctx context.Context, oracle core.Oracle, batch []int, workers, attempts int) *flight {
	fl := &flight{
		batch:   batch,
		results: make([]pointResult, len(batch)),
		done:    make(chan struct{}),
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fl.batch) {
					return
				}
				fl.results[i] = evalPoint(ctx, oracle, fl.batch[i], attempts)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(fl.done)
	}()
	return fl
}

// evalPoint evaluates one design point, retrying failures up to
// attempts total tries. Cancellation surfaces as the context's error
// and stops retrying immediately.
func evalPoint(ctx context.Context, oracle core.Oracle, idx, attempts int) pointResult {
	var res pointResult
	for try := 1; try <= attempts; try++ {
		if err := ctx.Err(); err != nil {
			res.err = err
			return res
		}
		res.attempts = try
		targets, err := oracle.Evaluate([]int{idx})
		if err == nil {
			switch {
			case len(targets) != 1:
				err = fmt.Errorf("explore: oracle returned %d results for design point %d, want 1", len(targets), idx)
			default:
				err = core.CheckTarget(idx, targets[0], 0)
			}
			if err == nil {
				res.target = targets[0]
				res.err = nil
				return res
			}
		}
		res.err = fmt.Errorf("explore: design point %d (attempt %d/%d): %w", idx, try, attempts, err)
	}
	return res
}

// resolveFanout maps a Pipeline.Workers setting to a concrete pool
// size: positive as-is, 0 selects GOMAXPROCS, negative sequential.
func resolveFanout(w int) int {
	if w > 0 {
		return w
	}
	if w == 0 {
		if p := runtime.GOMAXPROCS(0); p > 1 {
			return p
		}
	}
	return 1
}

// resolveAttempts maps a Pipeline.Retries setting to total tries per
// point: 0 selects DefaultRetries extra attempts, negative none.
func resolveAttempts(retries int) int {
	switch {
	case retries > 0:
		return 1 + retries
	case retries == 0:
		return 1 + DefaultRetries
	default:
		return 1
	}
}

// EvaluateBatch evaluates indices through the oracle with the same
// machinery the driver uses — per-point fan-out across workers,
// order-preserving reassembly, retry-then-quarantine — and returns the
// targets for the points that succeeded alongside the quarantine list
// for those that did not. Callers that need every point (a fixed
// training set, say) treat a non-empty quarantine as fatal; callers
// growing a pool simply drop the quarantined points.
//
// The returned targets slice aligns with ok: targets[i] belongs to
// ok[i], which preserves the relative order of indices.
func EvaluateBatch(ctx context.Context, oracle core.Oracle, indices []int, workers, retries int) (ok []int, targets [][]float64, quarantined []bundle.QuarantinedPoint, err error) {
	results := launchEval(ctx, oracle, indices, resolveFanout(workers), resolveAttempts(retries)).await()
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	width := 0
	for i, idx := range indices {
		r := results[i]
		if r.err == nil {
			if werr := core.CheckTarget(idx, r.target, width); werr != nil {
				r.err = werr
			}
		}
		if r.err != nil {
			quarantined = append(quarantined, bundle.QuarantinedPoint{Index: idx, Attempts: r.attempts, Error: r.err.Error()})
			continue
		}
		width = len(r.target)
		ok = append(ok, idx)
		targets = append(targets, r.target)
	}
	return ok, targets, quarantined, nil
}
