package explore

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// slowOracle models a simulation-bound oracle: each point costs a fixed
// latency (the cycle-level simulator's per-point runtime) before the
// analytic answer comes back. Latency-bound work is exactly where the
// per-point fan-out pays even on one core.
type slowOracle struct {
	inner   *synthOracle
	latency time.Duration
}

func (o *slowOracle) Evaluate(indices []int) ([][]float64, error) {
	time.Sleep(time.Duration(len(indices)) * o.latency)
	return o.inner.Evaluate(indices)
}

// BenchmarkOracleFanout measures one 50-point oracle batch through the
// evaluation stage alone at different worker counts: the numbers in
// BENCH_pipeline.json come from here.
func BenchmarkOracleFanout(b *testing.B) {
	sp := synthSpace()
	const batchSize = 50
	const latency = 2 * time.Millisecond
	batch := make([]int, batchSize)
	for i := range batch {
		batch[i] = i
	}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			oracle := &slowOracle{inner: &synthOracle{sp: sp}, latency: latency}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := launchEval(context.Background(), oracle, batch, workers, 1).await()
				for _, r := range results {
					if r.err != nil {
						b.Fatal(r.err)
					}
				}
			}
			perOp := b.Elapsed() / time.Duration(b.N)
			b.ReportMetric(float64(batchSize)/perOp.Seconds(), "points/s")
		})
	}
}

// BenchmarkDriverRound measures a full pipelined round — selection,
// fan-out simulation, training — against the sequential explorer on the
// same latency-bound oracle, capturing the train/simulate overlap win
// as well.
func BenchmarkDriverRound(b *testing.B) {
	const latency = 1 * time.Millisecond
	cfg := core.ExploreConfig{
		Model:      fastModel(),
		BatchSize:  25,
		MaxSamples: 50,
		Seed:       3,
	}
	b.Run("sequential-explorer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := synthSpace()
			ex, err := core.NewExplorer(sp, &slowOracle{inner: &synthOracle{sp: sp}, latency: latency}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ex.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("driver/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp := synthSpace()
				d, err := New(sp, &slowOracle{inner: &synthOracle{sp: sp}, latency: latency},
					Config{ExploreConfig: cfg, Pipeline: Pipeline{Workers: workers}})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := d.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
