// Package explore is the pipelined exploration engine: the paper's
// §3.3 simulate→train→estimate loop (core.Explorer) decomposed into
// overlapping stages that are durable, concurrent and cancellable.
//
//   - Oracle evaluation fans each batch out over a worker pool,
//     per-point, with order-preserving reassembly — the cycle-level
//     simulator finally runs in parallel, and a k-core box cuts a
//     simulation-bound round's wall clock by ~k× without changing one
//     bit of the result.
//   - Per-point oracle failures are retried and then quarantined (the
//     point is recorded and never drawn again) instead of aborting a
//     run that may have hours of simulation behind it.
//   - Under random selection, training on round N overlaps with the
//     speculative selection and simulation of round N+1: selection
//     draws from the RNG exactly where the sequential loop would, and
//     training never touches the selection stream, so the overlap is
//     invisible in the outputs. If round N meets the error target, the
//     speculative simulations are discarded. (Variance-driven selection
//     needs round N's ensemble to choose round N+1, so it runs the
//     stages in lockstep; the within-batch fan-out still applies.)
//   - After every completed round the driver can write a versioned
//     bundle.Checkpoint — kill the process anywhere and Resume
//     reproduces the uninterrupted run bit-identically.
//
// The sequential core.Explorer remains as the compatibility shim and
// the reference this engine's deterministic-parity tests compare
// against; CLI tools, experiments and the HTTP job API (internal/serve)
// all run on the driver.
package explore

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/space"
)

// Pipeline bundles the scheduling knobs of the driver. None of them
// affect results — only wall-clock time and durability; the outputs for
// a given (space, oracle, ExploreConfig) are bit-identical for every
// setting, which is what makes the pipeline safe to tune in production.
type Pipeline struct {
	// Workers bounds the oracle fan-out: at most this many design
	// points evaluate concurrently (0 = GOMAXPROCS, negative = one at a
	// time).
	Workers int
	// Retries is how many extra attempts a failing point gets before
	// quarantine (0 = DefaultRetries, negative = none).
	Retries int
	// Sequential disables the speculative overlap of round-N training
	// with round-N+1 simulation.
	Sequential bool
	// CheckpointPath, when non-empty, makes the driver atomically write
	// a resumable snapshot there after every completed round.
	CheckpointPath string
	// Meta is provenance recorded into checkpoints (study, app, trace
	// length), so a resume can rebuild the matching oracle.
	Meta bundle.Meta
	// OnStep, when non-nil, observes each completed round — live
	// progress for CLIs and the job API. It runs on the driver's
	// orchestration goroutine.
	OnStep func(core.Step)
}

// Config couples the paper's loop parameters with the pipeline's
// scheduling knobs.
type Config struct {
	core.ExploreConfig
	Pipeline
}

// Driver runs the exploration pipeline over one design space and
// oracle. Methods must not be called concurrently; the concurrency is
// inside (oracle fan-out, train/simulate overlap), not on the API.
type Driver struct {
	sp     *space.Space
	enc    *encoding.Encoder
	oracle core.Oracle
	cfg    Config
	sel    *core.BatchSelector
	acq    core.Acquirer // non-nil iff cfg.Acquire is

	indices []int       // simulated design points, in sampling order
	inputs  [][]float64 // encoded inputs, aligned with indices
	targets [][]float64 // oracle target vectors, aligned with indices
	width   int         // established target-vector width (0 before any)

	ens        *core.Ensemble
	steps      []core.Step
	quarantine []bundle.QuarantinedPoint

	// cpRNG is the selection RNG's state as of the last record() —
	// i.e. before any speculative draws for the next round — which is
	// exactly the state a resumed run must restart from.
	cpRNG [4]uint64
}

// New constructs a driver over the design space with the given oracle.
func New(sp *space.Space, oracle core.Oracle, cfg Config) (*Driver, error) {
	if oracle == nil {
		return nil, fmt.Errorf("explore: need an oracle")
	}
	if err := cfg.Validate(sp); err != nil {
		return nil, err
	}
	enc := encoding.NewEncoder(sp)
	d := &Driver{
		sp:     sp,
		enc:    enc,
		oracle: oracle,
		cfg:    cfg,
		sel:    core.NewBatchSelector(sp, enc, cfg.SeedRNG()),
	}
	if cfg.Acquire != nil {
		acq, err := core.NewAcquirer(cfg.Acquire)
		if err != nil {
			return nil, err
		}
		d.acq = acq
	}
	for _, idx := range cfg.Exclude {
		d.sel.Reserve(idx)
	}
	d.cpRNG = d.sel.RNG().State()
	return d, nil
}

// Resume rebuilds a driver from a checkpoint: the sampled set, targets,
// round history, quarantine list and — critically — the selection RNG's
// exact state are restored, so the continued run draws the same batches
// the uninterrupted run would have. The loop configuration is adopted
// from the checkpoint; only the pipeline knobs are the caller's, since
// they cannot change results.
func Resume(cp *bundle.Checkpoint, oracle core.Oracle, pipe Pipeline) (*Driver, error) {
	if reflect.DeepEqual(pipe.Meta, bundle.Meta{}) {
		pipe.Meta = cp.Meta
	}
	d, err := New(cp.Space, oracle, Config{ExploreConfig: cp.Config, Pipeline: pipe})
	if err != nil {
		return nil, err
	}
	if err := d.sel.RNG().Restore(cp.RNG); err != nil {
		return nil, fmt.Errorf("explore: resume: %w", err)
	}
	d.cpRNG = cp.RNG
	for i, idx := range cp.Indices {
		d.sel.Reserve(idx)
		d.indices = append(d.indices, idx)
		d.inputs = append(d.inputs, d.enc.EncodeIndex(idx, nil))
		d.targets = append(d.targets, cp.Targets[i])
		d.width = len(cp.Targets[i])
	}
	for _, q := range cp.Quarantine {
		d.sel.Reserve(q.Index)
	}
	d.quarantine = append(d.quarantine, cp.Quarantine...)
	d.steps = append(d.steps, cp.Steps...)
	d.ens = cp.Ensemble
	return d, nil
}

// ResumeFile is Resume over a checkpoint file written by a previous
// run's Pipeline.CheckpointPath.
func ResumeFile(path string, oracle core.Oracle, pipe Pipeline) (*Driver, error) {
	cp, err := bundle.ReadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	return Resume(cp, oracle, pipe)
}

// Samples returns the design-point indices simulated so far.
func (d *Driver) Samples() []int { return append([]int(nil), d.indices...) }

// Steps returns the per-round history.
func (d *Driver) Steps() []core.Step { return append([]core.Step(nil), d.steps...) }

// Ensemble returns the most recently trained ensemble (nil before the
// first round).
func (d *Driver) Ensemble() *core.Ensemble { return d.ens }

// Encoder exposes the input encoding, so callers can encode evaluation
// points consistently.
func (d *Driver) Encoder() *encoding.Encoder { return d.enc }

// Space returns the design space the driver explores.
func (d *Driver) Space() *space.Space { return d.sp }

// Quarantined returns the points the oracle failed on, in failure
// order.
func (d *Driver) Quarantined() []bundle.QuarantinedPoint {
	return append([]bundle.QuarantinedPoint(nil), d.quarantine...)
}

// Checkpoint snapshots the driver at the current round boundary.
func (d *Driver) Checkpoint() *bundle.Checkpoint {
	meta := d.cfg.Meta
	meta.Samples = len(d.indices)
	return &bundle.Checkpoint{
		Space:      d.sp,
		Encoder:    d.enc,
		Config:     d.cfg.ExploreConfig,
		RNG:        d.cpRNG,
		Indices:    append([]int(nil), d.indices...),
		Targets:    append([][]float64(nil), d.targets...),
		Steps:      append([]core.Step(nil), d.steps...),
		Quarantine: append([]bundle.QuarantinedPoint(nil), d.quarantine...),
		Ensemble:   d.ens,
		Meta:       meta,
	}
}

// Run executes pipelined rounds of select→simulate→train until the
// error target is met, MaxSamples is reached, the drawable space is
// exhausted, or ctx is cancelled, returning the final ensemble. A
// cancelled run loses at most the in-flight round; everything up to the
// last completed round is in the checkpoint (when configured) and in
// the driver's own state.
func (d *Driver) Run(ctx context.Context) (*core.Ensemble, error) {
	// Derive a context that dies with this call, so a speculative
	// flight abandoned at an early stop (error target met, training
	// failure) stops simulating instead of burning cores behind the
	// caller's back.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var pending *flight
	for len(d.indices) < d.cfg.MaxSamples {
		// Checked at entry as well as after each round: a run resumed
		// from the checkpoint of a target-meeting final round must
		// finish immediately, not simulate one batch more than the
		// uninterrupted run did.
		if d.targetMet() {
			break
		}
		var batch []int
		var results []pointResult
		if pending != nil {
			batch, results = pending.batch, pending.await()
			pending = nil
		} else {
			var err error
			batch, err = d.nextBatch()
			if err != nil {
				return nil, err
			}
			if len(batch) == 0 {
				break // space (minus exclusions and quarantine) exhausted
			}
			results = d.launch(ctx, batch).await()
		}
		// A cancelled round is discarded whole: nothing recorded, no
		// quarantine from cancellation-induced failures.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		added := d.record(batch, results)
		if added == 0 {
			if d.sel.Remaining() == 0 {
				break // only quarantined points remained; no progress possible
			}
			continue // whole batch quarantined; draw a fresh one
		}
		training := d.trainAsync()
		// Speculative overlap: under random selection the next batch's
		// draws do not depend on the ensemble being trained, so its
		// simulations can run now. If this round turns out to be the
		// last, the speculative results are simply dropped — the
		// recorded run is identical to the sequential loop's.
		if d.speculative() && len(d.indices) < d.cfg.MaxSamples {
			// Random selection never errors, so the speculative draw
			// cannot either.
			if next, err := d.nextBatch(); err != nil {
				return nil, err
			} else if len(next) > 0 {
				pending = d.launch(ctx, next)
			}
		}
		res := <-training
		if res.err != nil {
			return nil, res.err
		}
		if err := d.finishRound(res); err != nil {
			return nil, err
		}
		if d.targetMet() {
			break
		}
	}
	if d.ens == nil {
		return nil, fmt.Errorf("explore: driver ran no rounds")
	}
	return d.ens, nil
}

// targetMet reports whether the current ensemble already satisfies the
// configured error target.
func (d *Driver) targetMet() bool {
	return d.ens != nil && d.cfg.TargetMeanErr > 0 && d.ens.Estimate().MeanErr <= d.cfg.TargetMeanErr
}

// Step runs one synchronous round growing the pool by up to n points —
// the incremental API the learning-curve experiments script against.
// Unlike Run it always trains, even when the batch came back smaller
// than asked (quarantine) — matching the sequential Grow+TrainRound
// contract.
func (d *Driver) Step(ctx context.Context, n int) error {
	if n > 0 {
		batch, err := d.selectBatch(n)
		if err != nil {
			return err
		}
		added := 0
		if len(batch) > 0 {
			results := d.launch(ctx, batch).await()
			if err := ctx.Err(); err != nil {
				return err
			}
			added = d.record(batch, results)
		}
		// An empty or fully-quarantined batch leaves the pool
		// unchanged; the existing ensemble already models it, and
		// retraining would append a non-growing step that the
		// checkpoint loader rightly rejects.
		if added == 0 && d.ens != nil {
			return nil
		}
	}
	res := <-d.trainAsync()
	if res.err != nil {
		return res.err
	}
	return d.finishRound(res)
}

// nextBatch sizes the next batch by the remaining budget and selects
// it.
func (d *Driver) nextBatch() ([]int, error) {
	n := d.cfg.BatchSize
	if rem := d.cfg.MaxSamples - len(d.indices); n > rem {
		n = rem
	}
	return d.selectBatch(n)
}

// selectBatch draws up to n points per the configured strategy:
// acquisition once an ensemble exists (the first round is always
// random), else variance or random selection.
func (d *Driver) selectBatch(n int) ([]int, error) {
	if n <= 0 {
		return nil, nil
	}
	if d.acq != nil && d.ens != nil {
		return d.sel.Acquire(d.acq, d.ens, d.inputs, n, d.cfg.CandidatePool)
	}
	if d.cfg.Strategy == core.SelectVariance && d.ens != nil {
		return d.sel.ByVariance(d.ens, n, d.cfg.CandidatePool), nil
	}
	return d.sel.Random(n), nil
}

// speculative reports whether the driver may overlap training with the
// next round's simulations. Acquisition (like variance selection) needs
// the latest ensemble to choose the next batch, so it always runs the
// stages in lockstep.
func (d *Driver) speculative() bool {
	return !d.cfg.Sequential && d.cfg.Strategy == core.SelectRandom && d.acq == nil
}

// launch starts the fan-out evaluation of batch.
func (d *Driver) launch(ctx context.Context, batch []int) *flight {
	return launchEval(ctx, d.oracle, batch, resolveFanout(d.cfg.Workers), resolveAttempts(d.cfg.Retries))
}

// record folds a round's evaluation outcomes into the training pool:
// successes append in batch order, failures quarantine. It finishes by
// snapshotting the RNG — the state any checkpoint of this round must
// carry, taken before speculation draws for the next one.
func (d *Driver) record(batch []int, results []pointResult) int {
	added := 0
	for i, idx := range batch {
		r := results[i]
		if r.err == nil {
			// Cross-batch width drift is not caught by the per-point
			// check inside evalPoint, which has no width context.
			if err := core.CheckTarget(idx, r.target, d.width); err != nil {
				r.err = err
			}
		}
		d.sel.Reserve(idx)
		if r.err != nil {
			d.quarantine = append(d.quarantine, bundle.QuarantinedPoint{
				Index:    idx,
				Attempts: r.attempts,
				Error:    r.err.Error(),
			})
			continue
		}
		d.indices = append(d.indices, idx)
		d.inputs = append(d.inputs, d.enc.EncodeIndex(idx, nil))
		d.targets = append(d.targets, r.target)
		d.width = len(r.target)
		added++
	}
	d.cpRNG = d.sel.RNG().State()
	return added
}

// trainResult carries one round's training outcome across the
// train/simulate overlap.
type trainResult struct {
	ens *core.Ensemble
	dur time.Duration
	err error
}

// trainAsync trains an ensemble on everything recorded so far, off the
// orchestration goroutine. The snapshot slices are append-safe: record
// never runs while training does.
func (d *Driver) trainAsync() <-chan trainResult {
	n := len(d.indices)
	inputs := d.inputs[:n:n]
	targets := d.targets[:n:n]
	cfg := d.cfg.RoundModel(n)
	done := make(chan trainResult, 1)
	go func() {
		start := time.Now() //repolint:allow determinism -- Step.TrainTime is wall-clock training telemetry; it never feeds selection or weights
		ens, err := core.TrainEnsemble(inputs, targets, cfg)
		done <- trainResult{ens: ens, dur: time.Since(start), err: err} //repolint:allow determinism -- wall-clock training telemetry; excluded from bit-identity comparisons
	}()
	return done
}

// finishRound installs a completed round: ensemble, step record,
// observer, checkpoint.
func (d *Driver) finishRound(res trainResult) error {
	d.ens = res.ens
	step := core.Step{
		Samples:   len(d.indices),
		Fraction:  float64(len(d.indices)) / float64(d.sp.Size()),
		Est:       res.ens.Estimate(),
		TrainTime: res.dur,
	}
	d.steps = append(d.steps, step)
	if d.cfg.OnStep != nil {
		d.cfg.OnStep(step)
	}
	if d.cfg.CheckpointPath != "" {
		if err := d.Checkpoint().WriteFile(d.cfg.CheckpointPath); err != nil {
			return fmt.Errorf("explore: %w", err)
		}
	}
	return nil
}
