package explore

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/space"
)

// synthEnergy is a second smooth target so acquisition has a real
// two-metric trade-off to chase.
func synthEnergy(sp *space.Space, idx int) float64 {
	c := sp.Choices(idx)
	return 0.2 + 0.05*sp.Value(c, 0) + 0.1*sp.Value(c, 1)*sp.Value(c, 2)
}

// dualOracle answers [synthTarget, synthEnergy] — an IPC-like metric to
// maximize against an energy-like metric to minimize. Thread-safe; the
// driver fans it out.
type dualOracle struct {
	sp *space.Space
}

func (o *dualOracle) Evaluate(indices []int) ([][]float64, error) {
	out := make([][]float64, len(indices))
	for i, idx := range indices {
		out[i] = []float64{synthTarget(o.sp, idx), synthEnergy(o.sp, idx)}
	}
	return out, nil
}

// acquireCfg is exploreCfg parameterized by an acquisition spec, sized
// for three rounds: one random bootstrap plus two acquisition-driven
// batches.
func acquireCfg(t *testing.T, spec string) core.ExploreConfig {
	t.Helper()
	acq, err := core.ParseAcquireSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := exploreCfg(core.SelectRandom)
	cfg.MaxSamples = 45
	cfg.Acquire = acq
	cfg.CandidatePool = 60
	return cfg
}

// acquireSpecs are the strategies the determinism suite pins: every
// acquisition function, including a constrained one.
var acquireSpecs = []string{
	"hvi:max=out0:min=out1",
	"frontier:max=out0:min=out1",
	"variance",
	"hvi:max=out0:min=out1:out0>=0.8",
}

func dualExplorerState(t *testing.T, cfg core.ExploreConfig) runState {
	t.Helper()
	sp := synthSpace()
	ex, err := core.NewExplorer(sp, &dualOracle{sp: sp}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	return runState{samples: ex.Samples(), steps: stripTimes(ex.Steps()), ens: ensembleBytes(t, ex.Ensemble())}
}

func dualDriverState(t *testing.T, cfg core.ExploreConfig, pipe Pipeline) runState {
	t.Helper()
	sp := synthSpace()
	d, err := New(sp, &dualOracle{sp: sp}, Config{ExploreConfig: cfg, Pipeline: pipe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return runState{samples: d.Samples(), steps: stripTimes(d.Steps()), ens: ensembleBytes(t, d.Ensemble())}
}

// TestDriverMatchesExplorerUnderAcquisition is the acquisition
// determinism guarantee, mirroring TestDriverMatchesSequentialExplorer:
// for every strategy and every worker count, the pipelined driver
// reproduces the sequential reference loop's exact sample order, step
// history and final ensemble weights.
func TestDriverMatchesExplorerUnderAcquisition(t *testing.T) {
	for _, spec := range acquireSpecs {
		cfg := acquireCfg(t, spec)
		want := dualExplorerState(t, cfg)
		for label, pipe := range map[string]Pipeline{
			"workers=1":  {Workers: -1},
			"workers=4":  {Workers: 4},
			"workers=16": {Workers: 16},
		} {
			requireSameRun(t, spec+" "+label, dualDriverState(t, cfg, pipe), want)
		}
	}
}

// TestKillResumeAcquisitionBitIdentical kills an acquisition-driven run
// after its first completed round and resumes from the checkpoint: the
// acquisition configuration rides in the checkpoint, so the continued
// run must replay the remaining acquisition rounds bit-identically —
// for every strategy.
func TestKillResumeAcquisitionBitIdentical(t *testing.T) {
	for _, spec := range acquireSpecs {
		cfg := acquireCfg(t, spec)
		want := dualDriverState(t, cfg, Pipeline{Workers: 2})

		path := filepath.Join(t.TempDir(), "run.checkpoint")
		sp := synthSpace()
		ctx, cancel := context.WithCancel(context.Background())
		pipe := Pipeline{Workers: 2, CheckpointPath: path}
		rounds := 0
		pipe.OnStep = func(core.Step) {
			rounds++
			if rounds == 1 {
				cancel() // "kill" before any acquisition-driven round
			}
		}
		d, err := New(sp, &dualOracle{sp: sp}, Config{ExploreConfig: cfg, Pipeline: pipe})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: killed run returned %v, want context.Canceled", spec, err)
		}

		resumed, err := ResumeFile(path, &dualOracle{sp: synthSpace()}, Pipeline{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		// The checkpoint must carry the acquisition configuration
		// itself; a resume that fell back to random selection would
		// still "run", just wrongly.
		if got := resumed.Checkpoint().Config.Acquire; got == nil || got.Spec() != spec {
			t.Fatalf("%s: checkpoint lost the acquisition config (got %+v)", spec, got)
		}
		if _, err := resumed.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		got := runState{samples: resumed.Samples(), steps: stripTimes(resumed.Steps()), ens: ensembleBytes(t, resumed.Ensemble())}
		requireSameRun(t, spec+" kill/resume", got, want)
	}
}

// TestAcquisitionDisablesSpeculation: acquisition needs round N's
// ensemble to select round N+1, so the driver must not speculatively
// simulate ahead — bounded oracle work proves the lockstep.
func TestAcquisitionDisablesSpeculation(t *testing.T) {
	cfg := acquireCfg(t, "hvi:max=out0:min=out1")
	cfg.TargetMeanErr = 1e9 // met after the first round
	sp := synthSpace()
	oracle := &synthOracle{sp: sp}
	d, err := New(sp, oracle, Config{ExploreConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := oracle.evaluations(); got != cfg.BatchSize {
		t.Fatalf("acquisition run simulated %d points before stopping, want exactly one %d-point batch",
			got, cfg.BatchSize)
	}
}
