package bundle

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/space"
	"repro/internal/stats"
)

// testSpace mirrors the synthetic space of the core tests: mixed
// parameter kinds, including a nominal axis (one-hot) and a dependent
// axis, so the serialization covers every encoding shape.
func testSpace() *space.Space {
	return space.New("synth", []space.Param{
		{Name: "a", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8}},
		{Name: "b", Kind: space.Cardinal, Values: []float64{1, 2, 3, 4, 5}},
		{Name: "mode", Kind: space.Nominal, Levels: []string{"x", "y"}},
		{Name: "dep", Kind: space.Cardinal, DependsOn: "a",
			Table: [][]float64{{1, 2}, {2, 4}, {4, 8}, {8, 16}}},
	})
}

func testTarget(sp *space.Space, idx int) float64 {
	c := sp.Choices(idx)
	v := 0.4 + 0.3*math.Log2(sp.Value(c, 0)) + 0.1*sp.Value(c, 1) + 0.05*sp.Value(c, 3)
	if sp.LevelName(c, 2) == "y" {
		v *= 1.25
	}
	return v
}

func trainedBundle(t *testing.T) (*Bundle, []float64, int) {
	t.Helper()
	sp := testSpace()
	enc := encoding.NewEncoder(sp)
	rng := stats.NewRNG(17)
	train := sp.Sample(rng, 50)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{testTarget(sp, idx)}
	}
	cfg := core.DefaultModelConfig()
	cfg.Train.MaxEpochs = 60
	cfg.Train.Patience = 15
	ens, err := core.TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(sp, ens, Meta{Study: "synth", App: "unit", Metric: "IPC", Model: cfg})
	if err != nil {
		t.Fatal(err)
	}
	// Encoded probe matrix over part of the space.
	rows := 200
	if rows > sp.Size() {
		rows = sp.Size()
	}
	xs := make([]float64, rows*enc.Width())
	for i := 0; i < rows; i++ {
		enc.EncodeIndex(i, xs[i*enc.Width():(i+1)*enc.Width()])
	}
	return b, xs, rows
}

// TestBundleRoundTripBitIdentical is the acceptance property: a
// reloaded bundle must predict bit-for-bit what the in-memory model
// predicts, batch path included.
func TestBundleRoundTripBitIdentical(t *testing.T) {
	b, xs, rows := trainedBundle(t)
	path := filepath.Join(t.TempDir(), "synth.bundle")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Space.Name != b.Space.Name || loaded.Space.Size() != b.Space.Size() {
		t.Fatalf("space not preserved: %q/%d vs %q/%d",
			loaded.Space.Name, loaded.Space.Size(), b.Space.Name, b.Space.Size())
	}
	if loaded.Encoder.Width() != b.Encoder.Width() {
		t.Fatalf("encoder width %d, want %d", loaded.Encoder.Width(), b.Encoder.Width())
	}
	if loaded.Meta.Study != "synth" || loaded.Meta.App != "unit" || loaded.Meta.Metric != "IPC" {
		t.Fatalf("metadata not preserved: %+v", loaded.Meta)
	}
	if loaded.Meta.Model.Folds != b.Meta.Model.Folds || loaded.Meta.Model.LearningRate != b.Meta.Model.LearningRate {
		t.Fatalf("model provenance not preserved: %+v", loaded.Meta.Model)
	}
	if loaded.Ensemble.Estimate() != b.Ensemble.Estimate() {
		t.Fatal("CV estimate not preserved")
	}
	want := b.Ensemble.PredictBatch(xs, rows, nil)
	got := loaded.Ensemble.PredictBatch(xs, rows, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: reloaded model predicts %v, original %v", i, got[i], want[i])
		}
	}
	// Per-point parity on a few rows for good measure.
	w := b.Encoder.Width()
	for i := 0; i < 5; i++ {
		x := xs[i*w : (i+1)*w]
		if loaded.Ensemble.Predict(x) != b.Ensemble.Predict(x) {
			t.Fatalf("per-point prediction diverged on row %d", i)
		}
	}
}

func TestBundleNewRejectsWidthMismatch(t *testing.T) {
	b, _, _ := trainedBundle(t)
	other := space.New("other", []space.Param{
		{Name: "only", Kind: space.Cardinal, Values: []float64{1, 2}},
	})
	if _, err := New(other, b.Ensemble, Meta{}); err == nil {
		t.Fatal("New accepted an ensemble trained on a different encoding width")
	}
}

func TestBundleLoadRejectsCorruption(t *testing.T) {
	b, _, _ := trainedBundle(t)
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"garbage":        "not json at all",
		"wrong version":  strings.Replace(good, `"version":1`, `"version":99`, 1),
		"empty space":    strings.Replace(good, `"params":[`, `"params":null,"unused":[`, 1),
		"encoder width":  strings.Replace(good, `"width":5`, `"width":8`, 1),
		"no ensemble":    strings.Replace(good, `"ensemble":{`, `"ensemble":null,"unused2":{`, 1),
		"member inputs":  strings.Replace(good, `"Inputs":5`, `"Inputs":4`, -1),
		"dropped scaler": strings.Replace(good, `"outputs":1`, `"outputs":2`, -1),
	}
	for name, doc := range cases {
		if doc == good {
			t.Fatalf("case %q did not alter the document", name)
		}
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("Load accepted %s", name)
		}
	}
}

// TestCompatibleWithCatchesInPlaceDrift pins the reason CompatibleWith
// compares full parameter definitions: a drifted study that keeps every
// name, cardinality and min/max (so both the name+size check and the
// encoder Spec still match) must be rejected, because mid-range level
// changes shift encoded inputs without changing either.
func TestCompatibleWithCatchesInPlaceDrift(t *testing.T) {
	b, _, _ := trainedBundle(t)
	if err := b.CompatibleWith(testSpace()); err != nil {
		t.Fatalf("bundle incompatible with the space it was built from: %v", err)
	}
	drifted := space.New("synth", []space.Param{
		{Name: "a", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8}},
		{Name: "b", Kind: space.Cardinal, Values: []float64{1, 2, 3.5, 4, 5}}, // 3 → 3.5, same card/min/max
		{Name: "mode", Kind: space.Nominal, Levels: []string{"x", "y"}},
		{Name: "dep", Kind: space.Cardinal, DependsOn: "a",
			Table: [][]float64{{1, 2}, {2, 4}, {4, 8}, {8, 16}}},
	})
	if drifted.Size() != b.Space.Size() {
		t.Fatal("drifted space must keep the same size for this test to mean anything")
	}
	if err := encoding.NewEncoder(drifted).Matches(b.Encoder.Spec()); err != nil {
		t.Fatalf("drifted space must keep the same encoder spec for this test to mean anything: %v", err)
	}
	if err := b.CompatibleWith(drifted); err == nil {
		t.Fatal("CompatibleWith accepted a space whose levels drifted in place")
	}
	renamed := space.New("other", testSpace().Params)
	if err := b.CompatibleWith(renamed); err == nil {
		t.Fatal("CompatibleWith accepted a differently named space")
	}
}

func TestBundleValidators(t *testing.T) {
	b, _, _ := trainedBundle(t)
	if err := b.ValidateIndex(0); err != nil {
		t.Fatal(err)
	}
	if err := b.ValidateIndex(b.Space.Size()); err == nil {
		t.Fatal("ValidateIndex accepted an out-of-range index")
	}
	if err := b.ValidateIndex(-1); err == nil {
		t.Fatal("ValidateIndex accepted a negative index")
	}
	ok := make([]int, b.Space.NumParams())
	if err := b.ValidateChoices(ok); err != nil {
		t.Fatal(err)
	}
	if err := b.ValidateChoices(ok[:1]); err == nil {
		t.Fatal("ValidateChoices accepted a short vector")
	}
	bad := append([]int(nil), ok...)
	bad[0] = b.Space.Params[0].Card()
	if err := b.ValidateChoices(bad); err == nil {
		t.Fatal("ValidateChoices accepted an out-of-range choice")
	}
}
