// Checkpoint is the durable-exploration half of this package: where a
// Bundle persists a *finished* model, a Checkpoint persists a *running*
// exploration at a round boundary — everything the pipelined driver
// (internal/explore) needs to resume a killed run bit-identically: the
// design space and encoding, the loop configuration, the selection
// RNG's exact state, every simulated point with its oracle targets, the
// per-round history, the quarantine list, and the last trained
// ensemble.
//
// Loading is as strict as Bundle loading: the space is revalidated, the
// encoder must reproduce the stored spec, the sampled set must be
// in-range, duplicate-free and disjoint from both the exclusion and
// quarantine lists, every target vector must satisfy the oracle
// contract, and the stored ensemble must match the encoder's width. A
// checkpoint whose parts disagree is rejected rather than allowed to
// resume a silently different run.
package bundle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/space"
)

// CheckpointVersion identifies the on-disk checkpoint format.
const CheckpointVersion = 1

// QuarantinedPoint records one design point whose oracle evaluation
// failed even after retries. Quarantined points are never re-drawn by
// the run that quarantined them; keeping them in the checkpoint keeps
// the resumed selection stream and the failure report identical.
type QuarantinedPoint struct {
	Index    int    `json:"index"`
	Attempts int    `json:"attempts"` // oracle attempts spent before giving up
	Error    string `json:"error"`    // last failure, for the run report
}

// Checkpoint is a loaded (or about-to-be-saved) exploration snapshot.
type Checkpoint struct {
	Space   *space.Space
	Encoder *encoding.Encoder
	// Config is the full loop configuration, Exclude list included; a
	// resume adopts it wholesale, so a run's flags need not be repeated.
	Config core.ExploreConfig
	// RNG is the selection generator's state as of the snapshot; it is
	// what makes the resumed sample sequence bit-identical.
	RNG        [4]uint64
	Indices    []int       // simulated design points, in sampling order
	Targets    [][]float64 // oracle target vectors, aligned with Indices
	Steps      []core.Step
	Quarantine []QuarantinedPoint
	// Ensemble is the model trained at the last completed round (nil
	// before the first round completes).
	Ensemble *core.Ensemble
	Meta     Meta
}

// serializedCheckpoint is the on-disk form. The ensemble reuses its own
// versioned serialization as a nested document.
type serializedCheckpoint struct {
	Version    int                `json:"version"`
	SpaceName  string             `json:"spaceName"`
	Params     []space.Param      `json:"params"`
	Encoder    encoding.Spec      `json:"encoder"`
	Config     core.ExploreConfig `json:"config"`
	RNG        [4]uint64          `json:"rng"`
	Indices    []int              `json:"indices"`
	Targets    [][]float64        `json:"targets"`
	Steps      []core.Step        `json:"steps"`
	Quarantine []QuarantinedPoint `json:"quarantine,omitempty"`
	Meta       Meta               `json:"meta"`
	Ensemble   json.RawMessage    `json:"ensemble,omitempty"`
}

// Save writes the checkpoint to w as one JSON document.
func (c *Checkpoint) Save(w io.Writer) error {
	s := serializedCheckpoint{
		Version:    CheckpointVersion,
		SpaceName:  c.Space.Name,
		Params:     c.Space.Params,
		Encoder:    c.Encoder.Spec(),
		Config:     c.Config,
		RNG:        c.RNG,
		Indices:    c.Indices,
		Targets:    c.Targets,
		Steps:      c.Steps,
		Quarantine: c.Quarantine,
		Meta:       c.Meta,
	}
	if c.Ensemble != nil {
		var buf bytes.Buffer
		if err := c.Ensemble.Save(&buf); err != nil {
			return fmt.Errorf("bundle: checkpoint: %w", err)
		}
		s.Ensemble = json.RawMessage(buf.Bytes())
	}
	if err := json.NewEncoder(w).Encode(&s); err != nil {
		return fmt.Errorf("bundle: checkpoint save: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by Save and cross-validates
// its parts before returning it.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var s serializedCheckpoint
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("bundle: checkpoint load: %w", err)
	}
	if s.Version != CheckpointVersion {
		return nil, fmt.Errorf("bundle: checkpoint load: unsupported version %d (this build reads %d)",
			s.Version, CheckpointVersion)
	}
	sp, err := space.NewChecked(s.SpaceName, s.Params)
	if err != nil {
		return nil, fmt.Errorf("bundle: checkpoint load: invalid design space: %w", err)
	}
	enc := encoding.NewEncoder(sp)
	if err := enc.Matches(s.Encoder); err != nil {
		return nil, fmt.Errorf("bundle: checkpoint load: stored encoding does not match space %q: %w", sp.Name, err)
	}
	if err := s.Config.Validate(sp); err != nil {
		return nil, fmt.Errorf("bundle: checkpoint load: stored config: %w", err)
	}
	if s.RNG[0]|s.RNG[1]|s.RNG[2]|s.RNG[3] == 0 {
		return nil, fmt.Errorf("bundle: checkpoint load: degenerate all-zero RNG state")
	}
	if len(s.Targets) != len(s.Indices) {
		return nil, fmt.Errorf("bundle: checkpoint load: %d target vectors for %d sampled points",
			len(s.Targets), len(s.Indices))
	}
	// The sampled set, exclusion list and quarantine list must be
	// mutually disjoint and in-range: a point in two of them would make
	// the resumed selector's reservation count (and so every later
	// batch size) disagree with the original run's.
	taken := make(map[int]string, len(s.Indices)+len(s.Config.Exclude)+len(s.Quarantine))
	for _, idx := range s.Config.Exclude {
		taken[idx] = "excluded"
	}
	width := 0
	for i, idx := range s.Indices {
		if idx < 0 || idx >= sp.Size() {
			return nil, fmt.Errorf("bundle: checkpoint load: sampled point %d outside space [0,%d)", idx, sp.Size())
		}
		if prev, dup := taken[idx]; dup {
			return nil, fmt.Errorf("bundle: checkpoint load: point %d is both sampled and %s", idx, prev)
		}
		taken[idx] = "sampled"
		if err := core.CheckTarget(idx, s.Targets[i], width); err != nil {
			return nil, fmt.Errorf("bundle: checkpoint load: %w", err)
		}
		width = len(s.Targets[i])
	}
	for _, q := range s.Quarantine {
		if q.Index < 0 || q.Index >= sp.Size() {
			return nil, fmt.Errorf("bundle: checkpoint load: quarantined point %d outside space [0,%d)", q.Index, sp.Size())
		}
		if prev, dup := taken[q.Index]; dup {
			return nil, fmt.Errorf("bundle: checkpoint load: point %d is both quarantined and %s", q.Index, prev)
		}
		taken[q.Index] = "quarantined"
	}
	for i := 1; i < len(s.Steps); i++ {
		if s.Steps[i].Samples <= s.Steps[i-1].Samples {
			return nil, fmt.Errorf("bundle: checkpoint load: step history is not strictly growing at round %d", i)
		}
	}
	c := &Checkpoint{
		Space:      sp,
		Encoder:    enc,
		Config:     s.Config,
		RNG:        s.RNG,
		Indices:    s.Indices,
		Targets:    s.Targets,
		Steps:      s.Steps,
		Quarantine: s.Quarantine,
		Meta:       s.Meta,
	}
	if len(s.Ensemble) > 0 {
		ens, err := core.LoadEnsemble(bytes.NewReader(s.Ensemble))
		if err != nil {
			return nil, fmt.Errorf("bundle: checkpoint load: %w", err)
		}
		if got, want := ens.Inputs(), enc.Width(); got != want {
			return nil, fmt.Errorf("bundle: checkpoint load: ensemble expects %d inputs, space %q encodes to %d",
				got, sp.Name, want)
		}
		if width > 0 && ens.Outputs() != width {
			return nil, fmt.Errorf("bundle: checkpoint load: ensemble predicts %d metrics, targets carry %d",
				ens.Outputs(), width)
		}
		c.Ensemble = ens
	}
	if len(c.Steps) > 0 && c.Ensemble == nil {
		return nil, fmt.Errorf("bundle: checkpoint load: %d completed rounds but no ensemble document", len(c.Steps))
	}
	return c, nil
}

// WriteFile saves the checkpoint to path atomically: it writes a
// temporary file in the same directory and renames it into place, so a
// kill mid-write leaves the previous checkpoint intact — the property
// that makes kill-anywhere/resume safe.
func (c *Checkpoint) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("bundle: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := c.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("bundle: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("bundle: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("bundle: checkpoint: %w", err)
	}
	return nil
}

// CompatibleWith reports whether the checkpoint may resume under sp —
// the same strict parameter-definition match bundles require, since a
// drifted study would silently reinterpret every sampled index.
func (c *Checkpoint) CompatibleWith(sp *space.Space) error {
	return spacesMatch(c.Space, sp, "checkpoint")
}

// ReadCheckpointFile loads a checkpoint from path.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	defer f.Close()
	c, err := LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("bundle: %s: %w", path, err)
	}
	return c, nil
}
