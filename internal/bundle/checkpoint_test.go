package bundle

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/stats"
)

// fastModel keeps checkpoint fixtures quick to train.
func fastModel() core.ModelConfig {
	cfg := core.DefaultModelConfig()
	cfg.Train.MaxEpochs = 120
	cfg.Train.Patience = 25
	return cfg
}

// explorerCheckpoint runs a short sequential exploration and snapshots
// it by hand, standing in for the pipelined driver's own snapshots.
func explorerCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	sp := testSpace()
	oracle := core.OracleFunc(func(indices []int) ([][]float64, error) {
		out := make([][]float64, len(indices))
		for i, idx := range indices {
			out[i] = []float64{testTarget(sp, idx)}
		}
		return out, nil
	})
	cfg := core.ExploreConfig{
		Model:      fastModel(),
		BatchSize:  15,
		MaxSamples: 30,
		Exclude:    []int{0, 1, 2},
		Seed:       7,
	}
	ex, err := core.NewExplorer(sp, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	idxs := ex.Samples()
	targets := make([][]float64, len(idxs))
	taken := map[int]bool{0: true, 1: true, 2: true}
	for i, idx := range idxs {
		targets[i] = []float64{testTarget(sp, idx)}
		taken[idx] = true
	}
	quarantined := -1
	for idx := 0; idx < sp.Size(); idx++ {
		if !taken[idx] {
			quarantined = idx
			break
		}
	}
	return &Checkpoint{
		Space:      sp,
		Encoder:    encoding.NewEncoder(sp),
		Config:     cfg,
		RNG:        stats.NewRNG(99).State(),
		Indices:    idxs,
		Targets:    targets,
		Steps:      ex.Steps(),
		Quarantine: []QuarantinedPoint{{Index: quarantined, Attempts: 2, Error: "synthetic failure"}},
		Ensemble:   ex.Ensemble(),
		Meta:       Meta{Study: "synth", App: "none", Metric: "IPC", TraceLen: 1000},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := explorerCheckpoint(t)
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Indices, cp.Indices) {
		t.Fatal("sampled indices changed across the round trip")
	}
	if !reflect.DeepEqual(got.Targets, cp.Targets) {
		t.Fatal("targets changed across the round trip")
	}
	if got.RNG != cp.RNG {
		t.Fatal("RNG state changed across the round trip")
	}
	if !reflect.DeepEqual(got.Steps, cp.Steps) {
		t.Fatal("step history changed across the round trip")
	}
	if !reflect.DeepEqual(got.Quarantine, cp.Quarantine) {
		t.Fatal("quarantine list changed across the round trip")
	}
	if !reflect.DeepEqual(got.Config, cp.Config) {
		t.Fatal("config changed across the round trip")
	}
	if got.Meta.TraceLen != cp.Meta.TraceLen {
		t.Fatal("meta changed across the round trip")
	}
	// Ensemble weights must survive bit-identically: JSON float64
	// round-trips are exact in Go, so the serialized forms must match.
	var a, b bytes.Buffer
	if err := cp.Ensemble.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.Ensemble.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("ensemble weights changed across the round trip")
	}
}

func TestCheckpointWriteFileAtomicRoundTrip(t *testing.T) {
	cp := explorerCheckpoint(t)
	path := filepath.Join(t.TempDir(), "run.checkpoint")
	if err := cp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Indices, cp.Indices) {
		t.Fatal("file round trip changed the sampled set")
	}
	// Overwriting must go through the temp+rename path and leave a
	// loadable file.
	if err := cp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
}

// corrupt saves cp, applies f to the decoded JSON document, re-encodes
// it and tries to load the result.
func corrupt(t *testing.T, cp *Checkpoint, f func(doc map[string]any)) error {
	t.Helper()
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	f(doc)
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = LoadCheckpoint(bytes.NewReader(raw))
	return err
}

func TestCheckpointLoadRejectsCorruption(t *testing.T) {
	cp := explorerCheckpoint(t)
	cases := map[string]func(doc map[string]any){
		"future version":   func(d map[string]any) { d["version"] = CheckpointVersion + 1 },
		"zero rng":         func(d map[string]any) { d["rng"] = []int{0, 0, 0, 0} },
		"truncated target": func(d map[string]any) { d["targets"] = d["targets"].([]any)[:1] },
		"out-of-range sample": func(d map[string]any) {
			idxs := d["indices"].([]any)
			idxs[0] = float64(1 << 30)
		},
		"sampled point also excluded": func(d map[string]any) {
			idxs := d["indices"].([]any)
			idxs[0] = float64(0) // 0 is in the Exclude list
		},
		"quarantined point also sampled": func(d map[string]any) {
			q := d["quarantine"].([]any)
			q[0].(map[string]any)["index"] = d["indices"].([]any)[0]
		},
		"non-finite target": func(d map[string]any) {
			// json.Marshal rejects NaN, so splice the raw token later via
			// a numeric stand-in: an empty vector triggers the same
			// per-point contract check.
			tg := d["targets"].([]any)
			tg[0] = []any{}
		},
		"steps not growing": func(d map[string]any) {
			steps := d["steps"].([]any)
			if len(steps) < 2 {
				s0 := steps[0].(map[string]any)
				dup := map[string]any{}
				for k, v := range s0 {
					dup[k] = v
				}
				steps = append(steps, dup)
			} else {
				steps[1].(map[string]any)["Samples"] = steps[0].(map[string]any)["Samples"]
			}
			d["steps"] = steps
		},
		"rounds without ensemble": func(d map[string]any) { delete(d, "ensemble") },
		"drifted space": func(d map[string]any) {
			// One level of one axis drifts in place (64→96 style): the
			// cardinalities survive but the stored encoding spec no
			// longer matches the rebuilt encoder's ranges.
			params := d["params"].([]any)
			values := params[0].(map[string]any)["Values"].([]any)
			values[len(values)-1] = values[len(values)-1].(float64) * 16
		},
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			if err := corrupt(t, cp, f); err == nil {
				t.Fatalf("%s accepted", name)
			}
		})
	}
	if math.IsNaN(cp.Targets[0][0]) {
		t.Fatal("sanity: test fixture produced NaN targets")
	}
}
