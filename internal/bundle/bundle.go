// Package bundle persists a trained design-space model as one
// versioned artifact — the "train once, query forever" half of the
// paper's promise. A bundle couples everything a process needs to
// answer queries without retraining or resimulating: the design space
// definition, the input-encoding parameters the networks were trained
// against, the cross-validation ensemble itself, and provenance
// metadata (which study/application produced it, how many simulations
// it cost, what accuracy its own estimate claims).
//
// Loading is strict: the space is rebuilt and revalidated, the encoder
// derived from it must reproduce the stored encoding Spec exactly, and
// the ensemble's input width must match the encoder's — a bundle whose
// parts disagree is rejected rather than allowed to serve silently
// shifted predictions.
package bundle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/space"
)

// Version identifies the on-disk format.
const Version = 1

// Meta is the provenance record of a trained model.
type Meta struct {
	Study   string `json:"study,omitempty"`   // study name (memory, processor, ...)
	App     string `json:"app,omitempty"`     // application/benchmark the oracle ran
	Metric  string `json:"metric,omitempty"`  // primary target metric, e.g. "IPC"
	Samples int    `json:"samples,omitempty"` // simulations the training set cost
	// TraceLen records the per-simulation instruction count the oracle
	// ran, so a resumed exploration rebuilds the same oracle.
	TraceLen int `json:"traceLen,omitempty"`
	// Model records the hyperparameters the ensemble was trained with;
	// zero-valued when the bundle was assembled from a bare ensemble.
	Model core.ModelConfig `json:"model"`
	Note  string           `json:"note,omitempty"`
}

// Bundle is a loaded (or about-to-be-saved) model artifact.
type Bundle struct {
	Space    *space.Space
	Encoder  *encoding.Encoder
	Ensemble *core.Ensemble
	Meta     Meta
}

// serializedBundle is the on-disk form. The ensemble reuses its own
// versioned serialization as a nested document.
type serializedBundle struct {
	Version   int             `json:"version"`
	SpaceName string          `json:"spaceName"`
	Params    []space.Param   `json:"params"`
	Encoder   encoding.Spec   `json:"encoder"`
	Meta      Meta            `json:"meta"`
	Ensemble  json.RawMessage `json:"ensemble"`
}

// New assembles a bundle from a space and a trained ensemble,
// validating that the ensemble was trained on this space's encoding.
func New(sp *space.Space, ens *core.Ensemble, meta Meta) (*Bundle, error) {
	if sp == nil || ens == nil {
		return nil, fmt.Errorf("bundle: need both a space and an ensemble")
	}
	enc := encoding.NewEncoder(sp)
	if got, want := ens.Inputs(), enc.Width(); got != want {
		return nil, fmt.Errorf("bundle: ensemble expects %d inputs, space %q encodes to %d",
			got, sp.Name, want)
	}
	if meta.Samples == 0 {
		meta.Samples = ens.Estimate().Points
	}
	return &Bundle{Space: sp, Encoder: enc, Ensemble: ens, Meta: meta}, nil
}

// Save writes the bundle to w as one JSON document.
func (b *Bundle) Save(w io.Writer) error {
	var ensBuf bytes.Buffer
	if err := b.Ensemble.Save(&ensBuf); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	s := serializedBundle{
		Version:   Version,
		SpaceName: b.Space.Name,
		Params:    b.Space.Params,
		Encoder:   b.Encoder.Spec(),
		Meta:      b.Meta,
		Ensemble:  json.RawMessage(ensBuf.Bytes()),
	}
	if err := json.NewEncoder(w).Encode(&s); err != nil {
		return fmt.Errorf("bundle: save: %w", err)
	}
	return nil
}

// Load reads a bundle written by Save and cross-validates its parts
// before returning it.
func Load(r io.Reader) (*Bundle, error) {
	var s serializedBundle
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("bundle: load: %w", err)
	}
	if s.Version != Version {
		return nil, fmt.Errorf("bundle: load: unsupported version %d (this build reads %d)", s.Version, Version)
	}
	sp, err := space.NewChecked(s.SpaceName, s.Params)
	if err != nil {
		return nil, fmt.Errorf("bundle: load: invalid design space: %w", err)
	}
	enc := encoding.NewEncoder(sp)
	// The encoder the stored space induces must reproduce the encoding
	// the networks were trained against, input for input.
	if err := enc.Matches(s.Encoder); err != nil {
		return nil, fmt.Errorf("bundle: load: stored encoding does not match space %q: %w", sp.Name, err)
	}
	if len(s.Ensemble) == 0 {
		return nil, fmt.Errorf("bundle: load: no ensemble document")
	}
	ens, err := core.LoadEnsemble(bytes.NewReader(s.Ensemble))
	if err != nil {
		return nil, fmt.Errorf("bundle: load: %w", err)
	}
	if got, want := ens.Inputs(), enc.Width(); got != want {
		return nil, fmt.Errorf("bundle: load: ensemble expects %d inputs, space %q encodes to %d",
			got, sp.Name, want)
	}
	return &Bundle{Space: sp, Encoder: enc, Ensemble: ens, Meta: s.Meta}, nil
}

// WriteFile saves the bundle to path (0644, truncating).
func (b *Bundle) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	if err := b.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	return nil
}

// ReadFile loads a bundle from path.
func ReadFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	defer f.Close()
	b, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("bundle: %s: %w", path, err)
	}
	return b, nil
}

// CompatibleWith reports whether the bundle's model may be interpreted
// under sp — i.e. whether indices, choice vectors, Describe output and
// sensitivity sweeps computed against sp mean the same thing they meant
// at training time. It requires the parameter definitions to match
// exactly: a name+size comparison alone would accept a compiled-in
// study whose levels drifted in place (say one cache-size setting
// 64→96), which keeps the encoder's min/max ranges and still shifts
// every encoded input.
func (b *Bundle) CompatibleWith(sp *space.Space) error {
	return spacesMatch(b.Space, sp, "bundle")
}

// spacesMatch verifies a persisted artifact's recorded space against a
// compiled-in one, parameter definition for parameter definition.
func spacesMatch(recorded, sp *space.Space, what string) error {
	if sp.Name != recorded.Name || sp.Size() != recorded.Size() {
		return fmt.Errorf("%s models space %q (%d points), not %q (%d points)",
			what, recorded.Name, recorded.Size(), sp.Name, sp.Size())
	}
	if !reflect.DeepEqual(sp.Params, recorded.Params) {
		return fmt.Errorf("space %q's parameter definitions differ from the %s's record (the study drifted since training)", sp.Name, what)
	}
	return nil
}

// ValidateIndex reports whether a flat design-point index is inside the
// bundle's space.
func (b *Bundle) ValidateIndex(idx int) error {
	if idx < 0 || idx >= b.Space.Size() {
		return fmt.Errorf("bundle: point %d outside space %q [0,%d)", idx, b.Space.Name, b.Space.Size())
	}
	return nil
}

// ValidateChoices reports whether a choice vector selects a legal
// setting on every axis of the bundle's space.
func (b *Bundle) ValidateChoices(choices []int) error {
	if len(choices) != b.Space.NumParams() {
		return fmt.Errorf("bundle: choice vector has %d entries, space %q has %d parameters",
			len(choices), b.Space.Name, b.Space.NumParams())
	}
	for i, c := range choices {
		if card := b.Space.Params[i].Card(); c < 0 || c >= card {
			return fmt.Errorf("bundle: choice %d out of range [0,%d) for parameter %q",
				c, card, b.Space.Params[i].Name)
		}
	}
	return nil
}
