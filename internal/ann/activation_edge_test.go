package ann

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

var allActivations = []Activation{Sigmoid, Tanh, Linear, ReLU}

// edgeInputs are the values most likely to expose a divergence between
// the scalar and batched exact paths: non-finite, signed zero,
// denormal, and range-extreme inputs.
var edgeInputs = []float64{
	math.NaN(),
	math.Inf(1), math.Inf(-1),
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	0, math.Copysign(0, -1),
	math.MaxFloat64, -math.MaxFloat64,
	1e308, -1e308, 710, -745, 1, -1,
}

// TestApplyBatchEdgeParity pins bit-level parity of apply vs applyBatch
// on every edge input for all four activations — the exact tier's
// per-point/batched equivalence must hold even off the happy path.
func TestApplyBatchEdgeParity(t *testing.T) {
	for _, act := range allActivations {
		batch := append([]float64(nil), edgeInputs...)
		act.applyBatch(batch)
		for i, x := range edgeInputs {
			want := act.apply(x)
			if math.Float64bits(batch[i]) != math.Float64bits(want) {
				t.Errorf("%s: applyBatch(%g) = %g (bits %x), apply = %g (bits %x)",
					act, x, batch[i], math.Float64bits(batch[i]), want, math.Float64bits(want))
			}
		}
	}
}

// TestApplyBatchFastEdgeDeterminism pins the fast tier's documented
// edge behaviour: non-finite inputs clamp to the activation's
// saturation values (never a wild index or panic), and the fast batch
// path is bit-identical to the scalar mathx functions on every edge
// input.
func TestApplyBatchFastEdgeDeterminism(t *testing.T) {
	for _, act := range allActivations {
		batch := append([]float64(nil), edgeInputs...)
		act.applyBatchFast(batch)
		for i, x := range edgeInputs {
			var want float64
			switch act {
			case Sigmoid:
				want = mathx.Sigmoid(x)
			case Tanh:
				want = mathx.Tanh(x)
			case ReLU:
				want = x
				if x < 0 {
					want = 0
				}
			default:
				want = x
			}
			if math.Float64bits(batch[i]) != math.Float64bits(want) {
				t.Errorf("%s fast: batch(%g) = %g, scalar = %g", act, x, batch[i], want)
			}
			if (act == Sigmoid || act == Tanh) && (math.IsNaN(batch[i]) || math.IsInf(batch[i], 0)) {
				t.Errorf("%s fast: input %g produced non-finite %g; fast tier must saturate", act, x, batch[i])
			}
		}

		batch32 := make([]float32, len(edgeInputs))
		for i, x := range edgeInputs {
			batch32[i] = float32(x)
		}
		act.applyBatchFast32(batch32)
		for i, x := range edgeInputs {
			x32 := float32(x)
			var want float32
			switch act {
			case Sigmoid:
				want = mathx.Sigmoid32(x32)
			case Tanh:
				want = mathx.Tanh32(x32)
			case ReLU:
				want = x32
				if x32 < 0 {
					want = 0
				}
			default:
				want = x32
			}
			if math.Float32bits(batch32[i]) != math.Float32bits(want) {
				t.Errorf("%s fast32: batch(%g) = %g, scalar = %g", act, x, batch32[i], want)
			}
		}
	}
}

// FuzzFastActivations fuzzes the fast activation tier over (and
// beyond) the table reduction range, asserting the documented error
// bound against the exact activation for every finite input and
// deterministic saturation for the rest.
func FuzzFastActivations(f *testing.F) {
	for _, x := range []float64{0, 1, -1, 15.999, -15.999, 16.001, -16.001, 7.999, -8.001, 1e-300, math.Inf(1), math.NaN()} {
		f.Add(x)
	}
	f.Fuzz(func(t *testing.T, x float64) {
		sig := mathx.Sigmoid(x)
		tnh := mathx.Tanh(x)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			// Saturation only; exact parity is not defined here.
			if math.IsNaN(sig) || math.IsNaN(tnh) {
				t.Fatalf("fast activations must not propagate NaN: Sigmoid(%g)=%g Tanh(%g)=%g", x, sig, x, tnh)
			}
			return
		}
		if d := math.Abs(sig - Sigmoid.apply(x)); d > 1e-6 {
			t.Errorf("Sigmoid(%g): fast %g vs exact %g, err %.3g > 1e-6", x, sig, Sigmoid.apply(x), d)
		}
		if d := math.Abs(tnh - Tanh.apply(x)); d > 1e-6 {
			t.Errorf("Tanh(%g): fast %g vs exact %g, err %.3g > 1e-6", x, tnh, Tanh.apply(x), d)
		}
		x32 := float32(x)
		if d := math.Abs(float64(mathx.Sigmoid32(x32)) - Sigmoid.apply(float64(x32))); d > 2e-6 {
			t.Errorf("Sigmoid32(%g): err %.3g > 2e-6", x, d)
		}
		if d := math.Abs(float64(mathx.Tanh32(x32)) - Tanh.apply(float64(x32))); d > 2e-6 {
			t.Errorf("Tanh32(%g): err %.3g > 2e-6", x, d)
		}
	})
}
