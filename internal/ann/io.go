package ann

import (
	"encoding/json"
	"fmt"
	"io"
)

// serialized is the on-disk form of a network: its configuration and
// the flat weight slices of each layer, JSON-encoded. The format is
// versioned so later changes stay loadable.
type serialized struct {
	Version int         `json:"version"`
	Config  Config      `json:"config"`
	Weights [][]float64 `json:"weights"`
}

const serialVersion = 1

// Save writes the network (architecture and weights) to w as JSON.
// Momentum state is deliberately not persisted: a loaded model predicts
// identically but resumes training without stale update directions.
func (n *Network) Save(w io.Writer) error {
	s := serialized{
		Version: serialVersion,
		Config:  n.cfg,
		Weights: n.Snapshot(),
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&s); err != nil {
		return fmt.Errorf("ann: save: %w", err)
	}
	return nil
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	var s serialized
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("ann: load: %w", err)
	}
	if s.Version != serialVersion {
		return nil, fmt.Errorf("ann: load: unsupported version %d", s.Version)
	}
	if err := s.Config.Validate(); err != nil {
		return nil, fmt.Errorf("ann: load: %w", err)
	}
	n := New(s.Config)
	if len(s.Weights) != len(n.layers) {
		return nil, fmt.Errorf("ann: load: %d weight layers for %d-layer network",
			len(s.Weights), len(n.layers))
	}
	for i, l := range n.layers {
		if len(s.Weights[i]) != len(l.w) {
			return nil, fmt.Errorf("ann: load: layer %d has %d weights, network expects %d",
				i, len(s.Weights[i]), len(l.w))
		}
	}
	n.Restore(s.Weights)
	return n, nil
}
