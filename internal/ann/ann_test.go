package ann

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func smallConfig(in, out int) Config {
	return Config{
		Inputs: in, Hidden: []int{8}, Outputs: out,
		HiddenAct: Sigmoid, OutputAct: Linear,
		LearningRate: 0.1, Momentum: 0.5, InitRange: 0.1, Seed: 7,
	}
}

func TestConfigValidation(t *testing.T) {
	// Each rejection must name the offending field (the repo-wide
	// errfield convention), so a misconfiguration points at the knob
	// to fix.
	bad := []struct {
		cfg  Config
		name string
	}{
		{Config{Inputs: 0, Hidden: []int{4}, Outputs: 1, LearningRate: 0.1}, "Inputs"},
		{Config{Inputs: 2, Hidden: []int{0}, Outputs: 1, LearningRate: 0.1}, "hidden layer"},
		{Config{Inputs: 2, Hidden: []int{4}, Outputs: 0, LearningRate: 0.1}, "Outputs"},
		{Config{Inputs: 2, Hidden: []int{4}, Outputs: 1, LearningRate: 0}, "learning rate"},
		{Config{Inputs: 2, Hidden: []int{4}, Outputs: 1, LearningRate: 0.1, Momentum: 1}, "momentum"},
	}
	for i, tc := range bad {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("config %d accepted: %+v", i, tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.name) {
			t.Errorf("config %d rejection %q does not name %q", i, err, tc.name)
		}
	}
	if err := smallConfig(2, 1).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig(10, 1)
	if len(cfg.Hidden) != 1 || cfg.Hidden[0] != 16 {
		t.Fatal("paper config must have one hidden layer of 16 units")
	}
	if cfg.LearningRate != 0.001 || cfg.Momentum != 0.5 || cfg.InitRange != 0.01 {
		t.Fatal("paper hyperparameters wrong")
	}
	if cfg.HiddenAct != Sigmoid {
		t.Fatal("paper hidden activation must be sigmoid")
	}
}

func TestForwardDeterministic(t *testing.T) {
	n := New(smallConfig(3, 2))
	x := []float64{0.1, 0.5, 0.9}
	a := n.Predict(x)
	b := n.Predict(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forward pass not deterministic")
		}
	}
}

func TestInitialWeightsSmall(t *testing.T) {
	cfg := smallConfig(4, 1)
	cfg.InitRange = 0.01
	n := New(cfg)
	// With near-zero weights the network starts as (almost) a constant.
	out1 := n.Predict([]float64{0, 0, 0, 0})[0]
	out2 := n.Predict([]float64{1, 1, 1, 1})[0]
	if math.Abs(out1-out2) > 0.05 {
		t.Fatalf("freshly initialized net is already nonlinear: %v vs %v", out1, out2)
	}
}

// TestGradientCheck verifies backprop against numerical differentiation
// on every weight of a small network.
func TestGradientCheck(t *testing.T) {
	cfg := Config{
		Inputs: 3, Hidden: []int{4}, Outputs: 2,
		HiddenAct: Sigmoid, OutputAct: Linear,
		LearningRate: 1e-6, // tiny so Train barely moves the weights
		Momentum:     0, InitRange: 0.5, Seed: 13,
	}
	n := New(cfg)
	x := []float64{0.3, -0.2, 0.8}
	target := []float64{0.25, -0.5}

	loss := func() float64 {
		out := n.Forward(x)
		var se float64
		for j := range out {
			e := out[j] - target[j]
			se += e * e
		}
		return se / 2
	}

	const eps = 1e-6
	for li, l := range n.layers {
		for wi := range l.w {
			orig := l.w[wi]
			l.w[wi] = orig + eps
			up := loss()
			l.w[wi] = orig - eps
			down := loss()
			l.w[wi] = orig
			numeric := (up - down) / (2 * eps)

			// Analytic gradient: run Train with tiny lr and recover
			// dw = -lr*grad from the applied update.
			snap := n.Snapshot()
			n.Train(x, target, 1e-6)
			analytic := -(n.layers[li].w[wi] - snap[li][wi]) / 1e-6
			n.Restore(snap)

			if math.Abs(numeric-analytic) > 1e-3*(1+math.Abs(numeric)) {
				t.Fatalf("layer %d weight %d: numeric %.6f vs backprop %.6f",
					li, wi, numeric, analytic)
			}
		}
	}
}

func TestLearnsLinearFunction(t *testing.T) {
	n := New(smallConfig(2, 1))
	rng := stats.NewRNG(5)
	for epoch := 0; epoch < 3000; epoch++ {
		a, b := rng.Float64(), rng.Float64()
		n.Train([]float64{a, b}, []float64{0.3*a + 0.5*b}, 0.1)
	}
	var worst float64
	for i := 0; i < 50; i++ {
		a, b := rng.Float64(), rng.Float64()
		got := n.Forward([]float64{a, b})[0]
		want := 0.3*a + 0.5*b
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Fatalf("linear fit worst error %v", worst)
	}
}

func TestLearnsXOR(t *testing.T) {
	cfg := Config{
		Inputs: 2, Hidden: []int{8}, Outputs: 1,
		HiddenAct: Sigmoid, OutputAct: Sigmoid,
		LearningRate: 0.5, Momentum: 0.9, InitRange: 0.5, Seed: 3,
	}
	n := New(cfg)
	data := [][3]float64{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	rng := stats.NewRNG(9)
	for epoch := 0; epoch < 20000; epoch++ {
		d := data[rng.Intn(4)]
		n.Train([]float64{d[0], d[1]}, []float64{d[2]}, 0.5)
	}
	for _, d := range data {
		got := n.Forward([]float64{d[0], d[1]})[0]
		if math.Abs(got-d[2]) > 0.25 {
			t.Fatalf("XOR(%v,%v) = %v, want %v", d[0], d[1], got, d[2])
		}
	}
}

func TestMomentumAcceleratesConvergence(t *testing.T) {
	// Train identical nets on the same stream, with and without
	// momentum; momentum should reach lower error on this smooth task.
	train := func(mom float64) float64 {
		cfg := smallConfig(1, 1)
		cfg.Momentum = mom
		cfg.Seed = 21
		n := New(cfg)
		rng := stats.NewRNG(22)
		for i := 0; i < 1500; i++ {
			x := rng.Float64()
			n.Train([]float64{x}, []float64{0.8 * x}, 0.05)
		}
		var se float64
		for i := 0; i < 100; i++ {
			x := float64(i) / 100
			e := n.Forward([]float64{x})[0] - 0.8*x
			se += e * e
		}
		return se
	}
	with := train(0.9)
	without := train(0)
	if with > without*1.5 {
		t.Fatalf("momentum hurt badly: %v vs %v", with, without)
	}
}

func TestSnapshotRestore(t *testing.T) {
	n := New(smallConfig(2, 1))
	x := []float64{0.2, 0.7}
	before := n.Predict(x)[0]
	snap := n.Snapshot()
	for i := 0; i < 100; i++ {
		n.Train(x, []float64{1}, 0.5)
	}
	if n.Predict(x)[0] == before {
		t.Fatal("training had no effect")
	}
	n.Restore(snap)
	if got := n.Predict(x)[0]; got != before {
		t.Fatalf("restore did not recover weights: %v vs %v", got, before)
	}
}

func TestCloneIndependent(t *testing.T) {
	n := New(smallConfig(2, 1))
	c := n.Clone()
	x := []float64{0.4, 0.6}
	if n.Predict(x)[0] != c.Predict(x)[0] {
		t.Fatal("clone predicts differently")
	}
	for i := 0; i < 50; i++ {
		c.Train(x, []float64{1}, 0.5)
	}
	if n.Predict(x)[0] == c.Predict(x)[0] {
		t.Fatal("training the clone affected the original")
	}
}

func TestNumWeights(t *testing.T) {
	n := New(Config{Inputs: 3, Hidden: []int{4, 5}, Outputs: 2,
		LearningRate: 0.1, InitRange: 0.1})
	// (3+1)*4 + (4+1)*5 + (5+1)*2 = 16 + 25 + 12 = 53
	if got := n.NumWeights(); got != 53 {
		t.Fatalf("NumWeights = %d, want 53", got)
	}
}

func TestActivationDerivatives(t *testing.T) {
	check := func(raw float64) bool {
		x := math.Mod(raw, 4)
		if math.IsNaN(x) {
			return true
		}
		const eps = 1e-6
		for _, a := range []Activation{Sigmoid, Tanh, Linear, ReLU} {
			if a == ReLU && math.Abs(x) < 1e-3 {
				continue // kink
			}
			y := a.apply(x)
			numeric := (a.apply(x+eps) - a.apply(x-eps)) / (2 * eps)
			analytic := a.derivFromOutput(y)
			if math.Abs(numeric-analytic) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForwardPanicsOnWrongInputLen(t *testing.T) {
	n := New(smallConfig(3, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input length did not panic")
		}
	}()
	n.Forward([]float64{1, 2})
}

func TestTrainPanicsOnWrongTargetLen(t *testing.T) {
	n := New(smallConfig(2, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong target length did not panic")
		}
	}()
	n.Train([]float64{1, 2}, []float64{1, 2}, 0.1)
}

func TestMultiOutput(t *testing.T) {
	n := New(smallConfig(2, 3))
	out := n.Predict([]float64{0.5, 0.5})
	if len(out) != 3 {
		t.Fatalf("multi-output net returned %d values", len(out))
	}
	rng := stats.NewRNG(33)
	for i := 0; i < 4000; i++ {
		a, b := rng.Float64(), rng.Float64()
		n.Train([]float64{a, b}, []float64{a, b, (a + b) / 2}, 0.1)
	}
	a, b := 0.3, 0.9
	got := n.Forward([]float64{a, b})
	for i, want := range []float64{a, b, (a + b) / 2} {
		if math.Abs(got[i]-want) > 0.08 {
			t.Fatalf("output %d = %v, want ≈%v", i, got[i], want)
		}
	}
}
