// Package ann implements the fully connected feed-forward artificial
// neural networks at the heart of the paper's predictive models
// (Chapter 3): sigmoid hidden units, gradient-descent training via
// backpropagation with momentum (Equations 3.1/3.2), small uniform
// weight initialization, presentation-frequency weighting (so the nets
// optimize percentage rather than absolute error, §3.3), and early
// stopping on a held-aside set.
//
// All weights of a network live in one contiguous []float64 (layer
// after layer, row-major within a layer), and the batched entry points
// in batch.go — ForwardBatch, TrainBatch and the Scratch buffers they
// reuse — run many examples through that flat layout at once. This is
// the compute core the rest of the repository leans on: the ensemble's
// candidate-pool scoring and full-space sweeps go through ForwardBatch
// rather than per-point calls.
//
// The package is self-contained and generic over input/output
// dimensions; the design-space-specific encoding and the
// cross-validation ensembling live in internal/encoding and
// internal/core respectively.
package ann

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Activation selects a unit nonlinearity.
type Activation uint8

// Supported activations. The paper's hidden units are sigmoid
// (Figure 3.2); the output unit is linear by default here so the
// regression range is unbounded after denormalization, with Sigmoid
// available for a paper-exact configuration.
const (
	Sigmoid Activation = iota
	Tanh
	Linear
	ReLU
)

// String names the activation.
func (a Activation) String() string {
	switch a {
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	}
	return fmt.Sprintf("activation(%d)", uint8(a))
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	default:
		return x
	}
}

// applyBatch applies the activation to ys in place. Hoisting the
// activation switch out of the unit loop matters on the batched hot
// path; the per-element work is otherwise identical to apply.
func (a Activation) applyBatch(ys []float64) {
	switch a {
	case Sigmoid:
		for i, y := range ys {
			ys[i] = 1 / (1 + math.Exp(-y))
		}
	case Tanh:
		for i, y := range ys {
			ys[i] = math.Tanh(y)
		}
	case ReLU:
		for i, y := range ys {
			if y < 0 {
				ys[i] = 0
			}
		}
	}
}

// derivFromOutput returns dy/dx expressed in terms of the activation
// output y (all supported activations admit this form, which avoids
// recomputing the transcendental).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	default:
		return 1
	}
}

// Config describes a network architecture and its training
// hyperparameters.
type Config struct {
	Inputs  int
	Hidden  []int // hidden-layer sizes, e.g. {16}
	Outputs int

	HiddenAct Activation
	OutputAct Activation

	LearningRate float64 // η in Equation 3.1
	Momentum     float64 // α in Equation 3.2
	InitRange    float64 // weights start uniform on [-InitRange, +InitRange]
	Seed         uint64

	// Kernel selects the default ForwardBatch tier (see KernelMode).
	// The zero value is KernelExact, so existing configs, checkpoints
	// and parity gates are untouched. Training ignores this and always
	// runs exact.
	Kernel KernelMode
}

// PaperConfig returns the exact hyperparameters of §3.1: one hidden
// layer of 16 sigmoid units, learning rate 0.001, momentum 0.5, and
// initial weights uniform on [-0.01, +0.01].
func PaperConfig(inputs, outputs int) Config {
	return Config{
		Inputs:       inputs,
		Hidden:       []int{16},
		Outputs:      outputs,
		HiddenAct:    Sigmoid,
		OutputAct:    Linear,
		LearningRate: 0.001,
		Momentum:     0.5,
		InitRange:    0.01,
	}
}

// Validate reports structural problems with the configuration.
func (c Config) Validate() error {
	if c.Inputs <= 0 || c.Outputs <= 0 {
		return fmt.Errorf("ann: Config.Inputs and Config.Outputs must both be positive, got %d/%d", c.Inputs, c.Outputs)
	}
	for i, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("ann: hidden layer %d has non-positive size %d", i, h)
		}
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("ann: learning rate must be positive, got %g", c.LearningRate)
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		return fmt.Errorf("ann: momentum must be in [0,1), got %g", c.Momentum)
	}
	return nil
}

// layer describes one fully connected layer. Its weight and momentum
// slices are views into the network's single contiguous buffers, stored
// row-major: w[j*(in+1)+i] is the weight from input i to unit j, with
// the bias at index in (a constant-1 input, as in Figure 3.2).
type layer struct {
	in, out int
	off     int       // offset of this layer's weights in the flat buffer
	w       []float64 // view into Network.w
	dwPrev  []float64 // view into Network.dwPrev (momentum term)
	act     Activation

	// Per-example forward/backward scratch (the batched paths use a
	// caller-provided Scratch instead, so they can run concurrently).
	output []float64
	delta  []float64
}

// Network is a feed-forward fully connected neural network. All
// trainable weights live in one flat buffer so snapshots, clones and
// the batched kernels touch a single contiguous allocation.
type Network struct {
	cfg    Config
	w      []float64 // every layer's weights, back to back
	dwPrev []float64 // previous updates, aligned with w
	layers []*layer
}

// New constructs a network with freshly initialized weights. It panics
// on an invalid configuration (architectures are static study
// descriptions; failing fast is the useful behaviour).
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := stats.NewRNG(cfg.Seed ^ 0xA11CE5)
	n := &Network{cfg: cfg}

	dims := make([][2]int, 0, len(cfg.Hidden)+1)
	prev := cfg.Inputs
	for _, h := range cfg.Hidden {
		dims = append(dims, [2]int{prev, h})
		prev = h
	}
	dims = append(dims, [2]int{prev, cfg.Outputs})

	total := 0
	for _, d := range dims {
		total += d[1] * (d[0] + 1)
	}
	n.w = make([]float64, total)
	n.dwPrev = make([]float64, total)

	off := 0
	for i, d := range dims {
		in, out := d[0], d[1]
		size := out * (in + 1)
		act := cfg.HiddenAct
		if i == len(dims)-1 {
			act = cfg.OutputAct
		}
		l := &layer{
			in:     in,
			out:    out,
			off:    off,
			w:      n.w[off : off+size : off+size],
			dwPrev: n.dwPrev[off : off+size : off+size],
			act:    act,
			output: make([]float64, out),
			delta:  make([]float64, out),
		}
		for j := range l.w {
			l.w[j] = rng.Range(-cfg.InitRange, cfg.InitRange)
		}
		n.layers = append(n.layers, l)
		off += size
	}
	return n
}

// Config returns the configuration the network was built from.
func (n *Network) Config() Config { return n.cfg }

// NumWeights returns the total number of trainable weights (including
// biases).
func (n *Network) NumWeights() int { return len(n.w) }

func (l *layer) forward(x []float64) []float64 {
	stride := l.in + 1
	for j := 0; j < l.out; j++ {
		row := l.w[j*stride : j*stride+stride]
		sum := row[l.in] // bias
		for i, xi := range x {
			sum += row[i] * xi
		}
		l.output[j] = l.act.apply(sum)
	}
	return l.output
}

// Forward runs one example through the network and returns the output
// activations. The returned slice is scratch owned by the network and
// is overwritten by the next call; copy it if it must survive. Because
// it writes the network-owned per-example buffers it is NOT safe for
// concurrent use on a shared network — concurrent callers must go
// through ForwardBatch with private Scratches, which is also
// substantially faster for scoring many points.
func (n *Network) Forward(x []float64) []float64 {
	if len(x) != n.cfg.Inputs {
		panic(fmt.Sprintf("ann: got %d inputs, network has %d", len(x), n.cfg.Inputs))
	}
	h := x
	for _, l := range n.layers {
		h = l.forward(h)
	}
	return h
}

// Predict returns a freshly allocated copy of the network output for x.
func (n *Network) Predict(x []float64) []float64 {
	out := n.Forward(x)
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// Train performs one stochastic gradient-descent step on a single
// example with the given learning rate, backpropagating the squared
// error between the network output and target (Equations 3.1 and 3.2).
// It returns the example's squared error before the update.
func (n *Network) Train(x, target []float64, lr float64) float64 {
	if len(target) != n.cfg.Outputs {
		panic(fmt.Sprintf("ann: got %d targets, network has %d outputs", len(target), n.cfg.Outputs))
	}
	out := n.Forward(x)

	// Output-layer deltas: δ = (o - t) · f'(o).
	last := n.layers[len(n.layers)-1]
	var se float64
	for j := 0; j < last.out; j++ {
		e := out[j] - target[j]
		se += e * e
		last.delta[j] = e * last.act.derivFromOutput(out[j])
	}

	// Hidden-layer deltas, back to front.
	for li := len(n.layers) - 2; li >= 0; li-- {
		l, next := n.layers[li], n.layers[li+1]
		stride := next.in + 1
		for j := 0; j < l.out; j++ {
			var sum float64
			for k := 0; k < next.out; k++ {
				sum += next.w[k*stride+j] * next.delta[k]
			}
			l.delta[j] = sum * l.act.derivFromOutput(l.output[j])
		}
	}

	// Weight updates with momentum: Δw = -η ∂E/∂w + α Δw_prev.
	mom := n.cfg.Momentum
	input := x
	for _, l := range n.layers {
		stride := l.in + 1
		for j := 0; j < l.out; j++ {
			base := j * stride
			d := l.delta[j]
			for i := 0; i < l.in; i++ {
				dw := -lr*d*input[i] + mom*l.dwPrev[base+i]
				l.w[base+i] += dw
				l.dwPrev[base+i] = dw
			}
			dw := -lr*d + mom*l.dwPrev[base+l.in] // bias input is 1
			l.w[base+l.in] += dw
			l.dwPrev[base+l.in] = dw
		}
		input = l.output
	}
	return se / 2
}

// Snapshot returns a deep copy of all weights, used by early stopping
// to remember the best model seen.
func (n *Network) Snapshot() [][]float64 {
	s := make([][]float64, len(n.layers))
	for i, l := range n.layers {
		s[i] = append([]float64(nil), l.w...)
	}
	return s
}

// Restore loads weights previously captured by Snapshot and clears the
// momentum state (a restored model should not continue a stale update
// direction).
func (n *Network) Restore(s [][]float64) {
	if len(s) != len(n.layers) {
		panic("ann: snapshot layer count mismatch")
	}
	for i, l := range n.layers {
		if len(s[i]) != len(l.w) {
			panic("ann: snapshot size mismatch")
		}
		copy(l.w, s[i])
	}
	for j := range n.dwPrev {
		n.dwPrev[j] = 0
	}
}

// SnapshotInto copies all weights into dst, reusing its capacity when
// possible, and returns it. It is the allocation-free counterpart of
// Snapshot for callers that snapshot repeatedly (early stopping keeps
// one buffer alive across hundreds of improvements instead of
// allocating per-layer slices each time).
func (n *Network) SnapshotInto(dst []float64) []float64 {
	if cap(dst) < len(n.w) {
		dst = make([]float64, len(n.w))
	}
	dst = dst[:len(n.w)]
	copy(dst, n.w)
	return dst
}

// RestoreFlat loads weights previously captured by SnapshotInto and
// clears the momentum state, exactly like Restore.
func (n *Network) RestoreFlat(src []float64) {
	if len(src) != len(n.w) {
		panic("ann: flat snapshot size mismatch")
	}
	copy(n.w, src)
	for j := range n.dwPrev {
		n.dwPrev[j] = 0
	}
}

// Clone returns an independent copy of the network (weights and
// configuration; scratch state is fresh).
func (n *Network) Clone() *Network {
	c := New(n.cfg)
	copy(c.w, n.w)
	return c
}
