package ann

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// KernelMode selects the batched forward-pass kernel tier.
//
// KernelExact is the bit-identical reference path: plain IEEE-754
// multiply-add accumulation and library transcendentals, the same
// operations in the same order as the per-point Forward. Training,
// checkpoints, and every pre-existing parity gate run exclusively on
// this tier.
//
// KernelFast keeps the exact tier's float64 accumulation — the same
// blocked multiply-add loops producing the same pre-activation bits —
// and swaps only the transcendentals for the bounded-error batch
// activations of internal/mathx (plus, downstream, the fused
// denormalization in internal/core), so its error comes entirely from
// the documented activation contracts. KernelFast32 additionally runs
// the inner loops in float32 over a float32 copy of the flat weight
// layout, halving the data the MAC loops move and unlocking the AVX2
// layer/activation kernels on amd64. Both are query-time opt-ins:
// within a mode, outputs are a pure function of the input bits —
// identical across batch sizes, workers, chunking, and architectures
// (every step is explicitly single-rounded, so no platform may
// contract a multiply-add, and the amd64 vector kernels reproduce the
// portable Go op sequence bit for bit) — but they are NOT
// bit-identical to the exact tier; they are within the documented
// mathx error bounds of it.
type KernelMode uint8

const (
	KernelExact KernelMode = iota
	KernelFast
	KernelFast32
)

// String names the kernel mode; it round-trips with ParseKernelMode.
func (m KernelMode) String() string {
	switch m {
	case KernelExact:
		return "exact"
	case KernelFast:
		return "fast"
	case KernelFast32:
		return "fast32"
	}
	return fmt.Sprintf("kernel(%d)", uint8(m))
}

// ParseKernelMode parses a mode name. The empty string parses as
// KernelExact so absent config/request fields keep the bit-identical
// default.
func ParseKernelMode(s string) (KernelMode, error) {
	switch s {
	case "", "exact":
		return KernelExact, nil
	case "fast":
		return KernelFast, nil
	case "fast32":
		return KernelFast32, nil
	}
	return KernelExact, fmt.Errorf("ann: unknown kernel mode %q (want exact, fast or fast32)", s)
}

// MarshalText encodes the mode as its name.
func (m KernelMode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText decodes a mode name; empty input is KernelExact.
func (m *KernelMode) UnmarshalText(text []byte) error {
	parsed, err := ParseKernelMode(string(text))
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// FastErrorBounds derives absolute per-output error bounds for the
// fast kernel tiers relative to KernelExact, from the documented
// internal/mathx activation contracts and a standard float32 rounding
// model. The bounds assume every network input lies in [-1, 1], which
// holds for encoded design points (they live in [0, 1]).
//
// The derivation propagates an interval layer by layer: a magnitude
// bound on the layer's activations and, per tier, an absolute error
// bound versus the exact tier. Each layer amplifies the incoming
// error by its max-unit L1 weight norm, adds the tier's own rounding
// (fast32: one float32 rounding per product and accumulation step,
// plus the rounding of weights and inputs themselves), and passes the
// sum through the activation's Lipschitz constant plus the mathx
// approximation contract. The returned values carry a ×2 safety
// margin on the rounding model; tests assert measured error stays
// under them, and callers may use them to propagate bounds through
// downstream denormalization.
func (n *Network) FastErrorBounds() (fast, fast32 float64) {
	const (
		actErr64 = 1e-6   // mathx Sigmoid/Tanh float64 contract
		actErr32 = 2e-6   // mathx Sigmoid32/Tanh32 contract
		eps32    = 6.0e-8 // float32 unit roundoff, with slack
	)
	// mag bounds |activation| entering the next layer; dFast/dFast32
	// bound |fast tier − exact| on the current layer's outputs.
	mag, dFast, dFast32 := 1.0, 0.0, 0.0
	for _, l := range n.layers {
		stride := l.in + 1
		l1, pre := 0.0, 0.0 // max over units: Σ|w|, and Σ|w|·mag+|b|
		for j := 0; j < l.out; j++ {
			row := l.w[j*stride : (j+1)*stride]
			sum := 0.0
			for _, w := range row[:l.in] {
				sum += math.Abs(w)
			}
			l1 = math.Max(l1, sum)
			pre = math.Max(pre, sum*mag+math.Abs(row[l.in]))
		}
		// Pre-activation error: incoming error through the L1 norm,
		// plus (fast32 only) the float32 rounding of the weights, the
		// inputs, and every product/add in the accumulation chain.
		preFast := l1 * dFast
		preFast32 := l1*dFast32 + float64(2*l.in+4)*eps32*pre
		lip, aerr64, aerr32, outMag := 1.0, 0.0, 0.0, pre
		switch l.act {
		case Sigmoid:
			lip, aerr64, aerr32, outMag = 0.25, actErr64, actErr32, 1
		case Tanh:
			lip, aerr64, aerr32, outMag = 1, actErr64, actErr32, 1
		}
		// fast keeps exact float64 accumulation: only the activation
		// approximation (and sub-1e-9 FMA-level noise) contributes.
		dFast = lip*preFast + aerr64
		dFast32 = lip*preFast32 + aerr32
		mag = outMag
	}
	return dFast + 1e-9, 2 * (dFast32 + eps32*mag)
}

// ForwardBatchKernel is ForwardBatch with an explicit kernel tier. The
// mode is a per-call argument rather than network state so concurrent
// callers (e.g. a server answering exact and fast32 sweeps at once) can
// share one network with private Scratches.
func (n *Network) ForwardBatchKernel(xs []float64, rows int, s *Scratch, mode KernelMode) []float64 {
	if rows < 0 || len(xs) != rows*n.cfg.Inputs {
		panic(fmt.Sprintf("ann: batch of %d values is not %d rows × %d inputs", len(xs), rows, n.cfg.Inputs))
	}
	if s == nil {
		s = NewScratch()
	}
	switch mode {
	case KernelFast32:
		return n.forwardBatch32(xs, rows, s)
	case KernelFast:
		s.ensure(n, rows, false)
		in := xs
		for li, l := range n.layers {
			l.forwardBatchFast(in, rows, s.acts[li])
			in = s.acts[li]
		}
		return s.acts[len(n.layers)-1]
	default:
		return n.forwardBatchExact(xs, rows, s)
	}
}

// forwardBatchFast is the KernelFast layer kernel: the same four-row
// register blocking and multiply-add sequence as the exact forwardBatch
// — each product explicitly rounded to float64 so no platform may
// contract it into an FMA and drift from the amd64 bits — followed by
// the bounded-error batch activations. The pre-activation sums are
// bit-identical to the exact tier; only the nonlinearity differs.
func (l *layer) forwardBatchFast(in []float64, rows int, out []float64) {
	stride := l.in + 1
	inW := l.in
	outW := l.out
	r := 0
	for ; r+4 <= rows; r += 4 {
		x0 := in[(r+0)*inW : (r+0)*inW+inW]
		x1 := in[(r+1)*inW : (r+1)*inW+inW]
		x2 := in[(r+2)*inW : (r+2)*inW+inW]
		x3 := in[(r+3)*inW : (r+3)*inW+inW]
		o0 := out[(r+0)*outW : (r+0)*outW+outW]
		o1 := out[(r+1)*outW : (r+1)*outW+outW]
		o2 := out[(r+2)*outW : (r+2)*outW+outW]
		o3 := out[(r+3)*outW : (r+3)*outW+outW]
		for j := 0; j < outW; j++ {
			row := l.w[j*stride : j*stride+inW]
			b := l.w[j*stride+inW]
			s0, s1, s2, s3 := b, b, b, b
			for i, w := range row {
				s0 += float64(w * x0[i])
				s1 += float64(w * x1[i])
				s2 += float64(w * x2[i])
				s3 += float64(w * x3[i])
			}
			o0[j], o1[j], o2[j], o3[j] = s0, s1, s2, s3
		}
	}
	for ; r < rows; r++ {
		x := in[r*inW : r*inW+inW]
		o := out[r*outW : r*outW+outW]
		for j := 0; j < outW; j++ {
			row := l.w[j*stride : j*stride+inW]
			sum := l.w[j*stride+inW]
			for i, w := range row {
				sum += float64(w * x[i])
			}
			o[j] = sum
		}
	}
	l.act.applyBatchFast(out[:rows*outW])
}

// applyBatchFast applies the bounded-error activation tier in place.
func (a Activation) applyBatchFast(ys []float64) {
	switch a {
	case Sigmoid:
		mathx.SigmoidSlice(ys)
	case Tanh:
		mathx.TanhSlice(ys)
	case ReLU:
		for i, y := range ys {
			if y < 0 {
				ys[i] = 0
			}
		}
	}
}

// applyBatchFast32 is applyBatchFast for the float32 tier.
func (a Activation) applyBatchFast32(ys []float32) {
	switch a {
	case Sigmoid:
		mathx.SigmoidSlice32(ys)
	case Tanh:
		mathx.TanhSlice32(ys)
	case ReLU:
		for i, y := range ys {
			if y < 0 {
				ys[i] = 0
			}
		}
	}
}

// ensure32 sizes the float32 scratch tier and the final float64
// output buffer for one fast32 forward pass.
func (s *Scratch) ensure32(n *Network, rows int) {
	s.w32 = grow32(s.w32, len(n.w))
	s.in32 = grow32(s.in32, rows*n.cfg.Inputs)
	if len(s.acts32) < len(n.layers) {
		s.acts32 = make([][]float32, len(n.layers))
	}
	for li, l := range n.layers {
		s.acts32[li] = grow32(s.acts32[li], rows*l.out)
	}
	if len(s.acts) < len(n.layers) {
		s.acts = make([][]float64, len(n.layers))
	}
	last := len(n.layers) - 1
	s.acts[last] = grow(s.acts[last], rows*n.layers[last].out)
}

func grow32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// forwardBatch32 is the KernelFast32 path: weights and inputs are
// rounded once per call into scratch-owned float32 buffers (a few
// hundred conversions, amortized over the batch), the blocked MAC
// loops and activations run entirely in float32, and only the final
// layer widens back to float64 so every downstream consumer (scalers,
// variance accumulation, heaps) is unchanged. Rows stay independent —
// identical results for any split of a batch.
func (n *Network) forwardBatch32(xs []float64, rows int, s *Scratch) []float64 {
	s.ensure32(n, rows)
	for i, w := range n.w {
		s.w32[i] = float32(w)
	}
	for i, x := range xs {
		s.in32[i] = float32(x)
	}
	in := s.in32
	for li, l := range n.layers {
		out := s.acts32[li]
		if kernelAsm16(l, rows) {
			// AVX2 path: same multiply-add sequence as the Go loops below,
			// vectorized across the 16 units (two YMM accumulators), fed by
			// an input-major repack of the layer's float32 weights.
			s.wT32 = l.transpose32(s.w32, s.wT32)
			hidden16AVX2(&s.wT32[0], &in[0], rows, l.in, &out[0])
			l.act.applyBatchFast32(out[:rows*l.out])
		} else {
			l.forwardBatch32(s.w32, in, rows, out)
		}
		in = out
	}
	last := len(n.layers) - 1
	out := s.acts[last]
	for i, v := range s.acts32[last][:rows*n.layers[last].out] {
		out[i] = float64(v)
	}
	return out
}

// transpose32 repacks one layer's float32 weights from unit-major
// (each unit's inputs contiguous) to input-major (wt[i*out+j] =
// weight of input i into unit j) with the bias vector as the final
// row — the layout the vector kernel broadcasts inputs against. The
// values are copied bits from w32, so both layouts feed identical
// products. Reuses buf's capacity.
func (l *layer) transpose32(w32, buf []float32) []float32 {
	w := w32[l.off : l.off+l.out*(l.in+1)]
	stride := l.in + 1
	n := stride * l.out
	if cap(buf) < n {
		buf = make([]float32, n)
	}
	buf = buf[:n]
	for j := 0; j < l.out; j++ {
		row := w[j*stride : (j+1)*stride]
		for i, wv := range row {
			buf[i*l.out+j] = wv
		}
	}
	return buf
}

// forwardBatch32 computes one layer in float32 with the four-row
// blocking of forwardBatch. Every product is explicitly rounded to
// float32 before accumulating, pinning one rounding per operation so
// no platform may contract the multiply-add and change the bits.
func (l *layer) forwardBatch32(w32 []float32, in []float32, rows int, out []float32) {
	w := w32[l.off : l.off+l.out*(l.in+1)]
	stride := l.in + 1
	inW := l.in
	outW := l.out
	r := 0
	for ; r+4 <= rows; r += 4 {
		x0 := in[(r+0)*inW : (r+0)*inW+inW]
		x1 := in[(r+1)*inW : (r+1)*inW+inW]
		x2 := in[(r+2)*inW : (r+2)*inW+inW]
		x3 := in[(r+3)*inW : (r+3)*inW+inW]
		o0 := out[(r+0)*outW : (r+0)*outW+outW]
		o1 := out[(r+1)*outW : (r+1)*outW+outW]
		o2 := out[(r+2)*outW : (r+2)*outW+outW]
		o3 := out[(r+3)*outW : (r+3)*outW+outW]
		for j := 0; j < outW; j++ {
			row := w[j*stride : j*stride+inW]
			b := w[j*stride+inW]
			s0, s1, s2, s3 := b, b, b, b
			for i, wv := range row {
				s0 += float32(wv * x0[i])
				s1 += float32(wv * x1[i])
				s2 += float32(wv * x2[i])
				s3 += float32(wv * x3[i])
			}
			o0[j], o1[j], o2[j], o3[j] = s0, s1, s2, s3
		}
	}
	for ; r < rows; r++ {
		x := in[r*inW : r*inW+inW]
		o := out[r*outW : r*outW+outW]
		for j := 0; j < outW; j++ {
			row := w[j*stride : j*stride+inW]
			sum := w[j*stride+inW]
			for i, wv := range row {
				sum += float32(wv * x[i])
			}
			o[j] = sum
		}
	}
	l.act.applyBatchFast32(out[:rows*outW])
}
