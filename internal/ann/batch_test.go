package ann

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// randomNetwork builds a network with the given shape and fills a
// batch of random inputs in [-1, 2) (wider than the encoders' [0,1] so
// the parity property is not an artifact of tame inputs).
func randomNetwork(t *testing.T, rng *stats.RNG, inputs int, hidden []int, outputs int, hAct, oAct Activation) *Network {
	t.Helper()
	n := New(Config{
		Inputs: inputs, Hidden: hidden, Outputs: outputs,
		HiddenAct: hAct, OutputAct: oAct,
		LearningRate: 0.1, Momentum: 0.5, InitRange: 0.5,
		Seed: rng.Uint64(),
	})
	return n
}

// TestForwardBatchMatchesForward is the batched-prediction parity
// property: over random networks of varying shape and activation,
// ForwardBatch output for every row matches the per-point Forward
// within 1e-12 (the kernels are written to be bit-identical; the
// tolerance guards the property, not the implementation).
func TestForwardBatchMatchesForward(t *testing.T) {
	rng := stats.NewRNG(0xBA7C4)
	shapes := []struct {
		in     int
		hidden []int
		out    int
		hAct   Activation
		oAct   Activation
	}{
		{1, []int{4}, 1, Sigmoid, Linear},
		{7, []int{16}, 1, Sigmoid, Linear},
		{13, []int{16}, 3, Sigmoid, Sigmoid},
		{5, []int{8, 8}, 2, Tanh, Linear},
		{9, []int{32, 16, 8}, 1, ReLU, Linear},
		{30, []int{16}, 1, Sigmoid, Linear}, // paper-shaped
	}
	for _, sh := range shapes {
		n := randomNetwork(t, rng, sh.in, sh.hidden, sh.out, sh.hAct, sh.oAct)
		scratch := NewScratch()
		// Odd row counts exercise both the 4-row blocked kernel and the
		// remainder loop.
		for _, rows := range []int{1, 2, 3, 4, 5, 17, 64} {
			xs := make([]float64, rows*sh.in)
			for i := range xs {
				xs[i] = rng.Range(-1, 2)
			}
			got := n.ForwardBatch(xs, rows, scratch)
			for r := 0; r < rows; r++ {
				want := n.Forward(xs[r*sh.in : (r+1)*sh.in])
				for o := 0; o < sh.out; o++ {
					g, w := got[r*sh.out+o], want[o]
					if math.Abs(g-w) > 1e-12*(1+math.Abs(w)) {
						t.Fatalf("shape %+v rows=%d row %d out %d: batch %v vs per-point %v", sh, rows, r, o, g, w)
					}
				}
			}
		}
	}
}

// TestForwardBatchNilScratch checks the allocate-on-nil convenience
// path.
func TestForwardBatchNilScratch(t *testing.T) {
	rng := stats.NewRNG(1)
	n := randomNetwork(t, rng, 4, []int{8}, 2, Sigmoid, Linear)
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	got := n.ForwardBatch(xs, 2, nil)
	if len(got) != 4 {
		t.Fatalf("2 rows × 2 outputs should give 4 values, got %d", len(got))
	}
}

// TestTrainBatchSingleRowMatchesTrain: a one-row TrainBatch must
// perform the same update as the per-example Train (the batch update
// degenerates to Equation 3.1/3.2 exactly).
func TestTrainBatchSingleRowMatchesTrain(t *testing.T) {
	rng := stats.NewRNG(0x7B41)
	a := randomNetwork(t, rng, 6, []int{8}, 2, Sigmoid, Linear)
	b := a.Clone()
	scratch := NewScratch()
	x := make([]float64, 6)
	y := make([]float64, 2)
	for step := 0; step < 25; step++ {
		for i := range x {
			x[i] = rng.Range(-1, 1)
		}
		for i := range y {
			y[i] = rng.Range(-1, 1)
		}
		seA := a.Train(x, y, 0.05)
		seB := b.TrainBatch(x, y, 1, 0.05, scratch)
		if math.Abs(seA-seB) > 1e-12*(1+math.Abs(seA)) {
			t.Fatalf("step %d: Train error %v vs TrainBatch %v", step, seA, seB)
		}
		for i := range a.w {
			if math.Abs(a.w[i]-b.w[i]) > 1e-12*(1+math.Abs(a.w[i])) {
				t.Fatalf("step %d: weight %d diverged: %v vs %v", step, i, a.w[i], b.w[i])
			}
		}
	}
}

// TestTrainBatchGradient verifies the batched backward pass against
// numerical differentiation of the batch loss on every weight.
func TestTrainBatchGradient(t *testing.T) {
	rng := stats.NewRNG(0x96AD)
	cfg := Config{
		Inputs: 3, Hidden: []int{5}, Outputs: 2,
		HiddenAct: Sigmoid, OutputAct: Linear,
		LearningRate: 1, Momentum: 0, InitRange: 0.5, Seed: 17,
	}
	n := New(cfg)
	const rows = 6
	xs := make([]float64, rows*3)
	ys := make([]float64, rows*2)
	for i := range xs {
		xs[i] = rng.Range(-1, 1)
	}
	for i := range ys {
		ys[i] = rng.Range(-1, 1)
	}

	// Batch loss: mean over rows of Σ(o−t)²/2.
	loss := func() float64 {
		out := n.ForwardBatch(xs, rows, nil)
		var se float64
		for k, o := range out {
			e := o - ys[k]
			se += e * e
		}
		return se / 2 / rows
	}

	const eps, lr = 1e-6, 1e-6
	for wi := range n.w {
		orig := n.w[wi]
		n.w[wi] = orig + eps
		up := loss()
		n.w[wi] = orig - eps
		down := loss()
		n.w[wi] = orig
		numeric := (up - down) / (2 * eps)

		snap := n.Snapshot()
		n.TrainBatch(xs, ys, rows, lr, nil)
		analytic := -(n.w[wi] - snap[layerOf(n, wi)][wi-n.layers[layerOf(n, wi)].off]) / lr
		n.Restore(snap)

		if math.Abs(numeric-analytic) > 1e-3*(1+math.Abs(numeric)) {
			t.Fatalf("weight %d: numeric %.8f vs batched backprop %.8f", wi, numeric, analytic)
		}
	}
}

// layerOf maps a flat weight index to its layer index.
func layerOf(n *Network, wi int) int {
	for li := len(n.layers) - 1; li >= 0; li-- {
		if wi >= n.layers[li].off {
			return li
		}
	}
	return 0
}

// TestTrainBatchLearnsLinearFunction: mini-batch training must still
// fit an easy target.
func TestTrainBatchLearnsLinearFunction(t *testing.T) {
	n := New(Config{
		Inputs: 2, Hidden: []int{8}, Outputs: 1,
		HiddenAct: Sigmoid, OutputAct: Linear,
		LearningRate: 0.2, Momentum: 0.5, InitRange: 0.1, Seed: 7,
	})
	rng := stats.NewRNG(5)
	const rows = 8
	xs := make([]float64, rows*2)
	ys := make([]float64, rows)
	scratch := NewScratch()
	for epoch := 0; epoch < 2500; epoch++ {
		for r := 0; r < rows; r++ {
			a, b := rng.Float64(), rng.Float64()
			xs[r*2], xs[r*2+1] = a, b
			ys[r] = 0.3*a + 0.5*b
		}
		n.TrainBatch(xs, ys, rows, 0.2, scratch)
	}
	var worst float64
	for i := 0; i < 50; i++ {
		a, b := rng.Float64(), rng.Float64()
		got := n.Forward([]float64{a, b})[0]
		if d := math.Abs(got - (0.3*a + 0.5*b)); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Fatalf("mini-batch linear fit worst error %v", worst)
	}
}

// TestTrainEarlyStoppingMiniBatch: the BatchSize option must train to
// a comparable ES error and report a sane result.
func TestTrainEarlyStoppingMiniBatch(t *testing.T) {
	rng := stats.NewRNG(0x3B17)
	mkData := func(n int) *Dataset {
		d := &Dataset{}
		for i := 0; i < n; i++ {
			a, b := rng.Float64(), rng.Float64()
			v := 0.4 + 0.4*a + 0.2*b
			d.Append([]float64{a, b}, []float64{v}, v)
		}
		return d
	}
	train, es := mkData(80), mkData(20)
	cfg := Config{
		Inputs: 2, Hidden: []int{8}, Outputs: 1,
		HiddenAct: Sigmoid, OutputAct: Linear,
		LearningRate: 0.2, Momentum: 0.5, InitRange: 0.1, Seed: 3,
	}
	opts := TrainOpts{MaxEpochs: 400, Patience: 60, LRDecay: 0.999, BatchSize: 8, Seed: 9}
	n := New(cfg)
	res, err := TrainEarlyStopping(n, train, es, identityUnscaler{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestESErr > 5 {
		t.Fatalf("mini-batch early stopping ended at %v%% ES error", res.BestESErr)
	}
}

type identityUnscaler struct{}

func (identityUnscaler) Unscale(v float64) float64 { return v }

// TestPerExampleTrainingUnchangedByPacking: the flat-packed training
// path must reproduce the seed implementation's exact weight sequence —
// same presentation order, same updates — for per-example SGD. We pin
// it by training two identical networks through TrainEarlyStopping
// twice and through manual Train calls in the recorded order.
func TestPerExampleTrainingDeterministic(t *testing.T) {
	rng := stats.NewRNG(0xD1CE)
	mkData := func(n int) *Dataset {
		d := &Dataset{}
		for i := 0; i < n; i++ {
			a := rng.Float64()
			v := 0.3 + 0.5*a
			d.Append([]float64{a}, []float64{v}, v)
		}
		return d
	}
	train, es := mkData(40), mkData(10)
	cfg := Config{
		Inputs: 1, Hidden: []int{4}, Outputs: 1,
		HiddenAct: Sigmoid, OutputAct: Linear,
		LearningRate: 0.1, Momentum: 0.5, InitRange: 0.1, Seed: 11,
	}
	opts := TrainOpts{MaxEpochs: 50, Patience: 50, LRDecay: 1, Seed: 21}
	a, b := New(cfg), New(cfg)
	ra, err := TrainEarlyStopping(a, train, es, identityUnscaler{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := TrainEarlyStopping(b, train, es, identityUnscaler{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Fatalf("repeat training diverged: %+v vs %+v", ra, rb)
	}
	for i := range a.w {
		if a.w[i] != b.w[i] {
			t.Fatalf("weight %d differs across identical runs", i)
		}
	}
}
