package ann

import (
	"bytes"
	"strings"
	"testing"
)

func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	n := New(smallConfig(3, 2))
	// Train a little so the weights are non-trivial.
	for i := 0; i < 200; i++ {
		n.Train([]float64{0.1, 0.5, 0.9}, []float64{0.3, 0.7}, 0.1)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{0, 0, 0}, {1, 1, 1}, {0.2, 0.4, 0.6}} {
		a := n.Predict(x)
		b := loaded.Predict(x)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("loaded net predicts %v, original %v at %v", b, a, x)
			}
		}
	}
	lc, oc := loaded.Config(), n.Config()
	if lc.Inputs != oc.Inputs || lc.Outputs != oc.Outputs ||
		len(lc.Hidden) != len(oc.Hidden) || lc.Hidden[0] != oc.Hidden[0] ||
		lc.LearningRate != oc.LearningRate {
		t.Fatal("config not preserved")
	}
}

func TestLoadedNetworkTrainsOn(t *testing.T) {
	n := New(smallConfig(1, 1))
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	before := loaded.Predict([]float64{0.5})[0]
	for i := 0; i < 500; i++ {
		loaded.Train([]float64{0.5}, []float64{0.9}, 0.2)
	}
	after := loaded.Predict([]float64{0.5})[0]
	if after == before {
		t.Fatal("loaded network did not train")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":        "not json at all",
		"future version": `{"version":99,"config":{"Inputs":1,"Hidden":[2],"Outputs":1,"LearningRate":0.1},"weights":[[0,0,0,0],[0,0,0]]}`,
		"bad config":     `{"version":1,"config":{"Inputs":0,"Hidden":[2],"Outputs":1,"LearningRate":0.1},"weights":[]}`,
		"layer mismatch": `{"version":1,"config":{"Inputs":1,"Hidden":[2],"Outputs":1,"LearningRate":0.1},"weights":[[0,0,0,0]]}`,
	}
	for name, payload := range cases {
		if _, err := Load(strings.NewReader(payload)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadRejectsWeightSizeMismatch(t *testing.T) {
	n := New(smallConfig(2, 1))
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt: truncate a layer's weights.
	s := buf.String()
	s = strings.Replace(s, "[", "[9999,", 1) // corrupt structure subtly enough to parse
	if _, err := Load(strings.NewReader(s)); err == nil {
		t.Skip("corruption happened to stay consistent; acceptable")
	}
}
