#include "textflag.h"

// func hidden16AVX2(wt *float32, xs *float32, rows, in int, dst *float32)
//
// Two YMM accumulators hold the 16 unit sums for one row; each input
// step broadcasts x_i and does a single-rounded VMULPS + VADDPS pair
// per half — the same multiply-then-add order as the portable Go
// loops, so lane j's bits match the scalar accumulation for unit j.
// in must be >= 1 (the caller gates on it).
TEXT ·hidden16AVX2(SB), NOSPLIT, $0-40
	MOVQ wt+0(FP), SI
	MOVQ xs+8(FP), DI
	MOVQ rows+16(FP), CX
	MOVQ in+24(FP), R8
	MOVQ dst+32(FP), DX
	MOVQ R8, R9
	SHLQ $6, R9              // in rows × 16 floats × 4 bytes
	LEAQ (SI)(R9*1), R10     // bias row

rowloop:
	TESTQ CX, CX
	JZ done
	VMOVUPS (R10), Y0        // acc[0:8]  = bias[0:8]
	VMOVUPS 32(R10), Y1      // acc[8:16] = bias[8:16]
	MOVQ SI, R11             // weight row cursor
	MOVQ R8, R12             // input counter

iloop:
	VBROADCASTSS (DI), Y2    // x_i
	VMULPS (R11), Y2, Y3     // x_i * w[i][0:8]   (rounded)
	VADDPS Y3, Y0, Y0        // acc += …          (rounded)
	VMULPS 32(R11), Y2, Y4   // x_i * w[i][8:16]
	VADDPS Y4, Y1, Y1
	ADDQ $4, DI
	ADDQ $64, R11
	DECQ R12
	JNZ iloop

	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	ADDQ $64, DX
	DECQ CX
	JMP rowloop

done:
	VZEROUPPER
	RET
