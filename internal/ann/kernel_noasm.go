//go:build !amd64

package ann

// kernelAsm16 is always false without a vector kernel; forwardBatch32
// runs the portable loops, which compute the same bits.
func kernelAsm16(l *layer, rows int) bool { return false }

func hidden16AVX2(wt *float32, xs *float32, rows, in int, dst *float32) {
	panic("ann: hidden16AVX2 is amd64-only")
}
