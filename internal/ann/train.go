package ann

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Dataset is a set of training examples in network (normalized) space,
// with the raw (de-normalized) primary target kept alongside so that
// percentage error — the metric the paper optimizes and reports — can
// be computed exactly.
type Dataset struct {
	X   [][]float64 // inputs
	Y   [][]float64 // normalized targets
	Raw []float64   // actual value of the primary target (e.g. IPC)
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Append adds one example.
func (d *Dataset) Append(x, y []float64, raw float64) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
	d.Raw = append(d.Raw, raw)
}

// Subset returns a view of the examples at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{
		X:   make([][]float64, len(idx)),
		Y:   make([][]float64, len(idx)),
		Raw: make([]float64, len(idx)),
	}
	for i, j := range idx {
		s.X[i], s.Y[i], s.Raw[i] = d.X[j], d.Y[j], d.Raw[j]
	}
	return s
}

// packed is a Dataset flattened into contiguous row-major matrices, the
// layout the batched kernels and the training inner loop consume. The
// per-example slice-of-slices form costs a pointer dereference per
// access and scatters rows across the heap; packing once up front makes
// every subsequent epoch walk flat memory.
type packed struct {
	x, y []float64 // rows × inW, rows × outW
	raw  []float64
	n    int
	inW  int
	outW int
}

func packDataset(d *Dataset, inW, outW int) *packed {
	p := &packed{
		x:    make([]float64, d.Len()*inW),
		y:    make([]float64, d.Len()*outW),
		raw:  d.Raw,
		n:    d.Len(),
		inW:  inW,
		outW: outW,
	}
	for i, row := range d.X {
		if len(row) != inW {
			panic(fmt.Sprintf("ann: example %d has %d inputs, network has %d", i, len(row), inW))
		}
		copy(p.x[i*inW:(i+1)*inW], row)
	}
	for i, row := range d.Y {
		if len(row) != outW {
			panic(fmt.Sprintf("ann: example %d has %d targets, network has %d outputs", i, len(row), outW))
		}
		copy(p.y[i*outW:(i+1)*outW], row)
	}
	return p
}

func (p *packed) xRow(i int) []float64 { return p.x[i*p.inW : (i+1)*p.inW] }
func (p *packed) yRow(i int) []float64 { return p.y[i*p.outW : (i+1)*p.outW] }

// Unscaler converts a normalized primary-target prediction back to its
// actual range (§3.3: predictions are scaled back before percentage
// errors are computed).
type Unscaler interface {
	Unscale(float64) float64
}

// TrainOpts controls gradient-descent training with early stopping.
type TrainOpts struct {
	// MaxEpochs bounds training length. One epoch presents Len(train)
	// examples (drawn with replacement when weighted sampling is on).
	MaxEpochs int
	// Patience stops training after this many consecutive epochs
	// without improvement of the early-stopping-set percentage error.
	Patience int
	// WeightedPresentation presents examples at a frequency
	// proportional to 1/raw-target, training the net for percentage
	// rather than absolute error (§3.3). When false, examples are
	// presented in a random permutation each epoch.
	WeightedPresentation bool
	// LRDecay multiplies the learning rate after each epoch (1 = the
	// paper's constant rate).
	LRDecay float64
	// MinImprove is the relative ES-error improvement that resets
	// patience (guards against drifting forever on noise).
	MinImprove float64
	// BatchSize > 1 accumulates gradients over mini-batches through
	// TrainBatch (one momentum step per batch) instead of the paper's
	// per-example stochastic updates. 0 or 1 keeps per-example SGD.
	BatchSize int
	// Seed drives presentation order.
	Seed uint64
}

// DefaultTrainOpts returns the training schedule used by this
// repository's experiments: weighted presentation, early stopping with
// moderate patience, and gentle learning-rate decay so the paper's
// small-step behaviour is reached after an accelerated start.
func DefaultTrainOpts() TrainOpts {
	return TrainOpts{
		MaxEpochs:            1200,
		Patience:             120,
		WeightedPresentation: false,
		LRDecay:              0.9975,
		MinImprove:           1e-4,
	}
}

// PaperTrainOpts returns a schedule faithful to §3.1: constant learning
// rate, weighted presentation, early stopping only.
func PaperTrainOpts() TrainOpts {
	return TrainOpts{
		MaxEpochs:            4000,
		Patience:             100,
		WeightedPresentation: true,
		LRDecay:              1,
		MinImprove:           0,
	}
}

// TrainResult reports how a training run ended.
type TrainResult struct {
	Epochs    int     // epochs actually run
	BestEpoch int     // epoch of the best ES error
	BestESErr float64 // best mean percentage error on the ES set
}

// TrainEarlyStopping trains n on train, monitoring mean percentage
// error on es after every epoch and restoring the best weights seen
// when training stops (§3.2). The unscaler maps normalized predictions
// of output 0 back to the actual target range.
//
// Both sets are packed into flat matrices once up front; the
// early-stopping evaluation runs through ForwardBatch with a reused
// scratch, so the per-epoch monitoring allocates nothing.
func TrainEarlyStopping(n *Network, train, es *Dataset, un Unscaler, opts TrainOpts) (TrainResult, error) {
	if train.Len() == 0 {
		return TrainResult{}, fmt.Errorf("ann: empty training set")
	}
	if es.Len() == 0 {
		return TrainResult{}, fmt.Errorf("ann: empty early-stopping set")
	}
	if opts.MaxEpochs <= 0 {
		return TrainResult{}, fmt.Errorf("ann: MaxEpochs must be positive")
	}
	rng := stats.NewRNG(opts.Seed ^ 0x7EA41)

	var alias *stats.Alias
	if opts.WeightedPresentation {
		w := make([]float64, train.Len())
		for i, r := range train.Raw {
			// Presentation frequency ∝ 1/|target| (§3.3); degenerate
			// targets fall back to uniform weight.
			if a := math.Abs(r); a > 1e-12 {
				w[i] = 1 / a
			} else {
				w[i] = 1
			}
		}
		alias = stats.NewAlias(w)
	}

	tr := packDataset(train, n.cfg.Inputs, n.cfg.Outputs)
	esSet := packDataset(es, n.cfg.Inputs, n.cfg.Outputs)
	scratch := NewScratch()

	batch := opts.BatchSize
	if batch < 1 {
		batch = 1
	}
	var batchX, batchY []float64
	if batch > 1 {
		batchX = make([]float64, batch*tr.inW)
		batchY = make([]float64, batch*tr.outW)
	}

	var permBuf []int
	if alias == nil {
		permBuf = make([]int, tr.n)
	}

	// presentEpoch runs one epoch of gradient updates over the training
	// set in the configured presentation order and batch size.
	presentEpoch := func(lr float64) {
		order := func(k int) int {
			return alias.Draw(rng)
		}
		if alias == nil {
			rng.PermInto(permBuf)
			order = func(k int) int { return permBuf[k] }
		}
		if batch == 1 {
			for k := 0; k < tr.n; k++ {
				i := order(k)
				n.Train(tr.xRow(i), tr.yRow(i), lr)
			}
			return
		}
		for k := 0; k < tr.n; k += batch {
			rows := batch
			if rem := tr.n - k; rows > rem {
				rows = rem
			}
			for r := 0; r < rows; r++ {
				i := order(k + r)
				copy(batchX[r*tr.inW:(r+1)*tr.inW], tr.xRow(i))
				copy(batchY[r*tr.outW:(r+1)*tr.outW], tr.yRow(i))
			}
			n.TrainBatch(batchX[:rows*tr.inW], batchY[:rows*tr.outW], rows, lr, scratch)
		}
	}

	lr := n.cfg.LearningRate
	best := TrainResult{BestESErr: math.Inf(1)}
	// Flat snapshot buffer, reused across improvements: early stopping
	// can snapshot hundreds of times per fold, and the per-layer
	// Snapshot would allocate fresh slices on every one.
	var bestW []float64
	haveBest := false
	sincebest := 0

	for epoch := 1; epoch <= opts.MaxEpochs; epoch++ {
		presentEpoch(lr)
		esErr := meanPercentErrorPacked(n, esSet, un, scratch)
		if esErr < best.BestESErr*(1-opts.MinImprove) || !haveBest {
			best.BestESErr = esErr
			best.BestEpoch = epoch
			bestW = n.SnapshotInto(bestW)
			haveBest = true
			sincebest = 0
		} else {
			sincebest++
			if sincebest >= opts.Patience {
				best.Epochs = epoch
				n.RestoreFlat(bestW)
				return best, nil
			}
		}
		if opts.LRDecay > 0 && opts.LRDecay != 1 {
			lr *= opts.LRDecay
		}
	}
	best.Epochs = opts.MaxEpochs
	n.RestoreFlat(bestW)
	return best, nil
}

// meanPercentErrorPacked is the batched early-stopping evaluation: one
// ForwardBatch over the whole set, then the same skip-zero percentage
// accumulation as MeanPercentError, in row order.
func meanPercentErrorPacked(n *Network, p *packed, un Unscaler, s *Scratch) float64 {
	if p.n == 0 {
		return 0
	}
	// Exact kernel unconditionally: early stopping is part of training
	// and must not depend on the configured query tier.
	out := n.forwardBatchExact(p.x, p.n, s)
	var sum float64
	count := 0
	for i := 0; i < p.n; i++ {
		if p.raw[i] == 0 {
			continue
		}
		pred := un.Unscale(out[i*p.outW])
		sum += math.Abs(pred-p.raw[i]) / math.Abs(p.raw[i]) * 100
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// MeanPercentError evaluates the network's mean percentage error on the
// primary target over ds, de-normalizing predictions through un.
func MeanPercentError(n *Network, ds *Dataset, un Unscaler) float64 {
	if ds.Len() == 0 {
		return 0
	}
	return meanPercentErrorPacked(n, packDataset(ds, n.cfg.Inputs, n.cfg.Outputs), un, nil)
}

// PercentErrors returns the per-example percentage errors of the
// network on ds (primary target only).
func PercentErrors(n *Network, ds *Dataset, un Unscaler) []float64 {
	p := packDataset(ds, n.cfg.Inputs, n.cfg.Outputs)
	preds := n.ForwardBatch(p.x, p.n, nil)
	out := make([]float64, 0, p.n)
	for i := 0; i < p.n; i++ {
		if p.raw[i] == 0 {
			continue
		}
		pred := un.Unscale(preds[i*p.outW])
		out = append(out, math.Abs(pred-p.raw[i])/math.Abs(p.raw[i])*100)
	}
	return out
}
