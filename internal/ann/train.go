package ann

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Dataset is a set of training examples in network (normalized) space,
// with the raw (de-normalized) primary target kept alongside so that
// percentage error — the metric the paper optimizes and reports — can
// be computed exactly.
type Dataset struct {
	X   [][]float64 // inputs
	Y   [][]float64 // normalized targets
	Raw []float64   // actual value of the primary target (e.g. IPC)
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Append adds one example.
func (d *Dataset) Append(x, y []float64, raw float64) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
	d.Raw = append(d.Raw, raw)
}

// Subset returns a view of the examples at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{
		X:   make([][]float64, len(idx)),
		Y:   make([][]float64, len(idx)),
		Raw: make([]float64, len(idx)),
	}
	for i, j := range idx {
		s.X[i], s.Y[i], s.Raw[i] = d.X[j], d.Y[j], d.Raw[j]
	}
	return s
}

// Unscaler converts a normalized primary-target prediction back to its
// actual range (§3.3: predictions are scaled back before percentage
// errors are computed).
type Unscaler interface {
	Unscale(float64) float64
}

// TrainOpts controls gradient-descent training with early stopping.
type TrainOpts struct {
	// MaxEpochs bounds training length. One epoch presents Len(train)
	// examples (drawn with replacement when weighted sampling is on).
	MaxEpochs int
	// Patience stops training after this many consecutive epochs
	// without improvement of the early-stopping-set percentage error.
	Patience int
	// WeightedPresentation presents examples at a frequency
	// proportional to 1/raw-target, training the net for percentage
	// rather than absolute error (§3.3). When false, examples are
	// presented in a random permutation each epoch.
	WeightedPresentation bool
	// LRDecay multiplies the learning rate after each epoch (1 = the
	// paper's constant rate).
	LRDecay float64
	// MinImprove is the relative ES-error improvement that resets
	// patience (guards against drifting forever on noise).
	MinImprove float64
	// Seed drives presentation order.
	Seed uint64
}

// DefaultTrainOpts returns the training schedule used by this
// repository's experiments: weighted presentation, early stopping with
// moderate patience, and gentle learning-rate decay so the paper's
// small-step behaviour is reached after an accelerated start.
func DefaultTrainOpts() TrainOpts {
	return TrainOpts{
		MaxEpochs:            1200,
		Patience:             120,
		WeightedPresentation: false,
		LRDecay:              0.9975,
		MinImprove:           1e-4,
	}
}

// PaperTrainOpts returns a schedule faithful to §3.1: constant learning
// rate, weighted presentation, early stopping only.
func PaperTrainOpts() TrainOpts {
	return TrainOpts{
		MaxEpochs:            4000,
		Patience:             100,
		WeightedPresentation: true,
		LRDecay:              1,
		MinImprove:           0,
	}
}

// TrainResult reports how a training run ended.
type TrainResult struct {
	Epochs    int     // epochs actually run
	BestEpoch int     // epoch of the best ES error
	BestESErr float64 // best mean percentage error on the ES set
}

// TrainEarlyStopping trains n on train, monitoring mean percentage
// error on es after every epoch and restoring the best weights seen
// when training stops (§3.2). The unscaler maps normalized predictions
// of output 0 back to the actual target range.
func TrainEarlyStopping(n *Network, train, es *Dataset, un Unscaler, opts TrainOpts) (TrainResult, error) {
	if train.Len() == 0 {
		return TrainResult{}, fmt.Errorf("ann: empty training set")
	}
	if es.Len() == 0 {
		return TrainResult{}, fmt.Errorf("ann: empty early-stopping set")
	}
	if opts.MaxEpochs <= 0 {
		return TrainResult{}, fmt.Errorf("ann: MaxEpochs must be positive")
	}
	rng := stats.NewRNG(opts.Seed ^ 0x7EA41)

	var alias *stats.Alias
	if opts.WeightedPresentation {
		w := make([]float64, train.Len())
		for i, r := range train.Raw {
			// Presentation frequency ∝ 1/|target| (§3.3); degenerate
			// targets fall back to uniform weight.
			if a := math.Abs(r); a > 1e-12 {
				w[i] = 1 / a
			} else {
				w[i] = 1
			}
		}
		alias = stats.NewAlias(w)
	}

	lr := n.cfg.LearningRate
	best := TrainResult{BestESErr: math.Inf(1)}
	var bestW [][]float64
	sincebest := 0

	for epoch := 1; epoch <= opts.MaxEpochs; epoch++ {
		if alias != nil {
			for k := 0; k < train.Len(); k++ {
				i := alias.Draw(rng)
				n.Train(train.X[i], train.Y[i], lr)
			}
		} else {
			for _, i := range rng.Perm(train.Len()) {
				n.Train(train.X[i], train.Y[i], lr)
			}
		}
		esErr := MeanPercentError(n, es, un)
		if esErr < best.BestESErr*(1-opts.MinImprove) || bestW == nil {
			best.BestESErr = esErr
			best.BestEpoch = epoch
			bestW = n.Snapshot()
			sincebest = 0
		} else {
			sincebest++
			if sincebest >= opts.Patience {
				best.Epochs = epoch
				n.Restore(bestW)
				return best, nil
			}
		}
		if opts.LRDecay > 0 && opts.LRDecay != 1 {
			lr *= opts.LRDecay
		}
	}
	best.Epochs = opts.MaxEpochs
	n.Restore(bestW)
	return best, nil
}

// MeanPercentError evaluates the network's mean percentage error on the
// primary target over ds, de-normalizing predictions through un.
func MeanPercentError(n *Network, ds *Dataset, un Unscaler) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var sum float64
	count := 0
	for i := range ds.X {
		if ds.Raw[i] == 0 {
			continue
		}
		pred := un.Unscale(n.Forward(ds.X[i])[0])
		sum += math.Abs(pred-ds.Raw[i]) / math.Abs(ds.Raw[i]) * 100
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// PercentErrors returns the per-example percentage errors of the
// network on ds (primary target only).
func PercentErrors(n *Network, ds *Dataset, un Unscaler) []float64 {
	out := make([]float64, 0, ds.Len())
	for i := range ds.X {
		if ds.Raw[i] == 0 {
			continue
		}
		pred := un.Unscale(n.Forward(ds.X[i])[0])
		out = append(out, math.Abs(pred-ds.Raw[i])/math.Abs(ds.Raw[i])*100)
	}
	return out
}
