package ann

import "fmt"

// Scratch holds the reusable buffers the batched forward/backward
// kernels write into: per-layer activation matrices, per-layer delta
// matrices, and a flat gradient accumulator. A Scratch grows to the
// largest (network, batch) shape it has seen and is then allocation-free
// across calls.
//
// A Scratch is not safe for concurrent use; give each worker goroutine
// its own (ForwardBatch and TrainBatch never write to shared network
// state through it, so many goroutines may score the same network
// concurrently with separate Scratches).
type Scratch struct {
	acts   [][]float64 // per layer: rows × layer.out activations
	deltas [][]float64 // per layer: rows × layer.out backprop deltas
	grad   []float64   // flat gradient accumulator, aligned with Network.w

	// Float32 tier (KernelFast32): per-call rounded copies of the flat
	// weight layout and the input batch, plus float32 activations.
	w32    []float32
	in32   []float32
	acts32 [][]float32
	wT32   []float32 // input-major weight repack for the vector kernel
}

// NewScratch returns an empty scratch; buffers are sized lazily by the
// first batched call.
func NewScratch() *Scratch { return &Scratch{} }

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// ensure sizes the scratch for one batched pass over rows examples.
func (s *Scratch) ensure(n *Network, rows int, backward bool) {
	if len(s.acts) < len(n.layers) {
		s.acts = make([][]float64, len(n.layers))
	}
	for li, l := range n.layers {
		s.acts[li] = grow(s.acts[li], rows*l.out)
	}
	if !backward {
		return
	}
	if len(s.deltas) < len(n.layers) {
		s.deltas = make([][]float64, len(n.layers))
	}
	for li, l := range n.layers {
		s.deltas[li] = grow(s.deltas[li], rows*l.out)
	}
	s.grad = grow(s.grad, len(n.w))
	for i := range s.grad {
		s.grad[i] = 0
	}
}

// ForwardBatch runs rows examples through the network in one pass.
// xs is a flat row-major matrix (rows × Inputs); the returned slice is
// the flat rows × Outputs activation matrix, owned by s and overwritten
// by its next use. Passing a nil scratch allocates a private one.
//
// In the default KernelExact mode, outputs are bit-identical to calling
// Forward on each row; the batched kernel only reorders independent
// examples, never the floating-point operations within one example. A
// network configured with a fast kernel tier routes through
// ForwardBatchKernel instead (training always stays exact).
func (n *Network) ForwardBatch(xs []float64, rows int, s *Scratch) []float64 {
	return n.ForwardBatchKernel(xs, rows, s, n.cfg.Kernel)
}

func (n *Network) forwardBatchExact(xs []float64, rows int, s *Scratch) []float64 {
	if s == nil {
		s = NewScratch()
	}
	s.ensure(n, rows, false)
	in := xs
	for li, l := range n.layers {
		l.forwardBatch(in, rows, s.acts[li])
		in = s.acts[li]
	}
	return s.acts[len(n.layers)-1]
}

// forwardBatch computes this layer's activations for rows examples.
// The kernel processes four examples per weight-row pass, so each
// weight load feeds four independent accumulators — the register
// blocking that makes batched scoring several times faster than
// per-point calls.
func (l *layer) forwardBatch(in []float64, rows int, out []float64) {
	stride := l.in + 1
	inW := l.in
	outW := l.out
	r := 0
	for ; r+4 <= rows; r += 4 {
		x0 := in[(r+0)*inW : (r+0)*inW+inW]
		x1 := in[(r+1)*inW : (r+1)*inW+inW]
		x2 := in[(r+2)*inW : (r+2)*inW+inW]
		x3 := in[(r+3)*inW : (r+3)*inW+inW]
		o0 := out[(r+0)*outW : (r+0)*outW+outW]
		o1 := out[(r+1)*outW : (r+1)*outW+outW]
		o2 := out[(r+2)*outW : (r+2)*outW+outW]
		o3 := out[(r+3)*outW : (r+3)*outW+outW]
		for j := 0; j < outW; j++ {
			row := l.w[j*stride : j*stride+inW]
			b := l.w[j*stride+inW]
			s0, s1, s2, s3 := b, b, b, b
			for i, w := range row {
				s0 += w * x0[i]
				s1 += w * x1[i]
				s2 += w * x2[i]
				s3 += w * x3[i]
			}
			o0[j], o1[j], o2[j], o3[j] = s0, s1, s2, s3
		}
	}
	for ; r < rows; r++ {
		x := in[r*inW : r*inW+inW]
		o := out[r*outW : r*outW+outW]
		for j := 0; j < outW; j++ {
			row := l.w[j*stride : j*stride+inW]
			sum := l.w[j*stride+inW]
			for i, w := range row {
				sum += w * x[i]
			}
			o[j] = sum
		}
	}
	l.act.applyBatch(out[:rows*outW])
}

// TrainBatch performs one mini-batch gradient step: it forward-passes
// rows examples, backpropagates all of them, and applies a single
// momentum update with the gradient averaged over the batch
// (Equations 3.1/3.2 with the sum over the batch in ∂E/∂w). xs and
// targets are flat row-major matrices (rows × Inputs, rows × Outputs).
// It returns the mean per-example squared error (Σ(o−t)²/2, averaged
// over rows) measured before the update.
//
// With rows == 1 this is the same update as Train up to floating-point
// association; larger batches trade the paper's per-example stochastic
// updates for fewer, cheaper steps.
func (n *Network) TrainBatch(xs, targets []float64, rows int, lr float64, s *Scratch) float64 {
	if rows <= 0 {
		panic("ann: TrainBatch needs at least one row")
	}
	if len(targets) != rows*n.cfg.Outputs {
		panic(fmt.Sprintf("ann: batch of %d targets is not %d rows × %d outputs", len(targets), rows, n.cfg.Outputs))
	}
	if s == nil {
		s = NewScratch()
	}
	// Forward, keeping every layer's activations for the backward pass
	// (ensure with backward=true also zeroes the gradient accumulator).
	// Training always runs the exact kernel regardless of cfg.Kernel:
	// checkpoints and training curves stay bit-identical.
	s.ensure(n, rows, true)
	n.forwardBatchExact(xs, rows, s)

	// Output-layer deltas: δ = (o - t) · f'(o).
	lastIdx := len(n.layers) - 1
	last := n.layers[lastIdx]
	outAct := s.acts[lastIdx]
	outDelta := s.deltas[lastIdx]
	var se float64
	for k, o := range outAct[:rows*last.out] {
		e := o - targets[k]
		se += e * e
		outDelta[k] = e * last.act.derivFromOutput(o)
	}

	// Hidden-layer deltas, back to front.
	for li := lastIdx - 1; li >= 0; li-- {
		l, next := n.layers[li], n.layers[li+1]
		stride := next.in + 1
		acts := s.acts[li]
		deltas := s.deltas[li]
		nextDeltas := s.deltas[li+1]
		for r := 0; r < rows; r++ {
			nd := nextDeltas[r*next.out : r*next.out+next.out]
			base := r * l.out
			for j := 0; j < l.out; j++ {
				var sum float64
				for k, dk := range nd {
					sum += next.w[k*stride+j] * dk
				}
				deltas[base+j] = sum * l.act.derivFromOutput(acts[base+j])
			}
		}
	}

	// Gradient accumulation: ∂E/∂w[j][i] = Σ_rows δ[j]·input[i].
	input := xs
	inW := n.cfg.Inputs
	for li, l := range n.layers {
		stride := l.in + 1
		deltas := s.deltas[li]
		for r := 0; r < rows; r++ {
			x := input[r*inW : r*inW+inW]
			for j := 0; j < l.out; j++ {
				d := deltas[r*l.out+j]
				if d == 0 {
					continue
				}
				g := s.grad[l.off+j*stride : l.off+j*stride+stride]
				for i, xi := range x {
					g[i] += d * xi
				}
				g[inW] += d // bias input is 1
			}
		}
		input = s.acts[li]
		inW = l.out
	}

	// One momentum update with the batch-averaged gradient:
	// Δw = -η/rows · Σ ∂E/∂w + α Δw_prev.
	scale := lr / float64(rows)
	mom := n.cfg.Momentum
	for i, g := range s.grad[:len(n.w)] {
		dw := -scale*g + mom*n.dwPrev[i]
		n.w[i] += dw
		n.dwPrev[i] = dw
	}
	return se / 2 / float64(rows)
}
