package ann

import "repro/internal/cpufeat"

// hidden16AVX2 runs rows forward passes of one 16-unit layer: for each
// row, dst[r*16+j] = bias[j] + Σ_i xs[r*in+i]·wt[i*16+j], accumulated
// in ascending input order with one float32 rounding per multiply and
// per add — exactly the op sequence of the portable forwardBatch32
// loops, so the two paths produce identical bits (asserted by
// TestKernelVectorScalarParity). wt is the transpose32 layout:
// in input-major rows of 16 weights followed by one bias row.
//
//go:noescape
func hidden16AVX2(wt *float32, xs *float32, rows, in int, dst *float32)

// kernelAsm16 reports whether the AVX2 16-unit layer kernel applies.
func kernelAsm16(l *layer, rows int) bool {
	return cpufeat.AVX2 && l.out == 16 && l.in > 0 && rows > 0
}
