package ann

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func kernelTestNet(t testing.TB, hiddenAct Activation) (*Network, []float64, int) {
	t.Helper()
	cfg := Config{
		Inputs: 13, Hidden: []int{16}, Outputs: 2,
		HiddenAct: hiddenAct, OutputAct: Linear,
		LearningRate: 0.001, Momentum: 0.5, InitRange: 0.8, Seed: 11,
	}
	n := New(cfg)
	rng := stats.NewRNG(99)
	const rows = 1024
	xs := make([]float64, rows*cfg.Inputs)
	for i := range xs {
		xs[i] = rng.Float64() // encoded design points live in [0,1)
	}
	return n, xs, rows
}

func TestKernelModeRoundTrip(t *testing.T) {
	for _, m := range []KernelMode{KernelExact, KernelFast, KernelFast32} {
		got, err := ParseKernelMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseKernelMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if got, err := ParseKernelMode(""); err != nil || got != KernelExact {
		t.Errorf("ParseKernelMode(\"\") = %v, %v; want exact", got, err)
	}
	if _, err := ParseKernelMode("turbo"); err == nil {
		t.Error("ParseKernelMode(turbo) should fail")
	}
	var m KernelMode
	if err := m.UnmarshalText([]byte("fast32")); err != nil || m != KernelFast32 {
		t.Errorf("UnmarshalText(fast32) = %v, %v", m, err)
	}
}

// TestKernelExactDelegation pins that mode KernelExact through the
// kernel entry point is bit-identical to the plain ForwardBatch path.
func TestKernelExactDelegation(t *testing.T) {
	n, xs, rows := kernelTestNet(t, Sigmoid)
	a := n.ForwardBatch(xs, rows, NewScratch())
	b := n.ForwardBatchKernel(xs, rows, NewScratch(), KernelExact)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("exact kernel diverged from ForwardBatch at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestFastKernelsWithinBound asserts every fast-tier output is within
// the derived FastErrorBounds of the exact kernel, for both
// activations.
func TestFastKernelsWithinBound(t *testing.T) {
	for _, act := range []Activation{Sigmoid, Tanh} {
		n, xs, rows := kernelTestNet(t, act)
		boundFast, boundFast32 := n.FastErrorBounds()
		exact := append([]float64(nil), n.ForwardBatchKernel(xs, rows, NewScratch(), KernelExact)...)
		for _, tc := range []struct {
			mode  KernelMode
			bound float64
		}{{KernelFast, boundFast}, {KernelFast32, boundFast32}} {
			got := n.ForwardBatchKernel(xs, rows, NewScratch(), tc.mode)
			worst := 0.0
			for i := range exact {
				d := math.Abs(got[i] - exact[i])
				if d > worst {
					worst = d
				}
				if d > tc.bound {
					t.Fatalf("%s/%s output %d: |%g - %g| = %.3g exceeds bound %.3g",
						act, tc.mode, i, got[i], exact[i], d, tc.bound)
				}
			}
			t.Logf("%s/%s worst abs error %.3g (bound %.3g)", act, tc.mode, worst, tc.bound)
		}
	}
}

// TestKernelBatchSplitBitIdentity pins the chunking invariant the
// sweep engine relies on: within a mode, running a batch in one call
// or in any sequence of sub-batches yields identical bits.
func TestKernelBatchSplitBitIdentity(t *testing.T) {
	n, xs, rows := kernelTestNet(t, Sigmoid)
	outW := n.cfg.Outputs
	for _, mode := range []KernelMode{KernelExact, KernelFast, KernelFast32} {
		whole := append([]float64(nil), n.ForwardBatchKernel(xs, rows, NewScratch(), mode)...)
		for _, chunk := range []int{1, 3, 4, 17, 64, 1000} {
			s := NewScratch()
			got := make([]float64, 0, rows*outW)
			for r := 0; r < rows; r += chunk {
				end := r + chunk
				if end > rows {
					end = rows
				}
				out := n.ForwardBatchKernel(xs[r*n.cfg.Inputs:end*n.cfg.Inputs], end-r, s, mode)
				got = append(got, out[:(end-r)*outW]...)
			}
			for i := range whole {
				if math.Float64bits(whole[i]) != math.Float64bits(got[i]) {
					t.Fatalf("%s chunk=%d: output %d differs: %x vs %x",
						mode, chunk, i, math.Float64bits(whole[i]), math.Float64bits(got[i]))
				}
			}
		}
	}
}

// TestKernelVectorScalarParity pins the contract of the optional
// vector kernels: the fast32 tier's bits are *defined* by the portable
// Go loops, and any accelerated path (hidden16AVX2 + the mathx slice
// kernels on amd64) must reproduce them exactly. The expected values
// are computed by driving the portable per-layer kernels directly, so
// on machines where the vector path is live this is an asm-vs-Go
// bit-parity test; elsewhere it is a tautology and always passes.
func TestKernelVectorScalarParity(t *testing.T) {
	for _, act := range []Activation{Sigmoid, Tanh} {
		n, xs, rows := kernelTestNet(t, act)
		got := n.ForwardBatchKernel(xs, rows, NewScratch(), KernelFast32)

		// Portable reference: per-call float32 rounding of weights and
		// inputs, then the scalar blocked loops for every layer.
		w32 := make([]float32, len(n.w))
		for i, w := range n.w {
			w32[i] = float32(w)
		}
		in := make([]float32, len(xs))
		for i, x := range xs {
			in[i] = float32(x)
		}
		var out []float32
		for _, l := range n.layers {
			out = make([]float32, rows*l.out)
			l.forwardBatch32(w32, in, rows, out)
			in = out
		}
		for i, v := range out {
			if math.Float64bits(got[i]) != math.Float64bits(float64(v)) {
				t.Fatalf("%s: fast32 output %d: vector path %x, portable path %x",
					act, i, math.Float64bits(got[i]), math.Float64bits(float64(v)))
			}
		}
	}
}

// TestTrainingIgnoresKernelConfig pins that a fast Config.Kernel never
// leaks into training: weights after training are bit-identical to the
// exact-configured network's.
func TestTrainingIgnoresKernelConfig(t *testing.T) {
	build := func(mode KernelMode) *Network {
		cfg := Config{
			Inputs: 4, Hidden: []int{8}, Outputs: 1,
			HiddenAct: Sigmoid, OutputAct: Linear,
			LearningRate: 0.01, Momentum: 0.5, InitRange: 0.1, Seed: 7,
			Kernel: mode,
		}
		n := New(cfg)
		rng := stats.NewRNG(1)
		const rows = 32
		xs := make([]float64, rows*4)
		ys := make([]float64, rows)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		for i := range ys {
			ys[i] = xs[i*4] + 0.5*xs[i*4+1]
		}
		s := NewScratch()
		for epoch := 0; epoch < 20; epoch++ {
			n.TrainBatch(xs, ys, rows, 0.01, s)
		}
		return n
	}
	a, b := build(KernelExact), build(KernelFast32)
	for i := range a.w {
		if math.Float64bits(a.w[i]) != math.Float64bits(b.w[i]) {
			t.Fatalf("training diverged under fast32 config at weight %d: %g vs %g", i, a.w[i], b.w[i])
		}
	}
}

// TestSnapshotFlatRoundTrip pins the flat snapshot path against the
// per-layer one.
func TestSnapshotFlatRoundTrip(t *testing.T) {
	n, xs, _ := kernelTestNet(t, Sigmoid)
	flat := n.SnapshotInto(nil)
	layered := n.Snapshot()
	// Perturb, then restore through the flat path.
	for i := range n.w {
		n.w[i] += 1
	}
	n.dwPrev[0] = 42
	n.RestoreFlat(flat)
	if n.dwPrev[0] != 0 {
		t.Error("RestoreFlat must clear momentum state")
	}
	got := n.Snapshot()
	for li := range layered {
		for i := range layered[li] {
			if layered[li][i] != got[li][i] {
				t.Fatalf("layer %d weight %d not restored: %g vs %g", li, i, got[li][i], layered[li][i])
			}
		}
	}
	// Reuse: a second SnapshotInto must not allocate a new buffer.
	again := n.SnapshotInto(flat)
	if &again[0] != &flat[0] {
		t.Error("SnapshotInto should reuse the provided buffer")
	}
	_ = xs
}
