package ann

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// identityScaler stands in for the target unscaler in tests where
// targets are already in their natural range.
type identityScaler struct{}

func (identityScaler) Unscale(v float64) float64 { return v }

// makeRegressionData builds a smooth 2-D regression task with targets
// in (0, 1.2] so percentage error is well defined.
func makeRegressionData(n int, seed uint64) *Dataset {
	rng := stats.NewRNG(seed)
	ds := &Dataset{}
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		y := 0.2 + 0.5*a + 0.3*b*b
		ds.Append([]float64{a, b}, []float64{y}, y)
	}
	return ds
}

func TestDatasetSubset(t *testing.T) {
	ds := makeRegressionData(10, 1)
	s := ds.Subset([]int{2, 5, 7})
	if s.Len() != 3 {
		t.Fatalf("subset length %d", s.Len())
	}
	if s.Raw[1] != ds.Raw[5] {
		t.Fatal("subset misaligned")
	}
}

func TestTrainEarlyStoppingLearns(t *testing.T) {
	train := makeRegressionData(300, 2)
	es := makeRegressionData(80, 3)
	cfg := smallConfig(2, 1)
	cfg.LearningRate = 0.2
	n := New(cfg)
	opts := TrainOpts{MaxEpochs: 300, Patience: 40, LRDecay: 0.999, Seed: 4}
	res, err := TrainEarlyStopping(n, train, es, identityScaler{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestESErr > 4 {
		t.Fatalf("ES error %v%% after training, want < 4%%", res.BestESErr)
	}
	if res.BestEpoch == 0 || res.Epochs < res.BestEpoch {
		t.Fatalf("inconsistent result: %+v", res)
	}
}

func TestEarlyStoppingRestoresBestWeights(t *testing.T) {
	train := makeRegressionData(200, 5)
	es := makeRegressionData(60, 6)
	cfg := smallConfig(2, 1)
	cfg.LearningRate = 0.3
	n := New(cfg)
	opts := TrainOpts{MaxEpochs: 200, Patience: 10, LRDecay: 1, Seed: 7}
	res, err := TrainEarlyStopping(n, train, es, identityScaler{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The restored network's ES error must equal the best recorded one.
	got := MeanPercentError(n, es, identityScaler{})
	if math.Abs(got-res.BestESErr) > 1e-9 {
		t.Fatalf("restored ES error %v != best %v", got, res.BestESErr)
	}
}

func TestEarlyStoppingStopsBeforeMaxEpochs(t *testing.T) {
	// On a trivially learnable task with tiny patience, training should
	// halt long before MaxEpochs.
	train := makeRegressionData(100, 8)
	es := makeRegressionData(40, 9)
	cfg := smallConfig(2, 1)
	cfg.LearningRate = 0.3
	n := New(cfg)
	opts := TrainOpts{MaxEpochs: 5000, Patience: 5, LRDecay: 1, Seed: 10}
	res, err := TrainEarlyStopping(n, train, es, identityScaler{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs >= 5000 {
		t.Fatal("early stopping never triggered")
	}
}

func TestTrainRejectsEmptySets(t *testing.T) {
	n := New(smallConfig(2, 1))
	good := makeRegressionData(20, 11)
	if _, err := TrainEarlyStopping(n, &Dataset{}, good, identityScaler{}, DefaultTrainOpts()); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := TrainEarlyStopping(n, good, &Dataset{}, identityScaler{}, DefaultTrainOpts()); err == nil {
		t.Fatal("empty ES set accepted")
	}
	bad := DefaultTrainOpts()
	bad.MaxEpochs = 0
	if _, err := TrainEarlyStopping(n, good, good, identityScaler{}, bad); err == nil {
		t.Fatal("zero MaxEpochs accepted")
	}
}

func TestWeightedPresentationFavorsSmallTargets(t *testing.T) {
	// Two clusters: tiny targets (0.05) and large ones (1.0). With
	// presentation ∝ 1/target, the tiny-target cluster receives ~20×
	// the presentations and should end with much lower percentage
	// error than under uniform presentation.
	build := func(weighted bool) float64 {
		ds := &Dataset{}
		rng := stats.NewRNG(12)
		for i := 0; i < 200; i++ {
			x := rng.Float64()
			var y float64
			if i%2 == 0 {
				y = 0.05 + 0.01*x
			} else {
				y = 1.0 + 0.2*x
			}
			ds.Append([]float64{x, float64(i % 2)}, []float64{y}, y)
		}
		es := ds.Subset([]int{0, 1, 2, 3, 4, 5, 6, 7})
		cfg := smallConfig(2, 1)
		cfg.LearningRate = 0.05
		cfg.Seed = 14
		n := New(cfg)
		opts := TrainOpts{MaxEpochs: 150, Patience: 150, LRDecay: 1,
			WeightedPresentation: weighted, Seed: 15}
		if _, err := TrainEarlyStopping(n, ds, es, identityScaler{}, opts); err != nil {
			t.Fatal(err)
		}
		// Percentage error on the tiny-target half only.
		var sum float64
		count := 0
		for i := 0; i < ds.Len(); i += 2 {
			pred := n.Forward(ds.X[i])[0]
			sum += math.Abs(pred-ds.Raw[i]) / ds.Raw[i] * 100
			count++
		}
		return sum / float64(count)
	}
	weighted := build(true)
	uniform := build(false)
	if weighted >= uniform {
		t.Fatalf("1/target presentation did not help small targets: weighted %v%% vs uniform %v%%",
			weighted, uniform)
	}
}

func TestMeanPercentErrorSkipsZeroTargets(t *testing.T) {
	n := New(smallConfig(1, 1))
	ds := &Dataset{}
	ds.Append([]float64{0.5}, []float64{0}, 0) // must be skipped
	ds.Append([]float64{0.5}, []float64{1}, 1)
	got := MeanPercentError(n, ds, identityScaler{})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("zero target not skipped: %v", got)
	}
	if len(PercentErrors(n, ds, identityScaler{})) != 1 {
		t.Fatal("PercentErrors should skip the zero-target example")
	}
}

func TestTrainOptsPresets(t *testing.T) {
	d := DefaultTrainOpts()
	if d.MaxEpochs <= 0 || d.Patience <= 0 {
		t.Fatal("default opts degenerate")
	}
	p := PaperTrainOpts()
	if !p.WeightedPresentation || p.LRDecay != 1 {
		t.Fatal("paper opts must use weighted presentation at constant rate")
	}
}
