package stats

import (
	"math"
	"testing"
)

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	r := NewRNG(31)
	n := 200000
	counts := make([]float64, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Draw(r)]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total
		got := counts[i] / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d frequency %.4f, want %.4f", i, got, want)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a := NewAlias([]float64{3.5})
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Draw(r) != 0 {
			t.Fatal("single-outcome alias returned nonzero index")
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a := NewAlias([]float64{0, 1, 0, 1})
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := a.Draw(r)
		if v == 0 || v == 2 {
			t.Fatalf("drew zero-weight outcome %d", v)
		}
	}
}

func TestAliasExtremeRatio(t *testing.T) {
	// The 1/IPC presentation weights can span two orders of magnitude;
	// the table must stay well-formed.
	a := NewAlias([]float64{0.01, 1, 100})
	r := NewRNG(3)
	counts := make([]int, 3)
	for i := 0; i < 300000; i++ {
		counts[a.Draw(r)]++
	}
	if counts[2] < 290000 {
		t.Fatalf("heaviest outcome drawn only %d times", counts[2])
	}
	if counts[0] == 0 {
		t.Log("lightest outcome never drawn in 300k (acceptable: p≈1e-4)")
	}
}

func TestAliasPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"negative": {1, -1},
		"all-zero": {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%s) did not panic", name)
				}
			}()
			NewAlias(weights)
		}()
	}
}

func TestAliasLen(t *testing.T) {
	if NewAlias([]float64{1, 1, 1}).Len() != 3 {
		t.Fatal("Len mismatch")
	}
}
