package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGKnownSequenceStable(t *testing.T) {
	// Pin the first outputs so cross-platform reproducibility
	// regressions are caught immediately (results files depend on it).
	r := NewRNG(42)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := NewRNG(42)
	want := []uint64{r2.Uint64(), r2.Uint64(), r2.Uint64()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sequence not stable at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) digit %d count %d too skewed", d, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRangeWithin(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	n := 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		ss += v * v
	}
	mean := sum / float64(n)
	variance := ss/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%50) + 1
		p := NewRNG(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%50) + 1
		want := NewRNG(seed).Perm(size)
		got := make([]int, size)
		NewRNG(seed).PermInto(got)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestSampleWithoutReplacementProperties(t *testing.T) {
	check := func(seed uint64, a, b uint8) bool {
		n := int(a%100) + 1
		k := int(b) % (n + 1)
		s := NewRNG(seed).SampleWithoutReplacement(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementPanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized sample did not panic")
		}
	}()
	NewRNG(1).SampleWithoutReplacement(3, 4)
}

func TestSplitDecorrelates(t *testing.T) {
	r := NewRNG(21)
	s := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream tracked parent %d times", same)
	}
}

func TestStateRestoreResumesSequence(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 17; i++ {
		r.Uint64() // advance past the seed state
	}
	saved := r.State()
	var want [32]uint64
	for i := range want {
		want[i] = r.Uint64()
	}
	fresh := NewRNG(0)
	if err := fresh.Restore(saved); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := fresh.Uint64(); got != want[i] {
			t.Fatalf("restored stream diverged at draw %d: got %d, want %d", i, got, want[i])
		}
	}
}

func TestRestoreRejectsZeroState(t *testing.T) {
	if err := NewRNG(1).Restore([4]uint64{}); err == nil {
		t.Fatal("all-zero state accepted")
	}
}
