package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs (the paper
// reports the SD of error over a full design space, i.e. a population,
// not a sample). Returns 0 for fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MeanStd returns Mean and StdDev in one pass over xs.
func MeanStd(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var s, ss float64
	for _, x := range xs {
		s += x
	}
	mean = s / float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// Min returns the minimum of xs; it panics on an empty slice because a
// silent zero would corrupt minimax normalization.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanAbsPercentError returns the mean of |pred-true|/true*100 over the
// paired slices, the error metric used throughout the paper. Pairs with
// a zero true value are skipped (they would make the metric undefined);
// the simulator never produces a zero IPC for a non-empty trace.
func MeanAbsPercentError(pred, truth []float64) float64 {
	return Mean(AbsPercentErrors(pred, truth))
}

// AbsPercentErrors returns the per-point |pred-true|/true*100 values.
func AbsPercentErrors(pred, truth []float64) []float64 {
	if len(pred) != len(truth) {
		panic("stats: mismatched prediction/truth lengths")
	}
	out := make([]float64, 0, len(pred))
	for i := range pred {
		if truth[i] == 0 {
			continue
		}
		out = append(out, math.Abs(pred[i]-truth[i])/math.Abs(truth[i])*100)
	}
	return out
}

// Correlation returns the Pearson correlation coefficient of the paired
// slices, used by the multi-task experiments to verify that auxiliary
// targets are in fact correlated with IPC.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
