package stats

// Alias implements Vose's alias method for O(1) sampling from a discrete
// distribution. The paper trains its networks for percentage error by
// presenting each training point "at a frequency proportional to the
// inverse of its IPC" (§3.3); Alias makes those weighted presentations
// cheap even for thousands of points.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from the (unnormalized, non-negative)
// weights. It panics if weights is empty, if any weight is negative, or
// if all weights are zero, because sampling would be undefined.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("stats: NewAlias with no weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: NewAlias with negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("stats: NewAlias with all-zero weights")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scale weights so the average bucket holds probability 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Whatever remains is (numerically) exactly 1.
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1
	}
	return a
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// Draw returns an index sampled proportionally to the construction
// weights, consuming randomness from r.
func (a *Alias) Draw(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
