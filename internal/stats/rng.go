// Package stats provides the small statistical toolkit shared by the
// simulator, the workload generator, and the modeling code: a fast,
// platform-stable pseudo-random number generator, summary statistics,
// and weighted (alias-method) sampling.
//
// All randomness in this repository flows through stats.RNG so that every
// experiment is reproducible bit-for-bit from its seeds, independent of
// the Go version or platform.
package stats

import (
	"errors"
	"math"
)

// RNG is a xoshiro256** pseudo-random number generator seeded via
// SplitMix64. It is deterministic across platforms and Go releases,
// unlike math/rand's unexported generator, which is why the repository
// does not use math/rand for anything that affects results.
//
// RNG is not safe for concurrent use; give each goroutine its own
// instance (see Split).
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, following
// the initialization recommended by the xoshiro authors.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// A zero state would be degenerate; SplitMix64 cannot produce four
	// zeros from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output because it reseeds through
// SplitMix64 rather than sharing state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// State returns the generator's full internal state, so a paused
// computation (an exploration checkpoint, say) can later resume the
// exact same random sequence via Restore.
func (r *RNG) State() [4]uint64 { return r.s }

// Restore overwrites the generator's state with one previously returned
// by State. The all-zero state is degenerate (the sequence would be
// stuck at zero forever) and is rejected.
func (r *RNG) Restore(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errors.New("stats: cannot restore the degenerate all-zero RNG state")
	}
	r.s = s
	return nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the xoshiro256** sequence.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Multiply-shift rejection-free bound; bias is negligible for the
	// n (< 2^31) used in this repository, and determinism matters more
	// than the last ulp of uniformity here.
	return int((r.Uint64() >> 33) % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate using the polar
// Box–Muller transform (deterministic, no cached spare to keep the
// state minimal and Split-friendly).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n), Fisher–Yates shuffled.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a random permutation of [0, len(p)), reusing
// the caller's buffer — the allocation-free Perm for per-epoch training
// shuffles. It draws exactly the same sequence as Perm for the same
// length.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct integers drawn uniformly
// from [0, n). For k close to n it shuffles; for sparse draws it uses a
// set-based rejection loop, so it is efficient at both extremes (the
// design spaces here have n in the tens of thousands and k in the
// hundreds).
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("stats: sample larger than population")
	}
	if k > n/3 {
		p := r.Perm(n)
		return p[:k]
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
