package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestStdDevKnown(t *testing.T) {
	// Population SD of {2,4,4,4,5,5,7,9} is exactly 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestStdDevDegenerate(t *testing.T) {
	if StdDev(nil) != 0 || StdDev([]float64{3}) != 0 {
		t.Fatal("StdDev of degenerate input should be 0")
	}
	if StdDev([]float64{4, 4, 4}) != 0 {
		t.Fatal("StdDev of constants should be 0")
	}
}

func TestMeanStdMatchesSeparate(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		xs := make([]float64, int(n%40)+2)
		for i := range xs {
			xs[i] = r.Range(-10, 10)
		}
		m, sd := MeanStd(xs)
		return almostEqual(m, Mean(xs), 1e-9) && almostEqual(sd, StdDev(xs), 1e-9)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
}

func TestPercentileUnsortedInputUnchanged(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	_ = Percentile(xs, 50)
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestAbsPercentErrors(t *testing.T) {
	pred := []float64{1.1, 2.0, 0}
	truth := []float64{1.0, 2.5, 0} // zero-truth pair skipped
	errs := AbsPercentErrors(pred, truth)
	if len(errs) != 2 {
		t.Fatalf("expected 2 errors, got %d", len(errs))
	}
	if !almostEqual(errs[0], 10, 1e-9) {
		t.Fatalf("first error %v, want 10", errs[0])
	}
	if !almostEqual(errs[1], 20, 1e-9) {
		t.Fatalf("second error %v, want 20", errs[1])
	}
}

func TestMeanAbsPercentErrorMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	MeanAbsPercentError([]float64{1}, []float64{1, 2})
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v", got)
	}
	if got := Correlation(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Fatalf("constant series correlation = %v, want 0", got)
	}
}
