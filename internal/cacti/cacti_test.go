package cacti

import (
	"testing"
	"testing/quick"
)

func TestAccessTimeMonotoneInSize(t *testing.T) {
	prev := 0.0
	for _, kb := range []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		at := AccessTimeNS(Params{SizeBytes: kb * 1024, BlockBytes: 64, Assoc: 4})
		if at <= prev {
			t.Fatalf("%dKB access time %.3f not greater than previous %.3f", kb, at, prev)
		}
		prev = at
	}
}

func TestAccessTimeGrowsWithAssociativity(t *testing.T) {
	base := AccessTimeNS(Params{SizeBytes: 64 * 1024, BlockBytes: 64, Assoc: 1})
	high := AccessTimeNS(Params{SizeBytes: 64 * 1024, BlockBytes: 64, Assoc: 16})
	if high <= base {
		t.Fatalf("16-way (%.3f) not slower than direct-mapped (%.3f)", high, base)
	}
}

func TestPaperOperatingPoints(t *testing.T) {
	// Table 4.1 fixes a 32 KB L1I at "2 cycles" on the 4 GHz machine;
	// the model should land within one cycle of that.
	c := Cycles(Params{SizeBytes: 32 * 1024, BlockBytes: 32, Assoc: 2}, 4e9)
	if c < 2 || c > 3 {
		t.Fatalf("32KB L1 at 4GHz = %d cycles, want 2-3", c)
	}
	// Large L2s should be an order of magnitude slower.
	l2 := Cycles(Params{SizeBytes: 2048 * 1024, BlockBytes: 128, Assoc: 16}, 4e9)
	if l2 < 10 || l2 > 20 {
		t.Fatalf("2MB L2 at 4GHz = %d cycles, want 10-20", l2)
	}
}

func TestCyclesScaleWithFrequency(t *testing.T) {
	p := Params{SizeBytes: 256 * 1024, BlockBytes: 64, Assoc: 4}
	at2 := Cycles(p, 2e9)
	at4 := Cycles(p, 4e9)
	if at4 < at2 {
		t.Fatalf("higher clock yields fewer cycles: %d @4GHz < %d @2GHz", at4, at2)
	}
	// Cycle counts should roughly double with clock for large arrays.
	if at2*3 < at4 {
		t.Fatalf("cycle scaling implausible: %d @2GHz vs %d @4GHz", at2, at4)
	}
}

func TestCyclesAtLeastOne(t *testing.T) {
	check := func(szExp, blkExp, assocExp uint8) bool {
		kb := 1 << (szExp%9 + 2)     // 4KB..1MB
		blk := 1 << (blkExp%3 + 5)   // 32..128
		assoc := 1 << (assocExp % 5) // 1..16
		if kb*1024 < blk*assoc {
			return true // geometry invalid; skip
		}
		return Cycles(Params{SizeBytes: kb * 1024, BlockBytes: blk, Assoc: assoc}, 2e9) >= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnInvalid(t *testing.T) {
	for name, p := range map[string]Params{
		"zero size":  {SizeBytes: 0, BlockBytes: 64, Assoc: 1},
		"zero block": {SizeBytes: 1024, BlockBytes: 0, Assoc: 1},
		"zero assoc": {SizeBytes: 1024, BlockBytes: 64, Assoc: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			AccessTimeNS(p)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero frequency did not panic")
			}
		}()
		Cycles(Params{SizeBytes: 1024, BlockBytes: 64, Assoc: 1}, 0)
	}()
}
