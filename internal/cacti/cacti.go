// Package cacti provides an analytic cache access-time model in the
// spirit of CACTI 3.2 (Wilton & Jouppi), which the paper uses to derive
// the latencies of every cache configuration at 90 nm. We do not
// reproduce CACTI's transistor-level RC networks; instead we model the
// same first-order structure — decoder, wordline, bitline, sense amps,
// tag compare and output mux — with terms that scale the same way with
// capacity, associativity and block size. What the study needs from
// CACTI is the *relationship* "bigger/more associative caches are
// slower, in cycles that depend on clock frequency", and that is what
// this package supplies deterministically.
package cacti

import "math"

// Params describes one cache organization to be timed.
type Params struct {
	SizeBytes  int // total capacity
	BlockBytes int // line size
	Assoc      int // ways (>=1, direct-mapped = 1)
}

// AccessTimeNS returns the modeled access time in nanoseconds for a
// 90 nm process. The functional form follows the CACTI decomposition:
//
//	t = t_decode(sets) + t_wordline(rowWidth) + t_bitline(rows) +
//	    t_sense + t_tagCompare(assoc) + t_muxDriver(assoc, block)
//
// with logarithmic decoder depth and square-root array partitioning, the
// standard first-order behaviour of SRAM arrays.
func AccessTimeNS(p Params) float64 {
	if p.SizeBytes <= 0 || p.BlockBytes <= 0 || p.Assoc <= 0 {
		panic("cacti: non-positive cache parameter")
	}
	sets := float64(p.SizeBytes) / float64(p.BlockBytes*p.Assoc)
	if sets < 1 {
		sets = 1
	}
	// Square-root partitioning: the array is folded so rows ≈ cols.
	bitsPerRowBlock := float64(p.BlockBytes*8) * float64(p.Assoc)
	rows := math.Sqrt(sets * bitsPerRowBlock / 128)
	if rows < 1 {
		rows = 1
	}

	// Constants calibrated at 90 nm so the model reproduces the
	// operating points the paper quotes: a 32 KB L1 costs 2–3 cycles at
	// 4 GHz, a 2 MB 16-way L2 about 14 cycles, with monotone growth in
	// capacity and associativity between them.
	const (
		tBase     = 0.15   // ns: sense amp + output latch overhead
		tBitline  = 0.0085 // per folded row: wire RC dominates big arrays
		tDecode   = 0.010  // per doubling of sets
		tTag      = 0.020  // per doubling of ways compared
		tWordline = 0.004  // per doubling of row width
	)
	t := tBase
	t += tBitline * rows
	t += tDecode * math.Log2(sets+1)
	t += tTag * math.Log2(float64(p.Assoc)+1)
	t += tWordline * math.Log2(bitsPerRowBlock)
	return t
}

// Cycles returns the pipeline latency, in whole cycles at the given
// clock frequency (Hz), of a cache with the given organization. The
// result is always at least 1; L1-sized caches at 4 GHz come out at 2–3
// cycles and large L2s in the low tens, consistent with the latencies
// the paper's fixed parameters quote (e.g. "L1 ICache 32KB/2 cycles").
func Cycles(p Params, freqHz float64) int {
	if freqHz <= 0 {
		panic("cacti: non-positive frequency")
	}
	c := int(math.Ceil(AccessTimeNS(p) * freqHz / 1e9))
	if c < 1 {
		c = 1
	}
	return c
}
