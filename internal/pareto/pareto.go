// Package pareto is the repo's dominance algebra: the Point type, the
// deterministic total order on single metrics, weak Pareto dominance
// over metric vectors, and the streaming Frontier reducer. It was
// extracted from internal/sweep so that acquisition (internal/core)
// can target predicted frontiers without importing the sweep engine —
// sweep depends on core, so the algebra has to live below both.
//
// Every operation here is a pure function of the point *set*: the
// frontier membership rules do not depend on arrival order, chunking
// or merge order, which is the foundation of the sweep engine's (and
// the acquisition subsystem's) bit-identity guarantee.
package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Point is one scored design point: its flat index in the design space
// and its value on every metric, in metric-column order. The JSON tags
// are the sweep wire format — do not change them.
type Point struct {
	Index  int       `json:"point"`
	Values []float64 `json:"values"`
}

// Better reports whether value a beats value b on one metric, with the
// deterministic tie-break on flat index that makes every reduction a
// total order: equal values rank the lower index first.
func Better(minimize bool, a, b float64, ai, bi int) bool {
	if a != b {
		if minimize {
			return a < b
		}
		return a > b
	}
	return ai < bi
}

// Dominates reports whether metric vector a weakly dominates b: at
// least as good on every metric and strictly better on one.
func Dominates(minimize []bool, a, b []float64) bool {
	strict := false
	for m := range a {
		switch {
		case a[m] == b[m]:
		case Better(minimize[m], a[m], b[m], 0, 0):
			strict = true
		default:
			return false
		}
	}
	return strict
}

// EqualValues reports whether two metric vectors are exactly equal.
func EqualValues(a, b []float64) bool {
	for m := range a {
		if a[m] != b[m] {
			return false
		}
	}
	return true
}

// CheckValues rejects metric vectors that cannot be ranked: NaN
// compares false against everything, so a NaN point would be neither
// dominated nor dominating — it would accumulate on a frontier and
// break the total order — and ±Inf saturates dominance the same way.
// The error names the flat index so the offending design point (or the
// oracle backend that produced it) is identifiable from the message.
func CheckValues(index int, values []float64) error {
	for m, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("pareto: design point %d has non-finite value %v on metric %d; non-finite metrics cannot be ranked", index, v, m)
		}
	}
	return nil
}

// Frontier is the streaming Pareto reducer over every metric at once.
// A point survives iff no other point weakly dominates it; points with
// exactly equal metric vectors collapse onto the lowest index. Both
// rules are properties of the point set, not of arrival order, so the
// frontier is identical for any chunking, worker count, or merge
// order.
type Frontier struct {
	minimize []bool
	pts      []Point
}

// NewFrontier builds an empty frontier ranking by the given per-metric
// directions.
func NewFrontier(minimize []bool) *Frontier {
	return &Frontier{minimize: minimize}
}

// Resume rebuilds a frontier from an already-canonical point set —
// mutually non-dominated, duplicates collapsed — so an accumulated
// frontier (a sweep Partial's, say) can keep reducing at O(|new|·F)
// instead of rebuilding at O(F²) per merge. The slice is adopted, not
// copied.
func Resume(minimize []bool, canonical []Point) *Frontier {
	return &Frontier{minimize: minimize, pts: canonical}
}

// Len returns the current frontier size.
func (f *Frontier) Len() int { return len(f.pts) }

// Offer considers one candidate; values may be a reused buffer — it is
// copied only if the candidate joins the frontier. Non-finite values
// are rejected with an error naming the flat index (see CheckValues);
// a rejected offer leaves the frontier untouched.
//
// Rejections move the dominating point to the front of the scan order:
// a point that dominates once tends to dominate a long run of
// neighboring candidates, so the streaming common case exits after one
// comparison instead of O(frontier). The membership rules are
// properties of the point set, so internal order is free to permute —
// Sorted canonicalizes before anything observable.
func (f *Frontier) Offer(index int, values []float64) error {
	if err := CheckValues(index, values); err != nil {
		return err
	}
	for i := range f.pts {
		q := &f.pts[i]
		if EqualValues(q.Values, values) {
			if index < q.Index {
				q.Index = index // duplicate collapse: lowest index represents the class
			}
			return nil
		}
		if Dominates(f.minimize, q.Values, values) {
			if i > 0 {
				f.pts[0], f.pts[i] = f.pts[i], f.pts[0]
			}
			return nil
		}
	}
	// The candidate survives: evict everything it now dominates.
	kept := f.pts[:0]
	for _, q := range f.pts {
		if !Dominates(f.minimize, values, q.Values) {
			kept = append(kept, q)
		}
	}
	f.pts = append(kept, Point{Index: index, Values: append([]float64(nil), values...)})
	return nil
}

// Merge folds another frontier in.
func (f *Frontier) Merge(o *Frontier) error {
	for _, p := range o.pts {
		if err := f.Offer(p.Index, p.Values); err != nil {
			return err
		}
	}
	return nil
}

// Sorted returns the frontier in ascending index order — the canonical
// rendering every parity test compares bit for bit.
func (f *Frontier) Sorted() []Point {
	sort.Slice(f.pts, func(i, j int) bool { return f.pts[i].Index < f.pts[j].Index })
	return f.pts
}
