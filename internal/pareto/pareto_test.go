package pareto

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func indices(pts []Point) []int {
	out := make([]int, len(pts))
	for i, p := range pts {
		out[i] = p.Index
	}
	return out
}

// TestOfferRejectsNonFinite: NaN and ±Inf values error naming the flat
// index and leave the frontier untouched.
func TestOfferRejectsNonFinite(t *testing.T) {
	f := NewFrontier([]bool{false, true})
	if err := f.Offer(3, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]float64{
		{math.NaN(), 1},
		{1, math.Inf(1)},
		{math.Inf(-1), 1},
	} {
		err := f.Offer(7, bad)
		if err == nil {
			t.Fatalf("offer of %v succeeded", bad)
		}
		if !strings.Contains(err.Error(), "point 7") {
			t.Fatalf("rejection %q does not name point 7", err)
		}
	}
	if got := indices(f.Sorted()); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("rejections disturbed the frontier: %v", got)
	}
}

// TestCheckValuesNamesMetric: the error pinpoints which metric column
// carried the unrankable value.
func TestCheckValuesNamesMetric(t *testing.T) {
	err := CheckValues(12, []float64{0.5, math.NaN(), 1})
	if err == nil {
		t.Fatal("NaN passed CheckValues")
	}
	for _, want := range []string{"point 12", "metric 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if err := CheckValues(12, []float64{0.5, -2, 1}); err != nil {
		t.Fatalf("finite values rejected: %v", err)
	}
}

// TestResumeContinuesReduction: a frontier rebuilt from a canonical
// point set reduces new offers exactly like the frontier that never
// stopped.
func TestResumeContinuesReduction(t *testing.T) {
	dir := []bool{false, true}
	pts := []Point{
		{0, []float64{1, 5}},
		{1, []float64{2, 7}},
		{2, []float64{3, 9}},
		{3, []float64{2.5, 6}},
	}
	full := NewFrontier(dir)
	for _, p := range pts {
		if err := full.Offer(p.Index, p.Values); err != nil {
			t.Fatal(err)
		}
	}
	want := append([]Point(nil), full.Sorted()...)

	half := NewFrontier(dir)
	for _, p := range pts[:2] {
		if err := half.Offer(p.Index, p.Values); err != nil {
			t.Fatal(err)
		}
	}
	resumed := Resume(dir, append([]Point(nil), half.Sorted()...))
	for _, p := range pts[2:] {
		if err := resumed.Offer(p.Index, p.Values); err != nil {
			t.Fatal(err)
		}
	}
	if got := resumed.Sorted(); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed frontier %v != uninterrupted %v", indices(got), indices(want))
	}
}

// TestMergePropagatesRejection: merge is offer-at-scale, so it carries
// the same non-finite rejection.
func TestMergePropagatesRejection(t *testing.T) {
	dir := []bool{true}
	bad := Resume(dir, []Point{{Index: 4, Values: []float64{math.NaN()}}})
	f := NewFrontier(dir)
	if err := f.Merge(bad); err == nil || !strings.Contains(err.Error(), "point 4") {
		t.Fatalf("merge err = %v, want rejection naming point 4", err)
	}
}
