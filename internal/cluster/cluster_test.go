package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/serve"
	"repro/internal/space"
	"repro/internal/stats"
	"repro/internal/sweep"
)

func testSpace() *space.Space {
	return space.New("cluster-synth", []space.Param{
		{Name: "a", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8}},
		{Name: "b", Kind: space.Cardinal, Values: []float64{1, 2, 3, 4, 5}},
		{Name: "c", Kind: space.Continuous, Values: []float64{0.5, 1.0, 1.5}},
		{Name: "mode", Kind: space.Nominal, Levels: []string{"x", "y"}},
	})
}

var (
	bundleOnce sync.Once
	sharedB    *bundle.Bundle
)

// clusterBundle trains one quick model per process; every fake node
// serves it, which is exactly the deployment contract (identical
// registries).
func clusterBundle(t testing.TB) *bundle.Bundle {
	bundleOnce.Do(func() {
		sp := testSpace()
		enc := encoding.NewEncoder(sp)
		rng := stats.NewRNG(19)
		train := sp.Sample(rng, 40)
		x := make([][]float64, len(train))
		y := make([][]float64, len(train))
		for i, idx := range train {
			x[i] = enc.EncodeIndex(idx, nil)
			c := sp.Choices(idx)
			v := 0.4 + 0.3*math.Log2(sp.Value(c, 0)) + 0.1*sp.Value(c, 1)*sp.Value(c, 2)
			if sp.LevelName(c, 3) == "y" {
				v *= 1.25
			}
			y[i] = []float64{v}
		}
		cfg := core.DefaultModelConfig()
		cfg.Train.MaxEpochs = 60
		cfg.Train.Patience = 15
		cfg.Seed = 11
		ens, err := core.TrainEnsemble(x, y, cfg)
		if err != nil {
			panic(err)
		}
		b, err := bundle.New(sp, ens, bundle.Meta{Study: "synth", Metric: "perf"})
		if err != nil {
			panic(err)
		}
		sharedB = b
	})
	return sharedB
}

// newNode spins one in-process serve node holding the shared bundle
// under "synth", optionally wrapped by mw.
func newNode(t *testing.T, mw func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	reg := serve.NewRegistry()
	if _, err := reg.Add("synth", clusterBundle(t), serve.CoalesceOpts{}); err != nil {
		t.Fatal(err)
	}
	var h http.Handler = serve.New(reg)
	if mw != nil {
		h = mw(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return ts
}

// localRun is the single-process ground truth every cluster result
// must match bit for bit.
func localRun(t *testing.T, topk, chunk int) *sweep.Result {
	t.Helper()
	b := clusterBundle(t)
	set, sp, err := sweep.Resolve(sweep.DefaultSpecs([]string{"synth"}),
		map[string]*bundle.Bundle{"synth": b})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run(context.Background(), sp, set, sweep.Config{TopK: topk, ChunkSize: chunk})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// canonJSON renders a result with the timing fields — the only
// legitimately varying ones — zeroed, for byte-exact comparison.
func canonJSON(t *testing.T, res *sweep.Result) []byte {
	t.Helper()
	r := *res
	r.Elapsed, r.PointsPerSec = 0, 0
	buf, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestClusterMatchesSingleProcess is the tentpole guarantee: a
// coordinated sweep over 1, 2 and 3 nodes produces byte-identical
// JSON to the in-process sweep.Run.
func TestClusterMatchesSingleProcess(t *testing.T) {
	want := canonJSON(t, localRun(t, 5, 8))
	for _, n := range []int{1, 2, 3} {
		var nodes []string
		for i := 0; i < n; i++ {
			nodes = append(nodes, newNode(t, nil).URL)
		}
		var progress []int
		coord, err := New(Config{
			Nodes:       nodes,
			Request:     serve.SweepRequest{Model: "synth", TopK: 5, Chunk: 8},
			ShardPoints: 16,
			Logf:        t.Logf,
			OnProgress:  func(done, total int) { progress = append(progress, done) },
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.Run(context.Background())
		if err != nil {
			t.Fatalf("nodes=%d: %v", n, err)
		}
		if got := canonJSON(t, res); !bytes.Equal(got, want) {
			t.Fatalf("nodes=%d: cluster result diverged\ngot  %s\nwant %s", n, got, want)
		}
		for i := 1; i < len(progress); i++ {
			if progress[i] <= progress[i-1] {
				t.Fatalf("nodes=%d: progress not monotone: %v", n, progress)
			}
		}
		if len(progress) == 0 || progress[len(progress)-1] != res.Points {
			t.Fatalf("nodes=%d: progress ended at %v, want %d", n, progress, res.Points)
		}
		if res.PointsPerSec <= 0 || res.Elapsed <= 0 {
			t.Fatalf("nodes=%d: missing throughput stamp", n)
		}
	}
}

// legacyNode simulates a node that predates the binary shard format:
// it strips the Accept header, so the embedded server never answers
// binary and the coordinator must stay on the JSON path for it.
func legacyNode(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del("Accept")
		h.ServeHTTP(w, r)
	})
}

// localKernelRun is localRun with an explicit kernel tier.
func localKernelRun(t *testing.T, topk, chunk int, mode ann.KernelMode) *sweep.Result {
	t.Helper()
	b := clusterBundle(t)
	set, sp, err := sweep.Resolve(sweep.DefaultSpecs([]string{"synth"}),
		map[string]*bundle.Bundle{"synth": b})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run(context.Background(), sp, set, sweep.Config{TopK: topk, ChunkSize: chunk, Kernel: mode})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterMixedModeKernelSweep is the mixed-deployment smoke test:
// a fast32 sweep over one binary-capable node and one legacy
// JSON-only node must (a) negotiate per node — binary flips on for
// the capable node only — and (b) still merge byte-identically to the
// single-process fast32 run, because the kernel tier and the wire
// format are orthogonal to the reduction's bits.
func TestClusterMixedModeKernelSweep(t *testing.T) {
	want := canonJSON(t, localKernelRun(t, 5, 8, ann.KernelFast32))
	modern := newNode(t, nil)
	legacy := newNode(t, legacyNode)
	coord, err := New(Config{
		Nodes:       []string{modern.URL, legacy.URL},
		Request:     serve.SweepRequest{Model: "synth", TopK: 5, Chunk: 8, Kernel: "fast32"},
		ShardPoints: 16,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := canonJSON(t, res); !bytes.Equal(got, want) {
		t.Fatalf("mixed-mode fast32 cluster diverged from local run\ngot  %s\ngot  %s", got, want)
	}
	if res.Kernel != ann.KernelFast32.String() {
		t.Fatalf("result kernel %q, want fast32", res.Kernel)
	}
	if !coord.binaryOK[0].Load() {
		t.Error("binary-capable node never upgraded to the binary wire format")
	}
	if coord.binaryOK[1].Load() {
		t.Error("legacy node must stay on the JSON path")
	}
}

// failingNode wraps a serve handler so shard requests start failing
// after the first `healthy` of them — a node dying mid-sweep. mode
// "500" answers errors; mode "abort" severs the connection like a
// crashed process.
func failingNode(healthy int64, mode string) (func(http.Handler) http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep/shard" && calls.Add(1) > healthy {
				if mode == "abort" {
					panic(http.ErrAbortHandler)
				}
				w.WriteHeader(http.StatusInternalServerError)
				w.Write([]byte(`{"error":"synthetic node failure"}`))
				return
			}
			h.ServeHTTP(w, r)
		})
	}, &calls
}

// TestClusterSurvivesNodeFailure kills one of three nodes mid-sweep —
// both failure styles — and requires the retried, redistributed
// result to stay byte-identical to the single-process run.
func TestClusterSurvivesNodeFailure(t *testing.T) {
	want := canonJSON(t, localRun(t, 5, 8))
	for _, mode := range []string{"500", "abort"} {
		mw, calls := failingNode(1, mode)
		flaky := newNode(t, mw)
		nodes := []string{newNode(t, nil).URL, flaky.URL, newNode(t, nil).URL}
		coord, err := New(Config{
			Nodes:        nodes,
			Request:      serve.SweepRequest{Model: "synth", TopK: 5, Chunk: 8},
			ShardPoints:  16,
			InFlight:     1,
			NodeFailures: 1,
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := coord.Run(context.Background())
		if err != nil {
			t.Fatalf("mode=%s: sweep failed despite two surviving nodes: %v", mode, err)
		}
		if got := canonJSON(t, res); !bytes.Equal(got, want) {
			t.Fatalf("mode=%s: post-failure result diverged\ngot  %s\nwant %s", mode, got, want)
		}
		if calls.Load() < 2 {
			t.Fatalf("mode=%s: flaky node saw %d shard calls; the failure path never ran", mode, calls.Load())
		}
	}
}

// TestClusterProbeDropsBrokenNode: with probing on, a node that
// cannot run shards is excluded up front and the sweep proceeds on
// the healthy ones.
func TestClusterProbeDropsBrokenNode(t *testing.T) {
	want := canonJSON(t, localRun(t, 5, 8))
	mw, _ := failingNode(0, "500") // fails every shard, including the probe
	coord, err := New(Config{
		Nodes:       []string{newNode(t, mw).URL, newNode(t, nil).URL},
		Request:     serve.SweepRequest{Model: "synth", TopK: 5, Chunk: 8},
		ShardPoints: 16,
		Probe:       true,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := canonJSON(t, res); !bytes.Equal(got, want) {
		t.Fatalf("probed result diverged\ngot  %s\nwant %s", got, want)
	}
}

// TestClusterAllNodesFail: when no node can run shards, the sweep
// fails with an error instead of hanging.
func TestClusterAllNodesFail(t *testing.T) {
	mwA, _ := failingNode(0, "500")
	mwB, _ := failingNode(0, "500")
	coord, err := New(Config{
		Nodes:        []string{newNode(t, mwA).URL, newNode(t, mwB).URL},
		Request:      serve.SweepRequest{Model: "synth"},
		ShardPoints:  16,
		InFlight:     1,
		NodeFailures: 1,
		Retries:      2,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "cluster:") {
		t.Fatalf("total failure err = %v", err)
	}
}

// TestClusterRejectedRequestFailsFast: a request every node would
// deterministically 400 (here: a metric reading a missing output
// column) fails the sweep with the server's message instead of
// striking healthy nodes until the retry budget drains.
func TestClusterRejectedRequestFailsFast(t *testing.T) {
	var retirements atomic.Int64
	coord, err := New(Config{
		Nodes: []string{newNode(t, nil).URL, newNode(t, nil).URL},
		Request: serve.SweepRequest{
			Metrics: []sweep.MetricSpec{{Model: "synth", Output: 5}},
		},
		ShardPoints: 16,
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "retiring") {
				retirements.Add(1)
			}
			t.Logf(format, args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "output") {
		t.Fatalf("rejected request err = %v", err)
	}
	if retirements.Load() != 0 {
		t.Fatalf("a deterministic 400 retired %d healthy node(s)", retirements.Load())
	}
	// Bounds every node enforces fail locally, before any dispatch.
	if _, err := New(Config{Nodes: []string{"http://x"}, Request: serve.SweepRequest{Chunk: 1 << 21}}); err == nil || !strings.Contains(err.Error(), "chunk") {
		t.Fatalf("oversized chunk err = %v", err)
	}
}

// TestClusterDiscoveryErrors: a request naming a model no node serves
// fails at discovery, before any shard is dispatched.
func TestClusterDiscoveryErrors(t *testing.T) {
	coord, err := New(Config{
		Nodes:   []string{newNode(t, nil).URL},
		Request: serve.SweepRequest{Model: "nope"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Run(context.Background()); err == nil || !strings.Contains(err.Error(), `model "nope"`) {
		t.Fatalf("unknown model err = %v", err)
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := New(Config{Nodes: []string{"http://a", "http://a"}}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := New(Config{Nodes: []string{"://bad"}}); err == nil {
		t.Fatal("malformed node URL accepted")
	}
}

// TestClusterCancel: cancelling the context aborts the sweep.
func TestClusterCancel(t *testing.T) {
	coord, err := New(Config{
		Nodes:   []string{newNode(t, nil).URL},
		Request: serve.SweepRequest{Model: "synth"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := coord.Run(ctx); err == nil {
		t.Fatal("cancelled sweep returned a result")
	}
}

// TestPlanShards: shards tile [0,size) exactly, in order, with every
// interior boundary on an absolute chunk multiple.
func TestPlanShards(t *testing.T) {
	rng := stats.NewRNG(5)
	for trial := 0; trial < 200; trial++ {
		size := 1 + rng.Intn(5000)
		chunk := 1 + rng.Intn(64)
		shardPts := rng.Intn(3) * (1 + rng.Intn(200)) // 0 = auto, sometimes unaligned
		slots := 1 + rng.Intn(6)
		shards := planShards(size, chunk, shardPts, slots)
		at := 0
		for i, sh := range shards {
			if sh.id != i || sh.start != at || sh.end <= sh.start {
				t.Fatalf("size=%d chunk=%d: shard %d is [%d,%d) at offset %d", size, chunk, i, sh.start, sh.end, at)
			}
			if sh.end != size && sh.end%chunk != 0 {
				t.Fatalf("size=%d chunk=%d: boundary %d not chunk-aligned", size, chunk, sh.end)
			}
			at = sh.end
		}
		if at != size {
			t.Fatalf("size=%d chunk=%d: shards cover up to %d", size, chunk, at)
		}
	}
	// Auto-planned shards are capped: a huge space must not produce
	// shards that outgrow the dispatch timeout.
	for _, sh := range planShards(1<<30, sweep.DefaultChunkSize, 0, 2) {
		if n := sh.end - sh.start; n > DefaultMaxShardPoints+sweep.DefaultChunkSize {
			t.Fatalf("auto shard [%d,%d) has %d points, cap is %d", sh.start, sh.end, n, DefaultMaxShardPoints)
		}
	}
}

// TestSlotPlan: probe weights translate into proportional slots with
// a floor of one, and probe-failed nodes get none.
func TestSlotPlan(t *testing.T) {
	got := slotPlan([]float64{100, 50, 10, -1}, 4)
	want := []int{4, 2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slotPlan = %v, want %v", got, want)
		}
	}
}

// throttlingNode wraps a serve handler so the first `shed` shard
// requests answer 429 with a Retry-After hint — a node under admission
// control pushing back without failing.
func throttlingNode(shed int64) (func(http.Handler) http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/sweep/shard" && calls.Add(1) <= shed {
				w.Header().Set("Retry-After", "0") // clamped to the 100ms floor
				w.WriteHeader(http.StatusTooManyRequests)
				w.Write([]byte(`{"error":"admission control: rate"}`))
				return
			}
			h.ServeHTTP(w, r)
		})
	}, &calls
}

// TestClusterHonorsRetryAfter: a 429 is back-pressure, not a failure.
// The only node sheds the first three shard requests; with
// NodeFailures=1 a single mischarged strike would retire it and fail
// the sweep, so success here proves throttling never touches the
// strike ledger — and the result still matches the single-process run
// bit for bit.
func TestClusterHonorsRetryAfter(t *testing.T) {
	want := canonJSON(t, localRun(t, 5, 8))
	mw, calls := throttlingNode(3)
	coord, err := New(Config{
		Nodes:        []string{newNode(t, mw).URL},
		Request:      serve.SweepRequest{Model: "synth", TopK: 5, Chunk: 8},
		ShardPoints:  16,
		InFlight:     1,
		NodeFailures: 1,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatalf("sweep failed under throttling: %v", err)
	}
	if got := canonJSON(t, res); !bytes.Equal(got, want) {
		t.Fatalf("throttled result diverged\ngot  %s\nwant %s", got, want)
	}
	if calls.Load() < 4 {
		t.Fatalf("node saw %d shard calls; the 429 path never ran", calls.Load())
	}
}

// TestParseRetryAfter pins the header parsing and its clamp, across
// both RFC 9110 forms: delta-seconds and HTTP-date.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, time.March, 5, 12, 0, 0, 0, time.UTC)
	httpDate := func(d time.Duration) string {
		return now.Add(d).UTC().Format(http.TimeFormat)
	}
	cases := []struct {
		name, h string
		want    time.Duration
	}{
		{"delta seconds", "2", 2 * time.Second},
		{"delta with spaces", " 3 ", 3 * time.Second},
		{"delta zero clamps up", "0", minRetryAfter},
		{"delta negative clamps up", "-5", minRetryAfter},
		{"delta huge clamps down", "9999", maxRetryAfter},
		{"date ahead", httpDate(3 * time.Second), 3 * time.Second},
		{"date far ahead clamps down", httpDate(time.Hour), maxRetryAfter},
		{"date in the past clamps up", httpDate(-time.Minute), minRetryAfter},
		{"date now clamps up", httpDate(0), minRetryAfter},
		{"date RFC 850 form", now.Add(2 * time.Second).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"), 2 * time.Second},
		{"date ANSI C form", now.Add(4 * time.Second).UTC().Format(time.ANSIC), 4 * time.Second},
		{"absent", "", time.Second},
		{"garbage", "garbage", time.Second},
		{"malformed date", "Wed, 99 Xxx 2026 12:00:00 GMT", time.Second},
	}
	for _, tc := range cases {
		if got := parseRetryAfterAt(tc.h, now); got != tc.want {
			t.Errorf("%s: parseRetryAfterAt(%q) = %v, want %v", tc.name, tc.h, got, tc.want)
		}
	}
	// The wall-clock entry point applies the same clamp.
	if got := parseRetryAfter("2"); got != 2*time.Second {
		t.Errorf("parseRetryAfter(2) = %v", got)
	}
}
