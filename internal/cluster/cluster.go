// Package cluster fans one full-space sweep out across serve nodes —
// the paper's "rank the whole space through the model" payoff at
// multi-node scale. A coordinator splits the flat index range of a
// design space into shards aligned to absolute chunk boundaries,
// dispatches them to the nodes' POST /v1/sweep/shard endpoints with
// bounded in-flight concurrency (optionally weighted by a probed
// per-node points/s), requeues shards whose node fails or times out
// onto the surviving nodes, and merges the returned partial
// reductions strictly in shard order. A node answering 429 under
// admission control is back-pressure, not failure: the dispatch slot
// honors the Retry-After hint and re-sends the shard without charging
// the node a strike.
//
// Because every shard partial is a pure function of (loaded bundles,
// request, range) and the merge algebra is associative (see
// sweep.Partial), the coordinated result is bit-identical to a
// single-process sweep.Run for any node count, shard size, and
// failure schedule — the only fields that vary are the timing ones.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/sweep"
)

// Coordinator defaults.
const (
	// DefaultInFlight is the in-flight shard bound per node (the
	// fastest node under probing; slower nodes get proportionally
	// fewer slots, minimum one).
	DefaultInFlight = 2
	// DefaultRetries is how many times one shard may fail — across
	// all nodes — before the sweep gives up.
	DefaultRetries = 3
	// DefaultNodeFailures is how many failures retire a node from the
	// rest of the sweep.
	DefaultNodeFailures = 2
	// DefaultTimeout bounds one shard request.
	DefaultTimeout = 2 * time.Minute
	// DefaultShardsPerSlot sizes auto-planned shards: enough shards
	// that a retired node's work redistributes evenly, few enough
	// that per-shard HTTP overhead stays negligible.
	DefaultShardsPerSlot = 4
	// DefaultMaxShardPoints caps auto-planned shard sizes. Shard
	// compute time grows with the space while Timeout does not, so an
	// uncapped plan over a big enough space would time every dispatch
	// out; at ~4M points a shard stays well inside DefaultTimeout at
	// the engine's measured throughput. Explicit ShardPoints settings
	// are the operator's own business and are not capped.
	DefaultMaxShardPoints = 1 << 22
)

// Config parameterizes one coordinated sweep.
type Config struct {
	// Nodes are the serve-node base URLs (e.g. "http://host:8080"; a
	// bare host:port gets the http scheme). Every node must serve the
	// same registered bundles — shard determinism is per-bundle, so
	// drifted registries would break the bit-identity guarantee (the
	// coordinator cross-checks space name and size at discovery).
	Nodes []string
	// Request is the sweep every shard runs: models, metrics, top-k
	// and chunk size. The coordinator sends it verbatim with only the
	// [start, end) range varying, so all shards normalize identically.
	Request serve.SweepRequest
	// ShardPoints is the number of design points per dispatched shard
	// (0 = auto: about DefaultShardsPerSlot shards per dispatch slot,
	// capped at DefaultMaxShardPoints so one shard always finishes
	// well inside Timeout; mind the cap when setting it explicitly).
	// It is rounded up to a multiple of the chunk size so shard
	// boundaries stay on absolute chunk boundaries — the alignment
	// that makes every shard a byte-exact sub-reduction of the full
	// run.
	ShardPoints int
	// InFlight bounds in-flight shards per node (0 = DefaultInFlight).
	// With probing, the fastest node keeps InFlight shards in flight
	// and slower nodes proportionally fewer (minimum one).
	InFlight int
	// Retries is the per-shard failure budget across all nodes before
	// the sweep fails (0 = DefaultRetries).
	Retries int
	// NodeFailures retires a node after that many failed shards
	// (0 = DefaultNodeFailures); its queued work redistributes to the
	// surviving nodes.
	NodeFailures int
	// Timeout bounds one shard request (0 = DefaultTimeout); a
	// timed-out shard is requeued like any other node failure.
	Timeout time.Duration
	// Probe measures each node's points/s on one warm-up chunk before
	// planning, weighting dispatch slots by relative throughput and
	// dropping nodes that cannot serve the request at all.
	Probe bool
	// Client is the HTTP client shards ride on (nil = a default
	// client; per-request deadlines come from Timeout).
	Client *http.Client
	// OnProgress, when non-nil, is called from the merge loop — in
	// shard order, on the Run goroutine — with design points covered.
	OnProgress func(done, total int)
	// Logf, when non-nil, receives scheduling events: probe results,
	// shard failures, requeues, node retirements.
	Logf func(format string, args ...any)
}

// Coordinator runs coordinated sweeps against a fixed node set.
type Coordinator struct {
	cfg    Config
	nodes  []string // normalized base URLs
	client *http.Client
	logf   func(format string, args ...any)
	// binaryOK[i] flips once node i has answered with the binary shard
	// format; later requests to it are sent binary-encoded (wire
	// negotiation, see internal/serve/wire.go). The first request to
	// every node is always JSON, so old nodes never see binary bytes.
	binaryOK []atomic.Bool
}

// New validates the node list and builds a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes to sweep on")
	}
	if cfg.ShardPoints < 0 {
		return nil, fmt.Errorf("cluster: Config.ShardPoints %d is negative", cfg.ShardPoints)
	}
	// Every node enforces these bounds; failing here keeps a malformed
	// request from burning the retry budget as fake node failures.
	if err := cfg.Request.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, client: cfg.Client, logf: cfg.Logf}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for _, raw := range cfg.Nodes {
		node, err := normalizeNode(raw)
		if err != nil {
			return nil, err
		}
		if seen[node] {
			return nil, fmt.Errorf("cluster: node %s listed twice", node)
		}
		seen[node] = true
		c.nodes = append(c.nodes, node)
	}
	c.binaryOK = make([]atomic.Bool, len(c.nodes))
	return c, nil
}

// normalizeNode turns a flag-friendly node spec into a base URL.
func normalizeNode(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	if raw == "" {
		return "", fmt.Errorf("cluster: empty node URL")
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		return "", fmt.Errorf("cluster: node %q is not a usable http(s) URL", raw)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

func (c *Coordinator) inFlight() int {
	if c.cfg.InFlight > 0 {
		return c.cfg.InFlight
	}
	return DefaultInFlight
}

func (c *Coordinator) retries() int {
	if c.cfg.Retries > 0 {
		return c.cfg.Retries
	}
	return DefaultRetries
}

func (c *Coordinator) nodeFailures() int {
	if c.cfg.NodeFailures > 0 {
		return c.cfg.NodeFailures
	}
	return DefaultNodeFailures
}

func (c *Coordinator) timeout() time.Duration {
	if c.cfg.Timeout > 0 {
		return c.cfg.Timeout
	}
	return DefaultTimeout
}

// shardResult is one finished shard travelling worker → merger.
type shardResult struct {
	id      int
	partial *sweep.Partial
}

// rejectedError marks an HTTP 400 — the node rejected the request
// itself, deterministically, so it must fail the sweep rather than
// count as a node failure.
type rejectedError struct{ err error }

func (e *rejectedError) Error() string { return e.err.Error() }
func (e *rejectedError) Unwrap() error { return e.err }

// throttledError marks an HTTP 429 — the node shed the shard under
// admission control. That is back-pressure, not a node failure: the
// dispatch slot honors the advertised Retry-After and tries the same
// shard again without charging the node a strike.
type throttledError struct {
	after time.Duration
	err   error
}

func (e *throttledError) Error() string { return e.err.Error() }
func (e *throttledError) Unwrap() error { return e.err }

// Throttle-retry bounds: how many consecutive 429s one dispatch slot
// absorbs for a single shard before treating them as a real failure,
// and the clamp on the server's Retry-After hint.
const (
	maxThrottleRetries = 8
	minRetryAfter      = 100 * time.Millisecond
	maxRetryAfter      = 5 * time.Second
)

// parseRetryAfter reads a Retry-After header into a bounded wait. RFC
// 9110 §10.2.3 allows two forms: delta-seconds and an HTTP-date; a date
// becomes the interval from now until it (a past date collapses to the
// minimum clamp). Absent or unparseable values default to one second.
func parseRetryAfter(h string) time.Duration {
	return parseRetryAfterAt(h, time.Now()) //repolint:allow determinism -- Retry-After backoff is wall-clock pacing; it never reaches sweep results
}

// parseRetryAfterAt is parseRetryAfter against an explicit clock, so
// the date arithmetic is testable.
func parseRetryAfterAt(h string, now time.Time) time.Duration {
	d := time.Second
	h = strings.TrimSpace(h)
	if secs, err := strconv.Atoi(h); err == nil {
		d = time.Duration(secs) * time.Second
	} else if when, err := http.ParseTime(h); err == nil {
		d = when.Sub(now)
	}
	if d < minRetryAfter {
		d = minRetryAfter
	}
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// Run executes the coordinated sweep: discovery, optional probing,
// shard planning, weighted dispatch with failure requeue, and the
// ordered merge. The result is bit-identical to a single-process
// sweep.Run over the same bundles and request (timing fields aside).
func (c *Coordinator) Run(ctx context.Context) (*sweep.Result, error) {
	wall := time.Now()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	size, spaceName, err := c.discover(runCtx)
	if err != nil {
		return nil, err
	}
	chunk := c.cfg.Request.Chunk
	if chunk <= 0 {
		chunk = sweep.DefaultChunkSize
	}

	weights := make([]float64, len(c.nodes))
	for i := range weights {
		weights[i] = 1
	}
	if c.cfg.Probe {
		if weights, err = c.probe(runCtx, size, chunk, spaceName); err != nil {
			return nil, err
		}
	}
	slots := slotPlan(weights, c.inFlight())
	shards := planShards(size, chunk, c.cfg.ShardPoints, sumInts(slots))
	c.logf("cluster: %d nodes, %d shards of ≤%d points, %d dispatch slots",
		len(c.nodes), len(shards), shards[0].end-shards[0].start, sumInts(slots))

	sc := newSched(c.nodes, shards, c.retries(), c.nodeFailures(), cancel, c.logf)
	for i, w := range weights {
		if w < 0 {
			sc.retire(i, fmt.Errorf("probe failed"))
		}
	}
	stopWatch := context.AfterFunc(runCtx, sc.stop)
	defer stopWatch()

	results := make(chan shardResult, len(shards))
	var wg sync.WaitGroup
	for n := range c.nodes {
		for s := 0; s < slots[n]; s++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				c.nodeWorker(runCtx, sc, n, spaceName, results)
			}(n)
		}
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Ordered merge: shard partials may arrive in any order, but fold
	// strictly by shard id, so the merge sequence — and therefore the
	// output bits — is a fixed function of the plan, not of node speed
	// or the failure schedule.
	var acc *sweep.Partial
	var mergeErr error
	pending := make(map[int]*sweep.Partial, len(shards))
	merged := 0
	for r := range results {
		if mergeErr != nil {
			continue // draining after a fatal merge problem
		}
		pending[r.id] = r.partial
		for {
			p, ok := pending[merged]
			if !ok {
				break
			}
			delete(pending, merged)
			if acc == nil {
				acc = p
			} else if err := acc.Merge(p); err != nil {
				mergeErr = err
			}
			if mergeErr == nil && len(acc.Frontier) > sweep.DefaultMaxFrontier {
				mergeErr = fmt.Errorf("cluster: merged Pareto frontier exceeds %d points after %d of %d — the metric set is likely degenerate (one axis both maximized and minimized)",
					sweep.DefaultMaxFrontier, acc.End, size)
			}
			if mergeErr != nil {
				cancel()
				sc.stop()
				break
			}
			merged++
			if c.cfg.OnProgress != nil {
				c.cfg.OnProgress(acc.End, size)
			}
		}
	}
	switch {
	case mergeErr != nil:
		return nil, mergeErr
	case sc.error() != nil:
		return nil, sc.error()
	case ctx.Err() != nil:
		return nil, ctx.Err()
	case acc == nil || merged != len(shards):
		return nil, fmt.Errorf("cluster: internal: merged %d of %d shards", merged, len(shards))
	}
	res := acc.Result()
	res.Elapsed = time.Since(wall)
	res.PointsPerSec = float64(res.Points) / res.Elapsed.Seconds()
	return res, nil
}

// nodeWorker is one dispatch slot: it pulls the lowest-id runnable
// shard, runs it on its node, and either delivers the partial or
// hands the shard back for requeue. 429s are absorbed in place: the
// slot waits out the node's Retry-After and re-sends the same shard,
// up to maxThrottleRetries consecutive times, without charging the
// node a failure strike.
func (c *Coordinator) nodeWorker(ctx context.Context, sc *sched, node int, spaceName string, results chan<- shardResult) {
	for {
		sh := sc.next(node)
		if sh == nil {
			return
		}
		var p *sweep.Partial
		var err error
		for attempt := 0; ; attempt++ {
			p, _, err = c.runShard(ctx, node, sh.start, sh.end, spaceName)
			var throttled *throttledError
			if err == nil || ctx.Err() != nil || !errors.As(err, &throttled) || attempt >= maxThrottleRetries {
				break
			}
			c.logf("cluster: node %s throttled shard [%d,%d); retrying in %v (attempt %d/%d)",
				c.nodes[node], sh.start, sh.end, throttled.after, attempt+1, maxThrottleRetries)
			t := time.NewTimer(throttled.after)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
		if err != nil {
			var rejected *rejectedError
			switch {
			case ctx.Err() != nil:
				sc.requeue(sh) // the run is over; don't blame the node
				return
			case errors.As(err, &rejected):
				sc.fatal(err) // deterministic rejection: no node can run this
				return
			}
			sc.fail(node, sh, err)
			continue
		}
		sc.finish(sh)
		results <- shardResult{id: sh.id, partial: p}
	}
}

// runShard executes one POST /v1/sweep/shard against a node and
// validates the returned partial's identity. The wire format is
// negotiated per node: every request offers the binary response
// format, and once a node has answered binary its later requests are
// sent binary-encoded too; the first request is always JSON, so nodes
// that predate the binary format are never asked to parse it.
func (c *Coordinator) runShard(ctx context.Context, node int, start, end int, spaceName string) (*sweep.Partial, float64, error) {
	nodeURL := c.nodes[node]
	req := serve.ShardRequest{SweepRequest: c.cfg.Request, Start: start, End: end}
	var body []byte
	var err error
	contentType := "application/json"
	if c.binaryOK[node].Load() {
		body, err = req.MarshalBinary()
		contentType = serve.ShardRequestMediaType
	} else {
		body, err = json.Marshal(req)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: encode shard request: %w", err)
	}
	reqCtx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	httpReq, err := http.NewRequestWithContext(reqCtx, http.MethodPost, nodeURL+"/v1/sweep/shard", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	httpReq.Header.Set("Content-Type", contentType)
	httpReq.Header.Set("Accept", serve.ShardResponseMediaType+", application/json")
	resp, err := c.client.Do(httpReq)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: node %s: %w", nodeURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		msg := ""
		if json.NewDecoder(resp.Body).Decode(&e) == nil {
			msg = ": " + e.Error
		}
		err := fmt.Errorf("cluster: node %s answered HTTP %d%s", nodeURL, resp.StatusCode, msg)
		switch resp.StatusCode {
		case http.StatusBadRequest:
			// A 400 rejects the request itself, which every node gets
			// byte-identically — retrying elsewhere cannot help.
			err = &rejectedError{err}
		case http.StatusTooManyRequests:
			err = &throttledError{after: parseRetryAfter(resp.Header.Get("Retry-After")), err: err}
		}
		return nil, 0, err
	}
	var doc serve.ShardResponse
	if strings.HasPrefix(resp.Header.Get("Content-Type"), serve.ShardResponseMediaType) {
		raw, readErr := io.ReadAll(resp.Body)
		if readErr == nil {
			readErr = doc.UnmarshalBinary(raw)
		}
		if readErr != nil {
			return nil, 0, fmt.Errorf("cluster: node %s: undecodable binary shard response: %w", nodeURL, readErr)
		}
		c.binaryOK[node].Store(true) // proven capable: upgrade request bodies
	} else if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, 0, fmt.Errorf("cluster: node %s: undecodable shard response: %w", nodeURL, err)
	}
	p := doc.Partial
	if p == nil || p.Start != start || p.End != end || (spaceName != "" && p.Space != spaceName) {
		return nil, 0, fmt.Errorf("cluster: node %s answered the wrong shard (want %s[%d,%d))", nodeURL, spaceName, start, end)
	}
	return p, doc.PointsPerSec, nil
}

// nodeModels is the slice of GET /v1/models this coordinator reads.
type nodeModels struct {
	Models []struct {
		Name   string `json:"name"`
		Space  string `json:"space"`
		Points int    `json:"points"`
	} `json:"models"`
}

// discover resolves the swept space's name and size from the first
// reachable node, cross-checking that every requested model is
// registered there over one space. Registry *contents* must agree
// across nodes for the sweep to mean anything; disagreement surfaces
// later as shard errors or a space-name mismatch.
func (c *Coordinator) discover(ctx context.Context) (size int, spaceName string, err error) {
	requested := c.cfg.Request.Models
	if c.cfg.Request.Model != "" {
		requested = []string{c.cfg.Request.Model}
	}
	var lastErr error
	for _, node := range c.nodes {
		reqCtx, cancel := context.WithTimeout(ctx, c.timeout())
		httpReq, reqErr := http.NewRequestWithContext(reqCtx, http.MethodGet, node+"/v1/models", nil)
		if reqErr != nil {
			cancel()
			return 0, "", reqErr
		}
		resp, doErr := c.client.Do(httpReq)
		if doErr != nil {
			cancel()
			lastErr = doErr
			c.logf("cluster: discovery: node %s unreachable: %v", node, doErr)
			continue
		}
		var doc nodeModels
		decErr := json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		cancel()
		if decErr != nil || resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("node %s: HTTP %d (%v)", node, resp.StatusCode, decErr)
			c.logf("cluster: discovery: %v", lastErr)
			continue
		}
		names := requested
		if len(names) == 0 {
			if len(doc.Models) != 1 {
				return 0, "", fmt.Errorf("cluster: node %s serves %d models; the request must name one", node, len(doc.Models))
			}
			names = []string{doc.Models[0].Name}
		}
		for _, want := range names {
			found := false
			for _, m := range doc.Models {
				if m.Name != want {
					continue
				}
				found = true
				if spaceName == "" {
					spaceName, size = m.Space, m.Points
				} else if m.Space != spaceName || m.Points != size {
					return 0, "", fmt.Errorf("cluster: node %s: model %q spans space %s (%d points), others span %s (%d points)",
						node, want, m.Space, m.Points, spaceName, size)
				}
			}
			if !found {
				return 0, "", fmt.Errorf("cluster: node %s does not serve model %q", node, want)
			}
		}
		if size == 0 {
			return 0, "", fmt.Errorf("cluster: node %s reports an empty design space", node)
		}
		return size, spaceName, nil
	}
	return 0, "", fmt.Errorf("cluster: no node answered discovery; last error: %v", lastErr)
}

// probe measures each node's shard throughput on the first chunk of
// the space. Nodes that fail get weight -1 (excluded); at least one
// must survive.
func (c *Coordinator) probe(ctx context.Context, size, chunk int, spaceName string) ([]float64, error) {
	weights := make([]float64, len(c.nodes))
	errs := make([]error, len(c.nodes))
	end := min(size, chunk)
	var wg sync.WaitGroup
	for i := range c.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, pps, err := c.runShard(ctx, i, 0, end, spaceName)
			if err != nil {
				weights[i], errs[i] = -1, err
				return
			}
			if pps <= 0 {
				pps = 1
			}
			weights[i] = pps
		}(i)
	}
	wg.Wait()
	ok := false
	var lastErr error
	for i, w := range weights {
		if w < 0 {
			var rejected *rejectedError
			if errors.As(errs[i], &rejected) {
				// Deterministic request rejection: every node gets the
				// same bytes, so dropping nodes one probe at a time
				// would only obscure the real problem.
				return nil, errs[i]
			}
			c.logf("cluster: probe: dropping node %s: %v", c.nodes[i], errs[i])
			lastErr = errs[i]
			continue
		}
		ok = true
		c.logf("cluster: probe: node %s at %.0f points/s", c.nodes[i], w)
	}
	if !ok {
		return nil, fmt.Errorf("cluster: every node failed the probe; last error: %w", lastErr)
	}
	return weights, nil
}

// slotPlan converts per-node throughput weights into dispatch slots:
// the fastest node gets inFlight slots, slower nodes proportionally
// fewer, never below one; probe-failed nodes (weight < 0) get none.
func slotPlan(weights []float64, inFlight int) []int {
	maxW := 0.0
	for _, w := range weights {
		if w > maxW {
			maxW = w
		}
	}
	slots := make([]int, len(weights))
	for i, w := range weights {
		if w < 0 {
			continue
		}
		s := int(w/maxW*float64(inFlight) + 0.5)
		if s < 1 {
			s = 1
		}
		slots[i] = s
	}
	return slots
}

// planShards cuts [0, size) into contiguous shards whose boundaries
// are multiples of the chunk size, so each shard's per-chunk reduction
// sequence is a sub-sequence of the full run's.
func planShards(size, chunk, shardPoints, totalSlots int) []shardRange {
	if shardPoints <= 0 {
		target := DefaultShardsPerSlot * totalSlots
		if target < 1 {
			target = 1
		}
		shardPoints = (size + target - 1) / target
		if shardPoints > DefaultMaxShardPoints {
			shardPoints = DefaultMaxShardPoints
		}
	}
	if rem := shardPoints % chunk; rem != 0 {
		shardPoints += chunk - rem
	}
	var out []shardRange
	for lo := 0; lo < size; lo += shardPoints {
		out = append(out, shardRange{id: len(out), start: lo, end: min(size, lo+shardPoints)})
	}
	return out
}

func sumInts(v []int) int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}
