package cluster

import (
	"fmt"
	"sync"
)

// shardRange is one contiguous, chunk-aligned slice of the flat index
// range.
type shardRange struct {
	id         int
	start, end int
}

// Shard scheduling states.
const (
	shardPending = iota
	shardRunning
	shardDone
)

// shardState tracks one shard through dispatch, failure and requeue.
type shardState struct {
	shardRange
	state    int
	attempts int
	excluded []bool // per node: failed this shard, don't hand it back
	lastErr  error
}

// sched is the work-queue behind the coordinator: dispatch slots pull
// the lowest-id runnable shard for their node, failures requeue the
// shard onto the surviving nodes, and repeated failures retire a node
// or — when a shard exhausts its budget — fail the whole sweep.
type sched struct {
	nodes     []string
	retries   int
	failLimit int
	cancel    func()
	logf      func(format string, args ...any)

	mu      sync.Mutex
	cond    *sync.Cond
	shards  []*shardState
	dead    []bool
	strikes []int
	done    int
	stopped bool
	err     error
}

func newSched(nodes []string, shards []shardRange, retries, failLimit int, cancel func(), logf func(string, ...any)) *sched {
	s := &sched{
		nodes:     nodes,
		retries:   retries,
		failLimit: failLimit,
		cancel:    cancel,
		logf:      logf,
		dead:      make([]bool, len(nodes)),
		strikes:   make([]int, len(nodes)),
	}
	s.cond = sync.NewCond(&s.mu)
	for _, r := range shards {
		s.shards = append(s.shards, &shardState{shardRange: r, excluded: make([]bool, len(nodes))})
	}
	return s
}

// next blocks until a shard is runnable on node, every shard is done,
// the node is retired, or the sweep stops — returning nil in the
// latter three cases (the caller's slot exits).
func (s *sched) next(node int) *shardState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped || s.err != nil || s.done == len(s.shards) || s.dead[node] {
			return nil
		}
		for _, sh := range s.shards {
			if sh.state == shardPending && !sh.excluded[node] {
				sh.state = shardRunning
				return sh
			}
		}
		s.cond.Wait()
	}
}

// finish marks a shard delivered.
func (s *sched) finish(sh *shardState) {
	s.mu.Lock()
	sh.state = shardDone
	s.done++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// requeue hands a shard back untouched — used when the run itself is
// cancelled mid-request, which is nobody's failure.
func (s *sched) requeue(sh *shardState) {
	s.mu.Lock()
	sh.state = shardPending
	s.mu.Unlock()
	s.cond.Broadcast()
}

// fail records one shard failure on one node: the shard is excluded
// from that node and requeued, the node takes a strike (retiring it at
// the limit), and a shard out of retry budget fails the whole sweep.
func (s *sched) fail(node int, sh *shardState, err error) {
	s.mu.Lock()
	sh.attempts++
	sh.lastErr = err
	sh.excluded[node] = true
	sh.state = shardPending
	s.logf("cluster: shard [%d,%d) failed on %s (attempt %d/%d): %v",
		sh.start, sh.end, s.nodes[node], sh.attempts, s.retries, err)
	s.strikes[node]++
	if s.strikes[node] >= s.failLimit && !s.dead[node] {
		s.dead[node] = true
		s.logf("cluster: retiring node %s after %d failures", s.nodes[node], s.strikes[node])
	}
	if sh.attempts > s.retries {
		s.failLocked(fmt.Errorf("cluster: shard [%d,%d) failed %d times, giving up: %w",
			sh.start, sh.end, sh.attempts, err))
	} else {
		s.rebalanceLocked()
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// retire drops a node before dispatch starts (probe failure).
func (s *sched) retire(node int, err error) {
	s.mu.Lock()
	if !s.dead[node] {
		s.dead[node] = true
		s.logf("cluster: node %s excluded: %v", s.nodes[node], err)
	}
	s.rebalanceLocked()
	s.mu.Unlock()
	s.cond.Broadcast()
}

// rebalanceLocked keeps every pending shard runnable somewhere: if all
// nodes are gone the sweep fails, and a shard excluded from every
// surviving node gets its exclusions cleared so it may retry anywhere
// (its attempt budget still bounds the loop).
func (s *sched) rebalanceLocked() {
	alive := false
	for _, d := range s.dead {
		if !d {
			alive = true
			break
		}
	}
	if !alive {
		lastErr := fmt.Errorf("no shard failures recorded")
		for _, sh := range s.shards {
			if sh.lastErr != nil {
				lastErr = sh.lastErr
			}
		}
		s.failLocked(fmt.Errorf("cluster: every node failed; last error: %w", lastErr))
		return
	}
	for _, sh := range s.shards {
		if sh.state != shardPending {
			continue
		}
		runnable := false
		for n := range s.dead {
			if !s.dead[n] && !sh.excluded[n] {
				runnable = true
				break
			}
		}
		if !runnable {
			for n := range sh.excluded {
				sh.excluded[n] = false
			}
		}
	}
}

// failLocked records the sweep-fatal error once and aborts in-flight
// work.
func (s *sched) failLocked(err error) {
	if s.err == nil {
		s.err = err
		s.stopped = true
		if s.cancel != nil {
			s.cancel()
		}
	}
}

// fatal aborts the sweep with err (first writer wins) — used for
// deterministic request rejections no amount of requeueing can cure.
func (s *sched) fatal(err error) {
	s.mu.Lock()
	s.failLocked(err)
	s.mu.Unlock()
	s.cond.Broadcast()
}

// stop wakes every waiting slot so it can exit (run cancelled or
// merge finished/failed).
func (s *sched) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// error returns the sweep-fatal error, if any.
func (s *sched) error() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
