package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/serve"
	"repro/internal/space"
	"repro/internal/stats"
)

// benchSpace mirrors internal/sweep's benchmark space (7680 points) so
// the coordinator's points/s reads directly against the local engine's
// BenchmarkSweep baselines in BENCH_sweep.json.
func benchSpace() *space.Space {
	return space.New("cluster-bench", []space.Param{
		{Name: "a", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8, 16, 32, 64, 128}},
		{Name: "b", Kind: space.Cardinal, Values: []float64{1, 2, 3, 4, 5, 6}},
		{Name: "c", Kind: space.Continuous, Values: []float64{0.5, 1.0, 1.5, 2.0, 2.5}},
		{Name: "d", Kind: space.Cardinal, Values: []float64{16, 32, 64, 128}},
		{Name: "e", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8}},
		{Name: "mode", Kind: space.Nominal, Levels: []string{"x", "y"}},
	})
}

var (
	benchOnce sync.Once
	benchB    *bundle.Bundle
)

func benchBundle(b *testing.B) *bundle.Bundle {
	b.Helper()
	benchOnce.Do(func() {
		sp := benchSpace()
		cfg := core.DefaultModelConfig()
		cfg.Train.MaxEpochs = 60
		cfg.Train.Patience = 15
		cfg.Seed = 3
		cfg.Workers = 1
		rng := stats.NewRNG(3)
		train := sp.Sample(rng, 60)
		enc := encoding.NewEncoder(sp)
		x := make([][]float64, len(train))
		y := make([][]float64, len(train))
		for i, idx := range train {
			x[i] = enc.EncodeIndex(idx, nil)
			c := sp.Choices(idx)
			y[i] = []float64{0.4 + 0.2*sp.Value(c, 0)/128 + 0.1*sp.Value(c, 1)*sp.Value(c, 2)}
		}
		ens, err := core.TrainEnsemble(x, y, cfg)
		if err != nil {
			panic(err)
		}
		bd, err := bundle.New(sp, ens, bundle.Meta{Study: "bench", Metric: "perf"})
		if err != nil {
			panic(err)
		}
		benchB = bd
	})
	return benchB
}

// BenchmarkClusterSweep measures coordinated full-space throughput
// over in-process serve nodes. nodes=1 is the coordinator-overhead
// gate in BENCH_cluster.json: shard planning, HTTP round trips, JSON
// (de)serialization and the ordered merge must stay within benchdiff
// tolerance of the local engine's BenchmarkSweep/workers=1.
func BenchmarkClusterSweep(b *testing.B) {
	bd := benchBundle(b)
	for _, n := range []int{1, 2} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			var nodes []string
			for i := 0; i < n; i++ {
				reg := serve.NewRegistry()
				if _, err := reg.Add("m", bd, serve.CoalesceOpts{}); err != nil {
					b.Fatal(err)
				}
				ts := httptest.NewServer(serve.New(reg))
				defer ts.Close()
				defer reg.Close()
				nodes = append(nodes, ts.URL)
			}
			coord, err := New(Config{
				Nodes:   nodes,
				Request: serve.SweepRequest{Model: "m", Chunk: 512},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			points := 0
			for i := 0; i < b.N; i++ {
				res, err := coord.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				points += res.Points
			}
			b.ReportMetric(float64(points)/b.Elapsed().Seconds(), "points/s")
		})
	}
}
