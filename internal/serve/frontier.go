package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/sweep"
)

// FrontierDoc is the GET /v1/jobs/{id}/frontier document: the predicted
// Pareto frontier of an exploration job's latest ensemble over its
// acquisition objectives, refreshed after every completed round. It is
// computed by the same streaming sweep engine POST /v1/sweep runs, so
// the frontier is bit-identical to an in-process sweep.Run over the
// same ensemble — the document deliberately carries no timing fields.
//
// The frontier is ranked on raw predicted values; acquisition scores
// candidates in a normalized copy of the same axes, and Pareto
// membership is invariant under that per-axis monotone map, so the two
// views name the same design points.
type FrontierDoc struct {
	JobID string `json:"jobId"`
	// Samples is how many simulations back the served ensemble — the
	// frontier is a prediction of that model, not simulator truth.
	Samples int `json:"samples"`
	// Acquire is the job's canonical acquisition spec ("" when the job
	// explores without one; the default objective pair then applies).
	Acquire string `json:"acquire,omitempty"`
	Space   string `json:"space"`
	Points  int    `json:"points"`
	// Metrics and Frontier mirror sweep.Result: one named axis per
	// acquisition objective, and the Pareto-optimal set over them in
	// ascending index order.
	Metrics  []sweep.MetricInfo `json:"metrics"`
	Frontier []sweep.Point      `json:"frontier"`
}

// acquireMetricSet maps acquisition objectives (or the default pair,
// for a nil config) onto sweep metrics over one ensemble: predicted
// mean or member disagreement per output column, with the objective's
// ranking direction.
func acquireMetricSet(ens *core.Ensemble, acq *core.AcquireConfig) (*core.MetricSet, error) {
	objs := acq.ResolvedObjectives()
	metrics := make([]core.Metric, len(objs))
	for i, o := range objs {
		m := core.Metric{Name: fmt.Sprintf("out%d", o.Output), Ens: ens, Output: o.Output, Minimize: o.Minimize}
		if o.Variance {
			m.Name = fmt.Sprintf("var(out%d)", o.Output)
			m.Kind = core.MetricVariance
		}
		metrics[i] = m
	}
	return core.NewMetricSet(metrics)
}

// Frontier computes the predicted frontier of one exploration job from
// its latest ensemble. The sweep runs on the caller's goroutine — it is
// a query, not a job — bounded like every other query by the ensemble's
// own worker configuration.
func (s *JobStore) Frontier(ctx context.Context, id string) (*FrontierDoc, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown job %q", id)
	}
	if job.Kind != JobKindExplore {
		return nil, fmt.Errorf("serve: job %q is a %s job; only explorations serve a predicted frontier", id, job.Kind)
	}
	job.mu.Lock()
	sp, ens, acq := job.liveSp, job.liveEns, job.acquire
	samples := 0
	if n := len(job.steps); n > 0 {
		samples = job.steps[n-1].Samples
	}
	job.mu.Unlock()
	if ens == nil {
		return nil, fmt.Errorf("serve: job %q has no trained ensemble yet", id)
	}
	set, err := acquireMetricSet(ens, acq)
	if err != nil {
		return nil, err
	}
	res, err := sweep.Run(ctx, sp, set, sweep.Config{TopK: -1, Workers: 1})
	if err != nil {
		return nil, err
	}
	spec := ""
	if acq != nil {
		spec = acq.Spec()
	}
	return &FrontierDoc{
		JobID:    id,
		Samples:  samples,
		Acquire:  spec,
		Space:    res.Space,
		Points:   res.Points,
		Metrics:  res.Metrics,
		Frontier: res.Frontier,
	}, nil
}

func (s *Server) handleJobFrontier(w http.ResponseWriter, r *http.Request) {
	jobs, ok := s.requireJobs(w)
	if !ok {
		return
	}
	doc, err := jobs.Frontier(r.Context(), r.PathValue("id"))
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case strings.Contains(err.Error(), "unknown job"):
			status = http.StatusNotFound
		case strings.Contains(err.Error(), "no trained ensemble yet"):
			// The job exists but has not finished a round; poll again.
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}
