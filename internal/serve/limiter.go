package serve

import (
	"container/list"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Admission control: under overload the server must degrade into fast,
// honest rejection (429 + Retry-After) instead of latency collapse.
// Two independent guards cover the two overload shapes:
//
//   - a per-client token bucket caps sustained request *rate*, so one
//     hot client cannot starve the rest (clients identify themselves
//     with X-Client-ID; anonymous traffic is keyed by remote host);
//   - a bounded in-flight budget caps *concurrency*, so a burst that
//     passes every bucket still cannot pile unbounded work onto the
//     coalescers.
//
// Rejection is the fast path by design — one mutex-guarded map probe
// (bucket) or one atomic add (budget), no body read, no model work —
// benchmarked in bench_test.go and gated in BENCH_serve.json. Health,
// stats, metrics, model listing and the reload endpoint are exempt so
// operators can always observe and roll a drowning server.

// maxClients bounds the limiter's per-client state; the least recently
// seen client is dropped first, re-admitted with a full bucket on its
// next request. 8k clients × ~64 bytes keeps the table trivially small.
const maxClients = 8192

// retry bounds for the Retry-After hint, in seconds.
const (
	minRetrySecs = 1
	maxRetrySecs = 30
)

// clientBucket is one client's token-bucket state.
type clientBucket struct {
	id     string
	tokens float64
	last   time.Time
}

// limiter is a per-client token-bucket rate limiter with LRU-bounded
// client state.
type limiter struct {
	mu      sync.Mutex
	rate    float64 // tokens (requests) added per second
	burst   float64 // bucket capacity
	clients map[string]*list.Element
	lru     *list.List // front = most recently seen, values *clientBucket
}

func newLimiter(rate float64, burst int) *limiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &limiter{
		rate:    rate,
		burst:   b,
		clients: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// allow spends one token from id's bucket, reporting whether the
// request is admitted and — when it is not — how long the client
// should wait before the bucket holds a whole token again.
func (l *limiter) allow(id string, now time.Time) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, seen := l.clients[id]
	if !seen {
		if len(l.clients) >= maxClients {
			oldest := l.lru.Back()
			l.lru.Remove(oldest)
			delete(l.clients, oldest.Value.(*clientBucket).id)
		}
		el = l.lru.PushFront(&clientBucket{id: id, tokens: l.burst, last: now})
		l.clients[id] = el
	}
	b := el.Value.(*clientBucket)
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
	}
	b.last = now
	l.lru.MoveToFront(el)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	secs := math.Ceil((1 - b.tokens) / l.rate)
	secs = math.Min(math.Max(secs, minRetrySecs), maxRetrySecs)
	return false, time.Duration(secs) * time.Second
}

// admission is the server's configured overload policy.
type admission struct {
	lim         *limiter
	maxInflight int64

	inflight       atomic.Int64
	rejectRate     atomic.Int64
	rejectInflight atomic.Int64
}

// RateLimitStats reports the admission-control counters.
type RateLimitStats struct {
	// RejectedRate counts 429s from per-client token buckets,
	// RejectedInflight 429s from the bounded in-flight budget.
	RejectedRate     int64 `json:"rejected_rate"`
	RejectedInflight int64 `json:"rejected_inflight"`
}

// SetAdmission configures overload policy: rate requests/second per
// client with burst headroom (rate <= 0 disables the bucket), and at
// most maxInflight concurrently-admitted model requests (<= 0
// disables the budget). Call before serving; the policy is not
// synchronized afterwards (its counters are).
func (s *Server) SetAdmission(rate float64, burst, maxInflight int) {
	s.adm = &admission{lim: newLimiter(rate, burst), maxInflight: int64(maxInflight)}
}

// gatedPath reports whether admission control applies to path: the
// model-work endpoints. Observability (/healthz, /v1/stats, /metrics,
// /v1/models, /v1/jobs) and reload stay exempt, so a saturated server
// can still be watched, diagnosed, and rolled.
func gatedPath(path string) bool {
	switch {
	case strings.HasPrefix(path, "/v1/predict"),
		strings.HasPrefix(path, "/v1/variance"),
		strings.HasPrefix(path, "/v1/sensitivity"),
		strings.HasPrefix(path, "/v1/sweep"),
		strings.HasPrefix(path, "/v1/explore"):
		return true
	}
	return false
}

// clientID keys the token bucket: the self-reported X-Client-ID when
// present (the cluster coordinator and loadgen set it), otherwise the
// remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// reject answers a request turned away by admission control.
func reject(w http.ResponseWriter, retryAfter time.Duration, reason string) {
	secs := int(retryAfter / time.Second)
	if secs < minRetrySecs {
		secs = minRetrySecs
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, "over capacity (%s); retry after %ds", reason, secs)
}

// admitAndServe applies admission control ahead of the mux. Rejection
// never reads the body and never touches a model — the whole point is
// that saying no stays cheap when everything else is slow.
func (s *Server) admitAndServe(w http.ResponseWriter, r *http.Request) {
	a := s.adm
	if a == nil || !gatedPath(r.URL.Path) {
		s.mux.ServeHTTP(w, r)
		return
	}
	if a.lim != nil {
		if ok, retry := a.lim.allow(clientID(r), nowMono()); !ok {
			a.rejectRate.Add(1)
			reject(w, retry, "rate limit")
			return
		}
	}
	if a.maxInflight > 0 {
		if a.inflight.Add(1) > a.maxInflight {
			a.inflight.Add(-1)
			a.rejectInflight.Add(1)
			reject(w, time.Second, "in-flight budget")
			return
		}
		defer a.inflight.Add(-1)
	}
	s.mux.ServeHTTP(w, r)
}

func (a *admission) stats() RateLimitStats {
	if a == nil {
		return RateLimitStats{}
	}
	return RateLimitStats{
		RejectedRate:     a.rejectRate.Load(),
		RejectedInflight: a.rejectInflight.Load(),
	}
}
