package serve

import (
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/sweep"
)

// ShardRequest is the wire form of one sweep shard: a sweep request
// plus the half-open flat-index range [Start, End) this node scores.
// End == 0 selects the rest of the space, so a zero range sweeps it
// all — a one-node "cluster" degenerates to the full engine run.
type ShardRequest struct {
	SweepRequest
	Start int `json:"start,omitempty"`
	End   int `json:"end,omitempty"`
}

// ShardResponse carries one computed shard back to the coordinator:
// the deterministic partial reduction, plus this node's measured
// throughput — the signal coordinators use to weight shard dispatch.
// Elapsed and PointsPerSec are the only fields that vary between
// bit-identical runs.
type ShardResponse struct {
	Partial      *sweep.Partial `json:"partial"`
	Elapsed      time.Duration  `json:"elapsed"`
	PointsPerSec float64        `json:"pointsPerSec"`
}

// handleSweepShard runs one shard synchronously — unlike /v1/sweep it
// needs no job store, so any serving node can join a sweep cluster.
// The response partial is a pure function of (registered bundles,
// request), whatever node answers; a disconnect cancels the engine via
// the request context.
//
// Requests and responses speak JSON by default and the compact binary
// format by negotiation (see wire.go): a binary Content-Type selects
// the binary request decoder, and an Accept header offering
// ShardResponseMediaType gets the binary response body. Errors are
// JSON on every path.
func (s *Server) handleSweepShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if strings.HasPrefix(r.Header.Get("Content-Type"), ShardRequestMediaType) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err == nil {
			err = req.UnmarshalBinary(body)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
			return
		}
	} else if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	set, sp, err := resolveSweepRequest(s.reg, req.SweepRequest)
	if err != nil {
		writeError(w, sweepErrorStatus(err), "%v", err)
		return
	}
	cfg := sweep.Config{
		TopK:      req.TopK,
		ChunkSize: req.Chunk,
		Workers:   req.engineWorkers(),
		Kernel:    req.kernelMode(s.kernel),
		Start:     req.Start,
		End:       req.End,
	}
	start := time.Now()
	p, err := sweep.RunPartial(r.Context(), sp, set, cfg)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nobody is listening for the error
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	elapsed := time.Since(start)
	resp := ShardResponse{Partial: p, Elapsed: elapsed}
	if secs := elapsed.Seconds(); secs > 0 {
		resp.PointsPerSec = float64(p.End-p.Start) / secs
	}
	if acceptsShardBinary(r.Header.Get("Accept")) {
		data, err := resp.MarshalBinary()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", ShardResponseMediaType)
		w.WriteHeader(http.StatusOK)
		w.Write(data)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
