package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/space"
	"repro/internal/stats"
)

func testSpace() *space.Space {
	return space.New("synth", []space.Param{
		{Name: "a", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8}},
		{Name: "b", Kind: space.Cardinal, Values: []float64{1, 2, 3, 4, 5}},
		{Name: "mode", Kind: space.Nominal, Levels: []string{"x", "y"}},
	})
}

func testTarget(sp *space.Space, idx int) float64 {
	c := sp.Choices(idx)
	v := 0.4 + 0.3*math.Log2(sp.Value(c, 0)) + 0.1*sp.Value(c, 1)
	if sp.LevelName(c, 2) == "y" {
		v *= 1.25
	}
	return v
}

func trainedBundle(t testing.TB) *bundle.Bundle {
	t.Helper()
	sp := testSpace()
	enc := encoding.NewEncoder(sp)
	rng := stats.NewRNG(23)
	train := sp.Sample(rng, 36)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{testTarget(sp, idx)}
	}
	cfg := core.DefaultModelConfig()
	cfg.Train.MaxEpochs = 50
	cfg.Train.Patience = 12
	ens, err := core.TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New(sp, ens, bundle.Meta{Study: "synth", App: "unit", Metric: "IPC", Model: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newTestServer registers one trained model under "synth" and returns
// the HTTP test server around it.
func newTestServer(t testing.TB, opts CoalesceOpts) (*httptest.Server, *Registry, *bundle.Bundle) {
	t.Helper()
	b := trainedBundle(t)
	reg := NewRegistry()
	if _, err := reg.Add("synth", b, opts); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return ts, reg, b
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	return resp, out
}

func floats(t *testing.T, v any) []float64 {
	t.Helper()
	arr, ok := v.([]any)
	if !ok {
		t.Fatalf("expected JSON array, got %T", v)
	}
	out := make([]float64, len(arr))
	for i, e := range arr {
		f, ok := e.(float64)
		if !ok {
			t.Fatalf("element %d is %T, not a number", i, e)
		}
		out[i] = f
	}
	return out
}

// TestBatchPredictBitIdentical is the serving acceptance property: the
// HTTP batch endpoint must return exactly what in-process PredictBatch
// returns on the same points (JSON float64 round-trips are exact).
func TestBatchPredictBitIdentical(t *testing.T) {
	ts, _, b := newTestServer(t, CoalesceOpts{})
	points := []int{0, 3, 7, 11, 19, 23, 31, 39}
	width := b.Encoder.Width()
	xs := make([]float64, len(points)*width)
	for i, p := range points {
		b.Encoder.EncodeIndex(p, xs[i*width:(i+1)*width])
	}
	want := b.Ensemble.PredictBatch(xs, len(points), nil)

	body, _ := json.Marshal(map[string]any{"model": "synth", "points": points})
	resp, out := postJSON(t, ts.URL+"/v1/predict/batch", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	got := floats(t, out["predictions"])
	if len(got) != len(want) {
		t.Fatalf("%d predictions for %d points", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: served %v, in-process %v", points[i], got[i], want[i])
		}
	}
}

// TestChoicesAddressingMatchesIndexAddressing pins the two addressing
// modes to each other and to the space's index bijection.
func TestChoicesAddressingMatchesIndexAddressing(t *testing.T) {
	ts, _, b := newTestServer(t, CoalesceOpts{})
	choices := []int{2, 4, 1}
	idx := b.Space.Index(choices)

	body, _ := json.Marshal(map[string]any{"choices": [][]int{choices}})
	resp, byChoices := postJSON(t, ts.URL+"/v1/predict", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, byChoices)
	}
	if got := int(byChoices["point"].(float64)); got != idx {
		t.Fatalf("choices resolved to point %d, Index says %d", got, idx)
	}
	body, _ = json.Marshal(map[string]any{"point": idx})
	resp, byIndex := postJSON(t, ts.URL+"/v1/predict", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, byIndex)
	}
	if byChoices["prediction"] != byIndex["prediction"] {
		t.Fatalf("prediction differs by addressing mode: %v vs %v",
			byChoices["prediction"], byIndex["prediction"])
	}
	if want := b.Ensemble.Predict(b.Encoder.EncodeIndex(idx, nil)); byIndex["prediction"].(float64) != want {
		t.Fatalf("served %v, in-process Predict %v", byIndex["prediction"], want)
	}
}

func TestVarianceEndpointMatchesBatchKernel(t *testing.T) {
	ts, _, b := newTestServer(t, CoalesceOpts{})
	points := []int{1, 5, 9, 13}
	width := b.Encoder.Width()
	xs := make([]float64, len(points)*width)
	for i, p := range points {
		b.Encoder.EncodeIndex(p, xs[i*width:(i+1)*width])
	}
	wantMean, wantVar := b.Ensemble.PredictVarianceBatch(xs, len(points), nil, nil)

	body, _ := json.Marshal(map[string]any{"points": points})
	resp, out := postJSON(t, ts.URL+"/v1/variance", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	gotMean := floats(t, out["means"])
	gotVar := floats(t, out["variances"])
	for i := range points {
		if gotMean[i] != wantMean[i] || gotVar[i] != wantVar[i] {
			t.Fatalf("row %d: served (%v,%v), in-process (%v,%v)",
				i, gotMean[i], gotVar[i], wantMean[i], wantVar[i])
		}
	}
}

// TestConcurrentPredictsCoalesceAndMatch floods /v1/predict from many
// goroutines: every response must equal the in-process per-point
// prediction, and the coalescer must have served them in fewer batched
// flushes than requests.
func TestConcurrentPredictsCoalesceAndMatch(t *testing.T) {
	ts, reg, b := newTestServer(t, CoalesceOpts{Linger: 5 * time.Millisecond})
	const requests = 40 // the whole synthetic space
	want := make([]float64, requests)
	for i := range want {
		want[i] = b.Ensemble.Predict(b.Encoder.EncodeIndex(i, nil))
	}
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"point":%d}`, i)
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewBufferString(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("point %d: status %d: %v", i, resp.StatusCode, out)
				return
			}
			if got := out["prediction"].(float64); got != want[i] {
				errs <- fmt.Errorf("point %d: served %v, in-process %v", i, got, want[i])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m, err := reg.Get("synth")
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Requests != requests {
		t.Fatalf("coalescer answered %d requests, want %d", st.Requests, requests)
	}
	if st.Flushes >= requests {
		t.Fatalf("no coalescing happened: %d flushes for %d concurrent requests", st.Flushes, requests)
	}
	t.Logf("coalesced %d requests into %d flushes", st.Requests, st.Flushes)
}

func TestMalformedRequestsRejected(t *testing.T) {
	ts, _, b := newTestServer(t, CoalesceOpts{})
	outOfRange := b.Space.Size()
	cases := []struct {
		name, path, body string
		status           int
	}{
		{"bad json", "/v1/predict", `{"point":`, http.StatusBadRequest},
		{"unknown field", "/v1/predict", `{"pt":3}`, http.StatusBadRequest},
		{"no addressing", "/v1/predict", `{}`, http.StatusBadRequest},
		{"both addressings", "/v1/predict", `{"point":1,"choices":[[0,0,0]]}`, http.StatusBadRequest},
		{"stray points array", "/v1/predict", `{"point":1,"points":[2,3]}`, http.StatusBadRequest},
		{"point out of range", "/v1/predict", fmt.Sprintf(`{"point":%d}`, outOfRange), http.StatusBadRequest},
		{"negative point", "/v1/predict", `{"point":-1}`, http.StatusBadRequest},
		{"short choices", "/v1/predict", `{"choices":[[0]]}`, http.StatusBadRequest},
		{"choice out of range", "/v1/predict", `{"choices":[[0,0,9]]}`, http.StatusBadRequest},
		{"unknown model", "/v1/predict", `{"model":"nope","point":1}`, http.StatusNotFound},
		{"batch single point", "/v1/predict/batch", `{"point":1}`, http.StatusBadRequest},
		{"batch empty", "/v1/predict/batch", `{"points":[]}`, http.StatusBadRequest},
		{"batch bad member", "/v1/predict/batch", fmt.Sprintf(`{"points":[0,%d]}`, outOfRange), http.StatusBadRequest},
		{"variance bad choices", "/v1/variance", `{"choices":[[0,0,0],[0,9,0]]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, out := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%v)", c.name, resp.StatusCode, c.status, out)
		}
		if _, hasErr := out["error"]; !hasErr && resp.StatusCode != http.StatusOK {
			t.Errorf("%s: error response carries no error message", c.name)
		}
	}

	// Wrong method on a POST-only endpoint.
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict: status %d, want 405", resp.StatusCode)
	}
}

func TestModelsAndHealthz(t *testing.T) {
	ts, _, b := newTestServer(t, CoalesceOpts{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" || health["models"].(float64) != 1 {
		t.Fatalf("healthz = %v", health)
	}

	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models struct {
		Models []modelInfo `json:"models"`
	}
	json.NewDecoder(resp.Body).Decode(&models)
	resp.Body.Close()
	if len(models.Models) != 1 {
		t.Fatalf("listed %d models, want 1", len(models.Models))
	}
	m := models.Models[0]
	if m.Name != "synth" || m.Space != "synth" || m.Points != b.Space.Size() ||
		m.Inputs != b.Encoder.Width() || m.Members != b.Ensemble.Members() {
		t.Fatalf("model info mismatch: %+v", m)
	}
	if m.Estimate != b.Ensemble.Estimate() {
		t.Fatalf("estimate not surfaced: %+v", m.Estimate)
	}
}

func TestSensitivityEndpoint(t *testing.T) {
	ts, _, b := newTestServer(t, CoalesceOpts{})
	resp, err := http.Get(ts.URL + "/v1/sensitivity?bases=6&seed=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Model string                 `json:"model"`
		Axes  []core.AxisSensitivity `json:"axes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Axes) != b.Space.NumParams() {
		t.Fatalf("%d axes for %d params", len(out.Axes), b.Space.NumParams())
	}
	for i, a := range out.Axes {
		if a.Rank != i+1 {
			t.Fatalf("axes not returned ranked: %+v", out.Axes)
		}
		if a.Bases != 6 {
			t.Fatalf("axis %s swept %d bases, want 6", a.Name, a.Bases)
		}
	}

	resp2, out2 := postJSON(t, ts.URL+"/v1/sensitivity", `{"bases":0,"seed":`)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed sensitivity POST: status %d (%v)", resp2.StatusCode, out2)
	}
	// Both methods share one contract: non-numeric or negative bases are
	// rejected, never silently defaulted.
	for _, url := range []string{"/v1/sensitivity?bases=zero", "/v1/sensitivity?bases=-3"} {
		resp3, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp3.Body.Close()
		if resp3.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s: status %d, want 400", url, resp3.StatusCode)
		}
	}
	resp4, out4 := postJSON(t, ts.URL+"/v1/sensitivity", `{"bases":-3}`)
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST negative bases: status %d (%v)", resp4.StatusCode, out4)
	}
}

// TestRegistryResolution covers default-model resolution and duplicate
// registration.
func TestRegistryResolution(t *testing.T) {
	b := trainedBundle(t)
	reg := NewRegistry()
	defer reg.Close()
	if _, err := reg.Add("", b, CoalesceOpts{}); err == nil {
		t.Fatal("registry accepted an empty model name")
	}
	if _, err := reg.Add("one", b, CoalesceOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("one", b, CoalesceOpts{}); err == nil {
		t.Fatal("registry accepted a duplicate name")
	}
	if m, err := reg.Get(""); err != nil || m.Name != "one" {
		t.Fatalf("single-model default resolution failed: %v %v", m, err)
	}
	if _, err := reg.Add("two", b, CoalesceOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get(""); err == nil {
		t.Fatal("empty model name resolved despite two models")
	}
	if _, err := reg.Get("nope"); err == nil {
		t.Fatal("unknown model resolved")
	}
}

// TestCoalescerDirect exercises the dispatcher without HTTP in between:
// concurrent predicts through one coalescer match the ensemble and
// shut down cleanly.
func TestCoalescerDirect(t *testing.T) {
	b := trainedBundle(t)
	c := newCoalescer(b.Ensemble, b.Encoder.Width(), CoalesceOpts{Linger: 2 * time.Millisecond, MaxBatch: 8}, nil)
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := b.Encoder.EncodeIndex(i, nil)
			wantMean, wantVar := b.Ensemble.PredictVariance(x)
			mean, variance, err := c.predict(x, ann.KernelExact, cacheKey{})
			if err != nil {
				errs <- err
				return
			}
			if mean != wantMean || variance != wantVar {
				errs <- fmt.Errorf("point %d: coalesced (%v,%v), direct (%v,%v)", i, mean, variance, wantMean, wantVar)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c.close()
	if _, _, err := c.predict(b.Encoder.EncodeIndex(0, nil), ann.KernelExact, cacheKey{}); err == nil {
		t.Fatal("predict succeeded on a closed coalescer")
	}
}
