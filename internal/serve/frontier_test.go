package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/space"
	"repro/internal/sweep"
)

// dualTestTarget is the second oracle output for frontier tests: a
// synthetic cost that rises with the same knobs testTarget rewards, so
// maximize-out0/minimize-out1 has a real trade-off frontier.
func dualTestTarget(sp *space.Space, idx int) float64 {
	c := sp.Choices(idx)
	e := 0.3 + 0.08*sp.Value(c, 0) + 0.05*sp.Value(c, 1)
	if sp.LevelName(c, 2) == "y" {
		e *= 1.2
	}
	return e
}

// dualJobBackend is testBackend with a two-output oracle, for
// acquisition jobs whose objectives reference out1.
func dualJobBackend() Backend {
	return func(req ExploreRequest) (*space.Space, core.Oracle, bundle.Meta, error) {
		if req.Study != "synth" {
			return nil, nil, bundle.Meta{}, fmt.Errorf("unknown study %q", req.Study)
		}
		sp := testSpace()
		oracle := core.OracleFunc(func(indices []int) ([][]float64, error) {
			out := make([][]float64, len(indices))
			for i, idx := range indices {
				out[i] = []float64{testTarget(sp, idx), dualTestTarget(sp, idx)}
			}
			return out, nil
		})
		meta := bundle.Meta{Study: req.Study, App: req.App, Metric: "IPC", TraceLen: req.TraceLen}
		return sp, oracle, meta, nil
	}
}

// TestFrontierEndpointMatchesInProcessSweep is the endpoint's contract
// from the issue: the document's frontier must be byte-identical to an
// in-process sweep.Run over the job's ensemble with the job's
// acquisition objectives as metrics.
func TestFrontierEndpointMatchesInProcessSweep(t *testing.T) {
	const spec = "hvi:max=out0:min=out1"
	reg := NewRegistry()
	defer reg.Close()
	s := NewJobStore(reg, dualJobBackend(), 1, 4, CoalesceOpts{})
	defer s.Close()

	req := ExploreRequest{
		Name:    "pareto",
		Study:   "synth",
		App:     "none",
		Budget:  24,
		Batch:   12, // two rounds: round 2 selects via acquisition
		Seed:    5,
		Acquire: spec,
	}
	info, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if done := awaitJob(t, s, info.ID); done.Status != JobDone {
		t.Fatalf("job finished %s (%s)", done.Status, done.Error)
	}

	doc, err := s.Frontier(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Acquire != spec {
		t.Fatalf("frontier doc reports spec %q, want %q", doc.Acquire, spec)
	}
	if doc.Samples != 24 {
		t.Fatalf("frontier doc built from %d samples, want 24", doc.Samples)
	}
	if len(doc.Frontier) == 0 {
		t.Fatal("empty predicted frontier")
	}

	// Rebuild the metric set by hand — explicit literals, not the
	// helper the endpoint uses — and sweep in-process.
	s.mu.Lock()
	job := s.jobs[info.ID]
	s.mu.Unlock()
	job.mu.Lock()
	sp, ens := job.liveSp, job.liveEns
	job.mu.Unlock()
	set, err := core.NewMetricSet([]core.Metric{
		{Name: "out0", Ens: ens, Output: 0},
		{Name: "out1", Ens: ens, Output: 1, Minimize: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run(context.Background(), sp, set, sweep.Config{TopK: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res.Frontier)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(doc.Frontier)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("endpoint frontier differs from in-process sweep:\n got %s\nwant %s", got, want)
	}

	// Over HTTP the document must be stable: two reads of a finished
	// job are byte-identical, and agree with the in-process call.
	srv := httptest.NewServer(NewWithJobs(reg, s))
	defer srv.Close()
	read := func() []byte {
		r, err := http.Get(srv.URL + "/v1/jobs/" + info.ID + "/frontier")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("frontier endpoint returned %d", r.StatusCode)
		}
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first, second := read(), read()
	if !bytes.Equal(first, second) {
		t.Fatalf("repeated frontier reads differ:\n%s\n%s", first, second)
	}
	var over FrontierDoc
	if err := json.Unmarshal(first, &over); err != nil {
		t.Fatal(err)
	}
	overJSON, err := json.Marshal(over.Frontier)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(overJSON, want) {
		t.Fatalf("HTTP frontier differs from in-process sweep:\n got %s\nwant %s", overJSON, want)
	}
}

// TestFrontierWithoutAcquisition: a plain exploration job (no acquire
// spec) still serves a frontier over the default objective pair —
// predicted performance vs prediction disagreement.
func TestFrontierWithoutAcquisition(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	s := NewJobStore(reg, testBackend(0, nil), 1, 4, CoalesceOpts{})
	defer s.Close()

	info, err := s.Submit(fastJobRequest("plain"))
	if err != nil {
		t.Fatal(err)
	}
	if done := awaitJob(t, s, info.ID); done.Status != JobDone {
		t.Fatalf("job finished %s (%s)", done.Status, done.Error)
	}
	doc, err := s.Frontier(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Acquire != "" {
		t.Fatalf("plain job reports acquire spec %q", doc.Acquire)
	}
	if len(doc.Metrics) != 2 || doc.Metrics[0].Name != "out0" || doc.Metrics[1].Name != "var(out0)" {
		t.Fatalf("default frontier axes %+v, want out0 and var(out0)", doc.Metrics)
	}
	if !doc.Metrics[1].Minimize {
		t.Fatal("disagreement axis must be minimized")
	}
	if len(doc.Frontier) == 0 {
		t.Fatal("empty predicted frontier")
	}
}

func TestFrontierErrors(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	block := make(chan struct{})
	s := NewJobStore(reg, testBackend(0, block), 1, 8, CoalesceOpts{})
	defer s.Close()
	srv := httptest.NewServer(NewWithJobs(reg, s))
	defer srv.Close()

	status := func(id string) int {
		r, err := http.Get(srv.URL + "/v1/jobs/" + id + "/frontier")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}

	// Unknown job: 404.
	if got := status("nope"); got != http.StatusNotFound {
		t.Fatalf("unknown job returned %d, want 404", got)
	}

	// A job still in its first round has no ensemble yet: 409, poll again.
	info, err := s.Submit(fastJobRequest("blocked"))
	if err != nil {
		t.Fatal(err)
	}
	if got := status(info.ID); got != http.StatusConflict {
		t.Fatalf("ensemble-less job returned %d, want 409", got)
	}
	close(block)
	if done := awaitJob(t, s, info.ID); done.Status != JobDone {
		t.Fatalf("job finished %s (%s)", done.Status, done.Error)
	}

	// Sweep jobs have no live ensemble to predict a frontier from: 400.
	swInfo, err := s.SubmitSweep(SweepRequest{Model: "blocked", TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		si, err := s.Get(swInfo.ID)
		if err != nil {
			t.Fatal(err)
		}
		if si.Status != JobQueued && si.Status != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep job did not settle")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := status(swInfo.ID); got != http.StatusBadRequest {
		t.Fatalf("sweep job frontier returned %d, want 400", got)
	}
}

// TestSubmitRejectsBadAcquireSpec: malformed specs fail at submission,
// not as a dead job minutes later.
func TestSubmitRejectsBadAcquireSpec(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	s := NewJobStore(reg, testBackend(0, nil), 1, 1, CoalesceOpts{})
	defer s.Close()
	for _, spec := range []string{"entropy", "hvi:best=out0", "variance:out0>=x"} {
		req := fastJobRequest("bad")
		req.Acquire = spec
		if _, err := s.Submit(req); err == nil {
			t.Fatalf("spec %q accepted at submit", spec)
		}
	}
}

// TestAcquireJobFailsOnNarrowOracle: an acquisition spec referencing a
// second output against a one-output oracle fails the job with an
// error naming the width mismatch instead of panicking a worker.
func TestAcquireJobFailsOnNarrowOracle(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	s := NewJobStore(reg, testBackend(0, nil), 1, 4, CoalesceOpts{})
	defer s.Close()
	req := ExploreRequest{
		Name:    "narrow",
		Study:   "synth",
		App:     "none",
		Budget:  24,
		Batch:   12,
		Seed:    5,
		Acquire: "hvi:max=out0:min=out1",
	}
	info, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done := awaitJob(t, s, info.ID)
	if done.Status != JobFailed {
		t.Fatalf("narrow-oracle acquisition job finished %s, want failed", done.Status)
	}
	if !strings.Contains(done.Error, "output") {
		t.Fatalf("failure %q does not name the output-width mismatch", done.Error)
	}
}
