package serve

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// errClosed is returned to requests that arrive while the model is
// being shut down.
var errClosed = errors.New("serve: model closed")

// CoalesceOpts tunes the request coalescer.
type CoalesceOpts struct {
	// MaxBatch flushes a batch once this many single-point requests are
	// pending (default 256, half a predict chunk per flush at most).
	MaxBatch int
	// Linger is how long the dispatcher waits for more requests after
	// the first one of a batch arrives (default 200µs). Zero keeps the
	// default; coalescing cannot be disabled, only shortened, because a
	// lone request still flushes after at most one linger window.
	Linger time.Duration
}

func (o CoalesceOpts) withDefaults() CoalesceOpts {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Linger <= 0 {
		o.Linger = 200 * time.Microsecond
	}
	return o
}

// CoalesceStats counts the coalescer's traffic: Requests single-point
// queries answered, in Flushes batched ensemble calls.
type CoalesceStats struct {
	Requests int64 `json:"requests"`
	Flushes  int64 `json:"flushes"`
}

type pointReq struct {
	x    []float64
	resp chan pointResp
}

type pointResp struct {
	mean, variance float64
}

// coalescer funnels concurrent single-point predictions into batched
// ensemble calls. Per-point HTTP traffic would otherwise pay one full
// per-member forward pass per request; the dispatcher instead gathers
// whatever requests arrive within one linger window (or MaxBatch,
// whichever is first) and answers them all with a single
// PredictVarianceBatch, so serving throughput rides the same vectorized
// kernels as candidate-pool scoring. Batching changes no bits: rows are
// independent and the batched kernels are bit-identical to the
// per-point path.
type coalescer struct {
	ens   *core.Ensemble
	width int
	opts  CoalesceOpts

	reqs chan pointReq
	quit chan struct{}
	done chan struct{}

	requests atomic.Int64
	flushes  atomic.Int64

	// Dispatcher-owned flush buffers, reused across flushes.
	batch    []pointReq
	xs       []float64
	mean     []float64
	variance []float64
}

func newCoalescer(ens *core.Ensemble, width int, opts CoalesceOpts) *coalescer {
	c := &coalescer{
		ens:   ens,
		width: width,
		opts:  opts.withDefaults(),
		reqs:  make(chan pointReq),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go c.run()
	return c
}

// predict answers one encoded point through the coalescer.
func (c *coalescer) predict(x []float64) (mean, variance float64, err error) {
	r := pointReq{x: x, resp: make(chan pointResp, 1)}
	select {
	case c.reqs <- r:
	case <-c.quit:
		return 0, 0, errClosed
	}
	select {
	case resp := <-r.resp:
		return resp.mean, resp.variance, nil
	case <-c.quit:
		return 0, 0, errClosed
	}
}

// stats returns the traffic counters.
func (c *coalescer) stats() CoalesceStats {
	return CoalesceStats{Requests: c.requests.Load(), Flushes: c.flushes.Load()}
}

// close stops the dispatcher; in-flight requests receive errClosed.
func (c *coalescer) close() {
	close(c.quit)
	<-c.done
}

func (c *coalescer) run() {
	defer close(c.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-c.quit:
			return
		case first := <-c.reqs:
			c.batch = append(c.batch[:0], first)
			timer.Reset(c.opts.Linger)
		gather:
			for len(c.batch) < c.opts.MaxBatch {
				select {
				case r := <-c.reqs:
					c.batch = append(c.batch, r)
				case <-timer.C:
					break gather
				case <-c.quit:
					c.flush()
					return
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			c.flush()
		}
	}
}

// flush answers every gathered request with one batched ensemble call.
func (c *coalescer) flush() {
	rows := len(c.batch)
	if rows == 0 {
		return
	}
	if need := rows * c.width; cap(c.xs) < need {
		c.xs = make([]float64, need)
		c.mean = make([]float64, rows)
		c.variance = make([]float64, rows)
	}
	c.xs = c.xs[:rows*c.width]
	c.mean = c.mean[:rows]
	c.variance = c.variance[:rows]
	for i, r := range c.batch {
		copy(c.xs[i*c.width:(i+1)*c.width], r.x)
	}
	c.ens.PredictVarianceBatch(c.xs, rows, c.mean, c.variance)
	c.flushes.Add(1)
	c.requests.Add(int64(rows))
	for i, r := range c.batch {
		r.resp <- pointResp{mean: c.mean[i], variance: c.variance[i]}
	}
	c.batch = c.batch[:0]
}
