package serve

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/ann"
	"repro/internal/core"
)

// errClosed is returned to requests that arrive while the model is
// being shut down (or swapped out by a reload; the predict handler
// retries those against the replacement).
var errClosed = errors.New("serve: model closed")

// CoalesceOpts tunes the request coalescer.
type CoalesceOpts struct {
	// MaxBatch flushes a batch once this many single-point requests are
	// pending (default 256, half a predict chunk per flush at most).
	MaxBatch int
	// Linger is how long the dispatcher waits for more requests after
	// the first one of a batch arrives (default 200µs). Zero keeps the
	// default; coalescing cannot be disabled, only shortened, because a
	// lone request still flushes after at most one linger window.
	Linger time.Duration
}

func (o CoalesceOpts) withDefaults() CoalesceOpts {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Linger <= 0 {
		o.Linger = 200 * time.Microsecond
	}
	return o
}

// CoalesceStats counts the coalescer's traffic: Requests single-point
// queries answered (including flush-time cache hits), in Flushes
// batched kernel calls.
type CoalesceStats struct {
	Requests int64 `json:"requests"`
	Flushes  int64 `json:"flushes"`
}

// batchBuckets are the coalesce-batch-size histogram bounds (rows per
// kernel call); the final histogram slot is the +Inf overflow.
var batchBuckets = [...]int{1, 2, 4, 8, 16, 32, 64, 128, 256}

const nBatchBuckets = len(batchBuckets) + 1

type pointReq struct {
	x    []float64
	mode ann.KernelMode
	key  cacheKey
	resp chan pointResp
}

type pointResp struct {
	mean, variance float64
}

// kernelFlushOrder fixes the per-flush partition order, so a mixed
// batch always computes tiers in the same sequence.
var kernelFlushOrder = [...]ann.KernelMode{ann.KernelExact, ann.KernelFast, ann.KernelFast32}

// coalescer funnels concurrent single-point predictions into batched
// ensemble calls. Per-point HTTP traffic would otherwise pay one full
// per-member forward pass per request; the dispatcher instead gathers
// whatever requests arrive within one linger window (or MaxBatch,
// whichever is first) and answers them all with batched kernel calls,
// so serving throughput rides the same vectorized kernels as
// candidate-pool scoring. Batching changes no bits: rows are
// independent and the batched kernels are bit-identical to the
// per-point path within a kernel tier.
//
// The coalescer is also where the prediction cache earns its
// "coalescing-aware" label: requests whose key was filled between
// admission and flush (typically by the previous flush of the same hot
// point) are answered from the cache, and only the misses reach a
// kernel — a flush computes exactly the work nobody has done yet.
type coalescer struct {
	ens   *core.Ensemble
	width int
	opts  CoalesceOpts
	cache *predCache // nil = caching off

	reqs chan pointReq
	quit chan struct{}
	done chan struct{}

	requests atomic.Int64
	flushes  atomic.Int64

	batchHist [nBatchBuckets]atomic.Int64
	batchRows atomic.Int64

	// Dispatcher-owned flush buffers, reused across flushes.
	batch    []pointReq
	part     []pointReq
	xs       []float64
	mean     []float64
	variance []float64
}

func newCoalescer(ens *core.Ensemble, width int, opts CoalesceOpts, cache *predCache) *coalescer {
	c := &coalescer{
		ens:   ens,
		width: width,
		opts:  opts.withDefaults(),
		cache: cache,
		reqs:  make(chan pointReq),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go c.run()
	return c
}

// predict answers one encoded point through the coalescer with the
// given kernel tier. key addresses the point in the prediction cache
// and is ignored when caching is off.
func (c *coalescer) predict(x []float64, mode ann.KernelMode, key cacheKey) (mean, variance float64, err error) {
	r := pointReq{x: x, mode: mode, key: key, resp: make(chan pointResp, 1)}
	select {
	case c.reqs <- r:
	case <-c.quit:
		return 0, 0, errClosed
	}
	select {
	case resp := <-r.resp:
		return resp.mean, resp.variance, nil
	case <-c.quit:
		return 0, 0, errClosed
	}
}

// stats returns the traffic counters.
func (c *coalescer) stats() CoalesceStats {
	return CoalesceStats{Requests: c.requests.Load(), Flushes: c.flushes.Load()}
}

// batchHistogram snapshots the rows-per-kernel-call histogram and the
// total rows computed (the histogram's sum).
func (c *coalescer) batchHistogram() (counts [nBatchBuckets]int64, rows int64) {
	for i := range counts {
		counts[i] = c.batchHist[i].Load()
	}
	return counts, c.batchRows.Load()
}

// close stops the dispatcher; in-flight requests receive errClosed.
func (c *coalescer) close() {
	close(c.quit)
	<-c.done
}

func (c *coalescer) run() {
	defer close(c.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-c.quit:
			return
		case first := <-c.reqs:
			c.batch = append(c.batch[:0], first)
			timer.Reset(c.opts.Linger)
		gather:
			for len(c.batch) < c.opts.MaxBatch {
				select {
				case r := <-c.reqs:
					c.batch = append(c.batch, r)
				case <-timer.C:
					break gather
				case <-c.quit:
					c.flush()
					return
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			c.flush()
		}
	}
}

// recordBatch tallies one kernel call of n rows.
func (c *coalescer) recordBatch(n int) {
	slot := nBatchBuckets - 1
	for i, ub := range batchBuckets {
		if n <= ub {
			slot = i
			break
		}
	}
	c.batchHist[slot].Add(1)
	c.batchRows.Add(int64(n))
}

// flush answers every gathered request: cache hits immediately, the
// misses with one batched kernel call per kernel tier present.
func (c *coalescer) flush() {
	if len(c.batch) == 0 {
		return
	}
	answered := int64(0)

	// Recheck the cache at flush time: a point admitted as a miss may
	// have been filled by an earlier flush in the same linger storm.
	// peek, not get — the handler already counted this request's
	// hit/miss outcome at admission.
	if c.cache != nil {
		miss := c.batch[:0]
		for _, r := range c.batch {
			if v, ok := c.cache.peek(r.key); ok {
				r.resp <- pointResp{mean: v.mean, variance: v.variance}
				answered++
			} else {
				miss = append(miss, r)
			}
		}
		c.batch = miss
	}

	if rows := len(c.batch); rows > 0 {
		if need := rows * c.width; cap(c.xs) < need {
			c.xs = make([]float64, need)
			c.mean = make([]float64, rows)
			c.variance = make([]float64, rows)
		}
		c.part = c.part[:0]
		for _, mode := range kernelFlushOrder {
			start := len(c.part)
			for _, r := range c.batch {
				if r.mode == mode {
					c.part = append(c.part, r)
				}
			}
			seg := c.part[start:]
			n := len(seg)
			if n == 0 {
				continue
			}
			xs := c.xs[:n*c.width]
			mean := c.mean[:n]
			variance := c.variance[:n]
			for i, r := range seg {
				copy(xs[i*c.width:(i+1)*c.width], r.x)
			}
			c.ens.PredictOutputVarianceBatchKernel(0, xs, n, mean, variance, mode)
			c.flushes.Add(1)
			c.recordBatch(n)
			for i, r := range seg {
				if c.cache != nil {
					c.cache.put(r.key, cacheVal{mean: mean[i], variance: variance[i]})
				}
				r.resp <- pointResp{mean: mean[i], variance: variance[i]}
			}
		}
		answered += int64(rows)
	}

	c.requests.Add(answered)
	c.batch = c.batch[:0]
	c.part = c.part[:0]
}
