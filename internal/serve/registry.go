package serve

import (
	"fmt"
	"sync"

	"repro/internal/bundle"
)

// Model is one named entry of the registry: a loaded bundle plus its
// request coalescer. The name is an *alias* — reload swaps a new
// bundle (a new Version) under the same name atomically, so clients
// keep addressing "mcf" while operators roll artifacts underneath.
type Model struct {
	Name string
	// Version is a registry-wide monotonic id assigned at registration
	// and on every reload. Prediction-cache keys carry it, so entries
	// memoized against a replaced bundle are implicitly invalidated.
	Version int64
	// Path is the bundle's source file; reload re-reads it when the
	// request names no other. Empty for in-memory bundles (for example
	// models registered by finished exploration jobs), which are only
	// reloadable from an explicit path.
	Path    string
	Bundle  *bundle.Bundle
	coal    *coalescer
	opts    CoalesceOpts
	workers int
}

// Stats returns the model's coalescing counters.
func (m *Model) Stats() CoalesceStats { return m.coal.stats() }

// Registry holds the named models a server answers queries for. It is
// safe for concurrent use; models are added at startup or by finished
// jobs, swapped by reload, and read by every request.
type Registry struct {
	mu          sync.RWMutex
	models      map[string]*Model
	order       []string
	lastVersion int64
	cache       *predCache
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*Model)}
}

// EnableCache bounds the registry's shared exact prediction cache at
// entries predictions (<= 0 leaves caching off). Call before Add —
// each model's coalescer captures the cache at registration.
func (r *Registry) EnableCache(entries int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = newPredCache(entries)
}

// CacheStats snapshots the prediction cache's counters (zero when
// caching is off).
func (r *Registry) CacheStats() CacheStats {
	r.mu.RLock()
	c := r.cache
	r.mu.RUnlock()
	return c.stats()
}

// Add registers a bundle under name and starts its coalescer.
func (r *Registry) Add(name string, b *bundle.Bundle, opts CoalesceOpts) (*Model, error) {
	return r.add(name, "", b, opts, 0)
}

// AddFile loads the bundle at path and registers it under name,
// recording the path (for hot reload) and the ensemble worker bound
// (0 = the ensemble's default, reapplied on every reload).
func (r *Registry) AddFile(name, path string, opts CoalesceOpts, workers int) (*Model, error) {
	b, err := bundle.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if workers != 0 {
		b.Ensemble.SetWorkers(workers)
	}
	return r.add(name, path, b, opts, workers)
}

func (r *Registry) add(name, path string, b *bundle.Bundle, opts CoalesceOpts, workers int) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: model name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[name]; dup {
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	r.lastVersion++
	m := &Model{
		Name:    name,
		Version: r.lastVersion,
		Path:    path,
		Bundle:  b,
		coal:    newCoalescer(b.Ensemble, b.Encoder.Width(), opts, r.cache),
		opts:    opts,
		workers: workers,
	}
	r.models[name] = m
	r.order = append(r.order, name)
	return m, nil
}

// Reload loads a fresh bundle and swaps it under the alias name
// atomically: one moment every new request sees the old version, the
// next moment the new one. path == "" re-reads the model's registered
// source file. The displaced coalescer is closed after the swap;
// requests caught mid-swap observe errClosed and are transparently
// retried against the new version by the predict handler, so a roll
// drops zero requests (proven by TestReloadUnderLoad).
func (r *Registry) Reload(name, path string) (*Model, error) {
	r.mu.RLock()
	old, ok := r.models[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	if path == "" {
		path = old.Path
	}
	if path == "" {
		return nil, fmt.Errorf("serve: model %q was registered in-memory; reload needs an explicit \"path\"", name)
	}
	b, err := bundle.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if old.workers != 0 {
		b.Ensemble.SetWorkers(old.workers)
	}
	r.mu.Lock()
	displaced, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("serve: model %q disappeared during reload", name)
	}
	r.lastVersion++
	m := &Model{
		Name:    name,
		Version: r.lastVersion,
		Path:    path,
		Bundle:  b,
		coal:    newCoalescer(b.Ensemble, b.Encoder.Width(), old.opts, r.cache),
		opts:    old.opts,
		workers: old.workers,
	}
	r.models[name] = m
	r.mu.Unlock()
	displaced.coal.close()
	return m, nil
}

// Get resolves a model by name. The empty name resolves to the single
// registered model, so clients of a one-model server may omit it.
func (r *Registry) Get(name string) (*Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.order) == 1 {
			return r.models[r.order[0]], nil
		}
		return nil, fmt.Errorf("serve: %d models loaded, request must name one of them", len(r.order))
	}
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	return m, nil
}

// Names lists the registered models in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}

// Close stops every model's coalescer. In-flight requests receive an
// error; the registry must not be used afterwards.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		r.models[name].coal.close()
	}
}
