package serve

import (
	"fmt"
	"sync"

	"repro/internal/bundle"
)

// Model is one named entry of the registry: a loaded bundle plus its
// request coalescer.
type Model struct {
	Name   string
	Bundle *bundle.Bundle
	coal   *coalescer
}

// Stats returns the model's coalescing counters.
func (m *Model) Stats() CoalesceStats { return m.coal.stats() }

// Registry holds the named models a server answers queries for. It is
// safe for concurrent use; models are added at startup and read by
// every request.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*Model
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*Model)}
}

// Add registers a bundle under name and starts its coalescer.
func (r *Registry) Add(name string, b *bundle.Bundle, opts CoalesceOpts) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: model name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[name]; dup {
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	m := &Model{
		Name:   name,
		Bundle: b,
		coal:   newCoalescer(b.Ensemble, b.Encoder.Width(), opts),
	}
	r.models[name] = m
	r.order = append(r.order, name)
	return m, nil
}

// Get resolves a model by name. The empty name resolves to the single
// registered model, so clients of a one-model server may omit it.
func (r *Registry) Get(name string) (*Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if len(r.order) == 1 {
			return r.models[r.order[0]], nil
		}
		return nil, fmt.Errorf("serve: %d models loaded, request must name one of them", len(r.order))
	}
	m, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown model %q", name)
	}
	return m, nil
}

// Names lists the registered models in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}

// Close stops every model's coalescer. In-flight requests receive an
// error; the registry must not be used afterwards.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		r.models[name].coal.close()
	}
}
