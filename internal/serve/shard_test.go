package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/bundle"
	"repro/internal/sweep"
)

// postShard submits one shard request and decodes the response,
// returning the HTTP status and (on 200) the shard document.
func postShard(t *testing.T, url string, req ShardRequest) (int, *ShardResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweep/shard", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, nil, e.Error
	}
	var out ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &out, ""
}

// TestSweepShardsMergeToFullRun: two served shards must merge into the
// exact in-process full-space reduction — the node-side half of the
// distributed bit-identity guarantee.
func TestSweepShardsMergeToFullRun(t *testing.T) {
	ts, _, b := newTestServer(t, CoalesceOpts{})
	set, sp, err := sweep.Resolve(sweep.DefaultSpecs([]string{"synth"}),
		map[string]*bundle.Bundle{"synth": b})
	if err != nil {
		t.Fatal(err)
	}
	size := sp.Size()
	mid := (size / 2) - 3 // deliberately not chunk-aligned
	req := SweepRequest{Model: "synth", TopK: 5, Chunk: 16}

	status, left, _ := postShard(t, ts.URL, ShardRequest{SweepRequest: req, Start: 0, End: mid})
	if status != http.StatusOK {
		t.Fatalf("left shard status %d", status)
	}
	status, right, _ := postShard(t, ts.URL, ShardRequest{SweepRequest: req, Start: mid})
	if status != http.StatusOK {
		t.Fatalf("right shard status %d", status)
	}
	if left.Partial.End != mid || right.Partial.Start != mid || right.Partial.End != size {
		t.Fatalf("shard ranges [%d,%d) and [%d,%d)", left.Partial.Start, left.Partial.End,
			right.Partial.Start, right.Partial.End)
	}
	if err := left.Partial.Merge(right.Partial); err != nil {
		t.Fatal(err)
	}

	want, err := sweep.Run(context.Background(), sp, set, sweep.Config{TopK: 5, ChunkSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	got := left.Partial.Result()
	want.Elapsed, want.PointsPerSec = 0, 0
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("served shards != in-process run\ngot  %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestSweepShardValidation: malformed shard requests answer 4xx with
// errors naming the problem; nothing is computed.
func TestSweepShardValidation(t *testing.T) {
	ts, _, b := newTestServer(t, CoalesceOpts{})
	size := b.Space.Size()
	cases := []struct {
		req    ShardRequest
		status int
		want   string
	}{
		{ShardRequest{SweepRequest: SweepRequest{Model: "nope"}}, http.StatusNotFound, "unknown model"},
		{ShardRequest{SweepRequest: SweepRequest{Model: "synth"}, Start: -1, End: 5}, http.StatusBadRequest, "Config.Start"},
		{ShardRequest{SweepRequest: SweepRequest{Model: "synth"}, Start: 0, End: size + 9}, http.StatusBadRequest, "Config.End"},
		{ShardRequest{SweepRequest: SweepRequest{Model: "synth"}, Start: 9, End: 4}, http.StatusBadRequest, "before"},
		{ShardRequest{SweepRequest: SweepRequest{Model: "synth", Chunk: -2}}, http.StatusBadRequest, "chunk"},
		{ShardRequest{SweepRequest: SweepRequest{Models: []string{"synth", "synth"}}}, http.StatusBadRequest, "listed twice"},
	}
	for _, tc := range cases {
		status, _, msg := postShard(t, ts.URL, tc.req)
		if status != tc.status || !strings.Contains(msg, tc.want) {
			t.Errorf("req %+v: status %d, error %q; want %d containing %q", tc.req, status, msg, tc.status, tc.want)
		}
	}
}
