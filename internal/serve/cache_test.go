package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/bundle"
)

// newCachedServer is newTestServer with the exact prediction cache
// bounded at entries.
func newCachedServer(t testing.TB, entries int, opts CoalesceOpts) (*httptest.Server, *Registry, *bundle.Bundle) {
	t.Helper()
	b := trainedBundle(t)
	reg := NewRegistry()
	reg.EnableCache(entries)
	if _, err := reg.Add("synth", b, opts); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return ts, reg, b
}

// TestCacheBitIdentityAllTiers is the cache's exactness proof: for
// every kernel tier, the first (computed, cache-filling) response and
// the second (cache-served) response are bit-identical to the
// ensemble's direct answer for that tier. JSON carries float64 at full
// round-trip precision, so == on the decoded values is a bit
// comparison.
func TestCacheBitIdentityAllTiers(t *testing.T) {
	ts, reg, b := newCachedServer(t, 1024, CoalesceOpts{Linger: time.Millisecond})
	for _, tier := range []struct {
		name string
		mode ann.KernelMode
	}{
		{"exact", ann.KernelExact},
		{"fast", ann.KernelFast},
		{"fast32", ann.KernelFast32},
	} {
		t.Run(tier.name, func(t *testing.T) {
			for _, point := range []int{0, 7, 19, 39} {
				x := b.Encoder.EncodeIndex(point, nil)
				wantMean := make([]float64, 1)
				wantVar := make([]float64, 1)
				b.Ensemble.PredictOutputVarianceBatchKernel(0, x, 1, wantMean, wantVar, tier.mode)

				body := fmt.Sprintf(`{"model":"synth","point":%d,"kernel":%q}`, point, tier.name)
				for _, label := range []string{"computed", "cached"} {
					_, out := postJSON(t, ts.URL+"/v1/predict", body)
					if got := out["prediction"].(float64); got != wantMean[0] {
						t.Fatalf("%s point %d (%s pass): prediction %v, ensemble says %v",
							tier.name, point, label, got, wantMean[0])
					}
					if got := out["variance"].(float64); got != wantVar[0] {
						t.Fatalf("%s point %d (%s pass): variance %v, ensemble says %v",
							tier.name, point, label, got, wantVar[0])
					}
				}
			}
		})
	}
	st := reg.CacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses after repeat queries, got %+v", st)
	}
}

// TestCacheHitSkipsEnsemble proves a hit is served without touching
// the ensemble: the coalescer's request counter (every request that
// reaches the dispatch path) must not move on the cached pass.
func TestCacheHitSkipsEnsemble(t *testing.T) {
	ts, reg, _ := newCachedServer(t, 64, CoalesceOpts{Linger: time.Millisecond})
	body := `{"model":"synth","point":3}`
	postJSON(t, ts.URL+"/v1/predict", body) // fill
	m, err := reg.Get("synth")
	if err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	for i := 0; i < 5; i++ {
		postJSON(t, ts.URL+"/v1/predict", body)
	}
	after := m.Stats()
	if after.Requests != before.Requests || after.Flushes != before.Flushes {
		t.Fatalf("cache hits reached the coalescer: before %+v, after %+v", before, after)
	}
	if st := reg.CacheStats(); st.Hits < 5 {
		t.Fatalf("expected >=5 hits, got %+v", st)
	}
}

// TestCacheHitAllocationFree pins the hot path: a cache hit performs
// no allocations (comparable-struct key, CLOCK reference bit instead
// of LRU list surgery).
func TestCacheHitAllocationFree(t *testing.T) {
	c := newPredCache(256)
	k := cacheKey{version: 1, kernel: ann.KernelFast32, index: 42}
	c.put(k, cacheVal{mean: 1.5, variance: 0.25})
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.get(k); !ok {
			t.Fatal("lost the cached entry")
		}
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %.1f objects per op; want 0", allocs)
	}
}

// TestCacheEvictionBounded fills a small cache far past capacity and
// checks the bound holds, evictions are counted, and entries stay
// addressable.
func TestCacheEvictionBounded(t *testing.T) {
	const capEntries = 32
	c := newPredCache(capEntries)
	for i := 0; i < 10*capEntries; i++ {
		c.put(cacheKey{version: 1, index: i}, cacheVal{mean: float64(i)})
	}
	st := c.stats()
	if st.Entries > capEntries+predCacheShards {
		// Shard capacity rounds up: at most one extra entry per shard.
		t.Fatalf("cache holds %d entries, bound was %d", st.Entries, capEntries)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded despite 10x overfill")
	}
	found := 0
	for i := 0; i < 10*capEntries; i++ {
		if v, ok := c.peek(cacheKey{version: 1, index: i}); ok {
			if v.mean != float64(i) {
				t.Fatalf("entry %d corrupted: %v", i, v.mean)
			}
			found++
		}
	}
	if found != st.Entries {
		t.Fatalf("stats say %d entries, probing found %d", st.Entries, found)
	}
}

// TestCacheCLOCKPrefersUnreferenced checks the CLOCK policy at the
// shard level: a referenced (recently hit) entry survives an eviction
// that claims an unreferenced one.
func TestCacheCLOCKPrefersUnreferenced(t *testing.T) {
	sh := cacheShard{idx: make(map[cacheKey]int32), max: 2}
	k1 := cacheKey{index: 1}
	k2 := cacheKey{index: 2}
	k3 := cacheKey{index: 3}
	sh.put(k1, cacheVal{mean: 1})
	sh.put(k2, cacheVal{mean: 2})
	sh.get(k1) // sets k1's reference bit
	if evicted := sh.put(k3, cacheVal{mean: 3}); !evicted {
		t.Fatal("full shard did not evict")
	}
	if _, ok := sh.get(k1); !ok {
		t.Fatal("referenced entry was evicted ahead of the unreferenced one")
	}
	if _, ok := sh.get(k2); ok {
		t.Fatal("unreferenced entry survived the eviction")
	}
	if v, ok := sh.get(k3); !ok || v.mean != 3 {
		t.Fatalf("new entry missing after eviction: %v %v", v, ok)
	}
}

// TestCoalescerFlushComputesOnlyMisses: pre-filled keys are answered
// from the cache at flush time, and the kernel sees exactly the
// misses — the histogram's row total is the count of cold points.
func TestCoalescerFlushComputesOnlyMisses(t *testing.T) {
	b := trainedBundle(t)
	cache := newPredCache(64)
	c := newCoalescer(b.Ensemble, b.Encoder.Width(), CoalesceOpts{Linger: 20 * time.Millisecond, MaxBatch: 64}, cache)
	defer c.close()

	const warm, total = 6, 12
	for i := 0; i < warm; i++ {
		x := b.Encoder.EncodeIndex(i, nil)
		mean, vr := b.Ensemble.PredictVariance(x)
		cache.put(cacheKey{version: 1, index: i}, cacheVal{mean: mean, variance: vr})
	}
	var wg sync.WaitGroup
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := b.Encoder.EncodeIndex(i, nil)
			wantMean, wantVar := b.Ensemble.PredictVariance(x)
			mean, vr, err := c.predict(x, ann.KernelExact, cacheKey{version: 1, index: i})
			if err != nil {
				errs <- err
				return
			}
			if mean != wantMean || vr != wantVar {
				errs <- fmt.Errorf("point %d: got (%v,%v), want (%v,%v)", i, mean, vr, wantMean, wantVar)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, rows := c.batchHistogram(); rows != total-warm {
		t.Fatalf("kernel computed %d rows; only the %d misses should reach it", rows, total-warm)
	}
	if st := c.stats(); st.Requests != total {
		t.Fatalf("coalescer answered %d requests, want %d", st.Requests, total)
	}
}

// TestCoalescerMixedTierBatch drives concurrent requests of different
// kernel tiers through one coalescer and checks each answer against
// its own tier's direct computation — the flush partitions correctly.
func TestCoalescerMixedTierBatch(t *testing.T) {
	b := trainedBundle(t)
	c := newCoalescer(b.Ensemble, b.Encoder.Width(), CoalesceOpts{Linger: 20 * time.Millisecond, MaxBatch: 64}, nil)
	defer c.close()

	modes := []ann.KernelMode{ann.KernelExact, ann.KernelFast, ann.KernelFast32}
	const perMode = 5
	var wg sync.WaitGroup
	errs := make(chan error, len(modes)*perMode)
	for _, mode := range modes {
		for i := 0; i < perMode; i++ {
			wg.Add(1)
			go func(mode ann.KernelMode, i int) {
				defer wg.Done()
				x := b.Encoder.EncodeIndex(i, nil)
				wantMean := make([]float64, 1)
				wantVar := make([]float64, 1)
				b.Ensemble.PredictOutputVarianceBatchKernel(0, x, 1, wantMean, wantVar, mode)
				mean, vr, err := c.predict(x, mode, cacheKey{})
				if err != nil {
					errs <- err
					return
				}
				if mean != wantMean[0] || vr != wantVar[0] {
					errs <- fmt.Errorf("mode %v point %d: got (%v,%v), want (%v,%v)",
						mode, i, mean, vr, wantMean[0], wantVar[0])
				}
			}(mode, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPredictRejectsUnknownKernel: a bad tier name is a 400, not a
// silent fallback.
func TestPredictRejectsUnknownKernel(t *testing.T) {
	ts, _, _ := newTestServer(t, CoalesceOpts{})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"model":"synth","point":1,"kernel":"warp"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kernel answered %d, want 400", resp.StatusCode)
	}
}
