package serve

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrape fetches /metrics and returns the body plus a flat map of
// sample line → value for exact-line assertions.
func scrape(t *testing.T, url string) (string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics answered %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample line %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return string(raw), samples
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := newCachedServer(t, 128, CoalesceOpts{Linger: time.Millisecond})
	// Traffic: two identical predicts (miss then hit) and one bad
	// request for the 4xx class.
	postJSON(t, ts.URL+"/v1/predict", `{"model":"synth","point":5}`)
	postJSON(t, ts.URL+"/v1/predict", `{"model":"synth","point":5}`)
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(`{"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	body, samples := scrape(t, ts.URL)
	for line, want := range map[string]float64{
		`repro_cache_hits_total`:                          1,
		`repro_cache_misses_total`:                        1,
		`repro_cache_entries`:                             1,
		`repro_cache_capacity`:                            128,
		`repro_http_requests_total{class="4xx"}`:          1,
		`repro_model_requests_total{model="synth"}`:       1, // the hit never reached the coalescer
		`repro_ratelimit_rejections_total{reason="rate"}`: 0,
	} {
		if got, ok := samples[line]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", line, got, ok, want)
		}
	}
	// Histograms expose cumulative buckets, sum and count.
	for _, family := range []string{
		`repro_http_request_duration_seconds_bucket{le="+Inf"}`,
		"repro_http_request_duration_seconds_sum",
		"repro_http_request_duration_seconds_count",
		`repro_coalesce_batch_size_bucket{model="synth",le="+Inf"}`,
		`repro_coalesce_batch_size_sum{model="synth"}`,
	} {
		if _, ok := samples[family]; !ok {
			t.Errorf("missing %s in:\n%s", family, body)
		}
	}
	if samples[`repro_http_request_duration_seconds_bucket{le="+Inf"}`] < 3 {
		t.Error("latency histogram missed requests")
	}
}

func TestMetricsDeterministicOrder(t *testing.T) {
	ts, _, _ := newTestServer(t, CoalesceOpts{})
	a, _ := scrape(t, ts.URL)
	b, _ := scrape(t, ts.URL)
	// The only drift between two idle scrapes is the scrape traffic
	// itself (request counters and latency observations); family and
	// label ordering must be byte-stable. Compare structure: the
	// sequence of sample keys.
	keys := func(doc string) string {
		var sb strings.Builder
		for _, line := range strings.Split(doc, "\n") {
			if line == "" {
				continue
			}
			if i := strings.LastIndexByte(line, ' '); i > 0 && !strings.HasPrefix(line, "#") {
				sb.WriteString(line[:i])
			} else {
				sb.WriteString(line)
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	if keys(a) != keys(b) {
		t.Fatalf("scrape structure drifted between identical scrapes:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestLabelEscapeRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"plain",
		`back\slash`,
		`qu"ote`,
		"new\nline",
		`all "three" \ at
once`,
		"trailing backslash \\",
	}
	for _, s := range cases {
		esc := escapeLabel(s)
		if strings.ContainsAny(esc, "\n\"") {
			// Escaped values must be safe to embed between quotes.
			if strings.Contains(esc, "\n") || containsUnescapedQuote(esc) {
				t.Errorf("escapeLabel(%q) = %q still contains raw specials", s, esc)
			}
		}
		back, ok := unescapeLabel(esc)
		if !ok || back != s {
			t.Errorf("round trip broke: %q -> %q -> (%q, %v)", s, esc, back, ok)
		}
	}
	// Invalid escapes are rejected, not mangled.
	for _, bad := range []string{`\`, `\x`, "raw\nnewline", `raw"quote`} {
		if out, ok := unescapeLabel(bad); ok {
			t.Errorf("unescapeLabel(%q) accepted invalid input as %q", bad, out)
		}
	}
}

func containsUnescapedQuote(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return true
		}
	}
	return false
}
