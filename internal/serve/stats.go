package serve

import (
	"net/http"
	"sync/atomic"
)

// ServerStats is the /v1/stats document: lightweight counters a load
// harness (internal/loadsim) polls to report server-side efficiency
// alongside client-side latency. Everything here is atomically
// maintained; the endpoint costs one JSON encode, no locks on the
// request path.
type ServerStats struct {
	// Requests counts every HTTP request served (including /v1/stats
	// itself).
	Requests int64 `json:"requests"`
	// InFlight is the number of requests currently being handled.
	InFlight int64 `json:"in_flight"`
	// ClientErrors counts 4xx responses, ServerErrors 5xx.
	ClientErrors int64 `json:"client_errors"`
	ServerErrors int64 `json:"server_errors"`
	// Models maps each registered model to its coalescer counters:
	// single-point requests answered and the batched flushes that
	// answered them — requests/flushes is the mean coalesced batch size.
	Models map[string]CoalesceStats `json:"models"`
	// Cache is the exact prediction cache's counters (all zero when
	// caching is off), RateLimit the admission-control rejections.
	// /metrics exports the same numbers; /v1/stats keeps carrying them
	// for older pollers (see the migration note in the README).
	Cache     CacheStats     `json:"cache"`
	RateLimit RateLimitStats `json:"rate_limit"`
	// Jobs is the number of jobs the store has accepted (0 with no job
	// store), JobsActive how many are queued or running right now.
	Jobs       int `json:"jobs"`
	JobsActive int `json:"jobs_active"`
}

// counters is the server's atomic tally.
type counters struct {
	requests     atomic.Int64
	inFlight     atomic.Int64
	clientErrors atomic.Int64
	serverErrors atomic.Int64
}

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// countRequest wraps the whole mux so every endpoint is counted,
// timed, and subject to admission control.
func (s *Server) countRequest(w http.ResponseWriter, r *http.Request) {
	start := nowMono()
	s.ctr.requests.Add(1)
	s.ctr.inFlight.Add(1)
	defer s.ctr.inFlight.Add(-1)
	rec := &statusRecorder{ResponseWriter: w}
	s.admitAndServe(rec, r)
	s.lat.observe(nowMono().Sub(start))
	switch {
	case rec.status >= 500:
		s.ctr.serverErrors.Add(1)
	case rec.status >= 400:
		s.ctr.clientErrors.Add(1)
	}
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Requests:     s.ctr.requests.Load(),
		InFlight:     s.ctr.inFlight.Load(),
		ClientErrors: s.ctr.clientErrors.Load(),
		ServerErrors: s.ctr.serverErrors.Load(),
		Models:       map[string]CoalesceStats{},
		Cache:        s.reg.CacheStats(),
		RateLimit:    s.adm.stats(),
	}
	for _, name := range s.reg.Names() {
		m, err := s.reg.Get(name)
		if err != nil {
			continue
		}
		st.Models[m.Name] = m.Stats()
	}
	if s.jobs != nil {
		infos := s.jobs.List()
		st.Jobs = len(infos)
		for _, info := range infos {
			if info.Status == JobQueued || info.Status == JobRunning {
				st.JobsActive++
			}
		}
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
