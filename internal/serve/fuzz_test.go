package serve

import (
	"strings"
	"testing"
)

// FuzzMetricsEscape pins the Prometheus label-escaping pair: escaping
// must round-trip through unescaping for any input, and the escaped
// form must be safe to embed between double quotes in the text
// exposition format (no raw quote, no raw newline, no dangling
// backslash). The seed corpus in testdata/fuzz covers the specials;
// CI runs the corpus as regular tests.
func FuzzMetricsEscape(f *testing.F) {
	f.Add("")
	f.Add("plain-model-name")
	f.Add(`back\slash`)
	f.Add(`qu"ote`)
	f.Add("new\nline")
	f.Add(`mixed "\` + "\n" + `" soup`)
	f.Add("trailing\\")
	f.Fuzz(func(t *testing.T, s string) {
		esc := escapeLabel(s)
		if strings.Contains(esc, "\n") {
			t.Fatalf("escapeLabel(%q) = %q contains a raw newline", s, esc)
		}
		for i := 0; i < len(esc); i++ {
			switch esc[i] {
			case '\\':
				if i+1 >= len(esc) {
					t.Fatalf("escapeLabel(%q) = %q ends in a dangling backslash", s, esc)
				}
				if c := esc[i+1]; c != '\\' && c != '"' && c != 'n' {
					t.Fatalf("escapeLabel(%q) = %q has unknown escape \\%c", s, esc, c)
				}
				i++
			case '"':
				t.Fatalf("escapeLabel(%q) = %q contains an unescaped quote", s, esc)
			}
		}
		back, ok := unescapeLabel(esc)
		if !ok {
			t.Fatalf("unescapeLabel rejected escapeLabel(%q) = %q", s, esc)
		}
		if back != s {
			t.Fatalf("round trip: %q -> %q -> %q", s, esc, back)
		}
		// Unescaping any *accepted* string must itself re-escape to the
		// identical bytes — the pair is a bijection on escaped forms.
		if s2, ok := unescapeLabel(s); ok {
			if re := escapeLabel(s2); re != s {
				t.Fatalf("accepted escaped form %q re-escapes to %q", s, re)
			}
		}
	})
}
