package serve

import (
	"bytes"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// GET /metrics — Prometheus text exposition, stdlib only. This is the
// serve tier's production observability surface: request and latency
// histograms, coalesce batch sizes, cache hit counters, rate-limit
// rejections, and per-model counters, in one scrape. The load harness
// (internal/loadsim) consumes it in place of /v1/stats delta polling,
// and any standard Prometheus scraper can too.
//
// Everything here reads atomics written on the request path; a scrape
// takes no locks the hot path contends on. Output ordering is fully
// deterministic — fixed family order, models in registration order,
// fixed bucket bounds — so two scrapes of an idle server are
// byte-identical and diffs are meaningful.

// nowMono is the single wall-clock read point for the serve tier
// (latency histograms, token-bucket refill). Measured time is exported
// observability, never an input to predictions — results stay pure
// functions of (inputs, seeds).
func nowMono() time.Time {
	return time.Now() //repolint:allow determinism -- wall time feeds latency histograms and token-bucket refill only, never results
}

// latencyBounds are the request-duration histogram's upper bounds in
// seconds. Fixed at compile time: scrapes never invent bucket layouts.
var latencyBounds = [...]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// latencyHist is a fixed-bucket histogram maintained with atomics.
type latencyHist struct {
	buckets [len(latencyBounds) + 1]atomic.Int64 // last slot = +Inf
	count   atomic.Int64
	sumNs   atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	secs := d.Seconds()
	slot := len(latencyBounds)
	for i, ub := range latencyBounds {
		if secs <= ub {
			slot = i
			break
		}
	}
	h.buckets[slot].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// escapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double quote, and newline.
func escapeLabel(s string) string {
	// Fast path: nothing to escape (the overwhelmingly common case for
	// model names).
	clean := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '\\' || c == '"' || c == '\n' {
			clean = false
			break
		}
	}
	if clean {
		return s
	}
	var b bytes.Buffer
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// unescapeLabel inverts escapeLabel. It reports false on a dangling
// backslash, an unknown escape, or a raw character that escapeLabel
// would never emit (an unescaped quote or newline).
func unescapeLabel(s string) (string, bool) {
	var b bytes.Buffer
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			i++
			if i >= len(s) {
				return "", false
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", false
			}
		case '"', '\n':
			return "", false
		default:
			b.WriteByte(c)
		}
	}
	return b.String(), true
}

// metricsWriter accumulates one exposition document.
type metricsWriter struct {
	b bytes.Buffer
}

func (w *metricsWriter) header(name, help, typ string) {
	w.b.WriteString("# HELP ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(help)
	w.b.WriteString("\n# TYPE ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(typ)
	w.b.WriteByte('\n')
}

// sample writes one line: name{labels} value. labels alternate
// key, value and values are escaped here.
func (w *metricsWriter) sample(name string, value float64, labels ...string) {
	w.b.WriteString(name)
	if len(labels) > 0 {
		w.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				w.b.WriteByte(',')
			}
			w.b.WriteString(labels[i])
			w.b.WriteString(`="`)
			w.b.WriteString(escapeLabel(labels[i+1]))
			w.b.WriteByte('"')
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	w.b.WriteByte('\n')
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var mw metricsWriter

	// HTTP traffic.
	total := s.ctr.requests.Load()
	c4 := s.ctr.clientErrors.Load()
	c5 := s.ctr.serverErrors.Load()
	mw.header("repro_http_requests_total", "HTTP requests served, by response class.", "counter")
	mw.sample("repro_http_requests_total", float64(total-c4-c5), "class", "ok")
	mw.sample("repro_http_requests_total", float64(c4), "class", "4xx")
	mw.sample("repro_http_requests_total", float64(c5), "class", "5xx")
	mw.header("repro_http_in_flight", "Requests currently being handled.", "gauge")
	mw.sample("repro_http_in_flight", float64(s.ctr.inFlight.Load()))

	// Latency histogram (wall-measured; see nowMono).
	mw.header("repro_http_request_duration_seconds", "End-to-end request latency.", "histogram")
	var cum int64
	for i, ub := range latencyBounds {
		cum += s.lat.buckets[i].Load()
		mw.sample("repro_http_request_duration_seconds_bucket", float64(cum),
			"le", strconv.FormatFloat(ub, 'g', -1, 64))
	}
	cum += s.lat.buckets[len(latencyBounds)].Load()
	mw.sample("repro_http_request_duration_seconds_bucket", float64(cum), "le", "+Inf")
	mw.sample("repro_http_request_duration_seconds_sum", float64(s.lat.sumNs.Load())/1e9)
	mw.sample("repro_http_request_duration_seconds_count", float64(s.lat.count.Load()))

	// Admission control.
	rl := s.adm.stats()
	mw.header("repro_ratelimit_rejections_total", "Requests rejected with 429, by guard.", "counter")
	mw.sample("repro_ratelimit_rejections_total", float64(rl.RejectedRate), "reason", "rate")
	mw.sample("repro_ratelimit_rejections_total", float64(rl.RejectedInflight), "reason", "inflight")

	// Prediction cache.
	cs := s.reg.CacheStats()
	mw.header("repro_cache_hits_total", "Exact prediction cache hits.", "counter")
	mw.sample("repro_cache_hits_total", float64(cs.Hits))
	mw.header("repro_cache_misses_total", "Exact prediction cache misses.", "counter")
	mw.sample("repro_cache_misses_total", float64(cs.Misses))
	mw.header("repro_cache_evictions_total", "Exact prediction cache evictions.", "counter")
	mw.sample("repro_cache_evictions_total", float64(cs.Evictions))
	mw.header("repro_cache_entries", "Exact prediction cache live entries.", "gauge")
	mw.sample("repro_cache_entries", float64(cs.Entries))
	mw.header("repro_cache_capacity", "Exact prediction cache bound (0 = disabled).", "gauge")
	mw.sample("repro_cache_capacity", float64(cs.Capacity))

	// Per-model coalescing, in registration order.
	names := s.reg.Names()
	type modelRow struct {
		name    string
		version int64
		st      CoalesceStats
		hist    [nBatchBuckets]int64
		rows    int64
	}
	var rows []modelRow
	for _, name := range names {
		m, err := s.reg.Get(name)
		if err != nil {
			continue
		}
		row := modelRow{name: m.Name, version: m.Version, st: m.Stats()}
		row.hist, row.rows = m.coal.batchHistogram()
		rows = append(rows, row)
	}
	mw.header("repro_model_requests_total", "Single-point predictions answered, per model.", "counter")
	for _, m := range rows {
		mw.sample("repro_model_requests_total", float64(m.st.Requests), "model", m.name)
	}
	mw.header("repro_model_flushes_total", "Batched kernel flushes, per model.", "counter")
	for _, m := range rows {
		mw.sample("repro_model_flushes_total", float64(m.st.Flushes), "model", m.name)
	}
	mw.header("repro_model_version", "Live bundle version of each model alias.", "gauge")
	for _, m := range rows {
		mw.sample("repro_model_version", float64(m.version), "model", m.name)
	}
	mw.header("repro_coalesce_batch_size", "Rows per batched kernel call.", "histogram")
	for _, m := range rows {
		var cum int64
		for i, ub := range batchBuckets {
			cum += m.hist[i]
			mw.sample("repro_coalesce_batch_size_bucket", float64(cum),
				"model", m.name, "le", strconv.Itoa(ub))
		}
		cum += m.hist[nBatchBuckets-1]
		mw.sample("repro_coalesce_batch_size_bucket", float64(cum), "model", m.name, "le", "+Inf")
		mw.sample("repro_coalesce_batch_size_sum", float64(m.rows), "model", m.name)
		mw.sample("repro_coalesce_batch_size_count", float64(cum), "model", m.name)
	}

	// Jobs.
	if s.jobs != nil {
		infos := s.jobs.List()
		active := 0
		for _, info := range infos {
			if info.Status == JobQueued || info.Status == JobRunning {
				active++
			}
		}
		mw.header("repro_jobs_total", "Jobs accepted by the store.", "counter")
		mw.sample("repro_jobs_total", float64(len(infos)))
		mw.header("repro_jobs_active", "Jobs queued or running.", "gauge")
		mw.sample("repro_jobs_active", float64(active))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(mw.b.Bytes())
}
