package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/ann"
	"repro/internal/sweep"
)

// TestShardRequestBinaryRoundTrip pins the request frame: every field
// — including the kernel tier and metric specs — survives
// Marshal∘Unmarshal exactly.
func TestShardRequestBinaryRoundTrip(t *testing.T) {
	cases := []ShardRequest{
		{SweepRequest: SweepRequest{Model: "synth"}},
		{SweepRequest: SweepRequest{Model: "synth", TopK: 7, Chunk: 64, Workers: 3, Kernel: "fast32"}, Start: 40, End: 104},
		{SweepRequest: SweepRequest{
			Models: []string{"perf", "energy"},
			Metrics: []sweep.MetricSpec{
				{Name: "ipc", Model: "perf"},
				{Name: "conf", Model: "perf", Output: 2, Variance: true, Minimize: true},
			},
			TopK:   -1,
			Kernel: "fast",
		}},
	}
	for i, req := range cases {
		data, err := req.MarshalBinary()
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var got ShardRequest
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("case %d: unmarshal: %v", i, err)
		}
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("case %d: round trip changed the request:\nwant %+v\ngot  %+v", i, req, got)
		}
		// Truncation at every byte must error, never panic or succeed.
		for n := 0; n < len(data); n++ {
			if err := got.UnmarshalBinary(data[:n]); err == nil {
				t.Fatalf("case %d: truncation to %d of %d bytes decoded", i, n, len(data))
			}
		}
		if err := got.UnmarshalBinary(append(append([]byte(nil), data...), 0)); err == nil {
			t.Fatalf("case %d: trailing byte decoded", i)
		}
	}
}

// postShardRaw sends one shard request with explicit wire options and
// returns the response Content-Type and body.
func postShardRaw(t *testing.T, url string, body []byte, contentType, accept string) (string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/sweep/shard", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("shard status %d: %s", resp.StatusCode, msg)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.Header.Get("Content-Type"), raw
}

// TestServerDefaultKernel pins the -kernel server default: a shard
// request that leaves "kernel" unset runs the configured tier, while
// an explicit "exact" overrides the default back to the bit-identical
// kernel (the empty partial label).
func TestServerDefaultKernel(t *testing.T) {
	b := trainedBundle(t)
	reg := NewRegistry()
	if _, err := reg.Add("synth", b, CoalesceOpts{}); err != nil {
		t.Fatal(err)
	}
	srv := New(reg)
	srv.SetDefaultKernel(ann.KernelFast)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	for _, tc := range []struct {
		body, want string
	}{
		{`{"model":"synth","topk":3,"chunk":16}`, ann.KernelFast.String()},
		{`{"model":"synth","topk":3,"chunk":16,"kernel":"exact"}`, ""},
		{`{"model":"synth","topk":3,"chunk":16,"kernel":"fast32"}`, ann.KernelFast32.String()},
	} {
		_, raw := postShardRaw(t, ts.URL, []byte(tc.body), "application/json", "")
		var resp ShardResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Partial.Kernel != tc.want {
			t.Fatalf("request %s ran kernel %q, want %q", tc.body, resp.Partial.Kernel, tc.want)
		}
	}
}

// TestShardBinaryNegotiation drives the wire negotiation end to end
// against a live server: the JSON path, the binary-response upgrade,
// and the fully binary exchange must all carry the identical partial —
// and a fast32 request's partial must be labelled fast32.
func TestShardBinaryNegotiation(t *testing.T) {
	ts, _, _ := newTestServer(t, CoalesceOpts{})
	req := ShardRequest{SweepRequest: SweepRequest{Model: "synth", TopK: 5, Chunk: 16, Kernel: "fast32"}}
	jsonBody, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	binBody, err := req.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Plain JSON exchange (an old coordinator).
	ct, raw := postShardRaw(t, ts.URL, jsonBody, "application/json", "")
	if ct != "application/json" {
		t.Fatalf("JSON request answered Content-Type %q", ct)
	}
	var viaJSON ShardResponse
	if err := json.Unmarshal(raw, &viaJSON); err != nil {
		t.Fatal(err)
	}
	if viaJSON.Partial.Kernel != ann.KernelFast32.String() {
		t.Fatalf("partial kernel %q, want fast32", viaJSON.Partial.Kernel)
	}

	// JSON request offering the binary response (a coordinator's first
	// contact with a node), then the fully binary exchange.
	for _, tc := range []struct {
		name string
		body []byte
		ct   string
	}{
		{"upgrade", jsonBody, "application/json"},
		{"binary", binBody, ShardRequestMediaType},
	} {
		ct, raw := postShardRaw(t, ts.URL, tc.body, tc.ct, ShardResponseMediaType+", application/json")
		if ct != ShardResponseMediaType {
			t.Fatalf("%s: response Content-Type %q, want binary", tc.name, ct)
		}
		var got ShardResponse
		if err := got.UnmarshalBinary(raw); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, _ := json.Marshal(viaJSON.Partial)
		have, _ := json.Marshal(got.Partial)
		if !bytes.Equal(want, have) {
			t.Fatalf("%s: binary partial diverged from JSON path:\nwant %s\ngot  %s", tc.name, want, have)
		}
		// Truncations of the response frame must error cleanly.
		var scratch ShardResponse
		for n := 0; n < len(raw); n += 7 {
			if err := scratch.UnmarshalBinary(raw[:n]); err == nil {
				t.Fatalf("%s: truncation to %d of %d bytes decoded", tc.name, n, len(raw))
			}
		}
	}
}
