package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// Fixed instants keep the bucket math deterministic — the limiter
// takes time as an argument precisely so tests never read a clock.
var t0 = time.Unix(1000, 0)

func TestLimiterTokenBucket(t *testing.T) {
	l := newLimiter(1, 2) // 1 token/s, burst 2
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a", t0); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := l.allow("a", t0)
	if ok {
		t.Fatal("third immediate request admitted past burst 2")
	}
	if retry < time.Second || retry > maxRetrySecs*time.Second {
		t.Fatalf("retry hint %v outside [1s,%ds]", retry, maxRetrySecs)
	}
	// Another client is unaffected.
	if ok, _ := l.allow("b", t0); !ok {
		t.Fatal("independent client rejected")
	}
	// After the hinted wait, the bucket holds a whole token again.
	if ok, _ := l.allow("a", t0.Add(retry)); !ok {
		t.Fatal("request rejected after waiting the hinted Retry-After")
	}
}

func TestLimiterRetryScalesWithRate(t *testing.T) {
	l := newLimiter(0.1, 1) // one request per 10s
	l.allow("a", t0)
	ok, retry := l.allow("a", t0)
	if ok {
		t.Fatal("second request admitted")
	}
	if retry != 10*time.Second {
		t.Fatalf("retry hint %v, want 10s for rate 0.1", retry)
	}
	// The hint is capped so clients are never told to go away for long.
	l2 := newLimiter(0.001, 1)
	l2.allow("a", t0)
	if _, retry := l2.allow("a", t0); retry != maxRetrySecs*time.Second {
		t.Fatalf("retry hint %v, want the %ds cap", retry, maxRetrySecs)
	}
}

func TestLimiterClientTableBounded(t *testing.T) {
	l := newLimiter(100, 1)
	for i := 0; i < maxClients+10; i++ {
		l.allow(fmt.Sprintf("client-%d", i), t0)
	}
	if n := len(l.clients); n != maxClients {
		t.Fatalf("client table holds %d entries, bound is %d", n, maxClients)
	}
	if n := l.lru.Len(); n != maxClients {
		t.Fatalf("LRU list holds %d entries, bound is %d", n, maxClients)
	}
	// The earliest clients were evicted, the latest kept.
	if _, ok := l.clients["client-0"]; ok {
		t.Fatal("oldest client survived past the table bound")
	}
	if _, ok := l.clients[fmt.Sprintf("client-%d", maxClients+9)]; !ok {
		t.Fatal("newest client missing")
	}
}

func TestAdmissionRejectsWith429(t *testing.T) {
	ts, reg, _ := newTestServer(t, CoalesceOpts{Linger: time.Millisecond})
	srv := New(reg)
	srv.SetAdmission(0.001, 1, 0) // one request, then a long refill
	ts.Config.Handler = srv

	do := func() *http.Response {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/predict",
			strings.NewReader(`{"model":"synth","point":1}`))
		req.Header.Set("X-Client-ID", "tester")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := do(); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request answered %d, want 200", resp.StatusCode)
	}
	resp := do()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate request answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if st := srv.adm.stats(); st.RejectedRate == 0 {
		t.Fatalf("rate rejection not counted: %+v", st)
	}
	// Observability stays exempt: a rate-limited client can still watch
	// the server.
	for _, path := range []string{"/healthz", "/metrics", "/v1/stats", "/v1/models"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exempt path %s answered %d while rate-limited", path, resp.StatusCode)
		}
	}
}

func TestAdmissionInflightBudget(t *testing.T) {
	ts, reg, _ := newTestServer(t, CoalesceOpts{Linger: 50 * time.Millisecond})
	srv := New(reg)
	srv.SetAdmission(0, 0, 1) // no rate limit, one admitted request at a time
	ts.Config.Handler = srv

	const n = 8
	var wg sync.WaitGroup
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
				strings.NewReader(`{"model":"synth","point":1}`))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	ok, rejected := 0, 0
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	// The 50ms linger holds the first admitted request in flight while
	// the rest arrive, so at least one of each outcome is guaranteed.
	if ok == 0 || rejected == 0 {
		t.Fatalf("want both admitted and rejected requests, got ok=%d rejected=%d", ok, rejected)
	}
	if st := srv.adm.stats(); st.RejectedInflight != int64(rejected) {
		t.Fatalf("counted %d in-flight rejections, observed %d", st.RejectedInflight, rejected)
	}
}

func TestGatedPaths(t *testing.T) {
	for path, want := range map[string]bool{
		"/v1/predict":         true,
		"/v1/predict/batch":   true,
		"/v1/variance":        true,
		"/v1/sensitivity":     true,
		"/v1/sweep":           true,
		"/v1/sweep/shard":     true,
		"/v1/explore":         true,
		"/healthz":            false,
		"/metrics":            false,
		"/v1/stats":           false,
		"/v1/models":          false,
		"/v1/models/m/reload": false,
		"/v1/jobs":            false,
	} {
		if got := gatedPath(path); got != want {
			t.Errorf("gatedPath(%q) = %v, want %v", path, got, want)
		}
	}
}
