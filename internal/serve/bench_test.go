package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkServePredict measures single-point predict throughput
// through the full HTTP handler, uncached vs cache-hot. The uncached
// path pays the coalescer's linger window plus a kernel call per
// request; the cached path answers from the sharded exact cache
// without touching either. BENCH_serve.json pins the speedup as a
// same-run min_ratio_to gate (cached >= 5x uncached) — a
// machine-independent contract, unlike the absolute baselines.
func BenchmarkServePredict(b *testing.B) {
	for _, tc := range []struct {
		name    string
		entries int
	}{
		{"path=uncached", 0},
		{"path=cached", 1 << 13},
	} {
		b.Run(tc.name, func(b *testing.B) {
			bb := trainedBundle(b)
			reg := NewRegistry()
			if tc.entries > 0 {
				reg.EnableCache(tc.entries)
			}
			if _, err := reg.Add("synth", bb, CoalesceOpts{}); err != nil {
				b.Fatal(err)
			}
			defer reg.Close()
			srv := New(reg)
			body := []byte(`{"model":"synth","point":7}`)
			// One warmup request fills the cache, so the cached run
			// measures the steady-state hit path.
			warm := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
			srv.ServeHTTP(httptest.NewRecorder(), warm)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("predict answered %d", rec.Code)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkLimiterReject measures the rejection fast path: a client
// with an exhausted bucket must be turned away in far less time than
// serving would take — overload degrades to cheap 429s, not queueing.
func BenchmarkLimiterReject(b *testing.B) {
	bb := trainedBundle(b)
	reg := NewRegistry()
	if _, err := reg.Add("synth", bb, CoalesceOpts{}); err != nil {
		b.Fatal(err)
	}
	defer reg.Close()
	srv := New(reg)
	srv.SetAdmission(1e-9, 1, 0) // one token, effectively never refilled
	body := []byte(`{"model":"synth","point":7}`)
	// Spend the single token.
	first := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
	first.Header.Set("X-Client-ID", "bench")
	srv.ServeHTTP(httptest.NewRecorder(), first)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		req.Header.Set("X-Client-ID", "bench")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusTooManyRequests {
			b.Fatalf("expected 429, got %d", rec.Code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
