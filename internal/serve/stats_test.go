package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestStatsEndpoint drives a few requests through the server and
// checks the /v1/stats counters a load harness polls: total requests,
// error classes, and per-model coalescer tallies.
func TestStatsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, CoalesceOpts{})

	readStats := func() ServerStats {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/stats: status %d", resp.StatusCode)
		}
		var st ServerStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	before := readStats()
	if before.Models == nil {
		t.Fatal("stats document has no models map")
	}

	// Three predictions, one client error, one miss on an unknown path.
	const predictions = 3
	for i := 0; i < predictions; i++ {
		body := bytes.NewBufferString(fmt.Sprintf(`{"model":"synth","point":%d}`, i))
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d: status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewBufferString(`{"model":"nope","point":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404", resp.StatusCode)
	}

	after := readStats()
	// before's own request is counted, as is the final /v1/stats read:
	// 3 predicts + 1 error + 2 stats reads since the first snapshot.
	if got := after.Requests - before.Requests; got != predictions+2 {
		t.Fatalf("request delta %d, want %d", got, predictions+2)
	}
	if got := after.ClientErrors - before.ClientErrors; got != 1 {
		t.Fatalf("client error delta %d, want 1", got)
	}
	if after.ServerErrors != before.ServerErrors {
		t.Fatalf("server errors moved: %d -> %d", before.ServerErrors, after.ServerErrors)
	}
	m, ok := after.Models["synth"]
	if !ok {
		t.Fatalf("stats missing model synth: %+v", after.Models)
	}
	if m.Requests < predictions || m.Flushes == 0 || m.Flushes > m.Requests {
		t.Fatalf("coalescer counters implausible: %+v", m)
	}
}
