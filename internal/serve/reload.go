package serve

import (
	"net/http"
)

// Hot model reload. POST /v1/models/{alias}/reload re-reads the
// alias's bundle (or an explicitly named path) and swaps it in
// atomically: the alias is stable, the Version underneath is
// monotonic, and in-flight predictions caught on the displaced
// coalescer retry transparently against the new version (server.go).
// A cluster rolls new models node by node without dropping traffic —
// and because prediction-cache keys carry the version, the roll also
// invalidates every memoized prediction of the old bundle for free.

// reloadRequest parameterizes one reload. An empty (or absent) body
// re-reads the model's registered source path.
type reloadRequest struct {
	Path string `json:"path,omitempty"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	alias := r.PathValue("alias")
	var req reloadRequest
	if r.ContentLength != 0 {
		if err := decodeBody(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	old, err := s.reg.Get(alias)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	m, err := s.reg.Reload(alias, req.Path)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model":            m.Name,
		"version":          m.Version,
		"previous_version": old.Version,
		"path":             m.Path,
	})
}
