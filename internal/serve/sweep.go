package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/bundle"
	"repro/internal/sweep"
)

// Sweep request bounds: generous for real studies, tight enough that
// one request cannot make the process hoard memory.
const (
	maxSweepTopK  = 4096
	maxSweepChunk = 1 << 20
)

// SweepRequest is the wire form of one full-space sweep job: which
// registered models contribute ranking metrics, which metrics to
// reduce by, and the engine knobs. Results are bit-identical for any
// Workers/Chunk setting.
type SweepRequest struct {
	// Model names the single registry model to sweep (may be empty on
	// a one-model server); Models lists several whose bundles must
	// share one design space (e.g. a performance and an energy model).
	// Exactly one of the two forms may be used.
	Model  string   `json:"model,omitempty"`
	Models []string `json:"models,omitempty"`
	// Metrics are the ranking axes. Empty selects the defaults: one
	// model sweeps primary-prediction (maximize) plus prediction
	// variance (minimize) — the performance-vs-confidence frontier;
	// several models sweep one primary axis each.
	Metrics []sweep.MetricSpec `json:"metrics,omitempty"`
	// TopK is the per-metric leaderboard size (0 = default, negative =
	// frontier only); Chunk is the enumeration granularity (0 =
	// default). Workers bounds the engine's own pool — 0 keeps it at 1
	// on the server, because the registered ensembles already fan
	// batched predictions out over the server-wide worker bound and
	// nesting two full-size pools would only oversubscribe the host
	// under concurrent query traffic.
	TopK    int `json:"topk,omitempty"`
	Chunk   int `json:"chunk,omitempty"`
	Workers int `json:"workers,omitempty"`
}

// SubmitSweep validates, enqueues and returns a new sweep job. The
// metric set is resolved against the registry at submission, so a
// request naming unknown models or incompatible spaces fails
// synchronously; the sweep itself runs asynchronously on the store's
// worker pool, with live progress in the job's Swept/SweepTotal.
func (s *JobStore) SubmitSweep(req SweepRequest) (JobInfo, error) {
	models := req.Models
	if req.Model != "" {
		if len(models) > 0 {
			return JobInfo{}, fmt.Errorf(`serve: sweep takes "model" or "models", not both`)
		}
		models = []string{req.Model}
	}
	if len(models) == 0 {
		m, err := s.reg.Get("") // the sole model, or a descriptive error
		if err != nil {
			return JobInfo{}, err
		}
		models = []string{m.Name}
	}
	bundles := make(map[string]*bundle.Bundle, len(models))
	for _, name := range models {
		if name == "" {
			return JobInfo{}, fmt.Errorf(`serve: sweep "models" entries must be named`)
		}
		m, err := s.reg.Get(name)
		if err != nil {
			return JobInfo{}, err
		}
		bundles[m.Name] = m.Bundle
	}
	specs := req.Metrics
	if len(specs) == 0 {
		specs = sweep.DefaultSpecs(models)
	}
	set, sp, err := sweep.Resolve(specs, bundles)
	if err != nil {
		return JobInfo{}, err
	}
	if req.TopK > maxSweepTopK {
		return JobInfo{}, fmt.Errorf("serve: topk %d exceeds the %d limit", req.TopK, maxSweepTopK)
	}
	if req.Chunk < 0 || req.Chunk > maxSweepChunk {
		return JobInfo{}, fmt.Errorf("serve: chunk %d outside [0,%d]", req.Chunk, maxSweepChunk)
	}
	if req.Workers < 0 {
		return JobInfo{}, fmt.Errorf("serve: workers %d is negative", req.Workers)
	}
	engineWorkers := req.Workers
	if engineWorkers == 0 {
		engineWorkers = 1 // the ensembles' batch pool owns the parallelism
	}
	return s.enqueue(JobKindSweep, req, "", func(ctx context.Context, job *Job) (any, error) {
		cfg := sweep.Config{
			TopK:      req.TopK,
			ChunkSize: req.Chunk,
			Workers:   engineWorkers,
			OnProgress: func(done, total int) {
				job.mu.Lock()
				job.swept, job.sweepTotal = done, total
				job.mu.Unlock()
			},
		}
		return sweep.Run(ctx, sp, set, cfg)
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	jobs, ok := s.requireJobs(w)
	if !ok {
		return
	}
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info, err := jobs.SubmitSweep(req)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case strings.Contains(err.Error(), "queue is full"):
			status = http.StatusTooManyRequests
		case strings.Contains(err.Error(), "unknown model"):
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}
