package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/ann"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/space"
	"repro/internal/sweep"
)

// Sweep request bounds: generous for real studies, tight enough that
// one request cannot make the process hoard memory.
const (
	maxSweepTopK  = 4096
	maxSweepChunk = 1 << 20
)

// SweepRequest is the wire form of one full-space sweep job: which
// registered models contribute ranking metrics, which metrics to
// reduce by, and the engine knobs. Results are bit-identical for any
// Workers/Chunk setting.
type SweepRequest struct {
	// Model names the single registry model to sweep (may be empty on
	// a one-model server); Models lists several whose bundles must
	// share one design space (e.g. a performance and an energy model).
	// Exactly one of the two forms may be used.
	Model  string   `json:"model,omitempty"`
	Models []string `json:"models,omitempty"`
	// Metrics are the ranking axes. Empty selects the defaults: one
	// model sweeps primary-prediction (maximize) plus prediction
	// variance (minimize) — the performance-vs-confidence frontier;
	// several models sweep one primary axis each.
	Metrics []sweep.MetricSpec `json:"metrics,omitempty"`
	// TopK is the per-metric leaderboard size (0 = default, negative =
	// frontier only); Chunk is the enumeration granularity (0 =
	// default). Workers bounds the engine's own pool — 0 keeps it at 1
	// on the server, because the registered ensembles already fan
	// batched predictions out over the server-wide worker bound and
	// nesting two full-size pools would only oversubscribe the host
	// under concurrent query traffic.
	TopK    int `json:"topk,omitempty"`
	Chunk   int `json:"chunk,omitempty"`
	Workers int `json:"workers,omitempty"`
	// Kernel names the forward-pass tier (see ann.KernelMode): "exact"
	// keeps the bit-identical default; "fast"/"fast32" trade the
	// documented mathx error bounds for throughput. Empty defers to the
	// serving node's -kernel default (itself exact unless configured) —
	// cluster deployments must configure that default identically on
	// every node, exactly like registries; the partial merge rejects
	// kernel-label drift. Whatever the tier, results stay bit-identical
	// within it for any Workers/Chunk setting.
	Kernel string `json:"kernel,omitempty"`
}

// kernelMode resolves the request's tier against a server default.
// Validate has already rejected unknown names by the time this runs.
func (r SweepRequest) kernelMode(def ann.KernelMode) ann.KernelMode {
	if r.Kernel == "" {
		return def
	}
	mode, err := ann.ParseKernelMode(r.Kernel)
	if err != nil {
		return def
	}
	return mode
}

// Validate checks the request's registry-independent bounds — the
// checks a server will enforce before touching any model. Cluster
// coordinators run it before dispatch: the same request bytes go to
// every node, so a violation here is deterministic and must fail the
// sweep locally instead of masquerading as node failures.
func (r SweepRequest) Validate() error {
	switch {
	case r.Model != "" && len(r.Models) > 0:
		return fmt.Errorf(`serve: sweep takes "model" or "models", not both`)
	case r.TopK > maxSweepTopK:
		return fmt.Errorf("serve: topk %d exceeds the %d limit", r.TopK, maxSweepTopK)
	case r.Chunk < 0 || r.Chunk > maxSweepChunk:
		return fmt.Errorf("serve: chunk %d outside [0,%d]", r.Chunk, maxSweepChunk)
	case r.Workers < 0:
		return fmt.Errorf("serve: workers %d is negative", r.Workers)
	}
	if _, err := ann.ParseKernelMode(r.Kernel); err != nil {
		return fmt.Errorf("serve: kernel: %w", err)
	}
	seen := make(map[string]bool, len(r.Models))
	for _, name := range r.Models {
		if seen[name] {
			// Matching cmd/sweep's local path: a duplicate would
			// otherwise silently fabricate duplicate metric axes.
			return fmt.Errorf("serve: model %q listed twice", name)
		}
		seen[name] = true
	}
	return nil
}

// resolveSweepRequest validates a sweep request's engine bounds and
// resolves its models and metrics against the registry. It is the
// shared admission path of asynchronous sweep jobs (POST /v1/sweep)
// and synchronous shard runs (POST /v1/sweep/shard), so both reject
// malformed requests with one vocabulary and — crucially for the
// distributed merge — normalize metrics identically.
func resolveSweepRequest(reg *Registry, req SweepRequest) (*core.MetricSet, *space.Space, error) {
	if err := req.Validate(); err != nil {
		return nil, nil, err
	}
	models := req.Models
	if req.Model != "" {
		models = []string{req.Model}
	}
	if len(models) == 0 {
		m, err := reg.Get("") // the sole model, or a descriptive error
		if err != nil {
			return nil, nil, err
		}
		models = []string{m.Name}
	}
	bundles := make(map[string]*bundle.Bundle, len(models))
	for _, name := range models {
		if name == "" {
			return nil, nil, fmt.Errorf(`serve: sweep "models" entries must be named`)
		}
		m, err := reg.Get(name)
		if err != nil {
			return nil, nil, err
		}
		bundles[m.Name] = m.Bundle
	}
	specs := req.Metrics
	if len(specs) == 0 {
		specs = sweep.DefaultSpecs(models)
	}
	return sweep.Resolve(specs, bundles)
}

// engineWorkers resolves the request's engine pool size: 0 stays at 1
// on the server, because the registered ensembles already fan batched
// predictions out over the server-wide worker bound.
func (r SweepRequest) engineWorkers() int {
	if r.Workers == 0 {
		return 1
	}
	return r.Workers
}

// SubmitSweep validates, enqueues and returns a new sweep job. The
// metric set is resolved against the registry at submission, so a
// request naming unknown models or incompatible spaces fails
// synchronously; the sweep itself runs asynchronously on the store's
// worker pool, with live progress in the job's Swept/SweepTotal.
func (s *JobStore) SubmitSweep(req SweepRequest) (JobInfo, error) {
	set, sp, err := resolveSweepRequest(s.reg, req)
	if err != nil {
		return JobInfo{}, err
	}
	return s.enqueue(JobKindSweep, req, "", func(ctx context.Context, job *Job) (any, error) {
		cfg := sweep.Config{
			TopK:      req.TopK,
			ChunkSize: req.Chunk,
			Workers:   req.engineWorkers(),
			Kernel:    req.kernelMode(s.kernel),
			OnProgress: func(done, total int) {
				job.mu.Lock()
				job.swept, job.sweepTotal = done, total
				job.mu.Unlock()
			},
		}
		return sweep.Run(ctx, sp, set, cfg)
	})
}

// sweepErrorStatus maps a sweep admission error onto its HTTP status.
// Both sweep surfaces (async jobs and synchronous shards) must agree:
// cluster coordinators treat a shard 400 as a deterministic request
// rejection (sweep-fatal) and anything else as a node failure
// (retry/retire), so the mapping is part of the distributed contract.
func sweepErrorStatus(err error) int {
	if strings.Contains(err.Error(), "unknown model") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	jobs, ok := s.requireJobs(w)
	if !ok {
		return
	}
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info, err := jobs.SubmitSweep(req)
	if err != nil {
		status := sweepErrorStatus(err)
		if strings.Contains(err.Error(), "queue is full") {
			status = http.StatusTooManyRequests
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}
