package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/bundle"
	"repro/internal/sweep"
)

// sweepStore builds a registry holding one trained model plus a job
// store with no exploration backend needs exercised.
func sweepStore(t *testing.T) (*JobStore, *Registry, *bundle.Bundle) {
	t.Helper()
	b := trainedBundle(t)
	reg := NewRegistry()
	if _, err := reg.Add("synth", b, CoalesceOpts{}); err != nil {
		t.Fatal(err)
	}
	s := NewJobStore(reg, testBackend(0, nil), 2, 8, CoalesceOpts{})
	t.Cleanup(func() {
		s.Close()
		reg.Close()
	})
	return s, reg, b
}

// TestSweepJobMatchesInProcessRun: the served sweep must be the exact
// in-process engine result — same top-k, same frontier, bit for bit.
func TestSweepJobMatchesInProcessRun(t *testing.T) {
	s, _, b := sweepStore(t)
	info, err := s.SubmitSweep(SweepRequest{Model: "synth", TopK: 5, Workers: 3, Chunk: 7})
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != JobKindSweep {
		t.Fatalf("job kind %q", info.Kind)
	}
	done := awaitJob(t, s, info.ID)
	if done.Status != JobDone {
		t.Fatalf("sweep finished %s (%s)", done.Status, done.Error)
	}
	got, ok := done.Result.(*sweep.Result)
	if !ok {
		t.Fatalf("job result is %T, want *sweep.Result", done.Result)
	}

	set, sp, err := sweep.Resolve(sweep.DefaultSpecs([]string{"synth"}),
		map[string]*bundle.Bundle{"synth": b})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Run(context.Background(), sp, set, sweep.Config{TopK: 5, ChunkSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.TopK, want.TopK) || !reflect.DeepEqual(got.Frontier, want.Frontier) {
		t.Fatalf("served sweep diverged from in-process run:\n%+v\nvs\n%+v", got, want)
	}
	if done.Swept != sp.Size() || done.SweepTotal != sp.Size() {
		t.Fatalf("progress settled at %d/%d, want %d/%d", done.Swept, done.SweepTotal, sp.Size(), sp.Size())
	}
	if done.Model != "" {
		t.Fatalf("sweep job claims to have registered model %q", done.Model)
	}
	// The listing stays light: result documents come only from
	// single-job lookups.
	list := s.List()
	if len(list) != 1 || list[0].Result != nil {
		t.Fatalf("job listing carries a result document: %+v", list)
	}
	if list[0].Status != JobDone || list[0].Swept != sp.Size() {
		t.Fatalf("listing lost status/progress: %+v", list[0])
	}
}

// TestSweepSubmitValidation: malformed requests fail synchronously.
func TestSweepSubmitValidation(t *testing.T) {
	s, reg, _ := sweepStore(t)
	cases := map[string]SweepRequest{
		"both model and models": {Model: "synth", Models: []string{"synth"}},
		"unknown model":         {Model: "nope"},
		"empty models entry":    {Models: []string{""}},
		"oversized topk":        {Model: "synth", TopK: maxSweepTopK + 1},
		"negative chunk":        {Model: "synth", Chunk: -1},
		"negative workers":      {Model: "synth", Workers: -1},
		"bad metric model":      {Model: "synth", Metrics: []sweep.MetricSpec{{Model: "ghost"}}},
		"bad metric output":     {Model: "synth", Metrics: []sweep.MetricSpec{{Output: 4}}},
	}
	for label, req := range cases {
		if _, err := s.SubmitSweep(req); err == nil {
			t.Errorf("%s accepted", label)
		}
	}
	// The sole model may be left implicit — and once a second model
	// exists, it may not.
	info, err := s.SubmitSweep(SweepRequest{TopK: -1})
	if err != nil {
		t.Fatal(err)
	}
	if done := awaitJob(t, s, info.ID); done.Status != JobDone {
		t.Fatalf("implicit-model sweep finished %s (%s)", done.Status, done.Error)
	}
	if _, err := reg.Add("second", trainedBundle(t), CoalesceOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitSweep(SweepRequest{}); err == nil {
		t.Fatal("ambiguous implicit model accepted")
	}
}

// TestSweepHTTPEndToEnd drives POST /v1/sweep → poll /v1/jobs/{id} →
// read the result document, the curl workflow from the README.
func TestSweepHTTPEndToEnd(t *testing.T) {
	s, reg, _ := sweepStore(t)
	srv := httptest.NewServer(NewWithJobs(reg, s))
	defer srv.Close()

	body := `{"model":"synth","topk":3,"metrics":[{"name":"ipc"},{"name":"conf","variance":true,"minimize":true}]}`
	resp, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	var submitted JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	var raw struct {
		Status JobStatus `json:"status"`
		Error  string    `json:"error"`
		Result *struct {
			Space    string             `json:"space"`
			Points   int                `json:"points"`
			Metrics  []sweep.MetricInfo `json:"metrics"`
			TopK     [][]sweep.Point    `json:"topk"`
			Frontier []sweep.Point      `json:"frontier"`
		} `json:"result"`
	}
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if raw.Status != JobQueued && raw.Status != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck at %s", raw.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if raw.Status != JobDone {
		t.Fatalf("sweep finished %s (%s)", raw.Status, raw.Error)
	}
	res := raw.Result
	if res == nil {
		t.Fatal("done sweep carries no result document")
	}
	if res.Space != "synth" || res.Points != 40 {
		t.Fatalf("result covers %q/%d, want synth/40", res.Space, res.Points)
	}
	if len(res.Metrics) != 2 || res.Metrics[0].Name != "ipc" || !res.Metrics[1].Minimize {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
	if len(res.TopK) != 2 || len(res.TopK[0]) != 3 {
		t.Fatalf("topk shape %dx%d, want 2x3", len(res.TopK), len(res.TopK[0]))
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, p := range res.TopK[0] {
		if len(p.Values) != 2 {
			t.Fatalf("leaderboard point %d carries %d values, want 2", p.Index, len(p.Values))
		}
	}

	// A server with no job store answers 503.
	bare := httptest.NewServer(New(reg))
	defer bare.Close()
	r2, err := http.Post(bare.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep without jobs returned %d, want 503", r2.StatusCode)
	}
}

// TestSweepHTTPErrorStatus maps validation failures onto 400/404.
func TestSweepHTTPErrorStatus(t *testing.T) {
	s, reg, _ := sweepStore(t)
	srv := httptest.NewServer(NewWithJobs(reg, s))
	defer srv.Close()
	for body, want := range map[string]int{
		`{"model":"ghost"}`:            http.StatusNotFound,
		`{"model":"synth","topk"`:      http.StatusBadRequest,
		`{"model":"synth","x":1}`:      http.StatusBadRequest,
		`{"model":"synth","chunk":-2}`: http.StatusBadRequest,
	} {
		resp, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("body %s returned %d, want %d", body, resp.StatusCode, want)
		}
	}
}
