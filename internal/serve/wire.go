package serve

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/sweep"
)

// Binary wire format for shard traffic. Coordination overhead on a
// sweep cluster is dominated by serializing the shard partials —
// textual float64s are ~24 bytes each versus 8 raw bits — so both
// sides of /v1/sweep/shard can negotiate the compact encoding:
//
//   - The coordinator always sends its FIRST request to a node as
//     JSON, with an Accept header offering ShardResponseMediaType.
//   - A binary-capable node answers with the binary response body
//     (Content-Type: ShardResponseMediaType); an old node ignores the
//     Accept header and answers JSON as before.
//   - Once the coordinator has seen one binary response from a node it
//     upgrades subsequent requests to binary bodies
//     (Content-Type: ShardRequestMediaType) — by construction the node
//     has already proven it speaks the format.
//
// Old coordinators never send the Accept header, old nodes never see a
// binary request, and error responses stay JSON on every path, so the
// formats interoperate freely during rolling upgrades.
const (
	// ShardRequestMediaType is the Content-Type of a binary
	// ShardRequest body.
	ShardRequestMediaType = "application/x-repro-shard-request"
	// ShardResponseMediaType is the Content-Type of a binary
	// ShardResponse body.
	ShardResponseMediaType = "application/x-repro-shard-response"
)

// Magic tags versioning the two frames.
const (
	shardRequestMagic  = "RSQ1"
	shardResponseMagic = "RSR1"
)

// MarshalBinary encodes the shard request in the compact wire format:
// magic, the sweep request fields in declaration order (lists
// length-prefixed), then the shard range.
func (r *ShardRequest) MarshalBinary() ([]byte, error) {
	w := &sweep.WireWriter{}
	w.Raw([]byte(shardRequestMagic))
	w.Str(r.Model)
	w.U32(uint32(len(r.Models)))
	for _, m := range r.Models {
		w.Str(m)
	}
	w.U32(uint32(len(r.Metrics)))
	for _, s := range r.Metrics {
		w.Str(s.Name)
		w.Str(s.Model)
		w.I64(int64(s.Output))
		w.Bool(s.Variance)
		w.Bool(s.Minimize)
	}
	w.I64(int64(r.TopK))
	w.I64(int64(r.Chunk))
	w.I64(int64(r.Workers))
	w.Str(r.Kernel)
	w.I64(int64(r.Start))
	w.I64(int64(r.End))
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a binary shard request, validating structure
// and rejecting trailing bytes.
func (r *ShardRequest) UnmarshalBinary(data []byte) error {
	rd := sweep.NewWireReader(data)
	if magic := rd.Take(len(shardRequestMagic)); magic == nil || string(magic) != shardRequestMagic {
		return fmt.Errorf("serve: not a binary shard request (bad magic/version)")
	}
	*r = ShardRequest{}
	r.Model = rd.Str()
	nModels := rd.Count(4)
	for i := 0; i < nModels && rd.Err() == nil; i++ {
		r.Models = append(r.Models, rd.Str())
	}
	nMetrics := rd.Count(18) // two ≥4-byte names + int64 + two bools
	for i := 0; i < nMetrics && rd.Err() == nil; i++ {
		r.Metrics = append(r.Metrics, sweep.MetricSpec{
			Name:     rd.Str(),
			Model:    rd.Str(),
			Output:   int(rd.I64()),
			Variance: rd.Bool(),
			Minimize: rd.Bool(),
		})
	}
	r.TopK = int(rd.I64())
	r.Chunk = int(rd.I64())
	r.Workers = int(rd.I64())
	r.Kernel = rd.Str() // name validated later by SweepRequest.Validate
	r.Start = int(rd.I64())
	r.End = int(rd.I64())
	return rd.Finish()
}

// MarshalBinary encodes the shard response: magic, the timing fields,
// then the partial's own binary encoding to the end of the frame.
func (r *ShardResponse) MarshalBinary() ([]byte, error) {
	if r.Partial == nil {
		return nil, fmt.Errorf("serve: binary shard response needs a partial")
	}
	p, err := r.Partial.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w := &sweep.WireWriter{}
	w.Grow(len(shardResponseMagic) + 16 + len(p))
	w.Raw([]byte(shardResponseMagic))
	w.I64(int64(r.Elapsed))
	w.F64(r.PointsPerSec)
	w.Raw(p)
	return w.Bytes(), nil
}

// UnmarshalBinary decodes a binary shard response.
func (r *ShardResponse) UnmarshalBinary(data []byte) error {
	rd := sweep.NewWireReader(data)
	if magic := rd.Take(len(shardResponseMagic)); magic == nil || string(magic) != shardResponseMagic {
		return fmt.Errorf("serve: not a binary shard response (bad magic/version)")
	}
	*r = ShardResponse{}
	r.Elapsed = time.Duration(rd.I64())
	r.PointsPerSec = rd.F64()
	rest := rd.Rest()
	if err := rd.Err(); err != nil {
		return err
	}
	r.Partial = &sweep.Partial{}
	return r.Partial.UnmarshalBinary(rest)
}

// acceptsShardBinary reports whether the request's Accept header
// offers the binary shard response format.
func acceptsShardBinary(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == ShardResponseMediaType {
			return true
		}
	}
	return false
}
