// Package serve exposes trained model bundles as an HTTP JSON API —
// the paper's "query the model instead of the simulator" loop as a
// long-running service. One process loads any number of named bundles
// (see internal/bundle) and answers:
//
//	GET  /healthz           liveness and model count
//	GET  /metrics           Prometheus text exposition (latency/cache/coalesce/ratelimit)
//	GET  /v1/stats          request/in-flight/error/coalescing counters (for load harnesses)
//	GET  /v1/models         loaded models with provenance and accuracy estimates
//	POST /v1/predict        one design point → prediction (+ member variance)
//	POST /v1/predict/batch  many design points → predictions, one batched call
//	POST /v1/variance       many design points → ensemble mean + disagreement
//	GET  /v1/sensitivity    model-powered per-axis sensitivity ranking
//
//	POST /v1/models/{alias}/reload  hot-swap the alias to a freshly loaded bundle
//
// The serve tier is production-hardened for sustained traffic: a
// bounded, sharded *exact* prediction cache (cache.go) memoizes by
// (model version, kernel tier, flat index) — legal because design
// spaces are finite and predictions are pure — admission control
// (limiter.go) degrades overload into fast 429 + Retry-After instead
// of latency collapse, and hot reload (reload.go) rolls new bundles
// under a stable alias without dropping requests.
//
// With an exploration backend attached (see JobStore), the server also
// runs the paper's whole §3.3 procedure as asynchronous jobs —
// exploration as a service, powered by the pipelined engine in
// internal/explore:
//
//	POST /v1/explore             submit an exploration job (202 + job id)
//	GET  /v1/jobs                all jobs with live round progress
//	GET  /v1/jobs/{id}           one job's status, rounds, quarantine
//	GET  /v1/jobs/{id}/frontier  predicted Pareto frontier of the live ensemble
//	POST /v1/jobs/{id}/cancel    cancel a queued or running job
//
// Completed jobs register their trained bundle in the model registry
// under the requested name, immediately queryable by every endpoint
// above.
//
// The same job store runs full-space sweeps (internal/sweep) over
// registered models — the paper's "evaluate the whole space through
// the model" payoff as a service:
//
//	POST /v1/sweep               submit a sweep job (202 + job id)
//
// A sweep streams every design point of the models' shared space
// through the batched kernels and reduces it into per-metric top-k
// leaderboards and the Pareto frontier over all requested metrics
// (several models' predictions, multi-task output columns, or
// prediction variance as a confidence axis); the finished document
// arrives in the job's "result" with live point-count progress while
// it runs.
//
// Every server — job store or not — also answers sweep *shards*
// synchronously, which is how a cluster coordinator (internal/cluster)
// fans one full-space ranking out across many nodes:
//
//	POST /v1/sweep/shard         score flat indices [start,end) → partial reduction
//
// The returned partial (per-metric top-k + local Pareto front, flat
// indices into the full space) is deterministic for the loaded
// bundles, so partials from any mix of nodes merge back bit-identical
// to a single-process sweep.
//
// Design points are addressed either by flat index ("point"/"points")
// or by explicit choice vectors ("choices"); both are validated against
// the model's design space before encoding. Batch endpoints call the
// vectorized ensemble kernels directly; concurrent single-point
// requests are coalesced into shared batches (see coalesce.go), so a
// flood of small queries rides the same kernels instead of degrading
// into per-point forward passes.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/ann"
	"repro/internal/core"
)

// maxBatchRows bounds one batch request, keeping a single query from
// monopolizing the process (a full-space sweep belongs in paged calls).
const maxBatchRows = 65536

// maxBodyBytes bounds request bodies; the largest legal batch of
// choice vectors stays well under this.
const maxBodyBytes = 16 << 20

// Server is the HTTP front end over a model registry and, optionally,
// an exploration job store.
type Server struct {
	reg  *Registry
	jobs *JobStore
	mux  *http.ServeMux
	ctr  counters
	adm  *admission  // nil = no admission control
	lat  latencyHist // request-duration histogram for /metrics
	// kernel is the forward-kernel tier applied to predict, sweep and
	// shard requests whose "kernel" field is empty (zero value: exact).
	kernel ann.KernelMode
}

// New builds a server over reg, serving queries only.
func New(reg *Registry) *Server { return NewWithJobs(reg, nil) }

// NewWithJobs builds a server that additionally runs exploration as a
// service: POST /v1/explore submits jobs against jobs' backend, and
// finished models become queryable through the same registry. A nil
// jobs store turns those endpoints into 503s.
func NewWithJobs(reg *Registry, jobs *JobStore) *Server {
	s := &Server{reg: reg, jobs: jobs, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("POST /v1/models/{alias}/reload", s.handleReload)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/predict/batch", s.handlePredictBatch)
	s.mux.HandleFunc("POST /v1/variance", s.handleVariance)
	s.mux.HandleFunc("GET /v1/sensitivity", s.handleSensitivity)
	s.mux.HandleFunc("POST /v1/sensitivity", s.handleSensitivity)
	s.mux.HandleFunc("POST /v1/explore", s.handleExplore)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/sweep/shard", s.handleSweepShard)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/frontier", s.handleJobFrontier)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	return s
}

// SetDefaultKernel sets the forward-kernel tier for sweep and shard
// requests that leave "kernel" unset (the -kernel flag on cmd/serve).
// Cluster deployments must configure every node identically, exactly
// like registries — the partial merge rejects kernel-label drift.
// Call before serving; the field is not synchronized afterwards.
func (s *Server) SetDefaultKernel(mode ann.KernelMode) {
	s.kernel = mode
	if s.jobs != nil {
		s.jobs.kernel = mode
	}
}

// ServeHTTP implements http.Handler. Every request passes through the
// stats counters (see stats.go), so /v1/stats reflects all traffic.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.countRequest(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes one JSON document into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid request body: trailing data")
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "models": s.reg.Len()})
}

// modelInfo is one /v1/models entry.
type modelInfo struct {
	Name      string        `json:"name"`
	Version   int64         `json:"version"`
	Space     string        `json:"space"`
	Points    int           `json:"points"`
	Params    int           `json:"params"`
	Inputs    int           `json:"inputs"`
	Outputs   int           `json:"outputs"`
	Members   int           `json:"members"`
	Estimate  core.Estimate `json:"estimate"`
	Meta      any           `json:"meta"`
	Coalesced CoalesceStats `json:"coalesced"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	var out []modelInfo
	for _, name := range s.reg.Names() {
		m, err := s.reg.Get(name)
		if err != nil {
			continue // removed between Names and Get; nothing to report
		}
		b := m.Bundle
		out = append(out, modelInfo{
			Name:      m.Name,
			Version:   m.Version,
			Space:     b.Space.Name,
			Points:    b.Space.Size(),
			Params:    b.Space.NumParams(),
			Inputs:    b.Encoder.Width(),
			Outputs:   b.Ensemble.Outputs(),
			Members:   b.Ensemble.Members(),
			Estimate:  b.Ensemble.Estimate(),
			Meta:      b.Meta,
			Coalesced: m.Stats(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

// pointSpec addresses design points by flat index or choice vector.
type pointSpec struct {
	Model   string  `json:"model,omitempty"`
	Point   *int    `json:"point,omitempty"`
	Points  []int   `json:"points,omitempty"`
	Choices [][]int `json:"choices,omitempty"`
	// Kernel selects the forward-kernel tier ("exact"/"fast"/"fast32");
	// empty defers to the server's -kernel default. Cache entries are
	// keyed per tier, so mixed-tier traffic never cross-contaminates.
	Kernel string `json:"kernel,omitempty"`
}

// kernelFor resolves a request's kernel field against the server
// default, rejecting unknown tier names.
func (s *Server) kernelFor(name string) (ann.KernelMode, error) {
	if name == "" {
		return s.kernel, nil
	}
	return ann.ParseKernelMode(name)
}

// encodeOne resolves a single-point request into one encoded input row
// and its flat index.
func encodeOne(m *Model, req pointSpec) (x []float64, index int, err error) {
	b := m.Bundle
	if len(req.Points) > 0 {
		return nil, 0, fmt.Errorf("single-point requests use \"point\" or one \"choices\" vector, not \"points\" (try /v1/predict/batch)")
	}
	switch {
	case req.Point != nil && len(req.Choices) == 0:
		if err := b.ValidateIndex(*req.Point); err != nil {
			return nil, 0, err
		}
		return b.Encoder.EncodeIndex(*req.Point, nil), *req.Point, nil
	case req.Point == nil && len(req.Choices) == 1:
		if err := b.ValidateChoices(req.Choices[0]); err != nil {
			return nil, 0, err
		}
		return b.Encoder.Encode(req.Choices[0], nil), b.Space.Index(req.Choices[0]), nil
	default:
		return nil, 0, fmt.Errorf("request must carry exactly one of \"point\" or one \"choices\" vector")
	}
}

// encodeBatch resolves a batch request into a flat encoded matrix and
// the flat index of every row.
func encodeBatch(m *Model, req pointSpec) (xs []float64, idxs []int, err error) {
	b := m.Bundle
	if req.Point != nil {
		return nil, nil, fmt.Errorf("batch requests use \"points\" or \"choices\", not \"point\"")
	}
	if (len(req.Points) == 0) == (len(req.Choices) == 0) {
		return nil, nil, fmt.Errorf("request must carry exactly one of \"points\" or \"choices\"")
	}
	rows := len(req.Points) + len(req.Choices)
	if rows > maxBatchRows {
		return nil, nil, fmt.Errorf("batch of %d rows exceeds the %d-row limit; page the request", rows, maxBatchRows)
	}
	width := b.Encoder.Width()
	xs = make([]float64, rows*width)
	idxs = make([]int, rows)
	for i, p := range req.Points {
		if err := b.ValidateIndex(p); err != nil {
			return nil, nil, fmt.Errorf("points[%d]: %v", i, err)
		}
		b.Encoder.EncodeIndex(p, xs[i*width:(i+1)*width])
		idxs[i] = p
	}
	for i, c := range req.Choices {
		if err := b.ValidateChoices(c); err != nil {
			return nil, nil, fmt.Errorf("choices[%d]: %v", i, err)
		}
		b.Encoder.Encode(c, xs[i*width:(i+1)*width])
		idxs[i] = b.Space.Index(c)
	}
	return xs, idxs, nil
}

func (s *Server) resolve(w http.ResponseWriter, r *http.Request) (*Model, pointSpec, bool) {
	var req pointSpec
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, req, false
	}
	m, err := s.reg.Get(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return nil, req, false
	}
	return m, req, true
}

// predictRetries bounds the handler-side retry on errClosed: a reload
// swaps the coalescer at most once per roll, so one retry usually
// suffices; the bound keeps a crash-looping reload from pinning
// requests forever.
const predictRetries = 3

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	m, req, ok := s.resolve(w, r)
	if !ok {
		return
	}
	mode, err := s.kernelFor(req.Kernel)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	for attempt := 0; ; attempt++ {
		x, index, err := encodeOne(m, req)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		key := cacheKey{version: m.Version, kernel: mode, index: index}
		if c := m.coal.cache; c != nil {
			if v, hit := c.get(key); hit {
				// Cache hit: answered without touching the ensemble (or
				// even the coalescer).
				writePrediction(w, m.Name, index, v.mean, v.variance)
				return
			}
		}
		mean, variance, err := m.coal.predict(x, mode, key)
		if err == nil {
			writePrediction(w, m.Name, index, mean, variance)
			return
		}
		// errClosed mid-reload: the alias already points at the new
		// version — re-resolve and retry there, so a roll drops nothing.
		if err == errClosed && attempt < predictRetries {
			if m2, rerr := s.reg.Get(req.Model); rerr == nil && m2 != m {
				m = m2
				continue
			}
		}
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
}

func writePrediction(w http.ResponseWriter, model string, index int, mean, variance float64) {
	writeJSON(w, http.StatusOK, map[string]any{
		"model":      model,
		"point":      index,
		"prediction": mean,
		"variance":   variance,
	})
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	m, req, ok := s.resolve(w, r)
	if !ok {
		return
	}
	mode, err := s.kernelFor(req.Kernel)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	xs, idxs, err := encodeBatch(m, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	preds := m.Bundle.Ensemble.PredictOutputBatchKernel(0, xs, len(idxs), nil, mode)
	writeJSON(w, http.StatusOK, map[string]any{
		"model":       m.Name,
		"points":      idxs,
		"predictions": preds,
	})
}

func (s *Server) handleVariance(w http.ResponseWriter, r *http.Request) {
	m, req, ok := s.resolve(w, r)
	if !ok {
		return
	}
	mode, err := s.kernelFor(req.Kernel)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	xs, idxs, err := encodeBatch(m, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mean, variance := m.Bundle.Ensemble.PredictOutputVarianceBatchKernel(0, xs, len(idxs), nil, nil, mode)
	writeJSON(w, http.StatusOK, map[string]any{
		"model":     m.Name,
		"points":    idxs,
		"means":     mean,
		"variances": variance,
	})
}

// requireJobs resolves the job store or answers 503.
func (s *Server) requireJobs(w http.ResponseWriter) (*JobStore, bool) {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable,
			"exploration is not configured on this server (start it with an exploration backend)")
		return nil, false
	}
	return s.jobs, true
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	jobs, ok := s.requireJobs(w)
	if !ok {
		return
	}
	var req ExploreRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info, err := jobs.Submit(req)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "queue is full") {
			status = http.StatusTooManyRequests
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs, ok := s.requireJobs(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs.List()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	jobs, ok := s.requireJobs(w)
	if !ok {
		return
	}
	info, err := jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	jobs, ok := s.requireJobs(w)
	if !ok {
		return
	}
	info, err := jobs.Cancel(r.PathValue("id"))
	if err != nil {
		status := http.StatusConflict
		if strings.Contains(err.Error(), "unknown job") {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// sensitivityRequest parameterizes the model-powered axis ranking.
type sensitivityRequest struct {
	Model string `json:"model,omitempty"`
	Bases int    `json:"bases,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
}

func (s *Server) handleSensitivity(w http.ResponseWriter, r *http.Request) {
	var req sensitivityRequest
	if r.Method == http.MethodPost {
		if err := decodeBody(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		q := r.URL.Query()
		req.Model = q.Get("model")
		if v := q.Get("bases"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bases must be an integer, got %q", v)
				return
			}
			req.Bases = n
		}
		if v := q.Get("seed"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "seed must be an unsigned integer, got %q", v)
				return
			}
			req.Seed = n
		}
	}
	// The contract is identical for both methods: 0 (or absent) selects
	// the default sample of 20 base points; negative is an error rather
	// than a silent default.
	if req.Bases < 0 || req.Bases > 1024 {
		writeError(w, http.StatusBadRequest, "bases must be in [0,1024] (0 = default), got %d", req.Bases)
		return
	}
	m, err := s.reg.Get(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	axes := core.RankedSensitivities(core.Sensitivity(m.Bundle.Ensemble, m.Bundle.Space, req.Bases, req.Seed))
	writeJSON(w, http.StatusOK, map[string]any{"model": m.Name, "axes": axes})
}
