package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/space"
)

// testBackend resolves every request onto the synthetic space/target
// pair the query tests already use, with an optional per-point stall so
// cancellation tests can catch a job mid-run.
func testBackend(stall time.Duration, block <-chan struct{}) Backend {
	return func(req ExploreRequest) (*space.Space, core.Oracle, bundle.Meta, error) {
		if req.Study != "synth" {
			return nil, nil, bundle.Meta{}, fmt.Errorf("unknown study %q", req.Study)
		}
		sp := testSpace()
		oracle := core.OracleFunc(func(indices []int) ([][]float64, error) {
			if block != nil {
				<-block
			}
			if stall > 0 {
				time.Sleep(stall)
			}
			out := make([][]float64, len(indices))
			for i, idx := range indices {
				out[i] = []float64{testTarget(sp, idx)}
			}
			return out, nil
		})
		meta := bundle.Meta{Study: req.Study, App: req.App, Metric: "IPC", TraceLen: req.TraceLen}
		return sp, oracle, meta, nil
	}
}

// fastJobRequest keeps job-store tests quick: one 12-point round over
// the 40-point synthetic space.
func fastJobRequest(name string) ExploreRequest {
	return ExploreRequest{
		Name:  name,
		Study: "synth",
		App:   "none",
		// Budget == Batch: single round.
		Budget: 12,
		Batch:  12,
		Seed:   5,
	}
}

// awaitJob polls until the job leaves the queued/running states.
func awaitJob(t *testing.T, s *JobStore, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		info, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Status != JobQueued && info.Status != JobRunning {
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle", id)
	return JobInfo{}
}

func TestJobRunsAndRegistersModel(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	s := NewJobStore(reg, testBackend(0, nil), 2, 8, CoalesceOpts{})
	defer s.Close()

	info, err := s.Submit(fastJobRequest("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	done := awaitJob(t, s, info.ID)
	if done.Status != JobDone {
		t.Fatalf("job finished %s (%s), want done", done.Status, done.Error)
	}
	if done.Samples != 12 || len(done.Rounds) != 1 {
		t.Fatalf("job recorded %d samples over %d rounds, want 12 over 1", done.Samples, len(done.Rounds))
	}
	if done.Model != "mcf" {
		t.Fatalf("job reports model %q", done.Model)
	}
	m, err := reg.Get("mcf")
	if err != nil {
		t.Fatalf("finished job did not register its model: %v", err)
	}
	if got := m.Bundle.Meta.Samples; got != 12 {
		t.Fatalf("registered bundle records %d samples, want 12", got)
	}
	if m.Bundle.Meta.Model.Folds == 0 {
		t.Fatal("registered bundle lost its model hyperparameters")
	}
}

func TestJobsSurviveConcurrentSubmission(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	s := NewJobStore(reg, testBackend(0, nil), 2, 32, CoalesceOpts{})
	defer s.Close()

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, err := s.Submit(fastJobRequest(fmt.Sprintf("model-%d", i)))
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = info.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d failed: %v", i, err)
		}
	}
	seen := map[string]bool{}
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job id %q", id)
		}
		seen[id] = true
		if done := awaitJob(t, s, id); done.Status != JobDone {
			t.Fatalf("job %d finished %s (%s)", i, done.Status, done.Error)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := reg.Get(fmt.Sprintf("model-%d", i)); err != nil {
			t.Fatalf("model-%d not registered: %v", i, err)
		}
	}
	if got := reg.Len(); got != n {
		t.Fatalf("%d models registered, want %d", got, n)
	}
}

func TestJobNameCollisionsRejected(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	block := make(chan struct{})
	s := NewJobStore(reg, testBackend(0, block), 1, 8, CoalesceOpts{})
	defer s.Close()
	defer close(block)

	if _, err := s.Submit(fastJobRequest("dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(fastJobRequest("dup")); err == nil {
		t.Fatal("second job reserved an already-claimed model name")
	}
}

func TestJobCancellation(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	block := make(chan struct{})
	s := NewJobStore(reg, testBackend(0, block), 1, 8, CoalesceOpts{})
	defer s.Close()

	running, err := s.Submit(fastJobRequest("running"))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(fastJobRequest("queued"))
	if err != nil {
		t.Fatal(err)
	}
	// Cancel the queued job before it starts; the worker must skip it.
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	// Cancel the running job while its oracle is blocked mid-round.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, _ := s.Get(running.ID)
		if info.Status == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	close(block) // release the stalled oracle so the driver can observe ctx
	for _, id := range []string{running.ID, queued.ID} {
		if info := awaitJob(t, s, id); info.Status != JobCancelled {
			t.Fatalf("job %s finished %s, want cancelled", id, info.Status)
		}
	}
	// Cancelled jobs release their names and register nothing.
	if _, err := reg.Get("running"); err == nil {
		t.Fatal("cancelled job registered a model")
	}
	if _, err := s.Submit(fastJobRequest("running")); err != nil {
		t.Fatalf("name not released after cancellation: %v", err)
	}
	if info, err := s.Cancel(queued.ID); err == nil {
		t.Fatalf("re-cancelling a settled job succeeded: %+v", info)
	}
}

func TestExploreHTTPEndToEnd(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	s := NewJobStore(reg, testBackend(0, nil), 1, 4, CoalesceOpts{})
	defer s.Close()
	srv := httptest.NewServer(NewWithJobs(reg, s))
	defer srv.Close()

	// Submit.
	body := `{"name":"served","study":"synth","app":"none","budget":12,"batch":12,"seed":5}`
	resp, err := http.Post(srv.URL+"/v1/explore", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %d", resp.StatusCode)
	}
	var submitted JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if submitted.ID == "" {
		t.Fatal("no job id returned")
	}

	// Poll the job endpoint until done.
	deadline := time.Now().Add(30 * time.Second)
	var job JobInfo
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if job.Status == JobDone || job.Status == JobFailed || job.Status == JobCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %s", job.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if job.Status != JobDone {
		t.Fatalf("job finished %s (%s)", job.Status, job.Error)
	}

	// The listing shows it; the registered model answers predictions.
	r, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []JobInfo `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != submitted.ID {
		t.Fatalf("job listing %+v does not show the submitted job", list.Jobs)
	}
	pr, err := http.Post(srv.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"model":"served","point":7}`))
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("prediction against the job's model returned %d", pr.StatusCode)
	}
	var pred struct {
		Prediction float64 `json:"prediction"`
	}
	if err := json.NewDecoder(pr.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	if pred.Prediction <= 0 {
		t.Fatalf("implausible prediction %v from the explored model", pred.Prediction)
	}
}

func TestExploreEndpointsWithoutBackend(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	srv := httptest.NewServer(New(reg))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/explore", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("explore without a backend returned %d, want 503", resp.StatusCode)
	}
}

func TestSubmitValidation(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	s := NewJobStore(reg, testBackend(0, nil), 1, 1, CoalesceOpts{})
	defer s.Close()
	cases := map[string]ExploreRequest{
		"no name":        {Study: "synth", Budget: 10},
		"no budget":      {Name: "x", Study: "synth"},
		"batch > budget": {Name: "x", Study: "synth", Budget: 10, Batch: 20},
		"negative batch": {Name: "x", Study: "synth", Budget: 10, Batch: -1},
	}
	for label, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Fatalf("%s accepted", label)
		}
	}
}

// TestCancelQueuedJobFreesQueueSlot guards queue accounting: cancelling
// queued jobs must release their capacity immediately, not when a busy
// worker eventually reaches the tombstones.
func TestCancelQueuedJobFreesQueueSlot(t *testing.T) {
	reg := NewRegistry()
	defer reg.Close()
	block := make(chan struct{})
	s := NewJobStore(reg, testBackend(0, block), 1, 2, CoalesceOpts{})
	defer s.Close()
	defer close(block)

	busy, err := s.Submit(fastJobRequest("busy"))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked it up (its oracle then blocks), so
	// the pending queue is empty before we fill it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, _ := s.Get(busy.ID)
		if info.Status == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("busy job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	q1, err := s.Submit(fastJobRequest("q1"))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.Submit(fastJobRequest("q2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(fastJobRequest("q3")); err == nil {
		t.Fatal("queue accepted beyond its capacity")
	}
	for _, id := range []string{q1.ID, q2.ID} {
		if _, err := s.Cancel(id); err != nil {
			t.Fatal(err)
		}
	}
	// Both slots must be free again while the worker is still busy.
	if _, err := s.Submit(fastJobRequest("q4")); err != nil {
		t.Fatalf("queue slot not freed by cancellation: %v", err)
	}
	if _, err := s.Submit(fastJobRequest("q5")); err != nil {
		t.Fatalf("second queue slot not freed by cancellation: %v", err)
	}
}
