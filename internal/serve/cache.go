package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/ann"
)

// The exact prediction cache. Design spaces are finite and discrete,
// and every prediction is a pure function of (model version, kernel
// tier, flat space index) — so memoization is *exact*, not
// approximate: a hit returns the same bits the ensemble would have
// produced, proven by the bit-identity tests in cache_test.go. Under
// zipf-shaped production traffic the hot head of the space is answered
// without touching the ensemble at all.
//
// The cache is sharded to keep lock contention off the hot path and
// uses CLOCK eviction: a hit sets a reference bit instead of reordering
// a list, so reads stay allocation-free and O(1) under one short
// critical section. Keys carry the model *version*, so a hot reload
// (see reload.go) implicitly invalidates every stale entry — no flush,
// no epoch protocol; old entries simply stop being addressed and
// rotate out under CLOCK pressure.

// cacheKey addresses one exact prediction.
type cacheKey struct {
	version int64
	kernel  ann.KernelMode
	index   int
}

// hash spreads keys across shards. splitmix64 finalizer over the mixed
// fields; adjacent indices (the common batch shape) land on different
// shards.
func (k cacheKey) hash() uint64 {
	h := uint64(k.index) ^ uint64(k.version)<<20 ^ uint64(k.kernel)<<60
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// cacheVal is the memoized prediction.
type cacheVal struct {
	mean, variance float64
}

// cacheShard is one CLOCK ring: slot storage plus a key→slot index.
type cacheShard struct {
	mu   sync.Mutex
	idx  map[cacheKey]int32
	keys []cacheKey
	vals []cacheVal
	ref  []bool
	hand int
	max  int
}

func (sh *cacheShard) get(k cacheKey) (cacheVal, bool) {
	sh.mu.Lock()
	slot, ok := sh.idx[k]
	if !ok {
		sh.mu.Unlock()
		return cacheVal{}, false
	}
	sh.ref[slot] = true
	v := sh.vals[slot]
	sh.mu.Unlock()
	return v, true
}

// put inserts or refreshes k and reports whether an entry was evicted.
func (sh *cacheShard) put(k cacheKey, v cacheVal) (evicted bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if slot, ok := sh.idx[k]; ok {
		sh.vals[slot] = v
		sh.ref[slot] = true
		return false
	}
	if len(sh.keys) < sh.max {
		sh.idx[k] = int32(len(sh.keys))
		sh.keys = append(sh.keys, k)
		sh.vals = append(sh.vals, v)
		sh.ref = append(sh.ref, false)
		return false
	}
	// CLOCK: sweep the hand past recently-referenced slots, clearing
	// their bits; the first unreferenced slot is the victim. Bounded:
	// after one full lap every bit is clear.
	for sh.ref[sh.hand] {
		sh.ref[sh.hand] = false
		sh.hand = (sh.hand + 1) % len(sh.keys)
	}
	victim := sh.hand
	sh.hand = (sh.hand + 1) % len(sh.keys)
	delete(sh.idx, sh.keys[victim])
	sh.keys[victim] = k
	sh.vals[victim] = v
	sh.ref[victim] = false
	sh.idx[k] = int32(victim)
	return true
}

func (sh *cacheShard) len() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.keys)
}

// predCacheShards keeps per-shard lock scope small without making tiny
// caches degenerate (a shard always holds at least a few entries).
const predCacheShards = 16

// predCache is the bounded, sharded exact prediction cache.
type predCache struct {
	shards [predCacheShards]cacheShard
	cap    int

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// newPredCache bounds the cache at entries predictions total. entries
// <= 0 returns nil: a nil *predCache is a valid always-miss cache only
// in the sense that callers must check for nil before use.
func newPredCache(entries int) *predCache {
	if entries <= 0 {
		return nil
	}
	c := &predCache{cap: entries}
	per := (entries + predCacheShards - 1) / predCacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{idx: make(map[cacheKey]int32, per), max: per}
	}
	return c
}

func (c *predCache) shard(k cacheKey) *cacheShard {
	return &c.shards[k.hash()%predCacheShards]
}

// get looks k up and counts the outcome. The hit path is
// allocation-free: comparable-struct map lookup, no boxing, no list
// surgery (CLOCK sets a bit instead).
func (c *predCache) get(k cacheKey) (cacheVal, bool) {
	v, ok := c.shard(k).get(k)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// peek is get without touching the hit/miss counters — the coalescer's
// flush-time recheck (another request may have filled the key between
// admission and flush) must not double-count a request's outcome.
func (c *predCache) peek(k cacheKey) (cacheVal, bool) {
	return c.shard(k).get(k)
}

// put memoizes one computed prediction.
func (c *predCache) put(k cacheKey, v cacheVal) {
	if c.shard(k).put(k, v) {
		c.evictions.Add(1)
	}
}

// CacheStats is the cache's observable state, exported through
// /v1/stats and /metrics.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

func (c *predCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Capacity:  c.cap,
	}
	for i := range c.shards {
		st.Entries += c.shards[i].len()
	}
	return st
}
