package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/ann"
	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/space"
)

// ExploreRequest is the wire form of one exploration job: which
// (study, application) pair to model, under what budget, and the name
// the finished model registers under. It is deliberately close to
// cmd/dsexplore's flags — one engine, two front ends.
type ExploreRequest struct {
	// Name is the model-registry name the finished bundle registers
	// under; it is reserved for the job's lifetime.
	Name string `json:"name"`
	// Study and App select the oracle (resolved by the server's
	// Backend); TraceLen is instructions per simulation (0 = backend
	// default).
	Study    string `json:"study"`
	App      string `json:"app"`
	TraceLen int    `json:"traceLen,omitempty"`

	// Budget is the maximum simulations (required); Batch is
	// simulations per round (0 = 50, the paper's batch). Target stops
	// the loop at an estimated mean error (%); 0 runs the full budget.
	Budget int     `json:"budget"`
	Batch  int     `json:"batch,omitempty"`
	Target float64 `json:"target,omitempty"`
	// Active selects variance-driven (active-learning) sampling.
	Active bool `json:"active,omitempty"`
	// Acquire selects a Pareto-aware acquisition function, in the
	// core.ParseAcquireSpec grammar ("hvi:max=out0:min=out1",
	// "variance:out0>=1.2", ...). It overrides Active once an ensemble
	// exists; the first round is always random.
	Acquire string `json:"acquire,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Workers bounds the per-job oracle fan-out (0 = all cores);
	// Retries is per-point retries before quarantine (0 = default).
	Workers int `json:"workers,omitempty"`
	Retries int `json:"retries,omitempty"`
}

// Backend resolves an exploration request into the design space and
// oracle it runs against. cmd/serve wires the cycle-level simulator in;
// tests wire synthetic oracles. The returned meta records provenance
// for the registered bundle.
type Backend func(req ExploreRequest) (*space.Space, core.Oracle, bundle.Meta, error)

// JobStatus is the lifecycle of an asynchronous job.
type JobStatus string

// Job lifecycle states.
const (
	JobQueued    JobStatus = "queued"
	JobRunning   JobStatus = "running"
	JobDone      JobStatus = "done"
	JobFailed    JobStatus = "failed"
	JobCancelled JobStatus = "cancelled"
)

// Job kinds the store runs.
const (
	// JobKindExplore trains a model by driving the exploration pipeline
	// and registers the finished bundle.
	JobKindExplore = "explore"
	// JobKindSweep ranks an entire design space through registered
	// models with the streaming sweep engine.
	JobKindSweep = "sweep"
)

// Job is one asynchronous unit of work tracked by the store.
type Job struct {
	ID   string
	Kind string
	Req  any // the submitted request (ExploreRequest, SweepRequest)

	// exec runs the work; its non-nil result is surfaced in JobInfo
	// once the job is done. reserved is the registry name released if
	// the job does not complete ("" when the job registers nothing).
	exec     func(ctx context.Context, job *Job) (any, error)
	reserved string

	mu          sync.Mutex
	status      JobStatus
	created     time.Time
	started     time.Time
	finished    time.Time
	steps       []core.Step
	quarantined int
	// liveSp/liveEns/acquire feed GET /v1/jobs/{id}/frontier: the
	// exploration's design space, its latest trained ensemble (updated
	// after every completed round) and its acquisition config.
	liveSp     *space.Space
	liveEns    *core.Ensemble
	acquire    *core.AcquireConfig
	swept      int
	sweepTotal int
	result     any
	errMsg     string
	cancel     context.CancelFunc
	cancelled  bool
}

// JobInfo is a consistent snapshot of a job, and its JSON view.
type JobInfo struct {
	ID          string      `json:"id"`
	Kind        string      `json:"kind"`
	Req         any         `json:"request"`
	Status      JobStatus   `json:"status"`
	Created     time.Time   `json:"created"`
	Started     *time.Time  `json:"started,omitempty"`
	Finished    *time.Time  `json:"finished,omitempty"`
	Samples     int         `json:"samples"`
	Rounds      []core.Step `json:"rounds,omitempty"`
	Quarantined int         `json:"quarantined,omitempty"`
	// Swept/SweepTotal are a sweep job's live progress in design
	// points.
	Swept      int    `json:"swept,omitempty"`
	SweepTotal int    `json:"sweepTotal,omitempty"`
	Error      string `json:"error,omitempty"`
	// Model is the registry name queryable once an exploration is done.
	Model string `json:"model,omitempty"`
	// Result is the job's product once Status == done — a sweep's
	// top-k/frontier document. Explorations surface theirs through the
	// model registry instead. Only single-job lookups carry it; the
	// job listing omits it, so polling GET /v1/jobs does not
	// re-serialize every finished sweep's tables.
	Result any `json:"result,omitempty"`
}

// Info snapshots the job under its lock, result document included.
func (j *Job) Info() JobInfo { return j.snapshot(true) }

func (j *Job) snapshot(withResult bool) JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:          j.ID,
		Kind:        j.Kind,
		Req:         j.Req,
		Status:      j.status,
		Created:     j.created,
		Rounds:      append([]core.Step(nil), j.steps...),
		Quarantined: j.quarantined,
		Swept:       j.swept,
		SweepTotal:  j.sweepTotal,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		info.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.Finished = &t
	}
	if n := len(j.steps); n > 0 {
		info.Samples = j.steps[n-1].Samples
	}
	if j.status == JobDone {
		if j.Kind == JobKindExplore {
			info.Model = j.reserved
		}
		if withResult {
			info.Result = j.result
		}
	}
	return info
}

// JobStore runs exploration jobs over a bounded worker pool and
// registers the finished models. Submissions beyond the queue's
// capacity are rejected rather than buffered without bound; cancelling
// a queued job frees its slot immediately.
type JobStore struct {
	reg     *Registry
	backend Backend
	copts   CoalesceOpts
	// kernel is the forward-kernel tier for sweep jobs that leave
	// "kernel" unset; set through Server.SetDefaultKernel before
	// serving (zero value: exact).
	kernel ann.KernelMode

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	notEmpty *sync.Cond // signaled when pending gains a job or the store closes
	pending  []*Job     // FIFO of queued jobs awaiting a worker
	queueCap int
	jobs     map[string]*Job
	order    []string
	names    map[string]bool // model names reserved by live or done jobs
	nextID   int
	closed   bool
}

// NewJobStore builds a store running at most concurrency jobs at once
// (minimum 1), queueing at most queueCap more (minimum 1). Finished
// models register in reg with copts.
func NewJobStore(reg *Registry, backend Backend, concurrency, queueCap int, copts CoalesceOpts) *JobStore {
	if concurrency < 1 {
		concurrency = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &JobStore{
		reg:      reg,
		backend:  backend,
		copts:    copts,
		baseCtx:  ctx,
		stop:     stop,
		queueCap: queueCap,
		jobs:     make(map[string]*Job),
		names:    make(map[string]bool),
	}
	s.notEmpty = sync.NewCond(&s.mu)
	for i := 0; i < concurrency; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates, enqueues and returns a new exploration job. The
// model name is reserved immediately, so two concurrent submissions
// cannot race for one registry slot.
func (s *JobStore) Submit(req ExploreRequest) (JobInfo, error) {
	if req.Name == "" {
		return JobInfo{}, fmt.Errorf("serve: job needs a model name to register under")
	}
	if req.Budget <= 0 {
		return JobInfo{}, fmt.Errorf("serve: job needs a positive simulation budget")
	}
	if req.Batch < 0 || req.Batch > req.Budget {
		return JobInfo{}, fmt.Errorf("serve: batch %d outside (0, budget=%d]", req.Batch, req.Budget)
	}
	if req.Acquire != "" {
		// Reject malformed specs at submission, not rounds later when
		// the first acquisition-driven batch would be drawn.
		if _, err := core.ParseAcquireSpec(req.Acquire); err != nil {
			return JobInfo{}, fmt.Errorf("serve: %w", err)
		}
	}
	return s.enqueue(JobKindExplore, req, req.Name, func(ctx context.Context, job *Job) (any, error) {
		return nil, s.runExplore(ctx, job, req)
	})
}

// enqueue is the kind-agnostic admission path: it checks store
// shutdown and queue capacity, reserves the registry name when the job
// will register one, and hands the job to the worker pool.
func (s *JobStore) enqueue(kind string, req any, reserve string, exec func(ctx context.Context, job *Job) (any, error)) (JobInfo, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobInfo{}, fmt.Errorf("serve: job store is shut down")
	}
	if reserve != "" {
		if s.names[reserve] {
			s.mu.Unlock()
			return JobInfo{}, fmt.Errorf("serve: model name %q is taken by another job", reserve)
		}
		if _, err := s.reg.Get(reserve); err == nil {
			s.mu.Unlock()
			return JobInfo{}, fmt.Errorf("serve: model %q already registered", reserve)
		}
	}
	if len(s.pending) >= s.queueCap {
		s.mu.Unlock()
		return JobInfo{}, fmt.Errorf("serve: job queue is full (%d pending)", s.queueCap)
	}
	s.nextID++
	job := &Job{
		ID:       fmt.Sprintf("job-%d", s.nextID),
		Kind:     kind,
		Req:      req,
		exec:     exec,
		reserved: reserve,
		status:   JobQueued,
		created:  time.Now(),
	}
	s.pending = append(s.pending, job)
	if reserve != "" {
		s.names[reserve] = true
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.notEmpty.Signal()
	s.mu.Unlock()
	return job.Info(), nil
}

// Get returns a snapshot of one job.
func (s *JobStore) Get(id string) (JobInfo, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("serve: unknown job %q", id)
	}
	return job.Info(), nil
}

// List snapshots every job in submission order. Listings omit result
// documents — fetch a single job for those.
func (s *JobStore) List() []JobInfo {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobInfo, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot(false)
	}
	return out
}

// Cancel stops a queued or running job. Finished jobs cannot be
// cancelled.
func (s *JobStore) Cancel(id string) (JobInfo, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("serve: unknown job %q", id)
	}
	job.mu.Lock()
	switch job.status {
	case JobQueued:
		// Drop it from the pending queue so its slot frees immediately;
		// if a worker dequeued it concurrently, the cancelled flag makes
		// run() skip it.
		job.cancelled = true
		job.status = JobCancelled
		job.finished = time.Now()
		s.unqueue(job)
		s.releaseName(job.reserved)
	case JobRunning:
		job.cancelled = true
		job.cancel() // run() settles status when Run returns
	case JobDone, JobFailed, JobCancelled:
		job.mu.Unlock()
		return JobInfo{}, fmt.Errorf("serve: job %q already %s", id, job.status)
	}
	job.mu.Unlock()
	return job.Info(), nil
}

// Close stops accepting jobs, cancels queued and running ones and
// waits for the workers to drain.
func (s *JobStore) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	dropped := s.pending
	s.pending = nil
	s.notEmpty.Broadcast()
	s.mu.Unlock()
	for _, job := range dropped {
		job.mu.Lock()
		job.cancelled = true
		job.status = JobCancelled
		job.finished = time.Now()
		job.mu.Unlock()
		s.releaseName(job.reserved)
	}
	s.stop()
	s.wg.Wait()
}

func (s *JobStore) releaseName(name string) {
	s.mu.Lock()
	delete(s.names, name)
	s.mu.Unlock()
}

// unqueue removes a job from the pending FIFO if it is still there.
// Callers hold job.mu; everywhere the two locks nest, the order is
// job.mu → s.mu (run's settle path does the same), so this cannot
// deadlock against Submit/List/Get, which never take job.mu under s.mu.
func (s *JobStore) unqueue(job *Job) {
	s.mu.Lock()
	for i, p := range s.pending {
		if p == job {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

func (s *JobStore) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.notEmpty.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return // closed and drained
		}
		job := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		s.run(job)
	}
}

// run executes one job end to end, whatever its kind, and settles its
// final status.
func (s *JobStore) run(job *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	job.mu.Lock()
	if job.cancelled { // cancelled while queued
		job.mu.Unlock()
		return
	}
	job.status = JobRunning
	job.started = time.Now()
	job.cancel = cancel
	job.mu.Unlock()

	result, err := job.exec(ctx, job)
	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = time.Now()
	if err != nil {
		if job.cancelled || ctx.Err() != nil {
			job.status = JobCancelled
		} else {
			job.status = JobFailed
		}
		job.errMsg = err.Error()
		s.releaseName(job.reserved)
		return
	}
	job.result = result
	job.status = JobDone
}

// runExplore is an exploration job's exec: backend resolution, the
// exploration driver, and registration of the finished bundle.
func (s *JobStore) runExplore(ctx context.Context, job *Job, req ExploreRequest) error {
	ens, d, meta, err := s.explore(ctx, job, req)
	if d != nil {
		job.mu.Lock()
		job.quarantined = len(d.Quarantined())
		job.mu.Unlock()
	}
	if err != nil {
		return err
	}
	b, err := bundle.New(d.Space(), ens, meta)
	if err == nil {
		_, err = s.reg.Add(req.Name, b, s.copts)
	}
	return err
}

// explore builds and runs the driver for one exploration job.
func (s *JobStore) explore(ctx context.Context, job *Job, req ExploreRequest) (*core.Ensemble, *explore.Driver, bundle.Meta, error) {
	sp, oracle, meta, err := s.backend(req)
	if err != nil {
		return nil, nil, meta, err
	}
	batch := req.Batch
	if batch == 0 {
		batch = 50
		if batch > req.Budget {
			batch = req.Budget
		}
	}
	cfg, err := driverConfig(req, batch)
	if err != nil {
		return nil, nil, meta, err
	}
	// The OnStep observer snapshots the freshly trained ensemble into
	// the job for GET /v1/jobs/{id}/frontier. It closes over d, which is
	// assigned below before Run starts; OnStep runs on the goroutine
	// executing Run, so the read is ordered after the assignment.
	var d *explore.Driver
	cfg.OnStep = func(step core.Step) {
		job.mu.Lock()
		job.steps = append(job.steps, step)
		job.liveEns = d.Ensemble()
		job.mu.Unlock()
	}
	cfg.Meta = meta
	d, err = explore.New(sp, oracle, cfg)
	if err != nil {
		return nil, nil, meta, err
	}
	job.mu.Lock()
	job.liveSp = sp
	job.acquire = cfg.Acquire
	job.mu.Unlock()
	ens, err := d.Run(ctx)
	if err != nil {
		return nil, d, meta, err
	}
	meta.Samples = len(d.Samples())
	meta.Model = cfg.Model
	return ens, d, meta, nil
}

// driverConfig maps an exploration request onto the driver's
// configuration.
func driverConfig(req ExploreRequest, batch int) (explore.Config, error) {
	cfg := explore.Config{
		ExploreConfig: core.ExploreConfig{
			Model:         core.DefaultModelConfig(),
			BatchSize:     batch,
			MaxSamples:    req.Budget,
			TargetMeanErr: req.Target,
			Seed:          req.Seed,
		},
		Pipeline: explore.Pipeline{
			Workers: req.Workers,
			Retries: req.Retries,
		},
	}
	if req.Active {
		cfg.Strategy = core.SelectVariance
	}
	if req.Acquire != "" {
		acq, err := core.ParseAcquireSpec(req.Acquire)
		if err != nil {
			return explore.Config{}, fmt.Errorf("serve: %w", err)
		}
		cfg.Acquire = acq
	}
	cfg.Model.Workers = req.Workers
	return cfg, nil
}
