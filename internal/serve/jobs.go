package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/space"
)

// ExploreRequest is the wire form of one exploration job: which
// (study, application) pair to model, under what budget, and the name
// the finished model registers under. It is deliberately close to
// cmd/dsexplore's flags — one engine, two front ends.
type ExploreRequest struct {
	// Name is the model-registry name the finished bundle registers
	// under; it is reserved for the job's lifetime.
	Name string `json:"name"`
	// Study and App select the oracle (resolved by the server's
	// Backend); TraceLen is instructions per simulation (0 = backend
	// default).
	Study    string `json:"study"`
	App      string `json:"app"`
	TraceLen int    `json:"traceLen,omitempty"`

	// Budget is the maximum simulations (required); Batch is
	// simulations per round (0 = 50, the paper's batch). Target stops
	// the loop at an estimated mean error (%); 0 runs the full budget.
	Budget int     `json:"budget"`
	Batch  int     `json:"batch,omitempty"`
	Target float64 `json:"target,omitempty"`
	// Active selects variance-driven (active-learning) sampling.
	Active bool   `json:"active,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	// Workers bounds the per-job oracle fan-out (0 = all cores);
	// Retries is per-point retries before quarantine (0 = default).
	Workers int `json:"workers,omitempty"`
	Retries int `json:"retries,omitempty"`
}

// Backend resolves an exploration request into the design space and
// oracle it runs against. cmd/serve wires the cycle-level simulator in;
// tests wire synthetic oracles. The returned meta records provenance
// for the registered bundle.
type Backend func(req ExploreRequest) (*space.Space, core.Oracle, bundle.Meta, error)

// JobStatus is the lifecycle of an exploration job.
type JobStatus string

// Job lifecycle states.
const (
	JobQueued    JobStatus = "queued"
	JobRunning   JobStatus = "running"
	JobDone      JobStatus = "done"
	JobFailed    JobStatus = "failed"
	JobCancelled JobStatus = "cancelled"
)

// Job is one exploration tracked by the store.
type Job struct {
	ID  string
	Req ExploreRequest

	mu          sync.Mutex
	status      JobStatus
	created     time.Time
	started     time.Time
	finished    time.Time
	steps       []core.Step
	quarantined int
	errMsg      string
	cancel      context.CancelFunc
	cancelled   bool
}

// JobInfo is a consistent snapshot of a job, and its JSON view.
type JobInfo struct {
	ID          string         `json:"id"`
	Req         ExploreRequest `json:"request"`
	Status      JobStatus      `json:"status"`
	Created     time.Time      `json:"created"`
	Started     *time.Time     `json:"started,omitempty"`
	Finished    *time.Time     `json:"finished,omitempty"`
	Samples     int            `json:"samples"`
	Rounds      []core.Step    `json:"rounds,omitempty"`
	Quarantined int            `json:"quarantined,omitempty"`
	Error       string         `json:"error,omitempty"`
	// Model is the registry name queryable once Status == done.
	Model string `json:"model,omitempty"`
}

// Info snapshots the job under its lock.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:          j.ID,
		Req:         j.Req,
		Status:      j.status,
		Created:     j.created,
		Rounds:      append([]core.Step(nil), j.steps...),
		Quarantined: j.quarantined,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		info.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.Finished = &t
	}
	if n := len(j.steps); n > 0 {
		info.Samples = j.steps[n-1].Samples
	}
	if j.status == JobDone {
		info.Model = j.Req.Name
	}
	return info
}

// JobStore runs exploration jobs over a bounded worker pool and
// registers the finished models. Submissions beyond the queue's
// capacity are rejected rather than buffered without bound; cancelling
// a queued job frees its slot immediately.
type JobStore struct {
	reg     *Registry
	backend Backend
	copts   CoalesceOpts

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	notEmpty *sync.Cond // signaled when pending gains a job or the store closes
	pending  []*Job     // FIFO of queued jobs awaiting a worker
	queueCap int
	jobs     map[string]*Job
	order    []string
	names    map[string]bool // model names reserved by live or done jobs
	nextID   int
	closed   bool
}

// NewJobStore builds a store running at most concurrency jobs at once
// (minimum 1), queueing at most queueCap more (minimum 1). Finished
// models register in reg with copts.
func NewJobStore(reg *Registry, backend Backend, concurrency, queueCap int, copts CoalesceOpts) *JobStore {
	if concurrency < 1 {
		concurrency = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &JobStore{
		reg:      reg,
		backend:  backend,
		copts:    copts,
		baseCtx:  ctx,
		stop:     stop,
		queueCap: queueCap,
		jobs:     make(map[string]*Job),
		names:    make(map[string]bool),
	}
	s.notEmpty = sync.NewCond(&s.mu)
	for i := 0; i < concurrency; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates, enqueues and returns a new job. The model name is
// reserved immediately, so two concurrent submissions cannot race for
// one registry slot.
func (s *JobStore) Submit(req ExploreRequest) (JobInfo, error) {
	if req.Name == "" {
		return JobInfo{}, fmt.Errorf("serve: job needs a model name to register under")
	}
	if req.Budget <= 0 {
		return JobInfo{}, fmt.Errorf("serve: job needs a positive simulation budget")
	}
	if req.Batch < 0 || req.Batch > req.Budget {
		return JobInfo{}, fmt.Errorf("serve: batch %d outside (0, budget=%d]", req.Batch, req.Budget)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobInfo{}, fmt.Errorf("serve: job store is shut down")
	}
	if s.names[req.Name] {
		s.mu.Unlock()
		return JobInfo{}, fmt.Errorf("serve: model name %q is taken by another job", req.Name)
	}
	if _, err := s.reg.Get(req.Name); err == nil {
		s.mu.Unlock()
		return JobInfo{}, fmt.Errorf("serve: model %q already registered", req.Name)
	}
	if len(s.pending) >= s.queueCap {
		s.mu.Unlock()
		return JobInfo{}, fmt.Errorf("serve: job queue is full (%d pending)", s.queueCap)
	}
	s.nextID++
	job := &Job{
		ID:      fmt.Sprintf("job-%d", s.nextID),
		Req:     req,
		status:  JobQueued,
		created: time.Now(),
	}
	s.pending = append(s.pending, job)
	s.names[req.Name] = true
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.notEmpty.Signal()
	s.mu.Unlock()
	return job.Info(), nil
}

// Get returns a snapshot of one job.
func (s *JobStore) Get(id string) (JobInfo, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("serve: unknown job %q", id)
	}
	return job.Info(), nil
}

// List snapshots every job in submission order.
func (s *JobStore) List() []JobInfo {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobInfo, len(jobs))
	for i, j := range jobs {
		out[i] = j.Info()
	}
	return out
}

// Cancel stops a queued or running job. Finished jobs cannot be
// cancelled.
func (s *JobStore) Cancel(id string) (JobInfo, error) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("serve: unknown job %q", id)
	}
	job.mu.Lock()
	switch job.status {
	case JobQueued:
		// Drop it from the pending queue so its slot frees immediately;
		// if a worker dequeued it concurrently, the cancelled flag makes
		// run() skip it.
		job.cancelled = true
		job.status = JobCancelled
		job.finished = time.Now()
		s.unqueue(job)
		s.releaseName(job.Req.Name)
	case JobRunning:
		job.cancelled = true
		job.cancel() // run() settles status when Run returns
	case JobDone, JobFailed, JobCancelled:
		job.mu.Unlock()
		return JobInfo{}, fmt.Errorf("serve: job %q already %s", id, job.status)
	}
	job.mu.Unlock()
	return job.Info(), nil
}

// Close stops accepting jobs, cancels queued and running ones and
// waits for the workers to drain.
func (s *JobStore) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	dropped := s.pending
	s.pending = nil
	s.notEmpty.Broadcast()
	s.mu.Unlock()
	for _, job := range dropped {
		job.mu.Lock()
		job.cancelled = true
		job.status = JobCancelled
		job.finished = time.Now()
		job.mu.Unlock()
		s.releaseName(job.Req.Name)
	}
	s.stop()
	s.wg.Wait()
}

func (s *JobStore) releaseName(name string) {
	s.mu.Lock()
	delete(s.names, name)
	s.mu.Unlock()
}

// unqueue removes a job from the pending FIFO if it is still there.
// Callers hold job.mu; everywhere the two locks nest, the order is
// job.mu → s.mu (run's settle path does the same), so this cannot
// deadlock against Submit/List/Get, which never take job.mu under s.mu.
func (s *JobStore) unqueue(job *Job) {
	s.mu.Lock()
	for i, p := range s.pending {
		if p == job {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

func (s *JobStore) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.notEmpty.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return // closed and drained
		}
		job := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		s.run(job)
	}
}

// run executes one job end to end: backend resolution, the exploration
// driver, and registration of the finished bundle.
func (s *JobStore) run(job *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	job.mu.Lock()
	if job.cancelled { // cancelled while queued
		job.mu.Unlock()
		return
	}
	job.status = JobRunning
	job.started = time.Now()
	job.cancel = cancel
	job.mu.Unlock()

	ens, d, meta, err := s.explore(ctx, job)
	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = time.Now()
	if d != nil {
		job.quarantined = len(d.Quarantined())
	}
	if err != nil {
		if job.cancelled || ctx.Err() != nil {
			job.status = JobCancelled
		} else {
			job.status = JobFailed
		}
		job.errMsg = err.Error()
		s.releaseName(job.Req.Name)
		return
	}
	b, err := bundle.New(d.Space(), ens, meta)
	if err == nil {
		_, err = s.reg.Add(job.Req.Name, b, s.copts)
	}
	if err != nil {
		job.status = JobFailed
		job.errMsg = err.Error()
		s.releaseName(job.Req.Name)
		return
	}
	job.status = JobDone
}

// explore builds and runs the driver for one job.
func (s *JobStore) explore(ctx context.Context, job *Job) (*core.Ensemble, *explore.Driver, bundle.Meta, error) {
	req := job.Req
	sp, oracle, meta, err := s.backend(req)
	if err != nil {
		return nil, nil, meta, err
	}
	batch := req.Batch
	if batch == 0 {
		batch = 50
		if batch > req.Budget {
			batch = req.Budget
		}
	}
	cfg := driverConfig(req, batch)
	cfg.OnStep = func(step core.Step) {
		job.mu.Lock()
		job.steps = append(job.steps, step)
		job.mu.Unlock()
	}
	cfg.Meta = meta
	d, err := explore.New(sp, oracle, cfg)
	if err != nil {
		return nil, nil, meta, err
	}
	ens, err := d.Run(ctx)
	if err != nil {
		return nil, d, meta, err
	}
	meta.Samples = len(d.Samples())
	meta.Model = cfg.Model
	return ens, d, meta, nil
}

// driverConfig maps an exploration request onto the driver's
// configuration.
func driverConfig(req ExploreRequest, batch int) explore.Config {
	cfg := explore.Config{
		ExploreConfig: core.ExploreConfig{
			Model:         core.DefaultModelConfig(),
			BatchSize:     batch,
			MaxSamples:    req.Budget,
			TargetMeanErr: req.Target,
			Seed:          req.Seed,
		},
		Pipeline: explore.Pipeline{
			Workers: req.Workers,
			Retries: req.Retries,
		},
	}
	if req.Active {
		cfg.Strategy = core.SelectVariance
	}
	cfg.Model.Workers = req.Workers
	return cfg
}
