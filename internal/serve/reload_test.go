package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bundle"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/stats"
)

// trainedBundleVariant trains on the same space as trainedBundle but
// from a different sample, so its predictions are distinguishable —
// the reload tests need to see the cutover in the answers.
func trainedBundleVariant(t testing.TB) *bundle.Bundle {
	t.Helper()
	sp := testSpace()
	enc := encoding.NewEncoder(sp)
	rng := stats.NewRNG(91)
	train := sp.Sample(rng, 30)
	x := make([][]float64, len(train))
	y := make([][]float64, len(train))
	for i, idx := range train {
		x[i] = enc.EncodeIndex(idx, nil)
		y[i] = []float64{testTarget(sp, idx)}
	}
	cfg := core.DefaultModelConfig()
	cfg.Train.MaxEpochs = 40
	cfg.Train.Patience = 10
	ens, err := core.TrainEnsemble(x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New(sp, ens, bundle.Meta{Study: "synth", App: "variant", Metric: "IPC", Model: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func writeBundle(t testing.TB, b *bundle.Bundle, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReloadVersionCutover rolls an alias to a different artifact and
// checks the swap end to end: version bump in the response and in
// /v1/models, and post-reload predictions bit-identical to the new
// ensemble — including through the prediction cache, whose
// version-carrying keys must never serve the old bundle's values.
func TestReloadVersionCutover(t *testing.T) {
	b1 := trainedBundle(t)
	b2 := trainedBundleVariant(t)
	p1 := writeBundle(t, b1, "v1.bundle.json")
	p2 := writeBundle(t, b2, "v2.bundle.json")

	reg := NewRegistry()
	reg.EnableCache(256)
	if _, err := reg.AddFile("synth", p1, CoalesceOpts{Linger: time.Millisecond}, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})

	const point = 11
	x := b1.Encoder.EncodeIndex(point, nil)
	want1, _ := b1.Ensemble.PredictVariance(x)
	want2, _ := b2.Ensemble.PredictVariance(x)
	if want1 == want2 {
		t.Fatal("test bundles predict identically; the cutover would be invisible")
	}

	body := fmt.Sprintf(`{"model":"synth","point":%d}`, point)
	// Warm the cache against version 1.
	for i := 0; i < 2; i++ {
		_, out := postJSON(t, ts.URL+"/v1/predict", body)
		if got := out["prediction"].(float64); got != want1 {
			t.Fatalf("pre-reload prediction %v, want %v", got, want1)
		}
	}

	resp, out := postJSON(t, ts.URL+"/v1/models/synth/reload", fmt.Sprintf(`{"path":%q}`, p2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload answered %d: %v", resp.StatusCode, out)
	}
	if got, prev := out["version"].(float64), out["previous_version"].(float64); got != 2 || prev != 1 {
		t.Fatalf("reload reported version %v (previous %v), want 2 (previous 1)", got, prev)
	}

	// The alias now answers with the new ensemble — the version-1 cache
	// entry is unreachable by construction.
	for i := 0; i < 2; i++ {
		_, out := postJSON(t, ts.URL+"/v1/predict", body)
		if got := out["prediction"].(float64); got != want2 {
			t.Fatalf("post-reload prediction %v, want new ensemble's %v", got, want2)
		}
	}

	mresp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var models map[string]any
	if err := json.NewDecoder(mresp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	entry := models["models"].([]any)[0].(map[string]any)
	if v := entry["version"].(float64); v != 2 {
		t.Fatalf("/v1/models reports version %v, want 2", v)
	}
}

// TestReloadUnderLoad is the zero-drop proof: clients hammer
// /v1/predict while the alias is rolled repeatedly; every single
// request must answer 200. Requests caught on the displaced coalescer
// are retried against the new version inside the handler.
func TestReloadUnderLoad(t *testing.T) {
	b := trainedBundle(t)
	path := writeBundle(t, b, "m.bundle.json")
	reg := NewRegistry()
	reg.EnableCache(128)
	if _, err := reg.AddFile("synth", path, CoalesceOpts{Linger: time.Millisecond}, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})

	const clients = 8
	var (
		stop     atomic.Bool
		done     sync.WaitGroup
		total    atomic.Int64
		failures atomic.Int64
	)
	for w := 0; w < clients; w++ {
		done.Add(1)
		go func(w int) {
			defer done.Done()
			for i := 0; !stop.Load(); i++ {
				body := fmt.Sprintf(`{"model":"synth","point":%d}`, (w*5+i)%40)
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				resp.Body.Close()
				total.Add(1)
			}
		}(w)
	}

	const rolls = 5
	for i := 0; i < rolls; i++ {
		time.Sleep(15 * time.Millisecond)
		resp, out := postJSON(t, ts.URL+"/v1/models/synth/reload", "{}")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d answered %d: %v", i, resp.StatusCode, out)
		}
	}
	time.Sleep(15 * time.Millisecond)
	stop.Store(true)
	done.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed across %d reloads; a roll must drop nothing",
			n, total.Load(), rolls)
	}
	if total.Load() == 0 {
		t.Fatal("load generator sent no requests; the test proved nothing")
	}
	m, err := reg.Get("synth")
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != rolls+1 {
		t.Fatalf("final version %d, want %d after %d reloads", m.Version, rolls+1, rolls)
	}
}

func TestReloadErrors(t *testing.T) {
	b := trainedBundle(t)
	reg := NewRegistry()
	if _, err := reg.Add("mem", b, CoalesceOpts{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg))
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})

	// Unknown alias.
	resp, _ := postJSON(t, ts.URL+"/v1/models/nope/reload", "{}")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown alias reload answered %d, want 404", resp.StatusCode)
	}
	// In-memory model without an explicit path.
	resp, _ = postJSON(t, ts.URL+"/v1/models/mem/reload", "{}")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("in-memory reload answered %d, want 409", resp.StatusCode)
	}
	// ...but an explicit path makes it reloadable.
	path := writeBundle(t, b, "mem.bundle.json")
	resp, out := postJSON(t, ts.URL+"/v1/models/mem/reload", fmt.Sprintf(`{"path":%q}`, path))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit-path reload answered %d: %v", resp.StatusCode, out)
	}
	// A bad file leaves the alias serving the old version.
	resp, _ = postJSON(t, ts.URL+"/v1/models/mem/reload", `{"path":"/does/not/exist.json"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("missing-file reload answered %d, want 409", resp.StatusCode)
	}
	if _, err := reg.Get("mem"); err != nil {
		t.Fatal("failed reload broke the alias:", err)
	}
}
