// Package studies defines the two design spaces of the paper's
// evaluation — the memory-system study (Table 4.1, 23,040 points per
// benchmark) and the processor study (Table 4.2, 20,736 points per
// benchmark) — and the mapping from design points to simulator
// configurations, including the fixed parameters on the right-hand
// sides of those tables.
package studies

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/space"
)

// Study couples a design space with the function that realizes each of
// its points as a complete simulator configuration.
type Study struct {
	Name  string
	Space *space.Space
	// Build returns the simulator configuration for a choice vector of
	// Space. It must be a pure function.
	Build func(choices []int) sim.Config
}

// Config materializes the design point with the given flat index.
func (st *Study) Config(index int) sim.Config {
	return st.Build(st.Space.Choices(index))
}

// BaselineConfig returns the fixed machine of the memory-system study
// (the right-hand column of Table 4.1): a 4 GHz, 4-wide out-of-order
// core with a 128-entry ROB, 96+96 physical registers, 48/48 LSQ, a
// 32 KB 2-cycle L1I, a 21264-style tournament predictor, and a 100 ns
// SDRAM behind a 64-bit front-side bus. Memory-hierarchy parameters are
// set to the midpoints of the study ranges so the returned Config is a
// complete, valid machine on its own.
func BaselineConfig() sim.Config {
	return sim.Config{
		FreqGHz:     4,
		Width:       4,
		MaxBranches: 16,
		IntALUs:     4,
		FPUs:        2,
		LoadPorts:   2,
		StorePorts:  2,
		ROBSize:     128,
		IntRegs:     96,
		FPRegs:      96,
		LSQLoads:    48,
		LSQStores:   48,

		BPredEntries: 2048,
		BTBSets:      2048,
		BTBAssoc:     2,

		L1ISizeKB: 32, L1IBlock: 32, L1IAssoc: 2,
		L1DSizeKB: 32, L1DBlock: 32, L1DAssoc: 2,
		L1DWrite: sim.WriteBack,
		L2SizeKB: 1024, L2Block: 64, L2Assoc: 8,

		L2BusBytes: 32,
		FSBMHz:     800,
		SDRAMLatNS: 100,
	}
}

// Memory-system study axis order (Table 4.1 left).
const (
	memL1DSize = iota
	memL1DBlock
	memL1DAssoc
	memL1DWrite
	memL2Size
	memL2Block
	memL2Assoc
	memL2Bus
	memFSB
)

// MemorySystem returns the memory-system sensitivity study of
// Table 4.1: nine variable memory-hierarchy parameters over a fixed
// 4 GHz core, spanning 4·2·4·2·4·2·5·3·3 = 23,040 design points.
func MemorySystem() *Study {
	sp := space.New("memory-system", []space.Param{
		{Name: "L1D Size (KB)", Kind: space.Cardinal, Values: []float64{8, 16, 32, 64}},
		{Name: "L1D Block (B)", Kind: space.Cardinal, Values: []float64{32, 64}},
		{Name: "L1D Assoc", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8}},
		{Name: "L1 Write Policy", Kind: space.Nominal, Levels: []string{"WT", "WB"}},
		{Name: "L2 Size (KB)", Kind: space.Cardinal, Values: []float64{256, 512, 1024, 2048}},
		{Name: "L2 Block (B)", Kind: space.Cardinal, Values: []float64{64, 128}},
		{Name: "L2 Assoc", Kind: space.Cardinal, Values: []float64{1, 2, 4, 8, 16}},
		{Name: "L2 Bus (B)", Kind: space.Cardinal, Values: []float64{8, 16, 32}},
		{Name: "FSB (GHz)", Kind: space.Continuous, Values: []float64{0.533, 0.8, 1.4}},
	})
	build := func(c []int) sim.Config {
		cfg := BaselineConfig()
		cfg.L1DSizeKB = int(sp.Value(c, memL1DSize))
		cfg.L1DBlock = int(sp.Value(c, memL1DBlock))
		cfg.L1DAssoc = int(sp.Value(c, memL1DAssoc))
		if sp.LevelName(c, memL1DWrite) == "WT" {
			cfg.L1DWrite = sim.WriteThrough
		} else {
			cfg.L1DWrite = sim.WriteBack
		}
		cfg.L2SizeKB = int(sp.Value(c, memL2Size))
		cfg.L2Block = int(sp.Value(c, memL2Block))
		cfg.L2Assoc = int(sp.Value(c, memL2Assoc))
		cfg.L2BusBytes = int(sp.Value(c, memL2Bus))
		cfg.FSBMHz = sp.Value(c, memFSB) * 1000
		return cfg
	}
	return &Study{Name: "memory", Space: sp, Build: build}
}

// Processor study axis order (Table 4.2 left).
const (
	procWidth = iota
	procFreq
	procMaxBr
	procBPred
	procBTB
	procFU
	procROB
	procRegs
	procLSQ
	procL1I
	procL1D
	procL2
)

// Processor returns the processor sensitivity study of Table 4.2:
// twelve variable core parameters (with register-file choices dependent
// on ROB size, exactly as the paper constrains them) over fixed L1/L2
// geometry rules, spanning 20,736 design points.
func Processor() *Study {
	sp := space.New("processor", []space.Param{
		{Name: "Width", Kind: space.Cardinal, Values: []float64{4, 6, 8}},
		{Name: "Frequency (GHz)", Kind: space.Continuous, Values: []float64{2, 4}},
		{Name: "Max Branches", Kind: space.Cardinal, Values: []float64{16, 32}},
		{Name: "BPred Entries", Kind: space.Cardinal, Values: []float64{1024, 2048, 4096}},
		{Name: "BTB Sets", Kind: space.Cardinal, Values: []float64{1024, 2048}},
		{Name: "Functional Units", Kind: space.Cardinal, Values: []float64{4, 8}},
		{Name: "ROB Size", Kind: space.Cardinal, Values: []float64{96, 128, 160}},
		{Name: "Register File", Kind: space.Cardinal, DependsOn: "ROB Size", Table: [][]float64{
			{64, 80},  // ROB 96
			{80, 96},  // ROB 128
			{96, 112}, // ROB 160
		}},
		{Name: "LSQ Entries", Kind: space.Cardinal, Values: []float64{32, 48, 64}},
		{Name: "L1I Size (KB)", Kind: space.Cardinal, Values: []float64{8, 32}},
		{Name: "L1D Size (KB)", Kind: space.Cardinal, Values: []float64{8, 32}},
		{Name: "L2 Size (KB)", Kind: space.Cardinal, Values: []float64{256, 1024}},
	})
	build := func(c []int) sim.Config {
		cfg := BaselineConfig()
		cfg.Width = int(sp.Value(c, procWidth))
		cfg.FreqGHz = sp.Value(c, procFreq)
		cfg.MaxBranches = int(sp.Value(c, procMaxBr))
		cfg.BPredEntries = int(sp.Value(c, procBPred))
		cfg.BTBSets = int(sp.Value(c, procBTB))
		fu := int(sp.Value(c, procFU))
		cfg.IntALUs = fu
		cfg.FPUs = fu / 2
		cfg.ROBSize = int(sp.Value(c, procROB))
		regs := int(sp.Value(c, procRegs))
		cfg.IntRegs, cfg.FPRegs = regs, regs
		lsq := int(sp.Value(c, procLSQ))
		cfg.LSQLoads, cfg.LSQStores = lsq, lsq

		// Fixed-rule cache geometry (Table 4.2 right): associativity
		// follows capacity; 32 B L1 blocks, 64 B L2 blocks; write-back.
		cfg.L1ISizeKB = int(sp.Value(c, procL1I))
		cfg.L1IBlock = 32
		cfg.L1IAssoc = assocForL1(cfg.L1ISizeKB)
		cfg.L1DSizeKB = int(sp.Value(c, procL1D))
		cfg.L1DBlock = 32
		cfg.L1DAssoc = assocForL1(cfg.L1DSizeKB)
		cfg.L1DWrite = sim.WriteBack
		cfg.L2SizeKB = int(sp.Value(c, procL2))
		cfg.L2Block = 64
		cfg.L2Assoc = assocForL2(cfg.L2SizeKB)

		cfg.L2BusBytes = 32
		cfg.FSBMHz = 800
		return cfg
	}
	return &Study{Name: "processor", Space: sp, Build: build}
}

// assocForL1 implements the paper's "1,2 way (dependent on size)" rule:
// the small configuration is direct-mapped, the large one 2-way.
func assocForL1(sizeKB int) int {
	if sizeKB <= 8 {
		return 1
	}
	return 2
}

// assocForL2 implements the paper's "4,8 way (dependent on size)" rule.
func assocForL2(sizeKB int) int {
	if sizeKB <= 256 {
		return 4
	}
	return 8
}

// ByName returns the study with the given short name ("memory" or
// "processor").
func ByName(name string) (*Study, error) {
	switch name {
	case "memory":
		return MemorySystem(), nil
	case "processor":
		return Processor(), nil
	}
	return nil, fmt.Errorf("studies: unknown study %q (want \"memory\" or \"processor\")", name)
}

// All returns both studies in paper order.
func All() []*Study {
	return []*Study{MemorySystem(), Processor()}
}

// PaperApps returns the benchmark suite in the order the paper lists it
// (four CINT2000 then four CFP2000).
func PaperApps() []string {
	return []string{"gzip", "mcf", "crafty", "twolf", "mgrid", "applu", "mesa", "equake"}
}

// RepresentativeApps returns the four applications the paper plots in
// the body figures (mesa, mcf, equake, crafty); the rest appear in
// Appendix A.
func RepresentativeApps() []string {
	return []string{"mesa", "mcf", "equake", "crafty"}
}

// SimPointApps returns the four longest-running applications, used in
// the ANN+SimPoint experiments (§5.3).
func SimPointApps() []string {
	return []string{"mesa", "mcf", "crafty", "equake"}
}
