package studies

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestSpaceSizesMatchPaper(t *testing.T) {
	if got := MemorySystem().Space.Size(); got != 23040 {
		t.Fatalf("memory-system space = %d points, paper says 23,040", got)
	}
	if got := Processor().Space.Size(); got != 20736 {
		t.Fatalf("processor space = %d points, paper says 20,736", got)
	}
}

func TestTotalSimulationCounts(t *testing.T) {
	// Paper: 184,320 and 165,888 simulations over eight benchmarks.
	if got := MemorySystem().Space.Size() * 8; got != 184320 {
		t.Fatalf("memory study total = %d", got)
	}
	if got := Processor().Space.Size() * 8; got != 165888 {
		t.Fatalf("processor study total = %d", got)
	}
}

func TestBaselineConfigValid(t *testing.T) {
	if err := BaselineConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEveryMemoryPointBuildsValidConfig(t *testing.T) {
	st := MemorySystem()
	rng := stats.NewRNG(1)
	// Exhaustive validation is cheap enough for the memory study.
	for _, idx := range append(rng.SampleWithoutReplacement(st.Space.Size(), 2000), 0, st.Space.Size()-1) {
		cfg := st.Config(idx)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("point %d invalid: %v\n%s", idx, err, st.Space.Describe(idx))
		}
	}
}

func TestEveryProcessorPointBuildsValidConfig(t *testing.T) {
	st := Processor()
	rng := stats.NewRNG(2)
	for _, idx := range append(rng.SampleWithoutReplacement(st.Space.Size(), 2000), 0, st.Space.Size()-1) {
		cfg := st.Config(idx)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("point %d invalid: %v\n%s", idx, err, st.Space.Describe(idx))
		}
	}
}

func TestMemoryStudyAxesReachConfig(t *testing.T) {
	st := MemorySystem()
	// Walk each axis from a fixed base and check the config field moves.
	base := make([]int, st.Space.NumParams())
	cfgOf := func(c []int) sim.Config { return st.Build(c) }

	base[memL1DSize] = 3
	if cfgOf(base).L1DSizeKB != 64 {
		t.Fatal("L1D size axis not wired")
	}
	base[memL1DWrite] = 0
	if cfgOf(base).L1DWrite != sim.WriteThrough {
		t.Fatal("write-policy axis not wired (WT)")
	}
	base[memL1DWrite] = 1
	if cfgOf(base).L1DWrite != sim.WriteBack {
		t.Fatal("write-policy axis not wired (WB)")
	}
	base[memL2Size] = 3
	if cfgOf(base).L2SizeKB != 2048 {
		t.Fatal("L2 size axis not wired")
	}
	base[memFSB] = 2
	if cfgOf(base).FSBMHz != 1400 {
		t.Fatalf("FSB axis not wired: %v", cfgOf(base).FSBMHz)
	}
}

func TestProcessorRegisterFileDependsOnROB(t *testing.T) {
	st := Processor()
	c := make([]int, st.Space.NumParams())
	// ROB 96 (choice 0) allows registers {64, 80}.
	c[procROB], c[procRegs] = 0, 0
	if got := st.Build(c).IntRegs; got != 64 {
		t.Fatalf("ROB 96/choice 0 → %d regs, want 64", got)
	}
	c[procRegs] = 1
	if got := st.Build(c).IntRegs; got != 80 {
		t.Fatalf("ROB 96/choice 1 → %d regs, want 80", got)
	}
	// ROB 160 (choice 2) allows {96, 112}.
	c[procROB], c[procRegs] = 2, 1
	if got := st.Build(c).IntRegs; got != 112 {
		t.Fatalf("ROB 160/choice 1 → %d regs, want 112", got)
	}
	// The paper's rule: a 96-entry ROB never pairs with 112 registers.
	for idx := 0; idx < st.Space.Size(); idx += 97 {
		cfg := st.Config(idx)
		if cfg.ROBSize == 96 && cfg.IntRegs > 80 {
			t.Fatalf("point %d pairs ROB 96 with %d regs", idx, cfg.IntRegs)
		}
		if cfg.ROBSize == 160 && cfg.IntRegs < 96 {
			t.Fatalf("point %d pairs ROB 160 with %d regs", idx, cfg.IntRegs)
		}
	}
}

func TestProcessorDependentCacheRules(t *testing.T) {
	st := Processor()
	for idx := 0; idx < st.Space.Size(); idx += 131 {
		cfg := st.Config(idx)
		if cfg.L1DSizeKB == 8 && cfg.L1DAssoc != 1 {
			t.Fatalf("8KB L1D should be direct-mapped, got %d-way", cfg.L1DAssoc)
		}
		if cfg.L1DSizeKB == 32 && cfg.L1DAssoc != 2 {
			t.Fatalf("32KB L1D should be 2-way, got %d-way", cfg.L1DAssoc)
		}
		if cfg.L2SizeKB == 256 && cfg.L2Assoc != 4 {
			t.Fatalf("256KB L2 should be 4-way, got %d-way", cfg.L2Assoc)
		}
		if cfg.L2SizeKB == 1024 && cfg.L2Assoc != 8 {
			t.Fatalf("1MB L2 should be 8-way, got %d-way", cfg.L2Assoc)
		}
		if cfg.L1DBlock != 32 || cfg.L2Block != 64 || cfg.L1DWrite != sim.WriteBack {
			t.Fatal("fixed cache geometry rules violated")
		}
	}
}

func TestProcessorFunctionalUnits(t *testing.T) {
	st := Processor()
	c := make([]int, st.Space.NumParams())
	c[procFU] = 1 // 8 FUs
	cfg := st.Build(c)
	if cfg.IntALUs != 8 || cfg.FPUs != 4 {
		t.Fatalf("8 FUs → %d ALUs / %d FPUs", cfg.IntALUs, cfg.FPUs)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"memory", "processor"} {
		st, err := ByName(name)
		if err != nil || st.Name != name {
			t.Fatalf("ByName(%s) = %v, %v", name, st, err)
		}
	}
	if _, err := ByName("cache"); err == nil {
		t.Fatal("unknown study name accepted")
	}
}

func TestAppLists(t *testing.T) {
	if len(PaperApps()) != 8 {
		t.Fatal("PaperApps should list eight benchmarks")
	}
	if len(RepresentativeApps()) != 4 || len(SimPointApps()) != 4 {
		t.Fatal("representative/simpoint app lists should have four entries")
	}
}

func TestAll(t *testing.T) {
	all := All()
	if len(all) != 2 || all[0].Name != "memory" || all[1].Name != "processor" {
		t.Fatal("All() should return memory then processor")
	}
}

func TestConfigPure(t *testing.T) {
	st := Processor()
	a := st.Config(1234)
	b := st.Config(1234)
	if a != b {
		t.Fatal("Config is not a pure function of the index")
	}
}
