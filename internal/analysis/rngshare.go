package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RNGShare flags a *stats.RNG shared with a goroutine — captured by a
// `go` closure or passed as a `go` call argument — without an
// intervening Split(). stats.RNG is documented single-goroutine; a
// shared stream is both a data race and a determinism bug (draw order
// depends on scheduling). The sanctioned pattern derives a child
// generator per goroutine:
//
//	child := rng.Split()
//	go func() { ... child.Float64() ... }()
var RNGShare = &Analyzer{
	Name: "rngshare",
	Doc: "flag *stats.RNG values captured by `go` closures or passed to goroutines " +
		"without an intervening .Split(); the RNG is single-goroutine by contract.",
	Run: runRNGShare,
}

func runRNGShare(pass *Pass) error {
	fromSplit := splitDerivedVars(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// RNG-typed arguments of the spawned call: fine when the
			// expression is itself a .Split() call or a Split-derived
			// variable.
			for _, arg := range g.Call.Args {
				if !isRNGPtr(pass.TypesInfo.TypeOf(arg)) {
					continue
				}
				if isSplitCall(ast.Unparen(arg)) {
					continue
				}
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && fromSplit[pass.TypesInfo.Uses[id]] {
					continue
				}
				pass.Reportf(arg.Pos(), "*stats.RNG passed to a goroutine without an intervening .Split(); the RNG is single-goroutine — derive a child stream with Split()")
			}
			// Free RNG variables captured by a spawned closure.
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			reported := map[types.Object]bool{}
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil || !isRNGPtr(obj.Type()) || reported[obj] {
					return true
				}
				if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
					return true // declared inside the closure
				}
				if fromSplit[obj] {
					return true
				}
				reported[obj] = true
				pass.Reportf(id.Pos(), "*stats.RNG %q captured by a `go` closure without an intervening .Split(); the RNG is single-goroutine — derive a child stream with Split()", obj.Name())
				return true
			})
			return true
		})
	}
	return nil
}

// splitDerivedVars collects variables whose defining assignment draws
// from .Split(), i.e. per-goroutine child generators.
func splitDerivedVars(pass *Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	record := func(id *ast.Ident, rhs ast.Expr) {
		if !isSplitCall(ast.Unparen(rhs)) {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, id := range n.Names {
					record(id, n.Values[i])
				}
			}
			return true
		})
	}
	return out
}

func isSplitCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Split"
}

// isRNGPtr reports whether t is *stats.RNG (the repo's generator; the
// path-suffix match keeps the analyzer working under module renames).
func isRNGPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/stats")
}
