// Package determinism is the in-scope fixture for the determinism
// analyzer: wall-clock reads and nondeterministic RNG imports are
// findings unless covered by a reasoned //repolint:allow directive.
package determinism

import (
	crand "crypto/rand" // want `import of crypto/rand`
	"math/rand"         // want `import of math/rand`
	"time"
)

// Wall exercises the forbidden time functions.
func Wall() time.Duration {
	start := time.Now()      // want `time\.Now in result-affecting package determinism`
	_ = time.Until(start)    // want `time\.Until in result-affecting package`
	return time.Since(start) // want `time\.Since in result-affecting package`
}

// Rand exercises the forbidden RNG imports at a use site (the import
// line itself carries the finding).
func Rand() int {
	var b [1]byte
	_, _ = crand.Read(b[:])
	return rand.Int()
}

// AllowedTrailing is wall-measured telemetry with a trailing directive.
func AllowedTrailing() time.Time {
	return time.Now() //repolint:allow determinism -- fixture: progress-log timestamp, never reaches results
}

// AllowedAbove uses a full-line directive on the line above.
func AllowedAbove() time.Time {
	//repolint:allow determinism -- fixture: wall-measured latency column
	return time.Now()
}

// MissingReason has a directive with no reason: the finding is NOT
// suppressed and the directive itself is a second finding.
func MissingReason() time.Time {
	//repolint:allow determinism // want `needs a reason`
	return time.Now() // want `time\.Now in result-affecting package`
}

// WrongAnalyzer names another analyzer, so it does not cover the line.
func WrongAnalyzer() time.Time {
	//repolint:allow maprange -- fixture: names the wrong analyzer
	return time.Now() // want `time\.Now in result-affecting package`
}
