// Package errfield is the fixture for the errfield analyzer: Validate
// methods must return errors that name the offending field.
package errfield

import (
	"errors"
	"fmt"
)

// Config mirrors the repo's spec types.
type Config struct {
	ChunkSize int
	End       int
	Workers   int
}

// Validate demonstrates both conventions and both violations.
func (c *Config) Validate() error {
	if c.ChunkSize < 0 {
		return fmt.Errorf("cfg: ChunkSize %d must be non-negative", c.ChunkSize)
	}
	if c.End < 0 {
		return errors.New("chunk size and end must agree")
	}
	if c.Workers < 0 {
		return errors.New("bad value") // want `names neither a field of Config nor the type itself`
	}
	if c.Workers > 1<<20 {
		return fmt.Errorf("too big: %d", c.Workers) // want `names neither a field of Config nor the type itself`
	}
	return nil
}

// Spec exercises the receiver-type-name escape and value receivers.
type Spec struct {
	Rows int
}

// Validate mentions the type, not the field: accepted.
func (s Spec) Validate() error {
	if s.Rows < 0 {
		return fmt.Errorf("spec range [%d,0) is empty", s.Rows)
	}
	return nil
}

// Wrapped propagates a sub-error: outside the heuristic, skipped.
type Wrapped struct {
	Inner Config
}

// Validate wraps without a literal.
func (w *Wrapped) Validate() error {
	if err := w.Inner.Validate(); err != nil {
		return err
	}
	return nil
}

// NotValidate is any other method: the convention only binds Validate.
func (c *Config) NotValidate() error {
	return errors.New("bad value")
}

// Free functions named Validate are not methods and are skipped.
func Validate() error {
	return errors.New("bad value")
}

// Allowed is suppressed with a reasoned directive.
type Allowed struct {
	N int
}

// Validate has one message that cannot name a field meaningfully.
func (a *Allowed) Validate() error {
	if a.N < 0 {
		//repolint:allow errfield -- fixture: single-field struct, message is unambiguous
		return errors.New("must be non-negative")
	}
	return nil
}
