// Package rngshare is the fixture for the rngshare analyzer: the
// repo's real *stats.RNG shared with goroutines with and without an
// intervening Split(). It imports both repro/internal/stats (module
// export data) and the rngstub fixture (cross-package testdata).
package rngshare

import (
	"rngstub"

	"repro/internal/stats"
)

// CapturedShared captures the parent generator directly: race + draw
// order depends on scheduling.
func CapturedShared() {
	rng := stats.NewRNG(1)
	go func() {
		_ = rng.Uint64() // want `captured by a .go. closure without an intervening \.Split`
	}()
}

// CapturedSplit captures a Split-derived child: sanctioned.
func CapturedSplit() {
	rng := stats.NewRNG(1)
	child := rng.Split()
	go func() {
		_ = child.Uint64()
	}()
}

// CapturedSplitVar covers the `var` declaration form.
func CapturedSplitVar() {
	rng := stats.NewRNG(1)
	var child = rng.Split()
	go func() {
		_ = child.Uint64()
	}()
}

// PassedShared hands the parent to a spawned call.
func PassedShared() {
	rng := stats.NewRNG(1)
	go rngstub.Work(rng) // want `passed to a goroutine without an intervening \.Split`
}

// PassedSplitCall splits at the call site: sanctioned.
func PassedSplitCall() {
	rng := stats.NewRNG(1)
	go rngstub.Work(rng.Split())
}

// PassedSplitVar passes a Split-derived child: sanctioned.
func PassedSplitVar() {
	rng := stats.NewRNG(1)
	child := rng.Split()
	go rngstub.Work(child)
}

// LocalInsideClosure declares its generator inside the goroutine:
// single-goroutine by construction.
func LocalInsideClosure() {
	go func() {
		rng := stats.NewRNG(7)
		_ = rng.Uint64()
	}()
}

// SameGoroutineUse never crosses a go statement.
func SameGoroutineUse() uint64 {
	rng := stats.NewRNG(1)
	return rng.Uint64()
}

// Allowed is suppressed with a reasoned directive.
func Allowed() {
	rng := stats.NewRNG(1)
	go func() {
		//repolint:allow rngshare -- fixture: goroutine proven mutually exclusive with parent
		_ = rng.Uint64()
	}()
}
