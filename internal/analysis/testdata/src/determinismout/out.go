// Package determinismout is entirely out of the determinism scope:
// wall-clock reads and math/rand are legal here.
package determinismout

import (
	"math/rand"
	"time"
)

// Free runs outside the result-affecting scope.
func Free() time.Duration {
	start := time.Now()
	_ = rand.Int()
	return time.Since(start)
}
