// Package maprange is the fixture for the maprange analyzer: map
// iteration order escaping into slices, output streams, or channels.
package maprange

import (
	"fmt"
	"io"
	"slices"
	"sort"
)

// CollectNoSort appends map keys and never sorts: the classic
// bit-identity killer.
func CollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends map-iteration values to "keys" without a subsequent sort`
	}
	return keys
}

// CollectThenSort is the sanctioned idiom.
func CollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectThenSlicesSort uses the slices package instead.
func CollectThenSlicesSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// CollectThenSortFunc sorts through a comparison func, wrapping the
// slice in the call's argument subtree.
func CollectThenSortFunc(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// PrintDuringRange serializes inside the loop.
func PrintDuringRange(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `writes serialized output inside map iteration`
	}
}

// FprintDuringRange covers the writer-bound variant.
func FprintDuringRange(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k) // want `writes serialized output inside map iteration`
	}
}

// SendDuringRange leaks order over a channel.
func SendDuringRange(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `sends map-iteration values over a channel`
	}
}

// AggregateIsFine: commutative reduction does not depend on order.
func AggregateIsFine(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// MapToMapIsFine: building another map is order-independent.
func MapToMapIsFine(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// SliceRangeIsFine: only map ranges are checked.
func SliceRangeIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// InsideClosure: a nested function literal is its own scope — sorting
// in the outer function does not sanction the closure's loop.
func InsideClosure(m map[string]int) func() []string {
	var outer []string
	fn := func() []string {
		var keys []string
		for k := range m {
			keys = append(keys, k) // want `appends map-iteration values to "keys" without a subsequent sort`
		}
		return keys
	}
	sort.Strings(outer)
	return fn
}

// Allowed is suppressed with a reasoned directive.
func Allowed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//repolint:allow maprange -- fixture: order randomization is the point here
		keys = append(keys, k)
	}
	return keys
}
