// Package atomicmix is the fixture for the atomicmix analyzer: struct
// fields touched both through sync/atomic functions and by plain
// load/store.
package atomicmix

import "sync/atomic"

// Mixed is the bug: hits is atomic in Add but plain in Snapshot.
type Mixed struct {
	hits int64
}

// Add updates atomically.
func (m *Mixed) Add() {
	atomic.AddInt64(&m.hits, 1)
}

// Snapshot reads the same field without sync/atomic.
func (m *Mixed) Snapshot() int64 {
	return m.hits // want `field "hits" is accessed with sync/atomic .* but by plain load/store here`
}

// Reset writes the same field without sync/atomic.
func (m *Mixed) Reset() {
	m.hits = 0 // want `field "hits" is accessed with sync/atomic .* but by plain load/store here`
}

// Consistent is always atomic: fine.
type Consistent struct {
	n uint64
}

// Incr and Load agree on the discipline.
func (c *Consistent) Incr()        { atomic.AddUint64(&c.n, 1) }
func (c *Consistent) Load() uint64 { return atomic.LoadUint64(&c.n) }

// Typed uses the un-mixable typed atomics: fine.
type Typed struct {
	n atomic.Int64
}

// Incr and Load go through the type's methods.
func (t *Typed) Incr()       { t.n.Add(1) }
func (t *Typed) Load() int64 { return t.n.Load() }

// PlainOnly never touches sync/atomic: fine.
type PlainOnly struct {
	n int64
}

// Incr is plain everywhere.
func (p *PlainOnly) Incr() { p.n++ }

// Allowed documents a proven-safe plain read (e.g. after all
// goroutines joined) with a reasoned directive.
type Allowed struct {
	n int64
}

// Incr updates atomically.
func (a *Allowed) Incr() { atomic.AddInt64(&a.n, 1) }

// Final reads after the last writer exits.
func (a *Allowed) Final() int64 {
	return a.n //repolint:allow atomicmix -- fixture: read after sync barrier, no concurrent writers
}
