// Package determinismscoped mirrors loadsim: only the schedule layer
// (this file) is in the determinism scope; wall.go is the measurement
// layer and exempt.
package determinismscoped

import "time"

// ScheduleStamp is in the scoped file: flagged.
func ScheduleStamp() time.Time {
	return time.Now() // want `time\.Now in result-affecting package`
}
