package determinismscoped

import "time"

// WallStamp lives outside the scoped file list: not flagged.
func WallStamp() time.Duration {
	start := time.Now()
	return time.Since(start)
}
