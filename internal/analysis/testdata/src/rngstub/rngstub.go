// Package rngstub is the helper half of the rngshare cross-package
// fixture: a worker that takes the repo's real *stats.RNG, imported by
// the rngshare fixture across package boundaries.
package rngstub

import "repro/internal/stats"

// Work consumes a generator on whatever goroutine calls it.
func Work(r *stats.RNG) uint64 {
	return r.Uint64()
}
