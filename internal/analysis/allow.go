package analysis

import (
	"strings"
)

// allowPrefix introduces a suppression directive:
//
//	//repolint:allow determinism -- progress log; never reaches results
//
// Several analyzers may be named, comma-separated. The directive
// covers findings on its own line (trailing comment) and on the line
// directly below it (full-line comment above the offending statement).
const allowPrefix = "//repolint:allow"

// allowDirective is one parsed //repolint:allow comment.
type allowDirective struct {
	file      string
	line      int
	analyzers []string
	reason    string
}

// allowSet indexes the well-formed directives of one unit.
type allowSet map[string]map[int][]allowDirective // file -> line -> directives

// covers reports whether d is suppressed by a directive on its line or
// the line above.
func (s allowSet) covers(d Diagnostic) bool {
	byLine := s[d.Pos.Filename]
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range byLine[line] {
			for _, name := range dir.analyzers {
				if name == d.Analyzer {
					return true
				}
			}
		}
	}
	return false
}

// collectAllows parses every //repolint:allow directive in the unit.
// Malformed directives — no analyzer name, or no ` -- reason` — are
// returned as diagnostics of the pseudo-analyzer "allow", which cannot
// itself be suppressed: every escape hatch must say why.
func collectAllows(u *Unit) (allowSet, []Diagnostic) {
	set := allowSet{}
	var diags []Diagnostic
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				bad := func(msg string) {
					diags = append(diags, Diagnostic{Analyzer: "allow", Pos: pos, Message: msg})
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //repolint:allowlist — not our directive.
					continue
				}
				names, reason, ok := strings.Cut(rest, "--")
				if !ok || strings.TrimSpace(reason) == "" {
					bad("repolint:allow directive needs a reason: `//repolint:allow <analyzer> -- <why the invariant does not apply here>`")
					continue
				}
				var analyzers []string
				for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					analyzers = append(analyzers, n)
				}
				if len(analyzers) == 0 {
					bad("repolint:allow directive names no analyzer")
					continue
				}
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int][]allowDirective{}
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], allowDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: analyzers,
					reason:    strings.TrimSpace(reason),
				})
			}
		}
	}
	return set, diags
}
