// Package analysis is the repository's static-enforcement layer: a
// small, dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, diagnostics, an analysistest
// harness) plus the five repolint analyzers that encode this repo's
// determinism and concurrency invariants as structural rules.
//
// The API deliberately mirrors go/analysis so the suite can migrate to
// the real framework (and go vet -vettool= integration) the day
// golang.org/x/tools is available as a dependency; the build
// environment for this repository is stdlib-only, so packages are
// loaded through `go list -export` and type-checked with go/types
// against the toolchain's export data instead of go/packages.
//
// Diagnostics are suppressed line-by-line with
//
//	//repolint:allow <analyzer> -- <reason>
//
// either trailing the offending line or on the line directly above it.
// The reason is mandatory: an allow directive without one is itself a
// diagnostic, so every escape hatch in the tree documents why the
// invariant genuinely does not apply there.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //repolint:allow directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by repolint -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer to every unit and returns the surviving
// diagnostics: findings on lines covered by a matching, well-formed
// //repolint:allow directive are dropped, and malformed directives
// (no ` -- reason`) are reported as findings of the pseudo-analyzer
// "allow". The result is sorted by file, line, column, analyzer.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, u := range units {
		allows, allowDiags := collectAllows(u)
		out = append(out, allowDiags...)
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, u.Path, err)
			}
		}
		for _, d := range diags {
			if !allows.covers(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// All returns the full repolint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MapRange, RNGShare, AtomicMix, ErrField}
}
