package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestDeterminism covers the in-scope fixture (wall clocks, RNG
// imports, trailing/above/malformed/wrong-name directives), the
// per-file scoping used for loadsim's schedule layer, and a fully
// out-of-scope package.
func TestDeterminism(t *testing.T) {
	a := analysis.NewDeterminism(map[string][]string{
		"determinism":       nil,
		"determinismscoped": {"schedule.go"},
	})
	analysistest.Run(t, a,
		"testdata/src/determinism",
		"testdata/src/determinismscoped",
		"testdata/src/determinismout",
	)
}

// TestDeterminismDefaultScope pins the production scope: the packages
// every result document is computed from, plus loadsim's pure schedule
// layer — and nothing that is legitimately wall-measured.
func TestDeterminismDefaultScope(t *testing.T) {
	for _, pkg := range []string{
		"repro/internal/core", "repro/internal/sweep", "repro/internal/space",
		"repro/internal/encoding", "repro/internal/stats", "repro/internal/explore",
		"repro/internal/loadsim", "repro/internal/ann", "repro/internal/mathx",
	} {
		if _, ok := analysis.DeterminismScope[pkg]; !ok {
			t.Errorf("DeterminismScope lost %s", pkg)
		}
	}
	if files := analysis.DeterminismScope["repro/internal/loadsim"]; len(files) == 0 {
		t.Error("loadsim must be scoped to its schedule layer, not the wall-measuring runner")
	}
	// serve is a wall-measured service layer, so it must never be in
	// scope whole-package — but its hardening files are: the cache key
	// is pure and the limiter/metrics wall reads funnel through one
	// annotated site.
	files, ok := analysis.DeterminismScope["repro/internal/serve"]
	if !ok || len(files) == 0 {
		t.Error("serve's hardening layer (cache/limiter/metrics) must be file-scoped into the determinism scope, never the whole package")
	}
	for _, f := range []string{"cache.go", "limiter.go", "metrics.go"} {
		found := false
		for _, have := range files {
			if have == f {
				found = true
			}
		}
		if !found {
			t.Errorf("DeterminismScope lost serve's %s", f)
		}
	}
}
