package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestDeterminism covers the in-scope fixture (wall clocks, RNG
// imports, trailing/above/malformed/wrong-name directives), the
// per-file scoping used for loadsim's schedule layer, and a fully
// out-of-scope package.
func TestDeterminism(t *testing.T) {
	a := analysis.NewDeterminism(map[string][]string{
		"determinism":       nil,
		"determinismscoped": {"schedule.go"},
	})
	analysistest.Run(t, a,
		"testdata/src/determinism",
		"testdata/src/determinismscoped",
		"testdata/src/determinismout",
	)
}

// TestDeterminismDefaultScope pins the production scope: the packages
// every result document is computed from, plus loadsim's pure schedule
// layer — and nothing that is legitimately wall-measured.
func TestDeterminismDefaultScope(t *testing.T) {
	for _, pkg := range []string{
		"repro/internal/core", "repro/internal/sweep", "repro/internal/space",
		"repro/internal/encoding", "repro/internal/stats", "repro/internal/explore",
		"repro/internal/loadsim", "repro/internal/ann", "repro/internal/mathx",
	} {
		if _, ok := analysis.DeterminismScope[pkg]; !ok {
			t.Errorf("DeterminismScope lost %s", pkg)
		}
	}
	if files := analysis.DeterminismScope["repro/internal/loadsim"]; len(files) == 0 {
		t.Error("loadsim must be scoped to its schedule layer, not the wall-measuring runner")
	}
	if _, ok := analysis.DeterminismScope["repro/internal/serve"]; ok {
		t.Error("serve is a wall-measured service layer; it must not be in the determinism scope")
	}
}
