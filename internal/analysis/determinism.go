package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
)

// DeterminismScope lists the result-affecting packages: everything a
// model output, sweep document, exploration trace, or offered-load
// schedule is computed from. In these packages wall-clock reads and
// platform-dependent RNGs are forbidden outright — the repo's core
// invariant is that results are pure functions of (inputs, seeds), so
// any wall or OS entropy source here is a latent bit-identity bug. An
// empty file list means the whole package; a non-empty list scopes the
// rule to those files (loadsim's schedule layer must be pure, but its
// runner/clock layer exists precisely to measure wall time).
var DeterminismScope = map[string][]string{
	"repro/internal/core":     nil,
	"repro/internal/pareto":   nil,
	"repro/internal/sweep":    nil,
	"repro/internal/space":    nil,
	"repro/internal/encoding": nil,
	"repro/internal/stats":    nil,
	"repro/internal/explore":  nil,
	"repro/internal/ann":      nil,
	"repro/internal/mathx":    nil,
	"repro/internal/loadsim":  {"pattern.go", "events.go", "schedule.go"},
	// serve's hardening layer: the cache must key purely on
	// (version, kernel, index) and the limiter/metrics files funnel
	// every wall read through one annotated nowMono() site.
	"repro/internal/serve": {"cache.go", "limiter.go", "metrics.go"},
}

// forbiddenRandImports are nondeterministic (platform- or
// process-dependent) randomness sources; all randomness must flow
// through stats.RNG so runs reproduce bit-for-bit from their seeds.
var forbiddenRandImports = map[string]string{
	"math/rand":    "math/rand's generator is not stable across Go releases; use stats.RNG",
	"math/rand/v2": "math/rand/v2 is seeded per-process; use stats.RNG",
	"crypto/rand":  "crypto/rand is entropy, not a seedable stream; use stats.RNG",
}

// wallClockFuncs are the time package's wall-clock reads. Monotonic
// pacing helpers (NewTimer, Tick, Sleep) are deliberately not listed:
// they schedule work without yielding a value that can leak into
// results.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Determinism runs the check with the repository's scope; tests build
// narrower instances via NewDeterminism.
var Determinism = NewDeterminism(DeterminismScope)

// NewDeterminism returns the determinism analyzer restricted to the
// given package-path → file-basename scope (nil/empty file list =
// whole package).
func NewDeterminism(scope map[string][]string) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc: "forbid wall-clock reads (time.Now/Since/Until) and nondeterministic RNGs " +
			"(math/rand, crypto/rand) in result-affecting packages; results must be pure " +
			"functions of (inputs, seeds). Genuinely wall-measured telemetry (progress " +
			"logs, latency columns) is annotated `//repolint:allow determinism -- <reason>`.",
	}
	a.Run = func(pass *Pass) error {
		files, ok := scope[pass.Pkg.Path()]
		if !ok {
			return nil
		}
		inScope := func(f *ast.File) bool {
			if len(files) == 0 {
				return true
			}
			base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
			for _, want := range files {
				if base == want {
					return true
				}
			}
			return false
		}
		for _, f := range pass.Files {
			if !inScope(f) {
				continue
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if why, bad := forbiddenRandImports[path]; bad {
					pass.Reportf(imp.Pos(), "import of %s in result-affecting package %s: %s", path, pass.Pkg.Path(), why)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := calleeFunc(pass, call); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "time.%s in result-affecting package %s: wall time must not reach returned data or serialized output", fn.Name(), pass.Pkg.Path())
				}
				return true
			})
		}
		return nil
	}
	return a
}

// calleeFunc resolves a call's callee to its *types.Func, or nil for
// builtins, conversions, and calls through function-typed values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// fmtPos renders a cross-reference position compactly (file:line).
func fmtPos(pass *Pass, n ast.Node) string {
	p := pass.Fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
